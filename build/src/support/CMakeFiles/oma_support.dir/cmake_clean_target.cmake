file(REMOVE_RECURSE
  "liboma_support.a"
)
