/**
 * @file
 * Mach 3.0: the multiple-API microkernel structure model.
 *
 * UNIX system calls bounce through a dynamically mapped emulation
 * library in the caller's own address space, become RPCs carried by
 * the Mach kernel, and are served by a user-level (fully mapped) BSD
 * server; display traffic is Mach IPC to the X server with VM-shared
 * frame memory; paging is handled by a user-level external pager.
 * The call path is ~1000 instructions and the return path ~850
 * (Section 4.1), which is what overruns small I-caches, while the
 * extra mapped address spaces and their page-table pages are what
 * load the TLB (Section 4.2).
 */

#ifndef OMA_OS_MACH_HH
#define OMA_OS_MACH_HH

#include <memory>

#include "os/osmodel.hh"

namespace oma
{

/** Structural constants of the Mach model. */
struct MachParams
{
    // Invocation plumbing. Call path = trap + emulCall + kernelSend +
    // serverStubIn ~= 1000 instructions; return path = serverStubOut +
    // kernelReply + emulRet ~= 850 (paper, Section 4.1).
    std::uint64_t trapInstr = 50;
    std::uint64_t emulCallInstr = 200;
    std::uint64_t kernelSendInstr = 600;
    std::uint64_t serverStubInInstr = 150;
    std::uint64_t serverStubOutInstr = 200;
    std::uint64_t kernelReplyInstr = 500;
    std::uint64_t emulRetInstr = 150;

    // Service bodies: both systems derive from 4.2 BSD, so the body
    // lengths match the Ultrix model (Section 4.1: "differences with
    // respect to this service code are minor").
    std::uint64_t svcFileInstr = 2800;
    std::uint64_t svcStatInstr = 700;
    std::uint64_t svcIpcInstr = 1200;

    /**
     * Extra BSD-server work per file operation beyond the common BSD
     * body: mapped-file handling, vm_map manipulation and data-
     * structure upkeep that the monolithic kernel does not pay.
     */
    std::uint64_t serverFileOverheadInstr = 2500;
    /**
     * Payload size at or above which message data moves by
     * out-of-line virtual-memory transfer instead of copying
     * ([Dean91]: "out-of-line (virtual memory) transfers for the
     * expensive case of large messages"). The kernel remaps pages;
     * the receiver touches them lazily.
     */
    std::uint64_t oolThresholdBytes = 8192;

    /**
     * Number of additional small-granularity API servers (naming,
     * authentication, ...) the BSD service is decomposed into
     * ([Black92], discussed in Section 4.1). Each lives in its own
     * mapped address space; services fan out nested RPCs to them.
     */
    unsigned extraApiServers = 0;
    /** Probability a service consults an extra server (when any). */
    double extraServerProb = 0.5;

    /**
     * Probability that a file operation needs a second RPC round
     * (name resolution, default-pager or memory-object traffic) —
     * decomposition overheads Section 4.1 describes.
     */
    double extraRpcProb = 0.5;

    // BSD server footprints (user level, fully mapped).
    std::uint64_t serverCodeFootprint = 48 * 1024;
    std::uint64_t serverWsBytes = 128 * 1024;
    std::uint64_t serverBufBytes = 2 * 1024 * 1024;

    // Kernel IPC footprints.
    std::uint64_t kIpcWsBytes = 64 * 1024;   //!< kseg0 data.
    std::uint64_t kseg2WsBytes = 48 * 1024; //!< mapped ports/pmaps.
    double kseg2Frac = 0.18;

    // Housekeeping.
    std::uint64_t timerInstr = 350;
    std::uint64_t cswitchInstr = 350;
    std::uint64_t pagerInstr = 1500;
    unsigned pagerInvalidations = 6;

    /**
     * Route display frames through the BSD server's socket interface
     * (two RPCs and two copies per frame), as in the system the paper
     * measured. When false, frames travel by Mach IPC directly to X
     * with VM-shared frame memory ([Ginsberg93]; the Bershad-style
     * "avoid RPC with VM sharing" variant the ablation bench studies:
     * it trades I-cache misses for TLB misses).
     */
    bool xViaBsdServer = true;

    // X display server.
    std::uint64_t xCodeFootprint = 40 * 1024;
    std::uint64_t xWsBytes = 96 * 1024;
    std::uint64_t xInstrPerKByte = 100;
    std::uint64_t frameBufferBytes = 1024 * 1024;

    // Data-reference intensity of server/kernel code.
    double svcLoadPerInstr = 0.22;
    double svcStorePerInstr = 0.10;
};

/** The Mach 3.0 structure model. */
class MachModel : public OsModel
{
  public:
    MachModel(std::uint64_t seed, const MachParams &params);

    const char *name() const override { return "Mach"; }
    OsKind kind() const override { return OsKind::Mach; }

    void attachApp(AddressSpace &app_space,
                   const DataBehavior &app_data) override;
    void invokeService(Component &caller, const ServiceRequest &req,
                       TraceSink &sink) override;
    void displayFrame(Component &caller, std::uint64_t bytes,
                      TraceSink &sink) override;
    void timerTick(TraceSink &sink) override;
    void vmActivity(Component &caller, TraceSink &sink) override;

    const MachParams &params() const { return _p; }

    /** The BSD server's address space (for tests/ablations). */
    AddressSpace &serverSpace() { return _serverSpace; }

  private:
    std::uint64_t svcBodyInstr(ServiceKind kind);
    std::uint64_t serverBufAddr(std::uint64_t file_offset) const;

    /**
     * Move @p bytes from one space to another: a copy loop for small
     * payloads, an out-of-line VM remap (kernel vm_map work plus one
     * kseg2 PTE store per page) for large ones.
     */
    void transfer(AddressSpace &src_space, std::uint64_t src_base,
                  AddressSpace &dst_space, std::uint64_t dst_base,
                  std::uint64_t bytes, TraceSink &sink);

    MachParams _p;
    Rng _rng;
    AddressSpace _serverSpace;
    AddressSpace _pagerSpace;
    Component _trap;   //!< Kernel trap/timer/context-switch paths.
    Component _ipc;    //!< Kernel IPC send/reply paths + copies.
    Component _server; //!< BSD server bodies (user level, mapped).
    Component _x;      //!< X display server.
    Component _pager;  //!< External pager (user level).
    /** Decomposed small-granularity API servers ([Black92]). */
    std::vector<std::unique_ptr<AddressSpace>> _extraSpaces;
    std::vector<std::unique_ptr<Component>> _extraServers;
    /** Emulation library, created by attachApp in the app's space. */
    std::unique_ptr<Component> _emul;

    CodePath _trapPath;
    CodePath _emulCallPath;
    CodePath _emulRetPath;
    CodePath _sendPath;
    CodePath _replyPath;
    CodePath _stubInPath;
    CodePath _stubOutPath;
    CodePath _xStubPath;
    CodePath _cswitchPath;
    CodePath _timerPath;

    std::uint64_t _fileOffset = 0;
    std::uint64_t _fbCursor = 0;
    std::uint64_t _frameCursor = 0;
    std::uint64_t _appStreamBytes = 0;
};

} // namespace oma

#endif // OMA_OS_MACH_HH
