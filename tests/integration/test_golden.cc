/**
 * @file
 * Golden regression tests: pin the calibrated baseline numbers so
 * accidental drift in the workload/OS models is caught immediately.
 *
 * The values below were recorded from the calibrated models at seed
 * 42 with 400,000 references (the exact configuration used here).
 * They are given generous ±20% bands — tight enough to catch a
 * broken knob, loose enough to survive benign reordering of RNG
 * draws. If you *intend* to recalibrate, update the table and the
 * corresponding EXPERIMENTS.md entries together.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace oma
{
namespace
{

struct Golden
{
    BenchmarkId id;
    OsKind os;
    double cpi;
    double tlb;
    double icache;
    double dcache;
};

// Recorded calibration snapshot (seed 42, 400k references).
const Golden kGolden[] = {
    {BenchmarkId::Mpeg, OsKind::Ultrix, 1.669, 0.071, 0.236, 0.157},
    {BenchmarkId::Mpeg, OsKind::Mach, 1.853, 0.156, 0.413, 0.104},
    {BenchmarkId::Mab, OsKind::Ultrix, 1.662, 0.107, 0.249, 0.182},
    {BenchmarkId::Mab, OsKind::Mach, 1.986, 0.229, 0.459, 0.186},
    {BenchmarkId::Jpeg, OsKind::Ultrix, 1.406, 0.037, 0.152, 0.078},
    {BenchmarkId::Jpeg, OsKind::Mach, 1.522, 0.076, 0.220, 0.088},
    {BenchmarkId::Ousterhout, OsKind::Ultrix, 2.102, 0.045, 0.183,
     0.638},
    {BenchmarkId::Ousterhout, OsKind::Mach, 2.452, 0.255, 0.667,
     0.388},
    {BenchmarkId::IOzone, OsKind::Ultrix, 2.327, 0.044, 0.149, 0.810},
    {BenchmarkId::IOzone, OsKind::Mach, 2.734, 0.262, 0.603, 0.632},
    {BenchmarkId::VideoPlay, OsKind::Ultrix, 2.038, 0.099, 0.237,
     0.438},
    {BenchmarkId::VideoPlay, OsKind::Mach, 2.517, 0.278, 0.512,
     0.487},
};

class GoldenBaseline : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenBaseline, StaysWithinBand)
{
    const Golden &g = GetParam();
    RunConfig rc;
    rc.references = 400000;
    rc.seed = 42;
    const BaselineResult r = runBaseline(g.id, g.os, rc);

    const double tol = 0.20;
    EXPECT_NEAR(r.cpi.cpi, g.cpi, tol * g.cpi)
        << benchmarkName(g.id) << "/" << osKindName(g.os);
    EXPECT_NEAR(r.cpi.tlb, g.tlb, std::max(0.03, tol * g.tlb));
    EXPECT_NEAR(r.cpi.icache, g.icache,
                std::max(0.04, tol * g.icache));
    EXPECT_NEAR(r.cpi.dcache, g.dcache,
                std::max(0.04, tol * g.dcache));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, GoldenBaseline, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden> &info) {
        std::string name = benchmarkName(info.param.id);
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_" + osKindName(info.param.os);
    });

} // namespace
} // namespace oma
