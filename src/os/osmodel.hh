/**
 * @file
 * Operating-system structure models.
 *
 * The paper's central observation is structural: the path from a
 * service invocation to the service code, and the address spaces that
 * path crosses, differ radically between a single-API system (Ultrix:
 * one kernel trap, service code in unmapped kseg0) and a multi-API
 * microkernel system (Mach: emulation library in the caller's space,
 * an RPC through the kernel, and a user-level — fully mapped — BSD
 * server). OsModel is the interface through which workloads invoke
 * services; UltrixModel and MachModel emit the corresponding
 * reference streams.
 */

#ifndef OMA_OS_OSMODEL_HH
#define OMA_OS_OSMODEL_HH

#include <functional>
#include <memory>
#include <vector>

#include "os/component.hh"
#include "os/layout.hh"

namespace oma
{

/** Which operating-system structure to model. */
enum class OsKind
{
    Ultrix,
    Mach,
};

const char *osKindName(OsKind kind);

/** Classes of OS service the workloads invoke. */
enum class ServiceKind
{
    FileRead,
    FileWrite,
    Stat, //!< Small, no payload (stat/gettimeofday/select...).
    Ipc,  //!< Small message (pipes, sockets control traffic).
};

/** One service invocation by the application. */
struct ServiceRequest
{
    ServiceKind kind = ServiceKind::Stat;
    std::uint64_t bytes = 0;        //!< Payload size.
    std::uint64_t userBufferVa = 0; //!< Caller-side buffer.
};

/**
 * Base class for OS structure models. Owns the kernel and X-server
 * address spaces and components common to both systems.
 */
class OsModel
{
  public:
    using InvalidateHook = std::function<void(
        std::uint64_t vpn, std::uint32_t asid, bool global)>;

    explicit OsModel(std::uint64_t seed);
    virtual ~OsModel() = default;

    virtual const char *name() const = 0;
    virtual OsKind kind() const = 0;

    /** Emit the full reference stream of one service invocation. */
    virtual void invokeService(Component &caller,
                               const ServiceRequest &req,
                               TraceSink &sink) = 0;

    /** Deliver one display frame from the caller to the X server. */
    virtual void displayFrame(Component &caller, std::uint64_t bytes,
                              TraceSink &sink) = 0;

    /** Periodic clock interrupt. */
    virtual void timerTick(TraceSink &sink) = 0;

    /**
     * Background VM activity (pageout daemon / external pager); may
     * invalidate pages via the invalidate hook.
     */
    virtual void vmActivity(Component &caller, TraceSink &sink) = 0;

    /**
     * Bind the application to this OS instance. Mach maps the
     * emulation library into the app's space and arranges VM sharing
     * of the frame-stream region with the X server; Ultrix needs no
     * setup. Must be called once before invokeService.
     */
    virtual void attachApp(AddressSpace &app_space,
                           const DataBehavior &app_data);

    /** Register the machine's page-invalidation callback. */
    void setInvalidateHook(InvalidateHook hook)
    {
        _invalidate = std::move(hook);
    }

    /** The X display server's address space (user level in both OSes). */
    AddressSpace &xSpace() { return _xSpace; }

  protected:
    /** Invalidate a page in the machine's MMU (no-op when unhooked). */
    void
    invalidatePage(std::uint64_t vpn, std::uint32_t asid, bool global)
    {
        if (_invalidate)
            _invalidate(vpn, asid, global);
    }

    /** Pick a victim page inside a region and invalidate it. */
    void invalidateRandomPage(Rng &rng, std::uint64_t base,
                              std::uint64_t bytes, std::uint32_t asid);

    std::uint64_t _seed;
    AddressSpace _kernelSpace;
    AddressSpace _xSpace;
    InvalidateHook _invalidate;
};

/** Factory for the two models. */
std::unique_ptr<OsModel> makeOsModel(OsKind kind, std::uint64_t seed);

} // namespace oma

#endif // OMA_OS_OSMODEL_HH
