/**
 * @file
 * Implementation of the design-space allocator.
 */

#include "core/search.hh"

#include <memory>

#include "core/search_strategy.hh"
#include "obs/export.hh"
#include "support/logging.hh"

namespace oma
{

std::vector<TlbGeometry>
ConfigSpace::tlbGeometries() const
{
    std::vector<TlbGeometry> geoms;
    for (std::uint64_t entries : tlbEntries) {
        for (std::uint64_t ways : tlbWays) {
            if (ways <= entries)
                geoms.emplace_back(entries, ways);
        }
        if (entries <= tlbFullAssocMax)
            geoms.push_back(TlbGeometry::fullyAssoc(entries));
    }
    return geoms;
}

std::vector<CacheGeometry>
ConfigSpace::cacheGeometries(std::uint64_t max_ways) const
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : cacheKBytes) {
        for (std::uint64_t line : lineWords) {
            for (std::uint64_t ways : cacheWays) {
                if (ways > max_ways)
                    continue;
                const CacheGeometry geom =
                    CacheGeometry::fromWords(kb * 1024, line, ways);
                if (geom.capacityBytes < geom.lineBytes * geom.assoc)
                    continue; // needs at least one set
                geoms.push_back(geom);
            }
        }
    }
    return geoms;
}

std::vector<VictimParams>
ConfigSpace::victimConfigs() const
{
    std::vector<VictimParams> configs;
    for (std::uint64_t kb : cacheKBytes) {
        for (std::uint64_t entries : victimEntries) {
            VictimParams p;
            p.l1 = CacheGeometry::fromWords(kb * 1024,
                                            victimLineWords, 1);
            p.entries = entries;
            configs.push_back(p);
        }
    }
    return configs;
}

std::vector<WriteBufferParams>
ConfigSpace::writeBufferConfigs() const
{
    std::vector<WriteBufferParams> configs;
    for (std::uint64_t entries : wbEntries) {
        WriteBufferParams p;
        p.entries = entries;
        p.drainCycles = wbDrainCycles;
        configs.push_back(p);
    }
    return configs;
}

std::vector<HierarchyParams>
ConfigSpace::hierarchyConfigs() const
{
    std::vector<HierarchyParams> configs;
    for (std::uint64_t l2kb : l2KBytes) {
        for (std::uint64_t kb : cacheKBytes) {
            // An L2 must outsize the L1 level it backs, and the
            // split pair totals 2*kb (the per-L1 comparison used
            // here before let a pair as large as the L2 through).
            if (2 * kb >= l2kb)
                continue;
            HierarchyParams p;
            p.l1i.geom = CacheGeometry::fromWords(
                kb * 1024, hierL1LineWords, hierL1Ways);
            p.l1d.geom = p.l1i.geom;
            p.l2.geom = CacheGeometry::fromWords(l2kb * 1024,
                                                 l2LineWords, l2Ways);
            p.hasL2 = true;
            configs.push_back(p);
        }
    }
    return configs;
}

std::vector<ComponentSlot>
ConfigSpace::extensionSlots() const
{
    std::vector<ComponentSlot> slots;
    for (const VictimParams &p : victimConfigs())
        slots.push_back(ComponentSlot::victim(p));
    for (const WriteBufferParams &p : writeBufferConfigs())
        slots.push_back(ComponentSlot::writeBuffer(p));
    for (const HierarchyParams &p : hierarchyConfigs())
        slots.push_back(ComponentSlot::hierarchy(p));
    return slots;
}

ConfigSpace
ConfigSpace::extended()
{
    ConfigSpace space;
    space.victimEntries = {4, 8};
    space.wbEntries = {1, 2, 4, 8};
    space.l2KBytes = {32, 64};
    return space;
}

void
ConfigSpace::fingerprint(Fingerprint &fp) const
{
    const auto vec = [&fp](std::string_view name,
                           const std::vector<std::uint64_t> &values) {
        fp.u64(std::string(name) + ".n", values.size());
        for (const std::uint64_t v : values)
            fp.u64(name, v);
    };
    vec("space.tlb_entries", tlbEntries);
    vec("space.tlb_ways", tlbWays);
    fp.u64("space.tlb_full_assoc_max", tlbFullAssocMax);
    vec("space.cache_kbytes", cacheKBytes);
    vec("space.line_words", lineWords);
    vec("space.cache_ways", cacheWays);
    vec("space.victim_entries", victimEntries);
    fp.u64("space.victim_line_words", victimLineWords);
    vec("space.wb_entries", wbEntries);
    fp.u64("space.wb_drain_cycles", wbDrainCycles);
    vec("space.l2_kbytes", l2KBytes);
    fp.u64("space.l2_line_words", l2LineWords);
    fp.u64("space.l2_ways", l2Ways);
    fp.u64("space.hier_l1_line_words", hierL1LineWords);
    fp.u64("space.hier_l1_ways", hierL1Ways);
}

AllocationSearch::AllocationSearch(const AreaModel &area,
                                   double budget_rbe)
    : _area(area), _budget(budget_rbe)
{
    fatalIf(budget_rbe <= 0, "area budget must be positive");
}

std::vector<Allocation>
AllocationSearch::rank(const ComponentCpiTables &tables,
                       std::uint64_t max_cache_ways, unsigned threads,
                       obs::Observation *observation) const
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "search/rank");

    // The historical entry point: build the scored space and run the
    // exhaustive strategy over it. The refactor is bitwise-neutral —
    // ExhaustiveStrategy preserves the emission order, the
    // floating-point accumulation order and the stable sort of the
    // original in-line enumeration (see core/search_strategy.hh).
    const SearchSpace space(tables, _area, _budget, max_cache_ways);
    return ExhaustiveStrategy().search(space, threads, observation)
        .allocations;
}

} // namespace oma
