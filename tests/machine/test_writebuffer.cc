/**
 * @file
 * Unit tests for the write-buffer model.
 */

#include <gtest/gtest.h>

#include "machine/writebuffer.hh"

namespace oma
{
namespace
{

TEST(WriteBufferDeath, ZeroEntriesIsRejected)
{
    // Regression: entries == 0 used to pass construction and then
    // pop an empty retire deque in store() (the `_done.size() >=
    // _entries` full check is vacuously true when empty) — UB on the
    // first store. The constructor must refuse instead.
    EXPECT_EXIT(WriteBuffer(0, 6), testing::ExitedWithCode(1),
                "entries >= 1");
}

TEST(WriteBufferDeath, ZeroDrainIsRejected)
{
    EXPECT_EXIT(WriteBuffer(4, 0), testing::ExitedWithCode(1),
                "drain_cycles >= 1");
}

TEST(WriteBuffer, SlowStoresNeverStall)
{
    WriteBuffer wb(4, 6);
    std::uint64_t now = 0;
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(wb.store(now), 0u);
        now += 10; // slower than the drain rate
    }
    EXPECT_EQ(wb.stallCycles(), 0u);
    EXPECT_EQ(wb.stores(), 100u);
}

TEST(WriteBuffer, BurstFillsAndStalls)
{
    WriteBuffer wb(4, 6);
    // Five back-to-back stores at the same cycle: the fifth finds the
    // buffer full and waits for the first retire (6 cycles).
    std::uint64_t now = 0;
    EXPECT_EQ(wb.store(now), 0u);
    EXPECT_EQ(wb.store(now), 0u);
    EXPECT_EQ(wb.store(now), 0u);
    EXPECT_EQ(wb.store(now), 0u);
    const std::uint64_t stall = wb.store(now);
    EXPECT_EQ(stall, 6u);
    EXPECT_EQ(wb.stallCycles(), 6u);
}

TEST(WriteBuffer, SustainedSaturationStallsPerStore)
{
    WriteBuffer wb(2, 10);
    std::uint64_t now = 0;
    std::uint64_t total = 0;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t stall = wb.store(now);
        total += stall;
        now += 1 + stall; // 1 cycle of work per store
    }
    // Steady state: one store per drain period (10 cycles), so ~9
    // stall cycles per store once saturated.
    EXPECT_GT(total, 100 * 7u);
}

TEST(WriteBuffer, DrainsDuringQuietPeriods)
{
    WriteBuffer wb(2, 10);
    std::uint64_t now = 0;
    wb.store(now);
    wb.store(now);
    now += 100; // everything retires
    EXPECT_EQ(wb.store(now), 0u);
}

TEST(WriteBuffer, SyncWaitOnEmptyBufferIsFree)
{
    WriteBuffer wb(4, 6);
    EXPECT_EQ(wb.syncWait(0), 0u);
    wb.store(0);
    EXPECT_EQ(wb.syncWait(100), 0u); // long retired
}

TEST(WriteBuffer, SyncWaitBlocksOnInFlightWrite)
{
    WriteBuffer wb(4, 6);
    wb.store(0); // retires at cycle 6
    const std::uint64_t wait = wb.syncWait(2);
    EXPECT_EQ(wait, 4u);
    EXPECT_EQ(wb.stallCycles(), 4u);
}

TEST(WriteBuffer, SyncWaitConsumesOnlyTheFrontWrite)
{
    WriteBuffer wb(4, 6);
    wb.store(0); // retires at 6
    wb.store(0); // retires at 12
    EXPECT_EQ(wb.syncWait(0), 6u); // waits for the first
    // Second write still pending: another sync at cycle 6 waits for
    // its completion at 12.
    EXPECT_EQ(wb.syncWait(6), 6u);
}

TEST(WriteBuffer, SerializedRetirement)
{
    WriteBuffer wb(8, 5);
    // Two stores at t=0: retire at 5 and 10 (not both at 5).
    wb.store(0);
    wb.store(0);
    // At t=5 the first has retired but the second is in flight until
    // t=10, so a read conflicts for 5 more cycles.
    EXPECT_EQ(wb.syncWait(5), 5u);
    EXPECT_EQ(wb.syncWait(10), 0u);
}

} // namespace
} // namespace oma
