/**
 * @file
 * CLI driver for the determinism-contract lint pass.
 *
 *     oma_lint [--fixit] [--sarif FILE] [--include-root DIR] PATH...
 *     oma_lint --emit-header-tus OUTDIR SRCROOT
 *     oma_lint --list-rules
 *
 * --sarif additionally writes the findings as a SARIF 2.1.0 log to
 * FILE (`-` for stdout), the format CI annotation UIs ingest.
 *
 * Exits 0 when every scanned file is clean, 1 when findings remain
 * after suppressions, 2 on usage errors. The canonical repo-root
 * invocation is `oma_lint src tests tools examples` (bench is scanned
 * too but exempt from no-wallclock). See docs/STATIC_ANALYSIS.md.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: oma_lint [--fixit] [--sarif FILE] "
           "[--include-root DIR] PATH...\n"
        << "       oma_lint --emit-header-tus OUTDIR SRCROOT\n"
        << "       oma_lint --list-rules\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fixits = false;
    std::string includeRoot = "src";
    std::string sarifPath;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fixit") {
            fixits = true;
        } else if (arg == "--sarif") {
            if (++i >= argc)
                return usage();
            sarifPath = argv[i];
        } else if (arg == "--include-root") {
            if (++i >= argc)
                return usage();
            includeRoot = argv[i];
        } else if (arg == "--list-rules") {
            for (const auto &rule : oma::lint::makeDefaultRules())
                std::cout << rule->name() << ": " << rule->rationale()
                          << "\n";
            return 0;
        } else if (arg == "--emit-header-tus") {
            if (i + 2 >= argc)
                return usage();
            const auto tus =
                oma::lint::emitHeaderTus(argv[i + 2], argv[i + 1]);
            std::cout << "oma_lint: emitted " << tus.size()
                      << " header TU(s) into " << argv[i + 1] << "\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage();

    const oma::lint::LintReport report =
        oma::lint::lintPaths(paths, includeRoot);
    oma::lint::printReport(report, fixits, std::cout);
    if (!sarifPath.empty()) {
        if (sarifPath == "-") {
            oma::lint::printSarif(report, std::cout);
        } else {
            std::ofstream out(sarifPath, std::ios::trunc);
            if (!out) {
                std::cerr << "oma_lint: cannot write SARIF log to '"
                          << sarifPath << "'\n";
                return 2;
            }
            oma::lint::printSarif(report, out);
        }
    }
    return report.clean() ? 0 : 1;
}
