/**
 * @file
 * Multiprogrammed workloads.
 *
 * The paper's trace samples "include multiprogramming and operating
 * system references": several jobs time-share the processor and
 * interfere in the caches and TLB. MultiprogramSource composes
 * complete System streams the same way: it round-robins scheduler
 * quanta across member systems, remapping each member's user ASIDs
 * into a disjoint range (the kernel ASID 0 stays shared, as the
 * kernel is). Member systems are built with distinct seeds, so their
 * pseudo-physical frames differ and cache interference is real
 * rather than accidental aliasing. (One approximation: each member
 * hashes mapped kseg2 kernel frames from its own seed, so dynamic
 * kernel data is not physically shared across members; kseg0 —
 * kernel text, static data, the buffer cache — is identity-mapped
 * and genuinely shared.)
 */

#ifndef OMA_WORKLOAD_MULTIPROG_HH
#define OMA_WORKLOAD_MULTIPROG_HH

#include <memory>
#include <vector>

#include "support/logging.hh"
#include "workload/system.hh"

namespace oma
{

/** Interleaves several Systems in scheduler quanta. */
class MultiprogramSource : public TraceSource
{
  public:
    /**
     * @param quantum_instructions Instructions per scheduling
     *        quantum (DECstation-era schedulers switched every few
     *        tens of thousands of instructions).
     */
    explicit MultiprogramSource(
        std::uint64_t quantum_instructions = 30000)
        : _quantum(quantum_instructions)
    {
    }

    /**
     * Add a member workload. Each member gets the next disjoint
     * ASID block (of 16) and a seed derived from @p seed.
     */
    void
    add(const WorkloadParams &workload, OsKind os, std::uint64_t seed)
    {
        fatalIf(_members.size() >= 4,
                "only 4 disjoint ASID blocks of 16 exist");
        Member m;
        m.system = std::make_unique<System>(workload, os, seed);
        m.asidOffset =
            static_cast<std::uint32_t>(16 * _members.size());
        _members.push_back(std::move(m));
    }

    bool
    next(MemRef &ref) override
    {
        fatalIf(_members.empty(),
                "MultiprogramSource needs at least one member");
        Member &m = _members[_current];
        if (!m.system->next(ref))
            return false;
        if (ref.isFetch() && ++_instrInQuantum >= _quantum) {
            _instrInQuantum = 0;
            _current = (_current + 1) % _members.size();
        }
        // Remap user ASIDs into the member's block; kernel-global
        // references (ASID 0 by convention here) stay shared.
        if (ref.asid != 0) {
            ref.asid = static_cast<std::uint32_t>(
                (ref.asid + m.asidOffset) & 63);
        }
        return true;
    }

    std::size_t memberCount() const { return _members.size(); }

    System &member(std::size_t i) { return *_members[i].system; }

    /** Forward an MMU invalidation hook to every member. */
    void
    setInvalidateHook(const OsModel::InvalidateHook &hook)
    {
        for (std::size_t i = 0; i < _members.size(); ++i) {
            const std::uint32_t offset = _members[i].asidOffset;
            _members[i].system->setInvalidateHook(
                [hook, offset](std::uint64_t vpn, std::uint32_t asid,
                               bool global) {
                    const std::uint32_t remapped =
                        asid == 0 ? 0u : ((asid + offset) & 63);
                    hook(vpn, remapped, global);
                });
        }
    }

  private:
    struct Member
    {
        std::unique_ptr<System> system;
        std::uint32_t asidOffset = 0;
    };

    std::uint64_t _quantum;
    std::vector<Member> _members;
    std::size_t _current = 0;
    std::uint64_t _instrInQuantum = 0;
};

} // namespace oma

#endif // OMA_WORKLOAD_MULTIPROG_HH
