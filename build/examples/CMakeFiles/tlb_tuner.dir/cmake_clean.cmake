file(REMOVE_RECURSE
  "CMakeFiles/tlb_tuner.dir/tlb_tuner.cpp.o"
  "CMakeFiles/tlb_tuner.dir/tlb_tuner.cpp.o.d"
  "tlb_tuner"
  "tlb_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
