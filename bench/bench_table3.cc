/**
 * @file
 * Table 3: the effect of operating systems on CPU stall behaviour —
 * mpeg_play on the DECstation 3100, measured three ways: user-only
 * simulation (pixie+cache2000 style), under Ultrix, and under Mach.
 */

#include <iostream>

#include "bench/common.hh"
#include "obs/export.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

std::string
cell(double value, double stalls)
{
    return fmtFixed(value, 2) + " (" +
        fmtPercent(stalls > 0 ? value / stalls : 0.0) + ")";
}

void
addRow(TextTable &table, const std::string &os,
       const std::string &method, const BaselineResult &r)
{
    const double stalls = r.cpi.stallTotal();
    table.addRow({os, method, fmtFixed(r.cpi.cpi, 2),
                  cell(r.cpi.tlb, stalls), cell(r.cpi.icache, stalls),
                  cell(r.cpi.dcache, stalls),
                  cell(r.cpi.writeBuffer, stalls),
                  cell(r.cpi.other, stalls)});
}

} // namespace

int
main()
{
    omabench::banner(
        "The effect of operating systems on CPU stall behaviour "
        "(mpeg_play, DECstation 3100)",
        "Table 3");

    omabench::BenchReport report("table3");
    const RunConfig rc = omabench::benchRun();
    RunConfig user_rc = rc;
    user_rc.userOnly = true;

    const BaselineResult user_only =
        runBaseline(BenchmarkId::Mpeg, OsKind::Ultrix, user_rc);
    const BaselineResult ultrix =
        runBaseline(BenchmarkId::Mpeg, OsKind::Ultrix, rc);
    const BaselineResult mach =
        runBaseline(BenchmarkId::Mpeg, OsKind::Mach, rc);
    obs::exportBaseline(report.metrics(), "user_only", user_only);
    obs::exportBaseline(report.metrics(), "ultrix", ultrix);
    obs::exportBaseline(report.metrics(), "mach", mach);
    report.addReferences(user_only.references + ultrix.references +
                         mach.references);

    TextTable table({"OS", "Method", "CPI", "TLB", "I-cache",
                     "D-cache", "Write Buffer", "Other"});
    addRow(table, "None", "pixie-style sim", user_only);
    addRow(table, "Ultrix", "Monster-style monitor", ultrix);
    addRow(table, "Mach", "Monster-style monitor", mach);
    table.print(std::cout);

    std::cout
        << "\nPaper's values for comparison:\n"
        << "  None   1.43  TLB 0.01 (1%)   I 0.06 (14%)  D 0.05 "
           "(13%)  WB 0.18 (41%)  Other 0.14 (32%)\n"
        << "  Ultrix 1.66  TLB 0.01 (2%)   I 0.10 (15%)  D 0.26 "
           "(39%)  WB 0.14 (21%)  Other 0.15 (23%)\n"
        << "  Mach   2.06  TLB 0.15 (14%)  I 0.32 (30%)  D 0.30 "
           "(28%)  WB 0.21 (20%)  Other 0.08 (8%)\n"
        << "\nShape criteria: user-only simulation understates CPI; "
           "Ultrix raises the D-cache share; Mach raises CPI further "
           "with large TLB and I-cache shares.\n";
    return 0;
}
