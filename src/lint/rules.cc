/**
 * @file
 * The determinism-contract rule set.
 *
 * Each rule is a token-level check over comment/literal-stripped
 * source lines. The rules are deliberately heuristic — this is a
 * contract enforcer, not a compiler front end — but every heuristic
 * errs toward flagging, and a flagged site that is genuinely safe is
 * silenced with a reason-bearing suppression that documents why.
 */

#include "lint/lint.hh"

#include <array>
#include <cctype>
#include <string>

namespace oma::lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Position of whole-identifier @p token in @p line, or npos. */
std::size_t
findToken(const std::string &line, const std::string &token,
          std::size_t from = 0)
{
    std::size_t pos = from;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !identChar(line[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool right_ok =
            end >= line.size() || !identChar(line[end]);
        if (left_ok && right_ok)
            return pos;
        pos = end;
    }
    return std::string::npos;
}

/** True when the next non-space character after @p pos is @p want. */
bool
nextNonSpaceIs(const std::string &line, std::size_t pos, char want)
{
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
    return pos < line.size() && line[pos] == want;
}

bool
pathEndsWith(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
pathContainsDir(const std::string &path, const std::string &dir)
{
    const std::string withSlashes = "/" + dir + "/";
    return path.find(withSlashes) != std::string::npos ||
        path.rfind(dir + "/", 0) == 0;
}

/**
 * no-wallclock: every run must be a pure function of its seed, so
 * wall-clock time and OS entropy are banned outside the sanctioned
 * shims — support/rng.hh (seeded entropy), support/clock.hh
 * (observability timing) — and bench code (which may time itself).
 * steady_clock is banned with the wall clocks: interval timing is
 * legitimate only through oma::Clock, so that every timing site is
 * auditable as observability-only.
 */
class RuleNoWallclock : public Rule
{
  public:
    std::string_view name() const override { return "no-wallclock"; }

    std::string_view
    rationale() const override
    {
        return "wall-clock time and OS entropy make runs "
               "irreproducible; randomness flows through "
               "support/rng.hh and timing through support/clock.hh "
               "(observability only)";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        if (pathEndsWith(file.path(), "support/rng.hh") ||
            pathEndsWith(file.path(), "support/clock.hh") ||
            pathContainsDir(file.path(), "bench"))
            return;
        // Function-like: only a call site (`token(`) counts.
        static const std::array<const char *, 8> calls = {
            "time",   "clock",   "gettimeofday", "clock_gettime",
            "rand",   "srand",   "rand_r",       "drand48",
        };
        // Type-like: any mention is a hazard.
        static const std::array<const char *, 4> types = {
            "system_clock",
            "high_resolution_clock",
            "steady_clock",
            "random_device",
        };
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            for (const char *token : calls) {
                const std::size_t pos = findToken(code, token);
                if (pos != std::string::npos &&
                    nextNonSpaceIs(code, pos + std::string(token).size(),
                                   '(')) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("call to '") + token +
                             "' reads wall-clock time or unseeded "
                             "entropy",
                         "derive the value from the experiment seed "
                         "via oma::Rng (support/rng.hh) or take it as "
                         "a caller-supplied parameter",
                         false});
                    break;
                }
            }
            for (const char *token : types) {
                if (findToken(code, token) != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("use of '") + token +
                             "' is nondeterministic across runs",
                         "time observability through oma::Clock "
                         "(support/clock.hh) or draw entropy from "
                         "oma::Rng (support/rng.hh)",
                         false});
                    break;
                }
            }
        }
    }
};

/**
 * ordered-results: iteration order of std::unordered_map/set depends
 * on hash seeding, bucket counts and insertion history, so anything
 * iterated out of one can silently reorder results between runs or
 * lanes. Declarations in headers must carry a reason-bearing
 * suppression stating why order never escapes (e.g. only size() and
 * membership are used); iteration anywhere is flagged outright — fix
 * with sorted extraction (copy keys to a vector and sort, or use
 * std::map).
 */
class RuleOrderedResults : public Rule
{
  public:
    std::string_view name() const override { return "ordered-results"; }

    std::string_view
    rationale() const override
    {
        return "unordered-container iteration order is not "
               "deterministic; results built from it break the "
               "bitwise serial/parallel equivalence guarantee";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        const std::vector<std::string> names = file.unorderedNames();
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);

            // Declarations in headers need a stated invariant
            // (#include <unordered_map> itself is not a declaration).
            if (file.isHeader() &&
                code.find("#include") == std::string::npos &&
                (findToken(code, "unordered_map") != std::string::npos ||
                 findToken(code, "unordered_set") != std::string::npos) &&
                code.find('<') != std::string::npos) {
                out.push_back(
                    {file.path(), l, std::string(name()),
                     "unordered container declared in a header: state "
                     "the order-insensitivity invariant in a "
                     "suppression or use an ordered container",
                     "add `// oma-lint: allow(ordered-results): "
                     "<why order never escapes>` or switch to "
                     "std::map / sorted vector",
                     true});
            }

            for (const std::string &n : names) {
                // Range-for over an unordered variable.
                std::size_t pos = findToken(code, n);
                bool flagged = false;
                while (pos != std::string::npos && !flagged) {
                    std::size_t before = pos;
                    while (before > 0 &&
                           std::isspace(static_cast<unsigned char>(
                               code[before - 1])))
                        --before;
                    if (before > 0 && code[before - 1] == ':' &&
                        (before < 2 || code[before - 2] != ':') &&
                        findToken(code, "for") != std::string::npos) {
                        flagged = true;
                        break;
                    }
                    pos = findToken(code, n, pos + n.size());
                }
                // Explicit iterator walks. `.end()` alone is not
                // flagged: `find(k) != c.end()` is membership, not
                // traversal, and traversal always needs a begin().
                for (const char *it :
                     {".begin(", ".cbegin(", ".rbegin("}) {
                    if (code.find(n + it) != std::string::npos) {
                        flagged = true;
                        break;
                    }
                }
                if (flagged) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "iteration over unordered container '" + n +
                             "': traversal order is nondeterministic",
                         "extract to a vector and sort before "
                         "iterating, or store in std::map",
                         true});
                    break;
                }
            }
        }
    }
};

/**
 * header-guard: the static half of header self-containment. Every
 * header must carry a classic include guard (or #pragma once); the
 * compile half — each header building standalone — is enforced by the
 * header_tu CMake target over the TU list emitHeaderTus() generates.
 */
class RuleHeaderGuard : public Rule
{
  public:
    std::string_view name() const override { return "header-guard"; }

    std::string_view
    rationale() const override
    {
        return "unguarded headers break the one-TU-per-header "
               "self-containment build (header_tu target)";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        if (!file.isHeader())
            return;
        bool guarded = false;
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            if (code.find("#ifndef") != std::string::npos ||
                code.find("#pragma once") != std::string::npos) {
                guarded = true;
                break;
            }
            // Allow leading comments/blanks only before the guard.
            std::string stripped;
            for (char c : code)
                if (!std::isspace(static_cast<unsigned char>(c)))
                    stripped += c;
            if (!stripped.empty())
                break;
        }
        if (!guarded) {
            out.push_back(
                {file.path(), 1, std::string(name()),
                 "header has no include guard before its first "
                 "declaration",
                 "open with `#ifndef OMA_<PATH>_HH` / `#define "
                 "OMA_<PATH>_HH` and close with `#endif`",
                 false});
        }
    }
};

/**
 * include-hygiene: includes must be project-relative from src/ (no
 * parent traversal, no libstdc++ internals), and headers must not
 * inject names into every includer with namespace-scope
 * using-directives (function-local ones affect only their body and
 * are fine).
 */
class RuleIncludeHygiene : public Rule
{
  public:
    std::string_view name() const override { return "include-hygiene"; }

    std::string_view
    rationale() const override
    {
        return "relative-parent includes and using-directives in "
               "headers make TUs depend on include order, defeating "
               "standalone header builds";
    }

    /**
     * Per-line brace depth *excluding* namespace braces: 0 means the
     * line starts at namespace/file scope, where a using-directive
     * leaks into every includer.
     */
    static std::vector<int>
    scopeDepths(const SourceFile &file)
    {
        std::vector<int> depths(file.lineCount() + 1, 0);
        std::vector<bool> nsBrace; //!< Stack: brace opened a namespace?
        int depth = 0;
        std::string prev, prev2; //!< Last two identifiers seen.
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            depths[l] = depth;
            const std::string &code = file.codeLine(l);
            std::size_t i = 0;
            while (i < code.size()) {
                const char c = code[i];
                if (identChar(c)) {
                    std::size_t end = i;
                    while (end < code.size() && identChar(code[end]))
                        ++end;
                    prev2 = prev;
                    prev = code.substr(i, end - i);
                    i = end;
                    continue;
                }
                if (c == '{') {
                    const bool ns =
                        prev == "namespace" || prev2 == "namespace";
                    nsBrace.push_back(ns);
                    if (!ns)
                        ++depth;
                    prev.clear();
                    prev2.clear();
                } else if (c == '}') {
                    if (!nsBrace.empty()) {
                        if (!nsBrace.back())
                            --depth;
                        nsBrace.pop_back();
                    }
                    prev.clear();
                    prev2.clear();
                } else if (c == ';') {
                    prev.clear();
                    prev2.clear();
                }
                ++i;
            }
        }
        return depths;
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        const std::vector<int> depths =
            file.isHeader() ? scopeDepths(file) : std::vector<int>();
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            // Includes live on raw lines; strings are blanked in code
            // lines, so inspect the raw text for the path.
            const std::string &raw = file.rawLine(l);
            const std::string &code = file.codeLine(l);
            const bool isInclude =
                code.find("#include") != std::string::npos ||
                (raw.find("#include") != std::string::npos &&
                 raw.find_first_not_of(" \t") == raw.find('#'));
            if (isInclude) {
                if (raw.find("\"../") != std::string::npos ||
                    raw.find("<../") != std::string::npos ||
                    raw.find("/../") != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "parent-relative #include: include paths "
                         "must be project-relative from src/",
                         "include \"<subsystem>/<header>.hh\" and add "
                         "src/ to the include path",
                         false});
                }
                if (raw.find("<bits/") != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "#include of a libstdc++ internal header",
                         "include the standard <...> header that "
                         "documents the symbol instead",
                         false});
                }
            }
            if (file.isHeader() && depths[l] == 0 &&
                findToken(code, "using") != std::string::npos) {
                const std::size_t u = findToken(code, "using");
                const std::size_t n =
                    findToken(code, "namespace", u + 5);
                if (n != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         "namespace-scope using-directive in a header "
                         "leaks into every includer",
                         "qualify names explicitly or move the "
                         "using-directive into a .cc file or function "
                         "body",
                         false});
                }
            }
        }
    }
};

/**
 * cast-audit: reinterpret_cast and const_cast are where the type
 * system stops checking and an invariant takes over; each site must
 * state that invariant in a suppression so reviewers (and this pass)
 * can audit it.
 */
class RuleCastAudit : public Rule
{
  public:
    std::string_view name() const override { return "cast-audit"; }

    std::string_view
    rationale() const override
    {
        return "reinterpret_cast/const_cast sites carry unchecked "
               "invariants; each must document the invariant that "
               "makes it sound";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const override
    {
        for (std::size_t l = 1; l <= file.lineCount(); ++l) {
            const std::string &code = file.codeLine(l);
            for (const char *token :
                 {"reinterpret_cast", "const_cast"}) {
                if (findToken(code, token) != std::string::npos) {
                    out.push_back(
                        {file.path(), l, std::string(name()),
                         std::string("'") + token +
                             "' without a documented invariant",
                         std::string("add `// oma-lint: allow("
                                     "cast-audit): <invariant>` "
                                     "stating why this ") +
                             token + " is sound",
                         true});
                }
            }
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeDefaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<RuleNoWallclock>());
    rules.push_back(std::make_unique<RuleOrderedResults>());
    rules.push_back(std::make_unique<RuleHeaderGuard>());
    rules.push_back(std::make_unique<RuleIncludeHygiene>());
    rules.push_back(std::make_unique<RuleCastAudit>());
    return rules;
}

} // namespace oma::lint
