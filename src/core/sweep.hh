/**
 * @file
 * Component sweeps: measure many cache and TLB configurations against
 * one workload trace in a single pass.
 *
 * The paper's cost/benefit analysis (Section 5.4) combines
 * independently measured per-component CPI contributions: I-cache and
 * D-cache miss ratios from trace-driven simulation and TLB service
 * cycles from Tapeworm, plus a configuration-independent base (write
 * buffer and non-memory stalls). ComponentSweep produces exactly
 * those tables.
 */

#ifndef OMA_CORE_SWEEP_HH
#define OMA_CORE_SWEEP_HH

#include <vector>

#include "cache/bank.hh"
#include "core/experiment.hh"
#include "machine/machine.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

namespace oma
{

/** Per-configuration results of one sweep over one workload/OS pair. */
struct SweepResult
{
    std::uint64_t instructions = 0;
    std::uint64_t references = 0;

    std::vector<CacheGeometry> icacheGeoms;
    std::vector<CacheStats> icacheStats;
    std::vector<CacheGeometry> dcacheGeoms;
    std::vector<CacheStats> dcacheStats;
    std::vector<TlbGeometry> tlbGeoms;
    std::vector<MmuStats> tlbStats;

    /** Write-buffer stall cycles per instruction (config-independent
     * base, measured on the reference machine). */
    double wbCpi = 0.0;
    /** Non-memory stall cycles per instruction. */
    double otherCpi = 0.0;

    /** I-cache CPI contribution of config @p i (paper's penalty). */
    double icacheCpi(std::size_t i, const MachineParams &mp) const;
    /** D-cache CPI contribution of config @p i. */
    double dcacheCpi(std::size_t i, const MachineParams &mp) const;
    /** TLB CPI contribution of config @p i. */
    double tlbCpi(std::size_t i) const;

    /** I-cache miss ratio of config @p i. */
    double
    icacheMissRatio(std::size_t i) const
    {
        return icacheStats[i].missRatio();
    }

    double
    dcacheMissRatio(std::size_t i) const
    {
        return dcacheStats[i].missRatio();
    }
};

/**
 * Runs one workload/OS pair against banks of I-cache, D-cache and TLB
 * configurations simultaneously.
 *
 * With RunConfig::threads != 1 the per-configuration replays run on a
 * ThreadPool: the trace is generated once (serially, so the workload
 * RNG and the reference machine see exactly the serial stream), then
 * every cache and TLB geometry replays the recorded stream on its own
 * simulator instance. Results are bitwise identical to the serial
 * single-pass path for any thread count.
 */
class ComponentSweep
{
  public:
    ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                   std::vector<CacheGeometry> dcache_geoms,
                   std::vector<TlbGeometry> tlb_geoms,
                   const MachineParams &reference_machine =
                       MachineParams::decstation3100());

    /** Run the sweep. */
    SweepResult run(const WorkloadParams &workload, OsKind os,
                    const RunConfig &run = RunConfig()) const;

    SweepResult
    run(BenchmarkId id, OsKind os,
        const RunConfig &run_config = RunConfig()) const
    {
        return this->run(benchmarkParams(id), os, run_config);
    }

  private:
    SweepResult runSerial(const WorkloadParams &workload, OsKind os,
                          const RunConfig &run) const;
    SweepResult runParallel(const WorkloadParams &workload, OsKind os,
                            const RunConfig &run,
                            unsigned threads) const;

    std::vector<CacheGeometry> _icacheGeoms;
    std::vector<CacheGeometry> _dcacheGeoms;
    std::vector<TlbGeometry> _tlbGeoms;
    MachineParams _refMachine;
};

/**
 * Average per-configuration CPI tables over a set of SweepResults
 * (the paper reports suite averages). All results must have been
 * produced with identical geometry lists.
 */
struct ComponentCpiTables
{
    std::vector<CacheGeometry> icacheGeoms;
    std::vector<double> icacheCpi;
    std::vector<CacheGeometry> dcacheGeoms;
    std::vector<double> dcacheCpi;
    std::vector<TlbGeometry> tlbGeoms;
    std::vector<double> tlbCpi;
    /** Base of an allocation's total CPI (1.0, as in Tables 6/7). */
    double baseCpi = 1.0;
    /** Config-independent write-buffer stall CPI (informational). */
    double wbCpi = 0.0;
    /** Config-independent non-memory stall CPI (informational). */
    double otherCpi = 0.0;

    static ComponentCpiTables average(
        const std::vector<SweepResult> &results,
        const MachineParams &mp);
};

} // namespace oma

#endif // OMA_CORE_SWEEP_HH
