/**
 * @file
 * Plain-text table formatting for experiment output.
 *
 * Every bench binary reports its table or figure as an aligned text
 * table (and optionally CSV), mirroring the rows the paper prints.
 */

#ifndef OMA_SUPPORT_TABLE_HH
#define OMA_SUPPORT_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace oma
{

/**
 * A simple column-aligned text table. Columns are sized to their
 * widest cell; numeric formatting is the caller's responsibility
 * (use the cell() helpers).
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next added row. */
    void addRule();

    /** Render with padded columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (no alignment). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    [[nodiscard]] std::size_t rowCount() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
    std::vector<std::size_t> _rulesBefore;
};

/** Format a double with @p digits digits after the decimal point. */
[[nodiscard]] std::string fmtFixed(double value, int digits);

/** Format an integer with thousands separators ("163,438"). */
[[nodiscard]] std::string fmtGrouped(std::uint64_t value);

/** Format a ratio as a percentage string with @p digits decimals. */
[[nodiscard]] std::string fmtPercent(double value, int digits = 0);

/** Format a byte count as "2-KB", "32-KB", ... (power-of-two sizes). */
[[nodiscard]] std::string fmtKBytes(std::uint64_t bytes);

} // namespace oma

#endif // OMA_SUPPORT_TABLE_HH
