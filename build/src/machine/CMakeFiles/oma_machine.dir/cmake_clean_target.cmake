file(REMOVE_RECURSE
  "liboma_machine.a"
)
