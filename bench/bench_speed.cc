/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates:
 * cache access, TLB/MMU translation, Cheetah stack simulation, the
 * synthetic trace generator, and a full machine step. The paper's
 * methodology contrast — kernel-based simulation at millions of
 * references per second vs trace-driven at tens of thousands — is
 * mirrored by the Tapeworm-vs-bank comparison here.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include <unistd.h>

#include "bench/common.hh"
#include "cache/bank.hh"
#include "cache/cheetah.hh"
#include "cache/replay.hh"
#include "core/search.hh"
#include "machine/machine.hh"
#include "store/codec.hh"
#include "tlb/replay.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

/** The run's report, so benchmarks can land counters in the JSON. */
omabench::BenchReport *g_report = nullptr;

std::vector<MemRef>
sampleTrace(std::uint64_t n)
{
    static std::vector<MemRef> trace;
    if (trace.size() < n) {
        System system(benchmarkParams(BenchmarkId::Mpeg),
                      OsKind::Mach, 42);
        trace.resize(n);
        for (auto &ref : trace)
            system.next(ref);
    }
    return {trace.begin(), trace.begin() + n};
}

void
BM_CacheAccess(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 18);
    CacheParams p;
    p.geom = CacheGeometry::fromWords(std::uint64_t(state.range(0)),
                                      4, std::uint64_t(state.range(1)));
    Cache cache(p);
    std::size_t i = 0;
    for (auto _ : state) {
        const MemRef &ref = trace[i++ & (trace.size() - 1)];
        benchmark::DoNotOptimize(cache.access(ref.paddr, ref.kind));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)
    ->Args({8 * 1024, 1})
    ->Args({8 * 1024, 8})
    ->Args({32 * 1024, 2});

void
BM_CacheBank120Configs(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 16);
    ConfigSpace space;
    CacheBank bank;
    for (const auto &geom : space.cacheGeometries()) {
        CacheParams p;
        p.geom = geom;
        bank.add(p);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const MemRef &ref = trace[i++ & (trace.size() - 1)];
        bank.access(ref.paddr, ref.kind);
    }
    state.SetItemsProcessed(state.iterations() * bank.size());
}
BENCHMARK(BM_CacheBank120Configs);

void
BM_MmuTranslate(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 18);
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(64);
    Mmu mmu(p, TlbPenalties());
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mmu.translate(trace[i++ & (trace.size() - 1)]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MmuTranslate);

void
BM_FaTlbSweepAllSizes(benchmark::State &state)
{
    // One pass, every FA TLB size up to 512 — the Tapeworm trick.
    const auto trace = sampleTrace(1 << 18);
    FaTlbSweep sweep(512);
    std::size_t i = 0;
    for (auto _ : state)
        sweep.observe(trace[i++ & (trace.size() - 1)]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaTlbSweepAllSizes);

void
BM_CheetahAllAssoc(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 18);
    Cheetah cheetah(128, 16, 8);
    std::size_t i = 0;
    for (auto _ : state)
        cheetah.access(trace[i++ & (trace.size() - 1)].paddr);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheetahAllAssoc);

void
BM_TraceGeneration(benchmark::State &state)
{
    System system(benchmarkParams(BenchmarkId::Mpeg),
                  state.range(0) ? OsKind::Mach : OsKind::Ultrix, 42);
    MemRef ref;
    for (auto _ : state) {
        system.next(ref);
        benchmark::DoNotOptimize(ref);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration)->Arg(0)->Arg(1);

/**
 * The headline win: one ComponentSweep over a Table 5 grid subset,
 * serial (threads=1) vs parallel. Registered with Arg(1) first so
 * the parallel runs can report their measured speedup against the
 * serial wall clock in the JSON ("speedup_vs_serial" counter).
 */
void
BM_SweepTable5Grid(benchmark::State &state)
{
    static double serial_seconds = 0.0;
    const unsigned threads = unsigned(state.range(0));

    ConfigSpace space;
    // Trimmed grid (2-way max, no 16/32-word lines) so a full
    // iteration stays in benchmark-friendly territory; the sharding
    // is identical to the full Table 5 sweep.
    space.lineWords = {1, 4, 8};
    space.cacheWays = {1, 2};
    api::QueryEngine engine;
    api::SweepGrid grid;
    grid.icacheGeoms = space.cacheGeometries(2);
    grid.dcacheGeoms = space.cacheGeometries(2);
    grid.tlbGeoms = space.tlbGeometries();
    api::AllocationRequest request;
    request.workloads = {BenchmarkId::Mpeg};
    request.os = OsKind::Mach;
    request.references = 100000;
    request.threads = threads;

    const auto t0 = std::chrono::steady_clock::now();
    for (auto _ : state) {
        const SweepResult r =
            engine.sweep(request, nullptr, &grid).front();
        benchmark::DoNotOptimize(r.icache(0).stats.totalMisses());
    }
    const double per_iter = state.iterations()
        ? std::chrono::duration<double>(
              std::chrono::steady_clock::now() - t0)
                .count() /
            double(state.iterations())
        : 0.0;

    if (threads == 1)
        serial_seconds = per_iter;
    state.counters["threads"] = double(threads);
    if (threads > 1 && serial_seconds > 0.0 && per_iter > 0.0)
        state.counters["speedup_vs_serial"] = serial_seconds / per_iter;
    state.SetItemsProcessed(state.iterations() *
                            int64_t(request.references));
}
BENCHMARK(BM_SweepTable5Grid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/** Scoring/ranking loop over the full Table 5 grid, serial vs
 * parallel sharding by TLB geometry. */
void
BM_RankTable5Grid(benchmark::State &state)
{
    static double serial_seconds = 0.0;
    const unsigned threads = unsigned(state.range(0));

    ConfigSpace space;
    ComponentCpiTables tables;
    tables.tlbGeoms = space.tlbGeometries();
    tables.icacheGeoms = space.cacheGeometries();
    tables.dcacheGeoms = space.cacheGeometries();
    tables.tlbCpi.resize(tables.tlbGeoms.size());
    for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
        tables.tlbCpi[i] = 0.01 * double(i % 5);
    tables.icacheCpi.resize(tables.icacheGeoms.size());
    for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
        tables.icacheCpi[i] = 0.02 * double(i % 7);
    tables.dcacheCpi.resize(tables.dcacheGeoms.size());
    for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
        tables.dcacheCpi[i] = 0.015 * double(i % 6);

    api::QueryEngine engine;
    api::AllocationRequest request;
    request.budgetRbe = 250000.0;
    request.maxCacheWays = 8;
    request.topK = 0;
    request.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (auto _ : state) {
        const auto response = engine.rank(request, tables);
        benchmark::DoNotOptimize(response.allocations.data());
    }
    const double per_iter = state.iterations()
        ? std::chrono::duration<double>(
              std::chrono::steady_clock::now() - t0)
                .count() /
            double(state.iterations())
        : 0.0;
    if (threads == 1)
        serial_seconds = per_iter;
    state.counters["threads"] = double(threads);
    if (threads > 1 && serial_seconds > 0.0 && per_iter > 0.0)
        state.counters["speedup_vs_serial"] = serial_seconds / per_iter;
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankTable5Grid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Recording a stream into the packed RecordedTrace, with counters
 * tracking its footprint against the retired three-vector scheme
 * (a MemRef vector plus separate fetch-paddr and filtered-data
 * vectors) so the sweep-memory reduction stays in the perf
 * trajectory: bytes_per_ref vs legacy_bytes_per_ref and their ratio.
 */
void
BM_RecordTrace(benchmark::State &state)
{
    const std::uint64_t refs = 1 << 18;
    RecordedTrace trace;
    for (auto _ : state) {
        System system(benchmarkParams(BenchmarkId::Mpeg),
                      OsKind::Mach, 42);
        trace = system.record(refs);
        benchmark::DoNotOptimize(trace.byteSize());
    }

    std::uint64_t fetches = 0, data = 0;
    trace.replayFetchPaddrs([&](std::uint64_t) { ++fetches; });
    trace.replayCachedData([&](std::uint64_t, RefKind) { ++data; });
    const double n = double(std::max<std::uint64_t>(1, trace.size()));
    const double packed = double(trace.byteSize());
    const double legacy = n * double(sizeof(MemRef)) +
        double(fetches) * double(sizeof(std::uint64_t)) +
        double(data) * 16.0 /* paddr + kind, padded */;
    state.counters["bytes_per_ref"] = packed / n;
    state.counters["legacy_bytes_per_ref"] = legacy / n;
    state.counters["footprint_reduction"] = legacy / packed;
    state.counters["events"] = double(trace.events().size());
    state.SetItemsProcessed(state.iterations() * int64_t(refs));
}
BENCHMARK(BM_RecordTrace)->Unit(benchmark::kMillisecond);

/** One shared recording for the replay-kernel comparison. */
const RecordedTrace &
replayKernelTrace()
{
    static RecordedTrace trace;
    if (trace.empty()) {
        System system(benchmarkParams(BenchmarkId::Mpeg),
                      OsKind::Mach, 42);
        trace = system.record(1 << 18);
    }
    return trace;
}

/**
 * The tentpole comparison: one sweep replay leg (I-cache fetches,
 * D-cache data, one MMU) driven per-reference through the scalar
 * views vs through the batched chunk kernels, over the same
 * recording. Arg(0) (scalar) is registered before Arg(1) (batched)
 * so the batched run can report its measured speedup; the run report
 * gains the `replay/speedup_vs_scalar` gauge the CI replay-
 * equivalence job gates on, plus the v3 encoded footprint
 * (`trace/bytes_per_ref`, `trace/encoded_bytes`).
 */
void
BM_ReplayKernel(benchmark::State &state)
{
    static double scalar_seconds = 0.0;
    const RecordedTrace &trace = replayKernelTrace();
    const bool batched = state.range(0) != 0;

    CacheParams cp;
    cp.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    TlbParams tp;
    tp.geom = TlbGeometry::fullyAssoc(64);

    const auto t0 = std::chrono::steady_clock::now();
    for (auto _ : state) {
        Cache icache(cp), dcache(cp);
        Mmu mmu(tp, TlbPenalties());
        if (batched) {
            replayFetchBatched(trace, icache);
            replayCachedDataBatched(trace, dcache);
            replayTranslateBatched(trace, mmu);
        } else {
            trace.replayFetchPaddrs([&](std::uint64_t paddr) {
                icache.access(paddr, RefKind::IFetch);
            });
            trace.replayCachedData(
                [&](std::uint64_t paddr, RefKind kind) {
                    dcache.access(paddr, kind);
                });
            trace.replay(
                [&](const MemRef &ref) { mmu.translate(ref); },
                [&](const TraceEvent &e) {
                    mmu.invalidatePage(e.vpn, e.asid, e.global);
                });
        }
        benchmark::DoNotOptimize(icache.stats().totalMisses() +
                                 dcache.stats().totalMisses() +
                                 mmu.stats().totalMisses());
    }
    const double per_iter = state.iterations()
        ? std::chrono::duration<double>(
              std::chrono::steady_clock::now() - t0)
                .count() /
            double(state.iterations())
        : 0.0;

    state.counters["batched"] = batched ? 1.0 : 0.0;
    if (!batched) {
        scalar_seconds = per_iter;
    } else if (scalar_seconds > 0.0 && per_iter > 0.0) {
        const double speedup = scalar_seconds / per_iter;
        state.counters["speedup_vs_scalar"] = speedup;
        if (g_report != nullptr) {
            g_report->metrics().set("replay/speedup_vs_scalar",
                                    speedup);
        }
    }
    if (batched && g_report != nullptr) {
        const std::string encoded = store::encodeTrace(trace);
        g_report->metrics().add("trace/encoded_bytes",
                                encoded.size());
        g_report->metrics().set("trace/bytes_per_ref",
                                double(encoded.size()) /
                                    double(trace.size()));
    }
    // Three replay legs consume the full stream each iteration.
    state.SetItemsProcessed(state.iterations() *
                            int64_t(3 * trace.size()));
}
BENCHMARK(BM_ReplayKernel)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Replaying one shared recording through a Table 5 grid subset —
 * the phase-2 half of ComponentSweep::run, as driven by a v2 trace
 * file. The bytes_per_ref counter is the recording actually being
 * replayed, so ≥2x reduction versus legacy_bytes_per_ref above is
 * checkable from one JSON report.
 */
void
BM_ReplaySweep(benchmark::State &state)
{
    static RecordedTrace trace;
    if (trace.empty()) {
        System system(benchmarkParams(BenchmarkId::Mpeg),
                      OsKind::Mach, 42);
        trace = system.record(100000);
    }
    const unsigned threads = unsigned(state.range(0));

    ConfigSpace space;
    space.lineWords = {1, 4, 8};
    space.cacheWays = {1, 2};
    ComponentSweep sweep(space.cacheGeometries(2),
                         space.cacheGeometries(2),
                         space.tlbGeometries());
    for (auto _ : state) {
        const SweepResult r = sweep.run(trace, threads);
        benchmark::DoNotOptimize(r.icache(0).stats.totalMisses());
    }
    state.counters["threads"] = double(threads);
    state.counters["bytes_per_ref"] = double(trace.byteSize()) /
        double(std::max<std::uint64_t>(1, trace.size()));
    // The stored (v3 delta/varint) footprint of the same recording.
    state.counters["encoded_bytes_per_ref"] =
        double(store::encodeTrace(trace).size()) /
        double(std::max<std::uint64_t>(1, trace.size()));
    state.SetItemsProcessed(state.iterations() *
                            int64_t(trace.size()));
}
BENCHMARK(BM_ReplaySweep)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Warm artifact-store sweeps: one cold run primes a throwaway store
 * directory outside the timed region, then every timed iteration
 * replays entirely from cached shards — zero record-phase work. The
 * warm run's observation counters are copied into BENCH_speed.json
 * under `store_warm/` so the record-skip claim is checkable from the
 * report: `store_warm/sweep/records` must be 0 while
 * `store_warm/store/trace_hits` counts one hit per iteration.
 */
void
BM_SweepStoreWarm(benchmark::State &state)
{
    namespace fs = std::filesystem;
    const unsigned threads = unsigned(state.range(0));
    const std::string dir =
        (fs::temp_directory_path() /
         ("oma_bench_store." + std::to_string(::getpid()) + "." +
          std::to_string(threads)))
            .string();

    ConfigSpace space;
    space.lineWords = {1, 4, 8};
    space.cacheWays = {1, 2};
    api::QueryEngineConfig config;
    config.storeDir = dir;
    api::QueryEngine engine(config);
    api::SweepGrid grid;
    grid.icacheGeoms = space.cacheGeometries(2);
    grid.dcacheGeoms = space.cacheGeometries(2);
    grid.tlbGeoms = space.tlbGeometries();
    api::AllocationRequest request;
    request.workloads = {BenchmarkId::Mpeg};
    request.os = OsKind::Mach;
    request.references = 100000;
    request.threads = threads;

    // Cold prime: records live and fills the store.
    (void)engine.sweep(request, nullptr, &grid);

    obs::Observation warm;
    for (auto _ : state) {
        const SweepResult r =
            engine.sweep(request, &warm, &grid).front();
        benchmark::DoNotOptimize(r.icache(0).stats.totalMisses());
    }

    const double iters =
        double(std::max<std::int64_t>(1, state.iterations()));
    state.counters["threads"] = double(threads);
    state.counters["records"] =
        double(warm.metrics.counter("sweep/records"));
    state.counters["trace_hits_per_iter"] =
        double(warm.metrics.counter("store/trace_hits")) / iters;
    if (g_report != nullptr) {
        for (const char *name :
             {"sweep/records", "sweep/record_skips",
              "store/trace_hits", "store/hits", "store/misses",
              "store/writes", "store/quarantined"}) {
            g_report->metrics().add(std::string("store_warm/") + name,
                                    warm.metrics.counter(name));
        }
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
    state.SetItemsProcessed(state.iterations() *
                            int64_t(request.references));
}
BENCHMARK(BM_SweepStoreWarm)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_FullMachineStep(benchmark::State &state)
{
    System system(benchmarkParams(BenchmarkId::Mpeg), OsKind::Mach,
                  42);
    Machine machine(MachineParams::decstation3100());
    MemRef ref;
    for (auto _ : state) {
        system.next(ref);
        machine.observe(ref);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullMachineStep);

} // namespace

// Expanded BENCHMARK_MAIN() so the run also emits a BENCH_speed.json
// report alongside google-benchmark's own console/JSON output.
int
main(int argc, char **argv)
{
    omabench::BenchReport report("speed");
    g_report = &report;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
    report.metrics().add("speed/benchmarks_run", ran);
    benchmark::Shutdown();
    return 0;
}
