/**
 * @file
 * Property tests on cache-simulator invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

/** A mixed random/sequential/looping address stream. */
std::vector<std::uint64_t>
mixedStream(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<std::uint64_t> addrs;
    addrs.reserve(n);
    std::uint64_t seq = 0;
    while (addrs.size() < n) {
        const double mode = rng.uniform();
        if (mode < 0.4) {
            // Sequential run.
            const std::uint64_t len = rng.range(4, 32);
            for (std::uint64_t i = 0; i < len && addrs.size() < n; ++i) {
                addrs.push_back(seq);
                seq += 4;
            }
        } else if (mode < 0.8) {
            // Hot working set.
            addrs.push_back(rng.below(512) * 4);
        } else {
            // Cold scatter.
            addrs.push_back(rng.below(1 << 20) * 4);
        }
    }
    return addrs;
}

std::uint64_t
missesFor(const CacheParams &params,
          const std::vector<std::uint64_t> &addrs)
{
    Cache cache(params);
    for (std::uint64_t a : addrs)
        cache.access(a, RefKind::Load);
    return cache.stats().totalMisses();
}

class StreamSeed : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    std::vector<std::uint64_t> addrs = mixedStream(GetParam(), 40000);
};

TEST_P(StreamSeed, LruInclusionAcrossWays)
{
    // With the set count fixed, an LRU cache with more ways misses
    // no more than one with fewer ways (the stack inclusion
    // property).
    for (std::uint64_t sets : {16, 64}) {
        std::uint64_t prev = ~0ULL;
        for (std::uint64_t ways : {1, 2, 4, 8}) {
            CacheParams p;
            p.geom = CacheGeometry(sets * 16 * ways, 16, ways);
            const std::uint64_t misses = missesFor(p, addrs);
            EXPECT_LE(misses, prev)
                << p.geom.describe() << " sets=" << sets;
            prev = misses;
        }
    }
}

TEST_P(StreamSeed, FullyAssociativeLruMonotoneInCapacity)
{
    std::uint64_t prev = ~0ULL;
    for (std::uint64_t lines : {4, 8, 16, 32, 64}) {
        CacheParams p;
        p.geom = CacheGeometry(lines * 16, 16, lines);
        const std::uint64_t misses = missesFor(p, addrs);
        EXPECT_LE(misses, prev);
        prev = misses;
    }
}

TEST_P(StreamSeed, CompulsoryMissesIndependentOfGeometry)
{
    // Every cache sees the same distinct lines, so compulsory misses
    // must agree across geometries with the same line size.
    CacheParams a;
    a.geom = CacheGeometry(2048, 16, 1);
    CacheParams b;
    b.geom = CacheGeometry(16384, 16, 8);
    Cache ca(a), cb(b);
    for (std::uint64_t addr : addrs) {
        ca.access(addr, RefKind::Load);
        cb.access(addr, RefKind::Load);
    }
    EXPECT_EQ(ca.stats().compulsoryMisses, cb.stats().compulsoryMisses);
}

TEST_P(StreamSeed, MissesNeverBelowCompulsory)
{
    CacheParams p;
    p.geom = CacheGeometry(64 * 1024, 16, 4);
    Cache cache(p);
    for (std::uint64_t addr : addrs)
        cache.access(addr, RefKind::Load);
    EXPECT_GE(cache.stats().totalMisses(),
              cache.stats().compulsoryMisses);
}

TEST_P(StreamSeed, LruNeverWorseThanFifoOnAverageStreams)
{
    // Not a theorem in general (Belady anomalies exist for FIFO),
    // but on these mixed streams LRU should not lose by much; we
    // assert a loose bound to catch gross policy implementation bugs.
    CacheParams lru;
    lru.geom = CacheGeometry(4096, 16, 4);
    lru.repl = ReplacementPolicy::Lru;
    CacheParams fifo = lru;
    fifo.repl = ReplacementPolicy::Fifo;
    const std::uint64_t m_lru = missesFor(lru, addrs);
    const std::uint64_t m_fifo = missesFor(fifo, addrs);
    EXPECT_LT(double(m_lru), 1.05 * double(m_fifo));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace oma
