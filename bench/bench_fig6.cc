/**
 * @file
 * Figure 6: area cost for caches of different capacity and line size
 * (direct-mapped, 1/2/4/8-word lines).
 */

#include <iostream>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "support/table.hh"

using namespace oma;

int
main()
{
    omabench::banner("Area cost for caches of different capacity and "
                     "line size",
                     "Figure 6");

    omabench::BenchReport report("fig6");
    AreaModel model;
    TextTable table({"Capacity", "1-word", "2-word", "4-word",
                     "8-word", "8w saving vs 1w"});
    for (std::uint64_t kb : {2, 4, 8, 16, 32, 64}) {
        std::vector<std::string> row = {fmtKBytes(kb * 1024)};
        double w1 = 0, w8 = 0;
        for (std::uint64_t words : {1, 2, 4, 8}) {
            const double area = model.cacheArea(
                CacheGeometry::fromWords(kb * 1024, words, 1));
            if (words == 1)
                w1 = area;
            if (words == 8)
                w8 = area;
            report.metrics().add("area/cache_configs");
            report.metrics().observe("area/cache_rbe",
                                     std::uint64_t(area));
            row.push_back(fmtGrouped(std::uint64_t(area)));
        }
        report.metrics().set("area/saving_8w_vs_1w_" +
                                 std::to_string(kb) + "kb",
                             1.0 - w8 / w1);
        row.push_back(fmtPercent(1.0 - w8 / w1, 1));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nShape check: larger line sizes amortize tag and "
                 "status bits over more data bits; the paper reads "
                 "savings of up to ~37% from 1-word to 8-word "
                 "lines.\n";
    return 0;
}
