/**
 * @file
 * Implementation of the artifact byte codecs.
 */

#include "store/codec.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "trace/codec.hh"

namespace oma::store
{

namespace
{

void
appendU8(std::string &out, std::uint8_t v)
{
    out.push_back(char(v));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendF64(std::string &out, double v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

/** Bounds-checked cursor over an encoded payload. */
class Reader
{
  public:
    explicit Reader(std::string_view in) : _in(in) {}

    bool
    u8(std::uint8_t &v)
    {
        if (remaining() < sizeof v)
            return fail();
        v = std::uint8_t(_in[_pos]);
        _pos += sizeof v;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        return raw(&v, sizeof v);
    }

    bool
    u64(std::uint64_t &v)
    {
        return raw(&v, sizeof v);
    }

    bool
    f64(double &v)
    {
        return raw(&v, sizeof v);
    }

    /** Borrow the next @p n bytes without copying them. */
    bool
    bytes(std::size_t n, std::string_view &v)
    {
        if (remaining() < n)
            return fail();
        v = _in.substr(_pos, n);
        _pos += n;
        return true;
    }

    /** True when every byte was consumed and nothing failed. */
    [[nodiscard]] bool
    done() const
    {
        return _ok && _pos == _in.size();
    }

  private:
    bool
    raw(void *dst, std::size_t n)
    {
        if (remaining() < n)
            return fail();
        std::memcpy(dst, _in.data() + _pos, n);
        _pos += n;
        return true;
    }

    [[nodiscard]] std::size_t remaining() const
    {
        return _in.size() - _pos;
    }

    bool
    fail()
    {
        _ok = false;
        return false;
    }

    std::string_view _in;
    std::size_t _pos = 0;
    bool _ok = true;
};

} // namespace

std::string
encodeTrace(const RecordedTrace &trace)
{
    // Header, then the event section (checksummed), then one framed
    // delta/varint payload per column chunk. Events come first so
    // the decoder can interleave them while streaming the chunks.
    std::string out;
    appendU64(out, trace.size());
    appendU64(out, trace.events().size());
    appendF64(out, trace.otherCpi());
    const std::size_t events_start = out.size();
    for (const TraceEvent &e : trace.events()) {
        appendU64(out, e.index);
        appendU64(out, e.vpn);
        appendU32(out, e.asid);
        appendU8(out, e.global ? 1 : 0);
    }
    appendU32(out, trace::fnv1a32(
                       std::string_view(out).substr(events_start)));
    for (std::size_t c = 0; c < trace.numChunks(); ++c) {
        const TraceChunkView v = trace.chunkView(c);
        const std::string chunk = trace::encodeColumns(
            v.vaddr, v.paddr, v.asid, v.flags, v.size);
        appendU32(out, std::uint32_t(v.size));
        appendU32(out, std::uint32_t(chunk.size()));
        appendU32(out, trace::fnv1a32(chunk));
        out += chunk;
    }
    return out;
}

bool
decodeTrace(std::string_view payload, RecordedTrace &trace)
{
    Reader r(payload);
    std::uint64_t size = 0, event_count = 0;
    double other_cpi = 0.0;
    if (!r.u64(size) || !r.u64(event_count) || !r.f64(other_cpi))
        return false;

    // The event section precedes the chunks, but
    // recordInvalidation() pins an event to the *current* append
    // position — so parse the events first, then interleave them
    // while streaming the chunks.
    if (event_count > payload.size()) // also caps the * 21 below
        return false;
    std::string_view event_bytes;
    std::uint32_t events_sum = 0;
    if (!r.bytes(std::size_t(event_count) * 21, event_bytes) ||
        !r.u32(events_sum) ||
        trace::fnv1a32(event_bytes) != events_sum) {
        return false;
    }
    std::vector<TraceEvent> events;
    events.reserve(std::size_t(event_count));
    {
        Reader ev(event_bytes);
        for (std::uint64_t i = 0; i < event_count; ++i) {
            TraceEvent e{};
            std::uint8_t global = 0;
            if (!ev.u64(e.index) || !ev.u64(e.vpn) || !ev.u32(e.asid) ||
                !ev.u8(global)) {
                return false;
            }
            e.global = global != 0;
            events.push_back(e);
        }
        if (!ev.done())
            return false;
    }

    RecordedTrace decoded;
    std::size_t next_event = 0;
    std::uint64_t index = 0;
    trace::ChunkColumns cols;
    while (index < size) {
        // RecordedTrace chunks deterministically, so every chunk but
        // the last must hold exactly chunkRefs references.
        const std::size_t expect = std::size_t(
            std::min<std::uint64_t>(RecordedTrace::chunkRefs,
                                    size - index));
        std::uint32_t ref_count = 0, chunk_bytes = 0, chunk_sum = 0;
        std::string_view chunk;
        if (!r.u32(ref_count) || !r.u32(chunk_bytes) ||
            !r.u32(chunk_sum) || ref_count != expect ||
            !r.bytes(chunk_bytes, chunk) ||
            trace::fnv1a32(chunk) != chunk_sum ||
            !trace::decodeColumns(chunk, expect, cols)) {
            return false;
        }
        for (std::size_t i = 0; i < expect; ++i, ++index) {
            while (next_event < events.size() &&
                   events[next_event].index == index) {
                const TraceEvent &e = events[next_event++];
                decoded.recordInvalidation(e.vpn, e.asid, e.global);
            }
            MemRef ref;
            ref.vaddr = cols.vaddr[i];
            ref.paddr = cols.paddr[i];
            ref.asid = cols.asid[i];
            RecordedTrace::unpackFlags(cols.flags[i], ref);
            decoded.append(ref);
        }
    }
    // Events recorded after the final reference.
    for (; next_event < events.size(); ++next_event) {
        const TraceEvent &e = events[next_event];
        if (e.index != size)
            return false;
        decoded.recordInvalidation(e.vpn, e.asid, e.global);
    }
    if (!r.done())
        return false;
    decoded.setOtherCpi(other_cpi);
    trace = std::move(decoded);
    return true;
}

std::string
encodeCacheStats(const CacheStats &s)
{
    std::string out;
    appendU64(out, numRefKinds);
    for (unsigned k = 0; k < numRefKinds; ++k)
        appendU64(out, s.accesses[k]);
    for (unsigned k = 0; k < numRefKinds; ++k)
        appendU64(out, s.misses[k]);
    appendU64(out, s.lineFills);
    appendU64(out, s.writebacks);
    appendU64(out, s.writeThroughWords);
    appendU64(out, s.compulsoryMisses);
    return out;
}

bool
decodeCacheStats(std::string_view payload, CacheStats &s)
{
    Reader r(payload);
    std::uint64_t kinds = 0;
    if (!r.u64(kinds) || kinds != numRefKinds)
        return false;
    CacheStats decoded;
    for (unsigned k = 0; k < numRefKinds; ++k)
        if (!r.u64(decoded.accesses[k]))
            return false;
    for (unsigned k = 0; k < numRefKinds; ++k)
        if (!r.u64(decoded.misses[k]))
            return false;
    if (!r.u64(decoded.lineFills) || !r.u64(decoded.writebacks) ||
        !r.u64(decoded.writeThroughWords) ||
        !r.u64(decoded.compulsoryMisses) || !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

std::string
encodeMmuStats(const MmuStats &s)
{
    std::string out;
    appendU64(out, numMissClasses);
    appendU64(out, s.translations);
    for (unsigned c = 0; c < numMissClasses; ++c)
        appendU64(out, s.counts[c]);
    for (unsigned c = 0; c < numMissClasses; ++c)
        appendU64(out, s.cycles[c]);
    appendU64(out, s.asidFlushes);
    return out;
}

bool
decodeMmuStats(std::string_view payload, MmuStats &s)
{
    Reader r(payload);
    std::uint64_t classes = 0;
    if (!r.u64(classes) || classes != numMissClasses)
        return false;
    MmuStats decoded;
    if (!r.u64(decoded.translations))
        return false;
    for (unsigned c = 0; c < numMissClasses; ++c)
        if (!r.u64(decoded.counts[c]))
            return false;
    for (unsigned c = 0; c < numMissClasses; ++c)
        if (!r.u64(decoded.cycles[c]))
            return false;
    if (!r.u64(decoded.asidFlushes) || !r.done())
        return false;
    s = decoded;
    return true;
}

std::string
encodeMachineShard(const MachineShard &s)
{
    std::string out;
    appendU64(out, s.instructions);
    appendU64(out, s.icacheStall);
    appendU64(out, s.dcacheStall);
    appendU64(out, s.wbStall);
    appendU64(out, s.tlbStall);
    appendU64(out, s.wbStores);
    appendU64(out, s.wbStallCycles);
    return out;
}

bool
decodeMachineShard(std::string_view payload, MachineShard &s)
{
    Reader r(payload);
    MachineShard decoded;
    if (!r.u64(decoded.instructions) || !r.u64(decoded.icacheStall) ||
        !r.u64(decoded.dcacheStall) || !r.u64(decoded.wbStall) ||
        !r.u64(decoded.tlbStall) || !r.u64(decoded.wbStores) ||
        !r.u64(decoded.wbStallCycles) || !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

std::string
encodeVictimStats(const VictimStats &s)
{
    std::string out;
    appendU64(out, s.accesses);
    appendU64(out, s.l1Hits);
    appendU64(out, s.victimHits);
    appendU64(out, s.misses);
    return out;
}

bool
decodeVictimStats(std::string_view payload, VictimStats &s)
{
    Reader r(payload);
    VictimStats decoded;
    if (!r.u64(decoded.accesses) || !r.u64(decoded.l1Hits) ||
        !r.u64(decoded.victimHits) || !r.u64(decoded.misses) ||
        !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

std::string
encodeWriteBufferStats(const WriteBufferStats &s)
{
    std::string out;
    appendU64(out, s.instructions);
    appendU64(out, s.stores);
    appendU64(out, s.stallCycles);
    return out;
}

bool
decodeWriteBufferStats(std::string_view payload, WriteBufferStats &s)
{
    Reader r(payload);
    WriteBufferStats decoded;
    if (!r.u64(decoded.instructions) || !r.u64(decoded.stores) ||
        !r.u64(decoded.stallCycles) || !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

std::string
encodeHierarchyStats(const HierarchyStats &s)
{
    std::string out;
    appendU64(out, s.instructions);
    appendU64(out, s.dataRefs);
    appendU64(out, s.l1Misses);
    appendU64(out, s.l2Hits);
    appendU64(out, s.l2Misses);
    appendU64(out, s.portConflicts);
    appendU64(out, s.stallCycles);
    return out;
}

bool
decodeHierarchyStats(std::string_view payload, HierarchyStats &s)
{
    Reader r(payload);
    HierarchyStats decoded;
    if (!r.u64(decoded.instructions) || !r.u64(decoded.dataRefs) ||
        !r.u64(decoded.l1Misses) || !r.u64(decoded.l2Hits) ||
        !r.u64(decoded.l2Misses) || !r.u64(decoded.portConflicts) ||
        !r.u64(decoded.stallCycles) || !r.done()) {
        return false;
    }
    s = decoded;
    return true;
}

} // namespace oma::store
