/**
 * @file
 * Implementation of binary trace file I/O.
 */

#include "trace/tracefile.hh"

#include <cstring>

#include "support/logging.hh"
#include "trace/codec.hh"

namespace oma
{

namespace
{

/** Packed v1 on-disk record layout (24 bytes). */
struct PackedRefV1
{
    std::uint64_t vaddr;
    std::uint64_t paddr;
    std::uint32_t asid;
    std::uint8_t kind;
    std::uint8_t mode;
    std::uint8_t mapped;
    std::uint8_t pad;
};

static_assert(sizeof(PackedRefV1) == 24, "unexpected record padding");

/** Packed v2 on-disk event layout (24 bytes, explicit padding). */
struct PackedEvent
{
    std::uint64_t index;
    std::uint64_t vpn;
    std::uint32_t asid;
    std::uint8_t global;
    std::uint8_t pad[3];
};

static_assert(sizeof(PackedEvent) == 24, "unexpected event padding");

/** Per-chunk on-disk header (v2). */
struct ChunkHeader
{
    std::uint32_t refCount;
    std::uint32_t eventCount;
};

/**
 * Per-chunk on-disk header (v3). The chunk body is @c payloadBytes of
 * delta/varint payload (trace/codec.hh) followed by @c eventCount
 * packed events; @c checksum is FNV-1a over both.
 */
struct ChunkHeaderV3
{
    std::uint32_t refCount;
    std::uint32_t eventCount;
    std::uint32_t payloadBytes;
    std::uint32_t checksum;
};

MemRef
unpackV1(const PackedRefV1 &p)
{
    MemRef ref;
    ref.vaddr = p.vaddr;
    ref.paddr = p.paddr;
    ref.asid = p.asid;
    ref.kind = static_cast<RefKind>(p.kind);
    ref.mode = static_cast<Mode>(p.mode);
    ref.mapped = p.mapped != 0;
    return ref;
}

template <typename T>
void
writeRaw(std::ofstream &out, const T &value)
{
    // oma-lint: allow(cast-audit): T is trivially copyable; viewing
    // its object representation as chars is defined byte I/O.
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
readRaw(std::ifstream &in, T &value)
{
    // oma-lint: allow(cast-audit): fills the object representation of
    // a trivially-copyable T; any bit pattern is a valid value.
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return bool(in);
}

template <typename T>
bool
readColumn(std::ifstream &in, std::vector<T> &column, std::size_t n)
{
    column.resize(n);
    // oma-lint: allow(cast-audit): resize() created n live elements;
    // the char view fills exactly their object representations.
    in.read(reinterpret_cast<char *>(column.data()),
            std::streamsize(n * sizeof(T)));
    return bool(in);
}

template <typename T>
void
appendRaw(std::string &out, const T &value)
{
    // oma-lint: allow(cast-audit): T is trivially copyable; viewing
    // its object representation as chars is defined byte I/O.
    out.append(reinterpret_cast<const char *>(&value), sizeof(value));
}

bool
readBytes(std::ifstream &in, std::string &out, std::size_t n)
{
    out.resize(n);
    in.read(out.data(), std::streamsize(n));
    return bool(in);
}

/** Serialize a chunk's events the way both v2 and v3 store them. */
std::string
packEvents(const std::vector<TraceEvent> &events)
{
    std::string out;
    out.reserve(events.size() * sizeof(PackedEvent));
    for (const TraceEvent &e : events) {
        PackedEvent p = {};
        p.index = e.index;
        p.vpn = e.vpn;
        p.asid = e.asid;
        p.global = e.global ? 1 : 0;
        appendRaw(out, p);
    }
    return out;
}

} // namespace

std::size_t
TraceFileHeader::sizeForVersion(std::uint32_t version)
{
    // v1: magic, version, reserved, recordCount. v2 appends the
    // event count and the stream's non-memory stall rate.
    const std::size_t v1_bytes = 24;
    return version >= 2 ? v1_bytes + 16 : v1_bytes;
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : _out(path, std::ios::binary | std::ios::trunc), _path(path)
{
    fatalIf(!_out, "cannot open trace file for writing: " + path);
    TraceFileHeader header;
    writeRaw(_out, header.magic);
    writeRaw(_out, header.version);
    writeRaw(_out, header.reserved);
    writeRaw(_out, header.recordCount);
    writeRaw(_out, header.eventCount);
    writeRaw(_out, header.otherCpi);
    checkStream("header write");
    _open = true;
}

TraceFileWriter::~TraceFileWriter()
{
    if (_open)
        close();
}

void
TraceFileWriter::checkStream(const char *what)
{
    fatalIf(!_out, std::string(what) + " failed (disk full?) on " +
            "trace file: " + _path);
}

void
TraceFileWriter::put(const MemRef &ref)
{
    panicIf(!_open, "write to closed TraceFileWriter");
    RecordedTrace::checkEncodable(ref);
    _vaddr.push_back(std::uint32_t(ref.vaddr));
    _paddr.push_back(std::uint32_t(ref.paddr));
    _asid.push_back(std::uint8_t(ref.asid));
    _flags.push_back(RecordedTrace::packFlags(ref));
    ++_count;
    if (_vaddr.size() >= RecordedTrace::chunkRefs)
        flushChunk();
}

void
TraceFileWriter::putInvalidation(std::uint64_t vpn, std::uint32_t asid,
                                 bool global)
{
    panicIf(!_open, "write to closed TraceFileWriter");
    _chunkEvents.push_back({_count, vpn, asid, global});
    ++_eventCount;
}

void
TraceFileWriter::flushChunk()
{
    if (_vaddr.empty() && _chunkEvents.empty())
        return;
    const std::string payload =
        trace::encodeColumns(_vaddr.data(), _paddr.data(),
                             _asid.data(), _flags.data(),
                             _vaddr.size());
    const std::string events = packEvents(_chunkEvents);
    ChunkHeaderV3 ch;
    ch.refCount = std::uint32_t(_vaddr.size());
    ch.eventCount = std::uint32_t(_chunkEvents.size());
    ch.payloadBytes = std::uint32_t(payload.size());
    ch.checksum = trace::fnv1a32(events, trace::fnv1a32(payload));
    writeRaw(_out, ch);
    _out.write(payload.data(), std::streamsize(payload.size()));
    _out.write(events.data(), std::streamsize(events.size()));
    checkStream("chunk write");
    _vaddr.clear();
    _paddr.clear();
    _asid.clear();
    _flags.clear();
    _chunkEvents.clear();
}

void
TraceFileWriter::close()
{
    if (!_open)
        return;
    flushChunk();
    _out.seekp(0);
    TraceFileHeader header;
    header.recordCount = _count;
    header.eventCount = _eventCount;
    header.otherCpi = _otherCpi;
    writeRaw(_out, header.magic);
    writeRaw(_out, header.version);
    writeRaw(_out, header.reserved);
    writeRaw(_out, header.recordCount);
    writeRaw(_out, header.eventCount);
    writeRaw(_out, header.otherCpi);
    checkStream("header patch");
    _out.close();
    checkStream("close");
    _open = false;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : _in(path, std::ios::binary), _path(path)
{
    fatalIf(!_in, "cannot open trace file for reading: " + path);
    bool ok = readRaw(_in, _header.magic) &&
        readRaw(_in, _header.version) &&
        readRaw(_in, _header.reserved) &&
        readRaw(_in, _header.recordCount);
    fatalIf(!ok || _header.magic != TraceFileHeader::magicValue,
            "not a trace file: " + path);
    fatalIf(_header.version < 1 ||
                _header.version > TraceFileHeader::currentVersion,
            "unsupported trace file version in " + path);
    if (_header.version >= 2) {
        ok = readRaw(_in, _header.eventCount) &&
            readRaw(_in, _header.otherCpi);
        fatalIf(!ok, "truncated trace file header: " + path);
    }
}

bool
TraceFileReader::next(MemRef &ref)
{
    if (_read >= _header.recordCount)
        return false;
    return _header.version == 1 ? nextV1(ref) : nextChunked(ref);
}

bool
TraceFileReader::nextV1(MemRef &ref)
{
    PackedRefV1 p;
    if (!readRaw(_in, p))
        return false;
    ref = unpackV1(p);
    ++_read;
    return true;
}

bool
TraceFileReader::loadChunk()
{
    std::uint32_t ref_count = 0, event_count = 0;
    std::string event_bytes;
    if (_header.version >= 3) {
        ChunkHeaderV3 ch;
        if (!readRaw(_in, ch))
            return false;
        ref_count = ch.refCount;
        event_count = ch.eventCount;
        std::string payload;
        fatalIf(!readBytes(_in, payload, ch.payloadBytes) ||
                    !readBytes(_in, event_bytes,
                               std::size_t(event_count) *
                                   sizeof(PackedEvent)),
                "truncated trace file chunk: " + _path);
        fatalIf(trace::fnv1a32(event_bytes,
                               trace::fnv1a32(payload)) != ch.checksum,
                "corrupt trace file chunk (checksum): " + _path);
        trace::ChunkColumns cols;
        fatalIf(!trace::decodeColumns(payload, ref_count, cols),
                "corrupt trace file chunk (encoding): " + _path);
        _vaddr = std::move(cols.vaddr);
        _paddr = std::move(cols.paddr);
        _asid = std::move(cols.asid);
        _flags = std::move(cols.flags);
    } else {
        ChunkHeader ch;
        if (!readRaw(_in, ch))
            return false;
        ref_count = ch.refCount;
        event_count = ch.eventCount;
        const bool ok = readColumn(_in, _vaddr, ref_count) &&
            readColumn(_in, _paddr, ref_count) &&
            readColumn(_in, _asid, ref_count) &&
            readColumn(_in, _flags, ref_count) &&
            readBytes(_in, event_bytes,
                      std::size_t(event_count) * sizeof(PackedEvent));
        fatalIf(!ok, "truncated trace file chunk: " + _path);
    }
    _chunkEvents.clear();
    _chunkEvents.reserve(event_count);
    for (std::uint32_t i = 0; i < event_count; ++i) {
        PackedEvent p;
        std::memcpy(&p, event_bytes.data() + i * sizeof(PackedEvent),
                    sizeof(PackedEvent));
        _chunkEvents.push_back({p.index, p.vpn, p.asid, p.global != 0});
    }
    _chunkPos = 0;
    _chunkEventPos = 0;
    return true;
}

bool
TraceFileReader::nextChunked(MemRef &ref)
{
    // The loop (not an `if`) makes a chunk advertising zero
    // references — which only a corrupt or hand-built file contains —
    // skip ahead instead of reading past the empty column arrays.
    while (_chunkPos >= _vaddr.size()) {
        if (!loadChunk())
            return false;
    }
    while (_chunkEventPos < _chunkEvents.size() &&
           _chunkEvents[_chunkEventPos].index == _read) {
        const TraceEvent &e = _chunkEvents[_chunkEventPos++];
        if (_hook)
            _hook(e.vpn, e.asid, e.global);
    }
    ref.vaddr = _vaddr[_chunkPos];
    ref.paddr = _paddr[_chunkPos];
    ref.asid = _asid[_chunkPos];
    RecordedTrace::unpackFlags(_flags[_chunkPos], ref);
    ++_chunkPos;
    ++_read;
    return true;
}

void
writeTrace(const std::string &path, const RecordedTrace &trace)
{
    TraceFileWriter writer(path);
    writer.setOtherCpi(trace.otherCpi());
    trace.replay(
        [&](const MemRef &ref) { writer.put(ref); },
        [&](const TraceEvent &e) {
            writer.putInvalidation(e.vpn, e.asid, e.global);
        });
    writer.close();
}

RecordedTrace
readTrace(const std::string &path)
{
    TraceFileReader reader(path);
    RecordedTrace trace;
    reader.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            trace.recordInvalidation(vpn, asid, global);
        });
    MemRef ref;
    while (reader.next(ref))
        trace.append(ref);
    trace.setOtherCpi(reader.otherCpi());
    return trace;
}

} // namespace oma
