/**
 * @file
 * Table 7: allocations under the 250,000-rbe budget with cache
 * associativity restricted to 1 or 2 ways (access-time constrained
 * designs), plus one deliberately poor configuration for contrast.
 */

#include <iostream>

#include "bench/alloc_common.hh"

using namespace oma;

int
main()
{
    omabench::banner("Best area allocations with caches restricted "
                     "to 1-/2-way set associativity",
                     "Table 7");

    omabench::BenchReport report("table7");
    ConfigSpace space;
    const ComponentCpiTables tables =
        omabench::measureMachTables(space, &report);

    const auto ranked =
        omabench::rankAllocations(tables, 2, &report);
    std::cout << "In-budget allocations ranked: " << ranked.size()
              << "\n\n";

    // The paper samples ranks 1, 5, 13, 21, ... plus a poor #1529.
    std::vector<std::size_t> rows = {0, 4, 12, 20, 23, 26, 58, 60,
                                     72, 76, 91, 98, 112};
    if (ranked.size() > 1528)
        rows.push_back(1528);
    else if (!ranked.empty())
        rows.push_back(ranked.size() - 1);
    omabench::printAllocations(ranked, rows);

    // How far down the list until the TLB shrinks below 512 entries?
    std::size_t first_small_tlb = 0;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (ranked[i].tlb.entries < 512) {
            first_small_tlb = i + 1;
            break;
        }
    }
    std::cout << "\nFirst rank using a TLB smaller than 512 entries: "
              << first_small_tlb << "\n";

    std::cout
        << "\nPaper's Table 7 header row: 512-entry 8-way TLB, 32-KB "
           "8-word 2-way I-cache, 8-KB 4-word 2-way D-cache, "
           "239,259 rbes, CPI 1.428 (vs 1.333 unrestricted).\n"
           "Shape criteria: the associativity restriction raises the "
           "best achievable CPI; TLBs stay large; I-caches are "
           "typically 2-4x the D-cache; late ranks (like the "
           "paper's #1529) pair skinny lines with direct mapping and "
           "perform far worse.\n";
    return 0;
}
