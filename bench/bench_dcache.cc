/**
 * @file
 * Section 5.3's D-cache prose claims: Mach's D-cache miss ratios
 * exceed Ultrix's for small caches; line sizes and associativity
 * help the D-cache less than the I-cache; lines beyond 8 words
 * pollute under both systems; and in CPI terms lines above 4 words
 * begin to hurt.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/sweep.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

const std::vector<std::uint64_t> kSizes = {2, 4, 8, 16, 32};
const std::vector<std::uint64_t> kLines = {1, 2, 4, 8, 16, 32};

} // namespace

int
main()
{
    omabench::banner("Data-cache behaviour: miss ratios and CPI vs "
                     "line size (suite average, direct-mapped)",
                     "Section 5.3 (D-cache discussion)");

    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : kSizes)
        for (std::uint64_t words : kLines)
            geoms.push_back(
                CacheGeometry::fromWords(kb * 1024, words, 1));

    const MachineParams mp = MachineParams::decstation3100();

    omabench::BenchReport report("dcache");
    omabench::SweepSuiteSpec spec;
    spec.icacheGeoms = {CacheGeometry::fromWords(8 * 1024, 4, 1)};
    spec.dcacheGeoms = geoms;
    spec.tlbGeoms = {TlbGeometry::fullyAssoc(64)};
    spec.progressLabel = "D-cache grid sweep";
    for (const auto &[os, results] :
         omabench::runSweepSuite(spec, &report)) {
        const auto miss = omabench::suiteAverage(
            results, geoms.size(),
            [](const SweepResult &r, std::size_t i) {
                return r.dcache(i).missRatio();
            });
        const auto cpi = omabench::suiteAverage(
            results, geoms.size(),
            [&mp](const SweepResult &r, std::size_t i) {
                return r.dcache(i).cpi(mp);
            });

        std::cout << osKindName(os)
                  << ": average D-cache miss ratio\n";
        TextTable mtable({"Size \\ Line", "1w", "2w", "4w", "8w",
                          "16w", "32w"});
        std::size_t i = 0;
        for (std::uint64_t kb : kSizes) {
            std::vector<std::string> row = {fmtKBytes(kb * 1024)};
            for (std::size_t l = 0; l < kLines.size(); ++l, ++i)
                row.push_back(fmtFixed(miss[i], 4));
            mtable.addRow(row);
        }
        mtable.print(std::cout);

        std::cout << "\n" << osKindName(os)
                  << ": D-cache contribution to CPI\n";
        TextTable ctable({"Size \\ Line", "1w", "2w", "4w", "8w",
                          "16w", "32w"});
        i = 0;
        for (std::uint64_t kb : kSizes) {
            std::vector<std::string> row = {fmtKBytes(kb * 1024)};
            for (std::size_t l = 0; l < kLines.size(); ++l, ++i)
                row.push_back(fmtFixed(cpi[i], 3));
            ctable.addRow(row);
        }
        ctable.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Shape criteria: Mach's small-cache D miss ratios exceed "
           "Ultrix's; improvements from longer lines are more modest "
           "than for the I-cache (Figure 9); miss ratios turn back "
           "up beyond 8-word lines (pollution) under both systems; "
           "D-cache CPI rises for lines above 4 words.\n";
    return 0;
}
