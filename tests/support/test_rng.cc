/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.hh"

namespace oma
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(5, 9);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 9u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 9);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(17);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GeometricMeanMatchesParameter)
{
    Rng rng(23);
    const double p = 1.0 / 20.0;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += double(rng.geometric(p));
    EXPECT_NEAR(sum / n, 20.0, 1.0);
}

TEST(Rng, GeometricOfOneIsAlwaysOne)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.chance(0.0));
        ASSERT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Avalanche sanity: flipping one input bit flips many output bits.
    const std::uint64_t delta = mix64(1000) ^ mix64(1001);
    EXPECT_GE(__builtin_popcountll(delta), 16);
}

/** Zipf mass must concentrate on low ranks and stay in range. */
class ZipfSkew : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkew, MassConcentratesOnLowRanks)
{
    const double s = GetParam();
    Rng rng(37);
    const std::uint64_t n = 1024;
    const int draws = 20000;
    int top_decile = 0;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t v = rng.zipf(n, s);
        ASSERT_LT(v, n);
        if (v < n / 10)
            ++top_decile;
    }
    // A uniform draw would put ~10% in the top decile; Zipf puts far
    // more, increasing with the exponent.
    EXPECT_GT(double(top_decile) / draws, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkew,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5));

TEST(Rng, ZipfHigherSkewConcentratesMore)
{
    Rng a(41), b(41);
    const std::uint64_t n = 4096;
    const int draws = 20000;
    int low_top = 0, high_top = 0;
    for (int i = 0; i < draws; ++i) {
        if (a.zipf(n, 0.8) < n / 16)
            ++low_top;
        if (b.zipf(n, 1.4) < n / 16)
            ++high_top;
    }
    EXPECT_GT(high_top, low_top);
}

TEST(Rng, ZipfDegenerateSizes)
{
    Rng rng(43);
    EXPECT_EQ(rng.zipf(0, 1.0), 0u);
    EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

} // namespace
} // namespace oma
