/**
 * @file
 * MQF-style die-area model for on-chip memory structures.
 *
 * Reimplementation of the area model of Mulder, Quach and Flynn
 * ("An area model for on-chip memories and its application", IEEE
 * JSSC 26(2), 1991), which the paper uses to cost caches and TLBs in
 * register-bit equivalents (rbe). The model decomposes a structure
 * into SRAM data/tag arrays (or CAM tag arrays for fully-associative
 * TLBs) plus per-row, per-column, per-way and fixed control overheads
 * for drivers, sense amplifiers, comparators and control logic.
 *
 * The default constants are fit to the cost figures the paper itself
 * reports (Table 6 / Table 7 cost columns, the ~19,000-rbe 512-entry
 * 8-way TLB, and the qualitative shapes of Figures 4-6: full
 * associativity ~2x the area of 4/8-way for TLBs of >= 64 entries but
 * cheaper than 4/8-way below 64 entries; 8-word lines up to ~37%
 * cheaper than 1-word lines at equal capacity; small highly
 * associative TLBs ~3x the area of direct-mapped ones). See
 * tests/area/test_mqf_calibration.cc for the pinned anchors.
 */

#ifndef OMA_AREA_MQF_HH
#define OMA_AREA_MQF_HH

#include <cstdint>

#include "area/geometry.hh"

namespace oma
{

/**
 * Technology and address-format constants of the area model. All
 * areas are in register-bit equivalents (rbe): the area of a one-bit
 * register storage cell.
 */
struct AreaParams
{
    /** Area of a six-transistor SRAM cell, in rbe. */
    double sramCellRbe = 0.6;
    /** Area of a CAM (content-addressable) cell, in rbe. */
    double camCellRbe = 2.0;
    /** Per-physical-row overhead: wordline driver + decode slice. */
    double rowOverheadRbe = 2.0;
    /** Per-bit-column overhead: sense amp, precharge, write driver. */
    double colOverheadRbe = 3.0;
    /** Per-way overhead: tag comparator + way-select / output drive. */
    double wayOverheadRbe = 300.0;
    /** Per-CAM-entry overhead: matchline logic + priority encoding. */
    double camEntryOverheadRbe = 10.0;
    /** Fixed control overhead per structure. */
    double controlOverheadRbe = 100.0;

    /** Physical address width used for cache tags. */
    unsigned physAddrBits = 32;
    /** Cache status bits per line (valid + dirty). */
    unsigned cacheStatusBits = 2;

    /** Virtual page number width (32-bit VA, 4-KB pages). */
    unsigned virtPageBits = 20;
    /** Address-space identifier width (R2000-style, 6 bits). */
    unsigned asidBits = 6;
    /** PTE payload width: page frame number + protection flags. */
    unsigned pteBits = 26;
    /** TLB status bits per entry (valid). */
    unsigned tlbStatusBits = 1;
};

/**
 * The area model proper. Stateless apart from its parameters; all
 * query methods are const and cheap.
 */
class AreaModel
{
  public:
    explicit AreaModel(const AreaParams &params = AreaParams());

    /** Model parameters in use. */
    const AreaParams &params() const { return _params; }

    /**
     * Area in rbe of an SRAM array with physical dimensions
     * @p rows x @p cols bits, including driver/sense overheads.
     */
    double sramArrayArea(std::uint64_t rows, std::uint64_t cols) const;

    /**
     * Area in rbe of a CAM tag array of @p entries entries of
     * @p tag_bits bits each, including matchline overhead.
     */
    double camArrayArea(std::uint64_t entries, unsigned tag_bits) const;

    /** Tag bits per line for a cache geometry (address - index - offset). */
    unsigned cacheTagBits(const CacheGeometry &geom) const;

    /**
     * Tag bits per entry for a TLB geometry: VPN minus index bits,
     * plus ASID.
     */
    unsigned tlbTagBits(const TlbGeometry &geom) const;

    /** Total area in rbe of a set-associative cache. */
    double cacheArea(const CacheGeometry &geom) const;

    /**
     * Total area in rbe of a TLB (set-associative SRAM organization,
     * or CAM-based when the geometry is fully associative).
     */
    double tlbArea(const TlbGeometry &geom) const;

    /**
     * Area in rbe of a coalescing write buffer of @p entries words:
     * per entry, a CAM address tag (for read-bypass conflict checks)
     * plus an SRAM data word (Section 6 lists write buffers among
     * the structures a fuller study should allocate area to).
     */
    double writeBufferArea(std::uint64_t entries) const;

    /**
     * Area in rbe of a Jouppi victim buffer of @p entries lines of
     * @p line_bytes bytes: per entry, a CAM line-number tag plus an
     * SRAM data line. Costed the same way the write buffer is, so
     * victim-cache organizations compete in the allocation search on
     * equal footing (cache/victim.hh).
     */
    double victimBufferArea(std::uint64_t entries,
                            std::uint64_t line_bytes) const;

  private:
    AreaParams _params;
};

} // namespace oma

#endif // OMA_AREA_MQF_HH
