/**
 * @file
 * Property tests on write policies: traffic conservation between
 * write-through and write-back caches.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

struct Access
{
    std::uint64_t addr;
    RefKind kind;
};

std::vector<Access>
stream(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<Access> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Access a;
        a.addr = (rng.chance(0.7) ? rng.below(1 << 14)
                                  : rng.below(1 << 18)) &
            ~3ULL;
        a.kind = rng.chance(0.35) ? RefKind::Store : RefKind::Load;
        out.push_back(a);
    }
    return out;
}

class WritePolicySeed : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    std::vector<Access> refs = stream(GetParam(), 50000);
};

TEST_P(WritePolicySeed, WriteThroughForwardsEveryStoreWord)
{
    CacheParams p;
    p.geom = CacheGeometry(8192, 16, 2);
    p.write = WritePolicy::WriteThrough;
    Cache cache(p);
    std::uint64_t stores = 0;
    for (const Access &a : refs) {
        cache.access(a.addr, a.kind);
        stores += (a.kind == RefKind::Store);
    }
    EXPECT_EQ(cache.stats().writeThroughWords, stores);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST_P(WritePolicySeed, WriteBackNeverWritesMoreLinesThanDirtied)
{
    CacheParams p;
    p.geom = CacheGeometry(8192, 16, 2);
    p.write = WritePolicy::WriteBack;
    Cache cache(p);
    std::set<std::uint64_t> dirtied_lines;
    for (const Access &a : refs) {
        cache.access(a.addr, a.kind);
        if (a.kind == RefKind::Store)
            dirtied_lines.insert(a.addr >> 4);
    }
    EXPECT_EQ(cache.stats().writeThroughWords, 0u);
    // Each write-back corresponds to a line that was dirtied at some
    // point; a line can be written back several times only after
    // being re-dirtied, so writebacks <= stores (coarse) and, more
    // tightly here, cannot exceed total store count.
    std::uint64_t stores = 0;
    for (const Access &a : refs)
        stores += (a.kind == RefKind::Store);
    EXPECT_LE(cache.stats().writebacks, stores);
    EXPECT_GT(cache.stats().writebacks, 0u);
}

TEST_P(WritePolicySeed, HitMissBehaviourIdenticalAcrossWritePolicies)
{
    // Write policy affects traffic, not residency, under
    // write-allocate: the hit/miss sequence must match exactly.
    CacheParams wt;
    wt.geom = CacheGeometry(4096, 16, 2);
    wt.write = WritePolicy::WriteThrough;
    CacheParams wb = wt;
    wb.write = WritePolicy::WriteBack;
    Cache a(wt), b(wb);
    for (const Access &acc : refs) {
        ASSERT_EQ(a.access(acc.addr, acc.kind),
                  b.access(acc.addr, acc.kind));
    }
    EXPECT_EQ(a.stats().totalMisses(), b.stats().totalMisses());
}

TEST_P(WritePolicySeed, WriteBackTrafficBelowWriteThroughForHotStores)
{
    // Repeated stores to a hot set of lines: write-back coalesces
    // them, write-through forwards every word.
    CacheParams wt;
    wt.geom = CacheGeometry(8192, 16, 2);
    wt.write = WritePolicy::WriteThrough;
    CacheParams wb = wt;
    wb.write = WritePolicy::WriteBack;
    Cache a(wt), b(wb);
    Rng rng(GetParam() ^ 0xb0b);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t addr = rng.below(4096) & ~3ULL; // hot 4 KB
        a.access(addr, RefKind::Store);
        b.access(addr, RefKind::Store);
    }
    // Lines (16 B) per word (4 B) of traffic: write-back should move
    // far fewer words even counting 4 words per written-back line.
    EXPECT_LT(b.stats().writebacks * 4,
              a.stats().writeThroughWords / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WritePolicySeed,
                         ::testing::Values(301u, 302u, 303u));

} // namespace
} // namespace oma
