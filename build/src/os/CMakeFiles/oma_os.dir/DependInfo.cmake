
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/addrspace.cc" "src/os/CMakeFiles/oma_os.dir/addrspace.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/addrspace.cc.o.d"
  "/root/repo/src/os/codewalk.cc" "src/os/CMakeFiles/oma_os.dir/codewalk.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/codewalk.cc.o.d"
  "/root/repo/src/os/component.cc" "src/os/CMakeFiles/oma_os.dir/component.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/component.cc.o.d"
  "/root/repo/src/os/datagen.cc" "src/os/CMakeFiles/oma_os.dir/datagen.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/datagen.cc.o.d"
  "/root/repo/src/os/mach.cc" "src/os/CMakeFiles/oma_os.dir/mach.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/mach.cc.o.d"
  "/root/repo/src/os/osmodel.cc" "src/os/CMakeFiles/oma_os.dir/osmodel.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/osmodel.cc.o.d"
  "/root/repo/src/os/ultrix.cc" "src/os/CMakeFiles/oma_os.dir/ultrix.cc.o" "gcc" "src/os/CMakeFiles/oma_os.dir/ultrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/oma_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/oma_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/oma_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/oma_area.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
