/**
 * @file
 * Tests for the ASID-less (flush-on-switch) TLB mode.
 */

#include <gtest/gtest.h>

#include "tlb/mmu.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

MemRef
userLoad(std::uint64_t vaddr, std::uint32_t asid)
{
    MemRef r;
    r.vaddr = vaddr;
    r.asid = asid;
    r.kind = RefKind::Load;
    r.mapped = true;
    return r;
}

TEST(NoAsidTlb, SwitchFlushesEverything)
{
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(64);
    p.flushOnAsidSwitch = true;
    Mmu mmu(p, TlbPenalties());

    mmu.translate(userLoad(0x1000, 1)); // page fault, fills
    EXPECT_EQ(mmu.translate(userLoad(0x1000, 1)), 0u); // hit
    mmu.translate(userLoad(0x2000, 2)); // switch: flush + fault
    EXPECT_EQ(mmu.stats().asidFlushes, 1u);
    // Back to ASID 1: another flush, and the old page must refill.
    const std::uint64_t cycles = mmu.translate(userLoad(0x1000, 1));
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(mmu.stats().asidFlushes, 2u);
}

TEST(NoAsidTlb, WithAsidsNoFlushes)
{
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(64);
    Mmu mmu(p, TlbPenalties());
    mmu.translate(userLoad(0x1000, 1));
    mmu.translate(userLoad(0x2000, 2));
    EXPECT_EQ(mmu.translate(userLoad(0x1000, 1)), 0u); // still there
    EXPECT_EQ(mmu.stats().asidFlushes, 0u);
}

TEST(NoAsidTlb, KernelRefsDoNotTriggerFlushes)
{
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(64);
    p.flushOnAsidSwitch = true;
    Mmu mmu(p, TlbPenalties());
    mmu.translate(userLoad(0x1000, 1));
    MemRef k;
    k.vaddr = kseg2Base + 0x4000;
    k.asid = 0;
    k.mapped = true;
    k.mode = Mode::Kernel;
    mmu.translate(k); // kernel-segment ref: not a context switch
    EXPECT_EQ(mmu.stats().asidFlushes, 0u);
    EXPECT_EQ(mmu.translate(userLoad(0x1000, 1)), 0u);
}

TEST(NoAsidTlb, HurtsMachMoreThanUltrix)
{
    // The multiple-API system hops address spaces per service; the
    // monolithic system mostly stays in one. Flushing on every
    // switch must therefore cost Mach relatively more refill time.
    auto refill_cycles = [](OsKind os, bool flush) {
        TlbParams p;
        p.geom = TlbGeometry::fullyAssoc(64);
        p.flushOnAsidSwitch = flush;
        Mmu mmu(p, TlbPenalties());
        System system(benchmarkParams(BenchmarkId::VideoPlay), os, 11);
        system.setInvalidateHook(
            [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
                mmu.invalidatePage(vpn, asid, global);
            });
        MemRef r;
        for (int i = 0; i < 400000; ++i) {
            system.next(r);
            mmu.translate(r);
        }
        return double(mmu.stats().refillCycles());
    };

    const double ultrix_ratio =
        refill_cycles(OsKind::Ultrix, true) /
        refill_cycles(OsKind::Ultrix, false);
    const double mach_ratio = refill_cycles(OsKind::Mach, true) /
        refill_cycles(OsKind::Mach, false);
    EXPECT_GE(ultrix_ratio, 1.0);
    EXPECT_GT(mach_ratio, ultrix_ratio);
}

} // namespace
} // namespace oma
