# Empty compiler generated dependencies file for tlb_tuner.
# This may be replaced when dependencies are built.
