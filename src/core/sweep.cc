/**
 * @file
 * Implementation of component sweeps.
 */

#include "core/sweep.hh"

#include "support/logging.hh"
#include "tlb/mips_va.hh"

namespace oma
{

double
SweepResult::icacheCpi(std::size_t i, const MachineParams &mp) const
{
    const CacheStats &s = icacheStats[i];
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(s.totalMisses()) *
        double(mp.missPenalty(icacheGeoms[i])) / instr;
}

double
SweepResult::dcacheCpi(std::size_t i, const MachineParams &mp) const
{
    // The paper's cost/benefit step estimates the D-cache CPI
    // contribution as miss ratio x penalty uniformly (Section 5.4);
    // the cycle-level nuances of the reference machine (free store
    // allocation on one-word lines) belong to the Monster-style
    // baseline, not to the design-space scoring.
    const CacheStats &s = dcacheStats[i];
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(s.totalMisses()) *
        double(mp.missPenalty(dcacheGeoms[i])) / instr;
}

double
SweepResult::tlbCpi(std::size_t i) const
{
    // Pure refill service only (user + kernel misses): the modify,
    // invalid and page-fault classes are configuration-independent
    // constants (and over-weighted by finite trace length), so like
    // the paper's scoring they do not enter the per-configuration
    // contribution.
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(tlbStats[i].refillCycles()) / instr;
}

ComponentSweep::ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                               std::vector<CacheGeometry> dcache_geoms,
                               std::vector<TlbGeometry> tlb_geoms,
                               const MachineParams &reference_machine)
    : _icacheGeoms(std::move(icache_geoms)),
      _dcacheGeoms(std::move(dcache_geoms)),
      _tlbGeoms(std::move(tlb_geoms)),
      _refMachine(reference_machine)
{
}

SweepResult
ComponentSweep::run(const WorkloadParams &workload, OsKind os,
                    const RunConfig &run) const
{
    System system(workload, os, run.seed);
    Machine machine(_refMachine);

    CacheBank ibank;
    for (const auto &geom : _icacheGeoms) {
        CacheParams p;
        p.geom = geom;
        ibank.add(p);
    }
    CacheBank dbank;
    for (const auto &geom : _dcacheGeoms) {
        CacheParams p;
        p.geom = geom;
        dbank.add(p);
    }

    std::vector<TlbParams> tlb_params;
    tlb_params.reserve(_tlbGeoms.size());
    for (const auto &geom : _tlbGeoms) {
        TlbParams p;
        p.geom = geom;
        tlb_params.push_back(p);
    }
    Tapeworm tapeworm(tlb_params, _refMachine.tlbPenalties);

    system.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            machine.mmu().invalidatePage(vpn, asid, global);
            tapeworm.invalidatePage(vpn, asid, global);
        });

    MemRef ref;
    std::uint64_t consumed = 0;
    while (consumed < run.references && system.next(ref)) {
        machine.observe(ref);
        tapeworm.observe(ref);
        if (ref.isFetch()) {
            ibank.access(ref.paddr, ref.kind);
        } else if (!(ref.vaddr >= kseg1Base && ref.vaddr < kseg2Base)) {
            dbank.access(ref.paddr, ref.kind);
        }
        ++consumed;
    }

    SweepResult result;
    result.instructions = machine.stalls().instructions;
    result.references = consumed;
    result.icacheGeoms = _icacheGeoms;
    result.dcacheGeoms = _dcacheGeoms;
    result.tlbGeoms = _tlbGeoms;
    for (std::size_t i = 0; i < ibank.size(); ++i)
        result.icacheStats.push_back(ibank.at(i).stats());
    for (std::size_t i = 0; i < dbank.size(); ++i)
        result.dcacheStats.push_back(dbank.at(i).stats());
    for (std::size_t i = 0; i < tapeworm.size(); ++i)
        result.tlbStats.push_back(tapeworm.at(i).stats());

    const double instr =
        double(std::max<std::uint64_t>(1, result.instructions));
    result.wbCpi = double(machine.stalls().wbStall) / instr;
    result.otherCpi = system.otherCpiSoFar();
    return result;
}

ComponentCpiTables
ComponentCpiTables::average(const std::vector<SweepResult> &results,
                            const MachineParams &mp)
{
    panicIf(results.empty(), "cannot average zero sweep results");
    ComponentCpiTables tables;
    const SweepResult &first = results.front();
    tables.icacheGeoms = first.icacheGeoms;
    tables.dcacheGeoms = first.dcacheGeoms;
    tables.tlbGeoms = first.tlbGeoms;
    tables.icacheCpi.assign(tables.icacheGeoms.size(), 0.0);
    tables.dcacheCpi.assign(tables.dcacheGeoms.size(), 0.0);
    tables.tlbCpi.assign(tables.tlbGeoms.size(), 0.0);

    double wb = 0.0, other = 0.0;
    for (const auto &r : results) {
        panicIf(r.icacheGeoms.size() != tables.icacheGeoms.size() ||
                    r.dcacheGeoms.size() != tables.dcacheGeoms.size() ||
                    r.tlbGeoms.size() != tables.tlbGeoms.size(),
                "sweep results built from different geometry lists");
        for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
            tables.icacheCpi[i] += r.icacheCpi(i, mp);
        for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
            tables.dcacheCpi[i] += r.dcacheCpi(i, mp);
        for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
            tables.tlbCpi[i] += r.tlbCpi(i);
        wb += r.wbCpi;
        other += r.otherCpi;
    }
    const double n = double(results.size());
    for (auto &v : tables.icacheCpi)
        v /= n;
    for (auto &v : tables.dcacheCpi)
        v /= n;
    for (auto &v : tables.tlbCpi)
        v /= n;
    // Like the paper's Tables 6/7, the total CPI of an allocation is
    // 1 + TLB + I-cache + D-cache; write-buffer and non-memory
    // stalls are configuration-independent and kept separately.
    tables.baseCpi = 1.0;
    tables.wbCpi = wb / n;
    tables.otherCpi = other / n;
    return tables;
}

} // namespace oma
