/**
 * @file
 * Unit tests for the packed in-memory RecordedTrace: exact MemRef
 * round trips through the columnar encoding, inline-event pinning
 * and replay ordering, the typed replay views, chunk-boundary
 * behavior and the packed-footprint guarantee.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "support/rng.hh"
#include "tlb/mips_va.hh"
#include "trace/recorded.hh"

namespace oma
{
namespace
{

MemRef
randomRef(Rng &rng)
{
    MemRef r;
    r.vaddr = rng.next() & 0xffffffff;
    r.paddr = rng.next() & 0x3fffffff;
    r.asid = std::uint32_t(rng.below(64));
    r.kind = static_cast<RefKind>(rng.below(3));
    r.mode = static_cast<Mode>(rng.below(2));
    r.mapped = rng.chance(0.8);
    return r;
}

void
expectSameRef(const MemRef &got, const MemRef &want, std::uint64_t i)
{
    ASSERT_EQ(got.vaddr, want.vaddr) << "ref " << i;
    ASSERT_EQ(got.paddr, want.paddr) << "ref " << i;
    ASSERT_EQ(got.asid, want.asid) << "ref " << i;
    ASSERT_EQ(got.kind, want.kind) << "ref " << i;
    ASSERT_EQ(got.mode, want.mode) << "ref " << i;
    ASSERT_EQ(got.mapped, want.mapped) << "ref " << i;
}

TEST(RecordedTrace, AppendAtRoundTripIsExact)
{
    Rng rng(7);
    RecordedTrace trace;
    std::vector<MemRef> original;
    for (int i = 0; i < 10000; ++i) {
        const MemRef r = randomRef(rng);
        original.push_back(r);
        trace.append(r);
    }
    ASSERT_EQ(trace.size(), original.size());
    for (std::uint64_t i = 0; i < trace.size(); ++i)
        expectSameRef(trace.at(i), original[i], i);
}

TEST(RecordedTrace, ReplayVisitsEveryRefInOrder)
{
    Rng rng(11);
    RecordedTrace trace;
    std::vector<MemRef> original;
    for (int i = 0; i < 5000; ++i) {
        const MemRef r = randomRef(rng);
        original.push_back(r);
        trace.append(r);
    }
    std::uint64_t i = 0;
    trace.replay([&](const MemRef &ref) {
        expectSameRef(ref, original[i], i);
        ++i;
    });
    EXPECT_EQ(i, original.size());
}

TEST(RecordedTrace, CrossesChunkBoundaries)
{
    // More than one full chunk, with an uneven tail.
    const std::uint64_t n = RecordedTrace::chunkRefs * 2 + 137;
    Rng rng(13);
    RecordedTrace trace;
    std::vector<MemRef> original;
    for (std::uint64_t i = 0; i < n; ++i) {
        const MemRef r = randomRef(rng);
        original.push_back(r);
        trace.append(r);
    }
    ASSERT_EQ(trace.size(), n);
    // Spot-check around every chunk seam plus the ends.
    for (std::uint64_t base :
         {std::uint64_t(0), std::uint64_t(RecordedTrace::chunkRefs),
          std::uint64_t(2 * RecordedTrace::chunkRefs), n - 3}) {
        for (std::uint64_t i = base > 2 ? base - 2 : 0;
             i < base + 3 && i < n; ++i)
            expectSameRef(trace.at(i), original[i], i);
    }
    std::uint64_t count = 0;
    trace.replay([&](const MemRef &) { ++count; });
    EXPECT_EQ(count, n);
}

TEST(RecordedTrace, EventsPinToTheNextRefAndFireBeforeIt)
{
    RecordedTrace trace;
    MemRef r;
    r.kind = RefKind::IFetch;

    trace.recordInvalidation(100, 1, false); // index 0, before any ref
    r.vaddr = 0x1000;
    trace.append(r);
    r.vaddr = 0x2000;
    trace.append(r);
    trace.recordInvalidation(200, 2, true); // index 2
    trace.recordInvalidation(300, 3, false); // also index 2
    r.vaddr = 0x3000;
    trace.append(r);

    ASSERT_EQ(trace.events().size(), 3u);
    EXPECT_EQ(trace.events()[0].index, 0u);
    EXPECT_EQ(trace.events()[1].index, 2u);
    EXPECT_EQ(trace.events()[2].index, 2u);
    EXPECT_EQ(trace.events()[1].vpn, 200u);
    EXPECT_EQ(trace.events()[1].asid, 2u);
    EXPECT_TRUE(trace.events()[1].global);

    // Interleaved replay order: E(100) R(0x1000) R(0x2000) E(200)
    // E(300) R(0x3000).
    std::vector<std::uint64_t> log;
    trace.replay(
        [&](const MemRef &ref) { log.push_back(ref.vaddr); },
        [&](const TraceEvent &e) { log.push_back(e.vpn); });
    const std::vector<std::uint64_t> want = {100,   0x1000, 0x2000,
                                             200,   300,    0x3000};
    EXPECT_EQ(log, want);
}

TEST(RecordedTrace, TrailingEventsNeverFire)
{
    // An event pinned past the last reference (possible only if the
    // producer stopped mid-stream) matches the legacy hook semantics:
    // it was fired while producing a reference the consumer never
    // saw, so replay must not deliver it.
    RecordedTrace trace;
    MemRef r;
    trace.append(r);
    trace.recordInvalidation(55, 1, false); // index 1 == size()
    std::vector<std::uint64_t> fired;
    trace.replay([](const MemRef &) {},
                 [&](const TraceEvent &e) { fired.push_back(e.vpn); });
    EXPECT_TRUE(fired.empty());
}

TEST(RecordedTrace, FetchViewSelectsIFetchPaddrs)
{
    Rng rng(17);
    RecordedTrace trace;
    std::vector<std::uint64_t> want;
    for (int i = 0; i < 3000; ++i) {
        const MemRef r = randomRef(rng);
        trace.append(r);
        if (r.kind == RefKind::IFetch)
            want.push_back(r.paddr);
    }
    std::vector<std::uint64_t> got;
    trace.replayFetchPaddrs(
        [&](std::uint64_t paddr) { got.push_back(paddr); });
    EXPECT_EQ(got, want);
}

TEST(RecordedTrace, CachedDataViewFiltersKseg1)
{
    Rng rng(19);
    RecordedTrace trace;
    std::vector<std::pair<std::uint64_t, RefKind>> want;
    for (int i = 0; i < 3000; ++i) {
        MemRef r = randomRef(rng);
        if (rng.chance(0.25))
            r.vaddr = kseg1Base + (r.vaddr & 0x0fffffff); // uncached
        trace.append(r);
        if (r.kind != RefKind::IFetch && !isUncached(r.vaddr))
            want.emplace_back(r.paddr, r.kind);
    }
    ASSERT_FALSE(want.empty());
    std::vector<std::pair<std::uint64_t, RefKind>> got;
    trace.replayCachedData([&](std::uint64_t paddr, RefKind kind) {
        got.emplace_back(paddr, kind);
    });
    EXPECT_EQ(got, want);
}

TEST(RecordedTrace, PackedFootprintIsAtMostHalfOfMemRefs)
{
    Rng rng(23);
    RecordedTrace trace;
    const std::uint64_t n = 100000;
    for (std::uint64_t i = 0; i < n; ++i)
        trace.append(randomRef(rng));
    EXPECT_LE(trace.byteSize(), n * sizeof(MemRef) / 2);
    EXPECT_GE(trace.byteSize(), n * RecordedTrace::packedRefBytes);
}

TEST(RecordedTrace, OtherCpiMetadataSticks)
{
    RecordedTrace trace;
    EXPECT_EQ(trace.otherCpi(), 0.0);
    trace.setOtherCpi(0.375);
    EXPECT_EQ(trace.otherCpi(), 0.375);
}

TEST(RecordedTrace, EmptyTraceHasNoChunksAndReplaysNothing)
{
    const RecordedTrace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.numChunks(), 0u);
    EXPECT_EQ(trace.byteSize(), 0u);
    std::uint64_t visits = 0;
    trace.replay([&](const MemRef &) { ++visits; });
    trace.replay([&](const MemRef &) { ++visits; },
                 [&](const TraceEvent &) { ++visits; });
    trace.replayFetchPaddrs([&](std::uint64_t) { ++visits; });
    trace.replayCachedData(
        [&](std::uint64_t, RefKind) { ++visits; });
    EXPECT_EQ(visits, 0u);
}

TEST(RecordedTrace, EventsOnEmptyTraceNeverFire)
{
    // Events with no following reference are all trailing events.
    RecordedTrace trace;
    trace.recordInvalidation(9, 1, false);
    ASSERT_EQ(trace.events().size(), 1u);
    std::uint64_t fired = 0;
    trace.replay([](const MemRef &) {},
                 [&](const TraceEvent &) { ++fired; });
    EXPECT_EQ(fired, 0u);
}

TEST(RecordedTrace, ChunkViewsMirrorThePackedColumns)
{
    const std::uint64_t n = RecordedTrace::chunkRefs + 137;
    Rng rng(29);
    RecordedTrace trace;
    for (std::uint64_t i = 0; i < n; ++i)
        trace.append(randomRef(rng));
    ASSERT_EQ(trace.numChunks(), 2u);

    std::uint64_t index = 0;
    for (std::size_t c = 0; c < trace.numChunks(); ++c) {
        const TraceChunkView v = trace.chunkView(c);
        EXPECT_EQ(v.baseIndex, index);
        ASSERT_EQ(v.size, c == 0 ? RecordedTrace::chunkRefs
                                 : std::size_t(137));
        for (std::size_t i = 0; i < v.size; ++i, ++index) {
            const MemRef want = trace.at(index);
            ASSERT_EQ(v.vaddr[i], want.vaddr) << index;
            ASSERT_EQ(v.paddr[i], want.paddr) << index;
            ASSERT_EQ(v.asid[i], want.asid) << index;
            ASSERT_EQ(v.flags[i],
                      RecordedTrace::packFlags(want)) << index;
        }
    }
    EXPECT_EQ(index, n);
}

TEST(RecordedTrace, EventsStraddlingChunkBoundariesReplayInOrder)
{
    // Events pinned to the last reference of one chunk, to the seam
    // itself (the next chunk's first reference) and one past it must
    // interleave exactly as recorded — the seam is where a chunked
    // replay is most tempted to fire early or late.
    const std::uint64_t c = RecordedTrace::chunkRefs;
    RecordedTrace trace;
    MemRef r;
    for (std::uint64_t i = 0; i < c + 2; ++i) {
        if (i == c - 1)
            trace.recordInvalidation(1000, 1, false); // index c-1
        if (i == c)
            trace.recordInvalidation(2000, 2, false); // index c
        if (i == c + 1)
            trace.recordInvalidation(3000, 3, false); // index c+1
        r.vaddr = i;
        trace.append(r);
    }
    std::vector<std::pair<char, std::uint64_t>> log;
    trace.replay(
        [&](const MemRef &ref) { log.emplace_back('r', ref.vaddr); },
        [&](const TraceEvent &e) { log.emplace_back('e', e.vpn); });
    ASSERT_EQ(log.size(), c + 5);
    EXPECT_EQ(log[c - 1], std::make_pair('e', std::uint64_t(1000)));
    EXPECT_EQ(log[c], std::make_pair('r', c - 1));
    EXPECT_EQ(log[c + 1], std::make_pair('e', std::uint64_t(2000)));
    EXPECT_EQ(log[c + 2], std::make_pair('r', c));
    EXPECT_EQ(log[c + 3], std::make_pair('e', std::uint64_t(3000)));
    EXPECT_EQ(log[c + 4], std::make_pair('r', c + 1));
}

TEST(RecordedTraceDeath, AtOutOfRangeIsFatal)
{
    // Regression: at() used to index _chunks unchecked, so an
    // out-of-range index on an empty trace read past the chunk list.
    const RecordedTrace empty;
    EXPECT_EXIT((void)empty.at(0), testing::ExitedWithCode(1),
                "out of range");
    RecordedTrace one;
    one.append(MemRef());
    EXPECT_EXIT((void)one.at(1), testing::ExitedWithCode(1),
                "out of range");
}

TEST(RecordedTraceDeath, ChunkViewOutOfRangeIsFatal)
{
    const RecordedTrace empty;
    EXPECT_EXIT((void)empty.chunkView(0), testing::ExitedWithCode(1),
                "out of range");
}

TEST(RecordedTraceDeath, UnencodableRefIsFatal)
{
    RecordedTrace trace;
    MemRef r;
    r.vaddr = 0x1'0000'0000ULL; // 33 bits: outside the R2000 model
    EXPECT_EXIT(trace.append(r), testing::ExitedWithCode(1),
                "packed 32-bit trace encoding");
}

} // namespace
} // namespace oma
