# Compile every generated header TU with -fsyntax-only, failing on
# the first header that is not self-contained. Driven by the
# `header_tu` target; inputs:
#   MANIFEST    - manifest.txt written by `oma_lint --emit-header-tus`
#   COMPILER    - C++ compiler driver
#   INCLUDE_DIR - project include root (the src/ directory)

if(NOT EXISTS ${MANIFEST})
    message(FATAL_ERROR "header_tu: manifest not found: ${MANIFEST}")
endif()

file(STRINGS ${MANIFEST} tus)
list(LENGTH tus count)
message(STATUS "header_tu: compiling ${count} standalone header TU(s)")

foreach(tu IN LISTS tus)
    execute_process(
        COMMAND ${COMPILER} -std=c++20 -fsyntax-only -Wall -Wextra
                -I ${INCLUDE_DIR} ${tu}
        RESULT_VARIABLE status
        ERROR_VARIABLE errors)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
            "header_tu: header is not self-contained: ${tu}\n${errors}")
    endif()
endforeach()

message(STATUS "header_tu: all ${count} header(s) are self-contained")
