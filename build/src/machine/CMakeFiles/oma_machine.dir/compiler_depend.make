# Empty compiler generated dependencies file for oma_machine.
# This may be replaced when dependencies are built.
