file(REMOVE_RECURSE
  "CMakeFiles/oma_machine.dir/machine.cc.o"
  "CMakeFiles/oma_machine.dir/machine.cc.o.d"
  "liboma_machine.a"
  "liboma_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
