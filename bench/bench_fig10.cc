/**
 * @file
 * Figure 10: performance of set-associative instruction caches —
 * suite-average miss ratios and CPI contribution at a fixed 4-word
 * line across sizes and associativities, under Ultrix and Mach.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/sweep.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

const std::vector<std::uint64_t> kSizes = {2, 4, 8, 16, 32};
const std::vector<std::uint64_t> kWays = {1, 2, 4, 8};

std::vector<CacheGeometry>
grid()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : kSizes)
        for (std::uint64_t ways : kWays)
            geoms.push_back(
                CacheGeometry::fromWords(kb * 1024, 4, ways));
    return geoms;
}

void
printGrid(const std::string &title, const std::vector<double> &values,
          int digits)
{
    std::cout << title << "\n";
    TextTable table({"Size \\ Assoc", "1-way", "2-way", "4-way",
                     "8-way"});
    std::size_t i = 0;
    for (std::uint64_t kb : kSizes) {
        std::vector<std::string> row = {fmtKBytes(kb * 1024)};
        for (std::size_t w = 0; w < kWays.size(); ++w, ++i)
            row.push_back(fmtFixed(values[i], digits));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    omabench::banner("Set-associative I-cache performance at a fixed "
                     "4-word line (suite average)",
                     "Figure 10");

    const auto geoms = grid();
    const MachineParams mp = MachineParams::decstation3100();

    omabench::BenchReport report("fig10");
    omabench::SweepSuiteSpec spec;
    spec.icacheGeoms = geoms;
    spec.dcacheGeoms = {CacheGeometry::fromWords(8 * 1024, 4, 1)};
    spec.tlbGeoms = {TlbGeometry::fullyAssoc(64)};
    spec.progressLabel = "set-associative I-cache sweep";
    for (const auto &[os, results] :
         omabench::runSweepSuite(spec, &report)) {
        const auto miss = omabench::suiteAverage(
            results, geoms.size(),
            [](const SweepResult &r, std::size_t i) {
                return r.icache(i).missRatio();
            });
        const auto cpi = omabench::suiteAverage(
            results, geoms.size(),
            [&mp](const SweepResult &r, std::size_t i) {
                return r.icache(i).cpi(mp);
            });

        printGrid(std::string(osKindName(os)) +
                      ": average I-cache miss ratio",
                  miss, 4);
        printGrid(std::string(osKindName(os)) +
                      ": I-cache contribution to CPI",
                  cpi, 3);
    }

    std::cout
        << "Shape criteria: Ultrix gains mainly on small caches and "
           "mainly from 1-way to 2-way; Mach benefits from "
           "associativity over a broader range of sizes, yet even an "
           "8-way 4-KB cache cannot overcome its long code paths "
           "(miss ratio still > ~0.03 in the paper).\n";
    return 0;
}
