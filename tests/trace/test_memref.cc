/**
 * @file
 * Unit tests for the MemRef record.
 */

#include <gtest/gtest.h>

#include "trace/memref.hh"

namespace oma
{
namespace
{

TEST(MemRef, KindPredicates)
{
    MemRef r;
    r.kind = RefKind::IFetch;
    EXPECT_TRUE(r.isFetch());
    EXPECT_FALSE(r.isData());
    r.kind = RefKind::Load;
    EXPECT_TRUE(r.isLoad());
    EXPECT_TRUE(r.isData());
    EXPECT_FALSE(r.isStore());
    r.kind = RefKind::Store;
    EXPECT_TRUE(r.isStore());
    EXPECT_TRUE(r.isData());
}

TEST(MemRef, ModePredicate)
{
    MemRef r;
    r.mode = Mode::Kernel;
    EXPECT_TRUE(r.isKernel());
    r.mode = Mode::User;
    EXPECT_FALSE(r.isKernel());
}

TEST(MemRef, Names)
{
    EXPECT_STREQ(refKindName(RefKind::IFetch), "ifetch");
    EXPECT_STREQ(refKindName(RefKind::Load), "load");
    EXPECT_STREQ(refKindName(RefKind::Store), "store");
    EXPECT_STREQ(modeName(Mode::User), "user");
    EXPECT_STREQ(modeName(Mode::Kernel), "kernel");
}

TEST(MemRef, Defaults)
{
    MemRef r;
    EXPECT_EQ(r.vaddr, 0u);
    EXPECT_EQ(r.asid, 0u);
    EXPECT_TRUE(r.mapped);
    EXPECT_TRUE(r.isFetch());
}

} // namespace
} // namespace oma
