/**
 * @file
 * Component sweeps: measure many cache and TLB configurations against
 * one workload trace in a single pass.
 *
 * The paper's cost/benefit analysis (Section 5.4) combines
 * independently measured per-component CPI contributions: I-cache and
 * D-cache miss ratios from trace-driven simulation and TLB service
 * cycles from Tapeworm, plus a configuration-independent base (write
 * buffer and non-memory stalls). ComponentSweep produces exactly
 * those tables.
 *
 * Results are consumed through per-configuration views —
 * `result.icache(i)`, `result.dcache(i)`, `result.tlb(i)` — each
 * bundling the geometry, the raw counters and the derived CPI
 * contribution and miss ratio for one swept configuration. The views
 * are the supported surface (docs/MODEL.md); every indexed accessor
 * is bounds-checked and fails fatally on an out-of-range index.
 */

#ifndef OMA_CORE_SWEEP_HH
#define OMA_CORE_SWEEP_HH

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "cache/bank.hh"
#include "core/component.hh"
#include "core/experiment.hh"
#include "machine/machine.hh"
#include "obs/metrics.hh"
#include "store/store.hh"
#include "support/deprecated.hh"
#include "support/logging.hh"
#include "tlb/tapeworm.hh"
#include "trace/recorded.hh"
#include "workload/system.hh"

namespace oma
{

/**
 * Per-configuration results of one sweep over one workload/OS pair.
 *
 * Access per-configuration data through the icache()/dcache()/tlb()
 * views; the backing storage is private so the bounds-checked views
 * are the only way in.
 */
struct SweepResult
{
    std::uint64_t instructions = 0;
    std::uint64_t references = 0;

    /** Write-buffer stall cycles per instruction (config-independent
     * base, measured on the reference machine). */
    double wbCpi = 0.0;
    /** Non-memory stall cycles per instruction. */
    double otherCpi = 0.0;

    /** Read-only view of one swept cache configuration. */
    struct CacheConfigView
    {
        const CacheGeometry &geom;
        const CacheStats &stats;
        /** Instruction count of the run (the CPI denominator). */
        std::uint64_t instructions;

        /** Overall miss ratio of this configuration. */
        [[nodiscard]] double
        missRatio() const
        {
            return stats.missRatio();
        }

        /** CPI contribution of this configuration (the paper's
         * misses x penalty per instruction). */
        [[nodiscard]] double
        cpi(const MachineParams &mp) const
        {
            const double instr =
                double(std::max<std::uint64_t>(1, instructions));
            return double(stats.totalMisses()) *
                double(mp.missPenalty(geom)) / instr;
        }
    };

    /** Read-only view of one swept TLB configuration. */
    struct TlbConfigView
    {
        const TlbGeometry &geom;
        const MmuStats &stats;
        /** Instruction count of the run (the CPI denominator). */
        std::uint64_t instructions;

        /**
         * CPI contribution: pure refill service only (user + kernel
         * misses). The modify, invalid and page-fault classes are
         * configuration-independent constants (and over-weighted by
         * finite trace length), so like the paper's scoring they do
         * not enter the per-configuration contribution.
         */
        [[nodiscard]] double
        cpi() const
        {
            const double instr =
                double(std::max<std::uint64_t>(1, instructions));
            return double(stats.refillCycles()) / instr;
        }
    };

    /** Read-only view of one swept victim-cache configuration. */
    struct VictimConfigView
    {
        const VictimParams &params;
        const VictimStats &stats;
        /** Instruction count of the run (the CPI denominator). */
        std::uint64_t instructions;

        /** Miss ratio past both the L1 and the victim buffer. */
        [[nodiscard]] double
        missRatio() const
        {
            return stats.missRatio();
        }

        /** CPI contribution: only misses that go to memory pay the
         * machine's miss penalty (a victim-buffer swap-back is
         * served at cache speed). */
        [[nodiscard]] double
        cpi(const MachineParams &mp) const
        {
            const double instr =
                double(std::max<std::uint64_t>(1, instructions));
            return double(stats.misses) *
                double(mp.missPenalty(params.l1)) / instr;
        }
    };

    /** Read-only view of one swept write-buffer configuration. */
    struct WriteBufferConfigView
    {
        const WriteBufferParams &params;
        const WriteBufferStats &stats;

        /** Buffer-full stall cycles per instruction. */
        [[nodiscard]] double
        cpi() const
        {
            return stats.cpiContribution();
        }
    };

    /** Read-only view of one swept hierarchy configuration. */
    struct HierarchyConfigView
    {
        const HierarchyParams &params;
        const HierarchyStats &stats;

        /** Hierarchy stall cycles per instruction. */
        [[nodiscard]] double
        cpi() const
        {
            return stats.cpiContribution();
        }
    };

    /** View of I-cache configuration @p i (fatal when out of range). */
    [[nodiscard]] CacheConfigView
    icache(std::size_t i) const
    {
        const std::size_t s =
            kindSlot(ComponentKind::ICache, i, "icache");
        return {_icacheGeoms[i], std::get<CacheStats>(_stats[s]),
                instructions};
    }

    /** View of D-cache configuration @p i (fatal when out of range). */
    [[nodiscard]] CacheConfigView
    dcache(std::size_t i) const
    {
        const std::size_t s =
            kindSlot(ComponentKind::DCache, i, "dcache");
        return {_dcacheGeoms[i], std::get<CacheStats>(_stats[s]),
                instructions};
    }

    /** View of TLB configuration @p i (fatal when out of range). */
    [[nodiscard]] TlbConfigView
    tlb(std::size_t i) const
    {
        const std::size_t s = kindSlot(ComponentKind::Tlb, i, "tlb");
        return {_tlbGeoms[i], std::get<MmuStats>(_stats[s]),
                instructions};
    }

    /** View of victim configuration @p i (fatal when out of range). */
    [[nodiscard]] VictimConfigView
    victim(std::size_t i) const
    {
        const std::size_t s =
            kindSlot(ComponentKind::Victim, i, "victim");
        return {std::get<VictimParams>(_slots[s].params),
                std::get<VictimStats>(_stats[s]), instructions};
    }

    /** View of write-buffer configuration @p i (fatal when out of
     * range). */
    [[nodiscard]] WriteBufferConfigView
    writeBuffer(std::size_t i) const
    {
        const std::size_t s =
            kindSlot(ComponentKind::WriteBuffer, i, "writeBuffer");
        return {std::get<WriteBufferParams>(_slots[s].params),
                std::get<WriteBufferStats>(_stats[s])};
    }

    /** View of hierarchy configuration @p i (fatal when out of
     * range). */
    [[nodiscard]] HierarchyConfigView
    hierarchy(std::size_t i) const
    {
        const std::size_t s =
            kindSlot(ComponentKind::Hierarchy, i, "hierarchy");
        return {std::get<HierarchyParams>(_slots[s].params),
                std::get<HierarchyStats>(_stats[s])};
    }

    [[nodiscard]] std::size_t
    icacheCount() const
    {
        return kindCount(ComponentKind::ICache);
    }

    [[nodiscard]] std::size_t
    dcacheCount() const
    {
        return kindCount(ComponentKind::DCache);
    }

    [[nodiscard]] std::size_t
    tlbCount() const
    {
        return kindCount(ComponentKind::Tlb);
    }

    [[nodiscard]] std::size_t
    victimCount() const
    {
        return kindCount(ComponentKind::Victim);
    }

    [[nodiscard]] std::size_t
    writeBufferCount() const
    {
        return kindCount(ComponentKind::WriteBuffer);
    }

    [[nodiscard]] std::size_t
    hierarchyCount() const
    {
        return kindCount(ComponentKind::Hierarchy);
    }

    /** Total swept components of every kind. */
    [[nodiscard]] std::size_t
    componentCount() const
    {
        return _slots.size();
    }

    /** The swept geometry lists (index-aligned with the views). */
    [[nodiscard]] const std::vector<CacheGeometry> &
    icacheGeometries() const
    {
        return _icacheGeoms;
    }

    [[nodiscard]] const std::vector<CacheGeometry> &
    dcacheGeometries() const
    {
        return _dcacheGeoms;
    }

    [[nodiscard]] const std::vector<TlbGeometry> &
    tlbGeometries() const
    {
        return _tlbGeoms;
    }

  private:
    friend class ComponentSweep;

    [[nodiscard]] std::size_t
    kindCount(ComponentKind kind) const
    {
        return _kindIndex[std::size_t(kind)].size();
    }

    /** Slot index of the @p i -th component of @p kind (fatal when
     * out of range, naming accessor @p what). */
    [[nodiscard]] std::size_t
    kindSlot(ComponentKind kind, std::size_t i, const char *what) const
    {
        const std::vector<std::size_t> &index =
            _kindIndex[std::size_t(kind)];
        fatalIf(i >= index.size(),
                "SweepResult::" + std::string(what) + "(" +
                    std::to_string(i) + "): only " +
                    std::to_string(index.size()) +
                    " configurations swept");
        return index[i];
    }

    /** The heterogeneous component axis: one slot and one counters
     * record per swept component, in sweep order, plus a per-kind
     * index so the typed views stay O(1). */
    std::vector<ComponentSlot> _slots;
    std::vector<ComponentCounters> _stats;
    std::array<std::vector<std::size_t>, numComponentKinds> _kindIndex;

    /** Materialized geometry lists backing the by-reference classic
     * getters (index-aligned with the per-kind views). */
    std::vector<CacheGeometry> _icacheGeoms;
    std::vector<CacheGeometry> _dcacheGeoms;
    std::vector<TlbGeometry> _tlbGeoms;
};

/**
 * Runs one workload/OS pair against banks of I-cache, D-cache and TLB
 * configurations simultaneously.
 *
 * The engine is record-then-replay throughout: the trace is captured
 * once into a compact RecordedTrace (serially, so the workload RNG
 * advances exactly as in a legacy single-pass run, with OS page
 * invalidations recorded inline at their trace position), then the
 * reference machine and every cache and TLB geometry replay the
 * recording on private simulator instances. RunConfig::threads picks
 * the lane count for the replays; serial (threads = 1) runs the same
 * per-configuration replays inline, so results are bitwise identical
 * for any thread count. A recording loaded from a v2 trace file can
 * be swept directly via the RecordedTrace overload.
 *
 * When RunConfig::storeDir (or OMA_STORE_DIR) enables the artifact
 * store, the recording and every completed replay shard persist as
 * they are produced: a warm rerun skips the record phase entirely, a
 * killed sweep resumes at its last completed shard, and a corrupt
 * entry is quarantined and transparently re-simulated. Cached runs
 * reproduce live runs bit-for-bit (tests/core/test_store_sweep.cc).
 */
class ComponentSweep
{
  public:
    /**
     * The classic three-kind sweep: one I-cache slot per geometry
     * (each with its private Rng stream), one D-cache slot, one TLB
     * slot. Extension components join via addComponent().
     */
    ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                   std::vector<CacheGeometry> dcache_geoms,
                   std::vector<TlbGeometry> tlb_geoms,
                   const MachineParams &reference_machine =
                       MachineParams::decstation3100());

    /** Sweep an explicit heterogeneous component list. */
    explicit ComponentSweep(std::vector<ComponentSlot> slots,
                            const MachineParams &reference_machine =
                                MachineParams::decstation3100());

    /** Append one more component (any kind) to the sweep. */
    void
    addComponent(ComponentSlot slot)
    {
        _slots.push_back(std::move(slot));
    }

    /** The swept component slots, in task order. */
    [[nodiscard]] const std::vector<ComponentSlot> &
    components() const
    {
        return _slots;
    }

    /**
     * Run the sweep. An optional obs::Observation collects component
     * counters (merged over per-task shards in task order), phase
     * timings, store hit/miss counters and progress ticks; attaching
     * one never changes the SweepResult
     * (tests/core/test_observed_sweep.cc holds bitwise identity at 1
     * and 4 threads).
     */
    [[nodiscard]] SweepResult
    run(const WorkloadParams &workload, OsKind os,
        const RunConfig &run = RunConfig(),
        obs::Observation *observation = nullptr) const;

    OMA_DEPRECATED("phrase the query as an api::AllocationRequest and "
                    "sweep through api::QueryEngine (api/query_engine.hh)")
    [[nodiscard]] SweepResult
    run(BenchmarkId id, OsKind os,
        const RunConfig &run_config = RunConfig(),
        obs::Observation *observation = nullptr) const
    {
        return this->run(benchmarkParams(id), os, run_config,
                         observation);
    }

    /**
     * Sweep an existing recording (e.g. System::record output or a
     * readTrace()d v2 file) on @p threads lanes (0 = hardware, 1 =
     * serial). Reproduces the live-run SweepResult exactly when the
     * recording came from the same workload/OS/seed/length. Never
     * touches the artifact store: a bare recording carries no
     * provenance to fingerprint.
     */
    [[nodiscard]] SweepResult
    run(const RecordedTrace &trace, unsigned threads = 0,
        obs::Observation *observation = nullptr) const;

  private:
    SweepResult replayTrace(const RecordedTrace &trace,
                            unsigned threads,
                            obs::Observation *observation,
                            const ArtifactStore *store,
                            const Fingerprint &base_key) const;

    std::vector<ComponentSlot> _slots;
    MachineParams _refMachine;
};

/**
 * Average per-configuration CPI tables over a set of SweepResults
 * (the paper reports suite averages). All results must have been
 * produced with identical geometry lists.
 */
struct ComponentCpiTables
{
    std::vector<CacheGeometry> icacheGeoms;
    std::vector<double> icacheCpi;
    std::vector<CacheGeometry> dcacheGeoms;
    std::vector<double> dcacheCpi;
    std::vector<TlbGeometry> tlbGeoms;
    std::vector<double> tlbCpi;

    /** One averaged extension candidate: a victim-cache organization
     * competing against the I-cache axis. */
    struct VictimOption
    {
        VictimParams params;
        double cpi = 0.0;
    };

    /** One averaged write-buffer depth candidate. */
    struct WriteBufferOption
    {
        WriteBufferParams params;
        double cpi = 0.0;
    };

    /** One averaged hierarchy candidate (replaces the split I/D
     * axes of an allocation wholesale). */
    struct HierarchyOption
    {
        HierarchyParams params;
        double cpi = 0.0;
    };

    /** Extension axes (empty for the paper's classic space). */
    std::vector<VictimOption> victimOptions;
    std::vector<WriteBufferOption> wbOptions;
    std::vector<HierarchyOption> hierarchyOptions;
    /** Base of an allocation's total CPI (1.0, as in Tables 6/7). */
    double baseCpi = 1.0;
    /** Config-independent write-buffer stall CPI (informational). */
    double wbCpi = 0.0;
    /** Config-independent non-memory stall CPI (informational). */
    double otherCpi = 0.0;

    [[nodiscard]] static ComponentCpiTables average(
        const std::vector<SweepResult> &results,
        const MachineParams &mp);
};

} // namespace oma

#endif // OMA_CORE_SWEEP_HH
