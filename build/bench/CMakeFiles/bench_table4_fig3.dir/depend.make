# Empty dependencies file for bench_table4_fig3.
# This may be replaced when dependencies are built.
