/**
 * @file
 * Implementation of pseudo-physical address mapping.
 */

#include "os/addrspace.hh"

#include "support/logging.hh"

namespace oma
{

namespace
{

/** Physical memory modelled as 2^18 frames (1 GB); collisions are
 * harmless (they just alias two cold pages). */
constexpr std::uint64_t frameMask = (1ULL << 18) - 1;

std::uint64_t
frameFor(std::uint64_t key, std::uint64_t vpn, std::uint64_t seed)
{
    return mix64(key * 0x9e3779b97f4a7c15ULL + vpn + seed) & frameMask;
}

} // namespace

AddressSpace::AddressSpace(std::uint32_t asid, std::uint64_t seed)
    : _asid(asid), _seed(seed)
{
    fatalIf(asid > 63, "R2000 ASIDs are 6 bits (0 = kernel)");
}

void
AddressSpace::addSharedSegment(const Segment &seg)
{
    fatalIf(seg.shareKey == 0, "shared segments need a non-zero key");
    _shared.push_back(seg);
}

void
AddressSpace::addLinearSegment(std::uint64_t base, std::uint64_t size)
{
    Segment seg;
    seg.base = base;
    seg.size = size;
    seg.shareKey = 0;
    seg.linear = true;
    _shared.push_back(seg);
}

std::uint64_t
AddressSpace::paddrFor(std::uint64_t vaddr) const
{
    if (inKseg0(vaddr))
        return vaddr - kseg0Base; // direct-mapped, like the R2000

    const std::uint64_t vpn = vpnOf(vaddr);
    const std::uint64_t offset = vaddr & (pageBytes - 1);

    std::uint64_t key;
    bool linear = false;
    std::uint64_t seg_vpn = 0;
    if (inKseg2(vaddr)) {
        key = 0; // kernel-global mapped pages
    } else {
        key = _asid;
        for (const auto &seg : _shared) {
            if (seg.contains(vaddr)) {
                if (seg.shareKey != 0)
                    key = seg.shareKey;
                linear = seg.linear;
                seg_vpn = vpnOf(seg.base);
                break;
            }
        }
    }
    if (linear) {
        // Contiguous frames from a hashed base, like text at exec.
        const std::uint64_t base_frame =
            frameFor(key ^ (seg_vpn << 8), 0, _seed);
        const std::uint64_t frame =
            (base_frame + (vpn - seg_vpn)) % (1ULL << 18);
        return (frame << pageShift) | offset;
    }
    return (frameFor(key, vpn, _seed) << pageShift) | offset;
}

} // namespace oma
