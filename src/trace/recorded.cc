/**
 * @file
 * Out-of-line pieces of RecordedTrace.
 */

#include "trace/recorded.hh"

#include "support/logging.hh"

namespace oma
{

void
RecordedTrace::checkEncodable(const MemRef &ref)
{
    fatalIf(ref.vaddr > 0xffffffffULL || ref.paddr > 0xffffffffULL,
            "reference does not fit the packed 32-bit trace encoding");
    fatalIf(ref.asid > 0xff,
            "ASID does not fit the packed trace encoding");
}

void
RecordedTrace::newChunk()
{
    Chunk c;
    c.vaddr.reserve(chunkRefs);
    c.paddr.reserve(chunkRefs);
    c.asid.reserve(chunkRefs);
    c.flags.reserve(chunkRefs);
    _chunks.push_back(std::move(c));
}

} // namespace oma
