/**
 * @file
 * Implementation of the victim cache.
 */

#include "cache/victim.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace oma
{

VictimCache::VictimCache(const CacheGeometry &l1,
                         std::uint64_t victim_entries)
    : _geom(l1)
{
    _geom.validate();
    fatalIf(_geom.assoc != 1,
            "victim caches back a direct-mapped L1: " + _geom.describe());
    _lineShift = floorLog2(_geom.lineBytes);
    _setMask = _geom.numSets() - 1;
    _l1Tags.assign(_geom.numSets(), 0);
    _l1Valid.assign(_geom.numSets(), false);
    _victim.assign(victim_entries, VictimLine());
}

int
VictimCache::access(std::uint64_t paddr)
{
    ++_tick;
    ++_stats.accesses;
    const std::uint64_t line = paddr >> _lineShift;
    const std::uint64_t set = line & _setMask;

    if (_l1Valid[set] && _l1Tags[set] == line) {
        ++_stats.l1Hits;
        return 0;
    }

    // L1 miss: probe the victim buffer.
    for (auto &v : _victim) {
        if (v.valid && v.line == line) {
            // Swap: the victim's line moves into the L1 slot and the
            // displaced L1 line takes its place in the buffer.
            ++_stats.victimHits;
            const bool had_line = _l1Valid[set];
            const std::uint64_t displaced = _l1Tags[set];
            _l1Tags[set] = line;
            _l1Valid[set] = true;
            if (had_line) {
                v.line = displaced;
                v.stamp = _tick;
            } else {
                v.valid = false;
            }
            return 1;
        }
    }

    // Memory miss: fill the L1, push the displaced line into the
    // victim buffer (LRU replacement).
    ++_stats.misses;
    const bool had_line = _l1Valid[set];
    const std::uint64_t displaced = _l1Tags[set];
    _l1Tags[set] = line;
    _l1Valid[set] = true;
    if (had_line && !_victim.empty()) {
        VictimLine *slot = &_victim[0];
        for (auto &v : _victim) {
            if (!v.valid) {
                slot = &v;
                break;
            }
            if (v.stamp < slot->stamp)
                slot = &v;
        }
        slot->line = displaced;
        slot->stamp = _tick;
        slot->valid = true;
    }
    return 2;
}

} // namespace oma
