/**
 * @file
 * Implementation of the software-managed MMU model.
 */

#include "tlb/mmu.hh"

#include "trace/recorded.hh"

namespace oma
{

const char *
missClassName(MissClass c)
{
    switch (c) {
      case MissClass::UserMiss:
        return "user";
      case MissClass::KernelMiss:
        return "kernel";
      case MissClass::ModifyFault:
        return "modify";
      case MissClass::InvalidFault:
        return "invalid";
      case MissClass::PageFault:
        return "other";
    }
    return "?";
}

Mmu::Mmu(const TlbParams &params, const TlbPenalties &penalties)
    : _tlb(params), _penalties(penalties),
      _flushOnSwitch(params.flushOnAsidSwitch)
{
}

std::uint64_t
Mmu::charge(MissClass c)
{
    const std::uint64_t cost = _penalties.cyclesFor(c);
    ++_stats.counts[unsigned(c)];
    _stats.cycles[unsigned(c)] += cost;
    return cost;
}

std::uint64_t
Mmu::fillPtePage(std::uint32_t asid, std::uint64_t user_vpn,
                 bool charge_miss)
{
    const std::uint64_t pt_vpn = ptePageVpn(asid, user_vpn);
    if (_tlb.lookup(pt_vpn, asid))
        return 0;
    // Page-table pages are kernel-global mappings; their own metadata
    // is kernel bookkeeping, not a user-visible page fault. When the
    // refill happens inside a page-fault handler its cost is already
    // part of the fault service, so it is not charged again.
    std::uint64_t cost = 0;
    if (charge_miss)
        cost = charge(MissClass::KernelMiss);
    PageFlags &flags = _pages[pageKey(pt_vpn, 0, true)];
    flags.touched = true;
    flags.dirty = true;
    _tlb.insert(pt_vpn, asid, /*global=*/true, /*dirty=*/true);
    return cost;
}

std::uint64_t
Mmu::translate(const MemRef &ref)
{
    if (!ref.mapped || !isMappedAddress(ref.vaddr))
        return 0;
    return translateMapped(ref.vaddr, ref.asid, ref.isStore());
}

std::uint64_t
Mmu::translatePacked(std::uint32_t vaddr, std::uint8_t asid,
                     std::uint8_t flags)
{
    if ((flags & RecordedTrace::mappedBit) == 0 ||
        !isMappedAddress(vaddr)) {
        return 0;
    }
    const bool store =
        RefKind(flags & RecordedTrace::kindMask) == RefKind::Store;
    return translateMapped(vaddr, asid, store);
}

std::uint64_t
Mmu::translateMapped(std::uint64_t vaddr, std::uint32_t asid,
                     bool store)
{
    ++_stats.translations;
    const bool kernel_seg = inKseg2(vaddr);
    if (_flushOnSwitch && !kernel_seg) {
        if (_asidSeen && asid != _currentAsid) {
            // No ASIDs in the hardware: a context switch invalidates
            // every entry (kernel-global entries included — there is
            // no G bit either).
            _tlb.invalidateAll();
            ++_stats.asidFlushes;
        }
        _currentAsid = asid;
        _asidSeen = true;
    }
    const std::uint64_t vpn = vpnOf(vaddr);
    std::uint64_t cost = 0;

    if (_tlb.lookup(vpn, asid)) {
        if (store && !_tlb.isDirty(vpn, asid)) {
            // First store through a clean entry: modify fault.
            cost += charge(MissClass::ModifyFault);
            PageFlags &flags = _pages[pageKey(vpn, asid, kernel_seg)];
            flags.dirty = true;
            _tlb.setDirty(vpn, asid);
        }
        return cost;
    }

    PageFlags &flags = _pages[pageKey(vpn, asid, kernel_seg)];
    if (!flags.touched) {
        // First touch: OS-level page fault, independent of the TLB
        // geometry (the "Other" class of Figure 7). Recorded in the
        // stats but not returned as stall time — the fault handler
        // runs as ordinary kernel execution, which is how the paper's
        // hardware monitor would have attributed it.
        charge(MissClass::PageFault);
        flags.touched = true;
        // The fault handler builds the mapping through the linear
        // page table, leaving the PT page warm in the TLB.
        if (!kernel_seg)
            fillPtePage(asid, vpn, /*charge_miss=*/false);
    } else if (flags.invalidated) {
        cost += charge(MissClass::InvalidFault);
        flags.invalidated = false;
    } else if (kernel_seg) {
        cost += charge(MissClass::KernelMiss);
    } else {
        // Fast uTLB refill; the handler reads the PTE out of the
        // mapped page-table page, which may itself miss.
        cost += charge(MissClass::UserMiss);
        cost += fillPtePage(asid, vpn);
    }

    if (store && !flags.dirty) {
        // The refilled entry is clean; the retried store takes a
        // modify fault before the page becomes writable.
        cost += charge(MissClass::ModifyFault);
        flags.dirty = true;
    }
    _tlb.insert(vpn, asid, kernel_seg, flags.dirty);
    return cost;
}

void
Mmu::invalidatePage(std::uint64_t vpn, std::uint32_t asid, bool global)
{
    PageFlags &flags = _pages[pageKey(vpn, asid, global)];
    if (!flags.touched)
        return;
    flags.invalidated = true;
    flags.dirty = false;
    _tlb.invalidate(vpn, asid);
}

} // namespace oma
