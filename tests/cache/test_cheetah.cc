/**
 * @file
 * Tests for the Cheetah all-associativity engine, including
 * equivalence with the direct cache simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/cheetah.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

std::vector<std::uint64_t>
randomStream(std::uint64_t seed, std::size_t n, std::uint64_t span)
{
    Rng rng(seed);
    std::vector<std::uint64_t> addrs(n);
    for (auto &a : addrs)
        a = rng.below(span) & ~3ULL;
    return addrs;
}

TEST(Cheetah, SimpleStackDistances)
{
    Cheetah sim(1, 16, 4);
    // A B A -> A misses, B misses, A hits at depth 1.
    sim.access(0x00);
    sim.access(0x10);
    sim.access(0x00);
    EXPECT_EQ(sim.accesses(), 3u);
    EXPECT_EQ(sim.misses(1), 3u); // 1-entry: the re-reference misses
    EXPECT_EQ(sim.misses(2), 2u); // 2 entries: re-reference hits
    EXPECT_EQ(sim.misses(4), 2u);
    EXPECT_EQ(sim.compulsoryMisses(), 2u);
}

TEST(Cheetah, MissesMonotoneInWays)
{
    Cheetah sim(16, 16, 8);
    for (std::uint64_t addr : randomStream(3, 50000, 1 << 16))
        sim.access(addr);
    std::uint64_t prev = ~0ULL;
    for (std::uint64_t ways = 1; ways <= 8; ++ways) {
        EXPECT_LE(sim.misses(ways), prev);
        prev = sim.misses(ways);
    }
}

class CheetahEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(CheetahEquivalence, MatchesDirectLruSimulatorExactly)
{
    const auto [sets, seed] = GetParam();
    const std::uint64_t line = 16;
    const std::uint64_t max_ways = 8;
    Cheetah sim(sets, line, max_ways);

    std::vector<Cache> direct;
    for (std::uint64_t ways = 1; ways <= max_ways; ways *= 2) {
        CacheParams p;
        p.geom = CacheGeometry(sets * line * ways, line, ways);
        direct.emplace_back(p);
    }

    for (std::uint64_t addr : randomStream(seed, 30000, 1 << 18)) {
        sim.access(addr);
        for (auto &cache : direct)
            cache.access(addr, RefKind::Load);
    }

    std::size_t i = 0;
    for (std::uint64_t ways = 1; ways <= max_ways; ways *= 2, ++i) {
        EXPECT_EQ(sim.misses(ways), direct[i].stats().totalMisses())
            << "sets=" << sets << " ways=" << ways;
    }
    EXPECT_EQ(sim.compulsoryMisses(),
              direct[0].stats().compulsoryMisses);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CheetahEquivalence,
    ::testing::Combine(::testing::Values(1u, 8u, 64u, 256u),
                       ::testing::Values(11u, 12u, 13u)));

TEST(Cheetah, FullyAssociativeModeSweepsTlbSizes)
{
    // sets=1, line=1: keys are used directly, which is how FA TLB
    // size sweeps run (vpn as the key).
    Cheetah sim(1, 1, 64);
    Rng rng(9);
    std::vector<std::uint64_t> keys(20000);
    for (auto &k : keys)
        k = rng.zipf(256, 1.0);
    for (std::uint64_t k : keys)
        sim.access(k);

    // Cross-check one size against a direct fully-associative cache
    // of 32 entries with 1-byte lines... the Cache requires >= 4-byte
    // lines, so use a hand LRU check instead: monotone + bounded.
    EXPECT_GE(sim.misses(1), sim.misses(32));
    EXPECT_GE(sim.misses(32), sim.misses(64));
    EXPECT_GE(sim.misses(64), sim.compulsoryMisses());
}

TEST(Cheetah, AccessCountsAreExact)
{
    Cheetah sim(4, 16, 2);
    for (int i = 0; i < 123; ++i)
        sim.access(i * 4);
    EXPECT_EQ(sim.accesses(), 123u);
}

TEST(CheetahDeath, WaysOutOfRange)
{
    Cheetah sim(4, 16, 2);
    sim.access(0);
    // The result is discarded on purpose: the call must die first.
    EXPECT_DEATH((void)sim.misses(3), "out of range");
    EXPECT_DEATH((void)sim.misses(0), "out of range");
}

} // namespace
} // namespace oma
