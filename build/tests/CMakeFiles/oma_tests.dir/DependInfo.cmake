
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/area/test_access_time.cc" "tests/CMakeFiles/oma_tests.dir/area/test_access_time.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/area/test_access_time.cc.o.d"
  "/root/repo/tests/area/test_geometry.cc" "tests/CMakeFiles/oma_tests.dir/area/test_geometry.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/area/test_geometry.cc.o.d"
  "/root/repo/tests/area/test_mqf.cc" "tests/CMakeFiles/oma_tests.dir/area/test_mqf.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/area/test_mqf.cc.o.d"
  "/root/repo/tests/area/test_mqf_calibration.cc" "tests/CMakeFiles/oma_tests.dir/area/test_mqf_calibration.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/area/test_mqf_calibration.cc.o.d"
  "/root/repo/tests/cache/test_bank.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_bank.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_bank.cc.o.d"
  "/root/repo/tests/cache/test_cache.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_cache.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_cache.cc.o.d"
  "/root/repo/tests/cache/test_cache_property.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_cache_property.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_cache_property.cc.o.d"
  "/root/repo/tests/cache/test_cheetah.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_cheetah.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_cheetah.cc.o.d"
  "/root/repo/tests/cache/test_hierarchy.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_hierarchy.cc.o.d"
  "/root/repo/tests/cache/test_prefetch.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_prefetch.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_prefetch.cc.o.d"
  "/root/repo/tests/cache/test_victim.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_victim.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_victim.cc.o.d"
  "/root/repo/tests/cache/test_writepolicy.cc" "tests/CMakeFiles/oma_tests.dir/cache/test_writepolicy.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/cache/test_writepolicy.cc.o.d"
  "/root/repo/tests/core/test_experiment.cc" "tests/CMakeFiles/oma_tests.dir/core/test_experiment.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/core/test_experiment.cc.o.d"
  "/root/repo/tests/core/test_experiment_machines.cc" "tests/CMakeFiles/oma_tests.dir/core/test_experiment_machines.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/core/test_experiment_machines.cc.o.d"
  "/root/repo/tests/core/test_search.cc" "tests/CMakeFiles/oma_tests.dir/core/test_search.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/core/test_search.cc.o.d"
  "/root/repo/tests/core/test_search_property.cc" "tests/CMakeFiles/oma_tests.dir/core/test_search_property.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/core/test_search_property.cc.o.d"
  "/root/repo/tests/core/test_sweep.cc" "tests/CMakeFiles/oma_tests.dir/core/test_sweep.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/core/test_sweep.cc.o.d"
  "/root/repo/tests/integration/test_endtoend.cc" "tests/CMakeFiles/oma_tests.dir/integration/test_endtoend.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/integration/test_endtoend.cc.o.d"
  "/root/repo/tests/integration/test_golden.cc" "tests/CMakeFiles/oma_tests.dir/integration/test_golden.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/integration/test_golden.cc.o.d"
  "/root/repo/tests/machine/test_machine.cc" "tests/CMakeFiles/oma_tests.dir/machine/test_machine.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/machine/test_machine.cc.o.d"
  "/root/repo/tests/machine/test_machine_tlb.cc" "tests/CMakeFiles/oma_tests.dir/machine/test_machine_tlb.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/machine/test_machine_tlb.cc.o.d"
  "/root/repo/tests/machine/test_writebuffer.cc" "tests/CMakeFiles/oma_tests.dir/machine/test_writebuffer.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/machine/test_writebuffer.cc.o.d"
  "/root/repo/tests/os/test_addrspace.cc" "tests/CMakeFiles/oma_tests.dir/os/test_addrspace.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/os/test_addrspace.cc.o.d"
  "/root/repo/tests/os/test_codewalk.cc" "tests/CMakeFiles/oma_tests.dir/os/test_codewalk.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/os/test_codewalk.cc.o.d"
  "/root/repo/tests/os/test_component.cc" "tests/CMakeFiles/oma_tests.dir/os/test_component.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/os/test_component.cc.o.d"
  "/root/repo/tests/os/test_datagen.cc" "tests/CMakeFiles/oma_tests.dir/os/test_datagen.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/os/test_datagen.cc.o.d"
  "/root/repo/tests/os/test_layout.cc" "tests/CMakeFiles/oma_tests.dir/os/test_layout.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/os/test_layout.cc.o.d"
  "/root/repo/tests/os/test_osmodel.cc" "tests/CMakeFiles/oma_tests.dir/os/test_osmodel.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/os/test_osmodel.cc.o.d"
  "/root/repo/tests/support/test_bits.cc" "tests/CMakeFiles/oma_tests.dir/support/test_bits.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/support/test_bits.cc.o.d"
  "/root/repo/tests/support/test_logging.cc" "tests/CMakeFiles/oma_tests.dir/support/test_logging.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/support/test_logging.cc.o.d"
  "/root/repo/tests/support/test_rng.cc" "tests/CMakeFiles/oma_tests.dir/support/test_rng.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/support/test_rng.cc.o.d"
  "/root/repo/tests/support/test_stats.cc" "tests/CMakeFiles/oma_tests.dir/support/test_stats.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/support/test_stats.cc.o.d"
  "/root/repo/tests/support/test_table.cc" "tests/CMakeFiles/oma_tests.dir/support/test_table.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/support/test_table.cc.o.d"
  "/root/repo/tests/tlb/test_mmu.cc" "tests/CMakeFiles/oma_tests.dir/tlb/test_mmu.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/tlb/test_mmu.cc.o.d"
  "/root/repo/tests/tlb/test_mmu_property.cc" "tests/CMakeFiles/oma_tests.dir/tlb/test_mmu_property.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/tlb/test_mmu_property.cc.o.d"
  "/root/repo/tests/tlb/test_noasid.cc" "tests/CMakeFiles/oma_tests.dir/tlb/test_noasid.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/tlb/test_noasid.cc.o.d"
  "/root/repo/tests/tlb/test_tapeworm.cc" "tests/CMakeFiles/oma_tests.dir/tlb/test_tapeworm.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/tlb/test_tapeworm.cc.o.d"
  "/root/repo/tests/tlb/test_tlb.cc" "tests/CMakeFiles/oma_tests.dir/tlb/test_tlb.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/tlb/test_tlb.cc.o.d"
  "/root/repo/tests/trace/test_memref.cc" "tests/CMakeFiles/oma_tests.dir/trace/test_memref.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/trace/test_memref.cc.o.d"
  "/root/repo/tests/trace/test_sampler.cc" "tests/CMakeFiles/oma_tests.dir/trace/test_sampler.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/trace/test_sampler.cc.o.d"
  "/root/repo/tests/trace/test_source.cc" "tests/CMakeFiles/oma_tests.dir/trace/test_source.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/trace/test_source.cc.o.d"
  "/root/repo/tests/trace/test_stats.cc" "tests/CMakeFiles/oma_tests.dir/trace/test_stats.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/trace/test_stats.cc.o.d"
  "/root/repo/tests/trace/test_tracefile.cc" "tests/CMakeFiles/oma_tests.dir/trace/test_tracefile.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/trace/test_tracefile.cc.o.d"
  "/root/repo/tests/workload/test_benchmarks.cc" "tests/CMakeFiles/oma_tests.dir/workload/test_benchmarks.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/workload/test_benchmarks.cc.o.d"
  "/root/repo/tests/workload/test_multiprog.cc" "tests/CMakeFiles/oma_tests.dir/workload/test_multiprog.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/workload/test_multiprog.cc.o.d"
  "/root/repo/tests/workload/test_system.cc" "tests/CMakeFiles/oma_tests.dir/workload/test_system.cc.o" "gcc" "tests/CMakeFiles/oma_tests.dir/workload/test_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/oma_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/oma_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/oma_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/oma_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/oma_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/oma_area.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
