/**
 * @file
 * Unit tests for the data-reference generator.
 */

#include <gtest/gtest.h>

#include "os/datagen.hh"

namespace oma
{
namespace
{

DataBehavior
behavior()
{
    DataBehavior d;
    d.loadPerInstr = 0.2;
    d.storePerInstr = 0.1;
    d.stackBase = 0x7ffe0000;
    d.stackBytes = 8 * 1024;
    d.stackFrac = 0.3;
    d.wsBase = 0x10000000;
    d.wsBytes = 128 * 1024;
    d.streamFracLoad = 0.2;
    d.streamFracStore = 0.4;
    d.streamBase = 0x20000000;
    d.streamBytes = 64 * 1024;
    return d;
}

TEST(DataGen, RatesApproximatelyHonoured)
{
    DataGen gen(behavior(), 1);
    const int n = 200000;
    int loads = 0, stores = 0;
    for (int i = 0; i < n; ++i) {
        bool is_store = false;
        if (gen.refForInstr(is_store)) {
            (is_store ? stores : loads)++;
            gen.nextAddr(is_store);
        }
    }
    EXPECT_NEAR(double(loads) / n, 0.2, 0.02);
    EXPECT_NEAR(double(stores) / n, 0.1, 0.02);
}

TEST(DataGen, AddressesStayInConfiguredRegions)
{
    const DataBehavior d = behavior();
    DataGen gen(d, 2);
    for (int i = 0; i < 100000; ++i) {
        bool is_store = false;
        if (!gen.refForInstr(is_store))
            continue;
        const std::uint64_t addr = gen.nextAddr(is_store);
        const bool in_stack = addr >= d.stackBase &&
            addr < d.stackBase + d.stackBytes;
        const bool in_ws =
            addr >= d.wsBase && addr < d.wsBase + d.wsBytes;
        const bool in_stream = addr >= d.streamBase &&
            addr < d.streamBase + d.streamBytes + 64;
        ASSERT_TRUE(in_stack || in_ws || in_stream)
            << std::hex << addr;
        ASSERT_EQ(addr % 4, 0u);
    }
}

TEST(DataGen, StoreBurstsAreSequentialWords)
{
    DataBehavior d = behavior();
    d.storeBurstMean = 8.0;
    DataGen gen(d, 3);
    int burst_continuations = 0;
    int stores = 0;
    std::uint64_t prev_store = 0;
    for (int i = 0; i < 100000; ++i) {
        bool is_store = false;
        if (!gen.refForInstr(is_store))
            continue;
        const std::uint64_t addr = gen.nextAddr(is_store);
        if (is_store) {
            if (stores && addr == prev_store + 4)
                ++burst_continuations;
            prev_store = addr;
            ++stores;
        }
    }
    // With mean burst 8, most stores continue a burst.
    EXPECT_GT(double(burst_continuations) / stores, 0.6);
}

TEST(DataGen, BurstNormalizationKeepsStoreRate)
{
    DataBehavior d = behavior();
    d.storeBurstMean = 6.0;
    DataGen gen(d, 4);
    const int n = 300000;
    int stores = 0;
    for (int i = 0; i < n; ++i) {
        bool is_store = false;
        if (gen.refForInstr(is_store) && is_store) {
            ++stores;
            gen.nextAddr(true);
        } else if (!is_store) {
            // refForInstr returned load or nothing; address only on
            // a data ref, which this branch cannot distinguish, so
            // draw nothing.
        }
    }
    EXPECT_NEAR(double(stores) / n, d.storePerInstr,
                0.25 * d.storePerInstr);
}

TEST(DataGen, StreamWrapsAround)
{
    DataBehavior d = behavior();
    d.loadPerInstr = 1.0;
    d.storePerInstr = 0.0;
    d.streamFracLoad = 1.0;
    d.stackFrac = 0.0;
    d.streamBytes = 256;
    DataGen gen(d, 5);
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 1000; ++i) {
        bool is_store = false;
        ASSERT_TRUE(gen.refForInstr(is_store));
        const std::uint64_t addr = gen.nextAddr(is_store);
        ASSERT_LT(addr, d.streamBase + d.streamBytes);
        max_seen = std::max(max_seen, addr);
    }
    EXPECT_EQ(max_seen, d.streamBase + d.streamBytes - 4);
}

TEST(DataGen, SecondWorkingSetUsedWhenConfigured)
{
    DataBehavior d = behavior();
    d.streamFracLoad = 0.0;
    d.streamFracStore = 0.0;
    d.stackFrac = 0.0;
    d.ws2Frac = 1.0;
    d.ws2Base = 0xd0000000;
    d.ws2Bytes = 32 * 1024;
    DataGen gen(d, 6);
    for (int i = 0; i < 10000; ++i) {
        bool is_store = false;
        if (!gen.refForInstr(is_store))
            continue;
        const std::uint64_t addr = gen.nextAddr(is_store);
        if (is_store)
            continue; // bursts may continue outside; loads only
        ASSERT_GE(addr, d.ws2Base);
        ASSERT_LT(addr, d.ws2Base + d.ws2Bytes);
    }
}

TEST(DataGen, DeterministicPerSeed)
{
    DataGen a(behavior(), 9), b(behavior(), 9);
    for (int i = 0; i < 10000; ++i) {
        bool sa = false, sb = false;
        const bool ra = a.refForInstr(sa);
        const bool rb = b.refForInstr(sb);
        ASSERT_EQ(ra, rb);
        ASSERT_EQ(sa, sb);
        if (ra) {
            ASSERT_EQ(a.nextAddr(sa), b.nextAddr(sb));
        }
    }
}

} // namespace
} // namespace oma
