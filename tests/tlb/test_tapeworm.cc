/**
 * @file
 * Tests for Tapeworm multi-configuration simulation and the
 * fully-associative size sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hh"
#include "tlb/tapeworm.hh"

namespace oma
{
namespace
{

MemRef
userRef(std::uint64_t vaddr, std::uint32_t asid)
{
    MemRef r;
    r.vaddr = vaddr;
    r.asid = asid;
    r.kind = RefKind::Load;
    r.mapped = true;
    return r;
}

std::vector<MemRef>
zipfPageStream(std::uint64_t seed, std::size_t n, std::uint64_t pages)
{
    Rng rng(seed);
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t page = rng.zipf(pages, 1.0);
        refs.push_back(userRef(0x01000000 + page * pageBytes,
                               1 + std::uint32_t(rng.below(2))));
    }
    return refs;
}

TEST(Tapeworm, SameConfigTwiceGivesIdenticalStats)
{
    TlbParams a;
    a.geom = TlbGeometry::fullyAssoc(32);
    Tapeworm tapeworm({a, a}, TlbPenalties());
    for (const MemRef &r : zipfPageStream(5, 30000, 256))
        tapeworm.observe(r);
    const MmuStats &s0 = tapeworm.at(0).stats();
    const MmuStats &s1 = tapeworm.at(1).stats();
    for (unsigned c = 0; c < numMissClasses; ++c) {
        EXPECT_EQ(s0.counts[c], s1.counts[c]);
        EXPECT_EQ(s0.cycles[c], s1.cycles[c]);
    }
}

TEST(Tapeworm, BiggerTlbNeverServicesMoreGeometryCycles)
{
    std::vector<TlbParams> configs;
    for (std::uint64_t entries : {16, 32, 64, 128, 256}) {
        TlbParams p;
        p.geom = TlbGeometry::fullyAssoc(entries);
        configs.push_back(p);
    }
    Tapeworm tapeworm(configs, TlbPenalties());
    for (const MemRef &r : zipfPageStream(7, 60000, 512))
        tapeworm.observe(r);
    std::uint64_t prev = ~0ULL;
    for (std::size_t i = 0; i < tapeworm.size(); ++i) {
        const std::uint64_t cycles =
            tapeworm.at(i).stats().geometryDependentCycles();
        EXPECT_LE(cycles, prev) << "config " << i;
        prev = cycles;
    }
}

TEST(Tapeworm, PageFaultsIdenticalAcrossConfigs)
{
    std::vector<TlbParams> configs;
    for (std::uint64_t entries : {16, 256}) {
        TlbParams p;
        p.geom = TlbGeometry::fullyAssoc(entries);
        configs.push_back(p);
    }
    Tapeworm tapeworm(configs, TlbPenalties());
    for (const MemRef &r : zipfPageStream(9, 30000, 300))
        tapeworm.observe(r);
    EXPECT_EQ(
        tapeworm.at(0).stats().counts[unsigned(MissClass::PageFault)],
        tapeworm.at(1).stats().counts[unsigned(MissClass::PageFault)]);
}

TEST(Tapeworm, InvalidationBroadcasts)
{
    std::vector<TlbParams> configs(2);
    configs[0].geom = TlbGeometry::fullyAssoc(64);
    configs[1].geom = TlbGeometry(64, 4);
    Tapeworm tapeworm(configs, TlbPenalties());
    const MemRef r = userRef(0x2000, 1);
    tapeworm.observe(r);
    tapeworm.invalidatePage(vpnOf(0x2000), 1, false);
    tapeworm.observe(r);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(tapeworm.at(i).stats().counts[unsigned(
                      MissClass::InvalidFault)],
                  1u)
            << i;
    }
}

TEST(FaTlbSweep, MatchesDirectFullyAssociativeTlbs)
{
    // The sweep's raw miss counts must equal a direct FA LRU TLB
    // fed the same (vpn, asid) stream, for every size at once.
    const auto refs = zipfPageStream(11, 40000, 400);
    FaTlbSweep sweep(128);

    std::vector<Tlb> direct;
    const std::vector<std::uint64_t> sizes = {8, 16, 32, 64, 128};
    for (std::uint64_t entries : sizes) {
        TlbParams p;
        p.geom = TlbGeometry::fullyAssoc(entries);
        direct.emplace_back(p);
    }

    for (const MemRef &r : refs) {
        sweep.observe(r);
        const std::uint64_t vpn = vpnOf(r.vaddr);
        for (auto &tlb : direct) {
            if (!tlb.lookup(vpn, r.asid))
                tlb.insert(vpn, r.asid, false, false);
        }
    }

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(sweep.misses(sizes[i]), direct[i].stats().misses)
            << sizes[i] << " entries";
    }
}

TEST(FaTlbSweep, ClassCountsSumToTotal)
{
    const auto refs = zipfPageStream(13, 20000, 300);
    FaTlbSweep sweep(64);
    for (const MemRef &r : refs)
        sweep.observe(r);
    for (std::uint64_t entries : {8, 32, 64}) {
        const std::uint64_t total = sweep.misses(entries);
        const std::uint64_t parts =
            sweep.missesOfClass(entries, MissClass::UserMiss) +
            sweep.missesOfClass(entries, MissClass::KernelMiss) +
            sweep.missesOfClass(entries, MissClass::PageFault);
        EXPECT_EQ(total, parts) << entries;
    }
}

TEST(FaTlbSweep, KernelRefsClassified)
{
    FaTlbSweep sweep(16);
    MemRef k;
    k.vaddr = kseg2Base + 0x5000;
    k.asid = 0;
    k.mapped = true;
    sweep.observe(k);
    EXPECT_EQ(sweep.missesOfClass(16, MissClass::PageFault), 1u);
    EXPECT_EQ(sweep.translations(), 1u);
    // Unmapped refs are ignored.
    MemRef unmapped;
    unmapped.vaddr = kseg0Base + 0x100;
    unmapped.mapped = false;
    sweep.observe(unmapped);
    EXPECT_EQ(sweep.translations(), 1u);
}

} // namespace
} // namespace oma
