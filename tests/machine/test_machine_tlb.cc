/**
 * @file
 * Machine-level TLB stall attribution tests: mapped references whose
 * translations miss must surface as TLB stall cycles with the right
 * penalties, and invalidations must propagate through the machine.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "os/layout.hh"

namespace oma
{
namespace
{

MemRef
mapped(std::uint64_t vaddr, std::uint32_t asid,
       RefKind kind = RefKind::Load)
{
    MemRef r;
    r.vaddr = vaddr;
    r.paddr = 0x100000 + (vaddr & 0xfffff);
    r.asid = asid;
    r.kind = kind;
    r.mode = Mode::User;
    r.mapped = true;
    return r;
}

MachineParams
tinyTlbMachine()
{
    MachineParams p = MachineParams::decstation3100();
    p.tlb.geom = TlbGeometry::fullyAssoc(2);
    return p;
}

TEST(MachineTlb, EvictionRefillsSurfaceAsTlbStall)
{
    Machine machine(tinyTlbMachine());
    // Touch three far-apart pages (sharing one PT page region would
    // still exceed the 2-entry TLB), then re-touch the first.
    machine.observe(mapped(0x00001000, 1));
    machine.observe(mapped(0x00002000, 1));
    machine.observe(mapped(0x00003000, 1));
    const std::uint64_t before = machine.stalls().tlbStall;
    machine.observe(mapped(0x00001000, 1));
    const std::uint64_t delta = machine.stalls().tlbStall - before;
    EXPECT_GE(delta, machine.params().tlbPenalties.userMiss);
}

TEST(MachineTlb, ModifyFaultChargesStall)
{
    Machine machine(MachineParams::decstation3100());
    machine.observe(mapped(0x5000, 1, RefKind::Load)); // fault, clean
    const std::uint64_t before = machine.stalls().tlbStall;
    machine.observe(mapped(0x5000, 1, RefKind::Store)); // modify
    EXPECT_EQ(machine.stalls().tlbStall - before,
              machine.params().tlbPenalties.modifyFault);
}

TEST(MachineTlb, InvalidationHookForcesInvalidFault)
{
    Machine machine(MachineParams::decstation3100());
    machine.observe(mapped(0x7000, 1));
    machine.mmu().invalidatePage(vpnOf(0x7000), 1, false);
    const std::uint64_t before = machine.stalls().tlbStall;
    machine.observe(mapped(0x7000, 1));
    EXPECT_GE(machine.stalls().tlbStall - before,
              machine.params().tlbPenalties.invalidFault);
}

TEST(MachineTlb, UnmappedRefsNeverChargeTlb)
{
    Machine machine(tinyTlbMachine());
    for (int i = 0; i < 1000; ++i) {
        MemRef r;
        r.vaddr = kseg0Base + i * 4096;
        r.paddr = i * 4096;
        r.kind = RefKind::Load;
        r.mode = Mode::Kernel;
        r.mapped = false;
        machine.observe(r);
    }
    EXPECT_EQ(machine.stalls().tlbStall, 0u);
    EXPECT_EQ(machine.mmu().stats().translations, 0u);
}

TEST(MachineTlb, CyclesIncludeTlbService)
{
    Machine machine(tinyTlbMachine());
    machine.observe(mapped(0x1000, 1));
    machine.observe(mapped(0x2000, 1));
    machine.observe(mapped(0x3000, 1));
    machine.observe(mapped(0x1000, 1)); // refill
    EXPECT_EQ(machine.cycles(), machine.stalls().cycles());
    EXPECT_GT(machine.stalls().tlbStall, 0u);
}

} // namespace
} // namespace oma
