// Scratch calibration tool: I-cache miss-ratio curve for one workload.
#include <cstdlib>
#include <iostream>
#include <array>
#include <map>
#include "api/query_engine.hh"
#include "core/sweep.hh"
#include "workload/system.hh"
using namespace oma;
int main(int argc, char **argv) {
    std::string wl = argc > 1 ? argv[1] : "mpeg_play";
    OsKind os = (argc > 2 && std::string(argv[2]) == "mach") ? OsKind::Mach : OsKind::Ultrix;
    uint64_t refs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1500000;
    BenchmarkId id = BenchmarkId::Mpeg;
    for (auto b : allBenchmarks()) if (wl == benchmarkName(b)) id = b;
    std::vector<CacheGeometry> ig, dg;
    for (uint64_t kb : {2, 4, 8, 16, 32, 64}) {
        ig.push_back(CacheGeometry::fromWords(kb*1024, 4, 1));
        dg.push_back(CacheGeometry::fromWords(kb*1024, 4, 1));
    }
    ig.push_back(CacheGeometry::fromWords(64*1024, 1, 1)); // baseline
    dg.push_back(CacheGeometry::fromWords(64*1024, 1, 1));
    std::vector<TlbGeometry> tg = {TlbGeometry::fullyAssoc(64), TlbGeometry::fullyAssoc(256)};
    // Calibration sweeps phrase their question through the query API
    // like every other frontend; the hand-built grid rides along as
    // an explicit SweepGrid.
    api::QueryEngine engine;
    api::SweepGrid grid;
    grid.icacheGeoms = ig;
    grid.dcacheGeoms = dg;
    grid.tlbGeoms = tg;
    api::AllocationRequest request;
    request.workloads = {id};
    request.os = os;
    request.references = refs;
    auto r = engine.sweep(request, nullptr, &grid).front();
    std::cout << wl << " " << (os==OsKind::Mach?"Mach":"Ultrix") << "  instr=" << r.instructions << "\n";
    std::cout << "I-miss%: ";
    for (size_t i = 0; i < ig.size(); ++i)
        std::cout << ig[i].capacityBytes/1024 << "K/" << ig[i].lineWords() << "w=" << 100*r.icache(i).missRatio() << " ";
    std::cout << "\nD-miss%: ";
    for (size_t i = 0; i < dg.size(); ++i)
        std::cout << dg[i].capacityBytes/1024 << "K/" << dg[i].lineWords() << "w=" << 100*r.dcache(i).missRatio() << " ";
    std::cout << "\nTLB64 cpi=" << r.tlb(0).cpi() << " TLB256 cpi=" << r.tlb(1).cpi()
              << " wbCpi=" << r.wbCpi << " otherCpi=" << r.otherCpi << "\n";
    const MmuStats &m = r.tlb(0).stats;
    std::cout << "TLB64 classes (count/cpi): ";
    for (unsigned c = 0; c < numMissClasses; ++c)
        std::cout << missClassName(MissClass(c)) << "=" << m.counts[c]
                  << "/" << double(m.cycles[c])/double(r.instructions) << " ";
    std::cout << "\n";
    // One recording drives both attribution passes below (the same
    // stream the sweep above consumed, since the seed matches).
    System sys(benchmarkParams(id), os, 42);
    const RecordedTrace t = sys.record(refs);
    // Attribute baseline (64K/1w DM) I-cache misses by code region.
    {
        CacheParams cp; cp.geom = CacheGeometry::fromWords(64*1024, 1, 1);
        Cache ic(cp);
        std::map<std::string, std::pair<uint64_t,uint64_t>> by;
        t.replay([&](const MemRef &ref) {
            if (!ref.isFetch()) return;
            std::string key;
            if (ref.vaddr >= 0x80000000ULL) {
                uint64_t off = ref.vaddr - 0x80000000ULL;
                key = off < 0x100000 ? "k.trap" : (off < 0x200000 ? "k.svc" : "k.ipc+timer");
            } else if (ref.vaddr >= 0x70000000ULL) key = "emul";
            else if (ref.mode == Mode::User && ref.asid == 1) key = "app";
            else if (ref.asid == 2) key = "xserver";
            else if (ref.asid == 3) key = "bsd-server";
            else key = "other-user";
            auto &e = by[key]; e.first++;
            if (!ic.access(ref.paddr, ref.kind)) e.second++;
        });
        std::cout << "I-miss by region (fetches/missratio%/missesPerKinstr):\n";
        uint64_t instr = 0; for (auto &kv : by) instr += kv.second.first;
        for (auto &kv : by)
            std::cout << "  " << kv.first << " " << kv.second.first
                      << " " << 100.0*kv.second.second/std::max<uint64_t>(1,kv.second.first)
                      << "% " << 1000.0*kv.second.second/instr << "\n";
    }
    // Attribute D-cache misses by data region at 8K and 32K (4w DM).
    {
        CacheParams c8; c8.geom = CacheGeometry::fromWords(8*1024, 4, 1);
        CacheParams c32; c32.geom = CacheGeometry::fromWords(32*1024, 4, 1);
        Cache d8(c8), d32(c32);
        std::map<std::string, std::array<uint64_t,3>> by; // refs, m8, m32
        uint64_t instr = 0;
        t.replay([&](const MemRef &ref) {
            if (ref.isFetch()) { ++instr; return; }
            if (isUncached(ref.vaddr)) return;
            std::string key;
            uint64_t va = ref.vaddr;
            if (va >= 0xc0000000ULL) key = "kseg2";
            else if (va >= 0x80000000ULL) {
                uint64_t off = va - 0x80000000ULL;
                key = off < 0x400000 ? "kdata+kstack" : (off < 0xa00000 ? "bufcache" : "mbuf");
            }
            else if (va >= 0x7f000000ULL) key = "ustack";
            else if (va >= 0x70000000ULL) key = "emul-data";
            else if (va >= 0x30000000ULL) key = "serverbuf";
            else if (va >= 0x20000000ULL) key = "stream/xshare";
            else if (va >= 0x10000000ULL) key = (ref.asid==3?"server-ws":(ref.asid==2?"x-ws":"app-ws"));
            else key = "text-ish";
            auto &e = by[key]; e[0]++;
            if (!d8.access(ref.paddr, ref.kind)) e[1]++;
            if (!d32.access(ref.paddr, ref.kind)) e[2]++;
        });
        std::cout << "D-miss by region (refs, missPerKinstr@8K, @32K):\n";
        for (auto &kv : by)
            std::cout << "  " << kv.first << " " << kv.second[0]
                      << " " << 1000.0*kv.second[1]/instr
                      << " " << 1000.0*kv.second[2]/instr << "\n";
    }
    return 0;
}
