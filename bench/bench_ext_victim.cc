/**
 * @file
 * Extension: victim caches vs set associativity under access-time
 * pressure. Table 7 restricts caches to 1-/2-way because 4-/8-way
 * arrays may not fit the cycle time; a Jouppi victim buffer is the
 * classic third option — direct-mapped access time, a few CAM
 * entries of area, and much of 2-way's conflict-miss coverage. This
 * bench compares, at the I-cache sizes Table 7 cares about:
 * direct-mapped, direct-mapped + {2,4,8}-entry victim buffer, and
 * 2-way set-associative, on suite-average Mach instruction streams.
 *
 * All nine organizations per size ride one heterogeneous
 * ComponentSweep (core/component.hh): the 2-way caches as classic
 * I-cache slots, the victim organizations as victim slots, replayed
 * from a single recording per workload.
 */

#include <iostream>
#include <iterator>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

constexpr std::uint64_t kbSizes[] = {4, 8, 16, 32};
constexpr std::uint64_t victimDepths[] = {0, 2, 4, 8};
constexpr std::uint64_t lineBytes = 16; // 4-word lines

std::string
ratio(std::uint64_t misses, std::uint64_t fetches)
{
    return fmtFixed(double(misses) / double(fetches), 4);
}

} // namespace

int
main()
{
    omabench::banner("Extension: victim buffers vs 2-way set "
                     "associativity for the I-cache (Mach suite "
                     "average, 4-word lines)",
                     "Table 7's associativity restriction");

    omabench::BenchReport report("ext_victim");
    AreaModel area;

    omabench::SweepSuiteSpec spec;
    for (std::uint64_t kb : kbSizes) {
        CacheParams two_way;
        two_way.geom = CacheGeometry(kb * 1024, lineBytes, 2);
        spec.icacheGeoms.push_back(two_way.geom);
        for (std::uint64_t entries : victimDepths) {
            VictimParams p;
            p.l1 = CacheGeometry(kb * 1024, lineBytes, 1);
            p.entries = entries;
            spec.components.push_back(ComponentSlot::victim(p));
        }
    }
    spec.oses = {OsKind::Mach};
    spec.progressLabel = "victim sweep";
    const auto runs = omabench::runSweepSuite(spec, &report);
    const std::vector<SweepResult> &results = runs.front().results;

    constexpr std::size_t depths = std::size(victimDepths);
    TextTable table({"I-cache", "DM", "DM + V2", "DM + V4", "DM + V8",
                     "2-way"});
    for (std::size_t k = 0; k < std::size(kbSizes); ++k) {
        // Suite-summed fetch-stream counters (every organization sees
        // the identical fetch stream, so one denominator serves all).
        std::uint64_t fetches = 0, misses_2w = 0;
        std::uint64_t misses_v[depths] = {};
        for (const SweepResult &r : results) {
            fetches += r.victim(k * depths).stats.accesses;
            misses_2w += r.icache(k).stats.totalMisses();
            for (std::size_t v = 0; v < depths; ++v)
                misses_v[v] += r.victim(k * depths + v).stats.misses;
        }
        const std::uint64_t kb = kbSizes[k];
        report.metrics().add(
            "victim/" + std::to_string(kb) + "kb/fetches", fetches);
        report.metrics().add(
            "victim/" + std::to_string(kb) + "kb/misses_dm",
            misses_v[0]);
        report.metrics().add(
            "victim/" + std::to_string(kb) + "kb/misses_v8",
            misses_v[depths - 1]);
        report.metrics().add(
            "victim/" + std::to_string(kb) + "kb/misses_2w",
            misses_2w);
        table.addRow({fmtKBytes(kb * 1024),
                      ratio(misses_v[0], fetches),
                      ratio(misses_v[1], fetches),
                      ratio(misses_v[2], fetches),
                      ratio(misses_v[3], fetches),
                      ratio(misses_2w, fetches)});
    }
    table.print(std::cout);

    const double delta_2w =
        area.cacheArea(CacheGeometry(16 * 1024, 16, 2)) -
        area.cacheArea(CacheGeometry(16 * 1024, 16, 1));
    std::cout << "\nArea context (MQF): an 8-entry victim buffer of "
                 "16-B lines costs ~"
              << fmtGrouped(std::uint64_t(
                     area.victimBufferArea(8, lineBytes)))
              << " rbe, while taking a 16-KB cache from 1-way to "
                 "2-way at constant capacity is area-neutral in the "
                 "MQF model ("
              << fmtFixed(delta_2w, 0)
              << " rbe: halving the set count pays for the second "
                 "way's tags) — associativity's real price is access "
                 "time, which the victim buffer avoids (see "
                 "bench_ext_accesstime).\n"
                 "Honest finding: on these streams the buffer "
                 "recovers almost nothing. A multiple-API OS's "
                 "conflicts are broad code overlays — whole RPC "
                 "paths, server bodies and application loops "
                 "colliding across many sets at once — not the "
                 "pointwise, bursty conflicts Jouppi's buffer "
                 "absorbs (the unit tests demonstrate it does absorb "
                 "those). Associativity or capacity, as the paper's "
                 "Tables 6/7 allocate, is what actually helps; a "
                 "victim buffer is not a shortcut around Table 7's "
                 "access-time dilemma.\n";
    return 0;
}
