file(REMOVE_RECURSE
  "liboma_cache.a"
)
