/**
 * @file
 * Unit tests for cache and TLB geometry descriptions.
 */

#include <gtest/gtest.h>

#include "area/geometry.hh"

namespace oma
{
namespace
{

TEST(CacheGeometry, DerivedQuantities)
{
    const CacheGeometry g = CacheGeometry::fromWords(8192, 4, 2);
    EXPECT_EQ(g.capacityBytes, 8192u);
    EXPECT_EQ(g.lineBytes, 16u);
    EXPECT_EQ(g.lineWords(), 4u);
    EXPECT_EQ(g.numLines(), 512u);
    EXPECT_EQ(g.numSets(), 256u);
}

TEST(CacheGeometry, Describe)
{
    EXPECT_EQ(CacheGeometry::fromWords(16 * 1024, 8, 2).describe(),
              "16-KB 8-word 2-way");
    EXPECT_EQ(CacheGeometry::fromWords(2048, 1, 1).describe(),
              "2-KB 1-word 1-way");
}

TEST(CacheGeometry, Equality)
{
    EXPECT_TRUE(CacheGeometry(8192, 16, 2) == CacheGeometry(8192, 16, 2));
    EXPECT_FALSE(CacheGeometry(8192, 16, 2) == CacheGeometry(8192, 16, 4));
}

TEST(CacheGeometryDeath, RejectsNonPowerOfTwo)
{
    CacheGeometry bad(3000, 16, 1);
    EXPECT_EXIT(bad.validate(), testing::ExitedWithCode(1),
                "power of two");
}

TEST(CacheGeometryDeath, RejectsSubWordLine)
{
    CacheGeometry bad(4096, 2, 1);
    EXPECT_EXIT(bad.validate(), testing::ExitedWithCode(1), "line");
}

TEST(CacheGeometryDeath, RejectsZeroSets)
{
    // 2-KB cache with 32-word (128-B) lines and 32 ways needs 4 KB.
    CacheGeometry bad = CacheGeometry::fromWords(2048, 32, 32);
    EXPECT_EXIT(bad.validate(), testing::ExitedWithCode(1),
                "at least one set");
}

TEST(TlbGeometry, SetAssociative)
{
    const TlbGeometry g(512, 8);
    EXPECT_FALSE(g.fullyAssociative());
    EXPECT_EQ(g.ways(), 8u);
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.describe(), "512-entry 8-way");
}

TEST(TlbGeometry, FullyAssociative)
{
    const TlbGeometry g = TlbGeometry::fullyAssoc(64);
    EXPECT_TRUE(g.fullyAssociative());
    EXPECT_EQ(g.ways(), 64u);
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.describe(), "64-entry full");
}

TEST(TlbGeometryDeath, RejectsNonPowerOfTwo)
{
    TlbGeometry bad(100, 4);
    EXPECT_EXIT(bad.validate(), testing::ExitedWithCode(1),
                "power of two");
}

TEST(TlbGeometryDeath, RejectsMoreWaysThanEntries)
{
    TlbGeometry bad(4, 8);
    EXPECT_EXIT(bad.validate(), testing::ExitedWithCode(1),
                "at least one set");
}

class GeometryValidationSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(GeometryValidationSweep, AllTable5ConfigsAreValid)
{
    const auto [kb, line_words, ways] = GetParam();
    const CacheGeometry g =
        CacheGeometry::fromWords(kb * 1024, line_words, ways);
    if (g.capacityBytes >= g.lineBytes * g.assoc) {
        g.validate(); // must not exit
        EXPECT_GE(g.numSets(), 1u);
        EXPECT_EQ(g.numSets() * g.assoc * g.lineBytes, g.capacityBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table5, GeometryValidationSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 32u),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace oma
