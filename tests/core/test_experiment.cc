/**
 * @file
 * Tests of the baseline experiment driver — including the paper's
 * headline qualitative results (Table 3 / Table 4 shapes).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace oma
{
namespace
{

RunConfig
shortRun()
{
    RunConfig rc;
    rc.references = 400000;
    return rc;
}

TEST(Baseline, RunsAndAccountsReferences)
{
    const BaselineResult r =
        runBaseline(BenchmarkId::Mpeg, OsKind::Ultrix, shortRun());
    EXPECT_EQ(r.references, 400000u);
    EXPECT_GT(r.instructions, 200000u);
    EXPECT_GT(r.cpi.cpi, 1.0);
    EXPECT_LT(r.cpi.cpi, 6.0);
}

TEST(Baseline, UserOnlyIsAllUser)
{
    RunConfig rc = shortRun();
    rc.userOnly = true;
    const BaselineResult r =
        runBaseline(BenchmarkId::Mpeg, OsKind::Ultrix, rc);
    EXPECT_DOUBLE_EQ(r.userFraction, 1.0);
    EXPECT_DOUBLE_EQ(r.cpi.other,
                     benchmarkParams(BenchmarkId::Mpeg).userOtherCpi);
}

TEST(Baseline, UserOnlyUnderstatesCpi)
{
    // Table 3: omitting OS references understates the CPI.
    RunConfig rc = shortRun();
    const BaselineResult full =
        runBaseline(BenchmarkId::Mpeg, OsKind::Ultrix, rc);
    rc.userOnly = true;
    const BaselineResult user =
        runBaseline(BenchmarkId::Mpeg, OsKind::Ultrix, rc);
    EXPECT_LT(user.cpi.cpi, full.cpi.cpi);
}

TEST(Baseline, MachCpiExceedsUltrix)
{
    // The paper's central observation (Tables 3/4): same workload,
    // same hardware, higher CPI under the multiple-API system.
    for (BenchmarkId id : allBenchmarks()) {
        const BaselineResult u =
            runBaseline(id, OsKind::Ultrix, shortRun());
        const BaselineResult m =
            runBaseline(id, OsKind::Mach, shortRun());
        EXPECT_GT(m.cpi.cpi, u.cpi.cpi) << benchmarkName(id);
    }
}

TEST(Baseline, MachShiftsStallsToTlbAndIcache)
{
    // Table 4: under Mach the TLB and I-cache shares of stall time
    // rise and the D-cache share falls, for every workload.
    for (BenchmarkId id : allBenchmarks()) {
        const BaselineResult u =
            runBaseline(id, OsKind::Ultrix, shortRun());
        const BaselineResult m =
            runBaseline(id, OsKind::Mach, shortRun());
        const double u_stalls = u.cpi.stallTotal();
        const double m_stalls = m.cpi.stallTotal();
        EXPECT_GT(m.cpi.tlb / m_stalls, u.cpi.tlb / u_stalls)
            << benchmarkName(id);
        EXPECT_GT(m.cpi.icache / m_stalls, u.cpi.icache / u_stalls)
            << benchmarkName(id);
        EXPECT_LT(m.cpi.dcache / m_stalls, u.cpi.dcache / u_stalls)
            << benchmarkName(id);
    }
}

TEST(Baseline, MachRunsMoreKernelAndServerInstructions)
{
    const BaselineResult u =
        runBaseline(BenchmarkId::Ousterhout, OsKind::Ultrix,
                    shortRun());
    const BaselineResult m =
        runBaseline(BenchmarkId::Ousterhout, OsKind::Mach, shortRun());
    EXPECT_LT(m.userFraction, u.userFraction);
}

TEST(Baseline, DeterministicAcrossRuns)
{
    const BaselineResult a =
        runBaseline(BenchmarkId::Jpeg, OsKind::Mach, shortRun());
    const BaselineResult b =
        runBaseline(BenchmarkId::Jpeg, OsKind::Mach, shortRun());
    EXPECT_DOUBLE_EQ(a.cpi.cpi, b.cpi.cpi);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Baseline, CustomMachineParams)
{
    // A tiny I-cache must hurt: CPI rises versus the 64-KB baseline.
    MachineParams small = MachineParams::decstation3100();
    small.icache.geom = CacheGeometry::fromWords(2 * 1024, 1, 1);
    const BaselineResult big = runBaseline(
        BenchmarkId::Mpeg, OsKind::Mach, shortRun());
    const BaselineResult tiny = runBaseline(
        BenchmarkId::Mpeg, OsKind::Mach, shortRun(), small);
    EXPECT_GT(tiny.cpi.icache, big.cpi.icache);
}

} // namespace
} // namespace oma
