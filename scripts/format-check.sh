#!/usr/bin/env bash
# Check formatting of *changed* C++ files against .clang-format.
#
#   scripts/format-check.sh [BASE_REF]
#
# Compares the working tree plus commits since BASE_REF (default: the
# merge base with origin/main, falling back to HEAD~1, falling back to
# everything tracked). Only changed files are checked — the repo is
# deliberately not bulk-reformatted, so a tree-wide run would report
# pre-existing drift that is not this change's fault.
#
# Exits 0 when every changed file is clean (or clang-format is not
# installed — the CI lint job provides the authoritative run), 1 when
# a changed file needs formatting.
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
    echo "format-check: clang-format not found; skipping (CI runs it)"
    exit 0
fi

base="${1:-}"
if [ -z "$base" ]; then
    base="$(git merge-base origin/main HEAD 2> /dev/null)" ||
        base="$(git rev-parse HEAD~1 2> /dev/null)" || base=""
fi

if [ -n "$base" ]; then
    files="$( (git diff --name-only "$base" -- '*.cc' '*.hh' '*.cpp';
               git diff --name-only -- '*.cc' '*.hh' '*.cpp') | sort -u)"
else
    files="$(git ls-files '*.cc' '*.hh' '*.cpp')"
fi

status=0
checked=0
for f in $files; do
    [ -f "$f" ] || continue
    checked=$((checked + 1))
    if ! clang-format --dry-run --Werror "$f" > /dev/null 2>&1; then
        echo "format-check: needs formatting: $f"
        echo "    fix with: clang-format -i $f"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "format-check: $checked changed file(s) clean"
fi
exit $status
