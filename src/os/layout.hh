/**
 * @file
 * Canonical virtual-memory layout used by the OS models.
 *
 * Addresses follow MIPS/Ultrix conventions: text at 0x00400000,
 * static data above it, stack below 0x80000000, kernel text and
 * static data in kseg0, dynamically mapped kernel structures in
 * kseg2 above the per-ASID linear page tables.
 */

#ifndef OMA_OS_LAYOUT_HH
#define OMA_OS_LAYOUT_HH

#include <cstdint>

#include "tlb/mips_va.hh"

namespace oma::layout
{

// --- user address spaces -------------------------------------------------
constexpr std::uint64_t userTextBase = 0x00400000;
constexpr std::uint64_t userWsBase = 0x10000000;
constexpr std::uint64_t userStreamBase = 0x20000000;
constexpr std::uint64_t userStackBase = 0x7ffe0000;

/** Emulation library, mapped into every Mach UNIX process. */
constexpr std::uint64_t emulTextBase = 0x70000000;
constexpr std::uint64_t emulMsgBufBase = 0x71000000;

/** BSD server's file buffer cache (its own mapped kuseg). */
constexpr std::uint64_t serverBufBase = 0x30000000;

/** Where the X server maps shared frame memory under Mach. */
constexpr std::uint64_t xShareBase = 0x28000000;

// --- shared-segment keys --------------------------------------------------
constexpr std::uint64_t emulShareKey = 0x0e40;
constexpr std::uint64_t frameShareKey = 0xf00d;

// --- kernel ----------------------------------------------------------------
// Kernel text is packed the way a real kernel image is laid out:
// contiguous in physical memory, so the pieces do not alias each
// other in a direct-mapped physically-indexed cache.
constexpr std::uint64_t kTrapTextBase = kseg0Base + 0x00030000;  // 8 KB
constexpr std::uint64_t kSvcTextBase = kseg0Base + 0x00032000;   // 24 KB
constexpr std::uint64_t kIpcTextBase = kseg0Base + 0x00038000;   // 20 KB
constexpr std::uint64_t kTimerTextBase = kseg0Base + 0x0003d000; // 4 KB
constexpr std::uint64_t kStackBase = kseg0Base + 0x0003e000;     // 8 KB
constexpr std::uint64_t kDataBase = kseg0Base + 0x00404000;
constexpr std::uint64_t kBufferCacheBase = kseg0Base + 0x00800000;

/** Dynamically mapped kernel structures (above the page tables). */
constexpr std::uint64_t kseg2DynBase = 0xd0000000;

/** Memory-mapped frame buffer: kseg1, uncached (DECstation 3100). */
constexpr std::uint64_t frameBufferBase = kseg1Base + 0x01000000;

// --- ASIDs -----------------------------------------------------------------
constexpr std::uint32_t kernelAsid = 0;
constexpr std::uint32_t appAsid = 1;
constexpr std::uint32_t xServerAsid = 2;
constexpr std::uint32_t bsdServerAsid = 3;
constexpr std::uint32_t pagerAsid = 4;
/** First ASID for additional decomposed API servers (ablation). */
constexpr std::uint32_t extraServerAsid = 5;

} // namespace oma::layout

#endif // OMA_OS_LAYOUT_HH
