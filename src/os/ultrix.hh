/**
 * @file
 * Ultrix: the single-API, monolithic-kernel structure model.
 *
 * Services are invoked through one kernel trap; the service code and
 * most kernel data (including the file buffer cache) live in unmapped
 * kseg0, so Ultrix puts almost no pressure on the TLB. Data copies
 * between kernel buffers and user buffers (copyin/copyout) dominate
 * its D-cache and write-buffer behaviour, matching the paper's
 * Table 4 profile.
 */

#ifndef OMA_OS_ULTRIX_HH
#define OMA_OS_ULTRIX_HH

#include "os/osmodel.hh"

namespace oma
{

/** Structural constants of the Ultrix model. */
struct UltrixParams
{
    // Invocation plumbing (paper: round trip < 100 instructions).
    std::uint64_t trapInstr = 55;
    std::uint64_t returnInstr = 40;

    // Service body lengths (instructions, before payload copies).
    std::uint64_t svcFileInstr = 2800;
    std::uint64_t svcStatInstr = 700;
    std::uint64_t svcIpcInstr = 1200;

    // Kernel code/data footprints.
    std::uint64_t svcCodeFootprint = 24 * 1024;
    std::uint64_t kDataWsBytes = 96 * 1024; //!< kseg0 static tables.
    std::uint64_t kseg2WsBytes = 32 * 1024;  //!< mapped dynamic data.
    double kseg2Frac = 0.05;
    std::uint64_t bufferCacheBytes = 2 * 1024 * 1024;

    // Housekeeping paths.
    std::uint64_t timerInstr = 350;
    std::uint64_t cswitchInstr = 300;
    std::uint64_t pageoutInstr = 500;
    unsigned pageoutInvalidations = 1;

    // X display server (a user process under Ultrix too).
    std::uint64_t xCodeFootprint = 40 * 1024;
    std::uint64_t xWsBytes = 96 * 1024;
    std::uint64_t xInstrPerKByte = 100;
    std::uint64_t frameBufferBytes = 1024 * 1024;

    // Kernel data-reference intensity.
    double svcLoadPerInstr = 0.22;
    double svcStorePerInstr = 0.10;
};

/** The Ultrix structure model. */
class UltrixModel : public OsModel
{
  public:
    UltrixModel(std::uint64_t seed, const UltrixParams &params);

    const char *name() const override { return "Ultrix"; }
    OsKind kind() const override { return OsKind::Ultrix; }

    void invokeService(Component &caller, const ServiceRequest &req,
                       TraceSink &sink) override;
    void displayFrame(Component &caller, std::uint64_t bytes,
                      TraceSink &sink) override;
    void timerTick(TraceSink &sink) override;
    void vmActivity(Component &caller, TraceSink &sink) override;

    const UltrixParams &params() const { return _p; }

  private:
    std::uint64_t svcBodyInstr(ServiceKind kind);
    std::uint64_t bufAddr(std::uint64_t file_offset) const;

    UltrixParams _p;
    Rng _rng;
    Component _trap; //!< Kernel entry/exit/timer paths + copy loops.
    Component _svc;  //!< Kernel service bodies.
    Component _x;    //!< X display server process.
    CodePath _trapPath;
    CodePath _returnPath;
    CodePath _timerPath;
    CodePath _cswitchPath;
    CodePath _pageoutPath;
    std::uint64_t _fileOffset = 0;
    std::uint64_t _fbCursor = 0;
    std::uint64_t _frameCursor = 0;
};

} // namespace oma

#endif // OMA_OS_ULTRIX_HH
