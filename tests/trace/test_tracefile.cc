/**
 * @file
 * Unit tests for binary trace-file round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/rng.hh"
#include "trace/tracefile.hh"

namespace oma
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

MemRef
randomRef(Rng &rng)
{
    MemRef r;
    r.vaddr = rng.next() & 0xffffffff;
    r.paddr = rng.next() & 0x3fffffff;
    r.asid = std::uint32_t(rng.below(64));
    r.kind = static_cast<RefKind>(rng.below(3));
    r.mode = static_cast<Mode>(rng.below(2));
    r.mapped = rng.chance(0.8);
    return r;
}

TEST(TraceFile, RoundTripPreservesEverything)
{
    const std::string path = tempPath("roundtrip.trace");
    Rng rng(99);
    std::vector<MemRef> original;
    {
        TraceFileWriter writer(path);
        for (int i = 0; i < 5000; ++i) {
            const MemRef r = randomRef(rng);
            original.push_back(r);
            writer.put(r);
        }
        EXPECT_EQ(writer.count(), 5000u);
        writer.close();
    }

    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 5000u);
    MemRef r;
    for (const MemRef &want : original) {
        ASSERT_TRUE(reader.next(r));
        EXPECT_EQ(r.vaddr, want.vaddr);
        EXPECT_EQ(r.paddr, want.paddr);
        EXPECT_EQ(r.asid, want.asid);
        EXPECT_EQ(r.kind, want.kind);
        EXPECT_EQ(r.mode, want.mode);
        EXPECT_EQ(r.mapped, want.mapped);
    }
    EXPECT_FALSE(reader.next(r));
    std::remove(path.c_str());
}

TEST(TraceFile, DestructorCloses)
{
    const std::string path = tempPath("dtor.trace");
    {
        TraceFileWriter writer(path);
        MemRef r;
        writer.put(r);
        // No explicit close: the destructor must patch the header.
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTrace)
{
    const std::string path = tempPath("empty.trace");
    {
        TraceFileWriter writer(path);
        writer.close();
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 0u);
    MemRef r;
    EXPECT_FALSE(reader.next(r));
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceFileReader("/nonexistent/zzz.trace"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, BadMagicIsFatal)
{
    const std::string path = tempPath("garbage.trace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close....";
    }
    EXPECT_EXIT(TraceFileReader reader(path),
                testing::ExitedWithCode(1), "not a trace file");
    std::remove(path.c_str());
}

} // namespace
} // namespace oma
