# Empty compiler generated dependencies file for bench_ext_noasid.
# This may be replaced when dependencies are built.
