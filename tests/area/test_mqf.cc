/**
 * @file
 * Structural and monotonicity tests for the MQF area model.
 */

#include <gtest/gtest.h>

#include "area/mqf.hh"

namespace oma
{
namespace
{

TEST(AreaModel, SramArrayFormula)
{
    AreaParams p;
    AreaModel model(p);
    const double area = model.sramArrayArea(100, 50);
    const double expected = p.sramCellRbe * 100 * 50 +
        p.rowOverheadRbe * 100 + p.colOverheadRbe * 50;
    EXPECT_DOUBLE_EQ(area, expected);
}

TEST(AreaModel, CamArrayFormula)
{
    AreaParams p;
    AreaModel model(p);
    const double area = model.camArrayArea(64, 27);
    const double expected = p.camCellRbe * 64 * 27 +
        p.camEntryOverheadRbe * 64 + p.colOverheadRbe * 27;
    EXPECT_DOUBLE_EQ(area, expected);
}

TEST(AreaModel, CacheTagBits)
{
    AreaModel model;
    // 8-KB direct-mapped, 16-B lines: 9 index + 4 offset = 19-bit tag.
    EXPECT_EQ(model.cacheTagBits(CacheGeometry(8192, 16, 1)), 19u);
    // Same capacity, 8 ways: 6 index + 4 offset = 22-bit tag.
    EXPECT_EQ(model.cacheTagBits(CacheGeometry(8192, 16, 8)), 22u);
}

TEST(AreaModel, TlbTagBits)
{
    AreaModel model;
    const AreaParams &p = model.params();
    // Fully associative: full VPN + ASID.
    EXPECT_EQ(model.tlbTagBits(TlbGeometry::fullyAssoc(64)),
              p.virtPageBits + p.asidBits);
    // 64 sets absorb 6 VPN bits.
    EXPECT_EQ(model.tlbTagBits(TlbGeometry(512, 8)),
              p.virtPageBits - 6 + p.asidBits);
}

TEST(AreaModel, CacheAreaGrowsWithCapacity)
{
    AreaModel model;
    double prev = 0.0;
    for (std::uint64_t kb : {2, 4, 8, 16, 32, 64}) {
        const double area =
            model.cacheArea(CacheGeometry::fromWords(kb * 1024, 4, 1));
        EXPECT_GT(area, prev);
        prev = area;
    }
}

TEST(AreaModel, LongerLinesAreCheaperAtFixedCapacity)
{
    AreaModel model;
    double prev = 1e18;
    for (std::uint64_t words : {1, 2, 4, 8}) {
        const double area = model.cacheArea(
            CacheGeometry::fromWords(16 * 1024, words, 1));
        EXPECT_LT(area, prev);
        prev = area;
    }
}

TEST(AreaModel, TlbAreaGrowsWithEntries)
{
    AreaModel model;
    double prev = 0.0;
    for (std::uint64_t entries : {64, 128, 256, 512}) {
        const double area = model.tlbArea(TlbGeometry(entries, 4));
        EXPECT_GT(area, prev);
        prev = area;
    }
}

TEST(AreaModel, DirectMappedTlbAlwaysSmallerThanFullyAssociative)
{
    // Figure 5: "Direct-mapped TLBs are always smaller than
    // fully-associative TLBs."
    AreaModel model;
    for (std::uint64_t entries : {16, 32, 64, 128, 256, 512}) {
        EXPECT_LT(model.tlbArea(TlbGeometry(entries, 1)),
                  model.tlbArea(TlbGeometry::fullyAssoc(entries)))
            << entries << " entries";
    }
}

TEST(AreaModel, AssociativityCostsLittleForLargeTlbs)
{
    // Figure 4: at 512 entries there is little difference between
    // direct-mapped and 8-way.
    AreaModel model;
    const double dm = model.tlbArea(TlbGeometry(512, 1));
    const double w8 = model.tlbArea(TlbGeometry(512, 8));
    EXPECT_LT(w8 / dm, 1.25);
}

TEST(AreaModel, AssociativityCostsALotForSmallTlbs)
{
    // Figure 4: a 16-entry 8-way TLB is ~3x a 16-entry direct-mapped.
    AreaModel model;
    const double dm = model.tlbArea(TlbGeometry(16, 1));
    const double w8 = model.tlbArea(TlbGeometry(16, 8));
    EXPECT_GT(w8 / dm, 2.0);
}

TEST(AreaModel, WriteBufferAreaGrowsWithDepthAndStaysSmall)
{
    AreaModel model;
    double prev = 0.0;
    for (std::uint64_t entries : {1, 2, 4, 8, 16}) {
        const double a = model.writeBufferArea(entries);
        EXPECT_GT(a, prev);
        prev = a;
    }
    // Even a deep buffer is noise next to the 250k-rbe budget.
    EXPECT_LT(model.writeBufferArea(16), 5000.0);
}

class CacheAreaSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(CacheAreaSweep, AssociativityHasSmallImpactOnCacheArea)
{
    // Section 5.1: "Associativity (not pictured) has a much smaller
    // impact on die area" — the spread across 1..8 ways at fixed
    // capacity and line size must stay within ~20%.
    const auto [kb, line] = GetParam();
    AreaModel model;
    double lo = 1e18, hi = 0.0;
    for (std::uint64_t ways : {1, 2, 4, 8}) {
        const CacheGeometry g =
            CacheGeometry::fromWords(kb * 1024, line, ways);
        if (g.capacityBytes < g.lineBytes * g.assoc)
            continue;
        const double area = model.cacheArea(g);
        lo = std::min(lo, area);
        hi = std::max(hi, area);
    }
    EXPECT_LT(hi / lo, 1.25);
}

// Restricted to the mid/large shapes Figure 6 plots; for tiny caches
// with very wide lines the per-way overhead is proportionally larger.
INSTANTIATE_TEST_SUITE_P(
    Table5Grid, CacheAreaSweep,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(1u, 4u, 8u)));

} // namespace
} // namespace oma
