/**
 * @file
 * Implementation of the cache-hierarchy models.
 */

#include "cache/hierarchy.hh"

#include "support/logging.hh"

namespace oma
{

namespace
{

std::uint64_t
penalty(const CacheGeometry &geom, std::uint64_t first,
        std::uint64_t per_word)
{
    return first + per_word * (geom.lineWords() - 1);
}

} // namespace

void
HierarchyParams::validate() const
{
    fatalIf(unified && hasL2,
            "HierarchyParams: a unified L1 cannot be backed by an "
            "L2 (UnifiedCache simulates one array; the area model "
            "and the simulators would disagree about the L2) — "
            "clear hasL2 or model a split hierarchy");
}

std::string
HierarchyParams::describe() const
{
    if (unified)
        return "unified " + l1i.geom.describe();
    std::string out =
        l1i.geom.describe() + " I + " + l1d.geom.describe() + " D";
    if (hasL2)
        out += " + " + l2.geom.describe() + " L2";
    return out;
}

UnifiedCache::UnifiedCache(const CacheParams &params,
                           const HierarchyPenalties &penalties)
    : _cache(params), _penalties(penalties),
      _penalty(penalty(params.geom, penalties.memFirstWord,
                       penalties.memPerWord))
{
}

void
UnifiedCache::access(std::uint64_t paddr, RefKind kind)
{
    if (kind == RefKind::IFetch) {
        ++_stats.instructions;
    } else {
        ++_stats.dataRefs;
        // A unified array has one port: the data reference collides
        // with the same-cycle instruction fetch.
        ++_stats.portConflicts;
        _stats.stallCycles += _penalties.portConflict;
    }
    if (!_cache.access(paddr, kind)) {
        ++_stats.l1Misses;
        ++_stats.l2Misses; // no L2: straight to memory
        const bool charge = kind != RefKind::Store ||
            _cache.params().geom.lineWords() > 1;
        if (charge)
            _stats.stallCycles += _penalty;
    }
}

TwoLevelCache::TwoLevelCache(const CacheParams &l1i,
                             const CacheParams &l1d,
                             const CacheParams &l2, bool has_l2,
                             const HierarchyPenalties &penalties)
    : _l1i(l1i), _l1d(l1d), _l2(l2), _hasL2(has_l2),
      _penalties(penalties),
      _l1iPenaltyL2(penalty(l1i.geom, penalties.l2FirstWord,
                            penalties.l2PerWord)),
      _l1dPenaltyL2(penalty(l1d.geom, penalties.l2FirstWord,
                            penalties.l2PerWord)),
      _l1iPenaltyMem(penalty(l1i.geom, penalties.memFirstWord,
                             penalties.memPerWord)),
      _l1dPenaltyMem(penalty(l1d.geom, penalties.memFirstWord,
                             penalties.memPerWord)),
      _l2PenaltyMem(penalty(l2.geom, penalties.memFirstWord,
                            penalties.memPerWord))
{
}

TwoLevelCache::TwoLevelCache(const HierarchyParams &params)
    : TwoLevelCache(params.l1i, params.l1d, params.l2, params.hasL2,
                    params.penalties)
{
    fatalIf(params.unified,
            "TwoLevelCache models split hierarchies; construct a "
            "UnifiedCache for a unified organization");
}

void
TwoLevelCache::access(std::uint64_t paddr, RefKind kind)
{
    const bool is_fetch = kind == RefKind::IFetch;
    if (is_fetch)
        ++_stats.instructions;
    else
        ++_stats.dataRefs;

    Cache &l1 = is_fetch ? _l1i : _l1d;
    if (l1.access(paddr, kind))
        return;

    ++_stats.l1Misses;
    const bool charge = kind != RefKind::Store ||
        l1.params().geom.lineWords() > 1;

    if (!_hasL2) {
        ++_stats.l2Misses;
        if (charge) {
            _stats.stallCycles +=
                is_fetch ? _l1iPenaltyMem : _l1dPenaltyMem;
        }
        return;
    }

    // L1 refill through the L2.
    if (_l2.access(paddr, kind)) {
        ++_stats.l2Hits;
        if (charge) {
            _stats.stallCycles +=
                is_fetch ? _l1iPenaltyL2 : _l1dPenaltyL2;
        }
    } else {
        ++_stats.l2Misses;
        if (charge) {
            // Fill the L2 line from memory, then the L1 line from
            // the L2.
            _stats.stallCycles += _l2PenaltyMem +
                (is_fetch ? _l1iPenaltyL2 : _l1dPenaltyL2);
        }
    }
}

} // namespace oma
