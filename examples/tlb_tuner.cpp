/**
 * @file
 * Example: TLB tuning for one workload — the Section 5.2 analysis as
 * a tool. Sweeps TLB sizes and associativities with Tapeworm, prints
 * service time against MQF area, and recommends the cheapest
 * configuration within 5% of the best service time.
 *
 * Usage: tlb_tuner [benchmark] [ultrix|mach] [references]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "area/mqf.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

using namespace oma;

int
main(int argc, char **argv)
{
    BenchmarkId id = BenchmarkId::VideoPlay;
    if (argc > 1) {
        bool found = false;
        for (BenchmarkId b : allBenchmarks()) {
            if (std::string(argv[1]) == benchmarkName(b)) {
                id = b;
                found = true;
            }
        }
        if (!found)
            fatal(std::string("unknown benchmark: ") + argv[1]);
    }
    OsKind os = OsKind::Mach;
    if (argc > 2 && std::string(argv[2]) == "ultrix")
        os = OsKind::Ultrix;
    std::uint64_t refs = argc > 3
        ? std::strtoull(argv[3], nullptr, 10)
        : 1500000;

    std::cout << "TLB tuning for " << benchmarkName(id) << " under "
              << osKindName(os) << "\n\n";

    // Candidate TLBs: the Table 5 grid plus small FA designs.
    std::vector<TlbGeometry> geoms;
    for (std::uint64_t entries : {32, 64, 128, 256, 512}) {
        for (std::uint64_t ways : {1, 2, 4, 8})
            geoms.emplace_back(entries, ways);
        if (entries <= 256)
            geoms.push_back(TlbGeometry::fullyAssoc(entries));
    }

    std::vector<TlbParams> params;
    for (const auto &g : geoms) {
        TlbParams p;
        p.geom = g;
        params.push_back(p);
    }
    Tapeworm tapeworm(params, TlbPenalties());

    System system(benchmarkParams(id), os, 42);
    system.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            tapeworm.invalidatePage(vpn, asid, global);
        });
    MemRef ref;
    std::uint64_t instructions = 0;
    for (std::uint64_t i = 0; i < refs; ++i) {
        system.next(ref);
        instructions += ref.isFetch();
        tapeworm.observe(ref);
    }

    AreaModel area;
    TextTable table({"TLB", "Refill CPI", "Area (rbe)",
                     "user misses", "kernel misses"});
    double best_cpi = 1e9;
    for (std::size_t i = 0; i < geoms.size(); ++i)
        best_cpi = std::min(best_cpi,
                            double(tapeworm.at(i).stats()
                                       .refillCycles()) /
                                double(instructions));

    std::size_t pick = 0;
    double pick_area = 1e18;
    for (std::size_t i = 0; i < geoms.size(); ++i) {
        const MmuStats &s = tapeworm.at(i).stats();
        const double cpi =
            double(s.refillCycles()) / double(instructions);
        const double a = area.tlbArea(geoms[i]);
        table.addRow({geoms[i].describe(), fmtFixed(cpi, 4),
                      fmtGrouped(std::uint64_t(a)),
                      std::to_string(
                          s.counts[unsigned(MissClass::UserMiss)]),
                      std::to_string(
                          s.counts[unsigned(MissClass::KernelMiss)])});
        if (cpi <= best_cpi * 1.05 + 1e-9 && a < pick_area) {
            pick = i;
            pick_area = a;
        }
    }
    table.print(std::cout);

    std::cout << "\nRecommendation: " << geoms[pick].describe()
              << " — cheapest configuration within 5% of the best "
                 "refill CPI ("
              << fmtGrouped(std::uint64_t(pick_area)) << " rbe).\n";
    return 0;
}
