# Empty compiler generated dependencies file for oma_cache.
# This may be replaced when dependencies are built.
