file(REMOVE_RECURSE
  "CMakeFiles/oma_cache.dir/cache.cc.o"
  "CMakeFiles/oma_cache.dir/cache.cc.o.d"
  "CMakeFiles/oma_cache.dir/cheetah.cc.o"
  "CMakeFiles/oma_cache.dir/cheetah.cc.o.d"
  "CMakeFiles/oma_cache.dir/hierarchy.cc.o"
  "CMakeFiles/oma_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/oma_cache.dir/victim.cc.o"
  "CMakeFiles/oma_cache.dir/victim.cc.o.d"
  "liboma_cache.a"
  "liboma_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
