/**
 * @file
 * Deprecation marker for legacy entry points.
 *
 * PR 10 funnels every allocation query through the oma::api facade
 * (docs/MODEL.md §14); the superseded entry points stay as thin,
 * behaviour-identical shims so out-of-tree callers keep compiling,
 * but new in-tree uses are flagged at compile time. Tests that
 * deliberately pin the legacy paths bitwise against the facade
 * define OMA_ALLOW_DEPRECATED for their target, which silences the
 * attribute without forking the headers (the attribute only affects
 * diagnostics, so mixed translation units are harmless).
 */

#ifndef OMA_SUPPORT_DEPRECATED_HH
#define OMA_SUPPORT_DEPRECATED_HH

#ifdef OMA_ALLOW_DEPRECATED
#define OMA_DEPRECATED(msg)
#else
#define OMA_DEPRECATED(msg) [[deprecated(msg)]]
#endif

#endif // OMA_SUPPORT_DEPRECATED_HH
