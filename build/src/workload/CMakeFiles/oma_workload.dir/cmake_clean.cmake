file(REMOVE_RECURSE
  "CMakeFiles/oma_workload.dir/benchmarks.cc.o"
  "CMakeFiles/oma_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/oma_workload.dir/system.cc.o"
  "CMakeFiles/oma_workload.dir/system.cc.o.d"
  "liboma_workload.a"
  "liboma_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
