# Empty dependencies file for oma_support.
# This may be replaced when dependencies are built.
