/**
 * @file
 * Exporters: component statistics -> named registry metrics.
 *
 * Each simulation component keeps its own counters (CacheStats,
 * MmuStats, StallCounters...); these helpers copy them into a
 * MetricRegistry under the naming scheme of docs/OBSERVABILITY.md.
 * Exporting is a read-only snapshot — components never observe the
 * registry — which is what keeps metrics-on and metrics-off runs
 * bitwise identical.
 *
 * Header-only by design: the obs library proper depends only on
 * support, while these inline adapters may name any component type;
 * the dependency belongs to whoever includes them (engines, benches,
 * tools).
 */

#ifndef OMA_OBS_EXPORT_HH
#define OMA_OBS_EXPORT_HH

#include <string>
#include <type_traits>
#include <variant>

#include "core/experiment.hh"
#include "core/search.hh"
#include "core/sweep.hh"
#include "machine/machine.hh"
#include "obs/metrics.hh"
#include "store/store.hh"
#include "support/threadpool.hh"
#include "tlb/tapeworm.hh"
#include "trace/recorded.hh"

namespace oma::obs
{

/** Cache event counters under `<prefix>/...`. */
inline void
exportCacheStats(MetricRegistry &m, const std::string &prefix,
                 const CacheStats &s)
{
    m.add(prefix + "/accesses", s.totalAccesses());
    m.add(prefix + "/misses", s.totalMisses());
    m.add(prefix + "/line_fills", s.lineFills);
    m.add(prefix + "/writebacks", s.writebacks);
    m.add(prefix + "/write_through_words", s.writeThroughWords);
    m.add(prefix + "/compulsory_misses", s.compulsoryMisses);
}

/** MMU/TLB event and cycle counters under `<prefix>/...`. */
inline void
exportMmuStats(MetricRegistry &m, const std::string &prefix,
               const MmuStats &s)
{
    m.add(prefix + "/translations", s.translations);
    m.add(prefix + "/misses", s.totalMisses());
    m.add(prefix + "/service_cycles", s.totalServiceCycles());
    m.add(prefix + "/refill_cycles", s.refillCycles());
    m.add(prefix + "/asid_flushes", s.asidFlushes);
}

/** Summed counters of every configuration in a Tapeworm bank. */
inline void
exportTapeworm(MetricRegistry &m, const std::string &prefix,
               const Tapeworm &tapeworm)
{
    for (std::size_t i = 0; i < tapeworm.size(); ++i)
        exportMmuStats(m, prefix, tapeworm.at(i).stats());
    m.add(prefix + "/configs", tapeworm.size());
}

/** Monster-style stall attribution counters under `<prefix>/...`. */
inline void
exportStallCounters(MetricRegistry &m, const std::string &prefix,
                    const StallCounters &s)
{
    m.add(prefix + "/instructions", s.instructions);
    m.add(prefix + "/icache_stall", s.icacheStall);
    m.add(prefix + "/dcache_stall", s.dcacheStall);
    m.add(prefix + "/wb_stall", s.wbStall);
    m.add(prefix + "/tlb_stall", s.tlbStall);
}

/** Write-buffer counters under `<prefix>/...` from raw values (the
 * artifact-store warm path replays counters without a WriteBuffer). */
inline void
exportWriteBufferCounters(MetricRegistry &m, const std::string &prefix,
                          std::uint64_t stores,
                          std::uint64_t stall_cycles)
{
    m.add(prefix + "/stores", stores);
    m.add(prefix + "/stall_cycles", stall_cycles);
}

/** Write-buffer counters under `<prefix>/...`. */
inline void
exportWriteBuffer(MetricRegistry &m, const std::string &prefix,
                  const WriteBuffer &wb)
{
    exportWriteBufferCounters(m, prefix, wb.stores(),
                              wb.stallCycles());
}

/** Victim-cache counters under `<prefix>/...`. */
inline void
exportVictimStats(MetricRegistry &m, const std::string &prefix,
                  const VictimStats &s)
{
    m.add(prefix + "/accesses", s.accesses);
    m.add(prefix + "/l1_hits", s.l1Hits);
    m.add(prefix + "/victim_hits", s.victimHits);
    m.add(prefix + "/misses", s.misses);
}

/** Standalone write-buffer component counters under `<prefix>/...`. */
inline void
exportWriteBufferSimStats(MetricRegistry &m,
                          const std::string &prefix,
                          const WriteBufferStats &s)
{
    m.add(prefix + "/instructions", s.instructions);
    m.add(prefix + "/stores", s.stores);
    m.add(prefix + "/stall_cycles", s.stallCycles);
}

/** Hierarchy counters under `<prefix>/...`. */
inline void
exportHierarchyStats(MetricRegistry &m, const std::string &prefix,
                     const HierarchyStats &s)
{
    m.add(prefix + "/instructions", s.instructions);
    m.add(prefix + "/data_refs", s.dataRefs);
    m.add(prefix + "/l1_misses", s.l1Misses);
    m.add(prefix + "/l2_hits", s.l2Hits);
    m.add(prefix + "/l2_misses", s.l2Misses);
    m.add(prefix + "/port_conflicts", s.portConflicts);
    m.add(prefix + "/stall_cycles", s.stallCycles);
}

/** Any replayable component's counters under `<prefix>/...`
 * (dispatches on the ComponentCounters alternative). */
inline void
exportComponentCounters(MetricRegistry &m, const std::string &prefix,
                        const ComponentCounters &counters)
{
    std::visit(
        [&m, &prefix](const auto &s) {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, CacheStats>)
                exportCacheStats(m, prefix, s);
            else if constexpr (std::is_same_v<T, MmuStats>)
                exportMmuStats(m, prefix, s);
            else if constexpr (std::is_same_v<T, VictimStats>)
                exportVictimStats(m, prefix, s);
            else if constexpr (std::is_same_v<T, WriteBufferStats>)
                exportWriteBufferSimStats(m, prefix, s);
            else
                exportHierarchyStats(m, prefix, s);
        },
        counters);
}

/** Recording shape: reference/event counts and packed size. */
inline void
exportRecordedTrace(MetricRegistry &m, const std::string &prefix,
                    const RecordedTrace &trace)
{
    m.add(prefix + "/references", trace.size());
    m.add(prefix + "/events", trace.events().size());
    m.add(prefix + "/bytes", trace.byteSize());
    if (!trace.empty())
        m.set(prefix + "/bytes_per_ref",
              double(trace.byteSize()) / double(trace.size()));
}

/**
 * Encoded (v3 delta/varint) trace footprint, reported next to the
 * packed in-memory numbers exportRecordedTrace captures. The caller
 * supplies the byte count (store::encodeTrace(trace).size()) so this
 * layer stays independent of the codec.
 */
inline void
exportEncodedTrace(MetricRegistry &m, const std::string &prefix,
                   std::uint64_t encoded_bytes, std::uint64_t refs)
{
    m.add(prefix + "/encoded_bytes", encoded_bytes);
    if (refs != 0)
        m.set(prefix + "/encoded_bytes_per_ref",
              double(encoded_bytes) / double(refs));
}

/** Baseline (fixed-machine) run: per-component miss data. */
inline void
exportBaseline(MetricRegistry &m, const std::string &prefix,
               const BaselineResult &r)
{
    m.add(prefix + "/instructions", r.instructions);
    m.add(prefix + "/references", r.references);
    exportMmuStats(m, prefix + "/tlb", r.mmu);
    m.set(prefix + "/icache_miss_ratio", r.icacheMissRatio);
    m.set(prefix + "/dcache_miss_ratio", r.dcacheMissRatio);
    m.set(prefix + "/cpi", r.cpi.cpi);
}

/**
 * Sweep totals: per-component event sums over every configuration
 * in the sweep, plus per-configuration miss-count histograms (the
 * distribution across the design grid — deterministic, since the
 * samples are counters, not timings). The per-configuration event
 * counters themselves are exported by the engine into its
 * Observation during the run; this helper adds only what the result
 * object carries on top, so merging both never double-counts.
 */
inline void
exportSweepResult(MetricRegistry &m, const SweepResult &r)
{
    m.add("sweep/references", r.references);
    m.add("sweep/instructions", r.instructions);
    m.add("sweep/icache_configs", r.icacheCount());
    m.add("sweep/dcache_configs", r.dcacheCount());
    m.add("sweep/tlb_configs", r.tlbCount());
    for (std::size_t i = 0; i < r.icacheCount(); ++i)
        m.observe("icache/misses_per_config",
                  r.icache(i).stats.totalMisses());
    for (std::size_t i = 0; i < r.dcacheCount(); ++i)
        m.observe("dcache/misses_per_config",
                  r.dcache(i).stats.totalMisses());
    for (std::size_t i = 0; i < r.tlbCount(); ++i)
        m.observe("tlb/refill_cycles_per_config",
                  r.tlb(i).stats.refillCycles());
    // Extension axes: only present when the sweep carried them, so
    // classic-space run reports are byte-compatible.
    if (r.victimCount() != 0) {
        m.add("sweep/victim_configs", r.victimCount());
        for (std::size_t i = 0; i < r.victimCount(); ++i)
            m.observe("victim/misses_per_config",
                      r.victim(i).stats.misses);
    }
    if (r.writeBufferCount() != 0) {
        m.add("sweep/wbuffer_configs", r.writeBufferCount());
        for (std::size_t i = 0; i < r.writeBufferCount(); ++i)
            m.observe("wbuffer/stall_cycles_per_config",
                      r.writeBuffer(i).stats.stallCycles);
    }
    if (r.hierarchyCount() != 0) {
        m.add("sweep/l2_configs", r.hierarchyCount());
        for (std::size_t i = 0; i < r.hierarchyCount(); ++i)
            m.observe("l2/stall_cycles_per_config",
                      r.hierarchy(i).stats.stallCycles);
    }
}

/** Ranked-allocation summary (count, best CPI/area). */
inline void
exportRanking(MetricRegistry &m,
              const std::vector<Allocation> &ranked)
{
    m.add("search/ranked", ranked.size());
    if (!ranked.empty()) {
        m.set("search/best_cpi", ranked.front().cpi);
        m.set("search/best_area_rbe", ranked.front().areaRbe);
    }
}

/** Artifact-store traffic counters under `<prefix>/...`. */
inline void
exportArtifactStore(MetricRegistry &m, const std::string &prefix,
                    const ArtifactStore &store)
{
    const StoreStatsSnapshot s = store.stats();
    m.add(prefix + "/hits", s.hits);
    m.add(prefix + "/misses", s.misses);
    m.add(prefix + "/writes", s.writes);
    m.add(prefix + "/quarantined", s.quarantined);
}

/** Pool shape and work volume under `<prefix>/...`. */
inline void
exportThreadPool(MetricRegistry &m, const std::string &prefix,
                 const ThreadPool &pool)
{
    m.add(prefix + "/lanes", pool.threadCount());
    m.add(prefix + "/jobs", pool.stats().jobs);
    m.add(prefix + "/indices", pool.stats().indices);
}

} // namespace oma::obs

#endif // OMA_OBS_EXPORT_HH
