/**
 * @file
 * Unit tests for the metric registry, histogram, Span and Progress.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace oma::obs
{
namespace
{

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count, 0u);
    EXPECT_EQ(h.sum, 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (unsigned b = 0; b < Histogram::numBuckets; ++b)
        EXPECT_EQ(h.buckets[b], 0u);
}

TEST(Histogram, BucketOfIsBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(255), 8u);
    EXPECT_EQ(Histogram::bucketOf(256), 9u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t(0)), 64u);
}

TEST(Histogram, BucketBoundsBracketTheirSamples)
{
    // Every sample must fall strictly below its bucket's bound and at
    // or above the previous bucket's bound.
    const std::uint64_t samples[] = {0, 1, 2, 3, 7, 8, 1000,
                                     std::uint64_t(1) << 40};
    for (std::uint64_t s : samples) {
        const unsigned b = Histogram::bucketOf(s);
        if (b < 64) {
            EXPECT_LT(s, Histogram::bucketBound(b)) << s;
        }
        if (b > 0) {
            EXPECT_GE(s, Histogram::bucketBound(b - 1)) << s;
        }
    }
}

TEST(Histogram, AddTracksCountSumMinMax)
{
    Histogram h;
    h.add(5);
    h.add(0);
    h.add(100);
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.sum, 105u);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 35.0);
    EXPECT_EQ(h.buckets[0], 1u); // the zero
    EXPECT_EQ(h.buckets[3], 1u); // 5
    EXPECT_EQ(h.buckets[7], 1u); // 100
}

TEST(Histogram, MergeMatchesSequentialAdds)
{
    Histogram a, b, all;
    for (std::uint64_t s : {1u, 7u, 19u}) {
        a.add(s);
        all.add(s);
    }
    for (std::uint64_t s : {0u, 4u, 1000000u}) {
        b.add(s);
        all.add(s);
    }
    a.merge(b);
    EXPECT_EQ(a.count, all.count);
    EXPECT_EQ(a.sum, all.sum);
    EXPECT_EQ(a.min, all.min);
    EXPECT_EQ(a.max, all.max);
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        EXPECT_EQ(a.buckets[i], all.buckets[i]) << "bucket " << i;
}

TEST(Histogram, MergingAnEmptyIsANoOp)
{
    Histogram a, empty;
    a.add(3);
    a.merge(empty);
    EXPECT_EQ(a.count, 1u);
    EXPECT_EQ(a.min, 3u);
    EXPECT_EQ(a.max, 3u);
    // And merging into an empty adopts the other side's extrema.
    Histogram c;
    c.merge(a);
    EXPECT_EQ(c.min, 3u);
    EXPECT_EQ(c.max, 3u);
}

TEST(MetricRegistry, CountersGaugesHistograms)
{
    MetricRegistry m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);

    m.add("icache/misses");
    m.add("icache/misses", 4);
    EXPECT_EQ(m.counter("icache/misses"), 5u);

    m.set("rate/refs_per_sec", 2.5);
    m.set("rate/refs_per_sec", 3.5); // last write wins
    m.accumulate("time_ms/total", 1.0);
    m.accumulate("time_ms/total", 2.0);
    EXPECT_DOUBLE_EQ(m.gauge("rate/refs_per_sec"), 3.5);
    EXPECT_DOUBLE_EQ(m.gauge("time_ms/total"), 3.0);

    m.observe("tlb/refills", 7);
    m.observe("tlb/refills", 9);
    EXPECT_EQ(m.histograms().at("tlb/refills").count, 2u);
    EXPECT_FALSE(m.empty());
}

TEST(MetricRegistry, IterationIsInNameOrder)
{
    MetricRegistry m;
    m.add("zeta");
    m.add("alpha");
    m.add("mid/dle");
    std::vector<std::string> names;
    for (const auto &kv : m.counters())
        names.push_back(kv.first);
    EXPECT_EQ(names,
              (std::vector<std::string>{"alpha", "mid/dle", "zeta"}));
}

TEST(MetricRegistry, MergeSumsCountersAndHistograms)
{
    MetricRegistry a, b;
    a.add("hits", 10);
    b.add("hits", 5);
    b.add("only_b", 2);
    a.observe("h", 1);
    b.observe("h", 3);
    b.set("g", 7.0);
    a.merge(b);
    EXPECT_EQ(a.counter("hits"), 15u);
    EXPECT_EQ(a.counter("only_b"), 2u);
    EXPECT_EQ(a.histograms().at("h").count, 2u);
    EXPECT_EQ(a.histograms().at("h").sum, 4u);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 7.0);
}

TEST(MetricRegistry, ShardMergeIsOrderIndependentForCounters)
{
    // The parallel engines merge shards in task order; for counters
    // and histograms any order must give the same totals, so the
    // schedule cannot leak into the report.
    std::vector<MetricRegistry> shards(4);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        shards[i].add("work/items", i + 1);
        shards[i].observe("work/sizes", 10 * (i + 1));
    }
    MetricRegistry fwd, rev;
    for (std::size_t i = 0; i < shards.size(); ++i)
        fwd.merge(shards[i]);
    for (std::size_t i = shards.size(); i-- > 0;)
        rev.merge(shards[i]);
    EXPECT_EQ(fwd.counter("work/items"), rev.counter("work/items"));
    EXPECT_EQ(fwd.counter("work/items"), 1u + 2u + 3u + 4u);
    EXPECT_EQ(fwd.histograms().at("work/sizes").sum,
              rev.histograms().at("work/sizes").sum);
}

TEST(Span, RecordsTimeAndCallCount)
{
    MetricRegistry m;
    {
        Span span(m, "phase");
        // Trivial body; elapsed may round to 0.0 ms but must not be
        // negative, and the call counter must tick exactly once.
    }
    EXPECT_EQ(m.counter("calls/phase"), 1u);
    EXPECT_EQ(m.gauges().count("time_ms/phase"), 1u);
    EXPECT_GE(m.gauge("time_ms/phase"), 0.0);
}

TEST(Span, StopIsIdempotent)
{
    MetricRegistry m;
    Span span(m, "phase");
    span.stop();
    span.stop(); // second stop must not double-record
    EXPECT_EQ(m.counter("calls/phase"), 1u);
}

TEST(Span, RepeatedSpansAccumulate)
{
    MetricRegistry m;
    for (int i = 0; i < 3; ++i)
        Span(m, "loop").stop();
    EXPECT_EQ(m.counter("calls/loop"), 3u);
}

TEST(Progress, DefaultConstructedSwallowsTicks)
{
    Progress p;
    EXPECT_FALSE(p.enabled());
    p.tick();
    p.tick(100);
    EXPECT_EQ(p.done(), 0u); // disabled: not even counted
}

TEST(Progress, FiresOnStrideBoundariesAndCompletion)
{
    std::vector<std::uint64_t> fired;
    Progress p(100,
               [&fired](std::uint64_t done, std::uint64_t total) {
                   EXPECT_EQ(total, 100u);
                   fired.push_back(done);
               },
               10);
    for (int i = 0; i < 100; ++i)
        p.tick();
    EXPECT_EQ(p.done(), 100u);
    ASSERT_FALSE(fired.empty());
    EXPECT_EQ(fired.front(), 10u);
    EXPECT_EQ(fired.back(), 100u);
    EXPECT_EQ(fired.size(), 10u);
}

TEST(Progress, SmallTotalsStillComplete)
{
    // total < updates: stride clamps to 1, every tick fires and the
    // final tick reports completion.
    std::uint64_t last = 0;
    Progress p(3,
               [&last](std::uint64_t done, std::uint64_t) {
                   last = done;
               },
               10);
    p.tick();
    p.tick();
    p.tick();
    EXPECT_EQ(last, 3u);
}

TEST(Progress, InformSinkDoesNotThrow)
{
    Progress p(2, Progress::informSink("unit-test sweep"), 1);
    p.tick();
    p.tick();
    EXPECT_EQ(p.done(), 2u);
}

} // namespace
} // namespace oma::obs
