/**
 * @file
 * Delta/varint chunk codec — the byte layer of trace format v3.
 *
 * The packed columnar RecordedTrace (10 B/ref) is already compact in
 * memory, but stored traces are write-once/replay-many, so they are
 * worth squeezing further. This codec exploits the structure of the
 * stream itself:
 *
 * * *Per-kind delta prediction.* Instruction fetches are overwhelmingly
 *   sequential and loads/stores cluster around a few working-set
 *   regions — but the three streams interleave, so a naive
 *   previous-reference delta jumps between code and data every other
 *   reference. Each address column therefore keeps one predictor per
 *   RefKind (the last address of the *same kind*), and encodes the
 *   signed difference zigzag/varint, PDATS-style. Sequential fetches
 *   cost one byte each.
 *
 * * *Nibble-packed flags.* The packed flag byte uses four bits (kind,
 *   mode, mapped), so two references share one stored byte.
 *
 * * *Run-length ASIDs.* Address-space identifiers change at context
 *   switches, thousands of references apart; runs collapse to a
 *   (varint length, byte value) pair.
 *
 * Chunks are self-contained: every predictor resets at a chunk
 * boundary, so a decoder can process chunks independently and
 * corruption never propagates past the chunk that suffered it. The
 * decoder is bounds-checked throughout and returns false on any
 * framing violation; callers pair payloads with the fnv1a32()
 * checksum so bit flips that survive framing are still detected.
 *
 * Consumed by the v3 trace-file format (trace/tracefile) and the
 * artifact-store trace codec (store/codec); the differential and
 * fuzz suites live in tests/trace/test_codec_v3.cc.
 */

#ifndef OMA_TRACE_CODEC_HH
#define OMA_TRACE_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oma::trace
{

// ----- primitives -----

/** Append @p v as a LEB128 varint (1-10 bytes). */
void putVarint(std::string &out, std::uint64_t v);

/**
 * Decode a LEB128 varint at @p pos, advancing it past the encoding.
 * @retval false on truncation or an over-long (> 10 byte) encoding.
 */
bool getVarint(std::string_view in, std::size_t &pos,
               std::uint64_t &v);

/** Map a signed delta onto the unsigned varint domain. */
constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63);
}

/** Inverse of zigzag(). */
constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return std::int64_t(v >> 1) ^ -std::int64_t(v & 1);
}

/**
 * 32-bit FNV-1a over @p bytes (the chunk checksum). Passing a prior
 * digest as @p seed continues the hash, so disjoint byte ranges can
 * be summed without concatenating them.
 */
std::uint32_t fnv1a32(std::string_view bytes,
                      std::uint32_t seed = 0x811c9dc5u);

// ----- chunk codec -----

/** Decoded column storage for one chunk. */
struct ChunkColumns
{
    std::vector<std::uint32_t> vaddr;
    std::vector<std::uint32_t> paddr;
    std::vector<std::uint8_t> asid;
    std::vector<std::uint8_t> flags;
};

/**
 * Delta/varint-encode one chunk of packed columns. The columns must
 * all hold @p n elements; flag bytes must fit four bits (the packed
 * trace flag encoding guarantees this).
 */
[[nodiscard]] std::string encodeColumns(const std::uint32_t *vaddr,
                                        const std::uint32_t *paddr,
                                        const std::uint8_t *asid,
                                        const std::uint8_t *flags,
                                        std::size_t n);

/**
 * Decode a chunk of exactly @p n references into @p out.
 * @retval false on any framing violation: truncated or over-long
 * varints, run lengths overshooting the chunk, deltas leaving the
 * 32-bit address domain, a flag nibble encoding an invalid reference
 * kind, a non-zero pad nibble, or trailing bytes.
 */
[[nodiscard]] bool decodeColumns(std::string_view payload,
                                 std::size_t n, ChunkColumns &out);

} // namespace oma::trace

#endif // OMA_TRACE_CODEC_HH
