/**
 * @file
 * Ablations over the Mach structure model (Section 4's causal
 * claims):
 *
 *  1. RPC path length: shrink the emulation-library + kernel IPC
 *     paths toward Ultrix-like invocation and watch the I-cache
 *     penalty shrink (Section 4.1's mechanism).
 *  2. VM sharing instead of socket copies for display traffic
 *     (Bershad's suggestion): shifts misses from the D-cache/write
 *     buffer toward the TLB (Section 4.3: "avoiding RPCs through
 *     more aggressive virtual memory sharing, however, is likely to
 *     shift misses from the I-cache to the TLB").
 *  3. Kernel-mapped data footprint: grow the kseg2 working set and
 *     watch kernel TLB misses rise (Section 4.2's mechanism).
 */

#include <iostream>

#include "bench/common.hh"
#include "machine/machine.hh"
#include "os/mach.hh"
#include "support/table.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

/** Run mpeg_play under a Mach model with custom parameters. */
CpiBreakdown
runVariant(const MachParams &params, std::uint64_t refs)
{
    const WorkloadParams &wl = benchmarkParams(BenchmarkId::Mpeg);
    // System always builds the default Mach model, so run the
    // generation loop here with a locally constructed MachModel.
    MachModel os(42, params);
    AddressSpace app_space(layout::appAsid, 42);
    app_space.addLinearSegment(layout::userTextBase, wl.codeFootprint);
    app_space.addLinearSegment(layout::userStackBase, wl.stackBytes);

    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = wl.codeFootprint;
    code.skew = wl.codeSkew;
    code.meanRun = wl.meanRun;
    code.meanIterations = wl.meanIterations;
    DataBehavior data;
    data.loadPerInstr = wl.loadPerInstr;
    data.storePerInstr = wl.storePerInstr;
    data.storeBurstMean = wl.storeBurstMean;
    data.stackBase = layout::userStackBase;
    data.stackBytes = wl.stackBytes;
    data.wsBase = layout::userWsBase;
    data.wsBytes = wl.wsBytes;
    data.wsSkew = wl.wsSkew;
    data.streamFracLoad = wl.streamFracLoad;
    data.streamFracStore = wl.streamFracStore;
    data.streamBase = layout::userStreamBase;
    data.streamBytes = wl.streamBytes;
    Component app(wl.name, app_space, Mode::User, code, data, 42);
    os.attachApp(app_space, app.dataBehavior());

    Machine machine(MachineParams::decstation3100());
    os.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            machine.mmu().invalidatePage(vpn, asid, global);
        });

    Rng rng(7);
    VectorTraceSink buffer;
    std::uint64_t consumed = 0;
    std::uint64_t buf_cursor = 0;
    std::uint64_t user_instr = 0;
    while (consumed < refs) {
        buffer.refs.clear();
        const std::uint64_t burst = std::min<std::uint64_t>(
            rng.geometric(wl.syscallPerInstr), 20000);
        app.run(burst, buffer);
        user_instr += burst;
        ServiceRequest req;
        req.kind = ServiceKind::FileRead;
        req.bytes = 8192;
        req.userBufferVa = layout::userStreamBase +
            (buf_cursor % wl.streamBytes);
        buf_cursor += req.bytes;
        os.invokeService(app, req, buffer);
        if (rng.chance(0.35))
            os.displayFrame(app, wl.frameBytes, buffer);
        if (rng.chance(0.02))
            os.vmActivity(app, buffer);
        for (const MemRef &ref : buffer.refs) {
            machine.observe(ref);
            if (++consumed >= refs)
                break;
        }
    }
    const double user_frac = double(user_instr) /
        double(std::max<std::uint64_t>(1,
            machine.stalls().instructions));
    return machine.breakdown(wl.userOtherCpi * user_frac +
                             wl.kernelOtherCpi * (1 - user_frac));
}

void
addRow(TextTable &table, omabench::BenchReport &report,
       const std::string &slug, const std::string &name,
       const CpiBreakdown &b)
{
    table.addRow({name, fmtFixed(b.cpi, 2), fmtFixed(b.tlb, 3),
                  fmtFixed(b.icache, 3), fmtFixed(b.dcache, 3),
                  fmtFixed(b.writeBuffer, 3)});
    report.metrics().add("ablation/variants");
    report.metrics().set("ablation/" + slug + "/cpi", b.cpi);
    report.metrics().set("ablation/" + slug + "/tlb_cpi", b.tlb);
    report.metrics().set("ablation/" + slug + "/icache_cpi", b.icache);
    report.metrics().set("ablation/" + slug + "/dcache_cpi", b.dcache);
}

} // namespace

int
main()
{
    omabench::banner("Ablations of the Mach structure model "
                     "(mpeg_play-like load, DECstation 3100)",
                     "Section 4's causal claims");

    omabench::BenchReport report("ablation");
    const std::uint64_t refs = omabench::benchReferences() / 2;

    TextTable table({"Variant", "CPI", "TLB", "I-cache", "D-cache",
                     "Write Buffer"});

    MachParams base;
    addRow(table, report, "base", "Mach (as measured)",
           runVariant(base, refs));
    report.addReferences(refs);

    MachParams short_paths = base;
    short_paths.emulCallInstr = 20;
    short_paths.emulRetInstr = 15;
    short_paths.kernelSendInstr = 60;
    short_paths.kernelReplyInstr = 50;
    short_paths.serverStubInInstr = 15;
    short_paths.serverStubOutInstr = 20;
    addRow(table, report, "short_rpc",
           "RPC paths cut ~10x (Ultrix-like invocation)",
           runVariant(short_paths, refs));
    report.addReferences(refs);

    MachParams vm_share = base;
    vm_share.xViaBsdServer = false;
    addRow(table, report, "vm_share",
           "Frames by VM sharing (no socket copies)",
           runVariant(vm_share, refs));
    report.addReferences(refs);

    MachParams big_kseg2 = base;
    big_kseg2.kseg2WsBytes = 256 * 1024;
    big_kseg2.kseg2Frac = 0.30;
    addRow(table, report, "big_kseg2",
           "Kernel mapped-data footprint x8",
           runVariant(big_kseg2, refs));
    report.addReferences(refs);

    MachParams small_kseg2 = base;
    small_kseg2.kseg2WsBytes = 4 * 1024;
    small_kseg2.kseg2Frac = 0.02;
    addRow(table, report, "small_kseg2",
           "Kernel mapped data pinned unmapped (kseg0-like)",
           runVariant(small_kseg2, refs));
    report.addReferences(refs);

    MachParams split2 = base;
    split2.extraApiServers = 2;
    addRow(table, report, "split2",
           "BSD service split across 2 extra API servers",
           runVariant(split2, refs));
    report.addReferences(refs);

    MachParams split6 = base;
    split6.extraApiServers = 6;
    split6.extraServerProb = 0.8;
    addRow(table, report, "split6",
           "BSD service split across 6 extra API servers",
           runVariant(split6, refs));
    report.addReferences(refs);

    table.print(std::cout);

    std::cout
        << "\nExpected directions:\n"
        << "  * cutting the RPC paths shrinks the I-cache CPI toward "
           "Ultrix's (Section 4.1);\n"
        << "  * VM-shared frames cut D-cache/write-buffer copy work "
           "but raise TLB pressure per byte moved (Section 4.3);\n"
        << "  * growing the mapped kernel working set raises TLB "
           "service time; shrinking it toward kseg0 removes it "
           "(Section 4.2);\n"
        << "  * decomposing the API service into more user-level "
           "servers spreads code across more mapped address spaces, "
           "raising I-cache and TLB pressure further (Section 4.1, "
           "[Black92]).\n";
    return 0;
}
