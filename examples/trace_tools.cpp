/**
 * @file
 * Example: trace capture and replay utility.
 *
 *   trace_tools gen <file> <benchmark> <ultrix|mach> <refs> [seed]
 *       Generate a reference trace and save it (optionally sampled:
 *       append "sampled" to apply the paper's 50-window methodology).
 *   trace_tools info <file>
 *       Summarize a trace: reference mix, modes, address spaces.
 *   trace_tools sim <file> <i_kb> <d_kb> <line_words> <ways>
 *       Replay a trace through a cache pair and report miss ratios.
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "cache/cache.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "trace/sampler.hh"
#include "trace/stats.hh"
#include "trace/tracefile.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

BenchmarkId
parseBenchmark(const std::string &name)
{
    for (BenchmarkId id : allBenchmarks()) {
        if (name == benchmarkName(id))
            return id;
    }
    fatal("unknown benchmark: " + name);
}

int
cmdGen(int argc, char **argv)
{
    fatalIf(argc < 6, "gen needs <file> <benchmark> <os> <refs>");
    const std::string path = argv[2];
    const BenchmarkId id = parseBenchmark(argv[3]);
    const OsKind os = std::string(argv[4]) == "ultrix"
        ? OsKind::Ultrix
        : OsKind::Mach;
    const std::uint64_t refs = std::strtoull(argv[5], nullptr, 10);
    const bool sampled = argc > 6 && std::string(argv[6]) == "sampled";

    System system(benchmarkParams(id), os, 42);
    TraceFileWriter writer(path);
    MemRef ref;
    if (sampled) {
        SamplerParams sp; // the paper's 50-sample methodology
        sp.sampleCount = 50;
        sp.sampleLength = refs / 50;
        sp.meanGap = 3 * sp.sampleLength;
        TraceSampler sampler(system, sp);
        while (sampler.next(ref))
            writer.put(ref);
    } else {
        for (std::uint64_t i = 0; i < refs; ++i) {
            system.next(ref);
            writer.put(ref);
        }
    }
    writer.close();
    std::cout << "Wrote " << writer.count() << " references to "
              << path << "\n";
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    fatalIf(argc < 3, "info needs <file>");
    TraceFileReader reader(argv[2]);
    TraceStatistics stats;
    MemRef ref;
    while (reader.next(ref))
        stats.put(ref);
    std::cout << "Trace: " << argv[2] << "\n";
    stats.print(std::cout);
    return 0;
}

int
cmdSim(int argc, char **argv)
{
    fatalIf(argc < 7,
            "sim needs <file> <i_kb> <d_kb> <line_words> <ways>");
    TraceFileReader reader(argv[2]);
    CacheParams ip, dp;
    ip.geom = CacheGeometry::fromWords(
        std::strtoull(argv[3], nullptr, 10) * 1024,
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10));
    dp.geom = CacheGeometry::fromWords(
        std::strtoull(argv[4], nullptr, 10) * 1024,
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10));
    Cache icache(ip), dcache(dp);
    MemRef ref;
    while (reader.next(ref)) {
        if (ref.isFetch())
            icache.access(ref.paddr, ref.kind);
        else
            dcache.access(ref.paddr, ref.kind);
    }
    std::cout << "I-cache " << ip.geom.describe() << ": miss ratio "
              << fmtFixed(icache.stats().missRatio(), 4) << " ("
              << icache.stats().totalMisses() << " misses)\n"
              << "D-cache " << dp.geom.describe() << ": miss ratio "
              << fmtFixed(dcache.stats().missRatio(), 4) << " ("
              << dcache.stats().totalMisses() << " misses)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cout << "usage: trace_tools gen|info|sim ...\n";
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "sim")
        return cmdSim(argc, argv);
    fatal("unknown command: " + cmd);
}
