/**
 * @file
 * Figure 7: total TLB service time vs TLB size — fully-associative
 * TLBs, benchmark suite under Mach, Tapeworm methodology. Simulated
 * service cycles are scaled to each benchmark's nominal full-run
 * instruction count (the paper's benchmarks run 100-200 s each) and
 * summed over the suite.
 */

#include <iostream>
#include <string>

#include "bench/common.hh"
#include "obs/export.hh"
#include "support/table.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

using namespace oma;

int
main()
{
    omabench::banner("Total TLB service time vs TLB size "
                     "(fully-associative, Mach, Tapeworm)",
                     "Figure 7");

    omabench::BenchReport report("fig7");
    const std::vector<std::uint64_t> sizes = {32, 64, 128, 256, 512};
    const TlbPenalties penalties;
    const std::uint64_t refs = omabench::benchReferences();

    // seconds[size][class]
    std::vector<std::array<double, numMissClasses>> seconds(
        sizes.size());
    for (auto &row : seconds)
        row.fill(0.0);

    for (BenchmarkId id : allBenchmarks()) {
        const WorkloadParams &wl = benchmarkParams(id);
        System system(wl, OsKind::Mach, 42);

        std::vector<TlbParams> configs;
        for (std::uint64_t entries : sizes) {
            TlbParams p;
            p.geom = TlbGeometry::fullyAssoc(entries);
            configs.push_back(p);
        }
        Tapeworm tapeworm(configs, penalties);
        system.setInvalidateHook(
            [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
                tapeworm.invalidatePage(vpn, asid, global);
            });

        MemRef ref;
        std::uint64_t instructions = 0;
        for (std::uint64_t i = 0; i < refs; ++i) {
            system.next(ref);
            instructions += ref.isFetch();
            tapeworm.observe(ref);
        }

        const double scale =
            wl.nominalInstructions / double(instructions);
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const MmuStats &stats = tapeworm.at(s).stats();
            for (unsigned c = 0; c < numMissClasses; ++c) {
                seconds[s][c] += double(stats.cycles[c]) * scale /
                    penalties.clockHz;
            }
        }
        obs::exportTapeworm(report.metrics(),
                            "tapeworm/" + std::string(wl.name),
                            tapeworm);
        report.addReferences(refs);
        std::cout << "  [swept " << wl.name << ": " << instructions
                  << " instructions, scale x"
                  << fmtFixed(scale, 0) << "]\n";
    }
    std::cout << "\n";

    TextTable table({"TLB entries", "user (s)", "kernel (s)",
                     "modify (s)", "invalid (s)", "other (s)",
                     "total (s)"});
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        double total = 0.0;
        std::vector<std::string> row = {std::to_string(sizes[s])};
        for (unsigned c = 0; c < numMissClasses; ++c)
            total += seconds[s][c];
        for (unsigned c = 0; c < numMissClasses; ++c)
            row.push_back(fmtFixed(seconds[s][c], 1));
        row.push_back(fmtFixed(total, 1));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout
        << "\nPaper's reading of the figure: a 64-entry FA TLB (the "
           "R2000's) needs >46 s of service over the suite; 256- and "
           "512-entry TLBs cut this to ~10 s, with the remainder "
           "dominated by the size-independent 'other' class (page "
           "faults), so there is little to gain beyond 256-512 "
           "entries.\n"
           "Note: the modify/invalid/other columns are one-time "
           "faults scaled linearly to the nominal run length, which "
           "overstates their absolute seconds (a real run re-touches "
           "pages instead of faulting fresh ones); the shape that "
           "matters — a TLB-size-independent floor under steeply "
           "falling user/kernel refill time — is unaffected.\n";
    return 0;
}
