/**
 * @file
 * Baseline experiment driver: reproduce the paper's Monster
 * measurements (Tables 3 and 4, Figure 3) by running a workload/OS
 * pair on the modelled DECstation 3100 and attributing stalls.
 */

#ifndef OMA_CORE_EXPERIMENT_HH
#define OMA_CORE_EXPERIMENT_HH

#include <string>

#include "machine/machine.hh"
#include "workload/system.hh"

namespace oma
{

/** Common knobs of a simulation run. */
struct RunConfig
{
    std::uint64_t references = 3'000'000;
    std::uint64_t seed = 42;
    /** Simulate only the application's own user-mode references
     * (the pixie+cache2000 methodology of Table 3, row 1). */
    bool userOnly = false;
    /**
     * Execution lanes for the sweep/search engines. 0 = one lane per
     * hardware thread; 1 = the legacy single-pass serial path. Any
     * setting produces bitwise-identical results (see
     * docs/MODEL.md, "Threading model"); the knob only trades
     * wall-clock for cores.
     */
    unsigned threads = 0;
    /**
     * Root directory of the content-addressed artifact store
     * (docs/MODEL.md §10). Empty (the default) consults the
     * OMA_STORE_DIR environment variable; when that is unset too, the
     * store is disabled and every run records and replays live.
     * Enabling the store never changes results — cached artifacts
     * reproduce live runs bit-for-bit or are quarantined and re-run.
     */
    std::string storeDir;
};

/** Outcome of a baseline (fixed-machine) run. */
struct BaselineResult
{
    CpiBreakdown cpi;
    std::uint64_t instructions = 0;
    std::uint64_t references = 0;
    double userFraction = 1.0;
    MmuStats mmu;
    double icacheMissRatio = 0.0;
    double dcacheMissRatio = 0.0;
};

/**
 * Run @p workload under @p os on the given machine (DECstation 3100
 * by default) and return the stall breakdown.
 */
BaselineResult runBaseline(
    const WorkloadParams &workload, OsKind os,
    const RunConfig &run = RunConfig(),
    const MachineParams &machine = MachineParams::decstation3100());

/** Convenience overload taking a benchmark id. */
BaselineResult runBaseline(
    BenchmarkId id, OsKind os, const RunConfig &run = RunConfig(),
    const MachineParams &machine = MachineParams::decstation3100());

} // namespace oma

#endif // OMA_CORE_EXPERIMENT_HH
