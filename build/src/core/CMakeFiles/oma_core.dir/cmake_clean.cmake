file(REMOVE_RECURSE
  "CMakeFiles/oma_core.dir/experiment.cc.o"
  "CMakeFiles/oma_core.dir/experiment.cc.o.d"
  "CMakeFiles/oma_core.dir/search.cc.o"
  "CMakeFiles/oma_core.dir/search.cc.o.d"
  "CMakeFiles/oma_core.dir/sweep.cc.o"
  "CMakeFiles/oma_core.dir/sweep.cc.o.d"
  "liboma_core.a"
  "liboma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
