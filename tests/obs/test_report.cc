/**
 * @file
 * Run-report serialization tests: the JSON output must be
 * schema-valid (oma-run-report-v1), the CSV flat and complete, and
 * save() must honor the OMA_RUN_REPORT / OMA_RUN_REPORT_DIR knobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/report.hh"
#include "tests/obs/jsonlite.hh"

namespace oma::obs
{
namespace
{

using omatest::JsonLite;

RunReport
sampleReport()
{
    RunReport report("unit_sample");
    report.meta["benchmark"] = "mab";
    report.meta["os"] = "mach3";
    report.metrics.add("icache/misses", 42);
    report.metrics.add("dcache/misses", 7);
    report.metrics.set("rate/refs_per_sec", 1.5e6);
    report.metrics.accumulate("time_ms/total", 12.5);
    report.metrics.observe("tlb/refills", 3);
    report.metrics.observe("tlb/refills", 300);
    return report;
}

std::string
toJson(const RunReport &report)
{
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

TEST(RunReportDeath, RejectsUnsafeNames)
{
    // The name becomes a file name verbatim; anything outside
    // [A-Za-z0-9_-] must be refused at construction.
    EXPECT_EXIT(RunReport("../escape"), testing::ExitedWithCode(1),
                "A-Za-z0-9_-");
    EXPECT_EXIT(RunReport("has space"), testing::ExitedWithCode(1),
                "A-Za-z0-9_-");
    EXPECT_EXIT(RunReport(""), testing::ExitedWithCode(1),
                "must not be empty");
}

TEST(RunReport, FileNameFollowsTheBenchConvention)
{
    EXPECT_EQ(RunReport("table1").fileName(), "BENCH_table1.json");
}

TEST(RunReport, JsonIsWellFormedAndSchemaTagged)
{
    JsonLite doc;
    ASSERT_TRUE(doc.parse(toJson(sampleReport())));
    EXPECT_EQ(doc.str("schema"), "oma-run-report-v1");
    EXPECT_EQ(doc.str("name"), "unit_sample");
    // All four sections are present even when some are empty.
    EXPECT_TRUE(doc.has("meta"));
    EXPECT_TRUE(doc.has("counters"));
    EXPECT_TRUE(doc.has("gauges"));
    EXPECT_TRUE(doc.has("histograms"));
}

TEST(RunReport, JsonCarriesEveryMetric)
{
    JsonLite doc;
    ASSERT_TRUE(doc.parse(toJson(sampleReport())));
    EXPECT_EQ(doc.str("meta.benchmark"), "mab");
    EXPECT_EQ(doc.str("meta.os"), "mach3");
    EXPECT_DOUBLE_EQ(doc.num("counters.icache/misses"), 42.0);
    EXPECT_DOUBLE_EQ(doc.num("counters.dcache/misses"), 7.0);
    EXPECT_DOUBLE_EQ(doc.num("gauges.rate/refs_per_sec"), 1.5e6);
    EXPECT_DOUBLE_EQ(doc.num("gauges.time_ms/total"), 12.5);
    EXPECT_DOUBLE_EQ(doc.num("histograms.tlb/refills.count"), 2.0);
    EXPECT_DOUBLE_EQ(doc.num("histograms.tlb/refills.sum"), 303.0);
    EXPECT_DOUBLE_EQ(doc.num("histograms.tlb/refills.min"), 3.0);
    EXPECT_DOUBLE_EQ(doc.num("histograms.tlb/refills.max"), 300.0);
    EXPECT_TRUE(doc.has("histograms.tlb/refills.buckets"));
}

TEST(RunReport, EmptyReportIsStillValidJson)
{
    JsonLite doc;
    ASSERT_TRUE(doc.parse(toJson(RunReport("empty"))));
    EXPECT_EQ(doc.str("schema"), "oma-run-report-v1");
}

TEST(RunReport, EscapesHostileMetaStrings)
{
    RunReport report("escapes");
    report.meta["cmd"] = "a\"b\\c\nd\te";
    JsonLite doc;
    ASSERT_TRUE(doc.parse(toJson(report)));
    EXPECT_EQ(doc.str("meta.cmd"), "a\"b\\c\nd\te");
}

TEST(RunReport, NonFiniteGaugesSerializeAsStrings)
{
    // JSON has no inf/nan literals; a gauge that held one must not
    // produce an unparseable document.
    RunReport report("nonfinite");
    report.metrics.set("g/pos", std::numeric_limits<double>::infinity());
    report.metrics.set("g/neg",
                       -std::numeric_limits<double>::infinity());
    report.metrics.set("g/nan",
                       std::numeric_limits<double>::quiet_NaN());
    JsonLite doc;
    ASSERT_TRUE(doc.parse(toJson(report)));
    EXPECT_EQ(doc.str("gauges.g/pos"), "inf");
    EXPECT_EQ(doc.str("gauges.g/neg"), "-inf");
    EXPECT_EQ(doc.str("gauges.g/nan"), "nan");
}

TEST(RunReport, SerializationIsDeterministic)
{
    // Ordered maps underneath: two passes over the same report are
    // textually identical.
    const RunReport report = sampleReport();
    EXPECT_EQ(toJson(report), toJson(report));
}

TEST(RunReport, CsvListsEveryRow)
{
    std::ostringstream os;
    sampleReport().writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("kind,name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("meta,benchmark,\"mab\"\n"), std::string::npos);
    EXPECT_NE(csv.find("counter,icache/misses,42\n"),
              std::string::npos);
    EXPECT_NE(csv.find("gauge,time_ms/total,12.5\n"),
              std::string::npos);
    EXPECT_NE(csv.find("histogram,tlb/refills/count,2\n"),
              std::string::npos);
    EXPECT_NE(csv.find("histogram,tlb/refills/sum,303\n"),
              std::string::npos);
}

TEST(RunReport, SaveWritesIntoTheRequestedDirectory)
{
    const std::string path = sampleReport().save(".");
    ASSERT_EQ(path, "./BENCH_unit_sample.json");
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream read_back;
    read_back << in.rdbuf();
    JsonLite doc;
    EXPECT_TRUE(doc.parse(read_back.str()));
    EXPECT_EQ(doc.str("name"), "unit_sample");
    std::remove(path.c_str());
}

TEST(RunReport, SaveHonorsTheDisableKnob)
{
    ASSERT_EQ(setenv("OMA_RUN_REPORT", "0", 1), 0);
    EXPECT_EQ(sampleReport().save("."), "");
    ASSERT_EQ(unsetenv("OMA_RUN_REPORT"), 0);
}

TEST(RunReport, SaveHonorsTheDirEnvVariable)
{
    ASSERT_EQ(setenv("OMA_RUN_REPORT_DIR", ".", 1), 0);
    const std::string path = sampleReport().save();
    EXPECT_EQ(path, "./BENCH_unit_sample.json");
    ASSERT_EQ(unsetenv("OMA_RUN_REPORT_DIR"), 0);
    std::remove(path.c_str());
}

TEST(RunReport, SaveToUnwritablePathWarnsButSurvives)
{
    EXPECT_EQ(sampleReport().save("/nonexistent-dir-for-oma-test"),
              "");
}

} // namespace
} // namespace oma::obs
