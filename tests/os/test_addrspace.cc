/**
 * @file
 * Unit tests for address spaces and pseudo-physical mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/addrspace.hh"

namespace oma
{
namespace
{

TEST(AddressSpace, Kseg0IsDirectMapped)
{
    AddressSpace space(1, 42);
    EXPECT_EQ(space.paddrFor(kseg0Base + 0x12345), 0x12345u);
}

TEST(AddressSpace, DeterministicMapping)
{
    AddressSpace a(1, 42), b(1, 42);
    for (std::uint64_t va : {0x1000ULL, 0x400000ULL, 0x7fff0000ULL}) {
        EXPECT_EQ(a.paddrFor(va), b.paddrFor(va));
        EXPECT_EQ(a.paddrFor(va), a.paddrFor(va));
    }
}

TEST(AddressSpace, OffsetWithinPagePreserved)
{
    AddressSpace space(1, 42);
    const std::uint64_t page = space.paddrFor(0x1000) & ~(pageBytes - 1);
    EXPECT_EQ(space.paddrFor(0x1234), page | 0x234);
}

TEST(AddressSpace, DifferentAsidsGetDifferentFrames)
{
    AddressSpace a(1, 42), b(2, 42);
    int same = 0;
    for (std::uint64_t page = 0; page < 64; ++page) {
        if (a.paddrFor(0x100000 + page * pageBytes) ==
            b.paddrFor(0x100000 + page * pageBytes))
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(AddressSpace, Kseg2IsGlobalAcrossSpaces)
{
    AddressSpace a(1, 42), b(2, 42);
    const std::uint64_t va = kseg2Base + 0x40000;
    EXPECT_EQ(a.paddrFor(va), b.paddrFor(va));
}

TEST(AddressSpace, SharedSegmentsAlias)
{
    AddressSpace a(1, 42), b(2, 42);
    a.addSharedSegment({0x20000000, 0x10000, 0xbeef});
    b.addSharedSegment({0x30000000, 0x10000, 0xbeef});
    // Same page offset within the shared segment -> same frame...
    // note: frames hash on (key, vpn), so matching requires matching
    // vpns. Map the same vpn range to check.
    AddressSpace c(3, 42);
    c.addSharedSegment({0x20000000, 0x10000, 0xbeef});
    EXPECT_EQ(a.paddrFor(0x20000100), c.paddrFor(0x20000100));
    // Unshared page in a differs from b's.
    EXPECT_NE(a.paddrFor(0x20000100), b.paddrFor(0x20000100));
}

TEST(AddressSpace, LinearSegmentsAreContiguous)
{
    AddressSpace space(1, 42);
    space.addLinearSegment(0x400000, 0x20000);
    const std::uint64_t first = space.paddrFor(0x400000);
    for (std::uint64_t page = 1; page < 32; ++page) {
        EXPECT_EQ(space.paddrFor(0x400000 + page * pageBytes),
                  first + page * pageBytes);
    }
}

TEST(AddressSpace, LinearSegmentsOfDifferentSpacesDiffer)
{
    AddressSpace a(1, 42), b(2, 42);
    a.addLinearSegment(0x400000, 0x10000);
    b.addLinearSegment(0x400000, 0x10000);
    EXPECT_NE(a.paddrFor(0x400000), b.paddrFor(0x400000));
}

TEST(AddressSpace, FramesSpread)
{
    // Hashed frames should cover many distinct values (no systematic
    // clumping into a few cache colors).
    AddressSpace space(1, 42);
    std::set<std::uint64_t> colors;
    for (std::uint64_t page = 0; page < 256; ++page) {
        const std::uint64_t pa =
            space.paddrFor(0x10000000 + page * pageBytes);
        colors.insert((pa >> pageShift) & 0xf); // 16 page colors
    }
    EXPECT_EQ(colors.size(), 16u);
}

TEST(AddressSpaceDeath, RejectsWideAsid)
{
    EXPECT_EXIT(AddressSpace(64, 1), testing::ExitedWithCode(1),
                "6 bits");
}

TEST(AddressSpaceDeath, SharedSegmentNeedsKey)
{
    AddressSpace space(1, 42);
    Segment seg;
    seg.base = 0x1000;
    seg.size = 0x1000;
    seg.shareKey = 0;
    EXPECT_EXIT(space.addSharedSegment(seg), testing::ExitedWithCode(1),
                "non-zero key");
}

} // namespace
} // namespace oma
