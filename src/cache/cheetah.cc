/**
 * @file
 * Implementation of the all-associativity stack simulator.
 */

#include "cache/cheetah.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace oma
{

Cheetah::Cheetah(std::uint64_t sets, std::uint64_t line_bytes,
                 std::uint64_t max_ways)
    : _sets(sets), _lineShift(floorLog2(line_bytes)),
      _indexBits(floorLog2(sets)), _maxWays(max_ways),
      _stacks(sets), _distHist(max_ways, 0)
{
    fatalIf(!isPowerOfTwo(sets), "Cheetah set count must be power of two");
    fatalIf(!isPowerOfTwo(line_bytes),
            "Cheetah line size must be power of two");
    fatalIf(max_ways == 0, "Cheetah needs max_ways >= 1");
    for (auto &stack : _stacks)
        stack.reserve(max_ways);
}

void
Cheetah::access(std::uint64_t addr)
{
    ++_accesses;
    const std::uint64_t line = addr >> _lineShift;
    const std::uint64_t set = line & (_sets - 1);
    const std::uint64_t tag = line >> _indexBits;
    auto &stack = _stacks[set];

    // Find the tag's depth; shift shallower entries down one slot.
    for (std::size_t d = 0; d < stack.size(); ++d) {
        if (stack[d] == tag) {
            ++_distHist[d];
            for (std::size_t i = d; i > 0; --i)
                stack[i] = stack[i - 1];
            stack[0] = tag;
            return;
        }
    }

    // Miss at every associativity of interest.
    ++_deepMisses;
    if (_touched.insert(line).second)
        ++_compulsory;
    if (stack.size() < _maxWays)
        stack.push_back(0);
    for (std::size_t i = stack.size() - 1; i > 0; --i)
        stack[i] = stack[i - 1];
    stack[0] = tag;
}

std::uint64_t
Cheetah::misses(std::uint64_t ways) const
{
    panicIf(ways == 0 || ways > _maxWays,
            "Cheetah::misses ways out of range");
    std::uint64_t hits = 0;
    for (std::uint64_t d = 0; d < ways; ++d)
        hits += _distHist[d];
    return _accesses - hits;
}

} // namespace oma
