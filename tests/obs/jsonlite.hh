/**
 * @file
 * A minimal JSON structural validator for the run-report tests.
 *
 * Deliberately tiny (no external dependency, no DOM): parse() walks
 * the document with a recursive-descent grammar covering the full
 * JSON value syntax and records every object member as a
 * dot-joined path ("counters.icache/misses"), string values and
 * numeric values. Enough to prove a report is well-formed JSON and
 * to assert on its schema — not a general-purpose parser.
 */

#ifndef OMA_TESTS_OBS_JSONLITE_HH
#define OMA_TESTS_OBS_JSONLITE_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

namespace omatest
{

class JsonLite
{
  public:
    /** Parse @p text; false on any syntax error or trailing junk. */
    bool
    parse(const std::string &text)
    {
        _text = text;
        _pos = 0;
        _keys.clear();
        _strings.clear();
        _numbers.clear();
        if (!value(""))
            return false;
        skipWs();
        return _pos == _text.size();
    }

    /** True when an object member with this dot-path exists. */
    bool
    has(const std::string &path) const
    {
        return _keys.count(path) != 0;
    }

    /** String value at @p path ("" when absent or not a string). */
    std::string
    str(const std::string &path) const
    {
        const auto it = _strings.find(path);
        return it == _strings.end() ? "" : it->second;
    }

    /** Numeric value at @p path (0.0 when absent or not a number). */
    double
    num(const std::string &path) const
    {
        const auto it = _numbers.find(path);
        return it == _numbers.end() ? 0.0 : it->second;
    }

    const std::set<std::string> &keys() const { return _keys; }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (_text.compare(_pos, n, word) != 0)
            return false;
        _pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        out.clear();
        if (_pos >= _text.size() || _text[_pos] != '"')
            return false;
        ++_pos;
        while (_pos < _text.size() && _text[_pos] != '"') {
            if (_text[_pos] == '\\') {
                if (_pos + 1 >= _text.size())
                    return false;
                const char esc = _text[_pos + 1];
                _pos += 2;
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': case 'f': break;
                case 'u':
                    if (_pos + 4 > _text.size())
                        return false;
                    _pos += 4; // accept, do not decode
                    break;
                default: return false;
                }
            } else {
                out += _text[_pos++];
            }
        }
        if (_pos >= _text.size())
            return false;
        ++_pos; // closing quote
        return true;
    }

    bool
    parseNumber(const std::string &path)
    {
        const char *start = _text.c_str() + _pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return false;
        _pos += std::size_t(end - start);
        if (!path.empty())
            _numbers[path] = v;
        return true;
    }

    bool
    value(const std::string &path)
    {
        skipWs();
        if (_pos >= _text.size())
            return false;
        const char c = _text[_pos];
        if (c == '{')
            return object(path);
        if (c == '[')
            return array(path);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            if (!path.empty())
                _strings[path] = s;
            return true;
        }
        if (literal("true") || literal("false") || literal("null"))
            return true;
        return parseNumber(path);
    }

    bool
    object(const std::string &path)
    {
        ++_pos; // '{'
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return false;
            ++_pos;
            const std::string child =
                path.empty() ? key : path + "." + key;
            _keys.insert(child);
            if (!value(child))
                return false;
            skipWs();
            if (_pos >= _text.size())
                return false;
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    bool
    array(const std::string &path)
    {
        ++_pos; // '['
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            if (!value(path + ".#"))
                return false;
            skipWs();
            if (_pos >= _text.size())
                return false;
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    std::string _text;
    std::size_t _pos = 0;
    std::set<std::string> _keys;
    std::map<std::string, std::string> _strings;
    std::map<std::string, double> _numbers;
};

} // namespace omatest

#endif // OMA_TESTS_OBS_JSONLITE_HH
