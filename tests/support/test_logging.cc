/**
 * @file
 * Tests for the error-reporting helpers (fatal/panic semantics).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/logging.hh"

namespace oma
{
namespace
{

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("user mistake"), testing::ExitedWithCode(1),
                "user mistake");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("library bug"), "library bug");
}

TEST(LoggingDeath, FatalIfTriggersOnlyWhenTrue)
{
    fatalIf(false, "must not fire");
    EXPECT_EXIT(fatalIf(true, "condition met"),
                testing::ExitedWithCode(1), "condition met");
}

TEST(LoggingDeath, PanicIfTriggersOnlyWhenTrue)
{
    panicIf(false, "must not fire");
    EXPECT_DEATH(panicIf(true, "invariant broken"),
                 "invariant broken");
}

// The docs promise fire-on-true: @p cond states the failure
// condition. Lock both halves of that contract — a true condition
// terminates (above), and a false condition is a complete no-op (the
// child must reach its own exit code, untouched by the handler).
TEST(LoggingDeath, FatalIfFalseIsANoOp)
{
    EXPECT_EXIT(
        {
            fatalIf(false, "must not fire");
            std::exit(17);
        },
        testing::ExitedWithCode(17), "");
}

TEST(LoggingDeath, PanicIfFalseIsANoOp)
{
    EXPECT_EXIT(
        {
            panicIf(false, "must not fire");
            std::exit(17);
        },
        testing::ExitedWithCode(17), "");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning");
    inform("just a note");
    SUCCEED();
}

} // namespace
} // namespace oma
