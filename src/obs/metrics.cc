/**
 * @file
 * Implementation of the metric registry.
 */

#include "obs/metrics.hh"

#include "support/logging.hh"

namespace oma::obs
{

void
MetricRegistry::merge(const MetricRegistry &shard)
{
    for (const auto &[name, value] : shard._counters)
        _counters[name] += value;
    for (const auto &[name, value] : shard._gauges)
        _gauges[name] = value;
    for (const auto &[name, hist] : shard._histograms)
        _histograms[name].merge(hist);
}

Progress::Callback
Progress::informSink(std::string what)
{
    return [what = std::move(what)](std::uint64_t done,
                                    std::uint64_t total) {
        inform(what + ": " + std::to_string(done) + "/" +
               std::to_string(total));
    };
}

} // namespace oma::obs
