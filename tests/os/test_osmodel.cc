/**
 * @file
 * Tests for the Ultrix and Mach OS structure models: the structural
 * properties of Section 4 (invocation path lengths, address spaces
 * crossed, mapped vs unmapped service code).
 */

#include <gtest/gtest.h>

#include <map>

#include "os/mach.hh"
#include "os/osmodel.hh"
#include "os/ultrix.hh"

namespace oma
{
namespace
{

struct Harness
{
    explicit Harness(OsKind kind)
        : os(makeOsModel(kind, 99)), appSpace(layout::appAsid, 99)
    {
        CodeRegion code;
        code.base = layout::userTextBase;
        code.footprint = 32 * 1024;
        DataBehavior data;
        data.stackBase = layout::userStackBase;
        data.wsBase = layout::userWsBase;
        data.wsBytes = 64 * 1024;
        data.streamBase = layout::userStreamBase;
        data.streamBytes = 1024 * 1024;
        app = std::make_unique<Component>("app", appSpace, Mode::User,
                                          code, data, 99);
        os->attachApp(appSpace, app->dataBehavior());
    }

    VectorTraceSink
    invoke(ServiceKind kind, std::uint64_t bytes)
    {
        VectorTraceSink sink;
        ServiceRequest req;
        req.kind = kind;
        req.bytes = bytes;
        req.userBufferVa = layout::userStreamBase;
        os->invokeService(*app, req, sink);
        return sink;
    }

    std::unique_ptr<OsModel> os;
    AddressSpace appSpace;
    std::unique_ptr<Component> app;
};

std::map<std::uint32_t, std::uint64_t>
fetchesByAsid(const VectorTraceSink &sink)
{
    std::map<std::uint32_t, std::uint64_t> by;
    for (const MemRef &r : sink.refs) {
        if (r.isFetch())
            ++by[r.asid];
    }
    return by;
}

std::uint64_t
countFetches(const VectorTraceSink &sink, bool mapped_only)
{
    std::uint64_t n = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isFetch() && (!mapped_only || r.mapped))
            ++n;
    }
    return n;
}

TEST(UltrixModel, StatServiceIsShortAndKernelOnly)
{
    Harness h(OsKind::Ultrix);
    const auto sink = h.invoke(ServiceKind::Stat, 0);
    for (const MemRef &r : sink.refs) {
        EXPECT_EQ(r.mode, Mode::Kernel);
        if (r.isFetch()) {
            EXPECT_FALSE(r.mapped); // all service code in kseg0
        }
    }
    // trap + body + return: a few hundred to ~1500 instructions.
    const std::uint64_t fetches = countFetches(sink, false);
    EXPECT_GT(fetches, 300u);
    EXPECT_LT(fetches, 2000u);
}

TEST(UltrixModel, FileReadCopiesIntoCallerBuffer)
{
    Harness h(OsKind::Ultrix);
    const auto sink = h.invoke(ServiceKind::FileRead, 4096);
    std::uint64_t stores_to_user = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isStore() && r.asid == layout::appAsid && r.mapped)
            ++stores_to_user;
    }
    EXPECT_EQ(stores_to_user, 1024u); // 4 KB / 4-byte words
}

TEST(UltrixModel, NoUserLevelServerInvolved)
{
    Harness h(OsKind::Ultrix);
    const auto sink = h.invoke(ServiceKind::FileRead, 1024);
    const auto by = fetchesByAsid(sink);
    // Only kernel (asid 0) instruction fetches.
    EXPECT_EQ(by.size(), 1u);
    EXPECT_TRUE(by.count(0));
}

TEST(MachModel, ServiceCrossesThreeAddressSpaces)
{
    Harness h(OsKind::Mach);
    const auto sink = h.invoke(ServiceKind::Stat, 0);
    const auto by = fetchesByAsid(sink);
    EXPECT_TRUE(by.count(0)) << "kernel fetches";
    EXPECT_TRUE(by.count(layout::appAsid)) << "emulation library";
    EXPECT_TRUE(by.count(layout::bsdServerAsid)) << "BSD server";
}

TEST(MachModel, ServerCodeRunsMappedInUserMode)
{
    Harness h(OsKind::Mach);
    const auto sink = h.invoke(ServiceKind::Stat, 0);
    std::uint64_t mapped_user_fetches = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isFetch() && r.asid == layout::bsdServerAsid) {
            EXPECT_EQ(r.mode, Mode::User);
            EXPECT_TRUE(r.mapped);
            ++mapped_user_fetches;
        }
    }
    EXPECT_GT(mapped_user_fetches, 200u);
}

TEST(MachModel, InvocationPathMuchLongerThanUltrix)
{
    // Section 4.1: Ultrix round trip < 100 instructions of
    // invocation; Mach ~1000 call + ~850 return. Compare identical
    // Stat services: the difference is pure invocation plumbing.
    Harness ultrix(OsKind::Ultrix);
    Harness mach(OsKind::Mach);
    // Average over several calls (bodies are jittered).
    std::uint64_t u = 0, m = 0;
    const int calls = 20;
    for (int i = 0; i < calls; ++i) {
        u += countFetches(ultrix.invoke(ServiceKind::Stat, 0), false);
        m += countFetches(mach.invoke(ServiceKind::Stat, 0), false);
    }
    const double extra = double(m - u) / calls;
    // The Mach extra plumbing is ~1850 instructions of paths plus
    // stubs and context switches.
    EXPECT_GT(extra, 1200.0);
    EXPECT_LT(extra, 3500.0);
}

TEST(MachModel, EmulationLibraryRunsInCallersSpace)
{
    Harness h(OsKind::Mach);
    const auto sink = h.invoke(ServiceKind::Stat, 0);
    std::uint64_t emul_fetches = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isFetch() && r.asid == layout::appAsid &&
            r.vaddr >= layout::emulTextBase) {
            EXPECT_EQ(r.mode, Mode::User);
            ++emul_fetches;
        }
    }
    // emulCall (200) + emulRet (150) instructions.
    EXPECT_GE(emul_fetches, 300u);
}

TEST(MachModel, DisplayFrameGoesThroughBsdServerByDefault)
{
    Harness h(OsKind::Mach);
    VectorTraceSink sink;
    h.os->displayFrame(*h.app, 8192, sink);
    const auto by = fetchesByAsid(sink);
    EXPECT_TRUE(by.count(layout::bsdServerAsid));
    EXPECT_TRUE(by.count(layout::xServerAsid));
    // Frame payload copied twice: app->server and server->X.
    std::uint64_t copy_stores = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isStore() && r.mapped)
            ++copy_stores;
    }
    EXPECT_GT(copy_stores, 2 * 8192 / 4 - 200);
}

TEST(MachModel, VmShareVariantSkipsTheCopies)
{
    MachParams params;
    params.xViaBsdServer = false;
    auto os = std::make_unique<MachModel>(7, params);
    AddressSpace app_space(layout::appAsid, 7);
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = 32 * 1024;
    DataBehavior data;
    data.streamBase = layout::userStreamBase;
    data.streamBytes = 1024 * 1024;
    Component app("app", app_space, Mode::User, code, data, 7);
    os->attachApp(app_space, app.dataBehavior());

    VectorTraceSink sink;
    os->displayFrame(app, 8192, sink);
    const auto by = fetchesByAsid(sink);
    EXPECT_FALSE(by.count(layout::bsdServerAsid));
    EXPECT_TRUE(by.count(layout::xServerAsid));
}

TEST(MachModel, FrameBufferWritesAreUncachedKseg1)
{
    Harness h(OsKind::Mach);
    VectorTraceSink sink;
    h.os->displayFrame(*h.app, 4096, sink);
    std::uint64_t fb_stores = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isStore() && r.vaddr >= kseg1Base &&
            r.vaddr < kseg2Base) {
            EXPECT_FALSE(r.mapped);
            ++fb_stores;
        }
    }
    EXPECT_EQ(fb_stores, 1024u);
}

TEST(OsModel, VmActivityFiresInvalidateHook)
{
    for (OsKind kind : {OsKind::Ultrix, OsKind::Mach}) {
        Harness h(kind);
        int invalidations = 0;
        h.os->setInvalidateHook(
            [&](std::uint64_t, std::uint32_t, bool) {
                ++invalidations;
            });
        VectorTraceSink sink;
        h.os->vmActivity(*h.app, sink);
        EXPECT_GT(invalidations, 0) << osKindName(kind);
        EXPECT_GT(sink.refs.size(), 100u) << osKindName(kind);
    }
}

TEST(OsModel, TimerTickIsShortKernelPath)
{
    for (OsKind kind : {OsKind::Ultrix, OsKind::Mach}) {
        Harness h(kind);
        VectorTraceSink sink;
        h.os->timerTick(sink);
        for (const MemRef &r : sink.refs)
            EXPECT_EQ(r.mode, Mode::Kernel);
        EXPECT_GT(countFetches(sink, false), 100u);
        EXPECT_LT(countFetches(sink, false), 1000u);
    }
}

TEST(OsModel, Names)
{
    EXPECT_STREQ(osKindName(OsKind::Ultrix), "Ultrix");
    EXPECT_STREQ(osKindName(OsKind::Mach), "Mach");
    EXPECT_STREQ(makeOsModel(OsKind::Ultrix, 1)->name(), "Ultrix");
    EXPECT_STREQ(makeOsModel(OsKind::Mach, 1)->name(), "Mach");
}

TEST(MachModelDeath, ServiceWithoutAttachPanics)
{
    MachModel os(3, MachParams());
    AddressSpace space(layout::appAsid, 3);
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = 16 * 1024;
    Component app("app", space, Mode::User, code, DataBehavior(), 3);
    VectorTraceSink sink;
    ServiceRequest req;
    EXPECT_DEATH(os.invokeService(app, req, sink), "attachApp");
}

} // namespace
} // namespace oma
