/**
 * @file
 * Property tests for the unified record-then-replay pipeline: a live
 * ComponentSweep::run(workload, os, run), a replay of the in-memory
 * RecordedTrace the same System produces, and a replay of that
 * recording after a v2-file round trip must all yield the same
 * SweepResult — counter-for-counter and bit-for-bit in the derived
 * doubles — for every geometry, OS personality and thread count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/sweep.hh"
#include "trace/tracefile.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b,
                     const char *what, std::size_t i)
{
    for (unsigned k = 0; k < numRefKinds; ++k) {
        ASSERT_EQ(a.accesses[k], b.accesses[k]) << what << " " << i;
        ASSERT_EQ(a.misses[k], b.misses[k]) << what << " " << i;
    }
    ASSERT_EQ(a.lineFills, b.lineFills) << what << " " << i;
    ASSERT_EQ(a.writebacks, b.writebacks) << what << " " << i;
    ASSERT_EQ(a.writeThroughWords, b.writeThroughWords)
        << what << " " << i;
    ASSERT_EQ(a.compulsoryMisses, b.compulsoryMisses)
        << what << " " << i;
}

void
expectSameMmuStats(const MmuStats &a, const MmuStats &b, std::size_t i)
{
    ASSERT_EQ(a.translations, b.translations) << "tlb " << i;
    for (unsigned c = 0; c < numMissClasses; ++c) {
        ASSERT_EQ(a.counts[c], b.counts[c]) << "tlb " << i;
        ASSERT_EQ(a.cycles[c], b.cycles[c]) << "tlb " << i;
    }
    ASSERT_EQ(a.asidFlushes, b.asidFlushes) << "tlb " << i;
}

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameSweepResult(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.instructions, b.instructions);
    ASSERT_EQ(a.references, b.references);
    ASSERT_EQ(a.icacheCount(), b.icacheCount());
    ASSERT_EQ(a.dcacheCount(), b.dcacheCount());
    ASSERT_EQ(a.tlbCount(), b.tlbCount());
    for (std::size_t i = 0; i < a.icacheCount(); ++i)
        expectSameCacheStats(a.icache(i).stats, b.icache(i).stats,
                             "icache", i);
    for (std::size_t i = 0; i < a.dcacheCount(); ++i)
        expectSameCacheStats(a.dcache(i).stats, b.dcache(i).stats,
                             "dcache", i);
    for (std::size_t i = 0; i < a.tlbCount(); ++i)
        expectSameMmuStats(a.tlb(i).stats, b.tlb(i).stats, i);
    EXPECT_TRUE(sameBits(a.wbCpi, b.wbCpi));
    EXPECT_TRUE(sameBits(a.otherCpi, b.otherCpi));

    const MachineParams mp = MachineParams::decstation3100();
    for (std::size_t i = 0; i < a.icacheCount(); ++i)
        EXPECT_TRUE(
            sameBits(a.icache(i).cpi(mp), b.icache(i).cpi(mp)));
    for (std::size_t i = 0; i < a.dcacheCount(); ++i)
        EXPECT_TRUE(
            sameBits(a.dcache(i).cpi(mp), b.dcache(i).cpi(mp)));
    for (std::size_t i = 0; i < a.tlbCount(); ++i)
        EXPECT_TRUE(sameBits(a.tlb(i).cpi(), b.tlb(i).cpi()));
}

std::vector<CacheGeometry>
cacheSubset()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : {2, 8})
        for (std::uint64_t words : {1, 4})
            geoms.push_back(
                CacheGeometry::fromWords(kb * 1024, words, 1));
    geoms.push_back(CacheGeometry::fromWords(16 * 1024, 4, 2));
    return geoms;
}

std::vector<TlbGeometry>
tlbSubset()
{
    return {TlbGeometry::fullyAssoc(32), TlbGeometry::fullyAssoc(64),
            TlbGeometry(128, 2), TlbGeometry(256, 4)};
}

class RecordReplay : public testing::TestWithParam<OsKind>
{
};

TEST_P(RecordReplay, LiveMemoryAndFileSweepsAgree)
{
    const OsKind os = GetParam();
    const std::uint64_t refs = 90000, seed = 42;
    const ComponentSweep sweep(cacheSubset(), cacheSubset(),
                               tlbSubset());

    // Path 1: the all-in-one entry point (records internally).
    RunConfig rc;
    rc.references = refs;
    rc.seed = seed;
    rc.threads = 1;
    const SweepResult live = sweep.run(BenchmarkId::Mpeg, os, rc);

    // Path 2: an explicit recording of the identical stream.
    System system(benchmarkParams(BenchmarkId::Mpeg), os, seed);
    const RecordedTrace trace = system.record(refs);
    ASSERT_EQ(trace.size(), refs);

    // Path 3: the recording after a v2 file round trip.
    const std::string path = testing::TempDir() + "/rr_" +
        std::string(os == OsKind::Mach ? "mach" : "ultrix") +
        ".trace";
    writeTrace(path, trace);
    const RecordedTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    ASSERT_EQ(loaded.events().size(), trace.events().size());

    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(testing::Message() << "threads " << threads);
        const SweepResult mem = sweep.run(trace, threads);
        expectSameSweepResult(live, mem);
        const SweepResult file = sweep.run(loaded, threads);
        expectSameSweepResult(live, file);
    }
    std::remove(path.c_str());
}

TEST_P(RecordReplay, RecordingCarriesInvalidationEvents)
{
    // Both OS personalities generate VM activity within the first
    // 90k references; a recording with no events would mean the
    // inline-event plumbing silently dropped them (and the TLB
    // equivalence above would only pass vacuously).
    System system(benchmarkParams(BenchmarkId::Mpeg), GetParam(), 42);
    const RecordedTrace trace = system.record(90000);
    EXPECT_FALSE(trace.events().empty());
    EXPECT_GT(trace.otherCpi(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothOsKinds, RecordReplay,
                         testing::Values(OsKind::Ultrix, OsKind::Mach),
                         [](const auto &info) {
                             return info.param == OsKind::Mach
                                 ? "Mach"
                                 : "Ultrix";
                         });

} // namespace
} // namespace oma
