/**
 * @file
 * Search-strategy comparison: exhaustive enumeration vs seeded
 * simulated annealing over the scored five-component space.
 *
 * Measures the extended Mach tables once, then runs both strategies
 * over three grids — the classic Table 6 grid (8-way limit), the
 * Table 7 grid (2-way limit) and the extended five-component grid —
 * comparing the annealer's single answer bitwise against the
 * exhaustive rank-1 allocation, and reporting evaluations-to-optimum
 * and wall time per strategy. CI gates on this bench's report: the
 * annealer must recover every exhaustive winner while evaluating
 * less than a tenth of the classic candidate space
 * (strategy/classic8/evaluations : strategy/classic8/candidates).
 */

#include <cstring>
#include <iostream>

#include "bench/alloc_common.hh"
#include "core/search_strategy.hh"
#include "support/clock.hh"

using namespace oma;

namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/** Field-for-field equality, doubles compared bitwise. */
bool
sameAllocation(const Allocation &a, const Allocation &b)
{
    return a.tlb.entries == b.tlb.entries &&
        a.tlb.assoc == b.tlb.assoc &&
        a.icache.capacityBytes == b.icache.capacityBytes &&
        a.icache.lineBytes == b.icache.lineBytes &&
        a.icache.assoc == b.icache.assoc &&
        a.dcache.capacityBytes == b.dcache.capacityBytes &&
        a.dcache.lineBytes == b.dcache.lineBytes &&
        a.dcache.assoc == b.dcache.assoc &&
        a.victimEntries == b.victimEntries &&
        a.wbEntries == b.wbEntries && a.hasL2 == b.hasL2 &&
        a.unified == b.unified &&
        a.l2.capacityBytes == b.l2.capacityBytes &&
        sameBits(a.cpi, b.cpi) && sameBits(a.areaRbe, b.areaRbe);
}

void
runScenario(const std::string &key, const std::string &label,
            const ComponentCpiTables &tables,
            std::uint64_t max_cache_ways, const AnnealingConfig &config,
            omabench::BenchReport &report, TextTable &table)
{
    const SearchSpace space(tables, AreaModel(),
                            omabench::paperBudgetRbe, max_cache_ways);

    const std::int64_t t0 = Clock::nowNs();
    const SearchResult exhaustive = ExhaustiveStrategy().search(space);
    const std::int64_t t1 = Clock::nowNs();
    const SearchResult annealed =
        AnnealingStrategy(config).search(space);
    const std::int64_t t2 = Clock::nowNs();
    const double exhaustive_ms = Clock::toMs(t1 - t0);
    const double annealed_ms = Clock::toMs(t2 - t1);

    const bool recovered = !exhaustive.allocations.empty() &&
        annealed.allocations.size() == 1 &&
        sameAllocation(annealed.allocations.front(),
                       exhaustive.allocations.front());
    const double evals_pct = annealed.candidates == 0
        ? 0.0
        : 100.0 * double(annealed.evaluations) /
            double(annealed.candidates);

    obs::MetricRegistry &m = report.metrics();
    const std::string prefix = "strategy/" + key + "/";
    m.add(prefix + "candidates", annealed.candidates);
    m.add(prefix + "evaluations", annealed.evaluations);
    m.add(prefix + "pruned_subspaces", annealed.prunedSubspaces);
    m.add(prefix + "exhaustive_evaluations", exhaustive.evaluations);
    m.add(prefix + "exhaustive_pruned", exhaustive.prunedSubspaces);
    m.set(prefix + "recovered", recovered ? 1.0 : 0.0);
    m.set(prefix + "time_ms/exhaustive", exhaustive_ms);
    m.set(prefix + "time_ms/annealing", annealed_ms);
    if (!exhaustive.allocations.empty())
        m.set(prefix + "best_cpi", exhaustive.allocations.front().cpi);

    table.addRow(
        {label, fmtGrouped(annealed.candidates),
         fmtGrouped(annealed.evaluations), fmtFixed(evals_pct, 1),
         fmtGrouped(annealed.prunedSubspaces),
         fmtFixed(exhaustive_ms, 1), fmtFixed(annealed_ms, 1),
         recovered ? "yes" : "NO"});

    if (!exhaustive.allocations.empty()) {
        const Allocation &w = exhaustive.allocations.front();
        std::cout << label << " winner: " << w.tlb.describe()
                  << " TLB, " << w.icache.describe() << " I, "
                  << w.dcache.describe() << " D, "
                  << omabench::describeExtras(w) << ", CPI "
                  << fmtFixed(w.cpi, 3)
                  << (recovered ? " — recovered by annealing"
                                : " — NOT recovered by annealing")
                  << "\n";
    }
}

} // namespace

int
main()
{
    omabench::banner(
        "Search strategies: exhaustive vs seeded annealing over the "
        "five-component space",
        "Section 5.4 search, 250,000-rbe budget");

    omabench::BenchReport report("search_strategies");
    const ConfigSpace space = ConfigSpace::extended();
    const ComponentCpiTables extended =
        omabench::measureMachTables(space, &report);

    // Stripping the extension axes leaves the paper's exact grid.
    ComponentCpiTables classic = extended;
    classic.victimOptions.clear();
    classic.wbOptions.clear();
    classic.hierarchyOptions.clear();

    // One annealing budget per grid, scaled so the evaluation count
    // stays well under a tenth of the candidate space. Seeds are
    // fixed: every number below reproduces bit for bit.
    AnnealingConfig classic8; // defaults: 6 chains x 2000 iterations
    AnnealingConfig classic2;
    classic2.chains = 4;
    classic2.iterations = 1000;
    AnnealingConfig ext; // defaults; the grid is ~4x the classic one

    TextTable table({"Grid", "Candidates", "Anneal evals", "Evals %",
                     "Pruned", "Exhaustive ms", "Anneal ms",
                     "Winner recovered"});
    runScenario("classic8", "Classic (Table 6, 8-way)", classic, 8,
                classic8, report, table);
    runScenario("classic2", "Classic (Table 7, 2-way)", classic, 2,
                classic2, report, table);
    runScenario("extended", "Extended five-component", extended, 8,
                ext, report, table);
    std::cout << "\n";
    table.print(std::cout);

    std::cout
        << "\nReading guide: the annealer's answer is a pure "
           "function of its seed (independent chains merged in "
           "chain order, then a deterministic coordinate-descent "
           "polish), so 'recovered' is reproducible, not a lucky "
           "draw. Cost-bound pruning removes options whose per-axis "
           "area floor already exceeds the budget; the exhaustive "
           "strategy applies the same floors per subgrid, which is "
           "why its evaluation count sits below the candidate "
           "count.\n";
    return 0;
}
