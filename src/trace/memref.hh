/**
 * @file
 * The memory-reference record that flows through every simulator.
 *
 * A reference carries both the virtual and the (pseudo-)physical
 * address plus the address-space identifier and processor mode, which
 * is everything the cache, TLB and monitor models need. This mirrors
 * what the paper's Monster logic analyzer captured at the R2000 pins
 * (the R2000 has off-chip, physically-addressed caches, so every
 * reference is visible there).
 */

#ifndef OMA_TRACE_MEMREF_HH
#define OMA_TRACE_MEMREF_HH

#include <cstdint>

namespace oma
{

/** What kind of access a reference is. */
enum class RefKind : std::uint8_t
{
    IFetch = 0, //!< Instruction fetch.
    Load = 1,   //!< Data read.
    Store = 2,  //!< Data write.
};

/** Processor privilege mode at the time of the reference. */
enum class Mode : std::uint8_t
{
    User = 0,
    Kernel = 1,
};

/** Number of distinct RefKind values. */
constexpr unsigned numRefKinds = 3;

/** A single memory reference. */
struct MemRef
{
    std::uint64_t vaddr = 0;  //!< Virtual address.
    std::uint64_t paddr = 0;  //!< Pseudo-physical address.
    std::uint32_t asid = 0;   //!< Address-space identifier.
    RefKind kind = RefKind::IFetch;
    Mode mode = Mode::User;
    /**
     * Whether the reference is translated through the TLB. R2000
     * kseg0 kernel references are unmapped (no TLB involvement) but
     * still cached; kuseg and kseg2 references are mapped.
     */
    bool mapped = true;

    bool isFetch() const { return kind == RefKind::IFetch; }
    bool isLoad() const { return kind == RefKind::Load; }
    bool isStore() const { return kind == RefKind::Store; }
    bool isData() const { return kind != RefKind::IFetch; }
    bool isKernel() const { return mode == Mode::Kernel; }
};

/** Short lowercase name for a reference kind ("ifetch", ...). */
const char *refKindName(RefKind kind);

/** Short lowercase name for a mode ("user" / "kernel"). */
const char *modeName(Mode mode);

} // namespace oma

#endif // OMA_TRACE_MEMREF_HH
