/**
 * @file
 * Component sweeps: measure many cache and TLB configurations against
 * one workload trace in a single pass.
 *
 * The paper's cost/benefit analysis (Section 5.4) combines
 * independently measured per-component CPI contributions: I-cache and
 * D-cache miss ratios from trace-driven simulation and TLB service
 * cycles from Tapeworm, plus a configuration-independent base (write
 * buffer and non-memory stalls). ComponentSweep produces exactly
 * those tables.
 */

#ifndef OMA_CORE_SWEEP_HH
#define OMA_CORE_SWEEP_HH

#include <vector>

#include "cache/bank.hh"
#include "core/experiment.hh"
#include "machine/machine.hh"
#include "obs/metrics.hh"
#include "tlb/tapeworm.hh"
#include "trace/recorded.hh"
#include "workload/system.hh"

namespace oma
{

/** Per-configuration results of one sweep over one workload/OS pair. */
struct SweepResult
{
    std::uint64_t instructions = 0;
    std::uint64_t references = 0;

    std::vector<CacheGeometry> icacheGeoms;
    std::vector<CacheStats> icacheStats;
    std::vector<CacheGeometry> dcacheGeoms;
    std::vector<CacheStats> dcacheStats;
    std::vector<TlbGeometry> tlbGeoms;
    std::vector<MmuStats> tlbStats;

    /** Write-buffer stall cycles per instruction (config-independent
     * base, measured on the reference machine). */
    double wbCpi = 0.0;
    /** Non-memory stall cycles per instruction. */
    double otherCpi = 0.0;

    /** I-cache CPI contribution of config @p i (paper's penalty). */
    [[nodiscard]] double icacheCpi(std::size_t i,
                                   const MachineParams &mp) const;
    /** D-cache CPI contribution of config @p i. */
    [[nodiscard]] double dcacheCpi(std::size_t i,
                                   const MachineParams &mp) const;
    /** TLB CPI contribution of config @p i. */
    [[nodiscard]] double tlbCpi(std::size_t i) const;

    /** I-cache miss ratio of config @p i. */
    [[nodiscard]] double
    icacheMissRatio(std::size_t i) const
    {
        return icacheStats[i].missRatio();
    }

    [[nodiscard]] double
    dcacheMissRatio(std::size_t i) const
    {
        return dcacheStats[i].missRatio();
    }
};

/**
 * Runs one workload/OS pair against banks of I-cache, D-cache and TLB
 * configurations simultaneously.
 *
 * The engine is record-then-replay throughout: the trace is captured
 * once into a compact RecordedTrace (serially, so the workload RNG
 * advances exactly as in a legacy single-pass run, with OS page
 * invalidations recorded inline at their trace position), then the
 * reference machine and every cache and TLB geometry replay the
 * recording on private simulator instances. RunConfig::threads picks
 * the lane count for the replays; serial (threads = 1) runs the same
 * per-configuration replays inline, so results are bitwise identical
 * for any thread count. A recording loaded from a v2 trace file can
 * be swept directly via the RecordedTrace overload.
 */
class ComponentSweep
{
  public:
    ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                   std::vector<CacheGeometry> dcache_geoms,
                   std::vector<TlbGeometry> tlb_geoms,
                   const MachineParams &reference_machine =
                       MachineParams::decstation3100());

    /**
     * Run the sweep. An optional obs::Observation collects component
     * counters (merged over per-task shards in task order), phase
     * timings and progress ticks; attaching one never changes the
     * SweepResult (tests/core/test_observed_sweep.cc holds bitwise
     * identity at 1 and 4 threads).
     */
    [[nodiscard]] SweepResult
    run(const WorkloadParams &workload, OsKind os,
        const RunConfig &run = RunConfig(),
        obs::Observation *observation = nullptr) const;

    [[nodiscard]] SweepResult
    run(BenchmarkId id, OsKind os,
        const RunConfig &run_config = RunConfig(),
        obs::Observation *observation = nullptr) const
    {
        return this->run(benchmarkParams(id), os, run_config,
                         observation);
    }

    /**
     * Sweep an existing recording (e.g. System::record output or a
     * readTrace()d v2 file) on @p threads lanes (0 = hardware, 1 =
     * serial). Reproduces the live-run SweepResult exactly when the
     * recording came from the same workload/OS/seed/length.
     */
    [[nodiscard]] SweepResult
    run(const RecordedTrace &trace, unsigned threads = 0,
        obs::Observation *observation = nullptr) const;

  private:
    SweepResult replayTrace(const RecordedTrace &trace,
                            unsigned threads,
                            obs::Observation *observation) const;

    std::vector<CacheGeometry> _icacheGeoms;
    std::vector<CacheGeometry> _dcacheGeoms;
    std::vector<TlbGeometry> _tlbGeoms;
    MachineParams _refMachine;
};

/**
 * Average per-configuration CPI tables over a set of SweepResults
 * (the paper reports suite averages). All results must have been
 * produced with identical geometry lists.
 */
struct ComponentCpiTables
{
    std::vector<CacheGeometry> icacheGeoms;
    std::vector<double> icacheCpi;
    std::vector<CacheGeometry> dcacheGeoms;
    std::vector<double> dcacheCpi;
    std::vector<TlbGeometry> tlbGeoms;
    std::vector<double> tlbCpi;
    /** Base of an allocation's total CPI (1.0, as in Tables 6/7). */
    double baseCpi = 1.0;
    /** Config-independent write-buffer stall CPI (informational). */
    double wbCpi = 0.0;
    /** Config-independent non-memory stall CPI (informational). */
    double otherCpi = 0.0;

    [[nodiscard]] static ComponentCpiTables average(
        const std::vector<SweepResult> &results,
        const MachineParams &mp);
};

} // namespace oma

#endif // OMA_CORE_SWEEP_HH
