/**
 * @file
 * Implementation of the batched cache replay drivers.
 */

#include "cache/replay.hh"

#include <vector>

#include "tlb/mips_va.hh"

namespace oma
{

std::uint64_t
replayFetchBatched(const RecordedTrace &trace, Cache &cache)
{
    std::vector<std::uint32_t> paddr;
    paddr.reserve(RecordedTrace::chunkRefs);
    std::uint64_t delivered = 0;
    for (std::size_t c = 0; c < trace.numChunks(); ++c) {
        const TraceChunkView v = trace.chunkView(c);
        paddr.clear();
        for (std::size_t i = 0; i < v.size; ++i) {
            if (RefKind(v.flags[i] & RecordedTrace::kindMask) ==
                RefKind::IFetch) {
                paddr.push_back(v.paddr[i]);
            }
        }
        cache.replayFetchBatch(paddr.data(), paddr.size());
        delivered += paddr.size();
    }
    return delivered;
}

std::uint64_t
replayCachedDataBatched(const RecordedTrace &trace, Cache &cache)
{
    std::vector<std::uint32_t> paddr;
    std::vector<std::uint8_t> flags;
    paddr.reserve(RecordedTrace::chunkRefs);
    flags.reserve(RecordedTrace::chunkRefs);
    std::uint64_t delivered = 0;
    for (std::size_t c = 0; c < trace.numChunks(); ++c) {
        const TraceChunkView v = trace.chunkView(c);
        paddr.clear();
        flags.clear();
        for (std::size_t i = 0; i < v.size; ++i) {
            if (RefKind(v.flags[i] & RecordedTrace::kindMask) !=
                    RefKind::IFetch &&
                !isUncached(std::uint64_t(v.vaddr[i]))) {
                paddr.push_back(v.paddr[i]);
                flags.push_back(v.flags[i]);
            }
        }
        cache.replayDataBatch(paddr.data(), flags.data(),
                              paddr.size());
        delivered += paddr.size();
    }
    return delivered;
}

} // namespace oma
