/**
 * @file
 * Clang thread-safety (capability) annotation macros.
 *
 * The parallel engines guarantee bitwise serial/parallel equivalence;
 * the other half of the concurrency contract is that every piece of
 * shared mutable state names the lock that protects it, and the
 * compiler — not a code reviewer — checks that the lock is held at
 * every access. These macros wrap clang's capability-analysis
 * attributes (-Wthread-safety, enabled as errors by the
 * OMA_THREAD_SAFETY CMake option); on non-clang compilers they expand
 * to nothing, so annotated code builds everywhere and is *verified*
 * wherever clang builds it.
 *
 * Annotate with the oma::Mutex / oma::LockGuard wrappers from
 * support/sync.hh — the raw std primitives carry no capability
 * attributes and are forbidden outside that shim by the `lock-audit`
 * lint rule (docs/STATIC_ANALYSIS.md).
 */

#ifndef OMA_SUPPORT_THREAD_ANNOTATIONS_HH
#define OMA_SUPPORT_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define OMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMA_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a capability (a lock) the analysis can track. */
#define OMA_CAPABILITY(x) OMA_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires a capability in its constructor
 * and releases it in its destructor. */
#define OMA_SCOPED_CAPABILITY OMA_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define OMA_GUARDED_BY(x) OMA_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define OMA_PT_GUARDED_BY(x) OMA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the listed capabilities and does not release
 * them before returning. */
#define OMA_ACQUIRE(...) \
    OMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (held on entry). */
#define OMA_RELEASE(...) \
    OMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities across the call. */
#define OMA_REQUIRES(...) \
    OMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define OMA_EXCLUDES(...) OMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function tries to acquire and reports success as @p __VA_ARGS__[0]. */
#define OMA_TRY_ACQUIRE(...) \
    OMA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function returns a reference to the capability protecting @p x. */
#define OMA_RETURN_CAPABILITY(x) OMA_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opt a function body out of the analysis. Reserved for the sync
 * shim's own internals (where the wrapped std primitive is
 * manipulated directly); never use it to silence a finding in
 * engine code — state the real lock relationship instead.
 */
#define OMA_NO_THREAD_SAFETY_ANALYSIS \
    OMA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // OMA_SUPPORT_THREAD_ANNOTATIONS_HH
