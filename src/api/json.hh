/**
 * @file
 * Minimal strict JSON for the query API (docs/MODEL.md §14).
 *
 * The wire format of oma_serve is newline-delimited JSON, so the API
 * layer needs a parser and a writer with three properties the usual
 * "lenient" helpers lack:
 *
 * * *Strict.* Exactly the JSON grammar: no comments, no trailing
 *   commas, no duplicate object keys, no trailing garbage, bounded
 *   nesting. A malformed request is rejected with a positioned error
 *   instead of being half-understood.
 *
 * * *Deterministic.* Writing preserves member order and renders
 *   numbers via std::to_chars (shortest round-trip form for doubles),
 *   so encode(decode(x)) is byte-identical and responses can be
 *   compared bitwise across cold / warm / deduplicated serving paths.
 *
 * * *Exact integers.* Numbers keep their raw text; u64 fields are
 *   re-parsed from that text instead of round-tripping through a
 *   double, so 64-bit seeds survive unclipped.
 *
 * This is a deliberate in-tree dependency-free implementation: the
 * container images carry no JSON library, and the codec surface the
 * API needs is small (see tests/api/test_json.cc).
 */

#ifndef OMA_API_JSON_HH
#define OMA_API_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oma::api
{

/** One parsed JSON value (a tree; object member order preserved). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Raw numeric token text (valid per the JSON grammar). */
    std::string number;
    /** Decoded string contents (escapes resolved). */
    std::string string;
    std::vector<JsonValue> array;
    /** Members in source order; the parser rejects duplicate keys. */
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Member of an Object by key, nullptr when absent. */
    [[nodiscard]] const JsonValue *find(std::string_view key) const;

    /** Exact unsigned 64-bit read: Number kind, integral token, in
     * range. No silent truncation through a double. */
    [[nodiscard]] bool asU64(std::uint64_t &out) const;

    /** Finite double read from the raw numeric token. */
    [[nodiscard]] bool asReal(double &out) const;
};

/**
 * Parse @p text as exactly one strict JSON document.
 *
 * @retval true @p out holds the parsed tree.
 * @retval false @p error describes the first violation with its byte
 *         offset; @p out is unspecified.
 */
[[nodiscard]] bool parseJson(std::string_view text, JsonValue &out,
                             std::string &error);

/** Serialize a value tree: minimal whitespace-free form, member
 * order preserved — the inverse of parseJson up to number
 * normalization (tokens are re-emitted verbatim). */
[[nodiscard]] std::string writeJson(const JsonValue &value);

// Writer building blocks shared by the request/response codecs.

/** Append @p s as a quoted JSON string (escaping `"` `\` and control
 * characters). */
void appendJsonString(std::string &out, std::string_view s);

/** Append @p v in decimal. */
void appendJsonU64(std::string &out, std::uint64_t v);

/** Append finite @p v in shortest round-trip form (fatal on NaN or
 * infinity — the API never carries non-finite values). */
void appendJsonReal(std::string &out, double v);

} // namespace oma::api

#endif // OMA_API_JSON_HH
