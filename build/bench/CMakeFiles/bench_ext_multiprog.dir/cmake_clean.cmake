file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiprog.dir/bench_ext_multiprog.cc.o"
  "CMakeFiles/bench_ext_multiprog.dir/bench_ext_multiprog.cc.o.d"
  "bench_ext_multiprog"
  "bench_ext_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
