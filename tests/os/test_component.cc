/**
 * @file
 * Unit tests for Component reference emission.
 */

#include <gtest/gtest.h>

#include "os/component.hh"
#include "os/layout.hh"

namespace oma
{
namespace
{

CodeRegion
code()
{
    CodeRegion r;
    r.base = layout::userTextBase;
    r.footprint = 16 * 1024;
    return r;
}

DataBehavior
data()
{
    DataBehavior d;
    d.loadPerInstr = 0.2;
    d.storePerInstr = 0.1;
    d.stackBase = layout::userStackBase;
    d.wsBase = layout::userWsBase;
    d.wsBytes = 64 * 1024;
    return d;
}

TEST(Component, RunEmitsRequestedInstructionCount)
{
    AddressSpace space(1, 1);
    Component comp("app", space, Mode::User, code(), data(), 1);
    VectorTraceSink sink;
    comp.run(1000, sink);
    std::uint64_t fetches = 0, datarefs = 0;
    for (const MemRef &r : sink.refs) {
        if (r.isFetch())
            ++fetches;
        else
            ++datarefs;
    }
    EXPECT_EQ(fetches, 1000u);
    EXPECT_EQ(comp.instructionsRun(), 1000u);
    EXPECT_GT(datarefs, 100u);
    EXPECT_LT(datarefs, 600u);
}

TEST(Component, RefsCarryModeAndAsid)
{
    AddressSpace space(5, 1);
    Component comp("app", space, Mode::User, code(), data(), 2);
    VectorTraceSink sink;
    comp.run(200, sink);
    for (const MemRef &r : sink.refs) {
        EXPECT_EQ(r.mode, Mode::User);
        EXPECT_EQ(r.asid, 5u);
        EXPECT_TRUE(r.mapped);
        EXPECT_EQ(r.paddr, space.paddrFor(r.vaddr));
    }
}

TEST(Component, KernelComponentEmitsUnmappedKseg0)
{
    AddressSpace kspace(0, 1);
    CodeRegion kcode;
    kcode.base = layout::kTrapTextBase;
    kcode.footprint = 8 * 1024;
    DataBehavior kdata = data();
    kdata.stackBase = layout::kStackBase;
    kdata.wsBase = layout::kDataBase;
    Component comp("kern", kspace, Mode::Kernel, kcode, kdata, 3);
    VectorTraceSink sink;
    comp.run(200, sink);
    for (const MemRef &r : sink.refs) {
        EXPECT_EQ(r.mode, Mode::Kernel);
        if (r.isFetch()) {
            EXPECT_FALSE(r.mapped); // kseg0 text
        }
    }
}

TEST(Component, RunPathIsSequential)
{
    AddressSpace space(1, 1);
    Component comp("app", space, Mode::User, code(), data(), 4);
    VectorTraceSink sink;
    const CodePath path{layout::userTextBase + 0x8000, 50};
    comp.runPath(path, sink, 0.0);
    ASSERT_EQ(sink.refs.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(sink.refs[i].vaddr, path.base + i * 4);
        EXPECT_TRUE(sink.refs[i].isFetch());
    }
}

TEST(Component, RunPathDataMixRespectsRate)
{
    AddressSpace space(1, 1);
    Component comp("app", space, Mode::User, code(), data(), 5);
    VectorTraceSink sink;
    comp.runPath({layout::userTextBase, 1000}, sink, 0.25);
    std::uint64_t fetches = 0, datarefs = 0;
    for (const MemRef &r : sink.refs)
        (r.isFetch() ? fetches : datarefs)++;
    EXPECT_EQ(fetches, 1000u);
    EXPECT_EQ(datarefs, 250u);
}

TEST(Component, CopyLoopStructure)
{
    AddressSpace ksp(0, 1), usp(1, 1);
    CodeRegion kcode;
    kcode.base = layout::kTrapTextBase;
    kcode.footprint = 8 * 1024;
    Component kern("kern", ksp, Mode::Kernel, kcode, data(), 6);
    VectorTraceSink sink;
    kern.copyLoop(ksp, layout::kBufferCacheBase, usp, 0x20000000, 64,
                  sink);
    // 16 words: per word 2 ifetches + 1 load + 1 store.
    ASSERT_EQ(sink.refs.size(), 16u * 4);
    for (std::size_t w = 0; w < 16; ++w) {
        const MemRef &f1 = sink.refs[w * 4 + 0];
        const MemRef &ld = sink.refs[w * 4 + 1];
        const MemRef &f2 = sink.refs[w * 4 + 2];
        const MemRef &st = sink.refs[w * 4 + 3];
        EXPECT_TRUE(f1.isFetch());
        EXPECT_TRUE(f2.isFetch());
        EXPECT_TRUE(ld.isLoad());
        EXPECT_TRUE(st.isStore());
        // Load walks the kernel buffer; store walks the user buffer.
        EXPECT_EQ(ld.vaddr, layout::kBufferCacheBase + w * 4);
        EXPECT_FALSE(ld.mapped); // kseg0 buffer
        EXPECT_EQ(st.vaddr, 0x20000000u + w * 4);
        EXPECT_TRUE(st.mapped);
        EXPECT_EQ(st.asid, 1u); // destination space's ASID
        EXPECT_EQ(st.mode, Mode::Kernel);
    }
}

TEST(Component, CopyLoopRoundsUpPartialWords)
{
    AddressSpace sp(1, 1);
    Component comp("app", sp, Mode::User, code(), data(), 7);
    VectorTraceSink sink;
    comp.copyLoop(sp, 0x1000, sp, 0x2000, 10, sink); // 10 B -> 3 words
    EXPECT_EQ(sink.refs.size(), 3u * 4);
}

} // namespace
} // namespace oma
