/**
 * @file
 * Figure 8: set-associative TLB performance relative to a 256-entry
 * fully-associative TLB — video_play under Mach. Values above 1.0
 * mean more service time than the reference.
 */

#include <iostream>

#include "bench/common.hh"
#include "obs/export.hh"
#include "support/table.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

using namespace oma;

int
main()
{
    omabench::banner("Set-associative TLB service time relative to a "
                     "256-entry fully-associative TLB (video_play, "
                     "Mach)",
                     "Figure 8");

    omabench::BenchReport report("fig8");
    const std::vector<std::uint64_t> sizes = {64, 128, 256, 512};
    const std::vector<std::uint64_t> ways = {1, 2, 4, 8};

    std::vector<TlbParams> configs;
    {
        TlbParams reference;
        reference.geom = TlbGeometry::fullyAssoc(256);
        configs.push_back(reference);
    }
    for (std::uint64_t entries : sizes) {
        for (std::uint64_t w : ways) {
            TlbParams p;
            p.geom = TlbGeometry(entries, w);
            configs.push_back(p);
        }
    }

    Tapeworm tapeworm(configs, TlbPenalties());
    System system(benchmarkParams(BenchmarkId::VideoPlay),
                  OsKind::Mach, 42);
    system.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            tapeworm.invalidatePage(vpn, asid, global);
        });

    MemRef ref;
    const std::uint64_t refs = omabench::benchReferences();
    for (std::uint64_t i = 0; i < refs; ++i) {
        system.next(ref);
        tapeworm.observe(ref);
    }

    obs::exportTapeworm(report.metrics(), "tapeworm", tapeworm);
    report.addReferences(refs);

    const double reference_cycles =
        double(tapeworm.at(0).stats().totalServiceCycles());

    TextTable table({"Entries", "1-way", "2-way", "4-way", "8-way"});
    std::size_t idx = 1;
    for (std::uint64_t entries : sizes) {
        std::vector<std::string> row = {std::to_string(entries)};
        for (std::size_t w = 0; w < ways.size(); ++w, ++idx) {
            const double cycles = double(
                tapeworm.at(idx).stats().totalServiceCycles());
            row.push_back(fmtFixed(cycles / reference_cycles, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout
        << "\n(1.00 = the 256-entry fully-associative reference.)\n"
        << "Shape criteria: direct-mapped TLBs perform very poorly "
           "(the paper drops them from the plot); for >= 64 entries "
           "there is little difference among 2-, 4- and 8-way; "
           "512-entry set-associative TLBs reach roughly the "
           "reference's performance at a fraction of its area.\n";
    return 0;
}
