/**
 * @file
 * Workload parameterization.
 *
 * Each of the paper's six benchmarks is described by a WorkloadParams
 * record: the application's own code/data locality, its
 * OS-interaction rates (system calls, display frames, VM activity)
 * and its non-memory stall intensity. The records are calibrated once
 * against the paper's DECstation 3100 baseline measurements (Tables 3
 * and 4) and reused unchanged by every experiment.
 */

#ifndef OMA_WORKLOAD_WORKLOAD_HH
#define OMA_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/osmodel.hh"
#include "support/fingerprint.hh"

namespace oma
{

/** One entry of a workload's system-call mix. */
struct SyscallMixEntry
{
    ServiceKind kind = ServiceKind::Stat;
    double weight = 1.0;
    std::uint64_t meanBytes = 0;

    /** Append every field to an artifact-store fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.u64("syscall.kind", std::uint64_t(kind));
        fp.real("syscall.weight", weight);
        fp.u64("syscall.mean_bytes", meanBytes);
    }
};

/** Complete description of a benchmark's behaviour. */
struct WorkloadParams
{
    std::string name;
    std::string description;

    // --- application code ---
    std::uint64_t codeFootprint = 48 * 1024;
    double codeSkew = 0.8;
    double meanRun = 12.0;
    double meanIterations = 9.0;

    // --- application data ---
    double loadPerInstr = 0.20;
    double storePerInstr = 0.10;
    std::uint64_t wsBytes = 256 * 1024;
    double wsSkew = 1.1;
    std::uint64_t stackBytes = 8 * 1024;
    double streamFracLoad = 0.0;
    double streamFracStore = 0.0;
    double storeBurstMean = 4.0;
    std::uint64_t streamBytes = 2 * 1024 * 1024;
    std::uint64_t streamStride = 4;

    // --- non-memory stalls (FP and integer interlocks) ---
    double userOtherCpi = 0.10;  //!< Per user-app instruction.
    double kernelOtherCpi = 0.02; //!< Per OS/server instruction.

    // --- OS interaction (rates per application instruction) ---
    double syscallPerInstr = 1.0 / 20000;
    /**
     * System calls cluster (an xlib flush is a write+select+read
     * burst): mean burst size and the mean in-burst gap in
     * application instructions. The long gap between bursts is chosen
     * so the average rate stays syscallPerInstr.
     */
    double syscallBurstMean = 3.0;
    double syscallBurstGap = 300.0;
    std::vector<SyscallMixEntry> syscalls{
        {ServiceKind::FileRead, 1.0, 8192}};
    double framePerInstr = 0.0;
    std::uint64_t frameBytes = 24 * 1024;
    double vmPerInstr = 1.0 / 200000;

    // --- housekeeping ---
    /** Clock interrupts per instruction (100 Hz at ~8 MIPS). */
    double timerPerInstr = 1.0 / 80000;

    /**
     * Nominal full-run instruction count: the paper's benchmarks run
     * 100-200 s on a 16.67-MHz machine. Used to scale simulated
     * service-time measurements to paper-comparable seconds.
     */
    double nominalInstructions = 1.0e9;

    /**
     * Append every behaviour-determining field to an artifact-store
     * fingerprint, in declaration order. Any new field must be added
     * here too — forgetting it would let two different workloads
     * share a cache key (tests/store/test_store.cc pins the scheme).
     */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.str("workload.name", name);
        fp.u64("workload.code_footprint", codeFootprint);
        fp.real("workload.code_skew", codeSkew);
        fp.real("workload.mean_run", meanRun);
        fp.real("workload.mean_iterations", meanIterations);
        fp.real("workload.load_per_instr", loadPerInstr);
        fp.real("workload.store_per_instr", storePerInstr);
        fp.u64("workload.ws_bytes", wsBytes);
        fp.real("workload.ws_skew", wsSkew);
        fp.u64("workload.stack_bytes", stackBytes);
        fp.real("workload.stream_frac_load", streamFracLoad);
        fp.real("workload.stream_frac_store", streamFracStore);
        fp.real("workload.store_burst_mean", storeBurstMean);
        fp.u64("workload.stream_bytes", streamBytes);
        fp.u64("workload.stream_stride", streamStride);
        fp.real("workload.user_other_cpi", userOtherCpi);
        fp.real("workload.kernel_other_cpi", kernelOtherCpi);
        fp.real("workload.syscall_per_instr", syscallPerInstr);
        fp.real("workload.syscall_burst_mean", syscallBurstMean);
        fp.real("workload.syscall_burst_gap", syscallBurstGap);
        fp.u64("workload.syscalls", syscalls.size());
        for (const SyscallMixEntry &e : syscalls)
            e.fingerprint(fp);
        fp.real("workload.frame_per_instr", framePerInstr);
        fp.u64("workload.frame_bytes", frameBytes);
        fp.real("workload.vm_per_instr", vmPerInstr);
        fp.real("workload.timer_per_instr", timerPerInstr);
        fp.real("workload.nominal_instructions", nominalInstructions);
    }
};

/** Identifiers for the paper's benchmark suite (Table 2). */
enum class BenchmarkId
{
    Mpeg,
    Mab,
    Jpeg,
    Ousterhout,
    IOzone,
    VideoPlay,
};

constexpr unsigned numBenchmarks = 6;

/** Calibrated parameters for one benchmark. */
const WorkloadParams &benchmarkParams(BenchmarkId id);

/** All six benchmarks in the paper's reporting order. */
std::vector<BenchmarkId> allBenchmarks();

const char *benchmarkName(BenchmarkId id);

} // namespace oma

#endif // OMA_WORKLOAD_WORKLOAD_HH
