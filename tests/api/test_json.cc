/**
 * @file
 * Strict JSON parser/writer tests (src/api/json).
 *
 * The wire grammar is deliberately narrow — no duplicate keys, no
 * trailing garbage, bounded nesting, raw number tokens preserved —
 * because a request either parses into exactly one AllocationRequest
 * or is refused. These tests pin both the acceptances and the
 * refusals.
 */

#include <gtest/gtest.h>

#include <string>

#include "api/json.hh"

namespace oma::api
{
namespace
{

JsonValue
parseOk(const std::string &text)
{
    JsonValue value;
    std::string error;
    EXPECT_TRUE(parseJson(text, value, error)) << error;
    return value;
}

void
expectReject(const std::string &text)
{
    JsonValue value;
    std::string error;
    EXPECT_FALSE(parseJson(text, value, error)) << text;
    EXPECT_FALSE(error.empty());
}

TEST(ApiJson, ParsesScalars)
{
    EXPECT_EQ(parseOk("null").kind, JsonValue::Kind::Null);
    EXPECT_TRUE(parseOk("true").boolean);
    EXPECT_FALSE(parseOk("false").boolean);
    EXPECT_EQ(parseOk("\"hi\"").string, "hi");
    EXPECT_EQ(parseOk("42").number, "42");
    EXPECT_EQ(parseOk("-0.5e3").number, "-0.5e3");
}

TEST(ApiJson, PreservesRawNumberTokens)
{
    // The raw token carries exact 64-bit seeds that would lose
    // precision through a double.
    const JsonValue v = parseOk("18446744073709551615");
    EXPECT_EQ(v.number, "18446744073709551615");
    std::uint64_t u = 0;
    EXPECT_TRUE(v.asU64(u));
    EXPECT_EQ(u, 18446744073709551615ULL);
}

TEST(ApiJson, U64RejectsNonIntegralTokens)
{
    std::uint64_t u = 0;
    EXPECT_FALSE(parseOk("1.5").asU64(u));
    EXPECT_FALSE(parseOk("1e3").asU64(u));
    EXPECT_FALSE(parseOk("-1").asU64(u));
    // One past max: overflow is an error, not a wrap.
    EXPECT_FALSE(parseOk("18446744073709551616").asU64(u));
    EXPECT_FALSE(parseOk("\"7\"").asU64(u));
}

TEST(ApiJson, RealParsesAndBoundsChecks)
{
    double d = 0.0;
    EXPECT_TRUE(parseOk("0.25").asReal(d));
    EXPECT_DOUBLE_EQ(d, 0.25);
    EXPECT_TRUE(parseOk("-2e-3").asReal(d));
    EXPECT_DOUBLE_EQ(d, -2e-3);
    // Overflows to infinity -> rejected as non-finite.
    EXPECT_FALSE(parseOk("1e999").asReal(d));
    EXPECT_FALSE(parseOk("true").asReal(d));
}

TEST(ApiJson, ParsesNestedStructures)
{
    const JsonValue v =
        parseOk("{\"a\":[1,2,{\"b\":\"c\"}],\"d\":{}}");
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_EQ(a->array[2].find("b")->string, "c");
    EXPECT_EQ(v.find("d")->kind, JsonValue::Kind::Object);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ApiJson, DecodesEscapesAndSurrogatePairs)
{
    EXPECT_EQ(parseOk("\"a\\n\\t\\\\\\\"\"").string, "a\n\t\\\"");
    EXPECT_EQ(parseOk("\"\\u0041\"").string, "A");
    // U+1F600 as a surrogate pair -> 4-byte UTF-8.
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").string,
              "\xf0\x9f\x98\x80");
}

TEST(ApiJson, RejectsMalformedDocuments)
{
    expectReject("");
    expectReject("tru");
    expectReject("01");      // leading zero
    expectReject("1.");      // digits required after the point
    expectReject("+1");      // no leading plus
    expectReject(".5");
    expectReject("1e");      // empty exponent
    expectReject("\"open");  // unterminated string
    expectReject("\"\\x\""); // unknown escape
    expectReject("\"\\ud83d\""); // unpaired high surrogate
    expectReject("\"\\ude00\""); // unpaired low surrogate
    expectReject("\"\x01\"");    // raw control character
    expectReject("[1,]");
    expectReject("[1 2]");
    expectReject("{\"a\":1,}");
    expectReject("{\"a\" 1}");
    expectReject("{a:1}");
    expectReject("1 2");         // trailing content
    expectReject("{} garbage");
}

TEST(ApiJson, RejectsDuplicateKeys)
{
    expectReject("{\"a\":1,\"a\":2}");
}

TEST(ApiJson, BoundsNestingDepth)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    for (int i = 0; i < 100; ++i)
        deep += "]";
    expectReject(deep);
    // A comfortably shallow document still parses.
    std::string ok;
    for (int i = 0; i < 20; ++i)
        ok += "[";
    for (int i = 0; i < 20; ++i)
        ok += "]";
    (void)parseOk(ok);
}

TEST(ApiJson, WriterRoundTripsCanonically)
{
    const std::string doc =
        "{\"a\":[1,2.5,null,true],\"b\":\"x\\ny\",\"c\":{}}";
    const JsonValue v = parseOk(doc);
    EXPECT_EQ(writeJson(v), doc);
    // Writing is idempotent through a reparse.
    EXPECT_EQ(writeJson(parseOk(writeJson(v))), doc);
}

TEST(ApiJson, AppendHelpersEscapeAndFormat)
{
    std::string out;
    appendJsonString(out, "a\"b\\c\nd\x02");
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0002\"");
    out.clear();
    appendJsonU64(out, 18446744073709551615ULL);
    EXPECT_EQ(out, "18446744073709551615");
    out.clear();
    appendJsonReal(out, 0.1);
    EXPECT_EQ(out, "0.1"); // shortest round-trip form
}

} // namespace
} // namespace oma::api
