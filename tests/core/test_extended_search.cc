/**
 * @file
 * Tests for the extended five-component allocation space: the
 * ConfigSpace extension axes enumerate correctly, AllocationSearch
 * ranks victim-cache and L2 organizations alongside the classic grid
 * under the 250,000-rbe budget, stripping the extension axes
 * restores the classic three-component ranking, and the extended
 * scoring loop stays thread-count invariant.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/search.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameAllocations(const std::vector<Allocation> &a,
                      const std::vector<Allocation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(i);
        ASSERT_EQ(a[i].rank, b[i].rank);
        ASSERT_EQ(a[i].tlb.entries, b[i].tlb.entries);
        ASSERT_EQ(a[i].tlb.assoc, b[i].tlb.assoc);
        ASSERT_EQ(a[i].icache.capacityBytes, b[i].icache.capacityBytes);
        ASSERT_EQ(a[i].icache.assoc, b[i].icache.assoc);
        ASSERT_EQ(a[i].dcache.capacityBytes, b[i].dcache.capacityBytes);
        ASSERT_EQ(a[i].victimEntries, b[i].victimEntries);
        ASSERT_EQ(a[i].wbEntries, b[i].wbEntries);
        ASSERT_EQ(a[i].hasL2, b[i].hasL2);
        ASSERT_EQ(a[i].unified, b[i].unified);
        ASSERT_TRUE(sameBits(a[i].cpi, b[i].cpi));
        ASSERT_TRUE(sameBits(a[i].areaRbe, b[i].areaRbe));
    }
}

TEST(ExtendedSearch, DefaultSpaceHasNoExtensions)
{
    const ConfigSpace space;
    EXPECT_FALSE(space.hasExtensions());
    EXPECT_TRUE(space.extensionSlots().empty());
    EXPECT_TRUE(space.victimConfigs().empty());
    EXPECT_TRUE(space.writeBufferConfigs().empty());
    EXPECT_TRUE(space.hierarchyConfigs().empty());
}

TEST(ExtendedSearch, ExtendedSpaceEnumeratesEveryAxis)
{
    const ConfigSpace space = ConfigSpace::extended();
    EXPECT_TRUE(space.hasExtensions());
    // Victim candidates pair every capacity with every buffer depth.
    EXPECT_EQ(space.victimConfigs().size(),
              space.cacheKBytes.size() * space.victimEntries.size());
    EXPECT_EQ(space.writeBufferConfigs().size(),
              space.wbEntries.size());
    // Hierarchies require the combined split-L1 capacity (the pair
    // totals 2*kb) strictly below the L2's.
    std::size_t hier = 0;
    for (std::uint64_t l2kb : space.l2KBytes)
        for (std::uint64_t kb : space.cacheKBytes)
            hier += 2 * kb < l2kb;
    EXPECT_EQ(space.hierarchyConfigs().size(), hier);
    for (const HierarchyParams &p : space.hierarchyConfigs()) {
        EXPECT_TRUE(p.hasL2);
        EXPECT_LT(p.l1i.geom.capacityBytes +
                      p.l1d.geom.capacityBytes,
                  p.l2.geom.capacityBytes);
    }
    // Slots come out in victim, write-buffer, hierarchy order.
    const auto slots = space.extensionSlots();
    ASSERT_EQ(slots.size(), space.victimConfigs().size() +
                  space.writeBufferConfigs().size() + hier);
    std::size_t i = 0;
    for (; i < space.victimConfigs().size(); ++i)
        EXPECT_EQ(slots[i].kind, ComponentKind::Victim);
    for (; i < slots.size() - hier; ++i)
        EXPECT_EQ(slots[i].kind, ComponentKind::WriteBuffer);
    for (; i < slots.size(); ++i)
        EXPECT_EQ(slots[i].kind, ComponentKind::Hierarchy);
}

/** A trimmed extended space measured on one short workload: big
 * enough to put victim, write-buffer and L2 candidates in front of
 * the allocator, small enough for a unit test. */
ComponentCpiTables
measureSmallExtendedTables()
{
    ConfigSpace space;
    space.cacheKBytes = {4, 8};
    space.lineWords = {4};
    space.cacheWays = {1, 2};
    space.tlbEntries = {64};
    space.tlbWays = {1, 2};
    space.victimEntries = {4};
    space.wbEntries = {2};
    space.l2KBytes = {32};

    ComponentSweep sweep(space.cacheGeometries(),
                         space.cacheGeometries(),
                         space.tlbGeometries());
    for (const ComponentSlot &slot : space.extensionSlots())
        sweep.addComponent(slot);
    System system(benchmarkParams(BenchmarkId::Mpeg), OsKind::Mach,
                  42);
    const RecordedTrace trace = system.record(40000);
    std::vector<SweepResult> results;
    results.push_back(sweep.run(trace, 1));
    return ComponentCpiTables::average(
        results, MachineParams::decstation3100());
}

TEST(ExtendedSearch, RanksVictimAndL2OrganizationsWithinBudget)
{
    const ComponentCpiTables tables = measureSmallExtendedTables();
    ASSERT_EQ(tables.victimOptions.size(), 2u);
    ASSERT_EQ(tables.wbOptions.size(), 1u);
    ASSERT_EQ(tables.hierarchyOptions.size(), 2u);

    const AllocationSearch search(AreaModel(), 250000.0);
    const auto ranked = search.rank(tables, 8, 1);
    ASSERT_FALSE(ranked.empty());

    // The paper's budget admits victim-cache and L2 organizations:
    // both kinds must appear in the in-budget ranking.
    bool has_victim = false, has_l2 = false;
    for (const Allocation &a : ranked) {
        EXPECT_LE(a.areaRbe, 250000.0);
        has_victim |= a.victimEntries != 0;
        has_l2 |= a.hasL2;
        if (a.hasL2) {
            // Hierarchy allocations score through hierarchyCpi, not
            // the split icache/dcache tables.
            EXPECT_TRUE(sameBits(a.icacheCpi, 0.0));
            EXPECT_TRUE(sameBits(a.dcacheCpi, 0.0));
        }
        // The write-buffer axis was swept, so every allocation
        // carries a depth.
        EXPECT_EQ(a.wbEntries, 2u);
    }
    EXPECT_TRUE(has_victim);
    EXPECT_TRUE(has_l2);

    // The extended scoring loop shards by TLB geometry exactly like
    // the classic one: identical output at any thread count.
    expectSameAllocations(ranked, search.rank(tables, 8, 4));
}

TEST(ExtendedSearch, StrippingExtensionsRestoresClassicRanking)
{
    const ComponentCpiTables tables = measureSmallExtendedTables();
    const AllocationSearch search(AreaModel(), 250000.0);
    const auto extended = search.rank(tables, 8, 1);

    ComponentCpiTables classic = tables;
    classic.victimOptions.clear();
    classic.wbOptions.clear();
    classic.hierarchyOptions.clear();
    const auto stripped = search.rank(classic, 8, 1);

    // The stripped ranking is the paper's three-component search:
    // no extension fields anywhere, and strictly fewer candidates.
    ASSERT_FALSE(stripped.empty());
    EXPECT_LT(stripped.size(), extended.size());
    for (const Allocation &a : stripped) {
        EXPECT_FALSE(a.hasExtension());
        EXPECT_EQ(a.wbEntries, 0u);
        EXPECT_TRUE(sameBits(a.wbCpi, 0.0));
        EXPECT_TRUE(sameBits(a.hierarchyCpi, 0.0));
    }

    // Extension axes never perturb classic scores: every stripped
    // allocation reappears in the extended ranking with the swept
    // write buffer's depth and stall CPI added on top.
    const double wb_cpi = tables.wbOptions.front().cpi;
    for (std::size_t i = 0; i < std::min<std::size_t>(stripped.size(),
                                                      50);
         ++i) {
        const Allocation &s = stripped[i];
        bool found = false;
        for (const Allocation &e : extended) {
            if (e.hasL2 || e.unified || e.victimEntries != 0)
                continue;
            if (e.tlb.entries == s.tlb.entries &&
                e.tlb.assoc == s.tlb.assoc &&
                e.icache.capacityBytes == s.icache.capacityBytes &&
                e.icache.assoc == s.icache.assoc &&
                e.dcache.capacityBytes == s.dcache.capacityBytes &&
                e.dcache.assoc == s.dcache.assoc) {
                EXPECT_TRUE(sameBits(e.cpi, s.cpi + wb_cpi));
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "stripped rank " << s.rank
                           << " missing from the extended ranking";
    }
}

} // namespace
} // namespace oma
