# Empty dependencies file for oma_tlb.
# This may be replaced when dependencies are built.
