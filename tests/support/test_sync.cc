/**
 * @file
 * Tests for the annotated sync primitives and ranked-mutex checking.
 *
 * The rank death tests document the deterministic-deadlock-detection
 * contract: an acquisition-order inversion is fatal on its first
 * execution, single-threaded, no interleaving required. They require
 * rank checking to be compiled in (OMA_LOCK_RANK_CHECKS, the build
 * default) and are skipped otherwise.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/sync.hh"

namespace oma
{
namespace
{

TEST(Sync, LockGuardProvidesMutualExclusion)
{
    Mutex m;
    int counter = 0;
    std::vector<std::thread> threads;
    constexpr int kThreads = 4;
    constexpr int kIters = 10000;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                LockGuard lock(m);
                ++counter;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Sync, TryLockReportsContention)
{
    Mutex m;
    {
        LockGuard lock(m);
        std::thread other([&] {
            // From another thread the held mutex must not be
            // acquirable.
            EXPECT_FALSE(m.tryLock());
        });
        other.join();
    }
    // Uncontended, tryLock acquires and the caller must release.
    ASSERT_TRUE(m.tryLock());
    m.unlock(); // oma-lint: allow(lock-audit): releasing the
                // tryLock acquisition this test just made.
}

TEST(Sync, CondVarWakesWaiter)
{
    Mutex m;
    CondVar cv;
    bool ready = false;
    std::thread waiter([&] {
        LockGuard lock(m);
        while (!ready)
            cv.wait(lock);
    });
    {
        LockGuard lock(m);
        ready = true;
    }
    cv.notifyAll();
    waiter.join();
}

#if OMA_LOCK_RANK_CHECKS

TEST(SyncRank, IncreasingOrderIsAccepted)
{
    Mutex outer(lockrank::obsProgress);
    Mutex middle(lockrank::storeStats);
    Mutex leaf(lockrank::threadPool);
    LockGuard a(outer);
    LockGuard b(middle);
    LockGuard c(leaf);
}

TEST(SyncRank, ReleaseOrderIsUnconstrained)
{
    // Ranks constrain acquisition order only; scopes may unwind in
    // any order (heap guards released outer-first here).
    Mutex outer(lockrank::storeStats);
    Mutex leaf(lockrank::threadPool);
    auto *a = new LockGuard(outer);
    auto *b = new LockGuard(leaf);
    delete a;
    delete b;
    // The ranks were fully released: re-acquiring both must pass.
    LockGuard c(outer);
    LockGuard d(leaf);
}

TEST(SyncRank, UnrankedMutexesAreOrderExempt)
{
    Mutex ranked(lockrank::threadPool);
    Mutex plain; // lockrank::none
    LockGuard a(ranked);
    LockGuard b(plain); // none after a rank: fine.
}

TEST(SyncRank, ReacquisitionAfterReleaseIsClean)
{
    Mutex m(lockrank::threadPool);
    for (int i = 0; i < 3; ++i) {
        LockGuard lock(m);
    }
}

TEST(SyncRankDeath, InversionIsFatal)
{
    Mutex outer(lockrank::storeStats);
    Mutex leaf(lockrank::threadPool);
    EXPECT_EXIT(
        {
            LockGuard a(leaf);
            LockGuard b(outer); // 20 after 30: inversion.
        },
        testing::ExitedWithCode(1), "lock-rank inversion");
}

TEST(SyncRankDeath, EqualRankIsFatal)
{
    // Strictly increasing: two mutexes sharing a rank can still
    // deadlock against each other, so equal ranks are an inversion.
    Mutex a(lockrank::storeStats);
    Mutex b(lockrank::storeStats);
    EXPECT_EXIT(
        {
            LockGuard first(a);
            LockGuard second(b);
        },
        testing::ExitedWithCode(1), "lock-rank inversion");
}

TEST(SyncRankDeath, TryLockInversionIsFatal)
{
    // tryLock could not deadlock here (it would just fail), but it
    // is rank-checked like lock() so the latent inversion surfaces.
    Mutex outer(lockrank::obsProgress);
    Mutex leaf(lockrank::threadPool);
    EXPECT_EXIT(
        {
            LockGuard a(leaf);
            (void)outer.tryLock();
        },
        testing::ExitedWithCode(1), "lock-rank inversion");
}

TEST(SyncRank, RankStateIsPerThread)
{
    // A rank held on this thread must not constrain another thread.
    Mutex leaf(lockrank::threadPool);
    Mutex outer(lockrank::obsProgress);
    LockGuard a(leaf);
    std::thread other([&] { LockGuard b(outer); });
    other.join();
}

TEST(SyncRank, TreeWideOrderIsAcquirable)
{
    // The documented tree-wide order (docs/STATIC_ANALYSIS.md):
    // Progress tick under a store-stats bump under a pool job is the
    // deepest legal nesting and must be clean.
    Mutex progress(lockrank::obsProgress);
    Mutex store(lockrank::storeStats);
    Mutex pool(lockrank::threadPool);
    LockGuard a(progress);
    LockGuard b(store);
    LockGuard c(pool);
}

#endif // OMA_LOCK_RANK_CHECKS

} // namespace
} // namespace oma
