/**
 * @file
 * Tests for silent prefetch fills and the machine's next-line
 * instruction prefetcher.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "machine/machine.hh"
#include "tlb/mips_va.hh"

namespace oma
{
namespace
{

CacheParams
params(std::uint64_t capacity, std::uint64_t line, std::uint64_t ways)
{
    CacheParams p;
    p.geom = CacheGeometry(capacity, line, ways);
    return p;
}

TEST(CachePrefetch, FillsWithoutCountingStats)
{
    Cache cache(params(1024, 16, 2));
    cache.prefetch(0x1000);
    EXPECT_EQ(cache.stats().totalAccesses(), 0u);
    EXPECT_EQ(cache.stats().totalMisses(), 0u);
    EXPECT_TRUE(cache.probe(0x1000));
    // The subsequent demand access hits.
    EXPECT_TRUE(cache.access(0x1000, RefKind::IFetch));
}

TEST(CachePrefetch, RefreshesLruOnResidentLine)
{
    Cache cache(params(32, 16, 2)); // one set, two ways
    cache.access(0x000, RefKind::Load); // A
    cache.access(0x100, RefKind::Load); // B (A is LRU)
    cache.prefetch(0x000);              // refresh A
    cache.access(0x200, RefKind::Load); // evicts B now
    EXPECT_TRUE(cache.probe(0x000));
    EXPECT_FALSE(cache.probe(0x100));
}

TEST(CachePrefetch, CanPollute)
{
    Cache cache(params(32, 16, 1)); // 2 sets, direct-mapped
    cache.access(0x000, RefKind::Load);
    cache.prefetch(0x100); // same set: evicts the demand line
    EXPECT_FALSE(cache.probe(0x000));
    EXPECT_TRUE(cache.probe(0x100));
}

MemRef
fetch(std::uint64_t addr)
{
    MemRef r;
    r.vaddr = kseg0Base + addr;
    r.paddr = addr;
    r.kind = RefKind::IFetch;
    r.mode = Mode::Kernel;
    r.mapped = false;
    return r;
}

TEST(MachinePrefetch, SequentialStreamsMissHalfAsOften)
{
    MachineParams base = MachineParams::decstation3100();
    base.icache.geom = CacheGeometry::fromWords(4 * 1024, 4, 1);
    MachineParams with = base;
    with.iPrefetchNextLine = true;

    Machine plain(base), prefetching(with);
    // A long, purely sequential fetch stream (cold every line).
    for (std::uint64_t i = 0; i < 40000; ++i) {
        plain.observe(fetch(0x100000 + i * 4));
        prefetching.observe(fetch(0x100000 + i * 4));
    }
    EXPECT_LT(prefetching.stalls().icacheStall,
              (plain.stalls().icacheStall * 6) / 10);
}

TEST(MachinePrefetch, NoEffectWhenDisabled)
{
    MachineParams base = MachineParams::decstation3100();
    Machine a(base), b(base);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        a.observe(fetch(i * 4));
        b.observe(fetch(i * 4));
    }
    EXPECT_EQ(a.stalls().icacheStall, b.stalls().icacheStall);
}

TEST(MachinePrefetch, HitsAreUnaffected)
{
    MachineParams with = MachineParams::decstation3100();
    with.iPrefetchNextLine = true;
    Machine machine(with);
    machine.observe(fetch(0x0)); // miss, prefetches line 1
    const std::uint64_t after_miss = machine.stalls().icacheStall;
    machine.observe(fetch(0x0)); // hit: no new stall, no prefetch
    EXPECT_EQ(machine.stalls().icacheStall, after_miss);
}

} // namespace
} // namespace oma
