/**
 * @file
 * Implementation of the error-reporting helpers.
 */

#include "support/logging.hh"

namespace oma
{

void
logMessage(const char *severity, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", severity, msg.c_str());
    std::fflush(stderr);
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage("warn", msg);
}

void
inform(const std::string &msg)
{
    logMessage("info", msg);
}

} // namespace oma
