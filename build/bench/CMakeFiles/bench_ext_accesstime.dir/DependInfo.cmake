
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_accesstime.cc" "bench/CMakeFiles/bench_ext_accesstime.dir/bench_ext_accesstime.cc.o" "gcc" "bench/CMakeFiles/bench_ext_accesstime.dir/bench_ext_accesstime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/oma_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/oma_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/oma_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/oma_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/oma_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/oma_area.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
