/**
 * @file
 * Tests for the search strategies over the five-component space:
 * the exhaustive strategy reproduces AllocationSearch::rank bitwise
 * (pruning on or off, any thread count), cost-bound pruning never
 * discards an in-budget candidate, and the annealing strategy
 * recovers the exhaustive winner deterministically per seed while
 * evaluating a small fraction of the grid.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/search_strategy.hh"

namespace oma
{
namespace
{

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameAllocation(const Allocation &a, const Allocation &b)
{
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.tlb.entries, b.tlb.entries);
    EXPECT_EQ(a.tlb.assoc, b.tlb.assoc);
    EXPECT_EQ(a.icache.capacityBytes, b.icache.capacityBytes);
    EXPECT_EQ(a.icache.lineBytes, b.icache.lineBytes);
    EXPECT_EQ(a.icache.assoc, b.icache.assoc);
    EXPECT_EQ(a.dcache.capacityBytes, b.dcache.capacityBytes);
    EXPECT_EQ(a.dcache.lineBytes, b.dcache.lineBytes);
    EXPECT_EQ(a.dcache.assoc, b.dcache.assoc);
    EXPECT_EQ(a.victimEntries, b.victimEntries);
    EXPECT_EQ(a.wbEntries, b.wbEntries);
    EXPECT_EQ(a.hasL2, b.hasL2);
    EXPECT_EQ(a.unified, b.unified);
    EXPECT_EQ(a.l2.capacityBytes, b.l2.capacityBytes);
    EXPECT_TRUE(sameBits(a.cpi, b.cpi));
    EXPECT_TRUE(sameBits(a.areaRbe, b.areaRbe));
    EXPECT_TRUE(sameBits(a.tlbCpi, b.tlbCpi));
    EXPECT_TRUE(sameBits(a.icacheCpi, b.icacheCpi));
    EXPECT_TRUE(sameBits(a.dcacheCpi, b.dcacheCpi));
    EXPECT_TRUE(sameBits(a.hierarchyCpi, b.hierarchyCpi));
    EXPECT_TRUE(sameBits(a.wbCpi, b.wbCpi));
}

void
expectSameAllocations(const std::vector<Allocation> &a,
                      const std::vector<Allocation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameAllocation(a[i], b[i]);
    }
}

/** The classic grid with a clean monotone synthetic benefit model.
 * Unlike the allocation-search fixture, every geometry dimension
 * (capacity, line, ways, TLB ways) contributes to the CPI, so the
 * ranking has a unique winner and "the annealer recovers the
 * exhaustive winner" is a meaningful field-for-field comparison
 * rather than a lottery between tied co-optima. */
ComponentCpiTables
syntheticTables()
{
    ConfigSpace space;
    ComponentCpiTables tables;
    tables.tlbGeoms = space.tlbGeometries();
    tables.icacheGeoms = space.cacheGeometries();
    tables.dcacheGeoms = space.cacheGeometries();
    tables.baseCpi = 1.2;
    auto cache_cpi = [](const CacheGeometry &g) {
        return 2000.0 / double(g.capacityBytes) +
            0.01 / double(g.assoc) + 0.07 / double(g.lineBytes);
    };
    for (const auto &g : tables.icacheGeoms)
        tables.icacheCpi.push_back(cache_cpi(g));
    for (const auto &g : tables.dcacheGeoms)
        tables.dcacheCpi.push_back(0.5 * cache_cpi(g));
    for (const auto &g : tables.tlbGeoms)
        tables.tlbCpi.push_back(10.0 / double(g.entries) +
                                0.013 / double(g.ways()));
    return tables;
}

/** The classic grid plus synthetic victim / write-buffer / L2
 * options, so every extension axis is in front of the strategies
 * without paying for a simulation in a unit test. */
ComponentCpiTables
syntheticExtendedTables()
{
    const ConfigSpace space = ConfigSpace::extended();
    ComponentCpiTables tables = syntheticTables();
    for (const VictimParams &p : space.victimConfigs()) {
        tables.victimOptions.push_back(
            {p, 1800.0 / double(p.l1.capacityBytes) +
                    0.05 / double(p.entries)});
    }
    for (const WriteBufferParams &p : space.writeBufferConfigs()) {
        tables.wbOptions.push_back({p, 0.2 / double(p.entries)});
    }
    for (const HierarchyParams &p : space.hierarchyConfigs()) {
        tables.hierarchyOptions.push_back(
            {p, 1500.0 / double(p.l1i.geom.capacityBytes +
                                p.l2.geom.capacityBytes)});
    }
    return tables;
}

constexpr double kBudget = 250000.0;

TEST(SearchSpace, CountsTheFullGrid)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    // 17 TLBs x 120 I-caches x 120 D-caches x 1 (no write-buffer
    // sweep), no hierarchy options.
    EXPECT_EQ(space.candidateCount(), 244800u);
    EXPECT_EQ(space.wbOptions().size(), 1u);
    EXPECT_TRUE(space.hierOptions().empty());
}

TEST(SearchSpace, MaterializeMatchesExhaustiveEmission)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    const auto ranked = ExhaustiveStrategy().search(space).allocations;
    ASSERT_FALSE(ranked.empty());
    // Every in-budget candidate the space evaluates in-budget must
    // appear exactly once, and the best one must beat them all.
    EXPECT_TRUE(space.inBudget(SearchCandidate{false, 0, 0, 0, 0}));
}

TEST(ExhaustiveStrategy, MatchesAllocationSearchRankBitwise)
{
    const ComponentCpiTables tables = syntheticTables();
    const AllocationSearch search(AreaModel(), kBudget);
    const auto legacy = search.rank(tables);
    const SearchSpace space(tables, AreaModel(), kBudget);
    expectSameAllocations(
        legacy, ExhaustiveStrategy(true).search(space).allocations);
    expectSameAllocations(
        legacy, ExhaustiveStrategy(false).search(space).allocations);
}

TEST(ExhaustiveStrategy, ExtendedSpaceMatchesRankBitwise)
{
    const ComponentCpiTables tables = syntheticExtendedTables();
    const AllocationSearch search(AreaModel(), kBudget);
    const auto legacy = search.rank(tables);
    const SearchSpace space(tables, AreaModel(), kBudget);
    expectSameAllocations(
        legacy, ExhaustiveStrategy(true).search(space).allocations);
    expectSameAllocations(
        legacy, ExhaustiveStrategy(false).search(space).allocations);
}

TEST(ExhaustiveStrategy, ThreadCountInvariant)
{
    const ComponentCpiTables tables = syntheticExtendedTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    const ExhaustiveStrategy strategy(true);
    expectSameAllocations(strategy.search(space, 1).allocations,
                          strategy.search(space, 4).allocations);
}

TEST(ExhaustiveStrategy, PruningOnlySkipsOverBudgetCandidates)
{
    // Property: for a spread of budgets (some tight enough to prune
    // whole subgrids) the ranking is bitwise identical with pruning
    // on and off, and pruning never costs extra evaluations.
    const ComponentCpiTables tables = syntheticExtendedTables();
    for (double budget : {30000.0, 60000.0, 120000.0, 250000.0}) {
        SCOPED_TRACE(budget);
        const SearchSpace space(tables, AreaModel(), budget);
        const auto pruned = ExhaustiveStrategy(true).search(space);
        const auto full = ExhaustiveStrategy(false).search(space);
        expectSameAllocations(pruned.allocations, full.allocations);
        EXPECT_EQ(pruned.candidates, full.candidates);
        EXPECT_LE(pruned.evaluations, full.evaluations);
    }
    // A tight budget must actually exercise the floor rejections.
    const SearchSpace tight(tables, AreaModel(), 30000.0);
    EXPECT_GT(ExhaustiveStrategy(true).search(tight).prunedSubspaces,
              0u);
}

TEST(ExhaustiveStrategy, LooseBudgetEvaluatesEverything)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), 1e12);
    const auto result = ExhaustiveStrategy(true).search(space);
    EXPECT_EQ(result.evaluations, result.candidates);
    EXPECT_EQ(result.prunedSubspaces, 0u);
    EXPECT_EQ(result.allocations.size(), result.candidates);
}

TEST(AnnealingStrategy, RecoversExhaustiveWinnerOnClassicGrid)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    const auto exhaustive = ExhaustiveStrategy().search(space);
    ASSERT_FALSE(exhaustive.allocations.empty());
    const auto annealed = AnnealingStrategy().search(space);
    ASSERT_EQ(annealed.allocations.size(), 1u);
    expectSameAllocation(annealed.allocations.front(),
                         exhaustive.allocations.front());
    // The whole point: well under a tenth of the grid evaluated.
    EXPECT_LT(annealed.evaluations, annealed.candidates / 10);
    EXPECT_GT(annealed.evaluations, 0u);
}

TEST(AnnealingStrategy, RecoversExhaustiveWinnerOnExtendedGrid)
{
    const ComponentCpiTables tables = syntheticExtendedTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    const auto exhaustive = ExhaustiveStrategy().search(space);
    ASSERT_FALSE(exhaustive.allocations.empty());
    const auto annealed = AnnealingStrategy().search(space);
    ASSERT_EQ(annealed.allocations.size(), 1u);
    expectSameAllocation(annealed.allocations.front(),
                         exhaustive.allocations.front());
    EXPECT_LT(annealed.evaluations, annealed.candidates / 10);
}

TEST(AnnealingStrategy, DeterministicAcrossThreadsAndRuns)
{
    const ComponentCpiTables tables = syntheticExtendedTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    AnnealingConfig config;
    config.seed = 7;
    const AnnealingStrategy strategy(config);
    const auto serial = strategy.search(space, 1);
    const auto wide = strategy.search(space, 4);
    const auto again = strategy.search(space, 1);
    expectSameAllocations(serial.allocations, wide.allocations);
    expectSameAllocations(serial.allocations, again.allocations);
    // The trajectory (not just the answer) is a pure function of
    // the seed: the evaluation count must agree too.
    EXPECT_EQ(serial.evaluations, wide.evaluations);
    EXPECT_EQ(serial.evaluations, again.evaluations);
}

TEST(AnnealingStrategy, DifferentSeedsConvergeToTheSameWinner)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), kBudget);
    const auto reference = AnnealingStrategy().search(space);
    ASSERT_EQ(reference.allocations.size(), 1u);
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE(seed);
        AnnealingConfig config;
        config.seed = seed;
        const auto result = AnnealingStrategy(config).search(space);
        ASSERT_EQ(result.allocations.size(), 1u);
        expectSameAllocation(result.allocations.front(),
                             reference.allocations.front());
    }
}

TEST(AnnealingStrategy, HonorsAssociativityRestriction)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), kBudget, 2);
    const auto exhaustive = ExhaustiveStrategy().search(space);
    const auto annealed = AnnealingStrategy().search(space);
    ASSERT_EQ(annealed.allocations.size(), 1u);
    const Allocation &best = annealed.allocations.front();
    EXPECT_LE(best.icache.assoc, 2u);
    EXPECT_LE(best.dcache.assoc, 2u);
    expectSameAllocation(best, exhaustive.allocations.front());
}

TEST(AnnealingStrategy, PruningNeverDiscardsTheOptimum)
{
    // Tight budgets prune many options from the proposal
    // distribution; the annealer must still land on the exhaustive
    // winner.
    const ComponentCpiTables tables = syntheticExtendedTables();
    for (double budget : {30000.0, 60000.0, 120000.0}) {
        SCOPED_TRACE(budget);
        const SearchSpace space(tables, AreaModel(), budget);
        const auto exhaustive = ExhaustiveStrategy().search(space);
        ASSERT_FALSE(exhaustive.allocations.empty());
        const auto annealed = AnnealingStrategy().search(space);
        ASSERT_EQ(annealed.allocations.size(), 1u);
        expectSameAllocation(annealed.allocations.front(),
                             exhaustive.allocations.front());
        EXPECT_GT(annealed.prunedSubspaces, 0u);
    }
}

TEST(AnnealingStrategy, EmptyWhenNothingFits)
{
    const ComponentCpiTables tables = syntheticTables();
    const SearchSpace space(tables, AreaModel(), 1.0);
    EXPECT_TRUE(ExhaustiveStrategy().search(space).allocations.empty());
    const auto annealed = AnnealingStrategy().search(space);
    EXPECT_TRUE(annealed.allocations.empty());
    EXPECT_EQ(annealed.evaluations, 0u);
    EXPECT_GT(annealed.prunedSubspaces, 0u);
}

TEST(SearchSpaceDeath, RejectsSetAssociativeVictimL1)
{
    ComponentCpiTables tables = syntheticTables();
    VictimParams p;
    p.l1 = CacheGeometry::fromWords(8 * 1024, 4, 2); // two ways
    p.entries = 4;
    tables.victimOptions.push_back({p, 0.5});
    EXPECT_EXIT(SearchSpace(tables, AreaModel(), kBudget),
                testing::ExitedWithCode(1), "direct-mapped");
}

TEST(SearchSpaceDeath, RejectsUnifiedHierarchyWithL2)
{
    ComponentCpiTables tables = syntheticTables();
    HierarchyParams p;
    p.l1i.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    p.unified = true;
    p.hasL2 = true;
    p.l2.geom = CacheGeometry::fromWords(64 * 1024, 8, 4);
    tables.hierarchyOptions.push_back({p, 0.5});
    EXPECT_EXIT(SearchSpace(tables, AreaModel(), kBudget),
                testing::ExitedWithCode(1), "unified");
}

TEST(SearchSpaceDeath, RankRejectsContradictoryTablesToo)
{
    // The legacy entry point funnels through SearchSpace, so the
    // same validation guards AllocationSearch::rank (before this
    // guard the L2 of a unified+L2 option was priced at zero area).
    ComponentCpiTables tables = syntheticTables();
    HierarchyParams p;
    p.l1i.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    p.unified = true;
    p.hasL2 = true;
    p.l2.geom = CacheGeometry::fromWords(64 * 1024, 8, 4);
    tables.hierarchyOptions.push_back({p, 0.5});
    const AllocationSearch search(AreaModel(), kBudget);
    EXPECT_EXIT((void)search.rank(tables),
                testing::ExitedWithCode(1), "unified");
}

} // namespace
} // namespace oma
