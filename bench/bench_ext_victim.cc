/**
 * @file
 * Extension: victim caches vs set associativity under access-time
 * pressure. Table 7 restricts caches to 1-/2-way because 4-/8-way
 * arrays may not fit the cycle time; a Jouppi victim buffer is the
 * classic third option — direct-mapped access time, a few CAM
 * entries of area, and much of 2-way's conflict-miss coverage. This
 * bench compares, at the I-cache sizes Table 7 cares about:
 * direct-mapped, direct-mapped + {2,4,8}-entry victim buffer, and
 * 2-way set-associative, on suite-average Mach instruction streams.
 */

#include <iostream>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "cache/cache.hh"
#include "cache/victim.hh"
#include "support/table.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

struct Row
{
    std::uint64_t missesDm = 0;
    std::uint64_t missesV2 = 0;
    std::uint64_t missesV4 = 0;
    std::uint64_t missesV8 = 0;
    std::uint64_t misses2w = 0;
    std::uint64_t fetches = 0;
};

Row
measure(std::uint64_t kb, std::uint64_t refs)
{
    Row row;
    for (BenchmarkId id : allBenchmarks()) {
        System system(benchmarkParams(id), OsKind::Mach, 42);
        const CacheGeometry dm(kb * 1024, 16, 1);
        VictimCache v0(dm, 0), v2(dm, 2), v4(dm, 4), v8(dm, 8);
        CacheParams p2;
        p2.geom = CacheGeometry(kb * 1024, 16, 2);
        Cache two_way(p2);
        MemRef ref;
        for (std::uint64_t i = 0; i < refs; ++i) {
            system.next(ref);
            if (!ref.isFetch())
                continue;
            ++row.fetches;
            row.missesDm += (v0.access(ref.paddr) == 2);
            row.missesV2 += (v2.access(ref.paddr) == 2);
            row.missesV4 += (v4.access(ref.paddr) == 2);
            row.missesV8 += (v8.access(ref.paddr) == 2);
            row.misses2w += !two_way.access(ref.paddr, ref.kind);
        }
    }
    return row;
}

std::string
ratio(std::uint64_t misses, std::uint64_t fetches)
{
    return fmtFixed(double(misses) / double(fetches), 4);
}

} // namespace

int
main()
{
    omabench::banner("Extension: victim buffers vs 2-way set "
                     "associativity for the I-cache (Mach suite "
                     "average, 4-word lines)",
                     "Table 7's associativity restriction");

    omabench::BenchReport report("ext_victim");
    AreaModel area;
    const std::uint64_t refs = omabench::benchReferences() / 2;

    TextTable table({"I-cache", "DM", "DM + V2", "DM + V4", "DM + V8",
                     "2-way"});
    for (std::uint64_t kb : {4, 8, 16, 32}) {
        const Row row = measure(kb, refs);
        report.addReferences(refs * numBenchmarks);
        const std::string slug =
            "victim/" + std::to_string(kb) + "kb";
        report.metrics().add(slug + "/fetches", row.fetches);
        report.metrics().add(slug + "/misses_dm", row.missesDm);
        report.metrics().add(slug + "/misses_v8", row.missesV8);
        report.metrics().add(slug + "/misses_2w", row.misses2w);
        table.addRow({fmtKBytes(kb * 1024),
                      ratio(row.missesDm, row.fetches),
                      ratio(row.missesV2, row.fetches),
                      ratio(row.missesV4, row.fetches),
                      ratio(row.missesV8, row.fetches),
                      ratio(row.misses2w, row.fetches)});
    }
    table.print(std::cout);

    std::cout << "\nArea context (MQF): an 8-entry victim buffer of "
                 "16-B lines costs ~"
              << fmtGrouped(std::uint64_t(
                     area.camArrayArea(8, 26) +
                     area.sramArrayArea(8, 16 * 8)))
              << " rbe, versus "
              << fmtGrouped(std::uint64_t(
                     area.cacheArea(CacheGeometry(16 * 1024, 16, 2)) -
                     area.cacheArea(CacheGeometry(16 * 1024, 16, 1))))
              << " rbe to take a 16-KB cache from 1-way to 2-way — "
                 "and the victim buffer keeps the direct-mapped "
                 "access time (see bench_ext_accesstime).\n"
                 "Honest finding: on these streams the buffer "
                 "recovers almost nothing. A multiple-API OS's "
                 "conflicts are broad code overlays — whole RPC "
                 "paths, server bodies and application loops "
                 "colliding across many sets at once — not the "
                 "pointwise, bursty conflicts Jouppi's buffer "
                 "absorbs (the unit tests demonstrate it does absorb "
                 "those). Associativity or capacity, as the paper's "
                 "Tables 6/7 allocate, is what actually helps; a "
                 "victim buffer is not a shortcut around Table 7's "
                 "access-time dilemma.\n";
    return 0;
}
