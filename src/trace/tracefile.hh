/**
 * @file
 * Binary trace-file format (reader and writer).
 *
 * Records are fixed-size little-endian packs so traces captured from
 * the synthetic workload generator can be stored and replayed exactly.
 * The header carries a magic, a format version and the record count.
 */

#ifndef OMA_TRACE_TRACEFILE_HH
#define OMA_TRACE_TRACEFILE_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/source.hh"

namespace oma
{

/** On-disk header of a trace file. */
struct TraceFileHeader
{
    static constexpr std::uint64_t magicValue = 0x454341525441
        /* "ATRACE" */;
    static constexpr std::uint32_t currentVersion = 1;

    std::uint64_t magic = magicValue;
    std::uint32_t version = currentVersion;
    std::uint32_t reserved = 0;
    std::uint64_t recordCount = 0;
};

/**
 * Streams MemRef records to a file. The record count in the header is
 * patched on close(), so a writer must be close()d (or destroyed) for
 * the file to be valid.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; truncates any existing file. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void put(const MemRef &ref) override;

    /** Flush, patch the header and close the file. */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return _count; }

  private:
    std::ofstream _out;
    std::uint64_t _count = 0;
    bool _open = false;
};

/** Replays a trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; calls fatal() on malformed files. */
    explicit TraceFileReader(const std::string &path);

    bool next(MemRef &ref) override;

    /** Total records according to the header. */
    std::uint64_t count() const { return _header.recordCount; }

  private:
    std::ifstream _in;
    TraceFileHeader _header;
    std::uint64_t _read = 0;
};

} // namespace oma

#endif // OMA_TRACE_TRACEFILE_HH
