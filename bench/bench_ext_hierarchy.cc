/**
 * @file
 * Extension: organizational alternatives Table 1 exhibits but the
 * paper does not search — unified L1 caches (i486, PowerPC 601
 * style) and split L1s backed by an on-chip L2 (where the paper
 * predicts high-end parts will spend extra memory). Each
 * organization is sized to roughly the same MQF area and rides the
 * suite sweep as one hierarchy component slot (core/component.hh)
 * under both OS models.
 */

#include <iostream>
#include <iterator>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "cache/hierarchy.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

struct Organization
{
    const char *name;
    HierarchyParams params;
};

CacheParams
cache(std::uint64_t kb, std::uint64_t words, std::uint64_t ways)
{
    CacheParams p;
    p.geom = CacheGeometry::fromWords(kb * 1024, words, ways);
    return p;
}

Organization
org(const char *name, bool unified, CacheParams l1i, CacheParams l1d,
    CacheParams l2, bool has_l2)
{
    Organization o;
    o.name = name;
    o.params.l1i = l1i;
    o.params.l1d = l1d;
    o.params.l2 = l2;
    o.params.hasL2 = has_l2;
    o.params.unified = unified;
    return o;
}

double
areaOf(const HierarchyParams &p)
{
    AreaModel model;
    double rbe = model.cacheArea(p.l1i.geom);
    if (!p.unified)
        rbe += model.cacheArea(p.l1d.geom);
    if (p.hasL2)
        rbe += model.cacheArea(p.l2.geom);
    return rbe;
}

} // namespace

int
main()
{
    omabench::banner("Extension: unified L1s and on-chip L2s at "
                     "roughly equal die area",
                     "Table 1's organizational alternatives");

    const Organization orgs[] = {
        org("split 16-KB I + 8-KB D (2-way, 4w)", false,
            cache(16, 4, 2), cache(8, 4, 2), cache(64, 8, 4), false),
        org("unified 32-KB (2-way, 4w)", true, cache(32, 4, 2),
            cache(8, 4, 2), cache(64, 8, 4), false),
        org("unified 32-KB (8-way, 16w, PPC601-ish)", true,
            cache(32, 16, 8), cache(8, 4, 2), cache(64, 8, 4), false),
        org("split 8-KB I + 4-KB D + 16-KB L2 (8w lines)", false,
            cache(8, 4, 2), cache(4, 4, 2), cache(16, 8, 4), true),
        org("split 4-KB I + 2-KB D + 32-KB L2 (8w lines)", false,
            cache(4, 4, 2), cache(2, 4, 2), cache(32, 8, 4), true),
    };

    omabench::BenchReport report("ext_hierarchy");
    omabench::SweepSuiteSpec spec;
    for (const Organization &o : orgs)
        spec.components.push_back(ComponentSlot::hierarchy(o.params));
    spec.progressLabel = "hierarchy sweep";
    const auto runs = omabench::runSweepSuite(spec, &report);

    TextTable table({"Organization", "MQF area (rbes)",
                     "Ultrix cache CPI", "Mach cache CPI"});
    for (std::size_t i = 0; i < std::size(orgs); ++i) {
        // Suite-average hierarchy stall CPI per OS (runs are in spec
        // order: Ultrix first, Mach second).
        double cpi[2] = {0.0, 0.0};
        for (std::size_t o = 0; o < runs.size(); ++o) {
            for (const SweepResult &r : runs[o].results)
                cpi[o] += r.hierarchy(i).cpi();
            cpi[o] /= double(runs[o].results.size());
        }
        const double rbe = areaOf(orgs[i].params);
        const std::string slug = "hierarchy/org" + std::to_string(i);
        report.metrics().add("hierarchy/organizations");
        report.metrics().set(slug + "/area_rbe", rbe);
        report.metrics().set(slug + "/ultrix_cache_cpi", cpi[0]);
        report.metrics().set(slug + "/mach_cache_cpi", cpi[1]);
        table.addRow({orgs[i].name, fmtGrouped(std::uint64_t(rbe)),
                      fmtFixed(cpi[0], 3), fmtFixed(cpi[1], 3)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading guide: the unified organizations pay a port "
           "conflict on every data reference and suffer code/data "
           "cross-interference — which a multiple-API OS, whose "
           "service code floods the cache, amplifies. Backing small "
           "split L1s with an L2 recovers much of a large split "
           "pair's performance at similar area, supporting the "
           "paper's expectation that extra on-chip memory beyond the "
           "primaries belongs in a second level.\n";
    return 0;
}
