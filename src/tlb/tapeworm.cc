/**
 * @file
 * Implementation of Tapeworm and the FA TLB size sweep.
 */

#include "tlb/tapeworm.hh"

#include "support/logging.hh"

namespace oma
{

Tapeworm::Tapeworm(const std::vector<TlbParams> &configs,
                   const TlbPenalties &penalties)
{
    fatalIf(configs.empty(), "Tapeworm needs at least one configuration");
    _mmus.reserve(configs.size());
    for (const auto &config : configs)
        _mmus.emplace_back(config, penalties);
}

void
Tapeworm::observe(const MemRef &ref)
{
    for (auto &mmu : _mmus)
        mmu.translate(ref);
}

void
Tapeworm::invalidatePage(std::uint64_t vpn, std::uint32_t asid,
                         bool global)
{
    for (auto &mmu : _mmus)
        mmu.invalidatePage(vpn, asid, global);
}

FaTlbSweep::FaTlbSweep(std::uint64_t max_entries)
    : _maxEntries(max_entries),
      _userHist(max_entries + 1, 0),
      _kernelHist(max_entries + 1, 0)
{
    fatalIf(max_entries == 0, "FaTlbSweep needs max_entries >= 1");
    _stack.reserve(max_entries);
}

void
FaTlbSweep::observe(const MemRef &ref)
{
    if (!ref.mapped || !isMappedAddress(ref.vaddr))
        return;
    ++_translations;
    const bool kernel_seg = inKseg2(ref.vaddr);
    const std::uint64_t vpn = vpnOf(ref.vaddr);
    const std::uint64_t key = kernel_seg
        ? ((1ULL << 63) | vpn)
        : ((std::uint64_t(ref.asid) << 32) | vpn);

    for (std::size_t d = 0; d < _stack.size(); ++d) {
        if (_stack[d] == key) {
            // Hit at depth d: any FA LRU TLB with > d entries hits.
            // Depth d therefore contributes a miss to sizes <= d,
            // which we record by class.
            auto &hist = kernel_seg ? _kernelHist : _userHist;
            ++hist[d];
            for (std::size_t i = d; i > 0; --i)
                _stack[i] = _stack[i - 1];
            _stack[0] = key;
            return;
        }
    }

    if (_touched.insert(key).second) {
        if (kernel_seg)
            ++_coldKernel;
        else
            ++_coldUser;
    } else {
        auto &hist = kernel_seg ? _kernelHist : _userHist;
        ++hist[_maxEntries]; // warm but deeper than the tracked stack
    }
    if (_stack.size() < _maxEntries)
        _stack.push_back(0);
    for (std::size_t i = _stack.size() - 1; i > 0; --i)
        _stack[i] = _stack[i - 1];
    _stack[0] = key;
}

std::uint64_t
FaTlbSweep::misses(std::uint64_t entries) const
{
    panicIf(entries == 0 || entries > _maxEntries,
            "FaTlbSweep::misses size out of range");
    std::uint64_t sum = _coldUser + _coldKernel;
    for (std::uint64_t d = entries; d <= _maxEntries; ++d)
        sum += _userHist[d] + _kernelHist[d];
    return sum;
}

std::uint64_t
FaTlbSweep::missesOfClass(std::uint64_t entries, MissClass c) const
{
    panicIf(entries == 0 || entries > _maxEntries,
            "FaTlbSweep::missesOfClass size out of range");
    switch (c) {
      case MissClass::UserMiss: {
        std::uint64_t sum = 0;
        for (std::uint64_t d = entries; d <= _maxEntries; ++d)
            sum += _userHist[d];
        return sum;
      }
      case MissClass::KernelMiss: {
        std::uint64_t sum = 0;
        for (std::uint64_t d = entries; d <= _maxEntries; ++d)
            sum += _kernelHist[d];
        return sum;
      }
      case MissClass::PageFault:
        return _coldUser + _coldKernel;
      default:
        return 0;
    }
}

} // namespace oma
