file(REMOVE_RECURSE
  "liboma_core.a"
)
