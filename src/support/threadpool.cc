/**
 * @file
 * Implementation of the thread pool.
 */

#include "support/threadpool.hh"

#include <limits>

namespace oma
{

namespace
{

/** Set while this thread is executing parallelFor body indices, so a
 * nested submission can be detected and run inline. */
thread_local bool t_inParallelFor = false;

} // namespace

unsigned
ThreadPool::resolveThreads(unsigned threads)
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned lanes = resolveThreads(threads);
    _workers.reserve(lanes - 1);
    for (unsigned i = 0; i + 1 < lanes; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(_mutex);
        _stopping = true;
    }
    _wake.notifyAll();
    // Join here, not via ~jthread: members are destroyed in reverse
    // declaration order, so the condition variables would die before
    // the workers vector — while a worker may still be inside its
    // final notifyOne().
    for (auto &worker : _workers)
        worker.join();
}

ThreadPoolStats
ThreadPool::stats() const
{
    LockGuard lock(_mutex);
    return _stats;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::size_t end = 0;
        const std::function<void(std::size_t)> *body = nullptr;
        {
            LockGuard lock(_mutex);
            while (!_stopping && _jobGen == seen)
                _wake.wait(lock);
            if (_stopping)
                return;
            seen = _jobGen;
            end = _end;
            body = _body;
        }
        claimIndices(end, *body);
        {
            LockGuard lock(_mutex);
            --_activeWorkers;
        }
        _done.notifyOne();
    }
}

void
ThreadPool::claimIndices(std::size_t end,
                         const std::function<void(std::size_t)> &body)
{
    t_inParallelFor = true;
    for (;;) {
        const std::size_t i =
            _next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end)
            break;
        try {
            body(i);
        } catch (...) {
            LockGuard lock(_mutex);
            if (i < _errorIndex) {
                _errorIndex = i;
                _error = std::current_exception();
            }
        }
    }
    t_inParallelFor = false;
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    // Nested calls run on worker lanes; counting only top-level
    // submissions keeps jobs/indices a pure function of the work.
    const bool nested = t_inParallelFor;
    if (!nested) {
        LockGuard lock(_mutex);
        _stats.jobs += 1;
        _stats.indices += end - begin;
    }
    // Serial pool, or a nested call from inside one of our own
    // bodies: run inline on this lane (see class comment).
    if (_workers.empty() || nested) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    {
        LockGuard lock(_mutex);
        _next.store(begin, std::memory_order_relaxed);
        _end = end;
        _body = &body;
        _error = nullptr;
        _errorIndex = std::numeric_limits<std::size_t>::max();
        _activeWorkers = unsigned(_workers.size());
        ++_jobGen;
    }
    _wake.notifyAll();

    claimIndices(end, body); // The caller is a lane too.

    std::exception_ptr error;
    {
        LockGuard lock(_mutex);
        while (_activeWorkers != 0)
            _done.wait(lock);
        _body = nullptr;
        error = _error;
        _error = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(unsigned threads, std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body)
{
    const unsigned lanes = ThreadPool::resolveThreads(threads);
    if (lanes <= 1 || end - begin <= 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    ThreadPool pool(lanes);
    pool.parallelFor(begin, end, body);
}

} // namespace oma
