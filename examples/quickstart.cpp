/**
 * @file
 * Quickstart: the smallest complete use of the library.
 *
 * Builds the mpeg_play workload on the Mach OS model, runs it on a
 * machine with a chosen on-chip memory configuration, and reports
 * the CPI breakdown next to the configuration's die cost — one
 * cost/benefit data point of the kind the paper's search ranks
 * thousands of.
 */

#include <iostream>

#include "area/mqf.hh"
#include "core/experiment.hh"
#include "support/table.hh"

using namespace oma;

int
main()
{
    // 1. Pick an on-chip memory configuration.
    MachineParams machine = MachineParams::decstation3100();
    machine.icache.geom = CacheGeometry::fromWords(16 * 1024, 8, 2);
    machine.dcache.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    machine.tlb.geom = TlbGeometry(512, 8);

    // 2. Cost it with the MQF area model.
    AreaModel area;
    const double rbe = area.cacheArea(machine.icache.geom) +
        area.cacheArea(machine.dcache.geom) +
        area.tlbArea(machine.tlb.geom);

    // 3. Measure its benefit on a workload under a multiple-API OS.
    RunConfig run;
    run.references = 1000000;
    const BaselineResult result =
        runBaseline(BenchmarkId::Mpeg, OsKind::Mach, run, machine);

    // 4. Report.
    std::cout << "Configuration:\n"
              << "  I-cache: " << machine.icache.geom.describe() << "\n"
              << "  D-cache: " << machine.dcache.geom.describe() << "\n"
              << "  TLB:     " << machine.tlb.geom.describe() << "\n"
              << "  Die cost: " << fmtGrouped(std::uint64_t(rbe))
              << " rbe (budget in the paper: 250,000)\n\n"
              << "mpeg_play under Mach 3.0 ("
              << result.instructions << " instructions simulated):\n"
              << "  CPI          " << fmtFixed(result.cpi.cpi, 3) << "\n"
              << "  TLB          " << fmtFixed(result.cpi.tlb, 3) << "\n"
              << "  I-cache      " << fmtFixed(result.cpi.icache, 3)
              << "\n"
              << "  D-cache      " << fmtFixed(result.cpi.dcache, 3)
              << "\n"
              << "  Write buffer "
              << fmtFixed(result.cpi.writeBuffer, 3) << "\n"
              << "  Other        " << fmtFixed(result.cpi.other, 3)
              << "\n";
    return 0;
}
