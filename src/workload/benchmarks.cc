/**
 * @file
 * Calibrated parameter records for the paper's benchmark suite
 * (Table 2). The parameters below are the substitution for the
 * authors' DECstation 3100 trace samples: application locality, data
 * intensity and OS-interaction rates are chosen so that the modelled
 * DECstation baseline (64-KB off-chip direct-mapped I/D caches,
 * 1-word lines, 64-entry fully-associative TLB) reproduces the CPI
 * stall breakdowns of Tables 3 and 4. Every other experiment reuses
 * these records unchanged.
 */

#include "workload/workload.hh"

#include "support/logging.hh"

namespace oma
{

namespace
{

WorkloadParams
mpegPlay()
{
    WorkloadParams wl;
    wl.name = "mpeg_play";
    wl.description = "Berkeley mpeg_play v2.0, 610 compressed frames";
    wl.codeFootprint = 88 * 1024; // decoder + xlib + libc hot text
    wl.codeSkew = 1.15;
    wl.meanRun = 12.0;
    wl.loadPerInstr = 0.20;
    wl.storePerInstr = 0.09;
    wl.storeBurstMean = 5.0;
    wl.wsBytes = 160 * 1024;
    wl.wsSkew = 1.45;
    wl.streamFracLoad = 0.03;
    wl.streamFracStore = 0.30; // decoded-frame output
    wl.streamBytes = 2 * 1024 * 1024;
    wl.userOtherCpi = 0.14;
    wl.syscallPerInstr = 1.0 / 12000;
    wl.syscallBurstMean = 8.0;
    wl.syscallBurstGap = 500.0; // X protocol chatter + reads
    wl.syscalls = {{ServiceKind::Stat, 0.65, 0},
                   {ServiceKind::Ipc, 0.30, 512},
                   {ServiceKind::FileRead, 0.05, 8192}};
    wl.framePerInstr = 1.0 / 470000;
    wl.frameBytes = 24 * 1024;
    wl.nominalInstructions = 1.1e9;
    return wl;
}

WorkloadParams
mab()
{
    WorkloadParams wl;
    wl.name = "mab";
    wl.description = "Ousterhout's Modified Andrew Benchmark";
    wl.codeFootprint = 80 * 1024; // compiler passes, many programs
    wl.codeSkew = 1.05;
    wl.meanRun = 11.0;
    wl.loadPerInstr = 0.22;
    wl.storePerInstr = 0.11;
    wl.storeBurstMean = 4.0;
    wl.wsBytes = 192 * 1024;
    wl.wsSkew = 1.35;
    wl.streamFracLoad = 0.05;
    wl.streamFracStore = 0.08;
    wl.streamBytes = 1024 * 1024;
    wl.userOtherCpi = 0.05;
    wl.syscallPerInstr = 1.0 / 7000;
    wl.syscallBurstMean = 6.0;
    wl.syscallBurstGap = 400.0;
    wl.syscalls = {{ServiceKind::FileRead, 0.25, 4096},
                   {ServiceKind::FileWrite, 0.25, 4096},
                   {ServiceKind::Stat, 0.50, 0}};
    wl.nominalInstructions = 1.0e9;
    return wl;
}

WorkloadParams
jpegPlay()
{
    WorkloadParams wl;
    wl.name = "jpeg_play";
    wl.description = "xloadimage displaying four JPEG images";
    wl.codeFootprint = 44 * 1024;
    wl.codeSkew = 1.2;
    wl.meanRun = 14.0;
    wl.loadPerInstr = 0.19;
    wl.storePerInstr = 0.08;
    wl.storeBurstMean = 2.5;
    wl.wsBytes = 96 * 1024;
    wl.wsSkew = 1.45;
    wl.streamFracLoad = 0.02;
    wl.streamFracStore = 0.20;
    wl.streamBytes = 1024 * 1024;
    wl.userOtherCpi = 0.12;
    wl.syscallPerInstr = 1.0 / 60000;
    wl.syscallBurstMean = 5.0;
    wl.syscallBurstGap = 400.0;
    wl.syscalls = {{ServiceKind::Stat, 0.75, 0},
                   {ServiceKind::FileRead, 0.25, 8192}};
    wl.framePerInstr = 1.0 / 900000;
    wl.frameBytes = 48 * 1024;
    wl.nominalInstructions = 1.3e9;
    return wl;
}

WorkloadParams
ousterhout()
{
    WorkloadParams wl;
    wl.name = "ousterhout";
    wl.description = "Ousterhout's OS micro-benchmark suite";
    wl.codeFootprint = 24 * 1024;
    wl.codeSkew = 1.2;
    wl.meanRun = 12.0;
    wl.loadPerInstr = 0.21;
    wl.storePerInstr = 0.11;
    wl.storeBurstMean = 4.0;
    wl.wsBytes = 64 * 1024;
    wl.wsSkew = 1.45;
    wl.userOtherCpi = 0.04;
    wl.syscallPerInstr = 1.0 / 4000;
    wl.syscallBurstMean = 16.0;
    wl.syscallBurstGap = 400.0;
    wl.syscalls = {{ServiceKind::Stat, 0.45, 0},
                   {ServiceKind::FileRead, 0.25, 4096},
                   {ServiceKind::FileWrite, 0.25, 4096},
                   {ServiceKind::Ipc, 0.05, 512}};
    wl.nominalInstructions = 0.9e9;
    return wl;
}

WorkloadParams
iozone()
{
    WorkloadParams wl;
    wl.name = "IOzone";
    wl.description = "Sequential 10-MB file write-then-read benchmark";
    wl.codeFootprint = 16 * 1024;
    wl.codeSkew = 1.2;
    wl.meanRun = 14.0;
    wl.loadPerInstr = 0.22;
    wl.storePerInstr = 0.11;
    wl.storeBurstMean = 4.0;
    wl.wsBytes = 48 * 1024;
    wl.wsSkew = 1.45;
    wl.streamFracLoad = 0.04;
    wl.streamFracStore = 0.06;
    wl.streamBytes = 1024 * 1024;
    wl.userOtherCpi = 0.09;
    wl.syscallPerInstr = 1.0 / 15000;
    wl.syscallBurstMean = 6.0;
    wl.syscallBurstGap = 500.0;
    wl.syscalls = {{ServiceKind::FileWrite, 0.5, 6144},
                   {ServiceKind::FileRead, 0.5, 6144}};
    wl.nominalInstructions = 0.9e9;
    return wl;
}

WorkloadParams
videoPlay()
{
    WorkloadParams wl;
    wl.name = "video_play";
    wl.description = "mpeg_play variant, 610 uncompressed frames";
    wl.codeFootprint = 72 * 1024;
    wl.codeSkew = 1.1;
    wl.meanRun = 13.0;
    wl.loadPerInstr = 0.21;
    wl.storePerInstr = 0.10;
    wl.storeBurstMean = 5.0;
    wl.wsBytes = 96 * 1024;
    wl.wsSkew = 1.4;
    wl.streamFracLoad = 0.12; // raw frames read in user space
    wl.streamFracStore = 0.25;
    wl.streamBytes = 4 * 1024 * 1024;
    wl.userOtherCpi = 0.05;
    wl.syscallPerInstr = 1.0 / 9000;
    wl.syscallBurstMean = 6.0;
    wl.syscallBurstGap = 400.0;
    wl.syscalls = {{ServiceKind::Stat, 0.5, 0},
                   {ServiceKind::FileRead, 0.5, 8192}};
    wl.framePerInstr = 1.0 / 70000;
    wl.frameBytes = 16 * 1024;
    wl.nominalInstructions = 0.8e9;
    return wl;
}

} // namespace

const WorkloadParams &
benchmarkParams(BenchmarkId id)
{
    // GCC 12 false-positives -Wmaybe-uninitialized on the inlined
    // std::vector copies feeding this static aggregate; every factory
    // returns a fully initialized value.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    static const WorkloadParams params[numBenchmarks] = {
        mpegPlay(), mab(), jpegPlay(), ousterhout(), iozone(),
        videoPlay()};
#pragma GCC diagnostic pop
    const unsigned i = unsigned(id);
    panicIf(i >= numBenchmarks, "bad benchmark id");
    return params[i];
}

std::vector<BenchmarkId>
allBenchmarks()
{
    return {BenchmarkId::Mpeg, BenchmarkId::Mab, BenchmarkId::Jpeg,
            BenchmarkId::Ousterhout, BenchmarkId::IOzone,
            BenchmarkId::VideoPlay};
}

const char *
benchmarkName(BenchmarkId id)
{
    return benchmarkParams(id).name.c_str();
}

} // namespace oma
