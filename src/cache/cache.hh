/**
 * @file
 * Set-associative cache simulator.
 *
 * A functional (timing-free) cache model in the style of the
 * cache2000 / Dinero class of simulators the paper drives with its
 * sampled traces. The model supports LRU/FIFO/random replacement,
 * write-through and write-back policies, and write-allocate or
 * no-write-allocate behaviour, and counts enough events to feed the
 * CPI model (misses by reference kind, lines fetched, words written
 * through to memory, write-backs).
 *
 * Two access paths share one inner body (accessOne): the scalar
 * access() the live System drives, and the batched replay kernels
 * (replayFetchBatch / replayDataBatch) the trace-replay engines
 * stream packed RecordedTrace columns through. The batched kernels
 * are specialized at compile time for the power-of-two
 * (associativity, line-size) pairs the paper's design space sweeps —
 * the way loop unrolls and the line shift becomes an immediate — and
 * dispatched once at construction; odd geometries fall back to the
 * generic loop. Because every path funnels through the same body,
 * the scalar and batched replays are bitwise-identical by
 * construction (tests/core/test_batched_replay.cc holds the proof).
 */

#ifndef OMA_CACHE_CACHE_HH
#define OMA_CACHE_CACHE_HH

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "area/geometry.hh"
#include "support/fingerprint.hh"
#include "support/rng.hh"
#include "trace/memref.hh"

namespace oma
{

/** Line replacement policy. */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,
    Fifo,
    Random,
};

/** Store handling policy. */
enum class WritePolicy : std::uint8_t
{
    WriteThrough,
    WriteBack,
};

/** Allocation policy on store misses. */
enum class AllocPolicy : std::uint8_t
{
    WriteAllocate,
    NoWriteAllocate,
};

/** Full configuration of a simulated cache. */
struct CacheParams
{
    CacheGeometry geom;
    ReplacementPolicy repl = ReplacementPolicy::Lru;
    /**
     * The R2000-era machines the paper measures use write-through
     * caches backed by a write buffer, so that is the default.
     */
    WritePolicy write = WritePolicy::WriteThrough;
    AllocPolicy alloc = AllocPolicy::WriteAllocate;
    std::uint64_t seed = 1; //!< Random-replacement seed.

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        geom.fingerprint(fp);
        fp.u64("cache.repl", std::uint64_t(repl));
        fp.u64("cache.write", std::uint64_t(write));
        fp.u64("cache.alloc", std::uint64_t(alloc));
        fp.u64("cache.seed", seed);
    }
};

/** Event counters maintained by a Cache. */
struct CacheStats
{
    std::uint64_t accesses[numRefKinds] = {};
    std::uint64_t misses[numRefKinds] = {};
    /** Lines fetched from the next level (miss fills). */
    std::uint64_t lineFills = 0;
    /** Dirty lines written back (write-back policy only). */
    std::uint64_t writebacks = 0;
    /** Words forwarded to memory by stores (write-through traffic). */
    std::uint64_t writeThroughWords = 0;
    /** Misses to lines never previously resident (compulsory). */
    std::uint64_t compulsoryMisses = 0;

    [[nodiscard]] std::uint64_t
    totalAccesses() const
    {
        return accesses[0] + accesses[1] + accesses[2];
    }

    [[nodiscard]] std::uint64_t
    totalMisses() const
    {
        return misses[0] + misses[1] + misses[2];
    }

    /** Overall miss ratio. */
    [[nodiscard]] double
    missRatio() const
    {
        const std::uint64_t a = totalAccesses();
        return a == 0 ? 0.0 : double(totalMisses()) / double(a);
    }

    /** Miss ratio for one reference kind. */
    [[nodiscard]] double
    missRatio(RefKind kind) const
    {
        const std::uint64_t a = accesses[unsigned(kind)];
        return a == 0 ? 0.0 : double(misses[unsigned(kind)]) / double(a);
    }
};

/**
 * The cache simulator proper. Physically indexed and tagged (the
 * DECstation 3100 organization); feed it MemRef::paddr.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Configuration this cache was built with. */
    [[nodiscard]] const CacheParams &params() const { return _params; }

    /**
     * Simulate one access.
     *
     * @param paddr Physical byte address.
     * @param kind Fetch / load / store.
     * @retval true on hit.
     */
    bool access(std::uint64_t paddr, RefKind kind);

    /**
     * Batched instruction-fetch replay over a packed paddr column:
     * exactly equivalent to access(paddr[i], RefKind::IFetch) for
     * each i in [0, n), through the kernel chosen at construction.
     */
    void replayFetchBatch(const std::uint32_t *paddr, std::size_t n);

    /**
     * Batched data replay over packed paddr and trace-flag columns:
     * exactly equivalent to access(paddr[i], kind_i) where kind_i is
     * the RefKind packed in the low bits of flags[i].
     */
    void replayDataBatch(const std::uint32_t *paddr,
                         const std::uint8_t *flags, std::size_t n);

    /**
     * Name of the inner-loop kernel the batched replays use:
     * "w<assoc>x<words>w" for a compile-time specialization,
     * "generic" for the runtime fallback.
     */
    [[nodiscard]] const char *batchKernelName() const
    {
        return _kernelName;
    }

    /**
     * Every (associativity, line-words) pair with a compile-time
     * batch kernel, in dispatch-table order. Geometry coverage tests
     * assert each entry is actually selectable.
     */
    static std::vector<std::pair<unsigned, unsigned>>
    specializedGeometries();

    /** Hit test without updating replacement or statistics. */
    [[nodiscard]] bool probe(std::uint64_t paddr) const;

    /**
     * Fill a line without touching the statistics (hardware
     * prefetch). Replacement state advances as for a normal fill; a
     * line already resident is refreshed.
     */
    void prefetch(std::uint64_t paddr);

    /** Invalidate every line (loses dirty data; counts nothing). */
    void invalidateAll();

    /** Accumulated counters. */
    [[nodiscard]] const CacheStats &stats() const { return _stats; }

    /** Zero the counters (cache contents are kept). */
    void resetStats() { _stats = CacheStats(); }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0; //!< LRU / FIFO ordering stamp.
        bool valid = false;
        bool dirty = false;
    };

    /** Index of the victim way within a set (first invalid, else policy). */
    std::size_t victimWay(std::size_t set_base);

    std::uint64_t lineNumber(std::uint64_t paddr) const;

    /**
     * The one access body every path shares. A non-zero Ways /
     * LineShift is a compile-time constant (the way loop unrolls and
     * the shift becomes an immediate); zero reads the runtime field,
     * which holds the same value — so specialization can never
     * change behaviour, only code generation.
     */
    template <unsigned Ways, unsigned LineShift>
    bool accessOne(std::uint64_t paddr, RefKind kind);

    /** The cold miss tail of accessOne (kept out of line so the hit
     * loop stays small enough to unroll and inline). */
    bool missFill(std::uint64_t line, std::size_t base,
                  std::uint64_t tag, RefKind kind, bool is_store);

    template <unsigned Ways, unsigned LineShift>
    void fetchKernel(const std::uint32_t *paddr, const std::uint8_t *,
                     std::size_t n);
    template <unsigned Ways, unsigned LineShift>
    void dataKernel(const std::uint32_t *paddr,
                    const std::uint8_t *flags, std::size_t n);

    using BatchFn = void (Cache::*)(const std::uint32_t *,
                                    const std::uint8_t *, std::size_t);

    struct KernelEntry
    {
        unsigned ways;
        unsigned lineWords;
        BatchFn fetch;
        BatchFn data;
        const char *name;
    };

    /** The compile-time specialization grid (one row per pow2
     * (assoc, line-words) pair in the modelled design space). */
    static const std::vector<KernelEntry> &kernelTable();

    /** Pick the batch kernels for this geometry (constructor). */
    void selectKernels();

    CacheParams _params;
    std::uint64_t _setMask;
    unsigned _lineShift;
    unsigned _indexBits;
    std::size_t _ways;
    BatchFn _fetchKernel = nullptr;
    BatchFn _dataKernel = nullptr;
    const char *_kernelName = "generic";
    std::vector<Line> _lines; //!< sets x ways, set-major.
    std::uint64_t _tick = 0;
    Rng _rng;
    CacheStats _stats;
    /** Line numbers ever resident, for compulsory-miss classification. */
    // oma-lint: allow(ordered-results): membership test via insert()
    // only; never iterated, so traversal order cannot reach results.
    std::unordered_set<std::uint64_t> _touched;
};

} // namespace oma

#endif // OMA_CACHE_CACHE_HH
