/**
 * @file
 * Extension (the paper's Section 6 future work): add an access-time
 * dimension to the cost/benefit analysis using a Wada-style model.
 *
 * The Table 6 search is repeated under progressively tighter cache
 * access-time limits. With no limit the search is free to pick 8-way
 * caches; as the limit tightens toward a direct-mapped-like cycle
 * time, associativity and capacity are squeezed out and the best
 * achievable CPI rises — quantifying the paper's remark that "most
 * of the best performing configurations include a significant amount
 * of cache associativity [but] access-time requirements may prohibit
 * 4- or 8-way set-associative caches."
 */

#include <iostream>

#include "area/access_time.hh"
#include "bench/alloc_common.hh"

using namespace oma;

namespace
{

/** Drop geometries whose access time exceeds the limits. */
ComponentCpiTables
filterByAccessTime(const ComponentCpiTables &tables,
                   const AccessTimeModel &model, double cache_limit,
                   double tlb_limit)
{
    ComponentCpiTables out;
    out.baseCpi = tables.baseCpi;
    out.wbCpi = tables.wbCpi;
    out.otherCpi = tables.otherCpi;
    for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i) {
        if (model.cacheAccessTime(tables.icacheGeoms[i]) <=
            cache_limit) {
            out.icacheGeoms.push_back(tables.icacheGeoms[i]);
            out.icacheCpi.push_back(tables.icacheCpi[i]);
        }
    }
    for (std::size_t i = 0; i < tables.dcacheGeoms.size(); ++i) {
        if (model.cacheAccessTime(tables.dcacheGeoms[i]) <=
            cache_limit) {
            out.dcacheGeoms.push_back(tables.dcacheGeoms[i]);
            out.dcacheCpi.push_back(tables.dcacheCpi[i]);
        }
    }
    for (std::size_t i = 0; i < tables.tlbGeoms.size(); ++i) {
        if (model.tlbAccessTime(tables.tlbGeoms[i]) <= tlb_limit) {
            out.tlbGeoms.push_back(tables.tlbGeoms[i]);
            out.tlbCpi.push_back(tables.tlbCpi[i]);
        }
    }
    return out;
}

} // namespace

int
main()
{
    omabench::banner("Extension: the Table 6 search under Wada-style "
                     "access-time limits",
                     "Section 6 (future work)");

    omabench::BenchReport report("ext_accesstime");
    ConfigSpace space;
    const ComponentCpiTables tables =
        omabench::measureMachTables(space, &report);
    const AccessTimeModel access;

    // Reference spreads so the limits below are meaningful.
    std::cout << "Access-time reference points (delay units):\n"
              << "  2-KB 4-word direct-mapped cache:  "
              << fmtFixed(access.cacheAccessTime(
                     CacheGeometry::fromWords(2048, 4, 1)), 2)
              << "\n  32-KB 4-word 8-way cache:         "
              << fmtFixed(access.cacheAccessTime(
                     CacheGeometry::fromWords(32 * 1024, 4, 8)), 2)
              << "\n  512-entry 8-way TLB:              "
              << fmtFixed(access.tlbAccessTime(TlbGeometry(512, 8)), 2)
              << "\n  256-entry fully-associative TLB:  "
              << fmtFixed(access.tlbAccessTime(
                     TlbGeometry::fullyAssoc(256)), 2)
              << "\n\n";

    TextTable table({"Cache limit", "TLB limit", "Best allocation",
                     "Cost (rbes)", "CPI"});
    const double no_limit = 1e9;
    struct Case
    {
        const char *name;
        double cache, tlb;
    };
    const Case cases[] = {
        {"none", no_limit, no_limit},
        {"loose (cache 1.80, TLB 2.00)", 1.80, 2.00},
        {"medium (cache 1.55, TLB 1.60)", 1.55, 1.60},
        {"tight (cache 1.35, TLB 1.40)", 1.35, 1.40},
        {"very tight (cache 1.20, TLB 1.20)", 1.20, 1.20},
    };
    for (const Case &c : cases) {
        const ComponentCpiTables filtered =
            filterByAccessTime(tables, access, c.cache, c.tlb);
        if (filtered.icacheGeoms.empty() ||
            filtered.dcacheGeoms.empty() ||
            filtered.tlbGeoms.empty()) {
            table.addRow({c.name, "", "(no feasible configuration)",
                          "-", "-"});
            continue;
        }
        const auto ranked =
            omabench::rankAllocations(filtered, 8, &report);
        if (ranked.empty()) {
            table.addRow({c.name, "", "(budget infeasible)", "-",
                          "-"});
            continue;
        }
        const Allocation &best = ranked.front();
        table.addRow(
            {c.name, "",
             best.tlb.describe() + " + I " + best.icache.describe() +
                 " + D " + best.dcache.describe(),
             fmtGrouped(std::uint64_t(best.areaRbe)),
             fmtFixed(best.cpi, 3)});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: tightening the access-time limit first "
           "strips away high associativity and big fully-associative "
           "structures, then capacity — and the best achievable CPI "
           "rises monotonically, mirroring the Table 6 -> Table 7 "
           "degradation the paper attributes to timing "
           "constraints.\n";
    return 0;
}
