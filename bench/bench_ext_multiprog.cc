/**
 * @file
 * Extension: multiprogramming interference. The paper's trace
 * samples "include multiprogramming and operating system
 * references"; this bench quantifies what time-sharing adds on top
 * of a single job — and shows that the multiple-API system, already
 * spread across more address spaces, loses more to a co-runner than
 * the monolithic one.
 */

#include <iostream>

#include "bench/common.hh"
#include "machine/machine.hh"
#include "support/table.hh"
#include "workload/multiprog.hh"

using namespace oma;

namespace
{

CpiBreakdown
run(OsKind os, bool multiprogrammed, std::uint64_t refs)
{
    Machine machine(MachineParams::decstation3100());
    MemRef ref;
    double other = 0.0;
    if (multiprogrammed) {
        MultiprogramSource mix(30000);
        mix.add(benchmarkParams(BenchmarkId::Mpeg), os, 42);
        mix.add(benchmarkParams(BenchmarkId::Mab), os, 43);
        mix.setInvalidateHook(
            [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
                machine.mmu().invalidatePage(vpn, asid, global);
            });
        for (std::uint64_t i = 0; i < refs; ++i) {
            mix.next(ref);
            machine.observe(ref);
        }
        other = 0.5 * (mix.member(0).otherCpiSoFar() +
                       mix.member(1).otherCpiSoFar());
    } else {
        System one(benchmarkParams(BenchmarkId::Mpeg), os, 42);
        one.setInvalidateHook(
            [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
                machine.mmu().invalidatePage(vpn, asid, global);
            });
        for (std::uint64_t i = 0; i < refs; ++i) {
            one.next(ref);
            machine.observe(ref);
        }
        other = one.otherCpiSoFar();
    }
    return machine.breakdown(other);
}

void
addRow(TextTable &table, const std::string &name, const CpiBreakdown &b)
{
    table.addRow({name, fmtFixed(b.cpi, 2), fmtFixed(b.tlb, 3),
                  fmtFixed(b.icache, 3), fmtFixed(b.dcache, 3),
                  fmtFixed(b.writeBuffer, 3)});
}

} // namespace

int
main()
{
    omabench::banner("Extension: multiprogramming interference "
                     "(mpeg_play alone vs time-shared with mab)",
                     "the multiprogramming the paper's traces include");

    omabench::BenchReport report("ext_multiprog");
    const std::uint64_t refs = omabench::benchReferences();
    TextTable table({"Configuration", "CPI", "TLB", "I-cache",
                     "D-cache", "Write Buffer"});
    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        const CpiBreakdown alone = run(os, false, refs);
        const CpiBreakdown shared = run(os, true, refs);
        report.addReferences(2 * refs);
        const std::string slug =
            std::string("multiprog/") + osKindName(os);
        report.metrics().set(slug + "/alone_cpi", alone.cpi);
        report.metrics().set(slug + "/shared_cpi", shared.cpi);
        report.metrics().set(slug + "/interference_cpi",
                             shared.cpi - alone.cpi);
        addRow(table, std::string(osKindName(os)) + ": mpeg alone",
               alone);
        addRow(table,
               std::string(osKindName(os)) + ": mpeg + mab shared",
               shared);
        table.addRow({"  interference (CPI points)",
                      fmtFixed(shared.cpi - alone.cpi, 2), "", "", "",
                      ""});
    }
    table.print(std::cout);

    std::cout
        << "\nReading guide: the time-shared mix runs more address "
           "spaces and more distinct code through the same caches and "
           "TLB. The TLB component grows fastest under both systems "
           "(the co-runner's pages and page-table pages evict the "
           "job's own), landing the time-shared Ultrix mix in "
           "Mach-like TLB territory — more evidence for the paper's "
           "large-TLB recommendation. This cross-job interference is "
           "part of what made the user-only pixie simulations "
           "(Table 3, row 1) so misleading.\n";
    return 0;
}
