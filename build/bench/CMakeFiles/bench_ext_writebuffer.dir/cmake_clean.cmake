file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_writebuffer.dir/bench_ext_writebuffer.cc.o"
  "CMakeFiles/bench_ext_writebuffer.dir/bench_ext_writebuffer.cc.o.d"
  "bench_ext_writebuffer"
  "bench_ext_writebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_writebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
