/**
 * @file
 * The replayable-component concept: one uniform surface for every
 * simulator the sweep engine measures.
 *
 * A replayable component is anything that can consume a recorded
 * reference stream and report exact counters:
 *
 *  - a *parameter struct* carrying `fingerprint()` (keys the artifact
 *    store) — CacheParams, TlbParams, VictimParams, WriteBufferParams
 *    or HierarchyParams, bundled with a ComponentKind in a
 *    ComponentSlot;
 *  - scalar `access(const MemRef &)` — one reference through the
 *    simulator's own access body;
 *  - chunked `replay(const TraceChunkView &)` — one packed column
 *    chunk through the *same* access body, so batched and scalar
 *    counter streams are bitwise-identical by construction (the PR 6
 *    contract, proven differentially in
 *    tests/core/test_component_replay.cc at 1 and 4 threads, cold and
 *    warm store);
 *  - ordered `counters()` — the component's exact integer counters as
 *    a ComponentCounters variant, which the store codec persists
 *    (store/codec.hh) and the obs exporters name deterministically.
 *
 * ComponentSweep replays a heterogeneous list of ComponentSlots
 * (core/sweep.hh); AllocationSearch ranks the extension components
 * alongside the paper's three-way grid (core/search.hh). The concrete
 * adapters live in component.cc and are checked against the
 * ReplayableComponent concept at compile time.
 */

#ifndef OMA_CORE_COMPONENT_HH
#define OMA_CORE_COMPONENT_HH

#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/victim.hh"
#include "machine/machine.hh"
#include "machine/writebuffer.hh"
#include "tlb/tlb.hh"
#include "tlb/mmu.hh"
#include "trace/recorded.hh"

namespace oma
{

/** The component kinds a sweep can carry. */
enum class ComponentKind : std::uint8_t
{
    ICache,      //!< Cache replaying the instruction-fetch stream.
    DCache,      //!< Cache replaying the cached-data stream.
    Tlb,         //!< Mmu translating the full stream (with events).
    Victim,      //!< Direct-mapped L1 + victim buffer (fetch stream).
    WriteBuffer, //!< Standalone write-buffer depth model.
    Hierarchy,   //!< Unified L1 or split L1s + optional L2.
};

/** Number of distinct component kinds. */
constexpr std::size_t numComponentKinds = 6;

/** Short lowercase kind name used in store keys and metric
 * prefixes: "icache", "dcache", "tlb", "victim", "wbuffer", "l2". */
[[nodiscard]] const char *componentKindName(ComponentKind kind);

/** The parameter struct of one component, by kind. */
using ComponentParams =
    std::variant<CacheParams, TlbParams, VictimParams,
                 WriteBufferParams, HierarchyParams>;

/** The exact counters one component reports, by kind. */
using ComponentCounters =
    std::variant<CacheStats, MmuStats, VictimStats, WriteBufferStats,
                 HierarchyStats>;

/**
 * One slot of a sweep's heterogeneous component axis: a kind plus the
 * matching parameter struct. Construct through the named factories so
 * the kind and the variant alternative cannot disagree.
 */
struct ComponentSlot
{
    ComponentKind kind = ComponentKind::ICache;
    ComponentParams params;

    [[nodiscard]] static ComponentSlot icache(const CacheParams &p);
    [[nodiscard]] static ComponentSlot dcache(const CacheParams &p);
    [[nodiscard]] static ComponentSlot tlb(const TlbParams &p);
    [[nodiscard]] static ComponentSlot victim(const VictimParams &p);
    [[nodiscard]] static ComponentSlot
    writeBuffer(const WriteBufferParams &p);
    [[nodiscard]] static ComponentSlot
    hierarchy(const HierarchyParams &p);

    /** Append every parameter field to a store key (kind-agnostic:
     * the sweep keys the kind separately via componentKindName so
     * the classic legs keep their exact historical keys). */
    void fingerprint(Fingerprint &fp) const;

    /** Human-readable one-line description. */
    [[nodiscard]] std::string describe() const;
};

/**
 * A type-erased replayable component instance: the runtime face of
 * the concept, used by the sweep engine to drive any slot through one
 * replay loop. Obtain instances from makeComponent().
 */
class ComponentReplayer
{
  public:
    virtual ~ComponentReplayer() = default;

    /** Observe one reference through the scalar access body. */
    virtual void access(const MemRef &ref) = 0;

    /** Observe one packed column chunk through the same body. */
    virtual void replay(const TraceChunkView &chunk) = 0;

    /** Apply one trace event (page invalidation). No-op for
     * components that do not track virtual mappings. */
    virtual void
    event(const TraceEvent &ev)
    {
        static_cast<void>(ev);
    }

    /** True when replay must be sliced at event positions. */
    [[nodiscard]] virtual bool
    wantsEvents() const
    {
        return false;
    }

    /** The component's exact counters (ordered, raw integers). */
    [[nodiscard]] virtual ComponentCounters counters() const = 0;

    /** References the component's filter actually delivered. */
    [[nodiscard]] virtual std::uint64_t delivered() const = 0;
};

/**
 * The compile-time contract the concrete adapters satisfy: scalar
 * access, chunked replay, and ordered counters. component.cc
 * static_asserts every adapter against it.
 */
template <typename C>
concept ReplayableComponent =
    requires(C c, const C cc, const MemRef &ref,
             const TraceChunkView &chunk) {
        c.access(ref);
        c.replay(chunk);
        { cc.counters() } -> std::same_as<ComponentCounters>;
        { cc.delivered() } -> std::same_as<std::uint64_t>;
    };

/**
 * Instantiate the simulator for @p slot. @p reference_machine
 * supplies the kind-independent context a component needs beyond its
 * own parameters (today: the TLB miss-handler penalties).
 */
[[nodiscard]] std::unique_ptr<ComponentReplayer>
makeComponent(const ComponentSlot &slot,
              const MachineParams &reference_machine);

/**
 * Replay the whole recording through @p component, chunk by chunk,
 * firing trace events at their pinned positions for components that
 * want them (chunks are sliced at event indices; event-blind
 * components stream whole chunks).
 *
 * @return References examined (the trace length).
 */
std::uint64_t replayComponent(const RecordedTrace &trace,
                              ComponentReplayer &component);

/**
 * Scalar reference replay: every reference through access(), one at
 * a time, events interleaved at their positions. Exists for the
 * differential tests — it must produce counters bitwise-identical to
 * replayComponent() for every component kind.
 *
 * @return References examined (the trace length).
 */
std::uint64_t replayComponentScalar(const RecordedTrace &trace,
                                    ComponentReplayer &component);

/** Encode a counters variant for the artifact store (raw integer
 * counters only; the store key, not the payload, carries the kind). */
[[nodiscard]] std::string
encodeComponentCounters(const ComponentCounters &counters);

/** @retval false when the payload does not frame exactly one
 * counters record of @p kind (treat as a store miss). */
[[nodiscard]] bool
decodeComponentCounters(std::string_view payload, ComponentKind kind,
                        ComponentCounters &counters);

} // namespace oma

#endif // OMA_CORE_COMPONENT_HH
