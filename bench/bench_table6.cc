/**
 * @file
 * Table 6 (and Table 5): the ten best allocations of die area given
 * a 250,000-rbe budget, benchmark suite under Mach, associativity up
 * to 8-way.
 */

#include <iostream>
#include <numeric>

#include "bench/alloc_common.hh"

using namespace oma;

int
main()
{
    omabench::banner("The ten best area allocations under a "
                     "250,000-rbe budget (Mach)",
                     "Tables 5 and 6");

    omabench::BenchReport report("table6");
    ConfigSpace space;
    omabench::printTable5(space);

    const ComponentCpiTables tables =
        omabench::measureMachTables(space, &report);

    const auto ranked =
        omabench::rankAllocations(tables, 8, &report);
    std::cout << "In-budget allocations ranked: " << ranked.size()
              << "\n\n";

    std::vector<std::size_t> rows(10);
    std::iota(rows.begin(), rows.end(), 0);
    omabench::printAllocations(ranked, rows);

    if (!ranked.empty()) {
        const Allocation &best = ranked.front();
        std::cout << "\nBest allocation detail: TLB CPI "
                  << fmtFixed(best.tlbCpi, 3) << ", I-cache CPI "
                  << fmtFixed(best.icacheCpi, 3) << ", D-cache CPI "
                  << fmtFixed(best.dcacheCpi, 3) << ", base CPI "
                  << fmtFixed(tables.baseCpi, 3) << "\n";
    }

    std::cout
        << "\nPaper's Table 6 header row: 512-entry 8-way TLB, 16-KB "
           "8-word 8-way I-cache, 8-KB 8-word 8-way D-cache, "
           "163,438 rbes, CPI 1.333.\n"
           "Shape criteria: every top allocation uses a large (512-"
           "entry) set-associative TLB; the I-cache gets 2-4x the "
           "D-cache's capacity; the best configurations sit well "
           "under the budget (large TLBs are cheap, Section 5.4).\n";
    return 0;
}
