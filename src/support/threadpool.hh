/**
 * @file
 * A small fixed-size thread pool with a deterministic parallel-for.
 *
 * The design-space sweeps replay one in-memory trace through hundreds
 * of independent simulator instances; that work is embarrassingly
 * parallel, so a chunk-claiming pool over std::jthread is all the
 * machinery needed. Determinism is preserved structurally: every
 * index writes only its own output slot, so the schedule cannot leak
 * into the results, and the caller observes completion of the whole
 * range before continuing.
 *
 * All shared state is annotated against the pool mutex
 * (support/sync.hh); the clang -Wthread-safety build verifies that
 * every access holds it.
 */

#ifndef OMA_SUPPORT_THREADPOOL_HH
#define OMA_SUPPORT_THREADPOOL_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/sync.hh"

namespace oma
{

/** Lifetime work counters of one ThreadPool (observability only). */
struct ThreadPoolStats
{
    std::uint64_t jobs = 0;    //!< parallelFor() calls completed.
    std::uint64_t indices = 0; //!< Total indices across all jobs.
};

/**
 * Fixed-size pool executing parallel-for jobs.
 *
 * The pool owns `lanes - 1` worker threads; the thread calling
 * parallelFor() participates as the remaining lane, so a pool of one
 * lane degenerates to a plain serial loop with no synchronization.
 *
 * Nested submission: a parallelFor() issued from inside a body
 * running on this pool executes inline on the calling lane (serially)
 * rather than deadlocking on the pool's own workers. This keeps
 * nesting safe but gains it no parallelism; structure hot loops as a
 * single flat index space instead.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total lanes including the caller;
     *        0 = std::thread::hardware_concurrency().
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes (worker threads + the calling thread). */
    unsigned
    threadCount() const
    {
        return unsigned(_workers.size()) + 1;
    }

    /** Resolve a threads knob: 0 means hardware_concurrency, min 1. */
    static unsigned resolveThreads(unsigned threads);

    /**
     * Run body(i) for every i in [begin, end); returns when all
     * indices completed. Indices are claimed dynamically (one atomic
     * increment each) so heterogeneous per-index costs load-balance.
     *
     * If any body throws, every index is still attempted and the
     * exception raised by the smallest throwing index is rethrown in
     * the caller — a deterministic choice regardless of schedule.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /** Work submitted so far. Deterministic (a function of the jobs
     * run, not of the schedule) and safe to call from any thread,
     * including concurrently with parallelFor(). */
    ThreadPoolStats stats() const;

  private:
    void workerLoop();
    /** Claim and run indices of the current job on this thread.
     * @p end and @p body are the job parameters the caller read
     * under _mutex (or owns outright), so no guarded state is
     * touched on the claim fast path. */
    void claimIndices(std::size_t end,
                      const std::function<void(std::size_t)> &body);

    // oma-lint: allow(guarded-member): filled in the constructor and
    // joined in the destructor; immutable while any worker runs.
    std::vector<std::jthread> _workers;

    /** Protects every guarded member below; leaf lock — never held
     * while calling out of the pool (rank table in sync.hh). */
    mutable Mutex _mutex{OMA_LOCK_RANK(lockrank::threadPool)};
    CondVar _wake; //!< Workers wait for a new job.
    CondVar _done; //!< Caller waits for job completion.
    std::uint64_t _jobGen OMA_GUARDED_BY(_mutex) = 0;
    unsigned _activeWorkers OMA_GUARDED_BY(_mutex) = 0;
    bool _stopping OMA_GUARDED_BY(_mutex) = false;

    // Next unclaimed index of the current job. Atomic so lanes can
    // claim without the mutex; ordering is inherited from the job
    // publication under _mutex.
    // oma-lint: allow(guarded-member): relaxed atomic claim counter;
    // store/load ordering piggybacks on the _mutex job handshake.
    std::atomic<std::size_t> _next{0};
    std::size_t _end OMA_GUARDED_BY(_mutex) = 0;
    const std::function<void(std::size_t)> *_body
        OMA_GUARDED_BY(_mutex) = nullptr;
    std::exception_ptr _error OMA_GUARDED_BY(_mutex);
    std::size_t _errorIndex OMA_GUARDED_BY(_mutex) = 0;

    ThreadPoolStats _stats OMA_GUARDED_BY(_mutex);
};

/**
 * One-shot helper: run body(i) for i in [begin, end) on @p threads
 * lanes (0 = hardware_concurrency). With one lane the loop runs
 * inline on the calling thread — the legacy serial path, with no
 * threads created and no synchronization.
 */
void parallelFor(unsigned threads, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &body);

} // namespace oma

#endif // OMA_SUPPORT_THREADPOOL_HH
