/**
 * @file
 * Strict JSON codecs and fingerprints for the query API types.
 */

#include "api/request.hh"

#include <utility>

#include "api/json.hh"
#include "os/osmodel.hh"
#include "store/store.hh"
#include "trace/tracefile.hh"
#include "workload/workload.hh"

namespace oma::api
{

namespace
{

/**
 * Strict member-set reader over one parsed JSON object: every
 * accessor marks its key consumed and reports a typed, positioned
 * error on absence or kind mismatch; finish() then rejects any
 * member the schema never asked for. The parser has already rejected
 * duplicate keys, so consumed-set bookkeeping is by name.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue *value, std::string context,
                 std::string &error)
        : _obj(value), _context(std::move(context)), _error(error)
    {
        if (_obj == nullptr || _obj->kind != JsonValue::Kind::Object) {
            _obj = nullptr;
            _error = _context + ": expected a JSON object";
        }
    }

    [[nodiscard]] bool failed() const { return _obj == nullptr; }

    /** Member @p name, recording it consumed; null + error when
     * absent (or when the reader already failed). */
    const JsonValue *
    get(std::string_view name)
    {
        if (_obj == nullptr)
            return nullptr;
        const JsonValue *value = _obj->find(name);
        if (value == nullptr) {
            fail(name, "required field is missing");
            return nullptr;
        }
        _seen.emplace_back(name);
        return value;
    }

    bool
    u64(std::string_view name, std::uint64_t &out)
    {
        const JsonValue *value = get(name);
        if (value == nullptr)
            return false;
        if (!value->asU64(out))
            return fail(name, "expected an unsigned integer");
        return true;
    }

    bool
    u64Vec(std::string_view name, std::vector<std::uint64_t> &out)
    {
        const JsonValue *value = get(name);
        if (value == nullptr)
            return false;
        if (value->kind != JsonValue::Kind::Array)
            return fail(name, "expected an array of unsigned "
                              "integers");
        out.clear();
        for (const JsonValue &element : value->array) {
            std::uint64_t v = 0;
            if (!element.asU64(v))
                return fail(name, "expected an array of unsigned "
                                  "integers");
            out.push_back(v);
        }
        return true;
    }

    bool
    real(std::string_view name, double &out)
    {
        const JsonValue *value = get(name);
        if (value == nullptr)
            return false;
        if (!value->asReal(out))
            return fail(name, "expected a finite number");
        return true;
    }

    bool
    boolean(std::string_view name, bool &out)
    {
        const JsonValue *value = get(name);
        if (value == nullptr)
            return false;
        if (value->kind != JsonValue::Kind::Bool)
            return fail(name, "expected a boolean");
        out = value->boolean;
        return true;
    }

    bool
    str(std::string_view name, std::string &out)
    {
        const JsonValue *value = get(name);
        if (value == nullptr)
            return false;
        if (value->kind != JsonValue::Kind::String)
            return fail(name, "expected a string");
        out = value->string;
        return true;
    }

    /** Reject members the schema never consumed. */
    bool
    finish()
    {
        if (_obj == nullptr)
            return false;
        for (const auto &member : _obj->object) {
            bool consumed = false;
            for (const std::string_view name : _seen)
                consumed = consumed || name == member.first;
            if (!consumed)
                return fail(member.first, "unknown field");
        }
        return true;
    }

  private:
    bool
    fail(std::string_view name, std::string_view what)
    {
        _error = _context + "." + std::string(name) + ": " +
            std::string(what);
        _obj = nullptr;
        return false;
    }

    const JsonValue *_obj;
    std::string _context;
    std::string &_error;
    std::vector<std::string_view> _seen;
};

// ----- geometry sub-objects -----

void
appendCacheGeom(std::string &out, const CacheGeometry &geom)
{
    out += "{\"capacity_bytes\":";
    appendJsonU64(out, geom.capacityBytes);
    out += ",\"line_bytes\":";
    appendJsonU64(out, geom.lineBytes);
    out += ",\"assoc\":";
    appendJsonU64(out, geom.assoc);
    out.push_back('}');
}

bool
readCacheGeom(const JsonValue *value, const std::string &context,
              CacheGeometry &out, std::string &error)
{
    ObjectReader r(value, context, error);
    const bool ok = r.u64("capacity_bytes", out.capacityBytes) &&
        r.u64("line_bytes", out.lineBytes) &&
        r.u64("assoc", out.assoc);
    return ok && r.finish();
}

void
appendTlbGeom(std::string &out, const TlbGeometry &geom)
{
    out += "{\"entries\":";
    appendJsonU64(out, geom.entries);
    out += ",\"assoc\":";
    appendJsonU64(out, geom.assoc);
    out.push_back('}');
}

bool
readTlbGeom(const JsonValue *value, const std::string &context,
            TlbGeometry &out, std::string &error)
{
    ObjectReader r(value, context, error);
    const bool ok =
        r.u64("entries", out.entries) && r.u64("assoc", out.assoc);
    return ok && r.finish();
}

void
appendU64Array(std::string &out, std::string_view name,
               const std::vector<std::uint64_t> &values)
{
    appendJsonString(out, name);
    out += ":[";
    bool first = true;
    for (const std::uint64_t v : values) {
        if (!first)
            out.push_back(',');
        first = false;
        appendJsonU64(out, v);
    }
    out.push_back(']');
}

} // namespace

const char *
strategyName(Strategy strategy)
{
    return strategy == Strategy::Annealing ? "annealing"
                                           : "exhaustive";
}

bool
strategyFromName(std::string_view name, Strategy &out)
{
    if (name == "exhaustive") {
        out = Strategy::Exhaustive;
        return true;
    }
    if (name == "annealing") {
        out = Strategy::Annealing;
        return true;
    }
    return false;
}

bool
benchmarkFromName(std::string_view name, BenchmarkId &out)
{
    for (const BenchmarkId id : allBenchmarks()) {
        if (name == benchmarkName(id)) {
            out = id;
            return true;
        }
    }
    return false;
}

bool
osKindFromName(std::string_view name, OsKind &out)
{
    for (const OsKind kind : {OsKind::Ultrix, OsKind::Mach}) {
        if (name == osKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

void
AllocationRequest::fingerprint(Fingerprint &fp) const
{
    fp.u64("api.format_version", apiFormatVersion);
    fp.u64("store.format_version", ArtifactStore::formatVersion);
    fp.u64("trace.format_version", TraceFileHeader::currentVersion);
    fp.str("run.os", osKindName(os));
    fp.u64("run.seed", seed);
    fp.u64("run.references", references);
    fp.u64("workloads.n", workloads.size());
    for (const BenchmarkId id : workloads)
        benchmarkParams(id).fingerprint(fp);
    space.fingerprint(fp);
    fp.u64("search.max_cache_ways", maxCacheWays);
    fp.real("search.budget_rbe", budgetRbe);
    fp.u64("search.top_k", topK);
    // Strategy and its own seed are content, not execution detail:
    // an annealing answer must never be served for an exhaustive
    // query (or for an annealing query with a different seed), so
    // they key the response. The annealing knobs are skipped for
    // exhaustive requests, where they cannot affect the answer.
    fp.str("search.strategy", strategyName(strategy));
    if (strategy == Strategy::Annealing) {
        fp.u64("anneal.seed", annealing.seed);
        fp.u64("anneal.chains", annealing.chains);
        fp.u64("anneal.iterations", annealing.iterations);
        fp.real("anneal.initial_temp", annealing.initialTemp);
        fp.real("anneal.final_temp", annealing.finalTemp);
    }
}

Fingerprint
AllocationRequest::responseKey() const
{
    Fingerprint fp;
    fingerprint(fp);
    fp.str("artifact", "response");
    return fp;
}

std::string
encodeRequest(const AllocationRequest &request)
{
    std::string out = "{\"schema\":";
    appendJsonString(out, requestSchema);
    out += ",\"workloads\":[";
    bool first = true;
    for (const BenchmarkId id : request.workloads) {
        if (!first)
            out.push_back(',');
        first = false;
        appendJsonString(out, benchmarkName(id));
    }
    out += "],\"os\":";
    appendJsonString(out, osKindName(request.os));
    out += ",\"references\":";
    appendJsonU64(out, request.references);
    out += ",\"seed\":";
    appendJsonU64(out, request.seed);

    const ConfigSpace &s = request.space;
    out += ",\"space\":{";
    appendU64Array(out, "tlb_entries", s.tlbEntries);
    out.push_back(',');
    appendU64Array(out, "tlb_ways", s.tlbWays);
    out += ",\"tlb_full_assoc_max\":";
    appendJsonU64(out, s.tlbFullAssocMax);
    out.push_back(',');
    appendU64Array(out, "cache_kbytes", s.cacheKBytes);
    out.push_back(',');
    appendU64Array(out, "line_words", s.lineWords);
    out.push_back(',');
    appendU64Array(out, "cache_ways", s.cacheWays);
    out.push_back(',');
    appendU64Array(out, "victim_entries", s.victimEntries);
    out += ",\"victim_line_words\":";
    appendJsonU64(out, s.victimLineWords);
    out.push_back(',');
    appendU64Array(out, "wb_entries", s.wbEntries);
    out += ",\"wb_drain_cycles\":";
    appendJsonU64(out, s.wbDrainCycles);
    out.push_back(',');
    appendU64Array(out, "l2_kbytes", s.l2KBytes);
    out += ",\"l2_line_words\":";
    appendJsonU64(out, s.l2LineWords);
    out += ",\"l2_ways\":";
    appendJsonU64(out, s.l2Ways);
    out += ",\"hier_l1_line_words\":";
    appendJsonU64(out, s.hierL1LineWords);
    out += ",\"hier_l1_ways\":";
    appendJsonU64(out, s.hierL1Ways);
    out.push_back('}');

    out += ",\"max_cache_ways\":";
    appendJsonU64(out, request.maxCacheWays);
    out += ",\"budget_rbe\":";
    appendJsonReal(out, request.budgetRbe);
    out += ",\"strategy\":";
    appendJsonString(out, strategyName(request.strategy));
    out += ",\"annealing\":{\"seed\":";
    appendJsonU64(out, request.annealing.seed);
    out += ",\"chains\":";
    appendJsonU64(out, request.annealing.chains);
    out += ",\"iterations\":";
    appendJsonU64(out, request.annealing.iterations);
    out += ",\"initial_temp\":";
    appendJsonReal(out, request.annealing.initialTemp);
    out += ",\"final_temp\":";
    appendJsonReal(out, request.annealing.finalTemp);
    out += "},\"top_k\":";
    appendJsonU64(out, request.topK);
    out += ",\"threads\":";
    appendJsonU64(out, request.threads);
    out.push_back('}');
    return out;
}

bool
decodeRequest(std::string_view json, AllocationRequest &out,
              std::string &error)
{
    JsonValue doc;
    if (!parseJson(json, doc, error))
        return false;
    out = AllocationRequest();

    ObjectReader r(&doc, "request", error);
    std::string schema;
    if (!r.str("schema", schema))
        return false;
    if (schema != requestSchema) {
        error = "request.schema: expected \"" +
            std::string(requestSchema) + "\", got \"" + schema + "\"";
        return false;
    }

    const JsonValue *workloads = r.get("workloads");
    if (workloads == nullptr)
        return false;
    if (workloads->kind != JsonValue::Kind::Array) {
        error = "request.workloads: expected an array of benchmark "
                "names";
        return false;
    }
    out.workloads.clear();
    for (const JsonValue &element : workloads->array) {
        BenchmarkId id = BenchmarkId::Mpeg;
        if (element.kind != JsonValue::Kind::String ||
            !benchmarkFromName(element.string, id)) {
            error = "request.workloads: unknown benchmark name";
            return false;
        }
        out.workloads.push_back(id);
    }

    std::string name;
    if (!r.str("os", name))
        return false;
    if (!osKindFromName(name, out.os)) {
        error = "request.os: unknown OS personality \"" + name + "\"";
        return false;
    }
    if (!r.u64("references", out.references) ||
        !r.u64("seed", out.seed))
        return false;

    ConfigSpace &s = out.space;
    ObjectReader rs(r.get("space"), "request.space", error);
    const bool space_ok = rs.u64Vec("tlb_entries", s.tlbEntries) &&
        rs.u64Vec("tlb_ways", s.tlbWays) &&
        rs.u64("tlb_full_assoc_max", s.tlbFullAssocMax) &&
        rs.u64Vec("cache_kbytes", s.cacheKBytes) &&
        rs.u64Vec("line_words", s.lineWords) &&
        rs.u64Vec("cache_ways", s.cacheWays) &&
        rs.u64Vec("victim_entries", s.victimEntries) &&
        rs.u64("victim_line_words", s.victimLineWords) &&
        rs.u64Vec("wb_entries", s.wbEntries) &&
        rs.u64("wb_drain_cycles", s.wbDrainCycles) &&
        rs.u64Vec("l2_kbytes", s.l2KBytes) &&
        rs.u64("l2_line_words", s.l2LineWords) &&
        rs.u64("l2_ways", s.l2Ways) &&
        rs.u64("hier_l1_line_words", s.hierL1LineWords) &&
        rs.u64("hier_l1_ways", s.hierL1Ways);
    if (!space_ok || !rs.finish())
        return false;

    if (!r.u64("max_cache_ways", out.maxCacheWays) ||
        !r.real("budget_rbe", out.budgetRbe))
        return false;
    if (!r.str("strategy", name))
        return false;
    if (!strategyFromName(name, out.strategy)) {
        error = "request.strategy: unknown strategy \"" + name + "\"";
        return false;
    }

    ObjectReader ra(r.get("annealing"), "request.annealing", error);
    std::uint64_t chains = 0;
    const bool anneal_ok = ra.u64("seed", out.annealing.seed) &&
        ra.u64("chains", chains) &&
        ra.u64("iterations", out.annealing.iterations) &&
        ra.real("initial_temp", out.annealing.initialTemp) &&
        ra.real("final_temp", out.annealing.finalTemp);
    if (!anneal_ok || !ra.finish())
        return false;
    out.annealing.chains = unsigned(chains);

    std::uint64_t threads = 0;
    if (!r.u64("top_k", out.topK) || !r.u64("threads", threads))
        return false;
    out.threads = unsigned(threads);
    return r.finish();
}

std::string
encodeResponse(const AllocationResponse &response)
{
    std::string out = "{\"schema\":";
    appendJsonString(out, responseSchema);
    out += ",\"strategy\":";
    appendJsonString(out, strategyName(response.strategy));
    out += ",\"in_budget\":";
    appendJsonU64(out, response.inBudget);
    out += ",\"candidates\":";
    appendJsonU64(out, response.candidates);
    out += ",\"evaluations\":";
    appendJsonU64(out, response.evaluations);
    out += ",\"pruned_subspaces\":";
    appendJsonU64(out, response.prunedSubspaces);
    out += ",\"base_cpi\":";
    appendJsonReal(out, response.baseCpi);
    out += ",\"wb_cpi\":";
    appendJsonReal(out, response.wbCpi);
    out += ",\"other_cpi\":";
    appendJsonReal(out, response.otherCpi);
    out += ",\"allocations\":[";
    bool first = true;
    for (const Allocation &a : response.allocations) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "{\"rank\":";
        appendJsonU64(out, a.rank);
        out += ",\"tlb\":";
        appendTlbGeom(out, a.tlb);
        out += ",\"icache\":";
        appendCacheGeom(out, a.icache);
        out += ",\"dcache\":";
        appendCacheGeom(out, a.dcache);
        out += ",\"area_rbe\":";
        appendJsonReal(out, a.areaRbe);
        out += ",\"cpi\":";
        appendJsonReal(out, a.cpi);
        out += ",\"tlb_cpi\":";
        appendJsonReal(out, a.tlbCpi);
        out += ",\"icache_cpi\":";
        appendJsonReal(out, a.icacheCpi);
        out += ",\"dcache_cpi\":";
        appendJsonReal(out, a.dcacheCpi);
        out += ",\"victim_entries\":";
        appendJsonU64(out, a.victimEntries);
        out += ",\"wb_entries\":";
        appendJsonU64(out, a.wbEntries);
        out += ",\"has_l2\":";
        out += a.hasL2 ? "true" : "false";
        out += ",\"unified\":";
        out += a.unified ? "true" : "false";
        out += ",\"l2\":";
        appendCacheGeom(out, a.l2);
        out += ",\"hierarchy_cpi\":";
        appendJsonReal(out, a.hierarchyCpi);
        out += ",\"wb_cpi\":";
        appendJsonReal(out, a.wbCpi);
        out.push_back('}');
    }
    out += "]}";
    return out;
}

bool
decodeResponse(std::string_view json, AllocationResponse &out,
               std::string &error)
{
    JsonValue doc;
    if (!parseJson(json, doc, error))
        return false;
    out = AllocationResponse();

    ObjectReader r(&doc, "response", error);
    std::string schema;
    if (!r.str("schema", schema))
        return false;
    if (schema != responseSchema) {
        error = "response.schema: expected \"" +
            std::string(responseSchema) + "\", got \"" + schema +
            "\"";
        return false;
    }
    std::string name;
    if (!r.str("strategy", name))
        return false;
    if (!strategyFromName(name, out.strategy)) {
        error = "response.strategy: unknown strategy \"" + name +
            "\"";
        return false;
    }
    const bool counts_ok = r.u64("in_budget", out.inBudget) &&
        r.u64("candidates", out.candidates) &&
        r.u64("evaluations", out.evaluations) &&
        r.u64("pruned_subspaces", out.prunedSubspaces) &&
        r.real("base_cpi", out.baseCpi) &&
        r.real("wb_cpi", out.wbCpi) &&
        r.real("other_cpi", out.otherCpi);
    if (!counts_ok)
        return false;

    const JsonValue *allocations = r.get("allocations");
    if (allocations == nullptr)
        return false;
    if (allocations->kind != JsonValue::Kind::Array) {
        error = "response.allocations: expected an array";
        return false;
    }
    out.allocations.clear();
    for (const JsonValue &element : allocations->array) {
        const std::string ctx = "response.allocations[" +
            std::to_string(out.allocations.size()) + "]";
        Allocation a;
        ObjectReader re(&element, ctx, error);
        std::uint64_t rank = 0;
        const bool fields_ok = re.u64("rank", rank) &&
            readTlbGeom(re.get("tlb"), ctx + ".tlb", a.tlb, error) &&
            readCacheGeom(re.get("icache"), ctx + ".icache", a.icache,
                          error) &&
            readCacheGeom(re.get("dcache"), ctx + ".dcache", a.dcache,
                          error) &&
            re.real("area_rbe", a.areaRbe) && re.real("cpi", a.cpi) &&
            re.real("tlb_cpi", a.tlbCpi) &&
            re.real("icache_cpi", a.icacheCpi) &&
            re.real("dcache_cpi", a.dcacheCpi) &&
            re.u64("victim_entries", a.victimEntries) &&
            re.u64("wb_entries", a.wbEntries) &&
            re.boolean("has_l2", a.hasL2) &&
            re.boolean("unified", a.unified) &&
            readCacheGeom(re.get("l2"), ctx + ".l2", a.l2, error) &&
            re.real("hierarchy_cpi", a.hierarchyCpi) &&
            re.real("wb_cpi", a.wbCpi);
        if (!fields_ok || !re.finish())
            return false;
        a.rank = std::size_t(rank);
        out.allocations.push_back(a);
    }
    return r.finish();
}

std::string
encodeError(std::string_view message)
{
    std::string out = "{\"schema\":";
    appendJsonString(out, errorSchema);
    out += ",\"error\":";
    appendJsonString(out, message);
    out.push_back('}');
    return out;
}

} // namespace oma::api
