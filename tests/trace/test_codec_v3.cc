/**
 * @file
 * Property and fuzz tests for trace format v3's delta/varint byte
 * layer (trace/codec.hh) and the two consumers that frame it: the
 * artifact-store trace codec (store/codec.hh) and the v3 trace file
 * (trace/tracefile.hh). Round trips must be exact for empty,
 * single-reference, maximum-delta and randomized streams; every
 * truncation and every single-bit corruption must either be rejected
 * outright or surface as a changed decode that the framing checksum
 * is guaranteed to catch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "store/codec.hh"
#include "support/rng.hh"
#include "trace/codec.hh"
#include "trace/recorded.hh"
#include "trace/tracefile.hh"

namespace oma
{
namespace
{

MemRef
randomRef(Rng &rng)
{
    MemRef r;
    r.vaddr = rng.next() & 0xffffffff;
    r.paddr = rng.next() & 0x3fffffff;
    r.asid = std::uint32_t(rng.below(64));
    r.kind = static_cast<RefKind>(rng.below(3));
    r.mode = static_cast<Mode>(rng.below(2));
    r.mapped = rng.chance(0.8);
    return r;
}

/** Random packed columns with encodable flag bytes (kind < 3, four
 * bits total — what RecordedTrace::packFlags produces). */
trace::ChunkColumns
randomColumns(Rng &rng, std::size_t n)
{
    trace::ChunkColumns c;
    for (std::size_t i = 0; i < n; ++i) {
        c.vaddr.push_back(std::uint32_t(rng.next()));
        c.paddr.push_back(std::uint32_t(rng.next()));
        // Long ASID runs with occasional switches, like real streams.
        c.asid.push_back(rng.chance(0.01) || c.asid.empty()
                             ? std::uint8_t(rng.below(64))
                             : c.asid.back());
        c.flags.push_back(std::uint8_t(
            rng.below(3) | (rng.chance(0.5) ? 0x4 : 0) |
            (rng.chance(0.5) ? 0x8 : 0)));
    }
    return c;
}

std::string
encode(const trace::ChunkColumns &c)
{
    return trace::encodeColumns(c.vaddr.data(), c.paddr.data(),
                                c.asid.data(), c.flags.data(),
                                c.vaddr.size());
}

void
expectSameColumns(const trace::ChunkColumns &got,
                  const trace::ChunkColumns &want)
{
    EXPECT_EQ(got.vaddr, want.vaddr);
    EXPECT_EQ(got.paddr, want.paddr);
    EXPECT_EQ(got.asid, want.asid);
    EXPECT_EQ(got.flags, want.flags);
}

bool
sameColumns(const trace::ChunkColumns &a, const trace::ChunkColumns &b)
{
    return a.vaddr == b.vaddr && a.paddr == b.paddr &&
        a.asid == b.asid && a.flags == b.flags;
}

/** Field-exact trace equality (size, refs, events, otherCpi bits). */
bool
sameTrace(const RecordedTrace &a, const RecordedTrace &b)
{
    if (a.size() != b.size() ||
        a.events().size() != b.events().size())
        return false;
    const double ac = a.otherCpi(), bc = b.otherCpi();
    if (std::memcmp(&ac, &bc, sizeof ac) != 0)
        return false;
    for (std::size_t e = 0; e < a.events().size(); ++e) {
        const TraceEvent &x = a.events()[e], &y = b.events()[e];
        if (x.index != y.index || x.vpn != y.vpn ||
            x.asid != y.asid || x.global != y.global)
            return false;
    }
    for (std::uint64_t i = 0; i < a.size(); ++i) {
        const MemRef x = a.at(i), y = b.at(i);
        if (x.vaddr != y.vaddr || x.paddr != y.paddr ||
            x.asid != y.asid || x.kind != y.kind || x.mode != y.mode ||
            x.mapped != y.mapped)
            return false;
    }
    return true;
}

// ----- varint / zigzag primitives -----

TEST(CodecV3, VarintRoundTripsEdgeValues)
{
    std::vector<std::uint64_t> values = {
        0, 1, 127, 128, 129, 16383, 16384, 0xffffffffull,
        0x100000000ull, std::numeric_limits<std::uint64_t>::max()};
    for (unsigned shift = 0; shift < 64; ++shift)
        values.push_back(1ull << shift);
    std::string buf;
    for (std::uint64_t v : values)
        trace::putVarint(buf, v);
    std::size_t pos = 0;
    for (std::uint64_t want : values) {
        std::uint64_t got = 0;
        ASSERT_TRUE(trace::getVarint(buf, pos, got));
        EXPECT_EQ(got, want);
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(CodecV3, VarintRejectsTruncationAndOverlongEncodings)
{
    std::string buf;
    trace::putVarint(buf, std::numeric_limits<std::uint64_t>::max());
    ASSERT_EQ(buf.size(), 10u);
    // Every strict prefix is a truncation.
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        std::size_t pos = 0;
        std::uint64_t v = 0;
        EXPECT_FALSE(trace::getVarint(
            std::string_view(buf.data(), cut), pos, v));
    }
    // An 11-byte chain of continuation bits can encode nothing.
    const std::string overlong(11, char(0x80));
    std::size_t pos = 0;
    std::uint64_t v = 0;
    EXPECT_FALSE(trace::getVarint(overlong, pos, v));
    // Ten bytes whose top byte carries bits past 2^64.
    std::string wide(9, char(0x80));
    wide.push_back(0x02);
    pos = 0;
    EXPECT_FALSE(trace::getVarint(wide, pos, v));
    // ...while the same shape encoding exactly bit 63 is valid.
    std::string top(9, char(0x80));
    top.push_back(0x01);
    pos = 0;
    ASSERT_TRUE(trace::getVarint(top, pos, v));
    EXPECT_EQ(v, 1ull << 63);
}

TEST(CodecV3, ZigzagRoundTripsTheFullSignedRange)
{
    for (std::int64_t v :
         {std::int64_t(0), std::int64_t(1), std::int64_t(-1),
          std::int64_t(0xffffffffll), std::int64_t(-0xffffffffll),
          std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::max()})
        EXPECT_EQ(trace::unzigzag(trace::zigzag(v)), v);
    // Small magnitudes map to small codes (what makes deltas cheap).
    EXPECT_LT(trace::zigzag(-3), 8u);
}

TEST(CodecV3, ChecksumSeedChainingMatchesConcatenation)
{
    const std::string a = "payload-bytes", b = "event-bytes";
    EXPECT_EQ(trace::fnv1a32(b, trace::fnv1a32(a)),
              trace::fnv1a32(a + b));
    EXPECT_NE(trace::fnv1a32(a), trace::fnv1a32(b));
}

// ----- column codec round trips -----

TEST(CodecV3, ColumnsRoundTripRandomizedSizes)
{
    Rng rng(101);
    for (std::size_t n : {std::size_t(0), std::size_t(1),
                          std::size_t(2), std::size_t(255),
                          std::size_t(256), std::size_t(4097),
                          RecordedTrace::chunkRefs}) {
        SCOPED_TRACE(n);
        const trace::ChunkColumns want = randomColumns(rng, n);
        trace::ChunkColumns got;
        ASSERT_TRUE(trace::decodeColumns(encode(want), n, got));
        expectSameColumns(got, want);
    }
}

TEST(CodecV3, ColumnsRoundTripMaxDeltaAlternation)
{
    // Worst-case predictor input: every same-kind delta swings the
    // full 32-bit range, in both directions, for every column.
    trace::ChunkColumns want;
    for (std::size_t i = 0; i < 1024; ++i) {
        const std::uint32_t v = i % 2 ? 0xffffffffu : 0u;
        want.vaddr.push_back(v);
        want.paddr.push_back(~v);
        want.asid.push_back(i % 2 ? 0xff : 0);
        want.flags.push_back(std::uint8_t(i % 3));
    }
    trace::ChunkColumns got;
    ASSERT_TRUE(trace::decodeColumns(encode(want), 1024, got));
    expectSameColumns(got, want);
}

TEST(CodecV3, SequentialStreamsEncodeCompactly)
{
    // The payoff case: sequential fetch addresses and a constant
    // ASID must beat the packed 10 B/ref representation soundly.
    trace::ChunkColumns c;
    for (std::size_t i = 0; i < 8192; ++i) {
        c.vaddr.push_back(std::uint32_t(0x400000 + 4 * i));
        c.paddr.push_back(std::uint32_t(0x10000 + 4 * i));
        c.asid.push_back(7);
        c.flags.push_back(0x8 | std::uint8_t(RefKind::IFetch));
    }
    const std::string payload = encode(c);
    EXPECT_LT(payload.size(), c.vaddr.size() * 3);
    trace::ChunkColumns got;
    ASSERT_TRUE(trace::decodeColumns(payload, c.vaddr.size(), got));
    expectSameColumns(got, c);
}

// ----- column codec corruption -----

TEST(CodecV3, DecodeRejectsEveryTruncation)
{
    Rng rng(103);
    const trace::ChunkColumns want = randomColumns(rng, 257);
    const std::string payload = encode(want);
    trace::ChunkColumns out;
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        EXPECT_FALSE(trace::decodeColumns(
            std::string_view(payload.data(), cut), 257, out))
            << "prefix " << cut << " of " << payload.size();
    }
}

TEST(CodecV3, DecodeRejectsWrongReferenceCounts)
{
    Rng rng(107);
    const trace::ChunkColumns want = randomColumns(rng, 64);
    const std::string payload = encode(want);
    trace::ChunkColumns out;
    EXPECT_FALSE(trace::decodeColumns(payload, 63, out));
    EXPECT_FALSE(trace::decodeColumns(payload, 65, out));
    EXPECT_FALSE(trace::decodeColumns(payload, 0, out));
    // And a non-empty count against an empty payload.
    EXPECT_FALSE(trace::decodeColumns(std::string_view(), 1, out));
}

TEST(CodecV3, EveryBitFlipIsRejectedOrChangesTheChecksum)
{
    // The codec's own framing need not catch every flip — but any
    // flip it accepts must decode to *different* columns and must
    // change the FNV-1a checksum its framers store next to the
    // payload, so no corruption can reach a consumer unnoticed.
    Rng rng(109);
    const trace::ChunkColumns want = randomColumns(rng, 48);
    const std::string payload = encode(want);
    const std::uint32_t sum = trace::fnv1a32(payload);
    for (std::size_t byte = 0; byte < payload.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::string mutated = payload;
            mutated[byte] = char(mutated[byte] ^ (1u << bit));
            EXPECT_NE(trace::fnv1a32(mutated), sum);
            trace::ChunkColumns out;
            if (trace::decodeColumns(mutated, 48, out)) {
                EXPECT_FALSE(sameColumns(out, want))
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

TEST(CodecV3, DecodeSurvivesRandomGarbage)
{
    // Pure fuzz: arbitrary bytes must never crash or over-read
    // (ASan/UBSan job); acceptance is not required, only safety.
    Rng rng(113);
    trace::ChunkColumns out;
    for (int i = 0; i < 2000; ++i) {
        std::string garbage(rng.below(200), '\0');
        for (char &ch : garbage)
            ch = char(rng.next());
        (void)trace::decodeColumns(garbage, 1 + rng.below(128), out);
    }
}

// ----- store trace codec framing -----

RecordedTrace
eventedTrace(std::uint64_t seed, std::uint64_t n)
{
    Rng rng(seed);
    RecordedTrace trace;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (rng.chance(0.01))
            trace.recordInvalidation(rng.below(1 << 20),
                                     std::uint32_t(rng.below(64)),
                                     rng.chance(0.2));
        trace.append(randomRef(rng));
    }
    trace.setOtherCpi(0.375);
    return trace;
}

TEST(CodecV3, StoreTraceRoundTripsExactly)
{
    for (std::uint64_t n :
         {std::uint64_t(0), std::uint64_t(1), std::uint64_t(1000),
          std::uint64_t(RecordedTrace::chunkRefs + 137)}) {
        SCOPED_TRACE(n);
        const RecordedTrace want = eventedTrace(5 + n, n);
        RecordedTrace got;
        ASSERT_TRUE(
            store::decodeTrace(store::encodeTrace(want), got));
        EXPECT_TRUE(sameTrace(got, want));
    }
}

TEST(CodecV3, StoreTraceRejectsEveryTruncation)
{
    const RecordedTrace want = eventedTrace(7, 500);
    const std::string payload = store::encodeTrace(want);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        RecordedTrace got;
        EXPECT_FALSE(store::decodeTrace(
            std::string_view(payload.data(), cut), got))
            << "prefix " << cut << " of " << payload.size();
    }
}

TEST(CodecV3, StoreTraceBitFlipsNeverDecodeToTheSameTrace)
{
    // decodeTrace's internal checksums catch flips in the chunk and
    // event regions; flips in unchecksummed header fields (size,
    // otherCpi) decode to a *different* trace, which the artifact
    // store's whole-payload checksum rejects before decodeTrace ever
    // runs. Either way no flip may round-trip silently.
    const RecordedTrace want = eventedTrace(11, 300);
    const std::string payload = store::encodeTrace(want);
    for (std::size_t byte = 0; byte < payload.size(); ++byte) {
        for (unsigned bit : {0u, 3u, 7u}) {
            std::string mutated = payload;
            mutated[byte] = char(mutated[byte] ^ (1u << bit));
            RecordedTrace got;
            if (store::decodeTrace(mutated, got)) {
                EXPECT_FALSE(sameTrace(got, want))
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

// ----- v3 trace file -----

std::string
tempTracePath(const char *tag)
{
    return testing::TempDir() + "/codec_v3_" + tag + ".trace";
}

TEST(CodecV3, TraceFileRoundTripsEventedMultiChunkStream)
{
    const RecordedTrace want =
        eventedTrace(13, RecordedTrace::chunkRefs + 4096);
    const std::string path = tempTracePath("roundtrip");
    writeTrace(path, want);
    const RecordedTrace got = readTrace(path);
    // Trailing events (index == size) are the one legal loss: replay
    // never fires them, so the writer never sees them.
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.events().size(), want.events().size());
    EXPECT_TRUE(sameTrace(got, want));
    std::remove(path.c_str());
}

TEST(CodecV3, TraceFileWritesTheCurrentVersion)
{
    ASSERT_EQ(TraceFileHeader::currentVersion, 3u);
    const std::string path = tempTracePath("version");
    writeTrace(path, eventedTrace(17, 64));
    std::ifstream in(path, std::ios::binary);
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    // oma-lint: allow(cast-audit): reading the object representation
    // of a trivially-copyable header field back from disk.
    in.read(reinterpret_cast<char *>(&magic), sizeof magic);
    // oma-lint: allow(cast-audit): reading the object representation
    // of a trivially-copyable header field back from disk.
    in.read(reinterpret_cast<char *>(&version), sizeof version);
    ASSERT_TRUE(in);
    EXPECT_EQ(magic, TraceFileHeader::magicValue);
    EXPECT_EQ(version, 3u);
    std::remove(path.c_str());
}

TEST(CodecV3Death, TraceFileChunkCorruptionIsFatal)
{
    const std::string path = tempTracePath("corrupt");
    writeTrace(path, eventedTrace(19, 2048));
    {
        // The file tail is chunk body (payload + events), both under
        // the chunk checksum; flip one bit there.
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(-1, std::ios::end);
        char last = 0;
        f.get(last);
        f.seekp(-1, std::ios::end);
        const char flipped = char(last ^ 0x10);
        f.write(&flipped, 1);
    }
    EXPECT_EXIT((void)readTrace(path), testing::ExitedWithCode(1),
                "corrupt trace file chunk");
    std::remove(path.c_str());
}

} // namespace
} // namespace oma
