/**
 * @file
 * Extension (Section 6 future work): allocate die area to the write
 * buffer and to a next-line instruction prefetcher — two of the
 * "other architectural structures" the paper suggests a fuller study
 * should place under the same budget.
 *
 * Part 1 sweeps write-buffer depth (with its MQF area cost) as a
 * standalone replayable component (core/component.hh): every depth
 * rides one suite sweep per OS and reports its buffer-full stall CPI
 * against the store stream. Part 2 toggles tagged next-line
 * I-prefetch and reports how much of Mach's long-path I-cache
 * penalty the prefetcher recovers for free area (prefetching reuses
 * the existing datapath; its silicon cost here is ~a write-buffer
 * entry of control, effectively noise on the 250 k-rbe scale).
 */

#include <iostream>
#include <iterator>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "support/table.hh"

using namespace oma;

int
main()
{
    omabench::banner("Extension: write-buffer depth and next-line "
                     "I-prefetch under the area lens",
                     "Section 6 (future work)");

    omabench::BenchReport report("ext_writebuffer");
    const RunConfig rc = omabench::benchRun(800000);
    AreaModel area;

    // --- Part 1: write-buffer depth ---
    std::cout << "Write-buffer depth (buffer-full stall CPI against "
                 "the store stream, suite average):\n";
    const std::uint64_t depths[] = {1, 2, 4, 8, 16};
    omabench::SweepSuiteSpec spec;
    for (std::uint64_t entries : depths) {
        WriteBufferParams p;
        p.entries = entries;
        spec.components.push_back(ComponentSlot::writeBuffer(p));
    }
    spec.progressLabel = "write-buffer sweep";
    const auto runs = omabench::runSweepSuite(spec, &report);

    TextTable wb_table({"Entries", "Area (rbes)", "Ultrix WB CPI",
                        "Mach WB CPI"});
    for (std::size_t i = 0; i < std::size(depths); ++i) {
        double cpi[2] = {0.0, 0.0};
        for (std::size_t o = 0; o < runs.size(); ++o) {
            for (const SweepResult &r : runs[o].results)
                cpi[o] += r.writeBuffer(i).cpi();
            cpi[o] /= double(runs[o].results.size());
        }
        const std::string slug =
            "wb_depth/" + std::to_string(depths[i]) + "e";
        report.metrics().set(slug + "/area_rbe",
                             area.writeBufferArea(depths[i]));
        report.metrics().set(slug + "/ultrix_wb_cpi", cpi[0]);
        report.metrics().set(slug + "/mach_wb_cpi", cpi[1]);
        wb_table.addRow(
            {std::to_string(depths[i]),
             fmtGrouped(
                 std::uint64_t(area.writeBufferArea(depths[i]))),
             fmtFixed(cpi[0], 3), fmtFixed(cpi[1], 3)});
    }
    wb_table.print(std::cout);
    std::cout << "\nDiminishing returns set in by 4-8 entries at a "
                 "few thousand rbe — cheap insurance, not a "
                 "competitor to cache capacity.\n\n";

    // --- Part 2: next-line instruction prefetch ---
    std::cout << "Tagged next-line I-prefetch (suite average I-cache "
                 "CPI):\n";
    TextTable pf_table({"I-cache", "OS", "no prefetch",
                        "with prefetch", "recovered"});
    for (std::uint64_t kb : {4, 8, 16}) {
        for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
            MachineParams mp = MachineParams::decstation3100();
            mp.icache.geom = CacheGeometry::fromWords(kb * 1024, 4, 1);
            double without = 0.0, with = 0.0;
            for (BenchmarkId id : allBenchmarks()) {
                mp.iPrefetchNextLine = false;
                without += runBaseline(id, os, rc, mp).cpi.icache;
                mp.iPrefetchNextLine = true;
                with += runBaseline(id, os, rc, mp).cpi.icache;
            }
            without /= numBenchmarks;
            with /= numBenchmarks;
            report.addReferences(2 * rc.references * numBenchmarks);
            report.metrics().set(
                "prefetch/" + std::to_string(kb) + "kb_" +
                    osKindName(os) + "/recovered_frac",
                without > 0 ? (without - with) / without : 0.0);
            pf_table.addRow(
                {fmtKBytes(kb * 1024) + " 4-word DM", osKindName(os),
                 fmtFixed(without, 3), fmtFixed(with, 3),
                 fmtPercent(without > 0
                                ? (without - with) / without
                                : 0.0)});
        }
    }
    pf_table.print(std::cout);
    std::cout
        << "\nReading guide: sequential prefetch helps exactly where "
           "Mach hurts — the once-through RPC paths are perfectly "
           "sequential, so the prefetcher recovers a larger share of "
           "the Mach I-cache penalty than of Ultrix's loop-dominated "
           "misses. It buys some of what longer lines buy in Figure "
           "9, without the area.\n";
    return 0;
}
