file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_noasid.dir/bench_ext_noasid.cc.o"
  "CMakeFiles/bench_ext_noasid.dir/bench_ext_noasid.cc.o.d"
  "bench_ext_noasid"
  "bench_ext_noasid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_noasid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
