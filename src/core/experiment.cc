/**
 * @file
 * Implementation of the baseline experiment driver.
 */

#include "core/experiment.hh"

#include "trace/filter.hh"

namespace oma
{

BaselineResult
runBaseline(const WorkloadParams &workload, OsKind os,
            const RunConfig &run, const MachineParams &machine_params)
{
    System system(workload, os, run.seed);
    Machine machine(machine_params);
    system.setInvalidateHook(
        [&machine](std::uint64_t vpn, std::uint32_t asid, bool global) {
            machine.mmu().invalidatePage(vpn, asid, global);
        });

    std::uint64_t consumed = 0;
    if (run.userOnly) {
        FilteredTraceSource user = userOnly(system, system.appAsid());
        consumed = machine.run(user, run.references);
    } else {
        consumed = machine.run(system, run.references);
    }

    BaselineResult result;
    // User-only simulation sees only application instructions, so the
    // whole "Other" rate is the application's.
    const double other = run.userOnly ? workload.userOtherCpi
                                      : system.otherCpiSoFar();
    result.cpi = machine.breakdown(other);
    result.instructions = machine.stalls().instructions;
    result.references = consumed;
    result.userFraction =
        run.userOnly ? 1.0 : system.userInstructionFraction();
    result.mmu = machine.mmu().stats();
    result.icacheMissRatio = machine.icache().stats().missRatio();
    result.dcacheMissRatio = machine.dcache().stats().missRatio();
    return result;
}

BaselineResult
runBaseline(BenchmarkId id, OsKind os, const RunConfig &run,
            const MachineParams &machine_params)
{
    return runBaseline(benchmarkParams(id), os, run, machine_params);
}

} // namespace oma
