file(REMOVE_RECURSE
  "CMakeFiles/caltool.dir/__/tools/caltool.cc.o"
  "CMakeFiles/caltool.dir/__/tools/caltool.cc.o.d"
  "caltool"
  "caltool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caltool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
