# Empty compiler generated dependencies file for oma_workload.
# This may be replaced when dependencies are built.
