/**
 * @file
 * Batched trace-replay driver for the MMU model.
 *
 * The TLB leg of a sweep used to decode a MemRef per reference just
 * to read four fields back out of it. This driver walks the packed
 * RecordedTrace columns chunk by chunk and feeds them straight to
 * Mmu::translatePacked, firing the trace's pinned invalidation
 * events at exactly the positions the scalar replay fires them.
 * Chunks with no pending events run a dense inner loop with no
 * event bookkeeping at all — the common tail once a run's
 * invalidation burst has passed.
 *
 * The event interleave and the translation body are shared with the
 * scalar path, so the replay is bitwise-identical to
 * RecordedTrace::replay + Mmu::translate by construction
 * (tests/core/test_batched_replay.cc).
 */

#ifndef OMA_TLB_REPLAY_HH
#define OMA_TLB_REPLAY_HH

#include <cstdint>

#include "tlb/mmu.hh"
#include "trace/recorded.hh"

namespace oma
{

/**
 * Replay every reference in @p trace through @p mmu, delivering the
 * trace's invalidation events before the reference each is pinned
 * to (the batched form of replay(translate, invalidatePage)).
 *
 * @return References delivered to the MMU (trace.size()).
 */
std::uint64_t replayTranslateBatched(const RecordedTrace &trace,
                                     Mmu &mmu);

} // namespace oma

#endif // OMA_TLB_REPLAY_HH
