/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, invalid arguments):
 * the process exits cleanly with an error code. panic() is for
 * internal invariant violations (library bugs): the process aborts so
 * a debugger or core dump can capture the state.
 */

#ifndef OMA_SUPPORT_LOGGING_HH
#define OMA_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace oma
{

/** Print a formatted message to stderr with a severity prefix. */
void logMessage(const char *severity, const std::string &msg);

/**
 * Terminate because of a user-caused error (bad configuration or
 * arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate because of an internal library bug. Calls abort() so the
 * failure is debuggable.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning that does not stop execution. */
void warn(const std::string &msg);

/** Print an informational status message. */
void inform(const std::string &msg);

/**
 * Guard against a user-facing error: calls fatal() with @p msg when
 * @p cond is true (@p cond states the *failure* condition, as in
 * `fatalIf(entries == 0, ...)`); a false condition is a no-op.
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/**
 * Guard against an internal invariant violation: calls panic() with
 * @p msg when @p cond is true (@p cond states the *violation*, as in
 * `panicIf(results.empty(), ...)`); a false condition is a no-op.
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace oma

#endif // OMA_SUPPORT_LOGGING_HH
