# Empty dependencies file for bench_ext_victim.
# This may be replaced when dependencies are built.
