#include "trace/codec.hh"

#include "support/logging.hh"
#include "trace/memref.hh"
#include "trace/recorded.hh"

namespace oma::trace
{

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(char(std::uint8_t(v) | 0x80));
        v >>= 7;
    }
    out.push_back(char(std::uint8_t(v)));
}

bool
getVarint(std::string_view in, std::size_t &pos, std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= in.size())
            return false;
        const std::uint8_t byte = std::uint8_t(in[pos++]);
        if (shift == 63 && (byte & 0x7e) != 0)
            return false; // bits past 2^64 — over-long encoding
        v |= std::uint64_t(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return true;
    }
    return false; // an 11th continuation byte — over-long encoding
}

std::uint32_t
fnv1a32(std::string_view bytes, std::uint32_t seed)
{
    std::uint32_t h = seed;
    for (const char c : bytes) {
        h ^= std::uint8_t(c);
        h *= 0x01000193u;
    }
    return h;
}

namespace
{

/** Last same-kind address seen, one slot per RefKind. */
struct KindPredictor
{
    std::int64_t last[numRefKinds] = {0, 0, 0};
};

void
encodeAddrColumn(std::string &out, const std::uint32_t *addr,
                 const std::uint8_t *flags, std::size_t n)
{
    KindPredictor pred;
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned kind = flags[i] & RecordedTrace::kindMask;
        const std::int64_t value = std::int64_t(addr[i]);
        putVarint(out, zigzag(value - pred.last[kind]));
        pred.last[kind] = value;
    }
}

bool
decodeAddrColumn(std::string_view in, std::size_t &pos,
                 const std::uint8_t *flags, std::size_t n,
                 std::vector<std::uint32_t> &out)
{
    KindPredictor pred;
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t enc = 0;
        if (!getVarint(in, pos, enc))
            return false;
        const unsigned kind = flags[i] & RecordedTrace::kindMask;
        const std::int64_t value = pred.last[kind] + unzigzag(enc);
        if (value < 0 || value > std::int64_t(0xffffffffLL))
            return false; // delta left the 32-bit address domain
        pred.last[kind] = value;
        out.push_back(std::uint32_t(value));
    }
    return true;
}

} // namespace

std::string
encodeColumns(const std::uint32_t *vaddr, const std::uint32_t *paddr,
              const std::uint8_t *asid, const std::uint8_t *flags,
              std::size_t n)
{
    std::string out;
    // Flag nibbles first: both address columns predict per kind, so
    // the decoder needs the kinds before either address column.
    for (std::size_t i = 0; i < n; ++i) {
        panicIf(flags[i] > 0xf ||
                    (flags[i] & RecordedTrace::kindMask) >= numRefKinds,
                "unencodable trace flag byte");
    }
    for (std::size_t i = 0; i < n; i += 2) {
        const std::uint8_t hi =
            i + 1 < n ? std::uint8_t(flags[i + 1] << 4) : 0;
        out.push_back(char(flags[i] | hi));
    }
    // ASID runs.
    for (std::size_t i = 0; i < n;) {
        std::size_t run = 1;
        while (i + run < n && asid[i + run] == asid[i])
            ++run;
        putVarint(out, run);
        out.push_back(char(asid[i]));
        i += run;
    }
    encodeAddrColumn(out, vaddr, flags, n);
    encodeAddrColumn(out, paddr, flags, n);
    return out;
}

bool
decodeColumns(std::string_view payload, std::size_t n,
              ChunkColumns &out)
{
    std::size_t pos = 0;

    out.flags.clear();
    out.flags.reserve(n);
    for (std::size_t i = 0; i < n; i += 2) {
        if (pos >= payload.size())
            return false;
        const std::uint8_t packed = std::uint8_t(payload[pos++]);
        out.flags.push_back(packed & 0xf);
        if (i + 1 < n)
            out.flags.push_back(packed >> 4);
        else if ((packed >> 4) != 0)
            return false; // the pad nibble must stay zero
    }
    for (const std::uint8_t f : out.flags) {
        // A kind of 3 has no RefKind (and would index past the
        // per-kind predictors); only corruption produces it.
        if ((f & RecordedTrace::kindMask) >= numRefKinds)
            return false;
    }

    out.asid.clear();
    out.asid.reserve(n);
    while (out.asid.size() < n) {
        std::uint64_t run = 0;
        if (!getVarint(payload, pos, run))
            return false;
        if (run == 0 || run > n - out.asid.size())
            return false; // run overshoots the chunk
        if (pos >= payload.size())
            return false;
        const std::uint8_t value = std::uint8_t(payload[pos++]);
        out.asid.insert(out.asid.end(), std::size_t(run), value);
    }

    if (!decodeAddrColumn(payload, pos, out.flags.data(), n,
                          out.vaddr) ||
        !decodeAddrColumn(payload, pos, out.flags.data(), n,
                          out.paddr))
        return false;
    return pos == payload.size(); // no trailing bytes
}

} // namespace oma::trace
