/**
 * @file
 * Tests for the configuration space and the allocation search.
 */

#include <gtest/gtest.h>

#include "core/search.hh"

namespace oma
{
namespace
{

/** Synthetic CPI tables with known structure. */
ComponentCpiTables
syntheticTables()
{
    ConfigSpace space;
    ComponentCpiTables tables;
    tables.tlbGeoms = space.tlbGeometries();
    tables.icacheGeoms = space.cacheGeometries();
    tables.dcacheGeoms = space.cacheGeometries();
    tables.baseCpi = 1.2;
    // CPI contributions fall with capacity (and slightly with ways),
    // a clean monotone benefit model.
    auto cache_cpi = [](const CacheGeometry &g) {
        return 2000.0 / double(g.capacityBytes) +
            0.01 / double(g.assoc);
    };
    for (const auto &g : tables.icacheGeoms)
        tables.icacheCpi.push_back(cache_cpi(g));
    for (const auto &g : tables.dcacheGeoms)
        tables.dcacheCpi.push_back(0.5 * cache_cpi(g));
    for (const auto &g : tables.tlbGeoms)
        tables.tlbCpi.push_back(10.0 / double(g.entries));
    return tables;
}

TEST(ConfigSpace, Table5TlbGrid)
{
    ConfigSpace space;
    const auto tlbs = space.tlbGeometries();
    // 4 sizes x 4 set-assoc ways + fully-assoc at 64 entries.
    EXPECT_EQ(tlbs.size(), 17u);
    int fa = 0;
    for (const auto &g : tlbs) {
        g.validate();
        fa += g.fullyAssociative();
    }
    EXPECT_EQ(fa, 1);
}

TEST(ConfigSpace, Table5CacheGrid)
{
    ConfigSpace space;
    const auto caches = space.cacheGeometries();
    // 5 sizes x 6 lines x 4 ways, minus shapes with < 1 set:
    // 2-KB @ 32-word lines supports only 1..16 ways -> all 4 fit
    // (2048 / 128 = 16 lines >= 8 ways)... every combination is
    // realizable, so 120 configurations.
    EXPECT_EQ(caches.size(), 120u);
    for (const auto &g : caches)
        g.validate();
}

TEST(ConfigSpace, AssocRestrictionFilters)
{
    ConfigSpace space;
    EXPECT_EQ(space.cacheGeometries(2).size(), 60u);
    EXPECT_EQ(space.cacheGeometries(1).size(), 30u);
}

TEST(AllocationSearch, EverythingWithinBudget)
{
    AreaModel area;
    AllocationSearch search(area, 250000.0);
    const auto ranked = search.rank(syntheticTables());
    ASSERT_FALSE(ranked.empty());
    for (const auto &a : ranked) {
        EXPECT_LE(a.areaRbe, 250000.0);
        // Area recomputes consistently.
        const double recomputed = area.tlbArea(a.tlb) +
            area.cacheArea(a.icache) + area.cacheArea(a.dcache);
        EXPECT_NEAR(a.areaRbe, recomputed, 1e-6);
    }
}

TEST(AllocationSearch, SortedByCpiAndRanked)
{
    AllocationSearch search(AreaModel(), 250000.0);
    const auto ranked = search.rank(syntheticTables());
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].cpi, ranked[i].cpi);
        EXPECT_EQ(ranked[i].rank, i + 1);
    }
}

TEST(AllocationSearch, CpiIsSumOfComponents)
{
    const ComponentCpiTables tables = syntheticTables();
    AllocationSearch search(AreaModel(), 250000.0);
    const auto ranked = search.rank(tables);
    for (std::size_t i = 0; i < std::min<std::size_t>(50,
                                                      ranked.size());
         ++i) {
        const Allocation &a = ranked[i];
        EXPECT_NEAR(a.cpi,
                    tables.baseCpi + a.tlbCpi + a.icacheCpi +
                        a.dcacheCpi,
                    1e-12);
    }
}

TEST(AllocationSearch, PrefersBigCheapTlbWhenBenefitIsMonotone)
{
    // With the synthetic benefit model (TLB CPI ~ 1/entries) and the
    // MQF costs (big set-associative TLBs are cheap), the best
    // allocation must use a 512-entry TLB — the paper's Table 6
    // conclusion.
    AllocationSearch search(AreaModel(), 250000.0);
    const auto ranked = search.rank(syntheticTables());
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().tlb.entries, 512u);
}

TEST(AllocationSearch, AssocRestrictionRaisesBestCpi)
{
    // Table 7: restricting cache associativity to 2 ways cannot give
    // a better optimum than the unrestricted search.
    AllocationSearch search(AreaModel(), 250000.0);
    const auto unrestricted = search.rank(syntheticTables(), 8);
    const auto restricted = search.rank(syntheticTables(), 2);
    ASSERT_FALSE(unrestricted.empty());
    ASSERT_FALSE(restricted.empty());
    EXPECT_LE(unrestricted.front().cpi, restricted.front().cpi);
    for (const auto &a : restricted) {
        EXPECT_LE(a.icache.assoc, 2u);
        EXPECT_LE(a.dcache.assoc, 2u);
    }
}

TEST(AllocationSearch, TightBudgetShrinksTheList)
{
    AllocationSearch wide(AreaModel(), 250000.0);
    AllocationSearch tight(AreaModel(), 60000.0);
    const auto big = wide.rank(syntheticTables());
    const auto small = tight.rank(syntheticTables());
    EXPECT_GT(big.size(), small.size());
    EXPECT_FALSE(small.empty());
    // A tight budget forces a worse best CPI.
    EXPECT_LT(big.front().cpi, small.front().cpi);
}

TEST(AllocationSearchDeath, RejectsNonPositiveBudget)
{
    EXPECT_EXIT(AllocationSearch(AreaModel(), 0.0),
                testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace oma
