/**
 * @file
 * Content-addressed on-disk artifact store.
 *
 * Re-recording the same workload/OS reference stream on every run is
 * the dominant cost of a cold sweep, and a killed long sweep used to
 * lose every completed replay shard. The store removes both costs:
 * any artifact whose complete provenance fits in a Fingerprint (a
 * recorded trace, one replay shard's counters) can be saved under
 * that fingerprint and transparently reloaded by a later run with the
 * identical configuration.
 *
 * Design rules, in order of importance:
 *
 * * *Correctness over reuse.* Every entry carries its full canonical
 *   key text and a payload checksum. A load whose stored key text
 *   does not byte-match the requested key (hash collision), whose
 *   checksum fails, or whose framing is truncated is quarantined
 *   (renamed to `<entry>.corrupt`) and reported as a miss, so the
 *   caller falls back to live simulation — never to wrong data.
 *
 * * *Atomic publication.* Writers stream into a private temp file in
 *   the store directory and rename() it over the final path, so a
 *   reader (or a concurrent writer racing on the same key) only ever
 *   observes complete entries. Both sides of a same-key race write
 *   the same bytes, so last-rename-wins is harmless.
 *
 * * *Off by default.* A store only exists when RunConfig::storeDir or
 *   the OMA_STORE_DIR environment variable names a directory; open()
 *   returns nullptr otherwise and every engine falls back to the
 *   live path.
 *
 * Entries are per-machine caches, not an interchange format: payload
 * integers are stored in host byte order. The trace-format version
 * and a store schema version are part of every fingerprint, so
 * format changes age old entries into misses instead of misreads.
 */

#ifndef OMA_STORE_STORE_HH
#define OMA_STORE_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "support/fingerprint.hh"
#include "support/sync.hh"

namespace oma
{

/** Running event counters of one ArtifactStore instance. */
struct StoreStatsSnapshot
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    std::uint64_t quarantined = 0;
};

/** A content-addressed artifact cache rooted at one directory. */
class ArtifactStore
{
  public:
    /** Version of the on-disk entry framing; fingerprinted into every
     * key, so bumping it invalidates all old entries at once. */
    static constexpr std::uint32_t formatVersion = 1;

    /** Open the store rooted at @p root, creating directories as
     * needed (fatal when the root cannot be created). */
    explicit ArtifactStore(std::string root);

    /**
     * Store-or-nothing policy knob: open the store at
     * @p configured_dir when non-empty, else at $OMA_STORE_DIR when
     * set and non-empty, else return nullptr (store disabled).
     */
    [[nodiscard]] static std::unique_ptr<ArtifactStore>
    open(const std::string &configured_dir);

    /**
     * Load the payload stored under @p key into @p payload.
     *
     * @retval true on a verified hit (key text matched byte-for-byte
     *         and the payload checksum held).
     * @retval false on a miss — including a corrupt or mismatched
     *         entry, which is quarantined first.
     */
    [[nodiscard]] bool load(const Fingerprint &key,
                            std::string &payload) const;

    /** Publish @p payload under @p key (atomic temp-file+rename). */
    void save(const Fingerprint &key, std::string_view payload) const;

    /** Absolute path an entry for @p key lives at. */
    [[nodiscard]] std::string entryPath(const Fingerprint &key) const;

    [[nodiscard]] const std::string &root() const { return _root; }

    /** Consistent snapshot of the hit/miss/write/quarantine
     * counters: all four are read under one lock, so concurrent
     * readers never observe a torn cross-counter state. */
    [[nodiscard]] StoreStatsSnapshot
    stats() const
    {
        LockGuard lock(_statsMutex);
        return _stats;
    }

    /**
     * Write one complete entry file (header + key text + payload) to
     * @p path, fatal on any I/O failure — the building block save()
     * aims at a temp file, exposed so the disk-full path is directly
     * death-testable (tests/store/test_store.cc, /dev/full).
     */
    static void writeEntryFile(const std::string &path,
                               std::string_view key_text,
                               std::string_view payload);

  private:
    /** Move a bad entry aside so it cannot be re-read, then count it. */
    void quarantine(const std::string &path) const;

    /** Add @p delta to counter member @p counter (e.g.
     * `&StoreStatsSnapshot::hits`) under the stats lock. */
    void bump(std::uint64_t StoreStatsSnapshot::*counter,
              std::uint64_t delta = 1) const;

    const std::string _root; //!< Immutable after construction.

    /** Protects the event counters; never held across I/O or any
     * call out of the store (rank table in sync.hh). */
    mutable Mutex _statsMutex{OMA_LOCK_RANK(lockrank::storeStats)};
    mutable StoreStatsSnapshot _stats OMA_GUARDED_BY(_statsMutex);
};

} // namespace oma

#endif // OMA_STORE_STORE_HH
