/**
 * @file
 * Unit tests for text-table rendering and number formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/table.hh"

namespace oma
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer-name", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    // Header separator line exists.
    EXPECT_NE(out.find("---"), std::string::npos);
    // All lines (header, rule, two rows) share the same width.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTable, CsvOutput)
{
    TextTable table({"a", "b"});
    table.addRow({"1", "2"});
    table.addRow({"3", "4"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, RowCount)
{
    TextTable table({"a"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"x"});
    EXPECT_EQ(table.rowCount(), 1u);
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "width mismatch");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(fmtFixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmtFixed(1.0, 3), "1.000");
    EXPECT_EQ(fmtFixed(-0.5, 1), "-0.5");
}

TEST(Format, Grouped)
{
    EXPECT_EQ(fmtGrouped(0), "0");
    EXPECT_EQ(fmtGrouped(999), "999");
    EXPECT_EQ(fmtGrouped(1000), "1,000");
    EXPECT_EQ(fmtGrouped(163438), "163,438");
    EXPECT_EQ(fmtGrouped(1234567890), "1,234,567,890");
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPercent(0.5), "50%");
    EXPECT_EQ(fmtPercent(0.123, 1), "12.3%");
}

TEST(Format, KBytes)
{
    EXPECT_EQ(fmtKBytes(2048), "2-KB");
    EXPECT_EQ(fmtKBytes(32 * 1024), "32-KB");
    EXPECT_EQ(fmtKBytes(100), "100-B");
}

} // namespace
} // namespace oma
