file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_accesstime.dir/bench_ext_accesstime.cc.o"
  "CMakeFiles/bench_ext_accesstime.dir/bench_ext_accesstime.cc.o.d"
  "bench_ext_accesstime"
  "bench_ext_accesstime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_accesstime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
