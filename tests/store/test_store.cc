/**
 * @file
 * The artifact store's correctness-over-reuse contract: canonical
 * fingerprints (the cache-key scheme is pinned here), verified
 * round trips, and — most importantly — every failure path
 * (truncation, bit flips, hash collisions, concurrent writers, full
 * disks) degrading to a detected miss or a loud fatal, never to
 * wrong data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "store/codec.hh"
#include "store/store.hh"
#include "support/fingerprint.hh"
#include "workload/workload.hh"

namespace oma
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test store root under the test temp directory. */
std::string
storeRoot(const std::string &name)
{
    const std::string root = testing::TempDir() + "/oma_store_" +
        name + "." + std::to_string(::getpid());
    fs::remove_all(root);
    return root;
}

Fingerprint
sampleKey(std::uint64_t salt = 0)
{
    Fingerprint fp;
    fp.str("artifact", "unit");
    fp.u64("salt", salt);
    return fp;
}

TEST(Fingerprint, CanonicalTextIsPinned)
{
    // The exact serialization IS the cache-key format; changing it
    // silently invalidates every store. Break this test consciously.
    Fingerprint fp;
    fp.u64("answer", 42);
    fp.real("half", 0.5);
    fp.str("name", "a=b\n");
    fp.flag("on", true);
    fp.flag("off", false);
    EXPECT_EQ(fp.text(),
              "answer=42\nhalf=0.5\nname=4:a=b\n\non=1\noff=0\n");
}

TEST(Fingerprint, HexIs32LowercaseDigitsAndTracksText)
{
    Fingerprint a, b;
    a.u64("x", 1);
    b.u64("x", 1);
    EXPECT_EQ(a.hex(), b.hex());
    EXPECT_EQ(a.hex().size(), 32u);
    for (const char c : a.hex())
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << c;
    b.u64("y", 2);
    EXPECT_NE(a.hex(), b.hex());
}

TEST(Fingerprint, FieldOrderMatters)
{
    Fingerprint ab, ba;
    ab.u64("a", 1);
    ab.u64("b", 2);
    ba.u64("b", 2);
    ba.u64("a", 1);
    EXPECT_NE(ab.hex(), ba.hex());
}

TEST(Fingerprint, CopiesExtendIndependently)
{
    // Sweep shards extend one base key per task; the base must not
    // accumulate the extensions.
    Fingerprint base;
    base.u64("seed", 42);
    Fingerprint a = base, b = base;
    a.u64("index", 0);
    b.u64("index", 1);
    EXPECT_NE(a.hex(), b.hex());
    EXPECT_EQ(base.text(), "seed=42\n");
}

TEST(Fingerprint, WorkloadSchemeCoversEveryField)
{
    // One line per fingerprinted field: 26 scalars plus 3 per
    // syscall-mix entry. A new WorkloadParams field that is not added
    // to fingerprint() would let two different workloads share a
    // cache key; this count forces the update to be deliberate.
    const WorkloadParams &wp = benchmarkParams(BenchmarkId::Mpeg);
    Fingerprint fp;
    wp.fingerprint(fp);
    const auto lines =
        std::count(fp.text().begin(), fp.text().end(), '\n');
    EXPECT_EQ(lines, 26 + 3 * std::int64_t(wp.syscalls.size()));
    EXPECT_NE(fp.text().find("workload.name="), std::string::npos);
}

TEST(ArtifactStore, OpenPolicyConfiguredThenEnvThenDisabled)
{
    const std::string dir = storeRoot("open");
    ::unsetenv("OMA_STORE_DIR");
    EXPECT_EQ(ArtifactStore::open(""), nullptr);

    const auto configured = ArtifactStore::open(dir);
    ASSERT_NE(configured, nullptr);
    EXPECT_EQ(configured->root(), dir);

    ::setenv("OMA_STORE_DIR", dir.c_str(), 1);
    const auto via_env = ArtifactStore::open("");
    ASSERT_NE(via_env, nullptr);
    EXPECT_EQ(via_env->root(), dir);
    ::unsetenv("OMA_STORE_DIR");
    fs::remove_all(dir);
}

TEST(ArtifactStore, RoundTripHitAndMiss)
{
    const ArtifactStore store(storeRoot("roundtrip"));
    const Fingerprint key = sampleKey();
    const std::string payload("the payload\0with a nul", 22);

    std::string loaded;
    EXPECT_FALSE(store.get(key, loaded));
    store.put(key, payload);
    EXPECT_TRUE(fs::exists(store.entryPath(key)));
    ASSERT_TRUE(store.get(key, loaded));
    EXPECT_EQ(loaded, payload);

    const StoreStatsSnapshot s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.quarantined, 0u);
    fs::remove_all(store.root());
}

TEST(ArtifactStore, TruncatedEntryIsQuarantinedThenRewritable)
{
    const ArtifactStore store(storeRoot("truncated"));
    const Fingerprint key = sampleKey();
    store.put(key, "payload bytes that will get cut short");
    const std::string path = store.entryPath(key);
    fs::resize_file(path, fs::file_size(path) - 5);

    std::string loaded;
    EXPECT_FALSE(store.get(key, loaded));
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));

    // The slot is reusable: a fresh save serves hits again.
    store.put(key, "replacement");
    ASSERT_TRUE(store.get(key, loaded));
    EXPECT_EQ(loaded, "replacement");
    fs::remove_all(store.root());
}

TEST(ArtifactStore, PayloadBitFlipFailsTheChecksum)
{
    const ArtifactStore store(storeRoot("bitflip"));
    const Fingerprint key = sampleKey();
    store.put(key, "sensitive counter bytes");
    const std::string path = store.entryPath(key);
    {
        // Flip one bit of the last payload byte.
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(-1, std::ios::end);
        const char flipped = char('s' ^ 1);
        f.write(&flipped, 1);
    }
    std::string loaded;
    EXPECT_FALSE(store.get(key, loaded));
    EXPECT_EQ(store.stats().quarantined, 1u);
    fs::remove_all(store.root());
}

TEST(ArtifactStore, StoredKeyMismatchIsDetectedNotServed)
{
    // Simulate a 128-bit hash collision: key B's path holds an entry
    // whose canonical key text is A's. The byte compare must refuse
    // it — collisions degrade to detected misses, never aliasing.
    const ArtifactStore store(storeRoot("collision"));
    const Fingerprint a = sampleKey(1), b = sampleKey(2);
    store.put(a, "payload of a");
    fs::create_directories(
        fs::path(store.entryPath(b)).parent_path());
    fs::copy_file(store.entryPath(a), store.entryPath(b));

    std::string loaded;
    EXPECT_FALSE(store.get(b, loaded));
    EXPECT_EQ(store.stats().quarantined, 1u);
    // A's own entry is untouched and still serves.
    ASSERT_TRUE(store.get(a, loaded));
    EXPECT_EQ(loaded, "payload of a");
    fs::remove_all(store.root());
}

TEST(ArtifactStore, ConcurrentWritersOnOneKeyStayConsistent)
{
    // Both sides of a same-key race write identical bytes; atomic
    // temp-file+rename publication means any interleaving leaves one
    // complete, loadable entry.
    const ArtifactStore store(storeRoot("race"));
    const Fingerprint key = sampleKey();
    const std::string payload(4096, 'x');
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&]() {
            for (int i = 0; i < 8; ++i)
                store.put(key, payload);
        });
    }
    for (std::thread &w : writers)
        w.join();

    std::string loaded;
    ASSERT_TRUE(store.get(key, loaded));
    EXPECT_EQ(loaded, payload);
    EXPECT_EQ(store.stats().writes, 32u);
    EXPECT_EQ(store.stats().quarantined, 0u);
    fs::remove_all(store.root());
}

TEST(ArtifactStore, StatsSnapshotIsConsistentUnderConcurrency)
{
    // Regression for the old per-counter atomics: stats() now takes
    // all four counters under one lock, so a concurrent reader never
    // sees a hit recorded without its matching load having finished
    // (the TSan job runs this suite). Every load here is a verified
    // hit, so hits+misses must always equal completed loads.
    const ArtifactStore store(storeRoot("stats"));
    const Fingerprint key = sampleKey();
    store.put(key, "payload");
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&]() {
            std::string loaded;
            for (int i = 0; i < 16; ++i)
                EXPECT_TRUE(store.get(key, loaded));
        });
    }
    std::uint64_t maxSeen = 0;
    while (maxSeen < 64) {
        const StoreStatsSnapshot snap = store.stats();
        const std::uint64_t total = snap.hits + snap.misses;
        ASSERT_LE(total, 64u);
        ASSERT_GE(total, maxSeen); // Counters never go backward.
        maxSeen = total;
    }
    for (std::thread &r : readers)
        r.join();
    const StoreStatsSnapshot final = store.stats();
    EXPECT_EQ(final.hits, 64u);
    EXPECT_EQ(final.misses, 0u);
    EXPECT_EQ(final.writes, 1u);
    EXPECT_EQ(final.quarantined, 0u);
    fs::remove_all(store.root());
}

TEST(ArtifactStoreDeath, UnusableRootIsFatal)
{
    EXPECT_EXIT(ArtifactStore("/dev/null/oma"),
                testing::ExitedWithCode(1), "cannot create");
}

TEST(ArtifactStoreDeath, FullDiskIsFatalNotSilent)
{
    // /dev/full accepts the open but fails every flush with ENOSPC;
    // a checkpoint that cannot be persisted must die loudly rather
    // than publish a short entry (same idiom as the trace-file
    // writer's death test).
    if (!std::ofstream("/dev/full", std::ios::binary).is_open())
        GTEST_SKIP() << "/dev/full not available";
    const std::string payload(1 << 20, 'p');
    EXPECT_EXIT(ArtifactStore::writeEntryFile("/dev/full", "key=1\n",
                                              payload),
                testing::ExitedWithCode(1), "disk full");
}

// ----- in-flight duplicate coalescing -----

TEST(InflightTable, FirstJoinLeadsAndPublishRetiresTheKey)
{
    InflightTable table;
    const Fingerprint key = sampleKey();
    {
        InflightTable::Lease lease = table.join(key);
        ASSERT_TRUE(lease.leader());
        lease.publish("answer bytes");
    }
    // Publication retired the slot: a later joiner starts fresh
    // rather than being handed the stale payload (with a store in
    // front it would hit warm instead).
    InflightTable::Lease again = table.join(key);
    EXPECT_TRUE(again.leader());
    again.publish("recomputed");
}

TEST(InflightTable, DistinctKeysDoNotCoalesce)
{
    InflightTable table;
    InflightTable::Lease a = table.join(sampleKey(1));
    InflightTable::Lease b = table.join(sampleKey(2));
    EXPECT_TRUE(a.leader());
    EXPECT_TRUE(b.leader());
    a.publish("a");
    b.publish("b");
}

TEST(InflightTable, AbandonedLeaseFreesTheKey)
{
    InflightTable table;
    const Fingerprint key = sampleKey();
    {
        InflightTable::Lease lease = table.join(key);
        ASSERT_TRUE(lease.leader());
        // Unwind without publishing (the compute threw).
    }
    InflightTable::Lease retaken = table.join(key);
    EXPECT_TRUE(retaken.leader());
    retaken.publish("second attempt");
}

TEST(InflightTable, ConcurrentJoinersAllCarryThePublishedPayload)
{
    // N threads race join() on one key. Whatever the interleaving,
    // every thread must end up holding the payload: followers carry
    // the leader's bytes, and a thread that joins after retirement
    // leads a fresh slot and publishes the same bytes itself.
    InflightTable table;
    const Fingerprint key = sampleKey();
    constexpr int kThreads = 8;
    std::vector<std::string> carried(kThreads);
    std::atomic<int> leaders{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            InflightTable::Lease lease = table.join(key);
            if (lease.leader()) {
                leaders.fetch_add(1);
                lease.publish("the one answer");
                carried[std::size_t(t)] = "the one answer";
            } else {
                carried[std::size_t(t)] = lease.payload();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_GE(leaders.load(), 1);
    EXPECT_LE(leaders.load(), kThreads);
    for (const std::string &payload : carried)
        EXPECT_EQ(payload, "the one answer");
}

TEST(InflightTable, AbandonmentWakesFollowersToRetakeLeadership)
{
    // The first leader on each key abandons (simulating a compute
    // failure); the contract is that a waiting follower retakes
    // leadership instead of blocking forever. Run several rounds so
    // the wait path is actually exercised under TSan.
    InflightTable table;
    constexpr int kThreads = 4;
    for (int round = 0; round < 8; ++round) {
        const Fingerprint key = sampleKey(std::uint64_t(round));
        std::atomic<bool> abandoned{false};
        std::vector<std::string> carried(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t]() {
                for (;;) {
                    InflightTable::Lease lease = table.join(key);
                    if (!lease.leader()) {
                        carried[std::size_t(t)] = lease.payload();
                        return;
                    }
                    if (!abandoned.exchange(true))
                        continue; // abandon: unwind unpublished
                    lease.publish("recovered");
                    carried[std::size_t(t)] = "recovered";
                    return;
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
        EXPECT_TRUE(abandoned.load());
        for (const std::string &payload : carried)
            EXPECT_EQ(payload, "recovered") << "round " << round;
    }
}

TEST(InflightTableDeath, LeaderReadingUnpublishedPayloadIsFatal)
{
    EXPECT_EXIT(
        {
            InflightTable table;
            InflightTable::Lease lease = table.join(sampleKey());
            (void)lease.payload();
        },
        testing::ExitedWithCode(1), "unpublished");
}

TEST(InflightTableDeath, DoublePublishIsFatal)
{
    EXPECT_EXIT(
        {
            InflightTable table;
            InflightTable::Lease lease = table.join(sampleKey());
            lease.publish("once");
            lease.publish("twice");
        },
        testing::ExitedWithCode(1), "double publish");
}

// ----- payload codecs -----

TEST(StoreCodec, TraceRoundTripIsExact)
{
    RecordedTrace trace;
    trace.recordInvalidation(0x10, 1, false); // leading event
    for (std::uint64_t i = 0; i < 1000; ++i) {
        MemRef ref;
        ref.vaddr = 0x400000 + 4 * i;
        ref.paddr = 0x1000 + 4 * i;
        ref.asid = std::uint32_t(i % 64);
        ref.kind = RefKind(i % 3);
        ref.mode = (i % 5 == 0) ? Mode::Kernel : Mode::User;
        ref.mapped = (i % 7 != 0);
        trace.append(ref);
        if (i == 500)
            trace.recordInvalidation(0x20 + i, 3, true);
    }
    trace.recordInvalidation(0x30, 0, false); // trailing event
    trace.setOtherCpi(0.375);

    RecordedTrace out;
    ASSERT_TRUE(store::decodeTrace(store::encodeTrace(trace), out));
    ASSERT_EQ(out.size(), trace.size());
    EXPECT_EQ(out.otherCpi(), trace.otherCpi());
    ASSERT_EQ(out.events().size(), trace.events().size());
    for (std::size_t e = 0; e < trace.events().size(); ++e) {
        EXPECT_EQ(out.events()[e].index, trace.events()[e].index);
        EXPECT_EQ(out.events()[e].vpn, trace.events()[e].vpn);
        EXPECT_EQ(out.events()[e].asid, trace.events()[e].asid);
        EXPECT_EQ(out.events()[e].global, trace.events()[e].global);
    }
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        const MemRef a = trace.at(i), b = out.at(i);
        ASSERT_EQ(a.vaddr, b.vaddr) << i;
        ASSERT_EQ(a.paddr, b.paddr) << i;
        ASSERT_EQ(a.asid, b.asid) << i;
        ASSERT_EQ(a.kind, b.kind) << i;
        ASSERT_EQ(a.mode, b.mode) << i;
        ASSERT_EQ(a.mapped, b.mapped) << i;
    }
}

TEST(StoreCodec, TraceFramingMismatchesAreMisses)
{
    RecordedTrace trace;
    MemRef ref;
    ref.vaddr = ref.paddr = 0x1000;
    for (int i = 0; i < 10; ++i)
        trace.append(ref);
    const std::string payload = store::encodeTrace(trace);

    RecordedTrace out;
    EXPECT_FALSE(store::decodeTrace(
        std::string_view(payload).substr(0, payload.size() - 1), out));
    EXPECT_FALSE(store::decodeTrace(payload + "x", out));
    EXPECT_FALSE(store::decodeTrace("", out));
    EXPECT_TRUE(store::decodeTrace(payload, out));
}

TEST(StoreCodec, CounterShardsRoundTrip)
{
    CacheStats cs;
    for (unsigned k = 0; k < numRefKinds; ++k) {
        cs.accesses[k] = 100 + k;
        cs.misses[k] = 10 + k;
    }
    cs.lineFills = 7;
    cs.writebacks = 5;
    cs.writeThroughWords = 3;
    cs.compulsoryMisses = 2;
    CacheStats cs2;
    ASSERT_TRUE(store::decodeCacheStats(store::encodeCacheStats(cs),
                                        cs2));
    for (unsigned k = 0; k < numRefKinds; ++k) {
        EXPECT_EQ(cs2.accesses[k], cs.accesses[k]);
        EXPECT_EQ(cs2.misses[k], cs.misses[k]);
    }
    EXPECT_EQ(cs2.lineFills, cs.lineFills);
    EXPECT_EQ(cs2.writebacks, cs.writebacks);
    EXPECT_EQ(cs2.writeThroughWords, cs.writeThroughWords);
    EXPECT_EQ(cs2.compulsoryMisses, cs.compulsoryMisses);

    MmuStats ms;
    ms.translations = 9999;
    for (unsigned c = 0; c < numMissClasses; ++c) {
        ms.counts[c] = 11 + c;
        ms.cycles[c] = 1000 + c;
    }
    ms.asidFlushes = 4;
    MmuStats ms2;
    ASSERT_TRUE(store::decodeMmuStats(store::encodeMmuStats(ms), ms2));
    EXPECT_EQ(ms2.translations, ms.translations);
    for (unsigned c = 0; c < numMissClasses; ++c) {
        EXPECT_EQ(ms2.counts[c], ms.counts[c]);
        EXPECT_EQ(ms2.cycles[c], ms.cycles[c]);
    }
    EXPECT_EQ(ms2.asidFlushes, ms.asidFlushes);

    store::MachineShard sh;
    sh.instructions = 1;
    sh.icacheStall = 2;
    sh.dcacheStall = 3;
    sh.wbStall = 4;
    sh.tlbStall = 5;
    sh.wbStores = 6;
    sh.wbStallCycles = 7;
    store::MachineShard sh2;
    ASSERT_TRUE(
        store::decodeMachineShard(store::encodeMachineShard(sh), sh2));
    EXPECT_EQ(sh2.instructions, 1u);
    EXPECT_EQ(sh2.icacheStall, 2u);
    EXPECT_EQ(sh2.dcacheStall, 3u);
    EXPECT_EQ(sh2.wbStall, 4u);
    EXPECT_EQ(sh2.tlbStall, 5u);
    EXPECT_EQ(sh2.wbStores, 6u);
    EXPECT_EQ(sh2.wbStallCycles, 7u);

    // Truncated counter shards are framing mismatches, not UB.
    EXPECT_FALSE(store::decodeCacheStats("", cs2));
    EXPECT_FALSE(store::decodeMmuStats("short", ms2));
    EXPECT_FALSE(store::decodeMachineShard("shorter", sh2));
}

} // namespace
} // namespace oma
