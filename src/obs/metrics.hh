/**
 * @file
 * The run-metrics registry: named counters, gauges and histograms.
 *
 * The paper's whole method is measurement — Monster's stall
 * histograms and Tapeworm's in-kernel counters exist so every CPI
 * claim is attributable to a component. MetricRegistry is the
 * reproduction's equivalent apparatus: simulation components export
 * their event counts into one named, ordered registry, and run
 * reports (obs/report.hh) serialize that registry so every bench run
 * leaves a machine-readable record.
 *
 * Determinism contract (docs/OBSERVABILITY.md):
 *
 * * Metrics never feed back into simulation. An engine run with an
 *   Observation attached produces bitwise-identical results to one
 *   run without (tests/core/test_observed_sweep.cc holds this at 1
 *   and 4 threads).
 * * Counters and histograms exported from parallel engines are
 *   collected per lane-independent shard and merged in deterministic
 *   shard order, so event counts are identical for any thread count.
 * * Only timing values (Span gauges, rates derived from them) read
 *   the wall clock, exclusively through oma::Clock (support/clock.hh);
 *   they vary run to run and are reported, never compared.
 */

#ifndef OMA_OBS_METRICS_HH
#define OMA_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "support/clock.hh"
#include "support/sync.hh"

namespace oma::obs
{

/**
 * A power-of-two-bucketed histogram of non-negative integer samples
 * (event counts, sizes, durations in ns). Bucket b holds samples
 * whose bit width is b, i.e. values in [2^(b-1), 2^b); bucket 0
 * holds zeros. Merging is element-wise, so shard merge order cannot
 * change the result.
 */
struct Histogram
{
    static constexpr unsigned numBuckets = 65;

    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; //!< Valid only when count > 0.
    std::uint64_t max = 0; //!< Valid only when count > 0.
    std::uint64_t buckets[numBuckets] = {};

    void
    add(std::uint64_t sample)
    {
        if (count == 0 || sample < min)
            min = sample;
        if (count == 0 || sample > max)
            max = sample;
        ++count;
        sum += sample;
        ++buckets[bucketOf(sample)];
    }

    void
    merge(const Histogram &other)
    {
        if (other.count == 0)
            return;
        if (count == 0 || other.min < min)
            min = other.min;
        if (count == 0 || other.max > max)
            max = other.max;
        count += other.count;
        sum += other.sum;
        for (unsigned b = 0; b < numBuckets; ++b)
            buckets[b] += other.buckets[b];
    }

    [[nodiscard]] double
    mean() const
    {
        return count == 0 ? 0.0 : double(sum) / double(count);
    }

    /** Bucket index of @p sample (its bit width). */
    static unsigned
    bucketOf(std::uint64_t sample)
    {
        unsigned width = 0;
        while (sample != 0) {
            ++width;
            sample >>= 1;
        }
        return width;
    }

    /** Exclusive upper bound of bucket @p b (0 for the zero bucket). */
    static std::uint64_t
    bucketBound(unsigned b)
    {
        return b == 0 ? 1 : (b >= 64 ? ~std::uint64_t(0)
                                     : std::uint64_t(1) << b);
    }
};

/**
 * A registry of named metrics. Names are slash-separated paths
 * (`icache/misses`, `time_ms/sweep/replay`; scheme in
 * docs/OBSERVABILITY.md). Storage is std::map so every iteration —
 * serialization, merging, diffing — is in name order by construction.
 */
class MetricRegistry
{
  public:
    // ----- recording -----

    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        _counters[name] += delta;
    }

    /** Set gauge @p name to @p value (last write wins). */
    void
    set(const std::string &name, double value)
    {
        _gauges[name] = value;
    }

    /** Add @p value to gauge @p name (creating it at zero). */
    void
    accumulate(const std::string &name, double value)
    {
        _gauges[name] += value;
    }

    /** Record one sample into histogram @p name. */
    void
    observe(const std::string &name, std::uint64_t sample)
    {
        _histograms[name].add(sample);
    }

    // ----- inspection -----

    /** Counter value, 0 when absent. */
    [[nodiscard]] std::uint64_t
    counter(const std::string &name) const
    {
        const auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** Gauge value, 0.0 when absent. */
    [[nodiscard]] double
    gauge(const std::string &name) const
    {
        const auto it = _gauges.find(name);
        return it == _gauges.end() ? 0.0 : it->second;
    }

    [[nodiscard]] bool
    empty() const
    {
        return _counters.empty() && _gauges.empty() &&
            _histograms.empty();
    }

    [[nodiscard]] const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return _counters;
    }

    [[nodiscard]] const std::map<std::string, double> &
    gauges() const
    {
        return _gauges;
    }

    [[nodiscard]] const std::map<std::string, Histogram> &
    histograms() const
    {
        return _histograms;
    }

    // ----- merging -----

    /**
     * Fold @p shard into this registry: counters and histograms sum,
     * gauges take the shard's value (last write wins). Parallel
     * engines call this over their per-task shards in task order, so
     * the merged registry is a pure function of the work, not of the
     * schedule.
     */
    void merge(const MetricRegistry &shard);

  private:
    std::map<std::string, std::uint64_t> _counters;
    std::map<std::string, double> _gauges;
    std::map<std::string, Histogram> _histograms;
};

/**
 * RAII wall-clock timer for one named phase. On stop (or
 * destruction) it accumulates the elapsed milliseconds into gauge
 * `time_ms/<name>` and bumps counter `calls/<name>`. Backed by
 * oma::Clock — the timing is observability-only and never feeds
 * simulation.
 */
class Span
{
  public:
    Span(MetricRegistry &registry, std::string name)
        : _registry(&registry), _name(std::move(name)),
          _startNs(Clock::nowNs())
    {}

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span() { stop(); }

    /** Stop the timer and record; idempotent. */
    void
    stop()
    {
        if (_registry == nullptr)
            return;
        _registry->accumulate("time_ms/" + _name,
                              Clock::toMs(Clock::nowNs() - _startNs));
        _registry->add("calls/" + _name);
        _registry = nullptr;
    }

  private:
    MetricRegistry *_registry;
    std::string _name;
    std::int64_t _startNs;
};

/**
 * Throttled progress reporting for long sweeps. Disabled by default
 * (a default-constructed Progress swallows ticks); when constructed
 * with a callback it fires roughly @p updates times over @p total
 * ticks. tick() is thread-safe; callbacks may be invoked
 * concurrently from worker lanes, so they must not touch results —
 * route them to inform() (informSink) or a UI, nothing else.
 */
class Progress
{
  public:
    /** fn(done, total). */
    using Callback = std::function<void(std::uint64_t, std::uint64_t)>;

    Progress() = default;

    Progress(std::uint64_t total, Callback callback,
             std::uint64_t updates = 10)
        : _total(total), _stride(total / (updates ? updates : 1)),
          _callback(std::move(callback))
    {
        if (_stride == 0)
            _stride = 1;
    }

    [[nodiscard]] bool enabled() const { return bool(_callback); }

    /** Record @p n completed units; fires the callback on stride
     * boundaries and on completion. The counter update is guarded;
     * the callback runs outside the lock so a slow sink never
     * serializes worker lanes (callbacks may therefore still be
     * invoked concurrently and slightly out of order). */
    void
    tick(std::uint64_t n = 1)
    {
        if (!_callback)
            return;
        std::uint64_t done = 0;
        {
            LockGuard lock(_mutex);
            _done += n;
            done = _done;
        }
        if (done / _stride != (done - n) / _stride || done == _total)
            _callback(done, _total);
    }

    [[nodiscard]] std::uint64_t
    done() const
    {
        LockGuard lock(_mutex);
        return _done;
    }

    /** A callback that routes "`what`: done/total" through inform(). */
    static Callback informSink(std::string what);

  private:
    // oma-lint: allow(guarded-member): immutable after construction.
    std::uint64_t _total = 0;
    // oma-lint: allow(guarded-member): immutable after construction.
    std::uint64_t _stride = 1;
    // oma-lint: allow(guarded-member): immutable after construction.
    Callback _callback;

    /** Guards the tick counter; never held while the callback runs
     * (rank table in sync.hh). */
    mutable Mutex _mutex{OMA_LOCK_RANK(lockrank::obsProgress)};
    std::uint64_t _done OMA_GUARDED_BY(_mutex) = 0;
};

/**
 * The observation sink an instrumented engine fills: pass one to
 * ComponentSweep::run / AllocationSearch::rank to collect metrics
 * and (optionally) progress. Attaching an Observation never changes
 * engine results — only what gets reported about them.
 */
struct Observation
{
    MetricRegistry metrics;
    /** Optional progress sink; off (null) by default. */
    Progress *progress = nullptr;
};

} // namespace oma::obs

#endif // OMA_OBS_METRICS_HH
