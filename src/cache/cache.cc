/**
 * @file
 * Implementation of the set-associative cache simulator.
 */

#include "cache/cache.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace oma
{

Cache::Cache(const CacheParams &params)
    : _params(params), _rng(params.seed)
{
    _params.geom.validate();
    const std::uint64_t sets = _params.geom.numSets();
    _setMask = sets - 1;
    _lineShift = floorLog2(_params.geom.lineBytes);
    _indexBits = floorLog2(sets);
    _ways = _params.geom.assoc;
    _lines.assign(sets * _ways, Line());
}

std::uint64_t
Cache::lineNumber(std::uint64_t paddr) const
{
    return paddr >> _lineShift;
}

bool
Cache::probe(std::uint64_t paddr) const
{
    const std::uint64_t line = lineNumber(paddr);
    const std::uint64_t set = line & _setMask;
    const std::uint64_t tag = line >> _indexBits;
    const std::size_t base = set * _ways;
    for (std::size_t w = 0; w < _ways; ++w) {
        const Line &l = _lines[base + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

std::size_t
Cache::victimWay(std::size_t set_base)
{
    // Prefer an invalid way.
    for (std::size_t w = 0; w < _ways; ++w) {
        if (!_lines[set_base + w].valid)
            return w;
    }
    switch (_params.repl) {
      case ReplacementPolicy::Random:
        return static_cast<std::size_t>(_rng.below(_ways));
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Both policies evict the smallest stamp; they differ in
        // whether hits refresh the stamp (see access()).
        std::size_t victim = 0;
        std::uint64_t oldest = _lines[set_base].stamp;
        for (std::size_t w = 1; w < _ways; ++w) {
            if (_lines[set_base + w].stamp < oldest) {
                oldest = _lines[set_base + w].stamp;
                victim = w;
            }
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

bool
Cache::access(std::uint64_t paddr, RefKind kind)
{
    ++_tick;
    const std::uint64_t line = lineNumber(paddr);
    const std::uint64_t set = line & _setMask;
    const std::uint64_t tag = line >> _indexBits;
    const std::size_t base = set * _ways;
    const bool is_store = kind == RefKind::Store;

    ++_stats.accesses[unsigned(kind)];
    if (is_store && _params.write == WritePolicy::WriteThrough)
        ++_stats.writeThroughWords;

    for (std::size_t w = 0; w < _ways; ++w) {
        Line &l = _lines[base + w];
        if (l.valid && l.tag == tag) {
            if (_params.repl == ReplacementPolicy::Lru)
                l.stamp = _tick;
            if (is_store && _params.write == WritePolicy::WriteBack)
                l.dirty = true;
            return true;
        }
    }

    // Miss.
    ++_stats.misses[unsigned(kind)];
    if (_touched.insert(line).second)
        ++_stats.compulsoryMisses;

    const bool allocate = !is_store ||
        _params.alloc == AllocPolicy::WriteAllocate;
    if (!allocate)
        return false;

    ++_stats.lineFills;
    const std::size_t w = victimWay(base);
    Line &l = _lines[base + w];
    if (l.valid && l.dirty)
        ++_stats.writebacks;
    l.valid = true;
    l.tag = tag;
    l.stamp = _tick;
    l.dirty = is_store && _params.write == WritePolicy::WriteBack;
    return false;
}

void
Cache::prefetch(std::uint64_t paddr)
{
    ++_tick;
    const std::uint64_t line = lineNumber(paddr);
    const std::uint64_t set = line & _setMask;
    const std::uint64_t tag = line >> _indexBits;
    const std::size_t base = set * _ways;
    for (std::size_t w = 0; w < _ways; ++w) {
        Line &l = _lines[base + w];
        if (l.valid && l.tag == tag) {
            if (_params.repl == ReplacementPolicy::Lru)
                l.stamp = _tick;
            return;
        }
    }
    const std::size_t w = victimWay(base);
    Line &l = _lines[base + w];
    if (l.valid && l.dirty)
        ++_stats.writebacks;
    l.valid = true;
    l.tag = tag;
    l.stamp = _tick;
    l.dirty = false;
}

void
Cache::invalidateAll()
{
    for (auto &l : _lines)
        l = Line();
}

} // namespace oma
