/**
 * @file
 * Implementation of the working-set code walker.
 */

#include "os/codewalk.hh"

#include "support/logging.hh"

namespace oma
{

CodeWalker::CodeWalker(const CodeRegion &region, std::uint64_t seed)
    : _region(region), _rng(seed), _pc(region.base), _start(region.base),
      _body(1), _left(0), _iters(0)
{
    fatalIf(_region.footprint < granule,
            "code region smaller than one routine granule");
    newRun();
}

void
CodeWalker::newRun()
{
    const std::uint64_t starts = _region.footprint / granule;
    const std::uint64_t slot = _rng.zipf(starts, _region.skew);
    // Scatter the Zipf ranks across the footprint so that popular
    // routines are not all adjacent (rank 0 would otherwise always be
    // the region base and popular code would be artificially dense).
    const std::uint64_t shuffled = mix64(slot * 0x2545f4914f6cdd1dULL) %
        starts;
    _start = _region.base + shuffled * granule;
    _body = _rng.geometric(1.0 / _region.meanRun);
    _iters = _region.meanIterations <= 1.0
        ? 1
        : _rng.geometric(1.0 / _region.meanIterations);
    _pc = _start;
    _left = _body;
}

std::uint64_t
CodeWalker::step()
{
    if (_left == 0) {
        if (_iters > 1) {
            // Loop back to the body start.
            --_iters;
            _pc = _start;
            _left = _body;
        } else {
            newRun();
        }
    }
    const std::uint64_t fetch = _pc;
    _pc += 4;
    --_left;
    if (_pc >= _region.base + _region.footprint)
        newRun();
    return fetch;
}

} // namespace oma
