# Empty compiler generated dependencies file for caltool.
# This may be replaced when dependencies are built.
