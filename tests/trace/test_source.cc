/**
 * @file
 * Unit tests for trace sources, sinks, drain and filtering.
 */

#include <gtest/gtest.h>

#include "trace/filter.hh"
#include "trace/source.hh"

namespace oma
{
namespace
{

std::vector<MemRef>
makeRefs(int n)
{
    std::vector<MemRef> refs;
    for (int i = 0; i < n; ++i) {
        MemRef r;
        r.vaddr = 0x1000 + 4 * i;
        r.asid = (i % 3 == 0) ? 1 : 2;
        r.mode = (i % 2 == 0) ? Mode::User : Mode::Kernel;
        refs.push_back(r);
    }
    return refs;
}

TEST(VectorTraceSource, ReplaysInOrder)
{
    VectorTraceSource src(makeRefs(10));
    MemRef r;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(src.next(r));
        EXPECT_EQ(r.vaddr, 0x1000u + 4 * i);
    }
    EXPECT_FALSE(src.next(r));
}

TEST(VectorTraceSource, RewindRestarts)
{
    VectorTraceSource src(makeRefs(3));
    MemRef r;
    while (src.next(r)) {
    }
    src.rewind();
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.vaddr, 0x1000u);
}

TEST(Drain, CountsAndLimits)
{
    VectorTraceSource src(makeRefs(100));
    int seen = 0;
    const std::uint64_t n =
        drain(src, [&](const MemRef &) { ++seen; }, 42);
    EXPECT_EQ(n, 42u);
    EXPECT_EQ(seen, 42);

    // Unlimited drains the rest.
    const std::uint64_t rest = drain(src, [](const MemRef &) {});
    EXPECT_EQ(rest, 58u);
}

TEST(VectorTraceSink, Collects)
{
    VectorTraceSink sink;
    MemRef r;
    r.vaddr = 0xabc;
    sink.put(r);
    sink.put(r);
    EXPECT_EQ(sink.refs.size(), 2u);
    EXPECT_EQ(sink.refs[0].vaddr, 0xabcu);
}

TEST(Filter, UserOnlyKeepsOneAddressSpace)
{
    VectorTraceSource src(makeRefs(100));
    FilteredTraceSource filtered = userOnly(src, 1);
    MemRef r;
    int count = 0;
    while (filtered.next(r)) {
        EXPECT_EQ(r.asid, 1u);
        EXPECT_EQ(r.mode, Mode::User);
        ++count;
    }
    // asid 1 at i % 3 == 0 and user mode at i % 2 == 0: i % 6 == 0.
    EXPECT_EQ(count, 17);
}

TEST(Filter, PredicateComposes)
{
    VectorTraceSource src(makeRefs(20));
    FilteredTraceSource even(
        src, [](const MemRef &ref) { return (ref.vaddr & 7) == 0; });
    MemRef r;
    int count = 0;
    while (even.next(r))
        ++count;
    EXPECT_EQ(count, 10);
}

} // namespace
} // namespace oma
