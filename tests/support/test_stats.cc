/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/stats.hh"

namespace oma
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stderrOfMean(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation)
{
    const std::vector<double> xs = {1.5, 2.0, -3.0, 7.25, 0.0, 4.5};
    RunningStat s;
    for (double x : xs)
        s.add(x);

    double mean = 0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= (xs.size() - 1);

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningStat, SingleObservation)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, ConstantSequenceHasZeroVariance)
{
    RunningStat s;
    for (int i = 0; i < 100; ++i)
        s.add(3.25);
    EXPECT_DOUBLE_EQ(s.mean(), 3.25);
    EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

TEST(Ratio, Basics)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    r.record(true);
    r.record(false);
    r.record(false);
    r.record(true);
    EXPECT_EQ(r.events, 2u);
    EXPECT_EQ(r.total, 4u);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

} // namespace
} // namespace oma
