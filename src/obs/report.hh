/**
 * @file
 * Machine-readable run reports (`BENCH_<name>.json`).
 *
 * Every bench binary and the trace_tools sweep subcommand wrap their
 * run in a RunReport and save it on exit, so each run leaves an
 * artifact that CI uploads and EXPERIMENTS.md rows can be regenerated
 * from. The JSON schema (oma-run-report-v1) is documented in
 * docs/OBSERVABILITY.md; serialization iterates the registry's
 * ordered maps, so two reports over the same metrics are textually
 * identical apart from timing values.
 */

#ifndef OMA_OBS_REPORT_HH
#define OMA_OBS_REPORT_HH

#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hh"

namespace oma::obs
{

/** One run's name, metadata and metrics, ready to serialize. */
struct RunReport
{
    /** Report name; becomes `BENCH_<name>.json`. Restricted to
     * [A-Za-z0-9_-] so the file name is always safe. */
    std::string name;

    /** Free-form string metadata (benchmark, OS, refs, threads...). */
    std::map<std::string, std::string> meta;

    MetricRegistry metrics;

    explicit RunReport(std::string report_name);

    /** Serialize as oma-run-report-v1 JSON. */
    void writeJson(std::ostream &os) const;

    /** Serialize as flat CSV: `kind,name,value` rows. */
    void writeCsv(std::ostream &os) const;

    /** The file name this report saves under. */
    [[nodiscard]] std::string fileName() const;

    /**
     * Write `BENCH_<name>.json` into @p dir (empty = the
     * OMA_RUN_REPORT_DIR environment variable, falling back to the
     * current directory). Setting OMA_RUN_REPORT=0 disables saving.
     *
     * @return the path written, or "" when reporting is disabled.
     */
    std::string save(const std::string &dir = "") const;
};

} // namespace oma::obs

#endif // OMA_OBS_REPORT_HH
