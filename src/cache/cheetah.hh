/**
 * @file
 * Cheetah-style all-associativity cache simulation.
 *
 * Single-pass simulation of every associativity 1..W for a fixed set
 * count and line size, exploiting the LRU inclusion property through
 * per-set Mattson stack distances [Sugumar93]. With one set this also
 * yields the miss counts of every fully-associative LRU structure of
 * capacity 1..W entries in one pass, which is how the TLB-size sweeps
 * (Figure 7) are accelerated.
 */

#ifndef OMA_CACHE_CHEETAH_HH
#define OMA_CACHE_CHEETAH_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace oma
{

/**
 * All-associativity LRU simulator for a fixed (sets, line) shape.
 */
class Cheetah
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param line_bytes Line size in bytes (power of two); use 1 to
     *        treat addresses as pre-formed keys (e.g. TLB pages).
     * @param max_ways Largest associativity of interest.
     */
    Cheetah(std::uint64_t sets, std::uint64_t line_bytes,
            std::uint64_t max_ways);

    /** Observe one access. */
    void access(std::uint64_t addr);

    /** Total observed accesses. */
    [[nodiscard]] std::uint64_t accesses() const { return _accesses; }

    /** Misses a cache with @p ways ways would have had. */
    [[nodiscard]] std::uint64_t misses(std::uint64_t ways) const;

    /** Miss ratio at associativity @p ways. */
    [[nodiscard]] double
    missRatio(std::uint64_t ways) const
    {
        return _accesses == 0
            ? 0.0
            : double(misses(ways)) / double(_accesses);
    }

    /** First-touch (compulsory) misses, identical for every ways. */
    [[nodiscard]] std::uint64_t compulsoryMisses() const { return _compulsory; }

    [[nodiscard]] std::uint64_t maxWays() const { return _maxWays; }

  private:
    std::uint64_t _sets;
    unsigned _lineShift;
    unsigned _indexBits;
    std::uint64_t _maxWays;
    /** Per-set MRU-first tag stacks, truncated at _maxWays. */
    std::vector<std::vector<std::uint64_t>> _stacks;
    /** distHist[d] = hits at stack depth d (0 = MRU). */
    std::vector<std::uint64_t> _distHist;
    std::uint64_t _deepMisses = 0; //!< Distance > _maxWays or cold.
    std::uint64_t _accesses = 0;
    std::uint64_t _compulsory = 0;
    /** Lines ever seen, for compulsory-miss classification. */
    // oma-lint: allow(ordered-results): membership test via insert()
    // only; never iterated, so traversal order cannot reach results.
    std::unordered_set<std::uint64_t> _touched;
};

} // namespace oma

#endif // OMA_CACHE_CHEETAH_HH
