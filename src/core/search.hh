/**
 * @file
 * The design-space allocator: the paper's primary contribution.
 *
 * Enumerates the configuration grid of Table 5 (TLBs of 64-512
 * entries at 1/2/4/8-way or fully associative; caches of 2-32 KB with
 * 1-32-word lines at 1/2/4/8-way), costs each combination with the
 * MQF area model, discards combinations over the die budget (250,000
 * rbe), scores the rest with independently measured per-component CPI
 * contributions, and ranks by total CPI — regenerating Tables 6
 * and 7.
 */

#ifndef OMA_CORE_SEARCH_HH
#define OMA_CORE_SEARCH_HH

#include <cstdint>
#include <vector>

#include "area/mqf.hh"
#include "core/sweep.hh"
#include "support/deprecated.hh"

namespace oma
{

/**
 * The configuration grid of Table 5, plus optional extension axes.
 * The extension vectors default to empty, which makes the space the
 * paper's exact grid; populating them opens the five-component
 * allocation space (victim caches on the I-cache axis, swept
 * write-buffer depths, and split-L1 + L2 hierarchies) that the
 * extended search ranks alongside the classic combinations.
 */
struct ConfigSpace
{
    std::vector<std::uint64_t> tlbEntries = {64, 128, 256, 512};
    std::vector<std::uint64_t> tlbWays = {1, 2, 4, 8};
    /** Fully-associative TLBs considered up to this many entries. */
    std::uint64_t tlbFullAssocMax = 64;

    std::vector<std::uint64_t> cacheKBytes = {2, 4, 8, 16, 32};
    std::vector<std::uint64_t> lineWords = {1, 2, 4, 8, 16, 32};
    std::vector<std::uint64_t> cacheWays = {1, 2, 4, 8};

    // ----- extension axes (all default-empty = the paper's grid) -----

    /** Victim-buffer line counts paired with every direct-mapped
     * capacity in @c cacheKBytes (empty = no victim candidates). */
    std::vector<std::uint64_t> victimEntries;
    /** Line words of the direct-mapped L1 under a victim buffer. */
    std::uint64_t victimLineWords = 4;

    /** Write-buffer depths to sweep (empty = keep the reference
     * machine's buffer out of the search). */
    std::vector<std::uint64_t> wbEntries;
    std::uint64_t wbDrainCycles = 3;

    /** L2 capacities backing split L1 pairs (empty = no hierarchy
     * candidates). */
    std::vector<std::uint64_t> l2KBytes;
    std::uint64_t l2LineWords = 8;
    std::uint64_t l2Ways = 4;
    /** Split-L1 organization under an L2. */
    std::uint64_t hierL1LineWords = 4;
    std::uint64_t hierL1Ways = 2;

    /** All TLB geometries in the grid. */
    [[nodiscard]] std::vector<TlbGeometry> tlbGeometries() const;

    /**
     * All realizable cache geometries with associativity at most
     * @p max_ways (Table 7 restricts to 2).
     */
    [[nodiscard]] std::vector<CacheGeometry>
    cacheGeometries(std::uint64_t max_ways = 8) const;

    /** Victim-cache candidates (capacity x buffer depth). */
    [[nodiscard]] std::vector<VictimParams> victimConfigs() const;

    /** Write-buffer depth candidates. */
    [[nodiscard]] std::vector<WriteBufferParams>
    writeBufferConfigs() const;

    /** Split-L1 + L2 candidates (every L1 capacity strictly smaller
     * than its L2). */
    [[nodiscard]] std::vector<HierarchyParams>
    hierarchyConfigs() const;

    /** Every extension candidate as a sweepable component slot, in
     * victim, write-buffer, hierarchy order. */
    [[nodiscard]] std::vector<ComponentSlot> extensionSlots() const;

    /** True when any extension axis is populated. */
    [[nodiscard]] bool
    hasExtensions() const
    {
        return !victimEntries.empty() || !wbEntries.empty() ||
            !l2KBytes.empty();
    }

    /** The default extended space the experiments sweep: the paper's
     * grid plus modest victim / write-buffer / L2 axes. */
    [[nodiscard]] static ConfigSpace extended();

    /** Append every axis to an artifact-store fingerprint (vector
     * axes as an element count followed by the elements, so two
     * spaces never alias across field boundaries). */
    void fingerprint(Fingerprint &fp) const;
};

/** One ranked allocation of the on-chip memory budget. */
struct Allocation
{
    TlbGeometry tlb;
    CacheGeometry icache;
    CacheGeometry dcache;
    double areaRbe = 0.0;
    double cpi = 0.0;
    double tlbCpi = 0.0;
    double icacheCpi = 0.0;
    double dcacheCpi = 0.0;
    /** 1-based rank in the unrestricted ordering. */
    std::size_t rank = 0;

    // ----- extension fields (zero/false for classic allocations) ---

    /** Victim-buffer lines behind the (direct-mapped) I-cache. */
    std::uint64_t victimEntries = 0;
    /** Swept write-buffer depth (0 = not part of this allocation). */
    std::uint64_t wbEntries = 0;
    /** Hierarchy organization: split L1s (icache/dcache fields name
     * the L1 pair) backed by @c l2 when @c hasL2. */
    bool hasL2 = false;
    bool unified = false;
    CacheGeometry l2;
    /** Hierarchy stall CPI (replaces icacheCpi/dcacheCpi, which are
     * zero for hierarchy allocations). */
    double hierarchyCpi = 0.0;
    /** Swept write buffer's stall CPI (additive axis). */
    double wbCpi = 0.0;

    /** True when any extension component is part of the allocation. */
    [[nodiscard]] bool
    hasExtension() const
    {
        return victimEntries != 0 || wbEntries != 0 || hasL2 ||
            unified;
    }
};

/**
 * Exhaustive cost/benefit search over the configuration space.
 */
class AllocationSearch
{
  public:
    AllocationSearch(const AreaModel &area, double budget_rbe);

    /**
     * Rank every in-budget combination of the measured components.
     *
     * @param tables Suite-averaged per-component CPI contributions.
     * @param max_cache_ways Associativity restriction (8 = Table 6,
     *        2 = Table 7).
     * @param threads Execution lanes for the scoring loop; 0 = one
     *        per hardware thread, 1 = serial. The enumeration is
     *        sharded by TLB geometry and stitched back in TLB order,
     *        so the ranking (ties included) is bitwise identical for
     *        every thread count.
     * @param observation Optional metrics/progress sink (candidate
     *        and in-budget counts, phase timing); attaching one never
     *        changes the ranking.
     * @return all in-budget allocations, best (lowest CPI) first.
     */
    OMA_DEPRECATED("phrase the query as an api::AllocationRequest and "
                   "rank through api::QueryEngine (api/query_engine.hh)")
    [[nodiscard]] std::vector<Allocation>
    rank(const ComponentCpiTables &tables,
         std::uint64_t max_cache_ways = 8, unsigned threads = 0,
         obs::Observation *observation = nullptr) const;

    [[nodiscard]] double budget() const { return _budget; }
    [[nodiscard]] const AreaModel &areaModel() const { return _area; }

  private:
    AreaModel _area;
    double _budget;
};

} // namespace oma

#endif // OMA_CORE_SEARCH_HH
