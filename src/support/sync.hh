/**
 * @file
 * Annotated synchronization primitives: the only sanctioned mutex.
 *
 * Every lock in this codebase is an oma::Mutex acquired through an
 * oma::LockGuard; the raw std primitives are forbidden outside this
 * file by the `lock-audit` lint rule. The wrappers buy three things
 * over std::mutex (docs/STATIC_ANALYSIS.md, "Concurrency contract"):
 *
 * * *Capability annotations.* Mutex is an OMA_CAPABILITY and
 *   LockGuard an OMA_SCOPED_CAPABILITY, so every member marked
 *   OMA_GUARDED_BY(mutex) is compiler-verified (clang
 *   -Wthread-safety, the OMA_THREAD_SAFETY build) to be touched only
 *   under its lock.
 *
 * * *RAII only.* Mutex::lock()/unlock() exist to satisfy the
 *   capability model and the guard, but naked calls are flagged by
 *   lock-audit: a lock that cannot leak past a scope cannot be left
 *   held on an exception path.
 *
 * * *Deterministic deadlock detection.* A Mutex may carry a
 *   compile-in rank (OMA_LOCK_RANK(n)). When rank checking is
 *   compiled in (OMA_LOCK_RANK_CHECKS, default on; forced on in the
 *   sanitizer/CI builds) every thread tracks the ranks it holds, and
 *   acquiring a ranked mutex whose rank is not strictly greater than
 *   every held rank is an immediate fatal error — so a lock-order
 *   inversion is caught on its *first* execution, in any single run,
 *   rather than probabilistically when two threads interleave just
 *   so. Unranked mutexes (rank 0) are exempt from ordering but still
 *   annotated. When compiled out the rank machinery costs nothing:
 *   no rank member, no per-thread state.
 *
 * The ranking table for every mutex in the tree lives in
 * docs/STATIC_ANALYSIS.md; ranks increase from outer (held while
 * calling into other subsystems) to leaf (never held across a call
 * out), so a thread's acquired ranks are always strictly increasing.
 */

#ifndef OMA_SUPPORT_SYNC_HH
#define OMA_SUPPORT_SYNC_HH

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/thread_annotations.hh"

/** Compile-in lock-rank checking: default on (the checks are a few
 * thread-local vector operations per ranked acquisition — noise next
 * to the lock itself); configure with -DOMA_LOCK_RANK_CHECKS=OFF for
 * a zero-cost build. The CMake option of the same name drives this. */
#ifndef OMA_LOCK_RANK_CHECKS
#if defined(NDEBUG) && !defined(__SANITIZE_THREAD__)
#define OMA_LOCK_RANK_CHECKS 0
#else
#define OMA_LOCK_RANK_CHECKS 1
#endif
#endif

/** Spell a mutex's compile-in rank; expands to "unranked" when rank
 * checking is compiled out so the constant folds away entirely. */
#if OMA_LOCK_RANK_CHECKS
#define OMA_LOCK_RANK(n) (n)
#else
#define OMA_LOCK_RANK(n) 0u
#endif

namespace oma
{

/**
 * The lock-rank table: one named constant per mutex in the tree,
 * strictly ordered outer-to-leaf. A thread may only acquire a ranked
 * mutex whose rank is strictly greater than every rank it already
 * holds, so two ranked mutexes can never be waited on in both orders.
 * Keep this table in sync with docs/STATIC_ANALYSIS.md.
 */
namespace lockrank
{
inline constexpr unsigned none = 0;        //!< Unranked: order-exempt.
inline constexpr unsigned obsProgress = 10; //!< obs::Progress::_mutex.
/** InflightTable::_mutex: held only across map bookkeeping and the
 * publication wait, never while computing or touching the store, but
 * ranked outer to storeStats so a future put()-under-lease cannot
 * invert. */
inline constexpr unsigned storeInflight = 15;
inline constexpr unsigned storeStats = 20; //!< ArtifactStore::_statsMutex.
inline constexpr unsigned threadPool = 30; //!< ThreadPool::_mutex (leaf).
} // namespace lockrank

#if OMA_LOCK_RANK_CHECKS

namespace detail
{

/** Ranks of the ranked mutexes this thread currently holds, in
 * acquisition order. Thread-local, so maintenance is race-free. */
inline std::vector<unsigned> &
heldRanks()
{
    thread_local std::vector<unsigned> ranks;
    return ranks;
}

/** Fatal on an acquisition-order inversion; records @p rank held. */
inline void
rankAcquire(unsigned rank)
{
    std::vector<unsigned> &held = heldRanks();
    for (const unsigned h : held) {
        fatalIf(rank <= h,
                "lock-rank inversion: acquiring a mutex of rank " +
                    std::to_string(rank) +
                    " while holding a mutex of rank " +
                    std::to_string(h) +
                    " (ranks must strictly increase; table in "
                    "docs/STATIC_ANALYSIS.md)");
    }
    held.push_back(rank);
}

/** Forget @p rank (locks may be released in any order). */
inline void
rankRelease(unsigned rank)
{
    std::vector<unsigned> &held = heldRanks();
    for (std::size_t i = held.size(); i > 0; --i) {
        if (held[i - 1] == rank) {
            held.erase(held.begin() + long(i - 1));
            return;
        }
    }
    panic("lock-rank bookkeeping: releasing rank " +
          std::to_string(rank) + " that this thread does not hold");
}

} // namespace detail

#endif // OMA_LOCK_RANK_CHECKS

/**
 * A mutex carrying a thread-safety capability and an optional rank.
 * Acquire it through LockGuard; naked lock()/unlock() calls are
 * flagged by the lock-audit lint rule even inside the owning class.
 */
class OMA_CAPABILITY("mutex") Mutex
{
  public:
    /** @param rank Position in the lockrank table; lockrank::none
     *        (the default) exempts this mutex from order checking. */
    explicit Mutex(unsigned rank = lockrank::none)
#if OMA_LOCK_RANK_CHECKS
        : _rank(rank)
#endif
    {
        (void)rank;
    }

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() OMA_ACQUIRE()
    {
#if OMA_LOCK_RANK_CHECKS
        if (_rank != lockrank::none)
            detail::rankAcquire(_rank);
#endif
        _raw.lock();
    }

    void
    unlock() OMA_RELEASE()
    {
        _raw.unlock();
#if OMA_LOCK_RANK_CHECKS
        if (_rank != lockrank::none)
            detail::rankRelease(_rank);
#endif
    }

    /** Try without blocking; on success the caller holds the lock.
     * Rank-checked exactly like lock(): a try that *would* invert
     * the order is flagged even though it could not deadlock, so a
     * latent inversion never hides behind try_lock. */
    [[nodiscard]] bool
    tryLock() OMA_TRY_ACQUIRE(true)
    {
#if OMA_LOCK_RANK_CHECKS
        if (_rank != lockrank::none)
            detail::rankAcquire(_rank);
#endif
        if (_raw.try_lock())
            return true;
#if OMA_LOCK_RANK_CHECKS
        if (_rank != lockrank::none)
            detail::rankRelease(_rank);
#endif
        return false;
    }

  private:
    friend class CondVar;
    std::mutex _raw;
#if OMA_LOCK_RANK_CHECKS
    unsigned _rank;
#endif
};

/**
 * RAII scope lock over an oma::Mutex — the only way engine code
 * acquires one. Scoped-capability annotated, so clang tracks the
 * guarded region precisely.
 */
class OMA_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mutex) OMA_ACQUIRE(mutex) : _mutex(mutex)
    {
        _mutex.lock();
    }

    ~LockGuard() OMA_RELEASE() { _mutex.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    friend class CondVar;
    Mutex &_mutex;
};

/**
 * Condition variable bound to oma::Mutex via LockGuard. wait()
 * atomically releases the guard's mutex and reacquires it before
 * returning, exactly like std::condition_variable; spurious wakeups
 * are possible, so always wait in a `while (!condition)` loop — the
 * loop form (rather than a predicate lambda) also keeps guarded-state
 * reads inside the annotated caller where the analysis can see the
 * held lock.
 */
class CondVar
{
  public:
    /** Release @p guard's mutex, sleep, reacquire before returning.
     * The mutex's rank stays recorded as held across the wait: from
     * the caller's perspective the lock is held on both sides, and
     * nothing may be acquired in between. */
    void
    wait(LockGuard &guard) OMA_NO_THREAD_SAFETY_ANALYSIS
    {
        // oma-lint: allow(lock-audit): the sync shim adapts the
        // guard's already-held mutex to the std wait protocol.
        std::unique_lock<std::mutex> lock(guard._mutex._raw,
                                          std::adopt_lock);
        _cv.wait(lock);
        // Still locked after wait(); hand ownership back to the
        // guard rather than unlocking on unique_lock destruction.
        (void)lock.release();
    }

    void notifyOne() { _cv.notify_one(); }
    void notifyAll() { _cv.notify_all(); }

  private:
    std::condition_variable _cv;
};

} // namespace oma

#endif // OMA_SUPPORT_SYNC_HH
