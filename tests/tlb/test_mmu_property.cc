/**
 * @file
 * Property tests on the software-managed MMU across TLB geometries.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.hh"
#include "tlb/mmu.hh"

namespace oma
{
namespace
{

std::vector<MemRef>
mixedStream(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        MemRef r;
        const double mode = rng.uniform();
        if (mode < 0.75) {
            // User pages, Zipf-hot.
            r.vaddr = 0x00400000 +
                rng.zipf(512, 1.0) * pageBytes + rng.below(pageBytes);
            r.asid = 1 + std::uint32_t(rng.below(3));
        } else {
            // Mapped kernel pages.
            r.vaddr = kseg2Base + 0x10000000 +
                rng.zipf(64, 1.0) * pageBytes + rng.below(pageBytes);
            r.asid = 0;
            r.mode = Mode::Kernel;
        }
        r.kind = rng.chance(0.3) ? RefKind::Store : RefKind::Load;
        r.mapped = true;
        refs.push_back(r);
    }
    return refs;
}

MmuStats
runStream(const TlbGeometry &geom, const std::vector<MemRef> &refs)
{
    TlbParams p;
    p.geom = geom;
    Mmu mmu(p, TlbPenalties());
    for (const MemRef &r : refs)
        mmu.translate(r);
    return mmu.stats();
}

class MmuGeometrySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    std::vector<MemRef> refs = mixedStream(GetParam(), 60000);
};

TEST_P(MmuGeometrySweep, PageFaultsIndependentOfGeometry)
{
    // First touches are a property of the reference stream, not of
    // the TLB: every geometry must report the same count.
    const MmuStats fa64 = runStream(TlbGeometry::fullyAssoc(64), refs);
    for (const TlbGeometry &geom :
         {TlbGeometry(64, 1), TlbGeometry(128, 4), TlbGeometry(512, 8),
          TlbGeometry::fullyAssoc(16)}) {
        const MmuStats s = runStream(geom, refs);
        EXPECT_EQ(s.counts[unsigned(MissClass::PageFault)],
                  fa64.counts[unsigned(MissClass::PageFault)])
            << geom.describe();
    }
}

TEST_P(MmuGeometrySweep, ModifyFaultsMatchDistinctWrittenPages)
{
    // One modify fault per page that is ever stored to (the dirty
    // bit persists in the page metadata across TLB evictions).
    std::set<std::uint64_t> written;
    for (const MemRef &r : refs) {
        if (r.isStore()) {
            const bool kernel = inKseg2(r.vaddr);
            written.insert((kernel ? (1ULL << 62) : 0) |
                           (std::uint64_t(kernel ? 0 : r.asid) << 40) |
                           vpnOf(r.vaddr));
        }
    }
    const MmuStats s = runStream(TlbGeometry::fullyAssoc(128), refs);
    EXPECT_EQ(s.counts[unsigned(MissClass::ModifyFault)],
              written.size());
}

TEST_P(MmuGeometrySweep, FullyAssociativeRefillsMonotoneInSize)
{
    // Near-monotone: the nested page-table refills differ slightly
    // per configuration (they depend on the miss pattern), so a 2%
    // tolerance is allowed on top of strict LRU inclusion.
    std::uint64_t prev = ~0ULL;
    for (std::uint64_t entries : {8, 16, 32, 64, 128, 256}) {
        const MmuStats s =
            runStream(TlbGeometry::fullyAssoc(entries), refs);
        EXPECT_LE(s.refillCycles(), (prev * 102) / 100 + 100)
            << entries;
        prev = s.refillCycles();
    }
}

TEST_P(MmuGeometrySweep, MoreWaysNeverHurtAtFixedSets)
{
    // LRU inclusion across ways with the set count fixed (same 2%
    // tolerance for the nested page-table refill perturbation).
    std::uint64_t prev = ~0ULL;
    for (std::uint64_t ways : {1, 2, 4, 8}) {
        const MmuStats s = runStream(TlbGeometry(16 * ways, ways),
                                     refs);
        EXPECT_LE(s.totalMisses(), (prev * 102) / 100 + 100) << ways;
        prev = s.totalMisses();
    }
}

TEST_P(MmuGeometrySweep, TranslationCountIsGeometryIndependent)
{
    const MmuStats a = runStream(TlbGeometry(64, 2), refs);
    const MmuStats b = runStream(TlbGeometry::fullyAssoc(512), refs);
    EXPECT_EQ(a.translations, b.translations);
    EXPECT_EQ(a.translations, refs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmuGeometrySweep,
                         ::testing::Values(101u, 102u, 103u));

} // namespace
} // namespace oma
