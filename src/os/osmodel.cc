/**
 * @file
 * OsModel base pieces and the factory.
 */

#include "os/osmodel.hh"

#include "os/mach.hh"
#include "os/ultrix.hh"
#include "support/logging.hh"

namespace oma
{

const char *
osKindName(OsKind kind)
{
    return kind == OsKind::Ultrix ? "Ultrix" : "Mach";
}

OsModel::OsModel(std::uint64_t seed)
    : _seed(seed),
      _kernelSpace(layout::kernelAsid, seed),
      _xSpace(layout::xServerAsid, seed)
{
    // Program text gets physically contiguous frames (exec-time
    // allocation); X's stub region is included.
    _xSpace.addLinearSegment(layout::userTextBase, 128 * 1024);
}

void
OsModel::attachApp(AddressSpace &app_space, const DataBehavior &app_data)
{
    (void)app_space;
    (void)app_data;
}

void
OsModel::invalidateRandomPage(Rng &rng, std::uint64_t base,
                              std::uint64_t bytes, std::uint32_t asid)
{
    if (bytes < pageBytes)
        return;
    const std::uint64_t page_count = bytes / pageBytes;
    const std::uint64_t vpn = vpnOf(base) + rng.below(page_count);
    invalidatePage(vpn, asid, /*global=*/false);
}

std::unique_ptr<OsModel>
makeOsModel(OsKind kind, std::uint64_t seed)
{
    if (kind == OsKind::Ultrix)
        return std::make_unique<UltrixModel>(seed, UltrixParams());
    return std::make_unique<MachModel>(seed, MachParams());
}

} // namespace oma
