/**
 * @file
 * The sanctioned monotonic wall-clock shim.
 *
 * Simulation results must be a pure function of the experiment seed,
 * so wall-clock reads are banned tree-wide by the oma_lint
 * no-wallclock rule. Observability is the one legitimate consumer of
 * real time — phase timings and refs/sec rates in run reports — and
 * this header is the single allowlisted site (besides support/rng.hh
 * and bench code) where the clock may be read. Everything else takes
 * timestamps from here, which keeps the contract auditable: a
 * wall-clock value can reach simulation code only by flowing through
 * oma::Clock, and no simulation code includes this header.
 *
 * Timings taken through Clock are reported, never fed back into
 * results; see docs/OBSERVABILITY.md ("Determinism rules").
 */

#ifndef OMA_SUPPORT_CLOCK_HH
#define OMA_SUPPORT_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace oma
{

/** Monotonic clock reads for observability (never for results). */
struct Clock
{
    /** Nanoseconds on a monotonic timeline with an arbitrary epoch;
     * only differences are meaningful. */
    static std::int64_t
    nowNs()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /** Convert a nanosecond interval to milliseconds. */
    static double
    toMs(std::int64_t ns)
    {
        return double(ns) / 1e6;
    }

    /** Convert a nanosecond interval to seconds. */
    static double
    toSeconds(std::int64_t ns)
    {
        return double(ns) / 1e9;
    }
};

} // namespace oma

#endif // OMA_SUPPORT_CLOCK_HH
