/**
 * @file
 * Implementation of the replayable-component concept: the concrete
 * adapter for every simulator kind, the chunked/scalar replay
 * drivers, and the store codec shims.
 *
 * Each adapter funnels its batched replay() and its scalar access()
 * through the underlying simulator's one access body, so the two
 * paths produce bitwise-identical counters by construction — the
 * same contract the cache and TLB replay kernels carry
 * (cache/replay.hh, tlb/replay.hh), extended here to the victim
 * cache, the standalone write buffer and the hierarchies.
 */

#include "core/component.hh"

#include <type_traits>
#include <vector>

#include "store/codec.hh"
#include "support/logging.hh"
#include "tlb/mips_va.hh"

namespace oma
{

const char *
componentKindName(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::ICache:
        return "icache";
      case ComponentKind::DCache:
        return "dcache";
      case ComponentKind::Tlb:
        return "tlb";
      case ComponentKind::Victim:
        return "victim";
      case ComponentKind::WriteBuffer:
        return "wbuffer";
      case ComponentKind::Hierarchy:
        return "l2";
    }
    return "unknown";
}

ComponentSlot
ComponentSlot::icache(const CacheParams &p)
{
    return {ComponentKind::ICache, p};
}

ComponentSlot
ComponentSlot::dcache(const CacheParams &p)
{
    return {ComponentKind::DCache, p};
}

ComponentSlot
ComponentSlot::tlb(const TlbParams &p)
{
    return {ComponentKind::Tlb, p};
}

ComponentSlot
ComponentSlot::victim(const VictimParams &p)
{
    return {ComponentKind::Victim, p};
}

ComponentSlot
ComponentSlot::writeBuffer(const WriteBufferParams &p)
{
    return {ComponentKind::WriteBuffer, p};
}

ComponentSlot
ComponentSlot::hierarchy(const HierarchyParams &p)
{
    return {ComponentKind::Hierarchy, p};
}

void
ComponentSlot::fingerprint(Fingerprint &fp) const
{
    std::visit([&fp](const auto &p) { p.fingerprint(fp); }, params);
}

std::string
ComponentSlot::describe() const
{
    switch (kind) {
      case ComponentKind::ICache:
        return std::get<CacheParams>(params).geom.describe() +
            " I-cache";
      case ComponentKind::DCache:
        return std::get<CacheParams>(params).geom.describe() +
            " D-cache";
      case ComponentKind::Tlb:
        return std::get<TlbParams>(params).geom.describe() + " TLB";
      case ComponentKind::Victim: {
        const VictimParams &p = std::get<VictimParams>(params);
        return p.l1.describe() + " + V" +
            std::to_string(p.entries) + " victim";
      }
      case ComponentKind::WriteBuffer: {
        const WriteBufferParams &p =
            std::get<WriteBufferParams>(params);
        return std::to_string(p.entries) + "-entry write buffer";
      }
      case ComponentKind::Hierarchy:
        return std::get<HierarchyParams>(params).describe();
    }
    return "unknown component";
}

namespace
{

/**
 * Cache adapter: the fetch stream (ICache) or the cached-data stream
 * (DCache) through a Cache's batched kernels, exactly as the classic
 * sweep legs run them (cache/replay.cc compacts identically).
 */
class CacheComponent final : public ComponentReplayer
{
  public:
    CacheComponent(const CacheParams &params, bool fetch_stream)
        : _cache(params), _fetchStream(fetch_stream)
    {
        _paddr.reserve(RecordedTrace::chunkRefs);
        if (!fetch_stream)
            _flags.reserve(RecordedTrace::chunkRefs);
    }

    void
    access(const MemRef &ref) override
    {
        if (_fetchStream) {
            if (!ref.isFetch())
                return;
            _cache.access(ref.paddr, RefKind::IFetch);
        } else {
            if (ref.isFetch() || isUncached(ref.vaddr))
                return;
            _cache.access(ref.paddr, ref.kind);
        }
        ++_delivered;
    }

    void
    replay(const TraceChunkView &chunk) override
    {
        _paddr.clear();
        if (_fetchStream) {
            for (std::size_t i = 0; i < chunk.size; ++i) {
                const RefKind kind =
                    RefKind(chunk.flags[i] & RecordedTrace::kindMask);
                if (kind == RefKind::IFetch)
                    _paddr.push_back(chunk.paddr[i]);
            }
            _cache.replayFetchBatch(_paddr.data(), _paddr.size());
        } else {
            _flags.clear();
            for (std::size_t i = 0; i < chunk.size; ++i) {
                const RefKind kind =
                    RefKind(chunk.flags[i] & RecordedTrace::kindMask);
                if (kind != RefKind::IFetch &&
                    !isUncached(std::uint64_t(chunk.vaddr[i]))) {
                    _paddr.push_back(chunk.paddr[i]);
                    _flags.push_back(chunk.flags[i]);
                }
            }
            _cache.replayDataBatch(_paddr.data(), _flags.data(),
                                   _paddr.size());
        }
        _delivered += _paddr.size();
    }

    [[nodiscard]] ComponentCounters
    counters() const override
    {
        return _cache.stats();
    }

    [[nodiscard]] std::uint64_t
    delivered() const override
    {
        return _delivered;
    }

  private:
    Cache _cache;
    bool _fetchStream;
    std::vector<std::uint32_t> _paddr;
    std::vector<std::uint8_t> _flags;
    std::uint64_t _delivered = 0;
};

/**
 * MMU adapter: the full stream through translatePacked, with the
 * trace's pinned invalidation events applied between references (the
 * driver slices chunks at event positions because wantsEvents()).
 */
class TlbComponent final : public ComponentReplayer
{
  public:
    TlbComponent(const TlbParams &params,
                 const TlbPenalties &penalties)
        : _mmu(params, penalties)
    {
    }

    void
    access(const MemRef &ref) override
    {
        _mmu.translatePacked(std::uint32_t(ref.vaddr),
                             std::uint8_t(ref.asid),
                             RecordedTrace::packFlags(ref));
        ++_delivered;
    }

    void
    replay(const TraceChunkView &chunk) override
    {
        for (std::size_t i = 0; i < chunk.size; ++i)
            _mmu.translatePacked(chunk.vaddr[i], chunk.asid[i],
                                 chunk.flags[i]);
        _delivered += chunk.size;
    }

    void
    event(const TraceEvent &ev) override
    {
        _mmu.invalidatePage(ev.vpn, ev.asid, ev.global);
    }

    [[nodiscard]] bool
    wantsEvents() const override
    {
        return true;
    }

    [[nodiscard]] ComponentCounters
    counters() const override
    {
        return _mmu.stats();
    }

    [[nodiscard]] std::uint64_t
    delivered() const override
    {
        return _delivered;
    }

  private:
    Mmu _mmu;
    std::uint64_t _delivered = 0;
};

/** Victim-cache adapter: the instruction-fetch stream, like the
 * I-cache leg it competes with in the allocation search. */
class VictimComponent final : public ComponentReplayer
{
  public:
    explicit VictimComponent(const VictimParams &params) : _vc(params)
    {
        _paddr.reserve(RecordedTrace::chunkRefs);
    }

    void
    access(const MemRef &ref) override
    {
        if (!ref.isFetch())
            return;
        _vc.access(ref.paddr);
        ++_delivered;
    }

    void
    replay(const TraceChunkView &chunk) override
    {
        _paddr.clear();
        for (std::size_t i = 0; i < chunk.size; ++i) {
            const RefKind kind =
                RefKind(chunk.flags[i] & RecordedTrace::kindMask);
            if (kind == RefKind::IFetch)
                _paddr.push_back(chunk.paddr[i]);
        }
        _vc.replayFetchBatch(_paddr.data(), _paddr.size());
        _delivered += _paddr.size();
    }

    [[nodiscard]] ComponentCounters
    counters() const override
    {
        return _vc.stats();
    }

    [[nodiscard]] std::uint64_t
    delivered() const override
    {
        return _delivered;
    }

  private:
    VictimCache _vc;
    std::vector<std::uint32_t> _paddr;
    std::uint64_t _delivered = 0;
};

/** Write-buffer adapter: every reference kind through one observe()
 * body (fetches advance time, stores push words). */
class WriteBufferComponent final : public ComponentReplayer
{
  public:
    explicit WriteBufferComponent(const WriteBufferParams &params)
        : _sim(params)
    {
    }

    void
    access(const MemRef &ref) override
    {
        _sim.observe(ref.kind);
        ++_delivered;
    }

    void
    replay(const TraceChunkView &chunk) override
    {
        for (std::size_t i = 0; i < chunk.size; ++i)
            _sim.observe(
                RefKind(chunk.flags[i] & RecordedTrace::kindMask));
        _delivered += chunk.size;
    }

    [[nodiscard]] ComponentCounters
    counters() const override
    {
        return _sim.stats();
    }

    [[nodiscard]] std::uint64_t
    delivered() const override
    {
        return _delivered;
    }

  private:
    WriteBufferSim _sim;
    std::uint64_t _delivered = 0;
};

/**
 * Hierarchy adapter: fetches plus cached data through a UnifiedCache
 * or TwoLevelCache. Fetches are always delivered (like the I-cache
 * component); data references pass the kseg1 filter (like the
 * D-cache component), so hierarchy counters compose with the split
 * legs' semantics.
 */
class HierarchyComponent final : public ComponentReplayer
{
  public:
    explicit HierarchyComponent(const HierarchyParams &params)
    {
        params.validate(); // unified && hasL2 is contradictory
        if (params.unified)
            _unified = std::make_unique<UnifiedCache>(
                params.l1i, params.penalties);
        else
            _split = std::make_unique<TwoLevelCache>(params);
    }

    void
    access(const MemRef &ref) override
    {
        accessOne(ref.vaddr, ref.paddr, ref.kind);
    }

    void
    replay(const TraceChunkView &chunk) override
    {
        for (std::size_t i = 0; i < chunk.size; ++i)
            accessOne(std::uint64_t(chunk.vaddr[i]),
                      std::uint64_t(chunk.paddr[i]),
                      RefKind(chunk.flags[i] &
                              RecordedTrace::kindMask));
    }

    [[nodiscard]] ComponentCounters
    counters() const override
    {
        return _unified != nullptr ? _unified->stats()
                                   : _split->stats();
    }

    [[nodiscard]] std::uint64_t
    delivered() const override
    {
        return _delivered;
    }

  private:
    void
    accessOne(std::uint64_t vaddr, std::uint64_t paddr, RefKind kind)
    {
        if (kind != RefKind::IFetch && isUncached(vaddr))
            return;
        if (_unified != nullptr)
            _unified->access(paddr, kind);
        else
            _split->access(paddr, kind);
        ++_delivered;
    }

    std::unique_ptr<UnifiedCache> _unified;
    std::unique_ptr<TwoLevelCache> _split;
    std::uint64_t _delivered = 0;
};

static_assert(ReplayableComponent<CacheComponent>);
static_assert(ReplayableComponent<TlbComponent>);
static_assert(ReplayableComponent<VictimComponent>);
static_assert(ReplayableComponent<WriteBufferComponent>);
static_assert(ReplayableComponent<HierarchyComponent>);

/** Variant alternative of ComponentCounters that @p kind reports. */
std::size_t
countersIndexFor(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::ICache:
      case ComponentKind::DCache:
        return 0; // CacheStats
      case ComponentKind::Tlb:
        return 1; // MmuStats
      case ComponentKind::Victim:
        return 2; // VictimStats
      case ComponentKind::WriteBuffer:
        return 3; // WriteBufferStats
      case ComponentKind::Hierarchy:
        return 4; // HierarchyStats
    }
    return 0;
}

} // namespace

std::unique_ptr<ComponentReplayer>
makeComponent(const ComponentSlot &slot,
              const MachineParams &reference_machine)
{
    switch (slot.kind) {
      case ComponentKind::ICache:
        return std::make_unique<CacheComponent>(
            std::get<CacheParams>(slot.params), true);
      case ComponentKind::DCache:
        return std::make_unique<CacheComponent>(
            std::get<CacheParams>(slot.params), false);
      case ComponentKind::Tlb:
        return std::make_unique<TlbComponent>(
            std::get<TlbParams>(slot.params),
            reference_machine.tlbPenalties);
      case ComponentKind::Victim:
        return std::make_unique<VictimComponent>(
            std::get<VictimParams>(slot.params));
      case ComponentKind::WriteBuffer:
        return std::make_unique<WriteBufferComponent>(
            std::get<WriteBufferParams>(slot.params));
      case ComponentKind::Hierarchy:
        return std::make_unique<HierarchyComponent>(
            std::get<HierarchyParams>(slot.params));
    }
    fatal("unknown component kind");
}

std::uint64_t
replayComponent(const RecordedTrace &trace,
                ComponentReplayer &component)
{
    if (!component.wantsEvents()) {
        // Event-blind components stream whole chunks.
        for (std::size_t c = 0; c < trace.numChunks(); ++c)
            component.replay(trace.chunkView(c));
        return trace.size();
    }

    // Slice each chunk at event positions so every event fires
    // immediately before the reference it is pinned to — the order
    // the live hook produced and the scalar replay reproduces.
    // Events pinned past the final reference never fire, matching
    // RecordedTrace::replay.
    const std::vector<TraceEvent> &events = trace.events();
    std::size_t e = 0;
    for (std::size_t c = 0; c < trace.numChunks(); ++c) {
        const TraceChunkView v = trace.chunkView(c);
        std::size_t done = 0;
        while (done < v.size) {
            const std::uint64_t index = v.baseIndex + done;
            while (e < events.size() && events[e].index == index)
                component.event(events[e++]);
            // Dense run to the next event in this chunk (or its
            // end). Every event at `index` is consumed above, so the
            // next pending event lies strictly past `done`.
            std::size_t stop = v.size;
            if (e < events.size() &&
                events[e].index < v.baseIndex + v.size) {
                stop = std::size_t(events[e].index - v.baseIndex);
            }
            TraceChunkView slice = v;
            slice.vaddr += done;
            slice.paddr += done;
            slice.asid += done;
            slice.flags += done;
            slice.size = stop - done;
            slice.baseIndex = index;
            component.replay(slice);
            done = stop;
        }
    }
    return trace.size();
}

std::uint64_t
replayComponentScalar(const RecordedTrace &trace,
                      ComponentReplayer &component)
{
    trace.replay(
        [&component](const MemRef &ref) { component.access(ref); },
        [&component](const TraceEvent &ev) { component.event(ev); });
    return trace.size();
}

std::string
encodeComponentCounters(const ComponentCounters &counters)
{
    return std::visit(
        [](const auto &s) -> std::string {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, CacheStats>)
                return store::encodeCacheStats(s);
            else if constexpr (std::is_same_v<T, MmuStats>)
                return store::encodeMmuStats(s);
            else if constexpr (std::is_same_v<T, VictimStats>)
                return store::encodeVictimStats(s);
            else if constexpr (std::is_same_v<T, WriteBufferStats>)
                return store::encodeWriteBufferStats(s);
            else
                return store::encodeHierarchyStats(s);
        },
        counters);
}

bool
decodeComponentCounters(std::string_view payload, ComponentKind kind,
                        ComponentCounters &counters)
{
    // The payload carries no kind tag: the store key already
    // fingerprints the kind (and the byte layouts are framed by the
    // per-type decoders), so shards written by the pre-component
    // engine decode unchanged.
    switch (countersIndexFor(kind)) {
      case 0: {
        CacheStats s;
        if (!store::decodeCacheStats(payload, s))
            return false;
        counters = s;
        return true;
      }
      case 1: {
        MmuStats s;
        if (!store::decodeMmuStats(payload, s))
            return false;
        counters = s;
        return true;
      }
      case 2: {
        VictimStats s;
        if (!store::decodeVictimStats(payload, s))
            return false;
        counters = s;
        return true;
      }
      case 3: {
        WriteBufferStats s;
        if (!store::decodeWriteBufferStats(payload, s))
            return false;
        counters = s;
        return true;
      }
      case 4: {
        HierarchyStats s;
        if (!store::decodeHierarchyStats(payload, s))
            return false;
        counters = s;
        return true;
      }
      default:
        return false;
    }
}

} // namespace oma
