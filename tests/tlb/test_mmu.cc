/**
 * @file
 * Unit tests for the software-managed MMU model: miss classification,
 * nested page-table refills and penalty accounting.
 */

#include <gtest/gtest.h>

#include "tlb/mmu.hh"

namespace oma
{
namespace
{

MemRef
ref(std::uint64_t vaddr, std::uint32_t asid,
    RefKind kind = RefKind::Load, Mode mode = Mode::User)
{
    MemRef r;
    r.vaddr = vaddr;
    r.asid = asid;
    r.kind = kind;
    r.mode = mode;
    r.mapped = isMappedAddress(vaddr);
    return r;
}

Mmu
makeMmu(std::uint64_t entries = 64)
{
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(entries);
    return Mmu(p, TlbPenalties());
}

TEST(Mmu, UnmappedKseg0CostsNothing)
{
    Mmu mmu = makeMmu();
    EXPECT_EQ(mmu.translate(ref(kseg0Base + 0x1000, 0,
                                RefKind::IFetch, Mode::Kernel)),
              0u);
    EXPECT_EQ(mmu.stats().translations, 0u);
}

TEST(Mmu, FirstTouchIsPageFaultNotStall)
{
    Mmu mmu = makeMmu();
    // First touch: recorded as a page fault, returned stall is 0.
    EXPECT_EQ(mmu.translate(ref(0x1000, 1)), 0u);
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::PageFault)], 1u);
    // Resident now.
    EXPECT_EQ(mmu.translate(ref(0x1000, 1)), 0u);
    EXPECT_EQ(mmu.stats().totalMisses(), 1u);
}

TEST(Mmu, EvictedUserPageRefillsViaFastHandler)
{
    TlbPenalties pen;
    Mmu mmu = makeMmu(4);
    // Touch enough distinct pages to evict the first.
    for (std::uint64_t page = 0; page < 8; ++page)
        mmu.translate(ref(0x100000 + page * pageBytes, 1));
    const std::uint64_t before =
        mmu.stats().counts[unsigned(MissClass::UserMiss)];
    const std::uint64_t cycles = mmu.translate(ref(0x100000, 1));
    EXPECT_GE(cycles, pen.userMiss);
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::UserMiss)],
              before + 1);
}

TEST(Mmu, Kseg2MissIsKernelClass)
{
    TlbPenalties pen;
    Mmu mmu = makeMmu(4);
    const std::uint64_t va = kseg2Base + 0x100000;
    mmu.translate(ref(va, 0, RefKind::Load, Mode::Kernel)); // fault
    for (std::uint64_t page = 0; page < 8; ++page)
        mmu.translate(ref(0x200000 + page * pageBytes, 1)); // evict
    const std::uint64_t cycles =
        mmu.translate(ref(va, 0, RefKind::Load, Mode::Kernel));
    EXPECT_EQ(cycles, pen.kernelMiss);
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::KernelMiss)], 1u);
}

TEST(Mmu, FirstStoreTakesModifyFault)
{
    TlbPenalties pen;
    Mmu mmu = makeMmu();
    mmu.translate(ref(0x1000, 1)); // load faults the page in, clean
    const std::uint64_t cycles =
        mmu.translate(ref(0x1000, 1, RefKind::Store));
    EXPECT_EQ(cycles, pen.modifyFault);
    // Second store: no further fault.
    EXPECT_EQ(mmu.translate(ref(0x1000, 1, RefKind::Store)), 0u);
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::ModifyFault)], 1u);
}

TEST(Mmu, StoreFirstTouchMarksDirtyImmediately)
{
    Mmu mmu = makeMmu();
    // Page fault + modify in one go.
    mmu.translate(ref(0x2000, 1, RefKind::Store));
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::ModifyFault)], 1u);
    // Subsequent stores are free.
    EXPECT_EQ(mmu.translate(ref(0x2000, 1, RefKind::Store)), 0u);
}

TEST(Mmu, InvalidationCausesInvalidFault)
{
    TlbPenalties pen;
    Mmu mmu = makeMmu();
    mmu.translate(ref(0x3000, 1));
    mmu.invalidatePage(vpnOf(0x3000), 1, false);
    const std::uint64_t cycles = mmu.translate(ref(0x3000, 1));
    EXPECT_GE(cycles, pen.invalidFault);
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::InvalidFault)],
              1u);
}

TEST(Mmu, InvalidatingUntouchedPageIsANoop)
{
    Mmu mmu = makeMmu();
    mmu.invalidatePage(vpnOf(0x5000), 1, false);
    mmu.translate(ref(0x5000, 1));
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::InvalidFault)],
              0u);
    EXPECT_EQ(mmu.stats().counts[unsigned(MissClass::PageFault)], 1u);
}

TEST(Mmu, UserRefillTouchesPageTablePage)
{
    // After heavy eviction, a user refill whose page-table page also
    // left the TLB pays a nested kernel miss.
    TlbPenalties pen;
    Mmu mmu = makeMmu(2);
    mmu.translate(ref(0x1000, 1)); // fault in
    // Evict everything with far-apart pages (different PT pages too).
    mmu.translate(ref(0x10000000, 1));
    mmu.translate(ref(0x20000000, 1));
    mmu.translate(ref(0x30000000, 1));
    const std::uint64_t cycles = mmu.translate(ref(0x1000, 1));
    EXPECT_EQ(cycles, pen.userMiss + pen.kernelMiss);
}

TEST(Mmu, PtePageStaysResidentForNearbyRefills)
{
    // Two user pages in the same 4-MB region share a PT page: with a
    // roomy TLB the second refill pays only the fast handler.
    TlbPenalties pen;
    Mmu mmu = makeMmu(64);
    Mmu small = makeMmu(2);
    (void)small;
    mmu.translate(ref(0x1000, 1));
    mmu.translate(ref(0x2000, 1));
    // Force both user entries out but keep the PT page: touch many
    // pages in the same region.
    for (std::uint64_t page = 0; page < 100; ++page)
        mmu.translate(ref(0x100000 + page * pageBytes, 1));
    const std::uint64_t cycles = mmu.translate(ref(0x1000, 1));
    EXPECT_EQ(cycles, pen.userMiss); // PT page still cached
}

TEST(Mmu, ServiceSecondsUseConfiguredClock)
{
    TlbPenalties pen;
    pen.clockHz = 1e6;
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(4);
    Mmu mmu(p, pen);
    mmu.translate(ref(0x1000, 1)); // page fault: pen.pageFault cycles
    EXPECT_DOUBLE_EQ(mmu.serviceSeconds(),
                     double(pen.pageFault) / 1e6);
}

TEST(Mmu, GeometryDependentCyclesExcludePageFaults)
{
    Mmu mmu = makeMmu();
    mmu.translate(ref(0x1000, 1));
    EXPECT_EQ(mmu.stats().geometryDependentCycles(), 0u);
    EXPECT_GT(mmu.stats().totalServiceCycles(), 0u);
}

TEST(Mmu, MissClassNames)
{
    EXPECT_STREQ(missClassName(MissClass::UserMiss), "user");
    EXPECT_STREQ(missClassName(MissClass::KernelMiss), "kernel");
    EXPECT_STREQ(missClassName(MissClass::ModifyFault), "modify");
    EXPECT_STREQ(missClassName(MissClass::InvalidFault), "invalid");
    EXPECT_STREQ(missClassName(MissClass::PageFault), "other");
}

} // namespace
} // namespace oma
