/**
 * @file
 * Differential test: Cheetah one-pass all-associativity simulation vs
 * N independent Cache instances replaying the same trace.
 *
 * This is the correctness backstop the parallel sweep engine leans
 * on: the parallel path replays a recorded stream through independent
 * per-geometry simulators, and this suite pins those simulators to
 * the stack-distance algebra on randomized traces far nastier than
 * uniform noise — Zipf-skewed working sets, strided streams, store
 * bursts, and a real synthesized workload's D-cache stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/cheetah.hh"
#include "support/rng.hh"
#include "tlb/mips_va.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

struct Access
{
    std::uint64_t paddr;
    RefKind kind;
};

/** Mixed synthetic trace: Zipf hot set + sequential strides + store
 * bursts, with loads and stores interleaved. */
std::vector<Access>
nastyTrace(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<Access> trace;
    trace.reserve(n);
    std::uint64_t stream_pos = 0x200000;
    while (trace.size() < n) {
        const double pick = rng.uniform();
        if (pick < 0.5) {
            // Hot working set, heavily skewed.
            const std::uint64_t word = rng.zipf(4096, 1.1);
            trace.push_back({0x10000 + word * 4,
                             rng.chance(0.3) ? RefKind::Store
                                             : RefKind::Load});
        } else if (pick < 0.8) {
            // Sequential streaming with a fixed stride.
            stream_pos += 16;
            if (stream_pos > 0x280000)
                stream_pos = 0x200000;
            trace.push_back({stream_pos, RefKind::Load});
        } else {
            // Store burst to consecutive words.
            std::uint64_t base = 0x400000 + rng.below(1 << 14) * 4;
            const std::uint64_t burst = 1 + rng.below(8);
            for (std::uint64_t b = 0; b < burst && trace.size() < n; ++b)
                trace.push_back({base + b * 4, RefKind::Store});
        }
    }
    return trace;
}

/** The D-cache reference stream of a real synthesized workload,
 * filtered exactly as ComponentSweep filters it. */
std::vector<Access>
workloadDcacheTrace(std::uint64_t seed, std::size_t n)
{
    System system(benchmarkParams(BenchmarkId::Mpeg), OsKind::Mach,
                  seed);
    std::vector<Access> trace;
    trace.reserve(n);
    MemRef ref;
    while (trace.size() < n && system.next(ref)) {
        if (!ref.isFetch() &&
            !(ref.vaddr >= kseg1Base && ref.vaddr < kseg2Base))
            trace.push_back({ref.paddr, ref.kind});
    }
    return trace;
}

/** Replay @p trace through Cheetah and through one direct Cache per
 * power-of-two associativity; assert identical miss counts. */
void
runDifferential(const std::vector<Access> &trace, std::uint64_t sets,
                std::uint64_t line, std::uint64_t max_ways)
{
    Cheetah cheetah(sets, line, max_ways);

    std::vector<Cache> direct;
    std::vector<std::uint64_t> ways_list;
    for (std::uint64_t ways = 1; ways <= max_ways; ways *= 2) {
        CacheParams p;
        p.geom = CacheGeometry(sets * line * ways, line, ways);
        direct.emplace_back(p);
        ways_list.push_back(ways);
    }

    for (const Access &a : trace) {
        cheetah.access(a.paddr);
        for (auto &cache : direct)
            cache.access(a.paddr, a.kind);
    }

    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(cheetah.misses(ways_list[i]),
                  direct[i].stats().totalMisses())
            << "sets=" << sets << " line=" << line
            << " ways=" << ways_list[i];
        EXPECT_EQ(direct[i].stats().totalAccesses(), trace.size());
    }
    EXPECT_EQ(cheetah.accesses(), trace.size());
    EXPECT_EQ(cheetah.compulsoryMisses(),
              direct.front().stats().compulsoryMisses);
}

class CheetahDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CheetahDifferential, NastyTraceManyShapes)
{
    const std::uint64_t seed = GetParam();
    const auto trace = nastyTrace(seed, 40000);
    runDifferential(trace, 64, 16, 8);
    runDifferential(trace, 16, 32, 4);
    runDifferential(trace, 256, 4, 2);
    runDifferential(trace, 1, 16, 16); // fully-associative column
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheetahDifferential,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(CheetahDifferential, RealWorkloadDcacheStream)
{
    const auto trace = workloadDcacheTrace(42, 60000);
    ASSERT_GE(trace.size(), 60000u);
    runDifferential(trace, 128, 16, 8);
    runDifferential(trace, 512, 4, 2);
}

TEST(CheetahDifferential, StoreOnlyTraceStillMatches)
{
    // Write-allocate write-through stores allocate on miss exactly
    // like loads, so residency — and therefore Cheetah's counts —
    // must match for a pure store stream too.
    Rng rng(7);
    std::vector<Access> trace(20000);
    for (auto &a : trace)
        a = {rng.below(1 << 16) & ~3ULL, RefKind::Store};
    runDifferential(trace, 32, 16, 4);
}

} // namespace
} // namespace oma
