/**
 * @file
 * Implementation of the batched MMU replay driver.
 */

#include "tlb/replay.hh"

#include <vector>

namespace oma
{

std::uint64_t
replayTranslateBatched(const RecordedTrace &trace, Mmu &mmu)
{
    const std::vector<TraceEvent> &events = trace.events();
    std::size_t e = 0;
    std::uint64_t index = 0;
    for (std::size_t c = 0; c < trace.numChunks(); ++c) {
        const TraceChunkView v = trace.chunkView(c);
        if (e == events.size() ||
            events[e].index >= index + v.size) {
            // No event fires inside this chunk (an event pinned to
            // the chunk-end index belongs to the next chunk's first
            // reference): run the dense loop.
            for (std::size_t i = 0; i < v.size; ++i)
                mmu.translatePacked(v.vaddr[i], v.asid[i], v.flags[i]);
            index += v.size;
            continue;
        }
        for (std::size_t i = 0; i < v.size; ++i, ++index) {
            while (e < events.size() && events[e].index == index) {
                const TraceEvent &ev = events[e++];
                mmu.invalidatePage(ev.vpn, ev.asid, ev.global);
            }
            mmu.translatePacked(v.vaddr[i], v.asid[i], v.flags[i]);
        }
    }
    return index;
}

} // namespace oma
