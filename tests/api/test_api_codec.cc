/**
 * @file
 * AllocationRequest / AllocationResponse wire-codec tests.
 *
 * The request codec is the daemon's trust boundary: a line either
 * decodes into exactly one AllocationRequest or is refused. These
 * tests pin the round-trip, the strict-schema refusals (unknown
 * field, any missing field, truncation anywhere, garbage) and the
 * byte-stability that makes warm/cold/deduplicated answers
 * comparable bitwise.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/json.hh"
#include "api/request.hh"

namespace oma::api
{
namespace
{

/** A request exercising every non-default field. */
AllocationRequest
sampleRequest()
{
    AllocationRequest request;
    request.workloads = {BenchmarkId::Mpeg, BenchmarkId::VideoPlay};
    request.os = OsKind::Ultrix;
    request.references = 123456789012345ULL;
    request.seed = 18446744073709551615ULL;
    request.space.victimEntries = {0, 4};
    request.space.wbEntries = {1, 4};
    request.space.l2KBytes = {0, 128};
    request.maxCacheWays = 2;
    request.budgetRbe = 125000.5;
    request.strategy = Strategy::Annealing;
    request.annealing.seed = 7;
    request.annealing.chains = 3;
    request.annealing.iterations = 500;
    request.annealing.initialTemp = 2.5;
    request.annealing.finalTemp = 0.01;
    request.topK = 0;
    request.threads = 4;
    return request;
}

TEST(ApiCodec, RequestRoundTripsFieldByField)
{
    const AllocationRequest in = sampleRequest();
    const std::string wire = encodeRequest(in);

    AllocationRequest out;
    std::string error;
    ASSERT_TRUE(decodeRequest(wire, out, error)) << error;

    EXPECT_EQ(out.workloads, in.workloads);
    EXPECT_EQ(out.os, in.os);
    EXPECT_EQ(out.references, in.references);
    EXPECT_EQ(out.seed, in.seed);
    EXPECT_EQ(out.space.tlbEntries, in.space.tlbEntries);
    EXPECT_EQ(out.space.tlbWays, in.space.tlbWays);
    EXPECT_EQ(out.space.tlbFullAssocMax, in.space.tlbFullAssocMax);
    EXPECT_EQ(out.space.cacheKBytes, in.space.cacheKBytes);
    EXPECT_EQ(out.space.lineWords, in.space.lineWords);
    EXPECT_EQ(out.space.cacheWays, in.space.cacheWays);
    EXPECT_EQ(out.space.victimEntries, in.space.victimEntries);
    EXPECT_EQ(out.space.victimLineWords, in.space.victimLineWords);
    EXPECT_EQ(out.space.wbEntries, in.space.wbEntries);
    EXPECT_EQ(out.space.wbDrainCycles, in.space.wbDrainCycles);
    EXPECT_EQ(out.space.l2KBytes, in.space.l2KBytes);
    EXPECT_EQ(out.space.l2LineWords, in.space.l2LineWords);
    EXPECT_EQ(out.space.l2Ways, in.space.l2Ways);
    EXPECT_EQ(out.space.hierL1LineWords, in.space.hierL1LineWords);
    EXPECT_EQ(out.space.hierL1Ways, in.space.hierL1Ways);
    EXPECT_EQ(out.maxCacheWays, in.maxCacheWays);
    EXPECT_DOUBLE_EQ(out.budgetRbe, in.budgetRbe);
    EXPECT_EQ(out.strategy, in.strategy);
    EXPECT_EQ(out.annealing.seed, in.annealing.seed);
    EXPECT_EQ(out.annealing.chains, in.annealing.chains);
    EXPECT_EQ(out.annealing.iterations, in.annealing.iterations);
    EXPECT_DOUBLE_EQ(out.annealing.initialTemp,
                     in.annealing.initialTemp);
    EXPECT_DOUBLE_EQ(out.annealing.finalTemp, in.annealing.finalTemp);
    EXPECT_EQ(out.topK, in.topK);
    EXPECT_EQ(out.threads, in.threads);

    // Byte-stable: re-encoding the decoded request reproduces the
    // wire line exactly.
    EXPECT_EQ(encodeRequest(out), wire);
    // NDJSON-safe: one line, no embedded newlines.
    EXPECT_EQ(wire.find('\n'), std::string::npos);
}

TEST(ApiCodec, RequestRejectsUnknownFields)
{
    // Splice an extra member into an otherwise valid request at the
    // top level, inside `space`, and inside `annealing`.
    const std::string wire = encodeRequest(AllocationRequest());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(wire, doc, error)) << error;

    {
        JsonValue mutated = doc;
        JsonValue extra;
        extra.kind = JsonValue::Kind::Bool;
        extra.boolean = true;
        mutated.object.emplace_back("surprise", extra);
        AllocationRequest out;
        EXPECT_FALSE(decodeRequest(writeJson(mutated), out, error));
        EXPECT_NE(error.find("surprise"), std::string::npos) << error;
    }
    for (const char *nested : {"space", "annealing"}) {
        JsonValue mutated = doc;
        for (auto &member : mutated.object) {
            if (member.first == nested) {
                JsonValue extra;
                extra.kind = JsonValue::Kind::Number;
                extra.number = "1";
                member.second.object.emplace_back("surprise", extra);
            }
        }
        AllocationRequest out;
        EXPECT_FALSE(decodeRequest(writeJson(mutated), out, error))
            << nested;
        EXPECT_NE(error.find("surprise"), std::string::npos) << error;
    }
}

TEST(ApiCodec, RequestRejectsEveryMissingField)
{
    const std::string wire = encodeRequest(AllocationRequest());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(wire, doc, error)) << error;

    // Drop each top-level member in turn: all fields are required.
    for (std::size_t i = 0; i < doc.object.size(); ++i) {
        JsonValue mutated = doc;
        const std::string dropped = mutated.object[i].first;
        mutated.object.erase(mutated.object.begin() +
                             std::ptrdiff_t(i));
        AllocationRequest out;
        EXPECT_FALSE(decodeRequest(writeJson(mutated), out, error))
            << "decoded without required field " << dropped;
    }
}

TEST(ApiCodec, RequestRejectsTruncationAnywhere)
{
    const std::string wire = encodeRequest(sampleRequest());
    AllocationRequest out;
    std::string error;
    for (std::size_t len = 0; len < wire.size(); ++len) {
        EXPECT_FALSE(
            decodeRequest(wire.substr(0, len), out, error))
            << "decoded a " << len << "-byte prefix";
    }
}

TEST(ApiCodec, RequestRejectsGarbageAndWrongSchema)
{
    AllocationRequest out;
    std::string error;
    EXPECT_FALSE(decodeRequest("", out, error));
    EXPECT_FALSE(decodeRequest("hello", out, error));
    EXPECT_FALSE(decodeRequest("{}", out, error));
    EXPECT_FALSE(decodeRequest("[1,2,3]", out, error));
    EXPECT_FALSE(decodeRequest(
        "{\"schema\":\"oma-allocation-request-v999\"}", out, error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;

    // A valid line with one value of the wrong kind.
    std::string wire = encodeRequest(AllocationRequest());
    const std::string needle = "\"references\":3000000";
    const std::size_t at = wire.find(needle);
    ASSERT_NE(at, std::string::npos);
    wire.replace(at, needle.size(), "\"references\":\"lots\"");
    EXPECT_FALSE(decodeRequest(wire, out, error));
    EXPECT_NE(error.find("references"), std::string::npos) << error;
}

TEST(ApiCodec, ResponseRoundTripsAndStaysByteStable)
{
    AllocationResponse in;
    in.strategy = Strategy::Annealing;
    in.inBudget = 17;
    in.candidates = 1200;
    in.evaluations = 4321;
    in.prunedSubspaces = 9;
    in.baseCpi = 1.25;
    in.wbCpi = 0.0625;
    in.otherCpi = 0.5;
    Allocation a;
    a.rank = 1;
    a.tlb = TlbGeometry::fullyAssoc(64);
    a.icache = CacheGeometry::fromWords(8 * 1024, 4, 1);
    a.dcache = CacheGeometry::fromWords(4 * 1024, 4, 2);
    a.areaRbe = 249000.25;
    a.cpi = 1.75;
    a.tlbCpi = 0.125;
    a.icacheCpi = 0.25;
    a.dcacheCpi = 0.375;
    a.victimEntries = 4;
    a.wbEntries = 2;
    a.hasL2 = true;
    a.unified = false;
    a.l2 = CacheGeometry::fromWords(128 * 1024, 8, 1);
    a.hierarchyCpi = 1.5;
    a.wbCpi = 0.03125;
    in.allocations = {a};

    const std::string wire = encodeResponse(in);
    AllocationResponse out;
    std::string error;
    ASSERT_TRUE(decodeResponse(wire, out, error)) << error;

    EXPECT_EQ(out.strategy, in.strategy);
    EXPECT_EQ(out.inBudget, in.inBudget);
    EXPECT_EQ(out.candidates, in.candidates);
    EXPECT_EQ(out.evaluations, in.evaluations);
    EXPECT_EQ(out.prunedSubspaces, in.prunedSubspaces);
    EXPECT_DOUBLE_EQ(out.baseCpi, in.baseCpi);
    ASSERT_EQ(out.allocations.size(), 1u);
    const Allocation &b = out.allocations.front();
    EXPECT_EQ(b.rank, a.rank);
    EXPECT_EQ(b.tlb.entries, a.tlb.entries);
    EXPECT_EQ(b.icache.capacityBytes, a.icache.capacityBytes);
    EXPECT_EQ(b.dcache.assoc, a.dcache.assoc);
    EXPECT_DOUBLE_EQ(b.areaRbe, a.areaRbe);
    EXPECT_EQ(b.victimEntries, a.victimEntries);
    EXPECT_EQ(b.wbEntries, a.wbEntries);
    EXPECT_TRUE(b.hasL2);
    EXPECT_FALSE(b.unified);
    EXPECT_EQ(b.l2.capacityBytes, a.l2.capacityBytes);
    EXPECT_DOUBLE_EQ(b.hierarchyCpi, a.hierarchyCpi);
    EXPECT_DOUBLE_EQ(b.wbCpi, a.wbCpi);

    // decode(encode(x)) re-encodes to identical bytes, the property
    // the bitwise cold==warm==dedup comparison rests on.
    EXPECT_EQ(encodeResponse(out), wire);
}

TEST(ApiCodec, ResponseRejectsUnknownAndMissingFields)
{
    const std::string wire = encodeResponse(AllocationResponse());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(wire, doc, error)) << error;

    JsonValue mutated = doc;
    JsonValue extra;
    extra.kind = JsonValue::Kind::Null;
    mutated.object.emplace_back("surprise", extra);
    AllocationResponse out;
    EXPECT_FALSE(decodeResponse(writeJson(mutated), out, error));

    for (std::size_t i = 0; i < doc.object.size(); ++i) {
        JsonValue dropped = doc;
        dropped.object.erase(dropped.object.begin() +
                             std::ptrdiff_t(i));
        EXPECT_FALSE(decodeResponse(writeJson(dropped), out, error));
    }
}

TEST(ApiCodec, ErrorEnvelopeIsWellFormed)
{
    const std::string wire = encodeError("request.seed: bad \"value\"");
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(wire, doc, error)) << error;
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string, errorSchema);
    ASSERT_NE(doc.find("error"), nullptr);
    EXPECT_EQ(doc.find("error")->string,
              "request.seed: bad \"value\"");
}

TEST(ApiCodec, NameTablesRoundTrip)
{
    Strategy strategy = Strategy::Exhaustive;
    EXPECT_TRUE(strategyFromName("annealing", strategy));
    EXPECT_EQ(strategy, Strategy::Annealing);
    EXPECT_TRUE(strategyFromName("exhaustive", strategy));
    EXPECT_EQ(strategy, Strategy::Exhaustive);
    EXPECT_FALSE(strategyFromName("genetic", strategy));
    EXPECT_STREQ(strategyName(Strategy::Exhaustive), "exhaustive");
    EXPECT_STREQ(strategyName(Strategy::Annealing), "annealing");

    for (BenchmarkId id : allBenchmarks()) {
        BenchmarkId out = BenchmarkId::Mpeg;
        EXPECT_TRUE(benchmarkFromName(benchmarkName(id), out));
        EXPECT_EQ(out, id);
    }
    BenchmarkId bench = BenchmarkId::Mpeg;
    EXPECT_FALSE(benchmarkFromName("doom", bench));

    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        OsKind out = OsKind::Mach;
        EXPECT_TRUE(osKindFromName(osKindName(os), out));
        EXPECT_EQ(out, os);
    }
    OsKind os = OsKind::Mach;
    EXPECT_FALSE(osKindFromName("plan9", os));
}

TEST(ApiCodec, FingerprintExcludesExecutionFields)
{
    AllocationRequest a = sampleRequest();
    AllocationRequest b = a;
    b.threads = 32; // execution knob: same question
    EXPECT_EQ(a.responseKey().text(), b.responseKey().text());

    // Content knobs each move the key.
    b = a;
    b.seed = a.seed - 1;
    EXPECT_NE(a.responseKey().text(), b.responseKey().text());
    b = a;
    b.strategy = Strategy::Exhaustive;
    EXPECT_NE(a.responseKey().text(), b.responseKey().text());
    b = a;
    b.annealing.seed = a.annealing.seed + 1;
    EXPECT_NE(a.responseKey().text(), b.responseKey().text());
    b = a;
    b.topK = 10;
    EXPECT_NE(a.responseKey().text(), b.responseKey().text());
}

TEST(ApiCodec, AnnealingKnobsOnlyCountUnderAnnealing)
{
    // An exhaustive answer does not depend on annealing knobs, so
    // they must not fragment the store key space.
    AllocationRequest a;
    a.strategy = Strategy::Exhaustive;
    AllocationRequest b = a;
    b.annealing.seed = 999;
    b.annealing.iterations = 17;
    EXPECT_EQ(a.responseKey().text(), b.responseKey().text());
}

} // namespace
} // namespace oma::api
