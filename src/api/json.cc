/**
 * @file
 * Strict JSON parser/writer implementation.
 */

#include "api/json.hh"

#include <charconv>
#include <cmath>

#include "support/logging.hh"

namespace oma::api
{

namespace
{

/** Nesting bound: deep enough for any sane document, shallow enough
 * that hostile input cannot blow the parser's stack. */
constexpr int maxDepth = 64;

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        error = what + " at byte " + std::to_string(pos);
        return false;
    }

    [[nodiscard]] bool
    atEnd() const
    {
        return pos >= text.size();
    }

    [[nodiscard]] char
    peek() const
    {
        return text[pos];
    }

    void
    skipSpace()
    {
        while (!atEnd()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos;
        }
    }

    bool
    expect(char c)
    {
        if (atEnd() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool parseValue(JsonValue &out, int depth);
    bool parseNumber(JsonValue &out);
    bool parseString(std::string &out);
    bool parseArray(JsonValue &out, int depth);
    bool parseObject(JsonValue &out, int depth);
};

bool
Parser::parseNumber(JsonValue &out)
{
    const std::size_t start = pos;
    if (!atEnd() && peek() == '-')
        ++pos;
    if (atEnd() || peek() < '0' || peek() > '9')
        return fail("invalid number");
    if (peek() == '0') {
        ++pos;
    } else {
        while (!atEnd() && peek() >= '0' && peek() <= '9')
            ++pos;
    }
    if (!atEnd() && peek() == '.') {
        ++pos;
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("digits required after decimal point");
        while (!atEnd() && peek() >= '0' && peek() <= '9')
            ++pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
        ++pos;
        if (!atEnd() && (peek() == '+' || peek() == '-'))
            ++pos;
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("digits required in exponent");
        while (!atEnd() && peek() >= '0' && peek() <= '9')
            ++pos;
    }
    out.kind = JsonValue::Kind::Number;
    out.number.assign(text.substr(start, pos - start));
    return true;
}

/** Append one Unicode code point as UTF-8. */
void
appendUtf8(std::string &out, std::uint32_t cp)
{
    if (cp < 0x80) {
        out.push_back(char(cp));
    } else if (cp < 0x800) {
        out.push_back(char(0xc0 | (cp >> 6)));
        out.push_back(char(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
        out.push_back(char(0xe0 | (cp >> 12)));
        out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
        out.push_back(char(0x80 | (cp & 0x3f)));
    } else {
        out.push_back(char(0xf0 | (cp >> 18)));
        out.push_back(char(0x80 | ((cp >> 12) & 0x3f)));
        out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
        out.push_back(char(0x80 | (cp & 0x3f)));
    }
}

bool
Parser::parseString(std::string &out)
{
    if (!expect('"'))
        return false;
    out.clear();
    while (true) {
        if (atEnd())
            return fail("unterminated string");
        const unsigned char c = static_cast<unsigned char>(text[pos]);
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c < 0x20)
            return fail("raw control character in string");
        if (c != '\\') {
            out.push_back(char(c));
            ++pos;
            continue;
        }
        ++pos; // consume the backslash
        if (atEnd())
            return fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
            const auto hex4 = [this](std::uint32_t &v) {
                if (text.size() - pos < 4)
                    return false;
                v = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos + std::size_t(i)];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= std::uint32_t(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= std::uint32_t(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= std::uint32_t(h - 'A' + 10);
                    else
                        return false;
                }
                pos += 4;
                return true;
            };
            std::uint32_t cp = 0;
            if (!hex4(cp))
                return fail("invalid \\u escape");
            if (cp >= 0xd800 && cp <= 0xdbff) {
                // High surrogate: require the paired low surrogate.
                std::uint32_t lo = 0;
                if (text.substr(pos, 2) != "\\u") {
                    return fail("unpaired surrogate");
                }
                pos += 2;
                if (!hex4(lo) || lo < 0xdc00 || lo > 0xdfff)
                    return fail("unpaired surrogate");
                cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                return fail("unpaired surrogate");
            }
            appendUtf8(out, cp);
            break;
        }
        default: return fail("invalid escape");
        }
    }
}

bool
Parser::parseArray(JsonValue &out, int depth)
{
    if (!expect('['))
        return false;
    out.kind = JsonValue::Kind::Array;
    skipSpace();
    if (!atEnd() && peek() == ']') {
        ++pos;
        return true;
    }
    while (true) {
        JsonValue element;
        if (!parseValue(element, depth))
            return false;
        out.array.push_back(std::move(element));
        skipSpace();
        if (atEnd())
            return fail("unterminated array");
        if (peek() == ',') {
            ++pos;
            continue;
        }
        if (peek() == ']') {
            ++pos;
            return true;
        }
        return fail("expected ',' or ']'");
    }
}

bool
Parser::parseObject(JsonValue &out, int depth)
{
    if (!expect('{'))
        return false;
    out.kind = JsonValue::Kind::Object;
    skipSpace();
    if (!atEnd() && peek() == '}') {
        ++pos;
        return true;
    }
    while (true) {
        skipSpace();
        std::string key;
        if (!parseString(key))
            return false;
        for (const auto &member : out.object) {
            if (member.first == key)
                return fail("duplicate object key \"" + key + "\"");
        }
        skipSpace();
        if (!expect(':'))
            return false;
        JsonValue value;
        if (!parseValue(value, depth))
            return false;
        out.object.emplace_back(std::move(key), std::move(value));
        skipSpace();
        if (atEnd())
            return fail("unterminated object");
        if (peek() == ',') {
            ++pos;
            continue;
        }
        if (peek() == '}') {
            ++pos;
            return true;
        }
        return fail("expected ',' or '}'");
    }
}

bool
Parser::parseValue(JsonValue &out, int depth)
{
    if (depth >= maxDepth)
        return fail("nesting deeper than " + std::to_string(maxDepth));
    skipSpace();
    if (atEnd())
        return fail("unexpected end of input");
    switch (peek()) {
    case '{': return parseObject(out, depth + 1);
    case '[': return parseArray(out, depth + 1);
    case '"':
        out.kind = JsonValue::Kind::String;
        return parseString(out.string);
    case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
    case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
    case 'n': out.kind = JsonValue::Kind::Null; return literal("null");
    default: return parseNumber(out);
    }
}

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &member : object) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

bool
JsonValue::asU64(std::uint64_t &out) const
{
    if (kind != Kind::Number || number.empty())
        return false;
    // Integral token only: no sign, fraction or exponent, so a seed
    // never silently loses precision through a double.
    for (const char c : number) {
        if (c < '0' || c > '9')
            return false;
    }
    const char *end = number.data() + number.size();
    const auto res = std::from_chars(number.data(), end, out);
    return res.ec == std::errc() && res.ptr == end;
}

bool
JsonValue::asReal(double &out) const
{
    if (kind != Kind::Number || number.empty())
        return false;
    const char *end = number.data() + number.size();
    const auto res = std::from_chars(number.data(), end, out);
    return res.ec == std::errc() && res.ptr == end &&
        std::isfinite(out);
}

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    Parser parser;
    parser.text = text;
    if (!parser.parseValue(out, 0)) {
        error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (!parser.atEnd()) {
        parser.fail("trailing content after document");
        error = parser.error;
        return false;
    }
    return true;
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out.push_back('"');
    for (const char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                static const char digits[] = "0123456789abcdef";
                out += "\\u00";
                out.push_back(digits[c >> 4]);
                out.push_back(digits[c & 0xf]);
            } else {
                out.push_back(raw);
            }
        }
    }
    out.push_back('"');
}

void
appendJsonU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

void
appendJsonReal(std::string &out, double v)
{
    fatalIf(!std::isfinite(v),
            "api json: non-finite number has no JSON encoding");
    char buf[48];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

std::string
writeJson(const JsonValue &value)
{
    std::string out;
    const auto write = [&out](const JsonValue &v,
                              const auto &self) -> void {
        switch (v.kind) {
        case JsonValue::Kind::Null: out += "null"; break;
        case JsonValue::Kind::Bool:
            out += v.boolean ? "true" : "false";
            break;
        case JsonValue::Kind::Number: out += v.number; break;
        case JsonValue::Kind::String:
            appendJsonString(out, v.string);
            break;
        case JsonValue::Kind::Array: {
            out.push_back('[');
            bool first = true;
            for (const JsonValue &element : v.array) {
                if (!first)
                    out.push_back(',');
                first = false;
                self(element, self);
            }
            out.push_back(']');
            break;
        }
        case JsonValue::Kind::Object: {
            out.push_back('{');
            bool first = true;
            for (const auto &member : v.object) {
                if (!first)
                    out.push_back(',');
                first = false;
                appendJsonString(out, member.first);
                out.push_back(':');
                self(member.second, self);
            }
            out.push_back('}');
            break;
        }
        }
    };
    write(value, write);
    return out;
}

} // namespace oma::api
