/**
 * @file
 * Tests on the canonical virtual-memory layout: kernel regions must
 * be non-overlapping, properly segmented, and laid out so they do
 * not alias each other in a direct-mapped physically-indexed cache
 * (kseg0 is identity-mapped).
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/layout.hh"

namespace oma
{
namespace
{

struct Region
{
    const char *name;
    std::uint64_t base;
    std::uint64_t size;
};

std::vector<Region>
kernelTextRegions()
{
    return {
        {"trap", layout::kTrapTextBase, 8 * 1024},
        {"svc", layout::kSvcTextBase, 24 * 1024},
        {"ipc", layout::kIpcTextBase, 20 * 1024},
        {"timer", layout::kTimerTextBase, 4 * 1024},
        {"kstack", layout::kStackBase, 8 * 1024},
    };
}

TEST(Layout, KernelRegionsDoNotOverlap)
{
    const auto regions = kernelTextRegions();
    for (std::size_t i = 0; i < regions.size(); ++i) {
        for (std::size_t j = i + 1; j < regions.size(); ++j) {
            const Region &a = regions[i];
            const Region &b = regions[j];
            const bool disjoint = a.base + a.size <= b.base ||
                b.base + b.size <= a.base;
            EXPECT_TRUE(disjoint) << a.name << " vs " << b.name;
        }
    }
}

TEST(Layout, KernelRegionsLiveInKseg0)
{
    for (const Region &r : kernelTextRegions()) {
        EXPECT_TRUE(inKseg0(r.base)) << r.name;
        EXPECT_TRUE(inKseg0(r.base + r.size - 1)) << r.name;
        EXPECT_FALSE(isMappedAddress(r.base)) << r.name;
    }
    EXPECT_TRUE(inKseg0(layout::kDataBase));
    EXPECT_TRUE(inKseg0(layout::kBufferCacheBase));
}

TEST(Layout, KernelTextFitsA64KDirectMappedCacheWithoutSelfAliasing)
{
    // The packed kernel image must not wrap around a 64-KB
    // direct-mapped cache: its total span stays under 64 KB.
    const auto regions = kernelTextRegions();
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const Region &r : regions) {
        lo = std::min(lo, r.base);
        hi = std::max(hi, r.base + r.size);
    }
    EXPECT_LE(hi - lo, 64u * 1024);
}

TEST(Layout, UserRegionsAreMapped)
{
    for (std::uint64_t va :
         {layout::userTextBase, layout::userWsBase,
          layout::userStreamBase, layout::userStackBase,
          layout::emulTextBase, layout::serverBufBase,
          layout::xShareBase}) {
        EXPECT_TRUE(inKuseg(va)) << std::hex << va;
        EXPECT_TRUE(isMappedAddress(va));
    }
}

TEST(Layout, FrameBufferIsUncachedKseg1)
{
    EXPECT_GE(layout::frameBufferBase, kseg1Base);
    EXPECT_LT(layout::frameBufferBase, kseg2Base);
    EXPECT_FALSE(isMappedAddress(layout::frameBufferBase));
}

TEST(Layout, Kseg2DynamicsAboveAllPageTables)
{
    // The per-ASID linear page tables occupy kseg2Base + asid * 4 MB;
    // dynamic kernel structures must start above the last one.
    const std::uint64_t last_pt_end = pageTableBase(63) + (1ULL << 22);
    EXPECT_GE(layout::kseg2DynBase, last_pt_end);
    EXPECT_TRUE(inKseg2(layout::kseg2DynBase));
}

TEST(Layout, AsidsAreDistinct)
{
    std::vector<std::uint32_t> asids = {
        layout::kernelAsid, layout::appAsid, layout::xServerAsid,
        layout::bsdServerAsid, layout::pagerAsid,
        layout::extraServerAsid};
    for (std::size_t i = 0; i < asids.size(); ++i)
        for (std::size_t j = i + 1; j < asids.size(); ++j)
            EXPECT_NE(asids[i], asids[j]);
}

TEST(Layout, PteVpnHelperIsConsistent)
{
    // The PTE page of user vpn V in space A sits (V >> 10) pages
    // above that space's page-table base.
    for (std::uint32_t asid : {1u, 7u, 63u}) {
        for (std::uint64_t vpn : {0ULL, 1023ULL, 1024ULL, 0xfffffULL}) {
            EXPECT_EQ(ptePageVpn(asid, vpn),
                      vpnOf(pageTableBase(asid)) + (vpn >> 10));
        }
    }
}

} // namespace
} // namespace oma
