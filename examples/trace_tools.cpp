/**
 * @file
 * Example: trace capture and replay utility.
 *
 *   trace_tools gen <file> <benchmark> <ultrix|mach> <refs> [sampled]
 *       Record a reference stream (with inline page-invalidation
 *       events) and save it as a v2 trace file. Append "sampled" to
 *       apply the paper's 50-window methodology instead (sampled
 *       traces carry no events).
 *   trace_tools info <file>
 *       Summarize a trace: reference mix, modes, address spaces,
 *       format version, event count.
 *   trace_tools sim <file> <i_kb> <d_kb> <line_words> <ways>
 *       Replay a trace through a cache pair and report miss ratios.
 *   trace_tools sweep <file> [threads]
 *       Feed a recorded trace straight into a ComponentSweep over a
 *       small cache/TLB grid and print the per-configuration table.
 *   trace_tools sweeprun <benchmark> <ultrix|mach> <refs> [threads]
 *       Run a live (store-aware) ComponentSweep over the same grid:
 *       with OMA_STORE_DIR set, the recording and every replay shard
 *       persist, so a warm rerun skips the record phase (the CI
 *       cold-vs-warm job drives this subcommand).
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "api/query_engine.hh"
#include "cache/cache.hh"
#include "core/sweep.hh"
#include "obs/export.hh"
#include "obs/report.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "trace/sampler.hh"
#include "trace/stats.hh"
#include "trace/tracefile.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

BenchmarkId
parseBenchmark(const std::string &name)
{
    for (BenchmarkId id : allBenchmarks()) {
        if (name == benchmarkName(id))
            return id;
    }
    fatal("unknown benchmark: " + name);
}

int
cmdGen(int argc, char **argv)
{
    fatalIf(argc < 6, "gen needs <file> <benchmark> <os> <refs>");
    const std::string path = argv[2];
    const BenchmarkId id = parseBenchmark(argv[3]);
    const OsKind os = std::string(argv[4]) == "ultrix"
        ? OsKind::Ultrix
        : OsKind::Mach;
    const std::uint64_t refs = std::strtoull(argv[5], nullptr, 10);
    const bool sampled = argc > 6 && std::string(argv[6]) == "sampled";

    System system(benchmarkParams(id), os, 42);
    if (sampled) {
        // Sampling drops references, so event positions would not
        // line up; sampled traces are written without events.
        SamplerParams sp; // the paper's 50-sample methodology
        sp.sampleCount = 50;
        sp.sampleLength = refs / 50;
        sp.meanGap = 3 * sp.sampleLength;
        TraceSampler sampler(system, sp);
        TraceFileWriter writer(path);
        MemRef ref;
        while (sampler.next(ref))
            writer.put(ref);
        writer.close();
        std::cout << "Wrote " << writer.count()
                  << " sampled references to " << path << "\n";
        return 0;
    }

    const RecordedTrace trace = system.record(refs);
    writeTrace(path, trace);
    std::cout << "Wrote " << trace.size() << " references and "
              << trace.events().size() << " invalidation events to "
              << path << " (" << fmtKBytes(trace.byteSize())
              << " packed)\n";
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    fatalIf(argc < 3, "info needs <file>");
    TraceFileReader reader(argv[2]);
    TraceStatistics stats;
    MemRef ref;
    while (reader.next(ref))
        stats.put(ref);
    std::cout << "Trace: " << argv[2] << " (format v"
              << reader.version() << ", " << reader.eventCount()
              << " invalidation events, other CPI "
              << fmtFixed(reader.otherCpi(), 3) << ")\n";
    stats.print(std::cout);
    return 0;
}

int
cmdSim(int argc, char **argv)
{
    fatalIf(argc < 7,
            "sim needs <file> <i_kb> <d_kb> <line_words> <ways>");
    const RecordedTrace trace = readTrace(argv[2]);
    CacheParams ip, dp;
    ip.geom = CacheGeometry::fromWords(
        std::strtoull(argv[3], nullptr, 10) * 1024,
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10));
    dp.geom = CacheGeometry::fromWords(
        std::strtoull(argv[4], nullptr, 10) * 1024,
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10));
    Cache icache(ip), dcache(dp);
    trace.replayFetchPaddrs([&](std::uint64_t paddr) {
        icache.access(paddr, RefKind::IFetch);
    });
    trace.replayCachedData([&](std::uint64_t paddr, RefKind kind) {
        dcache.access(paddr, kind);
    });
    std::cout << "I-cache " << ip.geom.describe() << ": miss ratio "
              << fmtFixed(icache.stats().missRatio(), 4) << " ("
              << icache.stats().totalMisses() << " misses)\n"
              << "D-cache " << dp.geom.describe() << ": miss ratio "
              << fmtFixed(dcache.stats().missRatio(), 4) << " ("
              << dcache.stats().totalMisses() << " misses)\n";
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    fatalIf(argc < 3, "sweep needs <file> [threads]");
    const unsigned threads = argc > 3
        ? unsigned(std::strtoul(argv[3], nullptr, 10))
        : 0;
    const RecordedTrace trace = readTrace(argv[2]);
    fatalIf(trace.empty(), "empty trace");

    std::vector<CacheGeometry> cache_geoms;
    for (std::uint64_t kb : {2, 4, 8, 16, 32})
        cache_geoms.push_back(
            CacheGeometry::fromWords(kb * 1024, 4, 1));
    std::vector<TlbGeometry> tlb_geoms = {
        TlbGeometry::fullyAssoc(64), TlbGeometry(128, 2),
        TlbGeometry(256, 4)};

    const MachineParams mp = MachineParams::decstation3100();
    api::QueryEngine engine;
    api::SweepGrid grid;
    grid.icacheGeoms = cache_geoms;
    grid.dcacheGeoms = cache_geoms;
    grid.tlbGeoms = tlb_geoms;
    api::AllocationRequest request;
    request.threads = threads;
    obs::Observation observation;
    const SweepResult r =
        engine.replay(request, trace, &observation, &grid);

    obs::RunReport report("trace_tools_sweep");
    report.meta["trace_file"] = argv[2];
    report.meta["threads"] = std::to_string(threads);
    report.metrics.merge(observation.metrics);
    obs::exportSweepResult(report.metrics, r);
    const std::string saved = report.save();
    if (!saved.empty())
        std::cout << "[run report: " << saved << "]\n";

    std::cout << "Swept " << r.references << " recorded references ("
              << r.instructions << " instructions, "
              << trace.events().size() << " events)\n";
    TextTable table({"component", "geometry", "miss ratio", "CPI"});
    for (std::size_t i = 0; i < cache_geoms.size(); ++i) {
        table.addRow({"icache", cache_geoms[i].describe(),
                      fmtFixed(r.icache(i).missRatio(), 4),
                      fmtFixed(r.icache(i).cpi(mp), 3)});
    }
    for (std::size_t i = 0; i < cache_geoms.size(); ++i) {
        table.addRow({"dcache", cache_geoms[i].describe(),
                      fmtFixed(r.dcache(i).missRatio(), 4),
                      fmtFixed(r.dcache(i).cpi(mp), 3)});
    }
    for (std::size_t i = 0; i < tlb_geoms.size(); ++i) {
        table.addRow({"tlb", tlb_geoms[i].describe(), "-",
                      fmtFixed(r.tlb(i).cpi(), 3)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdSweepRun(int argc, char **argv)
{
    fatalIf(argc < 5,
            "sweeprun needs <benchmark> <ultrix|mach> <refs> [threads]");
    const BenchmarkId id = parseBenchmark(argv[2]);
    const OsKind os = std::string(argv[3]) == "ultrix"
        ? OsKind::Ultrix
        : OsKind::Mach;
    api::AllocationRequest request;
    request.workloads = {id};
    request.os = os;
    request.references = std::strtoull(argv[4], nullptr, 10);
    if (argc > 5)
        request.threads = unsigned(std::strtoul(argv[5], nullptr, 10));

    std::vector<CacheGeometry> cache_geoms;
    for (std::uint64_t kb : {2, 4, 8, 16, 32})
        cache_geoms.push_back(
            CacheGeometry::fromWords(kb * 1024, 4, 1));
    std::vector<TlbGeometry> tlb_geoms = {
        TlbGeometry::fullyAssoc(64), TlbGeometry(128, 2),
        TlbGeometry(256, 4)};

    api::QueryEngine engine; // store root from OMA_STORE_DIR
    api::SweepGrid grid;
    grid.icacheGeoms = cache_geoms;
    grid.dcacheGeoms = cache_geoms;
    grid.tlbGeoms = tlb_geoms;
    obs::Observation observation;
    const SweepResult r =
        engine.sweep(request, &observation, &grid).front();

    obs::RunReport report("trace_tools_sweeprun");
    report.meta["benchmark"] = benchmarkName(id);
    report.meta["os"] = osKindName(os);
    report.meta["threads"] = std::to_string(request.threads);
    report.metrics.merge(observation.metrics);
    obs::exportSweepResult(report.metrics, r);
    const std::string saved = report.save();
    if (!saved.empty())
        std::cout << "[run report: " << saved << "]\n";

    std::cout << "Swept " << r.references << " references ("
              << r.instructions << " instructions); records="
              << observation.metrics.counter("sweep/records")
              << " record_skips="
              << observation.metrics.counter("sweep/record_skips")
              << " store_hits="
              << observation.metrics.counter("store/hits") << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cout << "usage: trace_tools gen|info|sim|sweep|sweeprun ...\n";
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "sim")
        return cmdSim(argc, argv);
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    if (cmd == "sweeprun")
        return cmdSweepRun(argc, argv);
    fatal("unknown command: " + cmd);
}
