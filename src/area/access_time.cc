/**
 * @file
 * Implementation of the Wada-style access-time model.
 */

#include "area/access_time.hh"

#include "support/bits.hh"

namespace oma
{

AccessTimeModel::AccessTimeModel(const AccessTimeParams &params,
                                 const AreaParams &area)
    : _params(params), _area(area)
{
}

double
AccessTimeModel::cacheAccessTime(const CacheGeometry &geom) const
{
    geom.validate();
    const std::uint64_t sets = geom.numSets();
    const unsigned index_bits = floorLog2(sets);
    AreaModel area(_area);
    const unsigned tag_bits = area.cacheTagBits(geom);

    // Row width in bits: all ways of data plus tags side by side.
    const double row_kbits = double(geom.assoc) *
        double(geom.lineBytes * 8 + tag_bits + _area.cacheStatusBits) /
        1024.0;
    const double rows_k = double(sets) / 1024.0;
    const double ways_log =
        geom.assoc > 1 ? double(floorLog2(geom.assoc)) : 0.0;

    return _params.base + _params.decodePerBit * index_bits +
        _params.wordlinePerKbit * row_kbits +
        _params.bitlinePerKrow * rows_k + _params.senseAmp +
        _params.comparePerBit * tag_bits +
        _params.wayMuxPerLog * ways_log;
}

double
AccessTimeModel::tlbAccessTime(const TlbGeometry &geom) const
{
    geom.validate();
    AreaModel area(_area);
    const unsigned tag_bits = area.tlbTagBits(geom);

    if (geom.fullyAssociative()) {
        // CAM search: matchline delay grows with entries; the data
        // read-out behaves like a 1-set SRAM row.
        const double entries_log = double(floorLog2(geom.entries));
        return _params.base + _params.camMatchPerEntryLog * entries_log +
            _params.senseAmp +
            _params.wordlinePerKbit * double(_area.pteBits) / 1024.0;
    }

    const std::uint64_t sets = geom.numSets();
    const unsigned index_bits = floorLog2(sets);
    const double row_kbits = double(geom.assoc) *
        double(tag_bits + _area.tlbStatusBits + _area.pteBits) / 1024.0;
    const double rows_k = double(sets) / 1024.0;
    const double ways_log =
        geom.assoc > 1 ? double(floorLog2(geom.assoc)) : 0.0;

    return _params.base + _params.decodePerBit * index_bits +
        _params.wordlinePerKbit * row_kbits +
        _params.bitlinePerKrow * rows_k + _params.senseAmp +
        _params.comparePerBit * tag_bits +
        _params.wayMuxPerLog * ways_log;
}

} // namespace oma
