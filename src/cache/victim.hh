/**
 * @file
 * Victim cache (Jouppi, ISCA 1990).
 *
 * A small fully-associative buffer that holds the lines most
 * recently evicted from a direct-mapped L1 and swaps them back on a
 * conflict miss. It is the classic alternative to set associativity
 * when access-time constraints force a direct-mapped primary — the
 * situation the paper's Table 7 models by restricting cache
 * associativity — at the cost of a handful of CAM entries rather
 * than a slower array. The extension bench pits a direct-mapped
 * L1 + victim buffer against 2-way caches under the MQF budget.
 */

#ifndef OMA_CACHE_VICTIM_HH
#define OMA_CACHE_VICTIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "area/geometry.hh"
#include "support/fingerprint.hh"

namespace oma
{

/** Full configuration of a victim-cache organization. */
struct VictimParams
{
    /** Direct-mapped L1 geometry (assoc must be 1). */
    CacheGeometry l1;
    /** Lines in the victim buffer (0 disables the buffer). */
    std::uint64_t entries = 4;

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        l1.fingerprint(fp);
        fp.u64("victim.entries", entries);
    }
};

/** Counters of a victim-cache simulation. */
struct VictimStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t victimHits = 0; //!< Conflict misses swapped back.
    std::uint64_t misses = 0;     //!< Went to memory.

    double
    missRatio() const
    {
        return accesses == 0 ? 0.0
                             : double(misses) / double(accesses);
    }

    /** Share of would-be L1 misses the victim buffer absorbed. */
    double
    victimCoverage() const
    {
        const std::uint64_t l1_misses = victimHits + misses;
        return l1_misses == 0 ? 0.0
                              : double(victimHits) / double(l1_misses);
    }
};

/**
 * A direct-mapped L1 backed by a small fully-associative victim
 * buffer with swap-on-hit semantics.
 */
class VictimCache
{
  public:
    /**
     * @param l1 Direct-mapped L1 geometry (assoc must be 1).
     * @param victim_entries Lines in the victim buffer (0 disables).
     */
    VictimCache(const CacheGeometry &l1, std::uint64_t victim_entries);

    explicit VictimCache(const VictimParams &params)
        : VictimCache(params.l1, params.entries)
    {
    }

    /**
     * Simulate one access.
     *
     * @retval 0 L1 hit.
     * @retval 1 victim-buffer hit (swapped back).
     * @retval 2 miss to memory.
     */
    int access(std::uint64_t paddr);

    /**
     * Batched form of access(): simulate @p n physical addresses in
     * order. Funnels through the same access() body, so the counter
     * stream is bitwise-identical to n scalar calls by construction
     * (the replayable-component contract, core/component.hh).
     */
    void
    replayFetchBatch(const std::uint32_t *paddr, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            access(std::uint64_t(paddr[i]));
    }

    const VictimStats &stats() const { return _stats; }
    const CacheGeometry &l1Geometry() const { return _geom; }
    std::uint64_t victimEntries() const { return _victim.size(); }

  private:
    struct VictimLine
    {
        std::uint64_t line = 0; //!< Full line number.
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    CacheGeometry _geom;
    unsigned _lineShift;
    std::uint64_t _setMask;
    std::vector<std::uint64_t> _l1Tags;  //!< Line number per set.
    std::vector<bool> _l1Valid;
    std::vector<VictimLine> _victim;
    std::uint64_t _tick = 0;
    VictimStats _stats;
};

} // namespace oma

#endif // OMA_CACHE_VICTIM_HH
