/**
 * @file
 * Table 1: on-chip memory in early-1990s microprocessors, plus our
 * addition — the MQF area estimate for each design's cache/TLB
 * complement, showing where the 250,000-rbe budget of Section 5.4
 * comes from.
 */

#include <iostream>
#include <optional>
#include <vector>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

struct ProcessorEntry
{
    const char *name;
    int dieMm2; //!< 0 = not published.
    std::optional<CacheGeometry> icache;
    std::optional<CacheGeometry> dcache; //!< Empty when unified.
    bool unified;
    std::optional<TlbGeometry> tlb;
    const char *tlbNote;
};

std::vector<ProcessorEntry>
table1()
{
    auto cache = [](std::uint64_t kb, std::uint64_t words,
                    std::uint64_t ways) {
        return CacheGeometry::fromWords(kb * 1024, words, ways);
    };
    // Line sizes that Table 1 leaves blank are taken as 4 words for
    // the estimate.
    return {
        {"Intel i486DX", 81, cache(8, 4, 4), std::nullopt, true,
         TlbGeometry(32, 4), "32-U 4-way"},
        {"Cyrix 486DX", 148, cache(8, 4, 4), std::nullopt, true,
         TlbGeometry(32, 4), "32-U 4-way"},
        {"Intel Pentium", 296, cache(8, 8, 2), cache(8, 8, 2), false,
         TlbGeometry(128, 4), "32-I 64-D 4-way"},
        {"DEC 21064 (Alpha)", 234, cache(8, 8, 1), cache(8, 8, 1),
         false, TlbGeometry::fullyAssoc(32), "32-I 12-D full"},
        {"Hitachi HARP-1 (PA-RISC)", 264, cache(8, 8, 1),
         cache(16, 8, 1), false, TlbGeometry(256, 1), "128-I 128-D"},
        {"PowerPC 601", 121, cache(32, 16, 8), std::nullopt, true,
         TlbGeometry(256, 2), "256-U 2-way"},
        {"MIPS R4000", 184, cache(8, 8, 1), cache(8, 8, 1), false,
         TlbGeometry::fullyAssoc(64), "96-U full (48x2)"},
        {"MIPS R4200", 81, cache(16, 8, 1), cache(8, 4, 1), false,
         TlbGeometry::fullyAssoc(64), "64-U full (32x2)"},
        {"MIPS R4400", 184, cache(16, 8, 1), cache(16, 8, 1), false,
         TlbGeometry::fullyAssoc(64), "96-U full (48x2)"},
        {"MIPS TFP", 298, cache(16, 8, 1), cache(16, 8, 1), false,
         TlbGeometry(512, 4), "384-U 3-way"},
        {"SuperSPARC (Viking)", 0, cache(16, 16, 4), cache(16, 8, 4),
         false, TlbGeometry::fullyAssoc(64), "64-U full"},
        {"MicroSPARC", 225, cache(4, 8, 1), cache(2, 4, 1), false,
         TlbGeometry::fullyAssoc(32), "32-U full"},
        {"TeraSPARC", 0, cache(4, 8, 1), cache(4, 8, 1), false,
         std::nullopt, "-"},
    };
}

} // namespace

int
main()
{
    omabench::banner("On-chip memory in current-generation "
                     "microprocessors + MQF area estimates",
                     "Table 1");

    omabench::BenchReport report("table1");
    AreaModel model;
    TextTable table({"Processor", "Die (mm^2)", "I-cache", "D-cache",
                     "TLB", "MQF est. (rbe)"});
    for (const auto &p : table1()) {
        double rbe = 0.0;
        std::string icache = "-", dcache = "-", tlb = "-";
        if (p.icache) {
            rbe += model.cacheArea(*p.icache);
            icache = p.icache->describe();
        }
        if (p.unified) {
            dcache = "(unified)";
        } else if (p.dcache) {
            rbe += model.cacheArea(*p.dcache);
            dcache = p.dcache->describe();
        }
        if (p.tlb) {
            rbe += model.tlbArea(*p.tlb);
            tlb = p.tlbNote;
        }
        report.metrics().add("area/processors");
        report.metrics().observe("area/processor_rbe",
                                 std::uint64_t(rbe));
        table.addRow({p.name,
                      p.dieMm2 ? std::to_string(p.dieMm2) : "-",
                      icache, dcache, tlb,
                      fmtGrouped(std::uint64_t(rbe))});
    }
    table.print(std::cout);

    std::cout << "\nThe estimates cluster below ~250,000 rbe, the "
                 "total on-chip memory budget the paper adopts for "
                 "its cost/benefit search (Section 5.4).\n";
    return 0;
}
