/**
 * @file
 * The design-space allocator: the paper's primary contribution.
 *
 * Enumerates the configuration grid of Table 5 (TLBs of 64-512
 * entries at 1/2/4/8-way or fully associative; caches of 2-32 KB with
 * 1-32-word lines at 1/2/4/8-way), costs each combination with the
 * MQF area model, discards combinations over the die budget (250,000
 * rbe), scores the rest with independently measured per-component CPI
 * contributions, and ranks by total CPI — regenerating Tables 6
 * and 7.
 */

#ifndef OMA_CORE_SEARCH_HH
#define OMA_CORE_SEARCH_HH

#include <cstdint>
#include <vector>

#include "area/mqf.hh"
#include "core/sweep.hh"

namespace oma
{

/** The configuration grid of Table 5. */
struct ConfigSpace
{
    std::vector<std::uint64_t> tlbEntries = {64, 128, 256, 512};
    std::vector<std::uint64_t> tlbWays = {1, 2, 4, 8};
    /** Fully-associative TLBs considered up to this many entries. */
    std::uint64_t tlbFullAssocMax = 64;

    std::vector<std::uint64_t> cacheKBytes = {2, 4, 8, 16, 32};
    std::vector<std::uint64_t> lineWords = {1, 2, 4, 8, 16, 32};
    std::vector<std::uint64_t> cacheWays = {1, 2, 4, 8};

    /** All TLB geometries in the grid. */
    [[nodiscard]] std::vector<TlbGeometry> tlbGeometries() const;

    /**
     * All realizable cache geometries with associativity at most
     * @p max_ways (Table 7 restricts to 2).
     */
    [[nodiscard]] std::vector<CacheGeometry>
    cacheGeometries(std::uint64_t max_ways = 8) const;
};

/** One ranked allocation of the on-chip memory budget. */
struct Allocation
{
    TlbGeometry tlb;
    CacheGeometry icache;
    CacheGeometry dcache;
    double areaRbe = 0.0;
    double cpi = 0.0;
    double tlbCpi = 0.0;
    double icacheCpi = 0.0;
    double dcacheCpi = 0.0;
    /** 1-based rank in the unrestricted ordering. */
    std::size_t rank = 0;
};

/**
 * Exhaustive cost/benefit search over the configuration space.
 */
class AllocationSearch
{
  public:
    AllocationSearch(const AreaModel &area, double budget_rbe);

    /**
     * Rank every in-budget combination of the measured components.
     *
     * @param tables Suite-averaged per-component CPI contributions.
     * @param max_cache_ways Associativity restriction (8 = Table 6,
     *        2 = Table 7).
     * @param threads Execution lanes for the scoring loop; 0 = one
     *        per hardware thread, 1 = serial. The enumeration is
     *        sharded by TLB geometry and stitched back in TLB order,
     *        so the ranking (ties included) is bitwise identical for
     *        every thread count.
     * @param observation Optional metrics/progress sink (candidate
     *        and in-budget counts, phase timing); attaching one never
     *        changes the ranking.
     * @return all in-budget allocations, best (lowest CPI) first.
     */
    [[nodiscard]] std::vector<Allocation>
    rank(const ComponentCpiTables &tables,
         std::uint64_t max_cache_ways = 8, unsigned threads = 0,
         obs::Observation *observation = nullptr) const;

    [[nodiscard]] double budget() const { return _budget; }
    [[nodiscard]] const AreaModel &areaModel() const { return _area; }

  private:
    AreaModel _area;
    double _budget;
};

} // namespace oma

#endif // OMA_CORE_SEARCH_HH
