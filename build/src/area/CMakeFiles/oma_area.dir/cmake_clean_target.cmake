file(REMOVE_RECURSE
  "liboma_area.a"
)
