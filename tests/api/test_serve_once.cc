/**
 * @file
 * End-to-end oma_serve --once tests: the daemon binary itself,
 * driven over its stdin/stdout wire exactly as a client would.
 *
 * Pins the PR's headline property: a Table-style allocation query
 * answered cold, answered store-warm, answered as a concurrent
 * duplicate, and answered at a different thread count all yield
 * bitwise-identical response lines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/request.hh"

namespace oma::api
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test scratch directory. */
std::string
scratchDir(const std::string &name)
{
    const std::string root = testing::TempDir() + "/oma_serve_" +
        name + "." + std::to_string(::getpid());
    fs::remove_all(root);
    fs::create_directories(root);
    return root;
}

/** Run `oma_serve --once --store-dir store_dir` with @p input on
 * stdin; returns the stdout lines. */
std::vector<std::string>
serveOnce(const std::string &store_dir, const std::string &input)
{
    const std::string dir = scratchDir("io");
    const std::string in_path = dir + "/request.ndjson";
    {
        std::ofstream in(in_path, std::ios::binary);
        in << input;
    }
    // Reports are noise here; the daemon's own counters are covered
    // through QueryEngine tests and the CI smoke job.
    const std::string command = "OMA_RUN_REPORT=0 '" OMA_SERVE_BIN
        "' --once --store-dir '" + store_dir + "' < '" + in_path +
        "' 2>/dev/null";
    FILE *pipe = ::popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    char buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        output.append(buffer, got);
    const int status = ::pclose(pipe);
    EXPECT_EQ(status, 0) << output;
    fs::remove_all(dir);

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < output.size()) {
        const std::size_t end = output.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(output.substr(start));
            break;
        }
        lines.push_back(output.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

/** A small but real allocation query (a scaled-down Table 6: full
 * budget, exhaustive ranking, one workload). */
AllocationRequest
table6Query()
{
    AllocationRequest request;
    request.workloads = {BenchmarkId::Mpeg};
    request.references = 20000;
    request.space.tlbEntries = {64};
    request.space.tlbWays = {1};
    request.space.tlbFullAssocMax = 64;
    request.space.cacheKBytes = {2, 4};
    request.space.lineWords = {4};
    request.space.cacheWays = {1, 2};
    request.topK = 3;
    request.threads = 1;
    return request;
}

TEST(ServeOnce, ColdWarmAndDuplicateAnswersAreBitwiseIdentical)
{
    const std::string store = scratchDir("store");
    const std::string line = encodeRequest(table6Query());

    // Cold: compute through the simulators.
    const std::vector<std::string> cold = serveOnce(store, line + "\n");
    ASSERT_EQ(cold.size(), 1u);
    AllocationResponse response;
    std::string error;
    ASSERT_TRUE(decodeResponse(cold.front(), response, error))
        << error;
    EXPECT_FALSE(response.allocations.empty());
    EXPECT_GT(response.inBudget, 0u);

    // Warm: a fresh daemon process over the same store.
    const std::vector<std::string> warm = serveOnce(store, line + "\n");
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_EQ(warm.front(), cold.front());

    // Duplicates in one batch: one computation fanned out — and the
    // same bytes again, through yet another store (fresh cold path).
    const std::string fresh = scratchDir("store2");
    const std::vector<std::string> batch =
        serveOnce(fresh, line + "\n" + line + "\n" + line + "\n");
    ASSERT_EQ(batch.size(), 3u);
    for (const std::string &answer : batch)
        EXPECT_EQ(answer, cold.front());

    fs::remove_all(store);
    fs::remove_all(fresh);
}

TEST(ServeOnce, ThreadCountIsInvisibleInTheAnswer)
{
    const std::string store = scratchDir("threads");
    AllocationRequest request = table6Query();
    request.threads = 1;
    const std::string serial = encodeRequest(request);
    request.threads = 4;
    const std::string parallel = encodeRequest(request);
    ASSERT_NE(serial, parallel); // the wire lines differ...

    const std::vector<std::string> one = serveOnce(store, serial + "\n");
    // Separate store: force the 4-thread run through the cold path
    // rather than a warm hit keyed by the (threads-blind) fingerprint.
    const std::string other = scratchDir("threads4");
    const std::vector<std::string> four =
        serveOnce(other, parallel + "\n");
    ASSERT_EQ(one.size(), 1u);
    ASSERT_EQ(four.size(), 1u);
    EXPECT_EQ(one.front(), four.front()); // ...the answers do not
    fs::remove_all(store);
    fs::remove_all(other);
}

TEST(ServeOnce, MalformedLinesEarnErrorsInOrder)
{
    const std::string store = scratchDir("errors");
    const std::string good = encodeRequest(table6Query());
    const std::vector<std::string> lines = serveOnce(
        store, "this is not json\n" + good + "\n{\"schema\":\"x\"}\n");
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("oma-error-v1"), std::string::npos);
    AllocationResponse response;
    std::string error;
    EXPECT_TRUE(decodeResponse(lines[1], response, error)) << error;
    EXPECT_NE(lines[2].find("oma-error-v1"), std::string::npos);
    fs::remove_all(store);
}

TEST(ServeOnce, ControlLinesAreAcknowledged)
{
    const std::string store = scratchDir("control");
    const std::string control =
        "{\"schema\":\"oma-control-v1\",\"cmd\":\"shutdown\"}";
    const std::vector<std::string> lines =
        serveOnce(store, control + "\n");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("oma-control-v1"), std::string::npos);
    EXPECT_NE(lines[0].find("true"), std::string::npos);
    fs::remove_all(store);
}

} // namespace
} // namespace oma::api
