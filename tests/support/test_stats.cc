/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/stats.hh"

namespace oma
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.stderrOfMean(), 0.0);
}

TEST(RunningStat, EmptyExtremaAreSignedInfinities)
{
    // The documented sentinels: +inf min and -inf max, so that any
    // first observation replaces both.
    RunningStat s;
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_GT(s.min(), 0.0);
    EXPECT_TRUE(std::isinf(s.max()));
    EXPECT_LT(s.max(), 0.0);
    s.add(-1.0e300);
    EXPECT_DOUBLE_EQ(s.min(), -1.0e300);
    EXPECT_DOUBLE_EQ(s.max(), -1.0e300);
}

TEST(RunningStat, SingleSampleHasNoSpread)
{
    // n = 1: the unbiased variance (n - 1 denominator) must come
    // back 0, not NaN, and so must everything derived from it.
    RunningStat s;
    s.add(-7.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.stderrOfMean(), 0.0);
    EXPECT_FALSE(std::isnan(s.variance()));
}

TEST(RunningStat, MatchesDirectComputation)
{
    const std::vector<double> xs = {1.5, 2.0, -3.0, 7.25, 0.0, 4.5};
    RunningStat s;
    for (double x : xs)
        s.add(x);

    double mean = 0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= (xs.size() - 1);

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningStat, SingleObservation)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, ConstantSequenceHasZeroVariance)
{
    RunningStat s;
    for (int i = 0; i < 100; ++i)
        s.add(3.25);
    EXPECT_DOUBLE_EQ(s.mean(), 3.25);
    EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

TEST(Ratio, Basics)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    r.record(true);
    r.record(false);
    r.record(false);
    r.record(true);
    EXPECT_EQ(r.events, 2u);
    EXPECT_EQ(r.total, 4u);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

TEST(Ratio, ZeroTotalYieldsZeroNotNan)
{
    // total == 0 must short-circuit to 0.0 — a 0/0 would poison any
    // average the ratio feeds. Holds even with events set directly
    // (aggregate-struct initialization allows inconsistent states).
    Ratio r;
    EXPECT_EQ(r.total, 0u);
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    EXPECT_FALSE(std::isnan(r.value()));
    r.events = 3;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(Ratio, AllEventsIsExactlyOne)
{
    Ratio r;
    for (int i = 0; i < 10; ++i)
        r.record(true);
    EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

} // namespace
} // namespace oma
