/**
 * @file
 * A compact, replayable recording of a reference stream.
 *
 * The paper's methodology is trace-centric: Monster captured one
 * reference stream and every analysis (cache sweeps, Tapeworm TLB
 * measurement, stall attribution) consumed that same stream.
 * RecordedTrace is the in-memory equivalent — one recording, many
 * consumers:
 *
 * * *Packed columnar storage.* References are stored column-wise in
 *   fixed-size chunks: 32-bit virtual and physical addresses, an
 *   8-bit ASID and an 8-bit kind/mode/mapped flag byte — 10 bytes per
 *   reference instead of sizeof(MemRef). A consumer that only needs
 *   physical addresses (a cache replay) touches only the paddr and
 *   flag columns, which is what makes replay cache-friendly. The
 *   32-bit fields are exact, not lossy: the modelled machine is an
 *   R2000 (32-bit virtual addresses, 30-bit pseudo-physical frames,
 *   6-bit ASIDs); append() fails fatally on anything wider.
 *
 * * *Inline invalidation events.* OS page invalidations are pinned to
 *   their trace position (the index of the reference they precede)
 *   and replayed at exactly that point, replacing the live
 *   setInvalidateHook side channel for record-then-replay engines.
 *
 * * *Typed replay views.* replay() walks the full stream (with or
 *   without events); replayFetchPaddrs() yields instruction-fetch
 *   physical addresses only; replayCachedData() yields data accesses
 *   surviving the kseg1 (uncached) filter. One recording therefore
 *   replaces the three redundant per-consumer vectors the sweep
 *   engine used to materialize.
 */

#ifndef OMA_TRACE_RECORDED_HH
#define OMA_TRACE_RECORDED_HH

#include <cstdint>
#include <vector>

#include "tlb/mips_va.hh"
#include "trace/memref.hh"

namespace oma
{

/**
 * A page invalidation pinned to its position in the stream: it takes
 * effect immediately before the reference with number @c index is
 * replayed (the position the OS fired it at while generating that
 * reference).
 */
struct TraceEvent
{
    std::uint64_t index;
    std::uint64_t vpn;
    std::uint32_t asid;
    bool global;
};

/**
 * A borrowed, read-only view of one storage chunk's packed columns.
 * The pointers alias the trace's own column vectors and stay valid
 * until the trace is mutated or destroyed. This is the input format
 * of the batched replay kernels (cache/replay.hh, tlb/replay.hh) and
 * of the v3 chunk codec (trace/codec.hh): consumers stream whole
 * columns instead of decoding one MemRef per reference.
 */
struct TraceChunkView
{
    const std::uint32_t *vaddr;
    const std::uint32_t *paddr;
    const std::uint8_t *asid;
    const std::uint8_t *flags;
    /** References in this chunk (chunkRefs except for the tail). */
    std::size_t size;
    /** Trace-wide index of the chunk's first reference. */
    std::uint64_t baseIndex;
};

/** A compact recorded reference stream with inline events. */
class RecordedTrace
{
  public:
    /** References per storage chunk. */
    static constexpr std::size_t chunkRefs = 1 << 16;

    // ----- recording -----

    /** Append one reference (fatal if it does not fit the packed
     * 32-bit encoding — impossible for model-generated streams). */
    void
    append(const MemRef &ref)
    {
        checkEncodable(ref);
        if (_chunks.empty() || _chunks.back().size() >= chunkRefs)
            newChunk();
        Chunk &c = _chunks.back();
        c.vaddr.push_back(std::uint32_t(ref.vaddr));
        c.paddr.push_back(std::uint32_t(ref.paddr));
        c.asid.push_back(std::uint8_t(ref.asid));
        c.flags.push_back(packFlags(ref));
        ++_size;
    }

    /** Record a page invalidation at the current position (it will
     * replay immediately before the next appended reference). */
    void
    recordInvalidation(std::uint64_t vpn, std::uint32_t asid,
                       bool global)
    {
        _events.push_back({_size, vpn, asid, global});
    }

    /** Attach the stream's configuration-independent non-memory
     * stall rate (System::otherCpiSoFar at the end of recording). */
    void setOtherCpi(double cpi) { _otherCpi = cpi; }

    // ----- inspection -----

    [[nodiscard]] std::uint64_t size() const { return _size; }
    [[nodiscard]] bool empty() const { return _size == 0; }
    [[nodiscard]] const std::vector<TraceEvent> &events() const
    {
        return _events;
    }
    [[nodiscard]] double otherCpi() const { return _otherCpi; }

    /** Decode the reference at index @p i (exact round trip; fatal
     * when @p i is out of range). */
    [[nodiscard]] MemRef at(std::uint64_t i) const;

    /** Number of storage chunks (0 for an empty trace). */
    [[nodiscard]] std::size_t numChunks() const
    {
        return _chunks.size();
    }

    /** Borrow the packed columns of chunk @p c (fatal when @p c is
     * out of range). */
    [[nodiscard]] TraceChunkView chunkView(std::size_t c) const;

    /** Packed bytes held by the recording (columns + events); the
     * number the bytes-per-reference bench counters report. */
    [[nodiscard]] std::uint64_t
    byteSize() const
    {
        std::uint64_t bytes = _events.size() * sizeof(TraceEvent);
        for (const Chunk &c : _chunks)
            bytes += c.size() * packedRefBytes;
        return bytes;
    }

    /** Packed storage cost of one reference (columns only). */
    static constexpr std::uint64_t packedRefBytes = 4 + 4 + 1 + 1;

    // ----- replay views -----

    /** Full-stream replay without events: fn(const MemRef &). */
    template <typename RefFn>
    void
    replay(RefFn &&fn) const
    {
        for (const Chunk &c : _chunks)
            for (std::size_t i = 0; i < c.size(); ++i)
                fn(decode(c, i));
    }

    /**
     * Full-stream replay with inline events: every event fires
     * through @p onEvent immediately before @p onRef sees the
     * reference it is pinned to — the order the live hook produced.
     */
    template <typename RefFn, typename EvFn>
    void
    replay(RefFn &&onRef, EvFn &&onEvent) const
    {
        std::size_t e = 0;
        std::uint64_t index = 0;
        for (const Chunk &c : _chunks) {
            for (std::size_t i = 0; i < c.size(); ++i, ++index) {
                while (e < _events.size() && _events[e].index == index)
                    onEvent(_events[e++]);
                onRef(decode(c, i));
            }
        }
    }

    /** Instruction-fetch view: fn(std::uint64_t paddr) per fetch. */
    template <typename Fn>
    void
    replayFetchPaddrs(Fn &&fn) const
    {
        for (const Chunk &c : _chunks) {
            for (std::size_t i = 0; i < c.size(); ++i) {
                if (RefKind(c.flags[i] & kindMask) == RefKind::IFetch)
                    fn(std::uint64_t(c.paddr[i]));
            }
        }
    }

    /** Cached-data view: fn(std::uint64_t paddr, RefKind kind) per
     * data access surviving the kseg1 (uncached) filter. */
    template <typename Fn>
    void
    replayCachedData(Fn &&fn) const
    {
        for (const Chunk &c : _chunks) {
            for (std::size_t i = 0; i < c.size(); ++i) {
                const RefKind kind = RefKind(c.flags[i] & kindMask);
                if (kind != RefKind::IFetch &&
                    !isUncached(std::uint64_t(c.vaddr[i]))) {
                    fn(std::uint64_t(c.paddr[i]), kind);
                }
            }
        }
    }

    // ----- packed encoding (shared with the v2 trace-file format) -----

    // Flag byte: kind in bits 0-1, mode in bit 2, mapped in bit 3.
    static constexpr std::uint8_t kindMask = 0x3;
    static constexpr std::uint8_t modeBit = 0x4;
    static constexpr std::uint8_t mappedBit = 0x8;

    static std::uint8_t
    packFlags(const MemRef &ref)
    {
        return std::uint8_t(std::uint8_t(ref.kind) |
                            (ref.mode == Mode::Kernel ? modeBit : 0) |
                            (ref.mapped ? mappedBit : 0));
    }

    static void
    unpackFlags(std::uint8_t flags, MemRef &ref)
    {
        ref.kind = RefKind(flags & kindMask);
        ref.mode = (flags & modeBit) ? Mode::Kernel : Mode::User;
        ref.mapped = (flags & mappedBit) != 0;
    }

    /** Fatal unless @p ref fits the packed encoding. */
    static void checkEncodable(const MemRef &ref);

  private:
    struct Chunk
    {
        std::vector<std::uint32_t> vaddr;
        std::vector<std::uint32_t> paddr;
        std::vector<std::uint8_t> asid;
        std::vector<std::uint8_t> flags;

        std::size_t size() const { return vaddr.size(); }
    };

    static MemRef
    decode(const Chunk &c, std::size_t i)
    {
        MemRef ref;
        ref.vaddr = c.vaddr[i];
        ref.paddr = c.paddr[i];
        ref.asid = c.asid[i];
        unpackFlags(c.flags[i], ref);
        return ref;
    }

    void newChunk();

    std::vector<Chunk> _chunks;
    std::vector<TraceEvent> _events;
    std::uint64_t _size = 0;
    double _otherCpi = 0.0;
};

} // namespace oma

#endif // OMA_TRACE_RECORDED_HH
