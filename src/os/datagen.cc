/**
 * @file
 * Implementation of the data-reference generator.
 */

#include "os/datagen.hh"

#include <algorithm>

#include "support/bits.hh"
#include "tlb/mips_va.hh"

namespace oma
{

DataGen::DataGen(const DataBehavior &behavior, std::uint64_t seed)
    : _behavior(behavior), _rng(seed)
{
}

bool
DataGen::refForInstr(bool &is_store)
{
    if (_burstLeft > 0) {
        --_burstLeft;
        is_store = true;
        return true;
    }
    const double burst = std::max(1.0, _behavior.storeBurstMean);
    const double u = _rng.uniform();
    if (u < _behavior.loadPerInstr) {
        is_store = false;
        return true;
    }
    if (u < _behavior.loadPerInstr + _behavior.storePerInstr / burst) {
        is_store = true;
        if (burst > 1.0)
            _burstLeft = _rng.geometric(1.0 / burst) - 1;
        return true;
    }
    return false;
}

std::uint64_t
DataGen::nextAddr(bool is_store)
{
    if (is_store && _burstLeft > 0) {
        // Continue the current store burst sequentially.
        _burstAddr += 4;
        return _burstAddr;
    }
    const double stream_frac = is_store ? _behavior.streamFracStore
                                        : _behavior.streamFracLoad;
    const double u = _rng.uniform();
    if (u < stream_frac && _behavior.streamBytes > 0) {
        const std::uint64_t addr = _behavior.streamBase + _streamPos;
        _streamPos += _behavior.streamStride;
        if (_streamPos >= _behavior.streamBytes)
            _streamPos = 0;
        _burstAddr = alignDown(addr, 4);
        return _burstAddr;
    }
    if (u < stream_frac + _behavior.ws2Frac &&
        _behavior.ws2Bytes >= 4096) {
        const std::uint64_t words = _behavior.ws2Bytes / 4;
        const std::uint64_t w = _rng.zipf(words, _behavior.ws2Skew);
        constexpr std::uint64_t words_per_page = 1024;
        const std::uint64_t pages = (words + words_per_page - 1) /
            words_per_page;
        const std::uint64_t shuffled_page =
            mix64((w / words_per_page) * 0x2545f4914f6cdd1dULL) % pages;
        return _behavior.ws2Base +
            (shuffled_page * words_per_page + (w % words_per_page)) * 4;
    }
    if (u < stream_frac + _behavior.ws2Frac +
        _behavior.stackFrac) {
        // Stack references concentrate near the top of the stack
        // (the active frames); the deep tail is rare.
        const std::uint64_t words = _behavior.stackBytes / 4;
        const std::uint64_t w = _rng.zipf(words, 1.5);
        return _behavior.stackBase + w * 4;
    }
    const std::uint64_t words = _behavior.wsBytes / 4;
    const std::uint64_t w = _rng.zipf(words, _behavior.wsSkew);
    // Lay Zipf ranks out in 1-KB chunks dealt round-robin across the
    // region's pages: hot data keeps line/chunk locality (good for
    // caches) while the hot set spans many pages (realistic TLB
    // pressure — real heaps spread hot objects across pages).
    constexpr std::uint64_t words_per_chunk = 256;
    constexpr std::uint64_t words_per_page = 1024;
    const std::uint64_t pages =
        std::max<std::uint64_t>(1, words / words_per_page);
    const std::uint64_t chunk = w / words_per_chunk;
    const std::uint64_t page = chunk % pages;
    const std::uint64_t slot =
        (chunk / pages) % (words_per_page / words_per_chunk);
    _burstAddr = _behavior.wsBase + page * pageBytes +
        slot * words_per_chunk * 4 + (w % words_per_chunk) * 4;
    return _burstAddr;
}

} // namespace oma
