
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/mmu.cc" "src/tlb/CMakeFiles/oma_tlb.dir/mmu.cc.o" "gcc" "src/tlb/CMakeFiles/oma_tlb.dir/mmu.cc.o.d"
  "/root/repo/src/tlb/tapeworm.cc" "src/tlb/CMakeFiles/oma_tlb.dir/tapeworm.cc.o" "gcc" "src/tlb/CMakeFiles/oma_tlb.dir/tapeworm.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/tlb/CMakeFiles/oma_tlb.dir/tlb.cc.o" "gcc" "src/tlb/CMakeFiles/oma_tlb.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/oma_support.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/oma_area.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/oma_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oma_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
