/**
 * @file
 * Serial-equivalence property tests for the parallel sweep/search
 * engine: for any thread count, ComponentSweep and AllocationSearch
 * must produce results bitwise identical to the serial path — same
 * counters, same CPI doubles, same ranking order, same tie-breaks.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/search.hh"
#include "core/sweep.hh"
#include "support/rng.hh"

namespace oma
{
namespace
{

void
expectSameCacheStats(const CacheStats &a, const CacheStats &b,
                     const char *what, std::size_t i)
{
    for (unsigned k = 0; k < numRefKinds; ++k) {
        ASSERT_EQ(a.accesses[k], b.accesses[k]) << what << " " << i;
        ASSERT_EQ(a.misses[k], b.misses[k]) << what << " " << i;
    }
    ASSERT_EQ(a.lineFills, b.lineFills) << what << " " << i;
    ASSERT_EQ(a.writebacks, b.writebacks) << what << " " << i;
    ASSERT_EQ(a.writeThroughWords, b.writeThroughWords) << what << " " << i;
    ASSERT_EQ(a.compulsoryMisses, b.compulsoryMisses) << what << " " << i;
}

void
expectSameMmuStats(const MmuStats &a, const MmuStats &b, std::size_t i)
{
    ASSERT_EQ(a.translations, b.translations) << "tlb " << i;
    for (unsigned c = 0; c < numMissClasses; ++c) {
        ASSERT_EQ(a.counts[c], b.counts[c]) << "tlb " << i;
        ASSERT_EQ(a.cycles[c], b.cycles[c]) << "tlb " << i;
    }
    ASSERT_EQ(a.asidFlushes, b.asidFlushes) << "tlb " << i;
}

/** Bitwise double equality (== would conflate -0.0 and 0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameSweepResult(const SweepResult &serial, const SweepResult &par)
{
    ASSERT_EQ(serial.instructions, par.instructions);
    ASSERT_EQ(serial.references, par.references);
    ASSERT_EQ(serial.icacheCount(), par.icacheCount());
    ASSERT_EQ(serial.dcacheCount(), par.dcacheCount());
    ASSERT_EQ(serial.tlbCount(), par.tlbCount());
    for (std::size_t i = 0; i < serial.icacheCount(); ++i)
        expectSameCacheStats(serial.icache(i).stats,
                             par.icache(i).stats, "icache", i);
    for (std::size_t i = 0; i < serial.dcacheCount(); ++i)
        expectSameCacheStats(serial.dcache(i).stats,
                             par.dcache(i).stats, "dcache", i);
    for (std::size_t i = 0; i < serial.tlbCount(); ++i)
        expectSameMmuStats(serial.tlb(i).stats, par.tlb(i).stats, i);
    EXPECT_TRUE(sameBits(serial.wbCpi, par.wbCpi));
    EXPECT_TRUE(sameBits(serial.otherCpi, par.otherCpi));

    // The derived CPI contributions are computed from the counters,
    // so identical counters imply identical doubles; spot-check.
    const MachineParams mp = MachineParams::decstation3100();
    for (std::size_t i = 0; i < serial.icacheCount(); ++i)
        EXPECT_TRUE(sameBits(serial.icache(i).cpi(mp),
                             par.icache(i).cpi(mp)));
    for (std::size_t i = 0; i < serial.tlbCount(); ++i)
        EXPECT_TRUE(sameBits(serial.tlb(i).cpi(), par.tlb(i).cpi()));
}

std::vector<CacheGeometry>
cacheSubset()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : {2, 8})
        for (std::uint64_t words : {1, 4})
            geoms.push_back(CacheGeometry::fromWords(kb * 1024, words, 1));
    geoms.push_back(CacheGeometry::fromWords(16 * 1024, 4, 2));
    return geoms;
}

std::vector<TlbGeometry>
tlbSubset()
{
    return {TlbGeometry::fullyAssoc(32), TlbGeometry::fullyAssoc(64),
            TlbGeometry(128, 2), TlbGeometry(256, 4)};
}

SweepResult
sweepWith(unsigned threads, BenchmarkId id, OsKind os,
          std::uint64_t seed, std::uint64_t refs)
{
    ComponentSweep sweep(cacheSubset(), cacheSubset(), tlbSubset());
    RunConfig rc;
    rc.references = refs;
    rc.seed = seed;
    rc.threads = threads;
    return sweep.run(id, os, rc);
}

TEST(ParallelSweep, MatchesSerialAcrossThreadCounts)
{
    const SweepResult serial =
        sweepWith(1, BenchmarkId::Mpeg, OsKind::Mach, 42, 120000);
    for (unsigned threads : {2u, 4u, 8u}) {
        SCOPED_TRACE(threads);
        const SweepResult par =
            sweepWith(threads, BenchmarkId::Mpeg, OsKind::Mach, 42,
                      120000);
        expectSameSweepResult(serial, par);
    }
}

TEST(ParallelSweep, MatchesSerialAcrossRandomizedWorkloads)
{
    // Randomized workload/OS/seed draws; every draw must agree with
    // its serial twin. VM-activity-heavy runs exercise the recorded
    // invalidation-event replay ordering.
    Rng rng(0xd1fful);
    const BenchmarkId ids[] = {BenchmarkId::Mpeg, BenchmarkId::Mab,
                               BenchmarkId::IOzone};
    for (int draw = 0; draw < 3; ++draw) {
        const BenchmarkId id = ids[rng.below(3)];
        const OsKind os =
            rng.chance(0.5) ? OsKind::Mach : OsKind::Ultrix;
        const std::uint64_t seed = rng.next();
        const unsigned threads = 2 + unsigned(rng.below(7));
        SCOPED_TRACE(testing::Message()
                     << "draw " << draw << " threads " << threads
                     << " seed " << seed);
        const SweepResult serial = sweepWith(1, id, os, seed, 80000);
        const SweepResult par = sweepWith(threads, id, os, seed, 80000);
        expectSameSweepResult(serial, par);
    }
}

void
expectSameRanking(const std::vector<Allocation> &serial,
                  const std::vector<Allocation> &par)
{
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(i);
        // Geometry identity pins the tie-break order, not just CPI.
        ASSERT_TRUE(serial[i].tlb == par[i].tlb);
        ASSERT_TRUE(serial[i].icache == par[i].icache);
        ASSERT_TRUE(serial[i].dcache == par[i].dcache);
        ASSERT_EQ(serial[i].rank, par[i].rank);
        ASSERT_TRUE(sameBits(serial[i].cpi, par[i].cpi));
        ASSERT_TRUE(sameBits(serial[i].areaRbe, par[i].areaRbe));
        ASSERT_TRUE(sameBits(serial[i].tlbCpi, par[i].tlbCpi));
        ASSERT_TRUE(sameBits(serial[i].icacheCpi, par[i].icacheCpi));
        ASSERT_TRUE(sameBits(serial[i].dcacheCpi, par[i].dcacheCpi));
    }
}

/** Synthetic component tables over the full Table 5 grid; CPI values
 * engineered to contain exact ties so tie-break order is exercised. */
ComponentCpiTables
syntheticGridTables()
{
    ConfigSpace space;
    ComponentCpiTables tables;
    tables.tlbGeoms = space.tlbGeometries();
    tables.icacheGeoms = space.cacheGeometries();
    tables.dcacheGeoms = space.cacheGeometries();
    tables.tlbCpi.resize(tables.tlbGeoms.size());
    for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
        tables.tlbCpi[i] = 0.01 * double(i % 5); // deliberate ties
    tables.icacheCpi.resize(tables.icacheGeoms.size());
    for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
        tables.icacheCpi[i] = 0.02 * double(i % 7);
    tables.dcacheCpi.resize(tables.dcacheGeoms.size());
    for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
        tables.dcacheCpi[i] = 0.015 * double(i % 6);
    return tables;
}

TEST(ParallelSearch, RankMatchesSerialOnTable5Grid)
{
    const AllocationSearch search(AreaModel(), 250000.0);
    const ComponentCpiTables tables = syntheticGridTables();
    for (std::uint64_t max_ways : {8u, 2u}) {
        const auto serial = search.rank(tables, max_ways, 1);
        ASSERT_FALSE(serial.empty());
        for (unsigned threads : {2u, 4u, 8u}) {
            SCOPED_TRACE(testing::Message() << "ways " << max_ways
                                            << " threads " << threads);
            const auto par = search.rank(tables, max_ways, threads);
            expectSameRanking(serial, par);
        }
    }
}

TEST(ParallelSearch, RankMatchesSerialOnMeasuredTables)
{
    // End-to-end: measured sweep -> averaged tables -> ranked grid,
    // comparing the fully serial pipeline against the fully parallel
    // one on a grid subset.
    const MachineParams mp = MachineParams::decstation3100();
    std::vector<SweepResult> serial_runs, par_runs;
    serial_runs.push_back(
        sweepWith(1, BenchmarkId::Mpeg, OsKind::Mach, 7, 60000));
    serial_runs.push_back(
        sweepWith(1, BenchmarkId::Mab, OsKind::Mach, 7, 60000));
    par_runs.push_back(
        sweepWith(4, BenchmarkId::Mpeg, OsKind::Mach, 7, 60000));
    par_runs.push_back(
        sweepWith(4, BenchmarkId::Mab, OsKind::Mach, 7, 60000));

    const auto serial_tables =
        ComponentCpiTables::average(serial_runs, mp);
    const auto par_tables = ComponentCpiTables::average(par_runs, mp);

    const AllocationSearch search(AreaModel(), 250000.0);
    const auto serial = search.rank(serial_tables, 8, 1);
    const auto par = search.rank(par_tables, 8, 4);
    ASSERT_FALSE(serial.empty());
    expectSameRanking(serial, par);
}

} // namespace
} // namespace oma
