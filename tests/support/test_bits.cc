/**
 * @file
 * Unit tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "support/bits.hh"

namespace oma
{
namespace
{

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2((1ULL << 50) + 17), 50u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(0), 0u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1ULL << 20), 20u);
}

TEST(Bits, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignDown(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(7, 4), 4u);
    EXPECT_EQ(alignUp(7, 4), 8u);
}

TEST(Bits, BitField)
{
    EXPECT_EQ(bitField(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bitField(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bitField(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bitField(~0ULL, 0, 64), ~0ULL);
    EXPECT_EQ(bitField(0xff, 4, 0), 0u);
}

class Log2Roundtrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Log2Roundtrip, PowerOfTwoIsItsOwnLog)
{
    const unsigned bit = GetParam();
    const std::uint64_t value = 1ULL << bit;
    EXPECT_EQ(floorLog2(value), bit);
    EXPECT_EQ(ceilLog2(value), bit);
    EXPECT_TRUE(isPowerOfTwo(value));
}

INSTANTIATE_TEST_SUITE_P(AllBits, Log2Roundtrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 12u, 20u,
                                           31u, 32u, 47u, 63u));

} // namespace
} // namespace oma
