/**
 * @file
 * Integration tests across the whole stack: measured sweeps feeding
 * the allocation search, trace sampling validation, and trace-file
 * replay fidelity.
 */

#include <gtest/gtest.h>

#include "core/search.hh"
#include "trace/sampler.hh"
#include "trace/tracefile.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

TEST(EndToEnd, MeasuredSearchPicksLargeTlbUnderMach)
{
    // Miniature version of the Table 6 pipeline: sweep a reduced
    // grid on one workload under Mach and rank under the budget. The
    // paper's qualitative conclusions must hold: the best
    // configurations use large set-associative TLBs, and the I-cache
    // gets at least as much capacity as the D-cache.
    ConfigSpace space;
    space.cacheKBytes = {4, 8, 16, 32};
    space.lineWords = {4, 8, 16};
    space.cacheWays = {1, 2};
    space.tlbEntries = {64, 512};

    const auto caches = space.cacheGeometries(2);
    ComponentSweep sweep(caches, caches, space.tlbGeometries());
    RunConfig rc;
    rc.references = 600000;
    std::vector<SweepResult> results;
    // mpeg_play and mab: the display and compile workloads whose
    // Mach profiles are I-cache heavy (Table 4).
    results.push_back(sweep.run(BenchmarkId::Mpeg, OsKind::Mach, rc));
    results.push_back(sweep.run(BenchmarkId::Mab, OsKind::Mach, rc));

    const MachineParams mp = MachineParams::decstation3100();
    const ComponentCpiTables tables =
        ComponentCpiTables::average(results, mp);

    AllocationSearch search(AreaModel(), 250000.0);
    const auto ranked = search.rank(tables, 2);
    ASSERT_GT(ranked.size(), 100u);

    const Allocation &best = ranked.front();
    EXPECT_EQ(best.tlb.entries, 512u);
    EXPECT_LT(best.cpi, ranked.back().cpi);
    // The near-optimal set leans toward I-cache capacity: within the
    // top ten, allocations with I-cache >= D-cache must appear (our
    // synthetic workloads put somewhat more capacity-sensitive
    // pressure on the D-cache than the paper's traces, so the exact
    // rank-1 split can differ; see EXPERIMENTS.md).
    bool icache_favoured = false;
    for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
        icache_favoured |= ranked[i].icache.capacityBytes >=
            ranked[i].dcache.capacityBytes;
    }
    EXPECT_TRUE(icache_favoured);
}

TEST(EndToEnd, SampledMissRatioTracksFullSimulation)
{
    // The paper validates trace sampling against full traces with
    // error under 10%; reproduce that methodology on our own
    // generator: simulate a cache over the full stream and over
    // sampled windows and compare miss-ratio estimators.
    const WorkloadParams &wl = benchmarkParams(BenchmarkId::Mpeg);

    CacheParams cp;
    cp.geom = CacheGeometry::fromWords(16 * 1024, 4, 1);

    // Full simulation.
    System full(wl, OsKind::Mach, 77);
    Cache full_cache(cp);
    MemRef r;
    for (int i = 0; i < 1500000; ++i) {
        full.next(r);
        if (r.isFetch())
            full_cache.access(r.paddr, r.kind);
    }

    // Sampled simulation over an identical (same-seed) stream.
    System stream(wl, OsKind::Mach, 77);
    SamplerParams sp;
    sp.sampleCount = 50;
    sp.sampleLength = 8000;
    sp.meanGap = 22000;
    TraceSampler sampler(stream, sp);
    Cache sampled_cache(cp);
    std::uint64_t consumed = 0;
    while (consumed < 1500000 && sampler.next(r)) {
        ++consumed;
        if (r.isFetch())
            sampled_cache.access(r.paddr, r.kind);
    }

    const double full_ratio =
        full_cache.stats().missRatio(RefKind::IFetch);
    const double sampled_ratio =
        sampled_cache.stats().missRatio(RefKind::IFetch);
    ASSERT_GT(full_ratio, 0.0);
    EXPECT_NEAR(sampled_ratio, full_ratio, 0.35 * full_ratio);
}

TEST(EndToEnd, TraceFileReplayIsBitIdentical)
{
    // Generate -> save -> replay must drive a simulator to exactly
    // the same statistics as the live stream.
    const std::string path = testing::TempDir() + "/endtoend.trace";
    const WorkloadParams &wl = benchmarkParams(BenchmarkId::Jpeg);

    CacheParams cp;
    cp.geom = CacheGeometry::fromWords(8 * 1024, 4, 2);
    Cache live_cache(cp);
    {
        System system(wl, OsKind::Ultrix, 31);
        TraceFileWriter writer(path);
        MemRef r;
        for (int i = 0; i < 200000; ++i) {
            system.next(r);
            writer.put(r);
            live_cache.access(r.paddr, r.kind);
        }
    }

    Cache replay_cache(cp);
    TraceFileReader reader(path);
    MemRef r;
    while (reader.next(r))
        replay_cache.access(r.paddr, r.kind);

    EXPECT_EQ(live_cache.stats().totalAccesses(),
              replay_cache.stats().totalAccesses());
    EXPECT_EQ(live_cache.stats().totalMisses(),
              replay_cache.stats().totalMisses());
    std::remove(path.c_str());
}

TEST(EndToEnd, LargerBudgetNeverHurtsTheOptimum)
{
    // Cost/benefit sanity across the whole pipeline: widening the
    // area budget can only improve (or preserve) the best CPI.
    ConfigSpace space;
    space.cacheKBytes = {2, 8, 32};
    space.lineWords = {4, 8};
    space.cacheWays = {1, 2};
    const auto caches = space.cacheGeometries(2);
    ComponentSweep sweep(caches, caches, space.tlbGeometries());
    RunConfig rc;
    rc.references = 300000;
    const std::vector<SweepResult> results = {
        sweep.run(BenchmarkId::Mab, OsKind::Mach, rc)};
    const ComponentCpiTables tables = ComponentCpiTables::average(
        results, MachineParams::decstation3100());

    double prev_best = 1e9;
    for (double budget : {80000.0, 150000.0, 250000.0, 400000.0}) {
        AllocationSearch search(AreaModel(), budget);
        const auto ranked = search.rank(tables, 2);
        ASSERT_FALSE(ranked.empty()) << budget;
        EXPECT_LE(ranked.front().cpi, prev_best + 1e-12) << budget;
        prev_best = ranked.front().cpi;
    }
}

} // namespace
} // namespace oma
