/**
 * @file
 * Batched trace-replay drivers for the cache simulator.
 *
 * The sweep engines used to push every reference through a per-ref
 * callback (RecordedTrace::replayFetchPaddrs and friends), paying a
 * filter branch and a lambda call per reference per configuration.
 * These drivers instead walk the trace one storage chunk at a time,
 * compact the surviving references into contiguous stride buffers
 * (paddr, and for data replays the packed flag byte), and hand each
 * buffer to the cache's batched kernel — which runs the geometry's
 * compile-time-specialized inner loop. The compaction pass touches
 * each column once per chunk; the kernel then streams a dense array.
 *
 * Both drivers visit exactly the references the per-ref views visit,
 * in the same order, through the same access body — so their counter
 * streams are bitwise-identical to the scalar path by construction
 * (tests/core/test_batched_replay.cc).
 */

#ifndef OMA_CACHE_REPLAY_HH
#define OMA_CACHE_REPLAY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "trace/recorded.hh"

namespace oma
{

/**
 * Replay every instruction fetch in @p trace through @p cache's
 * batched kernel (the batched form of replayFetchPaddrs +
 * access(paddr, IFetch)).
 *
 * @return References delivered to the cache.
 */
std::uint64_t replayFetchBatched(const RecordedTrace &trace,
                                 Cache &cache);

/**
 * Replay every cached data access in @p trace — loads and stores
 * surviving the kseg1 (uncached) filter — through @p cache's batched
 * kernel (the batched form of replayCachedData + access(paddr,
 * kind)).
 *
 * @return References delivered to the cache.
 */
std::uint64_t replayCachedDataBatched(const RecordedTrace &trace,
                                      Cache &cache);

} // namespace oma

#endif // OMA_CACHE_REPLAY_HH
