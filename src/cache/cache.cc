/**
 * @file
 * Implementation of the set-associative cache simulator.
 */

#include "cache/cache.hh"

#include "support/bits.hh"
#include "support/logging.hh"
#include "trace/recorded.hh"

namespace oma
{

Cache::Cache(const CacheParams &params)
    : _params(params), _rng(params.seed)
{
    _params.geom.validate();
    const std::uint64_t sets = _params.geom.numSets();
    _setMask = sets - 1;
    _lineShift = floorLog2(_params.geom.lineBytes);
    _indexBits = floorLog2(sets);
    _ways = _params.geom.assoc;
    _lines.assign(sets * _ways, Line());
    selectKernels();
}

std::uint64_t
Cache::lineNumber(std::uint64_t paddr) const
{
    return paddr >> _lineShift;
}

bool
Cache::probe(std::uint64_t paddr) const
{
    const std::uint64_t line = lineNumber(paddr);
    const std::uint64_t set = line & _setMask;
    const std::uint64_t tag = line >> _indexBits;
    const std::size_t base = set * _ways;
    for (std::size_t w = 0; w < _ways; ++w) {
        const Line &l = _lines[base + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

std::size_t
Cache::victimWay(std::size_t set_base)
{
    // Prefer an invalid way.
    for (std::size_t w = 0; w < _ways; ++w) {
        if (!_lines[set_base + w].valid)
            return w;
    }
    switch (_params.repl) {
      case ReplacementPolicy::Random:
        return static_cast<std::size_t>(_rng.below(_ways));
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Both policies evict the smallest stamp; they differ in
        // whether hits refresh the stamp (see access()).
        std::size_t victim = 0;
        std::uint64_t oldest = _lines[set_base].stamp;
        for (std::size_t w = 1; w < _ways; ++w) {
            if (_lines[set_base + w].stamp < oldest) {
                oldest = _lines[set_base + w].stamp;
                victim = w;
            }
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

template <unsigned Ways, unsigned LineShift>
bool
Cache::accessOne(std::uint64_t paddr, RefKind kind)
{
    const std::size_t ways = Ways == 0 ? _ways : Ways;
    const unsigned line_shift = LineShift == 0 ? _lineShift : LineShift;
    ++_tick;
    const std::uint64_t line = paddr >> line_shift;
    const std::uint64_t set = line & _setMask;
    const std::uint64_t tag = line >> _indexBits;
    const std::size_t base = set * ways;
    const bool is_store = kind == RefKind::Store;

    ++_stats.accesses[unsigned(kind)];
    if (is_store && _params.write == WritePolicy::WriteThrough)
        ++_stats.writeThroughWords;

    for (std::size_t w = 0; w < ways; ++w) {
        Line &l = _lines[base + w];
        if (l.valid && l.tag == tag) {
            if (_params.repl == ReplacementPolicy::Lru)
                l.stamp = _tick;
            if (is_store && _params.write == WritePolicy::WriteBack)
                l.dirty = true;
            return true;
        }
    }
    return missFill(line, base, tag, kind, is_store);
}

bool
Cache::missFill(std::uint64_t line, std::size_t base,
                std::uint64_t tag, RefKind kind, bool is_store)
{
    ++_stats.misses[unsigned(kind)];
    if (_touched.insert(line).second)
        ++_stats.compulsoryMisses;

    const bool allocate = !is_store ||
        _params.alloc == AllocPolicy::WriteAllocate;
    if (!allocate)
        return false;

    ++_stats.lineFills;
    const std::size_t w = victimWay(base);
    Line &l = _lines[base + w];
    if (l.valid && l.dirty)
        ++_stats.writebacks;
    l.valid = true;
    l.tag = tag;
    l.stamp = _tick;
    l.dirty = is_store && _params.write == WritePolicy::WriteBack;
    return false;
}

bool
Cache::access(std::uint64_t paddr, RefKind kind)
{
    return accessOne<0, 0>(paddr, kind);
}

template <unsigned Ways, unsigned LineShift>
void
Cache::fetchKernel(const std::uint32_t *paddr, const std::uint8_t *,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        accessOne<Ways, LineShift>(paddr[i], RefKind::IFetch);
}

template <unsigned Ways, unsigned LineShift>
void
Cache::dataKernel(const std::uint32_t *paddr,
                  const std::uint8_t *flags, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        accessOne<Ways, LineShift>(
            paddr[i], RefKind(flags[i] & RecordedTrace::kindMask));
    }
}

const std::vector<Cache::KernelEntry> &
Cache::kernelTable()
{
    // One row per pow2 (associativity, line-words) pair in the
    // modelled design space: the paper sweeps 4-128 byte lines
    // (1-32 words) at associativities 1-8.
#define OMA_CACHE_KERNEL(WAYS, WORDS, SHIFT)                       \
    KernelEntry{WAYS, WORDS, &Cache::fetchKernel<WAYS, SHIFT>,     \
                &Cache::dataKernel<WAYS, SHIFT>,                   \
                "w" #WAYS "x" #WORDS "w"}
    static const std::vector<KernelEntry> table = {
        OMA_CACHE_KERNEL(1, 1, 2),  OMA_CACHE_KERNEL(1, 2, 3),
        OMA_CACHE_KERNEL(1, 4, 4),  OMA_CACHE_KERNEL(1, 8, 5),
        OMA_CACHE_KERNEL(1, 16, 6), OMA_CACHE_KERNEL(1, 32, 7),
        OMA_CACHE_KERNEL(2, 1, 2),  OMA_CACHE_KERNEL(2, 2, 3),
        OMA_CACHE_KERNEL(2, 4, 4),  OMA_CACHE_KERNEL(2, 8, 5),
        OMA_CACHE_KERNEL(2, 16, 6), OMA_CACHE_KERNEL(2, 32, 7),
        OMA_CACHE_KERNEL(4, 1, 2),  OMA_CACHE_KERNEL(4, 2, 3),
        OMA_CACHE_KERNEL(4, 4, 4),  OMA_CACHE_KERNEL(4, 8, 5),
        OMA_CACHE_KERNEL(4, 16, 6), OMA_CACHE_KERNEL(4, 32, 7),
        OMA_CACHE_KERNEL(8, 1, 2),  OMA_CACHE_KERNEL(8, 2, 3),
        OMA_CACHE_KERNEL(8, 4, 4),  OMA_CACHE_KERNEL(8, 8, 5),
        OMA_CACHE_KERNEL(8, 16, 6), OMA_CACHE_KERNEL(8, 32, 7),
    };
#undef OMA_CACHE_KERNEL
    return table;
}

void
Cache::selectKernels()
{
    _fetchKernel = &Cache::fetchKernel<0, 0>;
    _dataKernel = &Cache::dataKernel<0, 0>;
    _kernelName = "generic";
    for (const KernelEntry &e : kernelTable()) {
        if (e.ways == _ways &&
            std::uint64_t(e.lineWords) * 4 == _params.geom.lineBytes) {
            _fetchKernel = e.fetch;
            _dataKernel = e.data;
            _kernelName = e.name;
            return;
        }
    }
}

std::vector<std::pair<unsigned, unsigned>>
Cache::specializedGeometries()
{
    std::vector<std::pair<unsigned, unsigned>> out;
    out.reserve(kernelTable().size());
    for (const KernelEntry &e : kernelTable())
        out.emplace_back(e.ways, e.lineWords);
    return out;
}

void
Cache::replayFetchBatch(const std::uint32_t *paddr, std::size_t n)
{
    (this->*_fetchKernel)(paddr, nullptr, n);
}

void
Cache::replayDataBatch(const std::uint32_t *paddr,
                       const std::uint8_t *flags, std::size_t n)
{
    (this->*_dataKernel)(paddr, flags, n);
}

void
Cache::prefetch(std::uint64_t paddr)
{
    ++_tick;
    const std::uint64_t line = lineNumber(paddr);
    const std::uint64_t set = line & _setMask;
    const std::uint64_t tag = line >> _indexBits;
    const std::size_t base = set * _ways;
    for (std::size_t w = 0; w < _ways; ++w) {
        Line &l = _lines[base + w];
        if (l.valid && l.tag == tag) {
            if (_params.repl == ReplacementPolicy::Lru)
                l.stamp = _tick;
            return;
        }
    }
    const std::size_t w = victimWay(base);
    Line &l = _lines[base + w];
    if (l.valid && l.dirty)
        ++_stats.writebacks;
    l.valid = true;
    l.tag = tag;
    l.stamp = _tick;
    l.dirty = false;
}

void
Cache::invalidateAll()
{
    for (auto &l : _lines)
        l = Line();
}

} // namespace oma
