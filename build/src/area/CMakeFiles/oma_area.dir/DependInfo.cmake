
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/area/access_time.cc" "src/area/CMakeFiles/oma_area.dir/access_time.cc.o" "gcc" "src/area/CMakeFiles/oma_area.dir/access_time.cc.o.d"
  "/root/repo/src/area/geometry.cc" "src/area/CMakeFiles/oma_area.dir/geometry.cc.o" "gcc" "src/area/CMakeFiles/oma_area.dir/geometry.cc.o.d"
  "/root/repo/src/area/mqf.cc" "src/area/CMakeFiles/oma_area.dir/mqf.cc.o" "gcc" "src/area/CMakeFiles/oma_area.dir/mqf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/oma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
