/**
 * @file
 * Unit tests for the TLB lookup structure.
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"

namespace oma
{
namespace
{

TlbParams
makeParams(std::uint64_t entries, std::uint64_t ways)
{
    TlbParams p;
    p.geom = TlbGeometry(entries, ways);
    return p;
}

TEST(Tlb, MissThenHitAfterInsert)
{
    Tlb tlb(makeParams(64, 0));
    EXPECT_FALSE(tlb.lookup(0x100, 1));
    tlb.insert(0x100, 1, false, false);
    EXPECT_TRUE(tlb.lookup(0x100, 1));
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, AsidIsolation)
{
    Tlb tlb(makeParams(64, 0));
    tlb.insert(0x100, 1, false, false);
    EXPECT_TRUE(tlb.lookup(0x100, 1));
    EXPECT_FALSE(tlb.lookup(0x100, 2));
}

TEST(Tlb, GlobalEntriesMatchAnyAsid)
{
    Tlb tlb(makeParams(64, 0));
    tlb.insert(0xc0000, 1, /*global=*/true, false);
    EXPECT_TRUE(tlb.lookup(0xc0000, 1));
    EXPECT_TRUE(tlb.lookup(0xc0000, 2));
    EXPECT_TRUE(tlb.lookup(0xc0000, 63));
}

TEST(Tlb, DirtyBit)
{
    Tlb tlb(makeParams(64, 0));
    tlb.insert(0x100, 1, false, /*dirty=*/false);
    EXPECT_FALSE(tlb.isDirty(0x100, 1));
    EXPECT_TRUE(tlb.setDirty(0x100, 1));
    EXPECT_TRUE(tlb.isDirty(0x100, 1));
    EXPECT_FALSE(tlb.setDirty(0x999, 1)); // not resident
}

TEST(Tlb, FullyAssociativeLruEviction)
{
    Tlb tlb(makeParams(4, 0));
    for (std::uint64_t vpn = 0; vpn < 4; ++vpn)
        tlb.insert(vpn, 1, false, false);
    tlb.lookup(0, 1); // refresh vpn 0
    tlb.insert(100, 1, false, false); // evicts vpn 1 (oldest unused)
    EXPECT_TRUE(tlb.probe(0, 1));
    EXPECT_FALSE(tlb.probe(1, 1));
    EXPECT_TRUE(tlb.probe(2, 1));
    EXPECT_TRUE(tlb.probe(3, 1));
    EXPECT_TRUE(tlb.probe(100, 1));
}

TEST(Tlb, SetAssociativeIndexing)
{
    // 8 entries, 2-way: 4 sets; vpns congruent mod 4 share a set.
    Tlb tlb(makeParams(8, 2));
    tlb.insert(0, 1, false, false);
    tlb.insert(4, 1, false, false);
    tlb.insert(8, 1, false, false); // third in set 0: evicts vpn 0
    EXPECT_FALSE(tlb.probe(0, 1));
    EXPECT_TRUE(tlb.probe(4, 1));
    EXPECT_TRUE(tlb.probe(8, 1));
    // Other sets untouched.
    tlb.insert(1, 1, false, false);
    EXPECT_TRUE(tlb.probe(1, 1));
}

TEST(Tlb, InsertRefreshesExistingEntry)
{
    Tlb tlb(makeParams(4, 0));
    tlb.insert(7, 1, false, false);
    tlb.insert(7, 1, false, true); // re-walk marks dirty
    EXPECT_TRUE(tlb.isDirty(7, 1));
    // No duplicate entries: filling the rest still keeps capacity 4.
    tlb.insert(1, 1, false, false);
    tlb.insert(2, 1, false, false);
    tlb.insert(3, 1, false, false);
    EXPECT_TRUE(tlb.probe(7, 1));
}

TEST(Tlb, InvalidateSingleEntry)
{
    Tlb tlb(makeParams(16, 4));
    tlb.insert(5, 1, false, false);
    tlb.invalidate(5, 1);
    EXPECT_FALSE(tlb.probe(5, 1));
}

TEST(Tlb, InvalidateAll)
{
    Tlb tlb(makeParams(16, 4));
    for (std::uint64_t vpn = 0; vpn < 10; ++vpn)
        tlb.insert(vpn, 1, false, false);
    tlb.invalidateAll();
    for (std::uint64_t vpn = 0; vpn < 10; ++vpn)
        EXPECT_FALSE(tlb.probe(vpn, 1));
}

TEST(Tlb, ProbeHasNoStatsEffect)
{
    Tlb tlb(makeParams(16, 4));
    // Results discarded on purpose: only the counters matter here.
    (void)tlb.probe(1, 1);
    (void)tlb.probe(2, 1);
    EXPECT_EQ(tlb.stats().accesses, 0u);
}

class TlbGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(TlbGeometrySweep, CapacityIsRespected)
{
    const auto [entries, ways] = GetParam();
    if (ways > entries)
        return;
    Tlb tlb(makeParams(entries, ways));
    // Fill with vpns that spread across sets.
    for (std::uint64_t vpn = 0; vpn < entries; ++vpn)
        tlb.insert(vpn, 1, false, false);
    std::uint64_t resident = 0;
    for (std::uint64_t vpn = 0; vpn < entries; ++vpn)
        resident += tlb.probe(vpn, 1);
    EXPECT_EQ(resident, entries);
    // One more insert in each set must evict exactly one per set.
    for (std::uint64_t vpn = entries; vpn < entries + entries; ++vpn)
        tlb.insert(vpn, 1, false, false);
    resident = 0;
    for (std::uint64_t vpn = 0; vpn < 2 * entries; ++vpn)
        resident += tlb.probe(vpn, 1);
    EXPECT_EQ(resident, entries);
}

INSTANTIATE_TEST_SUITE_P(
    Table5Tlbs, TlbGeometrySweep,
    ::testing::Combine(::testing::Values(16u, 64u, 128u, 512u),
                       ::testing::Values(0u, 1u, 2u, 4u, 8u)));

} // namespace
} // namespace oma
