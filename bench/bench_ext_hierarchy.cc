/**
 * @file
 * Extension: organizational alternatives Table 1 exhibits but the
 * paper does not search — unified L1 caches (i486, PowerPC 601
 * style) and split L1s backed by an on-chip L2 (where the paper
 * predicts high-end parts will spend extra memory). Each
 * organization is sized to roughly the same MQF area and simulated
 * on the suite under both OS models.
 */

#include <iostream>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "cache/hierarchy.hh"
#include "support/table.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

struct Organization
{
    const char *name;
    bool unified;
    CacheParams l1i; //!< Also the unified array when unified.
    CacheParams l1d;
    CacheParams l2;
    bool hasL2;
};

CacheParams
cache(std::uint64_t kb, std::uint64_t words, std::uint64_t ways)
{
    CacheParams p;
    p.geom = CacheGeometry::fromWords(kb * 1024, words, ways);
    return p;
}

double
areaOf(const Organization &org)
{
    AreaModel model;
    double rbe = model.cacheArea(org.l1i.geom);
    if (!org.unified)
        rbe += model.cacheArea(org.l1d.geom);
    if (org.hasL2)
        rbe += model.cacheArea(org.l2.geom);
    return rbe;
}

/** Suite-average CPI contribution of one organization under one OS. */
double
measure(const Organization &org, OsKind os, std::uint64_t refs)
{
    HierarchyPenalties pen;
    double total = 0.0;
    for (BenchmarkId id : allBenchmarks()) {
        System system(benchmarkParams(id), os, 42);
        UnifiedCache unified(org.l1i, pen);
        TwoLevelCache split(org.l1i, org.l1d, org.l2, org.hasL2, pen);
        MemRef ref;
        std::uint64_t instructions = 0;
        for (std::uint64_t i = 0; i < refs; ++i) {
            system.next(ref);
            if (!ref.mapped && ref.vaddr >= kseg1Base &&
                ref.vaddr < kseg2Base) {
                continue; // uncached frame-buffer traffic
            }
            instructions += ref.isFetch();
            if (org.unified)
                unified.access(ref.paddr, ref.kind);
            else
                split.access(ref.paddr, ref.kind);
        }
        const HierarchyStats &s =
            org.unified ? unified.stats() : split.stats();
        total += double(s.stallCycles) / double(instructions);
    }
    return total / double(numBenchmarks);
}

} // namespace

int
main()
{
    omabench::banner("Extension: unified L1s and on-chip L2s at "
                     "roughly equal die area",
                     "Table 1's organizational alternatives");

    const Organization orgs[] = {
        {"split 16-KB I + 8-KB D (2-way, 4w)", false,
         cache(16, 4, 2), cache(8, 4, 2), cache(64, 8, 4), false},
        {"unified 32-KB (2-way, 4w)", true, cache(32, 4, 2),
         cache(8, 4, 2), cache(64, 8, 4), false},
        {"unified 32-KB (8-way, 16w, PPC601-ish)", true,
         cache(32, 16, 8), cache(8, 4, 2), cache(64, 8, 4), false},
        {"split 8-KB I + 4-KB D + 16-KB L2 (8w lines)", false,
         cache(8, 4, 2), cache(4, 4, 2), cache(16, 8, 4), true},
        {"split 4-KB I + 2-KB D + 32-KB L2 (8w lines)", false,
         cache(4, 4, 2), cache(2, 4, 2), cache(32, 8, 4), true},
    };

    omabench::BenchReport report("ext_hierarchy");
    const std::uint64_t refs = omabench::benchReferences() / 2;
    TextTable table({"Organization", "MQF area (rbes)",
                     "Ultrix cache CPI", "Mach cache CPI"});
    std::size_t org_index = 0;
    for (const Organization &org : orgs) {
        const double ultrix = measure(org, OsKind::Ultrix, refs);
        const double mach = measure(org, OsKind::Mach, refs);
        const std::string slug =
            "hierarchy/org" + std::to_string(org_index++);
        report.metrics().add("hierarchy/organizations");
        report.metrics().set(slug + "/area_rbe", areaOf(org));
        report.metrics().set(slug + "/ultrix_cache_cpi", ultrix);
        report.metrics().set(slug + "/mach_cache_cpi", mach);
        report.addReferences(2 * refs * numBenchmarks);
        table.addRow({org.name,
                      fmtGrouped(std::uint64_t(areaOf(org))),
                      fmtFixed(ultrix, 3), fmtFixed(mach, 3)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading guide: the unified organizations pay a port "
           "conflict on every data reference and suffer code/data "
           "cross-interference — which a multiple-API OS, whose "
           "service code floods the cache, amplifies. Backing small "
           "split L1s with an L2 recovers much of a large split "
           "pair's performance at similar area, supporting the "
           "paper's expectation that extra on-chip memory beyond the "
           "primaries belongs in a second level.\n";
    return 0;
}
