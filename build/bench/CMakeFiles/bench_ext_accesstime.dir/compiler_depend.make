# Empty compiler generated dependencies file for bench_ext_accesstime.
# This may be replaced when dependencies are built.
