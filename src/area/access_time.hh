/**
 * @file
 * Analytical access-time model for on-chip memories.
 *
 * The paper's first suggested extension (Section 6) is to add an
 * access-time dimension to the cost/benefit analysis using a model
 * like Wada et al. [Wada92]. This is a Wada-style decomposition of a
 * cache or TLB access into decoder, wordline, bitline/sense-amp,
 * comparator and output-mux stages, each with a delay that grows with
 * the geometry that loads it (log of the fanin for decode trees,
 * linear in wordline/bitline length for the RC-dominated stages,
 * log of associativity for way selection). Constants are normalized
 * so a small direct-mapped structure costs ~1 "delay unit"; only
 * *relative* access times across configurations matter to the
 * search, exactly as only relative areas matter in the MQF model.
 */

#ifndef OMA_AREA_ACCESS_TIME_HH
#define OMA_AREA_ACCESS_TIME_HH

#include "area/geometry.hh"
#include "area/mqf.hh"

namespace oma
{

/** Stage coefficients of the access-time model (delay units). */
struct AccessTimeParams
{
    double base = 0.40;          //!< Drivers, latches, wiring floor.
    double decodePerBit = 0.06;  //!< Per address bit decoded.
    double wordlinePerKbit = 0.030; //!< Per kilobit of row width.
    double bitlinePerKrow = 0.25; //!< Per thousand rows of column height.
    double senseAmp = 0.12;      //!< Sense amplification.
    double comparePerBit = 0.010; //!< Tag comparison, per tag bit.
    double wayMuxPerLog = 0.25;  //!< Way-select mux, per log2(ways).
    double camMatchPerEntryLog = 0.25; //!< CAM matchline, per log2(entries).
};

/**
 * Access-time estimates for caches and TLBs, sharing the geometry
 * vocabulary of the MQF area model.
 */
class AccessTimeModel
{
  public:
    explicit AccessTimeModel(
        const AccessTimeParams &params = AccessTimeParams(),
        const AreaParams &area = AreaParams());

    const AccessTimeParams &params() const { return _params; }

    /** Access time of a set-associative cache, in delay units. */
    double cacheAccessTime(const CacheGeometry &geom) const;

    /** Access time of a TLB (set-associative or CAM). */
    double tlbAccessTime(const TlbGeometry &geom) const;

  private:
    AccessTimeParams _params;
    AreaParams _area;
};

} // namespace oma

#endif // OMA_AREA_ACCESS_TIME_HH
