/**
 * @file
 * Geometric descriptions of caches and TLBs shared by the area model,
 * the simulators and the design-space allocator.
 */

#ifndef OMA_AREA_GEOMETRY_HH
#define OMA_AREA_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "support/fingerprint.hh"

namespace oma
{

/** Bytes per machine word (the paper reports line sizes in 4-byte words). */
constexpr std::uint64_t bytesPerWord = 4;

/**
 * Shape of a set-associative cache. All quantities must be powers of
 * two; use validate() after construction.
 */
struct CacheGeometry
{
    std::uint64_t capacityBytes = 8192;
    std::uint64_t lineBytes = 16;
    std::uint64_t assoc = 1;

    CacheGeometry() = default;
    CacheGeometry(std::uint64_t capacity, std::uint64_t line,
                  std::uint64_t ways)
        : capacityBytes(capacity), lineBytes(line), assoc(ways)
    {}

    /** Convenience constructor taking the line size in 4-byte words. */
    static CacheGeometry
    fromWords(std::uint64_t capacity, std::uint64_t line_words,
              std::uint64_t ways)
    {
        return CacheGeometry(capacity, line_words * bytesPerWord, ways);
    }

    std::uint64_t lineWords() const { return lineBytes / bytesPerWord; }

    std::uint64_t
    numLines() const
    {
        return capacityBytes / lineBytes;
    }

    std::uint64_t
    numSets() const
    {
        return numLines() / assoc;
    }

    /** Abort via fatal() when the geometry is not realizable. */
    void validate() const;

    /** "16-KB 8-word 2-way" style description. */
    std::string describe() const;

    bool
    operator==(const CacheGeometry &other) const
    {
        return capacityBytes == other.capacityBytes &&
            lineBytes == other.lineBytes && assoc == other.assoc;
    }

    /** Append every field to an artifact-store fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.u64("cache_geom.capacity_bytes", capacityBytes);
        fp.u64("cache_geom.line_bytes", lineBytes);
        fp.u64("cache_geom.assoc", assoc);
    }
};

/**
 * Shape of a TLB. @c assoc == 0 denotes a fully-associative (CAM)
 * organization, matching the paper's "full" entries in Table 1.
 */
struct TlbGeometry
{
    std::uint64_t entries = 64;
    std::uint64_t assoc = 0; //!< 0 = fully associative.

    TlbGeometry() = default;
    TlbGeometry(std::uint64_t n, std::uint64_t ways)
        : entries(n), assoc(ways)
    {}

    /** A fully-associative TLB with @p n entries. */
    static TlbGeometry
    fullyAssoc(std::uint64_t n)
    {
        return TlbGeometry(n, 0);
    }

    bool fullyAssociative() const { return assoc == 0; }

    std::uint64_t
    ways() const
    {
        return fullyAssociative() ? entries : assoc;
    }

    std::uint64_t
    numSets() const
    {
        return fullyAssociative() ? 1 : entries / assoc;
    }

    /** Abort via fatal() when the geometry is not realizable. */
    void validate() const;

    /** "512-entry 8-way" / "64-entry full" style description. */
    std::string describe() const;

    bool
    operator==(const TlbGeometry &other) const
    {
        return entries == other.entries && assoc == other.assoc;
    }

    /** Append every field to an artifact-store fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.u64("tlb_geom.entries", entries);
        fp.u64("tlb_geom.assoc", assoc);
    }
};

} // namespace oma

#endif // OMA_AREA_GEOMETRY_HH
