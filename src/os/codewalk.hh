/**
 * @file
 * Instruction-fetch behaviour generators.
 *
 * Two code behaviours cover what the paper's analysis turns on:
 *
 *  - Working-set walks model steady-state code (application loops,
 *    service bodies): control transfers pick Zipf-skewed routine
 *    starts inside a code footprint and then run sequentially for a
 *    geometrically distributed span, producing temporal reuse whose
 *    reach is the footprint and spatial locality set by run length.
 *
 *  - Invocation paths model the RPC/trap plumbing: the *same* long
 *    instruction sequence is executed once per service invocation
 *    (Mach's ~1000-instruction call path), which is exactly the code
 *    that overruns small I-caches and rewards long lines.
 */

#ifndef OMA_OS_CODEWALK_HH
#define OMA_OS_CODEWALK_HH

#include <cstdint>

#include "support/rng.hh"

namespace oma
{

/** Static description of a component's text. */
struct CodeRegion
{
    std::uint64_t base = 0;      //!< Virtual address of the text.
    std::uint64_t footprint = 0; //!< Bytes of hot code.
    double skew = 0.8;           //!< Zipf exponent over routine starts.
    double meanRun = 12.0;       //!< Mean loop-body length (instructions).
    /**
     * Mean number of times a body is re-executed before control
     * moves on. Application code iterates small loops heavily;
     * operating-system code is once-through (the paper's Section 4.1
     * observation), so OS components use small values.
     */
    double meanIterations = 6.0;
};

/** Stateful walker over a CodeRegion. */
class CodeWalker
{
  public:
    CodeWalker(const CodeRegion &region, std::uint64_t seed);

    /** Virtual address of the next instruction fetch. */
    std::uint64_t step();

    const CodeRegion &region() const { return _region; }

  private:
    /** Routine-start granularity in bytes (a small basic block). */
    static constexpr std::uint64_t granule = 64;

    void newRun();

    CodeRegion _region;
    Rng _rng;
    std::uint64_t _pc;
    std::uint64_t _start; //!< Body start of the current loop.
    std::uint64_t _body;  //!< Body length in instructions.
    std::uint64_t _left;  //!< Instructions left in this iteration.
    std::uint64_t _iters; //!< Iterations left for this body.
};

/**
 * A fixed sequential code path of @p instructions instructions
 * starting at @p base; pc(i) yields the fetch address of step i.
 * Invocation paths are stateless, so this is a plain helper.
 */
struct CodePath
{
    std::uint64_t base = 0;
    std::uint64_t instructions = 0;

    std::uint64_t
    pc(std::uint64_t i) const
    {
        return base + i * 4;
    }

    /** Bytes of instruction memory the path spans. */
    std::uint64_t bytes() const { return instructions * 4; }
};

} // namespace oma

#endif // OMA_OS_CODEWALK_HH
