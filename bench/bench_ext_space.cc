/**
 * @file
 * Extension: the five-component allocation space. Opens the paper's
 * Table 5 grid to victim-cache organizations on the I-cache axis,
 * swept write-buffer depths and split-L1 + L2 hierarchies
 * (ConfigSpace::extended()), sweeps everything in one heterogeneous
 * ComponentSweep per workload, and ranks every in-budget combination
 * under the same 250,000-rbe budget as Table 6.
 *
 * The extension axes are strictly additive: stripping them from the
 * measured tables reproduces the classic Table 6 ranking row for
 * row, which this bench cross-checks and reports.
 */

#include <iostream>
#include <numeric>

#include "bench/alloc_common.hh"

using namespace oma;

namespace
{

void
printExtended(const std::vector<Allocation> &ranked,
              const std::vector<std::size_t> &rows)
{
    TextTable table({"Rank", "TLB", "I-cache", "D-cache", "Extras",
                     "Total cost (rbes)", "Total CPI"});
    for (std::size_t row : rows) {
        if (row >= ranked.size())
            continue;
        const Allocation &a = ranked[row];
        table.addRow({std::to_string(a.rank), a.tlb.describe(),
                      a.icache.describe(), a.dcache.describe(),
                      omabench::describeExtras(a),
                      fmtGrouped(std::uint64_t(a.areaRbe)),
                      fmtFixed(a.cpi, 3)});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    omabench::banner("Extension: the five-component allocation space "
                     "under the 250,000-rbe budget (Mach)",
                     "Table 6 extended per Section 6");

    omabench::BenchReport report("ext_space");
    const ConfigSpace space = ConfigSpace::extended();
    omabench::printTable5(space);
    std::cout << "Extension candidates: "
              << space.victimConfigs().size() << " victim, "
              << space.writeBufferConfigs().size()
              << " write-buffer, " << space.hierarchyConfigs().size()
              << " hierarchy\n\n";

    const ComponentCpiTables tables =
        omabench::measureMachTables(space, &report);

    const auto ranked =
        omabench::rankAllocations(tables, 8, &report);
    std::cout << "In-budget allocations ranked: " << ranked.size()
              << "\n\n";

    std::vector<std::size_t> rows(10);
    std::iota(rows.begin(), rows.end(), 0);
    printExtended(ranked, rows);

    // The write-buffer axis rides every allocation, so the telling
    // number is the best allocation that reorganizes the *caches* —
    // a victim buffer or a hierarchy — rather than just deepening
    // the buffer.
    const Allocation *best_org = nullptr;
    for (const Allocation &a : ranked) {
        if (a.victimEntries != 0 || a.hasL2 || a.unified) {
            best_org = &a;
            break;
        }
    }
    if (best_org != nullptr) {
        report.metrics().add("search/best_victim_or_l2_rank",
                             best_org->rank);
        std::cout << "\nBest victim/L2 organization (rank "
                  << best_org->rank << " of " << ranked.size()
                  << "): " << best_org->tlb.describe() << " TLB, "
                  << best_org->icache.describe() << " I, "
                  << best_org->dcache.describe() << " D, "
                  << omabench::describeExtras(*best_org) << ", "
                  << fmtGrouped(std::uint64_t(best_org->areaRbe))
                  << " rbes, CPI " << fmtFixed(best_org->cpi, 3)
                  << "\n";
    }

    // Cross-check: strip the extension axes and the ranking must be
    // the classic Table 6 ranking (the extended grid is a strict
    // superset that never perturbs classic scores).
    ComponentCpiTables classic = tables;
    classic.victimOptions.clear();
    classic.wbOptions.clear();
    classic.hierarchyOptions.clear();
    const auto classic_ranked =
        omabench::rankAllocations(classic, 8);
    const Allocation &cw = classic_ranked.front();
    std::cout << "\nClassic cross-check (extensions stripped): "
              << classic_ranked.size() << " allocations, winner "
              << cw.tlb.describe() << " TLB, " << cw.icache.describe()
              << " I, " << cw.dcache.describe() << " D, CPI "
              << fmtFixed(cw.cpi, 3) << " — Table 6's ranking.\n";
    report.metrics().add("search/classic_in_budget",
                         classic_ranked.size());

    std::cout
        << "\nReading guide: the classic capacity/associativity "
           "allocations stay on top — on these workloads a victim "
           "buffer recovers little (bench_ext_victim) and the "
           "write-buffer and L2 axes buy small CPI per rbe — which "
           "is itself the paper's point sharpened: under a multiple-"
           "API OS the budget belongs in big primaries and a big "
           "TLB before any auxiliary structure.\n";
    return 0;
}
