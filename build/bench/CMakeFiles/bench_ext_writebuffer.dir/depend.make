# Empty dependencies file for bench_ext_writebuffer.
# This may be replaced when dependencies are built.
