file(REMOVE_RECURSE
  "liboma_trace.a"
)
