file(REMOVE_RECURSE
  "CMakeFiles/oma_tlb.dir/mmu.cc.o"
  "CMakeFiles/oma_tlb.dir/mmu.cc.o.d"
  "CMakeFiles/oma_tlb.dir/tapeworm.cc.o"
  "CMakeFiles/oma_tlb.dir/tapeworm.cc.o.d"
  "CMakeFiles/oma_tlb.dir/tlb.cc.o"
  "CMakeFiles/oma_tlb.dir/tlb.cc.o.d"
  "liboma_tlb.a"
  "liboma_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
