/**
 * @file
 * Extension: what address-space identifiers are worth. Table 1's x86
 * parts (i486, Cyrix) flush the whole TLB on every context switch;
 * the R2000 tags entries with a 6-bit ASID. This bench measures TLB
 * refill CPI with and without ASIDs across TLB sizes under both OS
 * models — quantifying how a multiple-API system, which crosses
 * address spaces on every service, depends on ASIDs.
 */

#include <iostream>

#include "bench/common.hh"
#include "support/table.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

double
suiteRefillCpi(OsKind os, std::uint64_t entries, bool flush,
               std::uint64_t refs)
{
    double total = 0.0;
    for (BenchmarkId id : allBenchmarks()) {
        TlbParams p;
        p.geom = TlbGeometry::fullyAssoc(entries);
        p.flushOnAsidSwitch = flush;
        Mmu mmu(p, TlbPenalties());
        System system(benchmarkParams(id), os, 42);
        system.setInvalidateHook(
            [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
                mmu.invalidatePage(vpn, asid, global);
            });
        MemRef ref;
        std::uint64_t instructions = 0;
        for (std::uint64_t i = 0; i < refs; ++i) {
            system.next(ref);
            instructions += ref.isFetch();
            mmu.translate(ref);
        }
        total += double(mmu.stats().refillCycles()) /
            double(instructions);
    }
    return total / double(numBenchmarks);
}

} // namespace

int
main()
{
    omabench::banner("Extension: TLB refill CPI with and without "
                     "address-space identifiers",
                     "Table 1 (i486-style flushing TLBs) applied to "
                     "Section 4.2");

    omabench::BenchReport report("ext_noasid");
    const std::uint64_t refs = omabench::benchReferences() / 3;
    TextTable table({"TLB (FA)", "Ultrix ASIDs", "Ultrix flush",
                     "Mach ASIDs", "Mach flush"});
    for (std::uint64_t entries : {32, 64, 128, 256}) {
        const double uy = suiteRefillCpi(OsKind::Ultrix, entries,
                                         false, refs);
        const double un = suiteRefillCpi(OsKind::Ultrix, entries,
                                         true, refs);
        const double my = suiteRefillCpi(OsKind::Mach, entries, false,
                                         refs);
        const double mn = suiteRefillCpi(OsKind::Mach, entries, true,
                                         refs);
        report.addReferences(4 * refs * numBenchmarks);
        const std::string slug =
            "noasid/" + std::to_string(entries) + "e";
        report.metrics().set(slug + "/ultrix_asid_cpi", uy);
        report.metrics().set(slug + "/ultrix_flush_cpi", un);
        report.metrics().set(slug + "/mach_asid_cpi", my);
        report.metrics().set(slug + "/mach_flush_cpi", mn);
        table.addRow({std::to_string(entries), fmtFixed(uy, 3),
                      fmtFixed(un, 3), fmtFixed(my, 3),
                      fmtFixed(mn, 3)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading guide: without ASIDs every RPC's address-space "
           "crossings (app -> kernel-mediated switch -> server -> "
           "back) dump the whole TLB, so the multiple-API system "
           "pays a far larger multiple than the monolithic one — and "
           "larger TLBs cannot buy the loss back, since flushes "
           "erase capacity. (Penalties are the R2000's software-"
           "managed ones; an i486's hardware walker would soften the "
           "absolute numbers but not the asymmetry.) This is why the "
           "paper's recommended large set-associative TLBs "
           "presuppose R2000-style ASIDs — and why the monolithic "
           "system, which switches spaces only at frame boundaries, "
           "barely notices the flushes.\n";
    return 0;
}
