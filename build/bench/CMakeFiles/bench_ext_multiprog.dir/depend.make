# Empty dependencies file for bench_ext_multiprog.
# This may be replaced when dependencies are built.
