/**
 * @file
 * Tests for the trace-stream summarizer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "os/layout.hh"
#include "trace/stats.hh"
#include "workload/system.hh"

namespace oma
{
namespace
{

MemRef
make(std::uint64_t vaddr, RefKind kind, Mode mode, std::uint32_t asid)
{
    MemRef r;
    r.vaddr = vaddr;
    r.paddr = vaddr & 0xffffff;
    r.kind = kind;
    r.mode = mode;
    r.asid = asid;
    r.mapped = isMappedAddress(vaddr);
    return r;
}

TEST(TraceStatistics, CountsMixAndShares)
{
    TraceStatistics stats;
    stats.put(make(0x1000, RefKind::IFetch, Mode::User, 1));
    stats.put(make(0x2000, RefKind::Load, Mode::User, 1));
    stats.put(make(kseg0Base + 0x100, RefKind::IFetch, Mode::Kernel,
                   0));
    stats.put(make(0x3000, RefKind::Store, Mode::User, 2));

    EXPECT_EQ(stats.total(), 4u);
    EXPECT_EQ(stats.instructions(), 2u);
    EXPECT_EQ(stats.countOf(RefKind::Load), 1u);
    EXPECT_EQ(stats.countOf(RefKind::Store), 1u);
    EXPECT_DOUBLE_EQ(stats.dataPerInstruction(), 1.0);
    EXPECT_DOUBLE_EQ(stats.kernelShare(), 0.25);
    EXPECT_DOUBLE_EQ(stats.mappedShare(), 0.75);
    EXPECT_EQ(stats.byAsid().at(1), 2u);
    EXPECT_EQ(stats.byAsid().at(2), 1u);
}

TEST(TraceStatistics, SegmentBreakdown)
{
    TraceStatistics stats;
    stats.put(make(0x1000, RefKind::Load, Mode::User, 1));
    stats.put(make(kseg0Base + 0x40, RefKind::Load, Mode::Kernel, 0));
    stats.put(make(kseg1Base + 0x40, RefKind::Store, Mode::User, 2));
    stats.put(make(kseg2Base + 0x40, RefKind::Load, Mode::Kernel, 0));
    EXPECT_EQ(stats.bySegment().at("kuseg"), 1u);
    EXPECT_EQ(stats.bySegment().at("kseg0"), 1u);
    EXPECT_EQ(stats.bySegment().at("kseg1"), 1u);
    EXPECT_EQ(stats.bySegment().at("kseg2"), 1u);
}

TEST(TraceStatistics, FootprintsCountDistinctUnits)
{
    TraceStatistics stats;
    // Two refs on the same page/line, one on another page.
    MemRef a = make(0x1000, RefKind::Load, Mode::User, 1);
    MemRef b = make(0x1004, RefKind::Load, Mode::User, 1);
    MemRef c = make(0x9000, RefKind::Load, Mode::User, 1);
    stats.put(a);
    stats.put(b);
    stats.put(c);
    EXPECT_EQ(stats.pageFootprint(), 2u);
    EXPECT_EQ(stats.lineFootprint(), 2u);
    // Same vaddr in a different space is a different page.
    stats.put(make(0x1000, RefKind::Load, Mode::User, 5));
    EXPECT_EQ(stats.pageFootprint(), 3u);
}

TEST(TraceStatistics, PrintIsReadable)
{
    TraceStatistics stats;
    System system(benchmarkParams(BenchmarkId::Jpeg), OsKind::Mach, 4);
    MemRef ref;
    for (int i = 0; i < 50000; ++i) {
        system.next(ref);
        stats.put(ref);
    }
    std::ostringstream os;
    stats.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("references:"), std::string::npos);
    EXPECT_NE(out.find("kseg0"), std::string::npos);
    EXPECT_NE(out.find("asid"), std::string::npos);
    // A Mach run involves several address spaces.
    EXPECT_GE(stats.byAsid().size(), 3u);
}

TEST(TraceStatistics, MachTouchesMorePagesThanUltrix)
{
    // The §4.2 mechanism, visible directly in the stream summary.
    auto footprint = [](OsKind os) {
        TraceStatistics stats;
        System system(benchmarkParams(BenchmarkId::Ousterhout), os, 8);
        MemRef ref;
        for (int i = 0; i < 300000; ++i) {
            system.next(ref);
            if (ref.mapped)
                stats.put(ref);
        }
        return stats.pageFootprint();
    };
    EXPECT_GT(footprint(OsKind::Mach), footprint(OsKind::Ultrix));
}

} // namespace
} // namespace oma
