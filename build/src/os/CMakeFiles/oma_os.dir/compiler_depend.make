# Empty compiler generated dependencies file for oma_os.
# This may be replaced when dependencies are built.
