file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_victim.dir/bench_ext_victim.cc.o"
  "CMakeFiles/bench_ext_victim.dir/bench_ext_victim.cc.o.d"
  "bench_ext_victim"
  "bench_ext_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
