file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hierarchy.dir/bench_ext_hierarchy.cc.o"
  "CMakeFiles/bench_ext_hierarchy.dir/bench_ext_hierarchy.cc.o.d"
  "bench_ext_hierarchy"
  "bench_ext_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
