/**
 * @file
 * QueryEngine: the single sanctioned entry point for allocation
 * queries (docs/MODEL.md §14).
 *
 * Composes the engines the previous PRs built — ComponentSweep
 * (record-then-replay measurement), SearchStrategy (exhaustive /
 * annealing ranking) and ArtifactStore (content-addressed reuse) —
 * behind one call: give it an AllocationRequest, get back the
 * canonical AllocationResponse JSON. Every frontend (the oma_serve
 * daemon, the table benches, trace_tools, caltool) phrases its
 * question this way, so there is one code path to trust instead of
 * three ad-hoc ones.
 *
 * Serving discipline, in order:
 *
 * 1. *Warm.* The request's content Fingerprint keys the encoded
 *    response in the artifact store; a warm hit is returned without
 *    touching a simulator (`serve/warm_hits`, zero record/replay
 *    work — counter-proven in CI).
 * 2. *Coalesced.* Concurrent identical requests join one in-flight
 *    computation (InflightTable): one leader simulates, followers
 *    carry the identical bytes away (`serve/dedup_hits`).
 * 3. *Computed.* The leader sweeps per workload (store-aware, so
 *    even a cold response reuses warm traces/shards), averages the
 *    component tables, runs the requested strategy and encodes the
 *    top-K answer (`serve/computed`).
 *
 * Because responses carry content only — no provenance, no timing —
 * all three paths return bitwise-identical bytes, at any thread
 * count (tests/api/test_query_engine.cc, test_serve_once.cc).
 *
 * Admission limits: answerBatch() refuses requests beyond maxBatch
 * per call (`serve/rejected`) and computes distinct requests on at
 * most maxInflight concurrent lanes; each lane still honours the
 * request's own `threads` knob for its sweeps.
 */

#ifndef OMA_API_QUERY_ENGINE_HH
#define OMA_API_QUERY_ENGINE_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/request.hh"
#include "core/sweep.hh"
#include "obs/metrics.hh"
#include "store/store.hh"

namespace oma::api
{

/** Engine-level knobs (per engine, not per request). */
struct QueryEngineConfig
{
    /** Artifact-store root; "" consults OMA_STORE_DIR, and when that
     * is unset too the engine runs storeless (dedupe still works,
     * warm serving does not). */
    std::string storeDir;
    /** Admission limit: distinct requests computed concurrently by
     * one answerBatch() call. */
    unsigned maxInflight = 4;
    /** Admission limit: requests accepted per batch; the rest are
     * refused with an error answer. */
    std::size_t maxBatch = 64;
};

/**
 * The explicit component grid of one sweep. Normally derived from
 * AllocationRequest::space; legacy suites with hand-built component
 * slots (bench/common.hh) pass their own.
 */
struct SweepGrid
{
    std::vector<CacheGeometry> icacheGeoms;
    std::vector<CacheGeometry> dcacheGeoms;
    std::vector<TlbGeometry> tlbGeoms;
    std::vector<ComponentSlot> components;

    [[nodiscard]] static SweepGrid fromSpace(const ConfigSpace &space);
};

/** Allocation-as-a-service: answer AllocationRequests. */
class QueryEngine
{
  public:
    explicit QueryEngine(QueryEngineConfig config = QueryEngineConfig());

    /**
     * Answer one request: warm-serve, coalesce or compute (see file
     * header). Returns the response JSON, or an `oma-error-v1`
     * payload for an invalid request. The observation collects the
     * serve counters plus the underlying sweep/search metrics;
     * attaching one never changes the answer.
     */
    [[nodiscard]] std::string
    answer(const AllocationRequest &request,
           obs::Observation *observation = nullptr);

    /** answer() for a raw JSON line (daemon wire path): a request
     * that fails to decode earns an error answer, never a crash. */
    [[nodiscard]] std::string
    answerJson(std::string_view request_json,
               obs::Observation *observation = nullptr);

    /**
     * Answer a batch of JSON request lines, one answer per line, in
     * input order. Duplicate requests inside the batch are answered
     * once and fanned out (`serve/dedup_hits`); distinct requests
     * compute on at most maxInflight lanes; lines beyond maxBatch
     * are refused. Per-request metric shards merge into
     * @p observation in input-group order, so the counters are a
     * pure function of the batch, not of the schedule.
     */
    [[nodiscard]] std::vector<std::string>
    answerBatch(const std::vector<std::string> &request_lines,
                obs::Observation *observation = nullptr);

    /**
     * Measurement stage only: one store-aware sweep per workload of
     * @p request, in workload order. @p grid overrides the grid
     * derived from request.space (legacy suite shims); the store
     * keys depend only on workload/OS/run provenance, so both
     * spellings share trace artifacts.
     */
    [[nodiscard]] std::vector<SweepResult>
    sweep(const AllocationRequest &request,
          obs::Observation *observation = nullptr,
          const SweepGrid *grid = nullptr) const;

    /** Replay stage for an existing recording: sweep @p trace over
     * the request's grid, or @p grid when given (trace_tools'
     * file-based path; bypasses the store — a bare recording carries
     * no provenance). */
    [[nodiscard]] SweepResult
    replay(const AllocationRequest &request, const RecordedTrace &trace,
           obs::Observation *observation = nullptr,
           const SweepGrid *grid = nullptr) const;

    /** sweep() + suite-average: the request's component CPI tables. */
    [[nodiscard]] ComponentCpiTables
    measure(const AllocationRequest &request,
            obs::Observation *observation = nullptr,
            const SweepGrid *grid = nullptr) const;

    /**
     * Ranking stage only, for callers that already hold (possibly
     * hand-adjusted) tables: run the request's strategy under its
     * budget/associativity knobs and return the structured top-K
     * response. answer() is measure() + rank() + codec + store.
     */
    [[nodiscard]] AllocationResponse
    rank(const AllocationRequest &request,
         const ComponentCpiTables &tables,
         obs::Observation *observation = nullptr) const;

    /** Semantic validation beyond the codec (non-empty mix and
     * grid, positive budget/references...); false sets @p error. */
    [[nodiscard]] static bool validate(const AllocationRequest &request,
                                       std::string &error);

    /** The engine's store, nullptr when storeless. */
    [[nodiscard]] const ArtifactStore *
    store() const
    {
        return _store.get();
    }

    [[nodiscard]] const QueryEngineConfig &
    config() const
    {
        return _config;
    }

  private:
    /** Simulate + encode (the leader's path; no store/dedupe). */
    [[nodiscard]] std::string
    computeAnswer(const AllocationRequest &request,
                  obs::Observation *observation) const;

    /** The dedupe table: the store's when present, else our own
     * (storeless engines still coalesce concurrent duplicates). */
    [[nodiscard]] InflightTable &
    inflightTable()
    {
        return _store != nullptr ? _store->inflight() : _inflight;
    }

    QueryEngineConfig _config;
    std::unique_ptr<ArtifactStore> _store;
    InflightTable _inflight; //!< Used only when storeless.
};

} // namespace oma::api

#endif // OMA_API_QUERY_ENGINE_HH
