file(REMOVE_RECURSE
  "CMakeFiles/oma_area.dir/access_time.cc.o"
  "CMakeFiles/oma_area.dir/access_time.cc.o.d"
  "CMakeFiles/oma_area.dir/geometry.cc.o"
  "CMakeFiles/oma_area.dir/geometry.cc.o.d"
  "CMakeFiles/oma_area.dir/mqf.cc.o"
  "CMakeFiles/oma_area.dir/mqf.cc.o.d"
  "liboma_area.a"
  "liboma_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
