/**
 * @file
 * Unit tests for the oma_lint determinism-contract rules.
 *
 * Each rule is driven against inline fixture snippets: a positive
 * case that must fire, a suppressed case that must stay silent, and a
 * clean case that must not fire. An integration test asserts the live
 * tree lints clean, so a hazard introduced anywhere in src/, tests/
 * or tools/ fails this suite as well as the CI lint job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "lint/lint.hh"
#include "tests/obs/jsonlite.hh"

namespace oma::lint
{
namespace
{

/** Count findings for @p rule in @p report. */
std::size_t
countRule(const LintReport &report, const std::string &rule)
{
    return std::size_t(std::count_if(
        report.findings.begin(), report.findings.end(),
        [&](const Finding &f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- //
// no-wallclock
// ---------------------------------------------------------------- //

TEST(LintNoWallclock, FlagsWallclockCalls)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f() {
    auto t = time(nullptr);
}
)");
    EXPECT_EQ(countRule(report, "no-wallclock"), 1u);
}

TEST(LintNoWallclock, FlagsSystemClockAndRandomDevice)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <chrono>
#include <random>
auto now() { return std::chrono::system_clock::now(); }
unsigned seed() { return std::random_device{}(); }
)");
    EXPECT_EQ(countRule(report, "no-wallclock"), 2u);
}

TEST(LintNoWallclock, SuppressionSilences)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f() {
    // oma-lint: allow(no-wallclock): boot banner only, not results
    auto t = time(nullptr);
}
)");
    EXPECT_EQ(countRule(report, "no-wallclock"), 0u);
}

TEST(LintNoWallclock, CleanCodePasses)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include "support/clock.hh"
void f() {
    auto t0 = oma::Clock::nowNs();   // the sanctioned shim
    auto elapsed_time = interval();  // 'time' inside an identifier
    auto d = wait_time(3);
}
)");
    EXPECT_EQ(countRule(report, "no-wallclock"), 0u);
}

TEST(LintNoWallclock, FlagsSteadyClockOutsideTheShim)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
)");
    EXPECT_EQ(countRule(report, "no-wallclock"), 1u);
}

TEST(LintNoWallclock, ClockShimIsTheOnlyNewExemptFile)
{
    // support/clock.hh is the single sanctioned wall-clock site
    // added alongside support/rng.hh; any sibling or copycat path
    // must still be flagged.
    const char *snippet = R"(
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
std::uint64_t g() { return clock_gettime(0, nullptr); }
)";
    EXPECT_EQ(countRule(lintBuffer("src/support/clock.hh", snippet),
                        "no-wallclock"),
              0u);
    EXPECT_EQ(countRule(lintBuffer("src/support/clock2.hh", snippet),
                        "no-wallclock"),
              2u);
    EXPECT_EQ(countRule(lintBuffer("src/obs/metrics.cc", snippet),
                        "no-wallclock"),
              2u);
}

TEST(LintNoWallclock, BenchAndRngAreExempt)
{
    const char *snippet = R"(
void f() { auto t = time(nullptr); }
)";
    EXPECT_EQ(countRule(lintBuffer("bench/bench_speed.cc", snippet),
                        "no-wallclock"),
              0u);
    EXPECT_EQ(countRule(lintBuffer("src/support/rng.hh", snippet),
                        "no-wallclock"),
              0u);
    EXPECT_EQ(countRule(lintBuffer("src/core/foo.cc", snippet),
                        "no-wallclock"),
              1u);
}

TEST(LintNoWallclock, FlagsStdRandomEnginesOutsideTheShim)
{
    // The std engines hide their seed behind a default constructor
    // and the std distributions are implementation-defined; the only
    // sanctioned wrapper is oma::MtRng (support/mt_rng.hh).
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <random>
std::mt19937 a;
std::mt19937_64 b{42};
std::default_random_engine c;
std::minstd_rand d;
)");
    EXPECT_EQ(countRule(report, "no-wallclock"), 4u);
}

TEST(LintNoWallclock, MtRngShimIsTheOnlyEngineExemptFile)
{
    const char *snippet = R"(
#include <random>
class R { std::mt19937_64 _engine; };
)";
    EXPECT_EQ(countRule(lintBuffer("src/support/mt_rng.hh", snippet),
                        "no-wallclock"),
              0u);
    EXPECT_EQ(countRule(lintBuffer("src/support/mt_rng2.hh", snippet),
                        "no-wallclock"),
              1u);
    EXPECT_EQ(countRule(lintBuffer("src/core/search_strategy.cc",
                                   snippet),
                        "no-wallclock"),
              1u);
}

// ---------------------------------------------------------------- //
// ordered-results
// ---------------------------------------------------------------- //

TEST(LintOrderedResults, FlagsRangeForOverUnordered)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <unordered_map>
#include <cstdint>
void f() {
    std::unordered_map<std::uint64_t, int> counts;
    for (const auto &kv : counts)
        emit(kv);
}
)");
    // One for the iteration; the declaration check is header-only.
    EXPECT_EQ(countRule(report, "ordered-results"), 1u);
}

TEST(LintOrderedResults, FlagsExplicitIteratorWalk)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <unordered_set>
void f() {
    std::unordered_set<int> seen;
    auto it = seen.begin();
}
)");
    EXPECT_EQ(countRule(report, "ordered-results"), 1u);
}

TEST(LintOrderedResults, HeaderDeclarationNeedsInvariant)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
#include <unordered_set>
struct S {
    std::unordered_set<int> _touched;
};
#endif
)");
    EXPECT_EQ(countRule(report, "ordered-results"), 1u);
}

TEST(LintOrderedResults, ReasonedSuppressionSilencesDeclaration)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
#include <unordered_set>
struct S {
    // oma-lint: allow(ordered-results): membership only, no iteration
    std::unordered_set<int> _touched;
};
#endif
)");
    EXPECT_EQ(countRule(report, "ordered-results"), 0u);
}

TEST(LintOrderedResults, ReasonlessSuppressionDoesNotCount)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
#include <unordered_set>
struct S {
    // oma-lint: allow(ordered-results)
    std::unordered_set<int> _touched;
};
#endif
)");
    EXPECT_EQ(countRule(report, "ordered-results"), 1u);
}

TEST(LintOrderedResults, MembershipTestIsClean)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <unordered_set>
bool f() {
    std::unordered_set<int> seen;
    return seen.find(3) != seen.end();
}
)");
    EXPECT_EQ(countRule(report, "ordered-results"), 0u);
}

TEST(LintOrderedResults, OrderedContainersAreClean)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <map>
void f() {
    std::map<int, int> counts;
    for (const auto &kv : counts)
        emit(kv);
}
)");
    EXPECT_EQ(countRule(report, "ordered-results"), 0u);
}

// ---------------------------------------------------------------- //
// header-guard
// ---------------------------------------------------------------- //

TEST(LintHeaderGuard, FlagsUnguardedHeader)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#include <cstdint>
inline int f() { return 1; }
)");
    EXPECT_EQ(countRule(report, "header-guard"), 1u);
}

TEST(LintHeaderGuard, SuppressionSilences)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
// oma-lint: allow-file(header-guard): generated single-include TU
#include <cstdint>
inline int f() { return 1; }
)");
    EXPECT_EQ(countRule(report, "header-guard"), 0u);
}

TEST(LintHeaderGuard, GuardedAndPragmaOnceAreClean)
{
    EXPECT_EQ(countRule(lintBuffer("src/core/foo.hh", R"(
#ifndef OMA_CORE_FOO_HH
#define OMA_CORE_FOO_HH
inline int f() { return 1; }
#endif
)"),
                        "header-guard"),
              0u);
    EXPECT_EQ(countRule(lintBuffer("src/core/foo.hh", R"(
#pragma once
inline int f() { return 1; }
)"),
                        "header-guard"),
              0u);
    // Sources need no guard.
    EXPECT_EQ(countRule(lintBuffer("src/core/foo.cc", "int x;\n"),
                        "header-guard"),
              0u);
}

// ---------------------------------------------------------------- //
// include-hygiene
// ---------------------------------------------------------------- //

TEST(LintIncludeHygiene, FlagsParentRelativeInclude)
{
    const auto report = lintBuffer("src/core/foo.cc",
                                   "#include \"../cache/cache.hh\"\n");
    EXPECT_EQ(countRule(report, "include-hygiene"), 1u);
}

TEST(LintIncludeHygiene, FlagsNamespaceScopeUsingInHeader)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
using namespace std;
namespace oma {
using namespace std;
}
#endif
)");
    EXPECT_EQ(countRule(report, "include-hygiene"), 2u);
}

TEST(LintIncludeHygiene, SuppressionSilences)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
// oma-lint: allow(include-hygiene)
#include "../cache/cache.hh"
)");
    EXPECT_EQ(countRule(report, "include-hygiene"), 0u);
}

TEST(LintIncludeHygiene, FunctionLocalUsingAndCleanIncludesPass)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
#include "cache/cache.hh"
#include <vector>
inline void f()
{
    using namespace std;
}
#endif
)");
    EXPECT_EQ(countRule(report, "include-hygiene"), 0u);
}

// ---------------------------------------------------------------- //
// cast-audit
// ---------------------------------------------------------------- //

TEST(LintCastAudit, FlagsUndocumentedCasts)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f(const char *p, int *q) {
    auto a = reinterpret_cast<const int *>(p);
    auto b = const_cast<int *>(q);
}
)");
    EXPECT_EQ(countRule(report, "cast-audit"), 2u);
}

TEST(LintCastAudit, InvariantStatingSuppressionSilences)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f(const unsigned char *p) {
    // oma-lint: allow(cast-audit): p points at a live int per ABI
    auto a = reinterpret_cast<const int *>(p);
}
)");
    EXPECT_EQ(countRule(report, "cast-audit"), 0u);
}

TEST(LintCastAudit, ReasonlessSuppressionDoesNotCount)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f(const unsigned char *p) {
    // oma-lint: allow(cast-audit)
    auto a = reinterpret_cast<const int *>(p);
}
)");
    EXPECT_EQ(countRule(report, "cast-audit"), 1u);
}

TEST(LintCastAudit, StaticCastIsClean)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
int f(double d) { return static_cast<int>(d); }
)");
    EXPECT_EQ(countRule(report, "cast-audit"), 0u);
}

// ---------------------------------------------------------------- //
// lock-audit
// ---------------------------------------------------------------- //

TEST(LintLockAudit, FlagsRawStdSyncTypes)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include <mutex>
struct S {
    std::mutex m;
    std::condition_variable cv;
    std::shared_mutex rw;
};
)");
    EXPECT_EQ(countRule(report, "lock-audit"), 3u);
}

TEST(LintLockAudit, FlagsNakedLockCalls)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f(Mutex &m, Mutex *p) {
    m.lock();
    m.unlock();
    bool ok = p->try_lock();
}
)");
    ASSERT_EQ(countRule(report, "lock-audit"), 3u);
    // Each finding carries a concrete remedy.
    for (const Finding &f : report.findings) {
        if (f.rule == "lock-audit")
            EXPECT_NE(f.fixit.find("LockGuard"), std::string::npos);
    }
}

TEST(LintLockAudit, SyncShimIsExempt)
{
    const auto report = lintBuffer("src/support/sync.hh", R"(
class Mutex {
    std::mutex _raw;
};
)");
    EXPECT_EQ(countRule(report, "lock-audit"), 0u);
}

TEST(LintLockAudit, OmaPrimitivesAreClean)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
#include "support/sync.hh"
void f(oma::Mutex &m, oma::CondVar &cv) {
    oma::LockGuard lock(m);
    cv.notifyOne();
}
)");
    EXPECT_EQ(countRule(report, "lock-audit"), 0u);
}

TEST(LintLockAudit, SuppressionRequiresReason)
{
    const auto reasonless = lintBuffer("src/core/foo.cc", R"(
void f(Mutex &m) {
    // oma-lint: allow(lock-audit)
    m.lock();
}
)");
    EXPECT_EQ(countRule(reasonless, "lock-audit"), 1u);
    const auto reasoned = lintBuffer("src/core/foo.cc", R"(
void f(Mutex &m) {
    // oma-lint: allow(lock-audit): adapting to a C callback ABI
    m.lock();
}
)");
    EXPECT_EQ(countRule(reasoned, "lock-audit"), 0u);
}

// ---------------------------------------------------------------- //
// guarded-member
// ---------------------------------------------------------------- //

TEST(LintGuardedMember, FlagsUnannotatedMemberOfMutexOwningClass)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
class Counter {
  private:
    mutable oma::Mutex _mutex;
    int _count = 0;
};
#endif
)");
    ASSERT_EQ(countRule(report, "guarded-member"), 1u);
    for (const Finding &f : report.findings) {
        if (f.rule == "guarded-member") {
            EXPECT_NE(f.message.find("'_count'"), std::string::npos);
            EXPECT_NE(f.fixit.find("OMA_GUARDED_BY"),
                      std::string::npos);
        }
    }
}

TEST(LintGuardedMember, AnnotatedAndImmutableMembersPass)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
class Counter {
  public:
    int value() const;
  private:
    mutable oma::Mutex _mutex;
    oma::CondVar _wake;
    int _count OMA_GUARDED_BY(_mutex) = 0;
    const std::string _name;
    static int s_instances;
};
#endif
)");
    EXPECT_EQ(countRule(report, "guarded-member"), 0u);
}

TEST(LintGuardedMember, ClassWithoutMutexIsIgnored)
{
    const auto report = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
class Plain {
    int _count = 0;
    double _mean = 0.0;
};
#endif
)");
    EXPECT_EQ(countRule(report, "guarded-member"), 0u);
}

TEST(LintGuardedMember, SuppressionRequiresReason)
{
    const auto reasonless = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
class Counter {
    oma::Mutex _mutex;
    // oma-lint: allow(guarded-member)
    int _count = 0;
};
#endif
)");
    EXPECT_EQ(countRule(reasonless, "guarded-member"), 1u);
    const auto reasoned = lintBuffer("src/core/foo.hh", R"(
#ifndef X
#define X
class Counter {
    oma::Mutex _mutex;
    // oma-lint: allow(guarded-member): written once before threads
    int _count = 0;
};
#endif
)");
    EXPECT_EQ(countRule(reasoned, "guarded-member"), 0u);
}

// ---------------------------------------------------------------- //
// shared-state
// ---------------------------------------------------------------- //

TEST(LintSharedState, FlagsMutableStaticLocal)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
int f() {
    static int calls = 0;
    return ++calls;
}
)");
    ASSERT_EQ(countRule(report, "shared-state"), 1u);
    for (const Finding &f : report.findings) {
        if (f.rule == "shared-state")
            EXPECT_NE(f.fixit.find("thread_local"),
                      std::string::npos);
    }
}

TEST(LintSharedState, FlagsNamespaceScopeGlobal)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
namespace oma {
int g_count = 0;
}
)");
    EXPECT_EQ(countRule(report, "shared-state"), 1u);
}

TEST(LintSharedState, ConstantsAndThreadLocalPass)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
namespace oma {
constexpr int kLimit = 8;
const char *kName = "x";
thread_local bool t_inside = false;
int f() {
    static const int table[] = {1, 2, 3};
    return table[0] + kLimit;
}
}
)");
    EXPECT_EQ(countRule(report, "shared-state"), 0u);
}

TEST(LintSharedState, SignatureContinuationIsNotADeclaration)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
namespace oma {
void drain(int source,
           unsigned limit = 0);
}
)");
    EXPECT_EQ(countRule(report, "shared-state"), 0u);
}

TEST(LintSharedState, BenchDriversAreExempt)
{
    const auto report = lintBuffer("bench/bench_foo.cc", R"(
static double serial_seconds = 0.0;
)");
    EXPECT_EQ(countRule(report, "shared-state"), 0u);
}

TEST(LintSharedState, SuppressionRequiresReason)
{
    const auto reasonless = lintBuffer("src/core/foo.cc", R"(
void f() {
    // oma-lint: allow(shared-state)
    static int nonce = 0;
}
)");
    EXPECT_EQ(countRule(reasonless, "shared-state"), 1u);
    const auto reasoned = lintBuffer("src/core/foo.cc", R"(
void f() {
    // oma-lint: allow(shared-state): atomic nonce, never in results
    static int nonce = 0;
}
)");
    EXPECT_EQ(countRule(reasoned, "shared-state"), 0u);
}

// ---------------------------------------------------------------- //
// scanner behaviour shared by all rules
// ---------------------------------------------------------------- //

TEST(LintScanner, CommentsAndLiteralsNeverFire)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
// reinterpret_cast in a comment, and time(nullptr) too
/* const_cast<int *>(p) inside a block comment */
const char *s = "reinterpret_cast<const int *>(p); time(nullptr);";
const char *r = R"x(const_cast<int *>(q))x";
)");
    EXPECT_TRUE(report.clean());
}

TEST(LintScanner, FixitHintsArePopulated)
{
    const auto report = lintBuffer(
        "src/core/foo.cc", "void f(int *q) { const_cast<int *>(q); }\n");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_FALSE(report.findings[0].fixit.empty());
}

TEST(LintScanner, RuleRegistryIsComplete)
{
    std::vector<std::string> names;
    for (const auto &rule : makeDefaultRules())
        names.emplace_back(rule->name());
    const std::vector<std::string> expected = {
        "no-wallclock",   "ordered-results", "header-guard",
        "include-hygiene", "cast-audit",     "lock-audit",
        "guarded-member", "shared-state"};
    EXPECT_EQ(names, expected);
}

// ---------------------------------------------------------------- //
// SARIF output
// ---------------------------------------------------------------- //

TEST(LintSarif, EmitsValidSarifWithFindings)
{
    const auto report = lintBuffer("src/core/foo.cc", R"(
void f() {
    auto t = time(nullptr);
}
)");
    ASSERT_EQ(report.findings.size(), 1u);
    std::ostringstream os;
    printSarif(report, os);
    omatest::JsonLite json;
    ASSERT_TRUE(json.parse(os.str())) << os.str();
    EXPECT_EQ(json.str("version"), "2.1.0");
    EXPECT_EQ(json.str("runs.#.tool.driver.name"), "oma_lint");
    EXPECT_EQ(json.str("runs.#.results.#.ruleId"), "no-wallclock");
    EXPECT_EQ(json.str("runs.#.results.#.level"), "error");
    EXPECT_EQ(json.str("runs.#.results.#.locations.#.physicalLocation"
                       ".artifactLocation.uri"),
              "src/core/foo.cc");
    EXPECT_EQ(json.num("runs.#.results.#.locations.#.physicalLocation"
                       ".region.startLine"),
              3.0);
    // The message carries the fixit hint.
    EXPECT_NE(json.str("runs.#.results.#.message.text").find("fix: "),
              std::string::npos);
}

TEST(LintSarif, DeclaresEveryRuleEvenWhenClean)
{
    const auto report = lintBuffer("src/core/foo.cc", "int x();\n");
    ASSERT_TRUE(report.clean());
    std::ostringstream os;
    printSarif(report, os);
    omatest::JsonLite json;
    ASSERT_TRUE(json.parse(os.str())) << os.str();
    // Arrays share one ".#" path: the recorded id is the last rule
    // emitted, proving the rules array was populated in order.
    EXPECT_EQ(json.str("runs.#.tool.driver.rules.#.id"),
              "shared-state");
    EXPECT_FALSE(json.has("runs.#.results.#.ruleId"));
}

// ---------------------------------------------------------------- //
// the live tree must lint clean
// ---------------------------------------------------------------- //

TEST(LintIntegration, LiveTreeIsClean)
{
    const std::string root = OMA_SOURCE_DIR;
    const LintReport report = lintPaths(
        {root + "/src", root + "/tests", root + "/tools",
         root + "/examples", root + "/bench"},
        root + "/src");
    for (const Finding &f : report.findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
    EXPECT_GT(report.filesScanned, 100u);
}

} // namespace
} // namespace oma::lint
