/**
 * @file
 * Implementation of the search strategies.
 */

#include "core/search_strategy.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>

#include "obs/export.hh"
#include "support/logging.hh"
#include "support/mt_rng.hh"
#include "support/rng.hh"
#include "support/threadpool.hh"

namespace oma
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

SearchSpace::SearchSpace(const ComponentCpiTables &tables,
                         const AreaModel &area, double budget_rbe,
                         std::uint64_t max_cache_ways)
    : _tables(&tables), _budget(budget_rbe), _maxWays(max_cache_ways)
{
    fatalIf(budget_rbe <= 0, "area budget must be positive");

    // Precompute areas once per distinct geometry, exactly as the
    // exhaustive enumeration always did.
    _tlbAreas.resize(tables.tlbGeoms.size());
    for (std::size_t t = 0; t < tables.tlbGeoms.size(); ++t)
        _tlbAreas[t] = area.tlbArea(tables.tlbGeoms[t]);

    // The fetch-side axis: every plain I-cache in index order, then
    // every victim-cache option (a direct-mapped L1 plus its CAM
    // buffer, costed as an alternative fetch-side organization).
    // With no victim options this list is exactly the classic
    // I-cache enumeration, so the extension-free emission order —
    // and therefore the stable-sorted ranking, ties included — is
    // unchanged from the three-component search.
    _iOptions.reserve(tables.icacheGeoms.size() +
                      tables.victimOptions.size());
    for (std::size_t i = 0; i < tables.icacheGeoms.size(); ++i) {
        if (tables.icacheGeoms[i].assoc > max_cache_ways)
            continue;
        _iOptions.push_back({i, false,
                             area.cacheArea(tables.icacheGeoms[i]),
                             tables.icacheCpi[i]});
    }
    for (std::size_t v = 0; v < tables.victimOptions.size(); ++v) {
        const VictimParams &p = tables.victimOptions[v].params;
        // Victim options bypass the max_cache_ways restriction by
        // design (the CAM buffer provides the associativity), which
        // is only sound when the L1 in front of it is direct-mapped.
        fatalIf(p.l1.assoc != 1,
                "victim-cache option wraps a set-associative L1; "
                "the victim buffer models conflict relief behind a "
                "direct-mapped array (and would silently bypass the "
                "associativity restriction otherwise)");
        const double a = area.cacheArea(p.l1) +
            area.victimBufferArea(p.entries, p.l1.lineBytes);
        _iOptions.push_back({v, true, a, tables.victimOptions[v].cpi});
    }

    // The data-side axis: eligible D-cache geometries in index order
    // (prefiltering preserves the in-loop filter's emission order).
    _dOptions.reserve(tables.dcacheGeoms.size());
    for (std::size_t d = 0; d < tables.dcacheGeoms.size(); ++d) {
        if (tables.dcacheGeoms[d].assoc > max_cache_ways)
            continue;
        _dOptions.push_back({d, area.cacheArea(tables.dcacheGeoms[d]),
                             tables.dcacheCpi[d]});
    }

    // The write-buffer axis: a single free no-op entry when depths
    // were not swept (the classic search), else one entry per depth.
    if (tables.wbOptions.empty()) {
        _wbOptions.push_back({0, 0.0, 0.0});
    } else {
        for (const auto &wb : tables.wbOptions)
            _wbOptions.push_back(
                {wb.params.entries,
                 area.writeBufferArea(wb.params.entries), wb.cpi});
    }

    // The hierarchy axis: organizations that replace the split I/D
    // pair wholesale (their L1s obey the associativity restriction).
    for (std::size_t h = 0; h < tables.hierarchyOptions.size(); ++h) {
        const HierarchyParams &p = tables.hierarchyOptions[h].params;
        p.validate(); // unified && hasL2 is contradictory
        if (p.l1i.geom.assoc > max_cache_ways ||
            (!p.unified && p.l1d.geom.assoc > max_cache_ways)) {
            continue;
        }
        double a = area.cacheArea(p.l1i.geom);
        if (!p.unified)
            a += area.cacheArea(p.l1d.geom);
        if (p.hasL2)
            a += area.cacheArea(p.l2.geom);
        _hierOptions.push_back({h, a, tables.hierarchyOptions[h].cpi});
    }

    const auto axis_min = [](const auto &options, auto proj) {
        double m = kInf;
        for (const auto &o : options)
            m = std::min(m, proj(o));
        return m;
    };
    _minTlb = axis_min(_tlbAreas, [](double a) { return a; });
    _minI = axis_min(_iOptions, [](const IOption &o) { return o.area; });
    _minD = axis_min(_dOptions, [](const DOption &o) { return o.area; });
    _minWb =
        axis_min(_wbOptions, [](const WbOption &o) { return o.area; });
    _minHier = axis_min(_hierOptions,
                        [](const HierOption &o) { return o.area; });
}

std::uint64_t
SearchSpace::candidateCount() const
{
    return std::uint64_t(_tlbAreas.size()) *
        (std::uint64_t(_iOptions.size()) * _dOptions.size() +
         _hierOptions.size()) *
        _wbOptions.size();
}

double
SearchSpace::area(const SearchCandidate &c) const
{
    if (c.hier) {
        const double th = _tlbAreas[c.tlb] + _hierOptions[c.primary].area;
        return th + _wbOptions[c.wb].area;
    }
    const double ti = _tlbAreas[c.tlb] + _iOptions[c.primary].area;
    const double tid = ti + _dOptions[c.dcache].area;
    return tid + _wbOptions[c.wb].area;
}

double
SearchSpace::cpi(const SearchCandidate &c) const
{
    const ComponentCpiTables &tb = *_tables;
    if (c.hier) {
        return tb.baseCpi + tb.tlbCpi[c.tlb] +
            _hierOptions[c.primary].cpi + _wbOptions[c.wb].cpi;
    }
    return tb.baseCpi + tb.tlbCpi[c.tlb] + _iOptions[c.primary].cpi +
        _dOptions[c.dcache].cpi + _wbOptions[c.wb].cpi;
}

Allocation
SearchSpace::materialize(const SearchCandidate &c) const
{
    const ComponentCpiTables &tb = *_tables;
    Allocation a;
    a.tlb = tb.tlbGeoms[c.tlb];
    a.tlbCpi = tb.tlbCpi[c.tlb];
    const WbOption &wb = _wbOptions[c.wb];
    a.wbEntries = wb.entries;
    a.wbCpi = wb.cpi;
    if (c.hier) {
        const HierOption &ho = _hierOptions[c.primary];
        const HierarchyParams &p = tb.hierarchyOptions[ho.index].params;
        a.icache = p.l1i.geom;
        a.dcache = p.unified ? p.l1i.geom : p.l1d.geom;
        a.hasL2 = p.hasL2 && !p.unified;
        a.unified = p.unified;
        if (a.hasL2)
            a.l2 = p.l2.geom;
        a.hierarchyCpi = ho.cpi;
    } else {
        const IOption &io = _iOptions[c.primary];
        if (io.isVictim) {
            const VictimParams &p = tb.victimOptions[io.index].params;
            a.icache = p.l1;
            a.victimEntries = p.entries;
        } else {
            a.icache = tb.icacheGeoms[io.index];
        }
        const DOption &dn = _dOptions[c.dcache];
        a.dcache = tb.dcacheGeoms[dn.index];
        a.icacheCpi = io.cpi;
        a.dcacheCpi = dn.cpi;
    }
    a.areaRbe = area(c);
    a.cpi = cpi(c);
    return a;
}

SearchResult
ExhaustiveStrategy::search(const SearchSpace &space, unsigned threads,
                           obs::Observation *observation) const
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "search/exhaustive");

    const double budget = space.budget();
    const auto &tlb_area = space.tlbAreas();
    const auto &i_options = space.iOptions();
    const auto &d_options = space.dOptions();
    const auto &wb_options = space.wbOptions();
    const auto &hier_options = space.hierOptions();
    const double min_d = space.minDArea();
    const double min_wb = space.minWbArea();
    const bool prune = _prune;

    // Score one TLB-geometry shard: exactly the serial enumeration
    // restricted to TLB index t, emitting split allocations in
    // (fetch-side, d, wb) order, then hierarchy allocations in
    // (hierarchy, wb) order. Each pruning floor extends the partial
    // area with the remaining axes' minima *in the concrete
    // accumulation order*, so the floor equals the area of the
    // cheapest candidate in the subgrid: a pruned subgrid contains
    // only candidates the budget test would reject one by one, and
    // the emitted set is identical with pruning on or off.
    struct Shard
    {
        std::vector<Allocation> out;
        std::uint64_t evals = 0;
        std::uint64_t pruned = 0;
    };
    std::vector<Shard> shards(tlb_area.size());

    const auto score_shard = [&](std::size_t t) {
        Shard &shard = shards[t];
        for (std::size_t ip = 0; ip < i_options.size(); ++ip) {
            const double ti_area = tlb_area[t] + i_options[ip].area;
            if (prune) {
                if ((ti_area + min_d) + min_wb > budget) {
                    ++shard.pruned;
                    continue;
                }
            } else if (ti_area > budget) {
                continue;
            }
            for (std::size_t dp = 0; dp < d_options.size(); ++dp) {
                const double tid_area = ti_area + d_options[dp].area;
                if (prune) {
                    if (tid_area + min_wb > budget) {
                        ++shard.pruned;
                        continue;
                    }
                } else if (tid_area > budget) {
                    continue;
                }
                for (std::size_t wp = 0; wp < wb_options.size(); ++wp) {
                    ++shard.evals;
                    const double a = tid_area + wb_options[wp].area;
                    if (a > budget)
                        continue;
                    shard.out.push_back(space.materialize(
                        SearchCandidate{false, t, ip, dp, wp}));
                }
            }
        }
        for (std::size_t hp = 0; hp < hier_options.size(); ++hp) {
            const double th_area = tlb_area[t] + hier_options[hp].area;
            if (prune) {
                if (th_area + min_wb > budget) {
                    ++shard.pruned;
                    continue;
                }
            } else if (th_area > budget) {
                continue;
            }
            for (std::size_t wp = 0; wp < wb_options.size(); ++wp) {
                ++shard.evals;
                const double a = th_area + wb_options[wp].area;
                if (a > budget)
                    continue;
                shard.out.push_back(space.materialize(
                    SearchCandidate{true, t, hp, 0, wp}));
            }
        }
    };

    // Concatenating the shards in TLB order reproduces the serial
    // (t, i, d) emission order, so the stable sort below sees the
    // same sequence — and breaks CPI ties identically — no matter
    // how many lanes scored the shards.
    parallelFor(threads, 0, shards.size(), [&](std::size_t t) {
        score_shard(t);
        if (observation != nullptr && observation->progress != nullptr)
            observation->progress->tick();
    });

    SearchResult result;
    result.candidates = space.candidateCount();
    std::size_t total = 0;
    for (const Shard &s : shards) {
        total += s.out.size();
        result.evaluations += s.evals;
        result.prunedSubspaces += s.pruned;
    }
    result.allocations.reserve(total);
    for (const Shard &s : shards)
        result.allocations.insert(result.allocations.end(),
                                  s.out.begin(), s.out.end());

    std::stable_sort(result.allocations.begin(),
                     result.allocations.end(),
                     [](const Allocation &x, const Allocation &y) {
                         return x.cpi < y.cpi;
                     });
    for (std::size_t r = 0; r < result.allocations.size(); ++r)
        result.allocations[r].rank = r + 1;

    if (observation != nullptr) {
        obs::MetricRegistry &m = observation->metrics;
        m.add("search/shards", shards.size());
        m.add("search/candidates", result.candidates);
        m.add("search/evaluations", result.evaluations);
        m.add("search/pruned_subspaces", result.prunedSubspaces);
        m.add("search/in_budget", result.allocations.size());
        obs::exportRanking(m, result.allocations);
    }
    return result;
}

// ---------------------------------------------------------------------
// Simulated annealing
// ---------------------------------------------------------------------

namespace
{

/** (capacity bytes, line bytes, ways) of a cache-like option. */
using GeomKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

/** One axis's live (not floor-pruned) option positions. */
struct AxisLive
{
    std::vector<std::size_t> list;
    std::vector<char> mask;

    void
    init(std::size_t n)
    {
        mask.assign(n, 0);
    }

    void
    add(std::size_t pos, bool is_live)
    {
        mask[pos] = is_live ? 1 : 0;
        if (is_live)
            list.push_back(pos);
    }
};

/**
 * Neighbourhood structure of a SearchSpace: per-axis live lists
 * (options whose cheapest completion fits the budget; the rest are
 * pruned from the proposal distribution up front) and geometry-keyed
 * lookups so typed mutations can find "the same cache one capacity
 * step up" in O(log n). All grids are powers of two, so doubling /
 * halving a dimension lands exactly on the neighbouring option when
 * it exists.
 */
struct NeighborIndex
{
    AxisLive t, i, d, w, h;
    std::map<GeomKey, std::size_t> plainI;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t>
        victimI; //!< (L1 capacity, buffer entries) -> i position.
    std::map<GeomKey, std::size_t> dByGeom;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t>
        tlbByKey; //!< (entries, ways; 0 = fully assoc) -> t.
    std::map<std::uint64_t, std::vector<std::size_t>>
        victimsByCap; //!< capacity -> live victim i positions.
    std::uint64_t pruned = 0; //!< Dead options across all axes.
    bool feasible = false;    //!< Some candidate fits the budget.
};

NeighborIndex
buildIndex(const SearchSpace &s)
{
    NeighborIndex n;
    const ComponentCpiTables &tb = s.tables();
    const double budget = s.budget();
    const double min_t = s.minTlbArea();
    const double min_i = s.minIArea();
    const double min_d = s.minDArea();
    const double min_wb = s.minWbArea();
    const double min_h = s.minHierArea();

    // Every floor below is the area of a concrete candidate
    // (accumulated in the evaluation order with the other axes at
    // their minima), so "floor > budget" proves every candidate
    // containing the option is over budget.
    const auto &tlb_areas = s.tlbAreas();
    n.t.init(tlb_areas.size());
    for (std::size_t t = 0; t < tlb_areas.size(); ++t) {
        const double split = ((tlb_areas[t] + min_i) + min_d) + min_wb;
        const double hier = (tlb_areas[t] + min_h) + min_wb;
        const bool live = split <= budget || hier <= budget;
        n.t.add(t, live);
        n.pruned += !live;
        n.feasible = n.feasible || live;
        const TlbGeometry &g = tb.tlbGeoms[t];
        n.tlbByKey[{g.entries, g.assoc}] = t;
    }

    const auto &iops = s.iOptions();
    n.i.init(iops.size());
    for (std::size_t ip = 0; ip < iops.size(); ++ip) {
        const SearchSpace::IOption &io = iops[ip];
        const bool live =
            ((min_t + io.area) + min_d) + min_wb <= budget;
        n.i.add(ip, live);
        n.pruned += !live;
        if (io.isVictim) {
            const VictimParams &p = tb.victimOptions[io.index].params;
            n.victimI[{p.l1.capacityBytes, p.entries}] = ip;
            if (live)
                n.victimsByCap[p.l1.capacityBytes].push_back(ip);
        } else {
            const CacheGeometry &g = tb.icacheGeoms[io.index];
            n.plainI[{g.capacityBytes, g.lineBytes, g.assoc}] = ip;
        }
    }

    const auto &dops = s.dOptions();
    n.d.init(dops.size());
    for (std::size_t dp = 0; dp < dops.size(); ++dp) {
        const bool live =
            ((min_t + min_i) + dops[dp].area) + min_wb <= budget;
        n.d.add(dp, live);
        n.pruned += !live;
        const CacheGeometry &g = tb.dcacheGeoms[dops[dp].index];
        n.dByGeom[{g.capacityBytes, g.lineBytes, g.assoc}] = dp;
    }

    const auto &wops = s.wbOptions();
    n.w.init(wops.size());
    for (std::size_t wp = 0; wp < wops.size(); ++wp) {
        const double split =
            ((min_t + min_i) + min_d) + wops[wp].area;
        const double hier = (min_t + min_h) + wops[wp].area;
        const bool live = split <= budget || hier <= budget;
        n.w.add(wp, live);
        n.pruned += !live;
    }

    const auto &hops = s.hierOptions();
    n.h.init(hops.size());
    for (std::size_t hp = 0; hp < hops.size(); ++hp) {
        const bool live = (min_t + hops[hp].area) + min_wb <= budget;
        n.h.add(hp, live);
        n.pruned += !live;
    }

    return n;
}

/** Cache-like shape of a fetch-side option. */
struct FetchShape
{
    std::uint64_t cap;
    std::uint64_t line;
    std::uint64_t assoc;
    bool isVictim;
    std::uint64_t entries;
};

FetchShape
fetchShape(const SearchSpace &s, std::size_t ip)
{
    const SearchSpace::IOption &io = s.iOptions()[ip];
    if (io.isVictim) {
        const VictimParams &p =
            s.tables().victimOptions[io.index].params;
        return {p.l1.capacityBytes, p.l1.lineBytes, 1, true,
                p.entries};
    }
    const CacheGeometry &g = s.tables().icacheGeoms[io.index];
    return {g.capacityBytes, g.lineBytes, g.assoc, false, 0};
}

template <typename Map, typename Key>
std::optional<std::size_t>
lookupLive(const Map &m, const Key &key, const std::vector<char> &mask)
{
    const auto it = m.find(key);
    if (it == m.end() || !mask[it->second])
        return std::nullopt;
    return it->second;
}

/** Raw position step (+/-1) gated by the axis's live mask. */
std::optional<std::size_t>
stepLive(std::size_t pos, bool up, const std::vector<char> &mask)
{
    if (up ? pos + 1 >= mask.size() : pos == 0)
        return std::nullopt;
    const std::size_t np = up ? pos + 1 : pos - 1;
    if (!mask[np])
        return std::nullopt;
    return np;
}

/**
 * Propose one typed mutation of @p cur. Returns nullopt when the
 * drawn operator does not apply (e.g. a ways step on a victim
 * option) or its target is absent / floor-pruned; the caller simply
 * moves to the next iteration without spending an evaluation.
 */
std::optional<SearchCandidate>
propose(const SearchCandidate &cur, const SearchSpace &s,
        const NeighborIndex &n, MtRng &rng)
{
    SearchCandidate c = cur;
    switch (rng.below(8)) {
    case 0: { // grow/shrink a primary capacity
        const bool up = rng.below(2) == 1;
        if (cur.hier) {
            // Hierarchy options are enumerated capacity-major, so
            // the adjacent option is the neighbouring organization.
            const auto np = stepLive(cur.primary, up, n.h.mask);
            if (!np)
                return std::nullopt;
            c.primary = *np;
            return c;
        }
        if (rng.below(2) == 0) {
            const FetchShape f = fetchShape(s, cur.primary);
            const std::uint64_t cap = up ? f.cap * 2 : f.cap / 2;
            const auto np = f.isVictim
                ? lookupLive(n.victimI,
                             std::make_pair(cap, f.entries), n.i.mask)
                : lookupLive(n.plainI,
                             GeomKey{cap, f.line, f.assoc}, n.i.mask);
            if (!np)
                return std::nullopt;
            c.primary = *np;
        } else {
            const CacheGeometry &g =
                s.tables().dcacheGeoms[s.dOptions()[cur.dcache].index];
            const std::uint64_t cap =
                up ? g.capacityBytes * 2 : g.capacityBytes / 2;
            const auto np = lookupLive(
                n.dByGeom, GeomKey{cap, g.lineBytes, g.assoc},
                n.d.mask);
            if (!np)
                return std::nullopt;
            c.dcache = *np;
        }
        return c;
    }
    case 1: { // step a line size
        if (cur.hier)
            return std::nullopt;
        const bool up = rng.below(2) == 1;
        if (rng.below(2) == 0) {
            const FetchShape f = fetchShape(s, cur.primary);
            if (f.isVictim)
                return std::nullopt; // victim L1 line is fixed
            const std::uint64_t line = up ? f.line * 2 : f.line / 2;
            const auto np = lookupLive(
                n.plainI, GeomKey{f.cap, line, f.assoc}, n.i.mask);
            if (!np)
                return std::nullopt;
            c.primary = *np;
        } else {
            const CacheGeometry &g =
                s.tables().dcacheGeoms[s.dOptions()[cur.dcache].index];
            const std::uint64_t line =
                up ? g.lineBytes * 2 : g.lineBytes / 2;
            const auto np = lookupLive(
                n.dByGeom, GeomKey{g.capacityBytes, line, g.assoc},
                n.d.mask);
            if (!np)
                return std::nullopt;
            c.dcache = *np;
        }
        return c;
    }
    case 2: { // step an associativity
        if (cur.hier)
            return std::nullopt;
        const bool up = rng.below(2) == 1;
        if (rng.below(2) == 0) {
            const FetchShape f = fetchShape(s, cur.primary);
            if (f.isVictim)
                return std::nullopt; // must stay direct-mapped
            const std::uint64_t ways = up ? f.assoc * 2 : f.assoc / 2;
            if (ways == 0)
                return std::nullopt;
            const auto np = lookupLive(
                n.plainI, GeomKey{f.cap, f.line, ways}, n.i.mask);
            if (!np)
                return std::nullopt;
            c.primary = *np;
        } else {
            const CacheGeometry &g =
                s.tables().dcacheGeoms[s.dOptions()[cur.dcache].index];
            const std::uint64_t ways = up ? g.assoc * 2 : g.assoc / 2;
            if (ways == 0)
                return std::nullopt;
            const auto np = lookupLive(
                n.dByGeom, GeomKey{g.capacityBytes, g.lineBytes, ways},
                n.d.mask);
            if (!np)
                return std::nullopt;
            c.dcache = *np;
        }
        return c;
    }
    case 3: { // step the TLB
        const TlbGeometry &g = s.tables().tlbGeoms[cur.tlb];
        const bool up = rng.below(2) == 1;
        if (rng.below(2) == 0) {
            const std::uint64_t entries =
                up ? g.entries * 2 : g.entries / 2;
            const auto np = lookupLive(
                n.tlbByKey, std::make_pair(entries, g.assoc),
                n.t.mask);
            if (!np)
                return std::nullopt;
            c.tlb = *np;
        } else {
            if (g.assoc == 0)
                return std::nullopt; // fully associative: no ways axis
            const std::uint64_t ways = up ? g.assoc * 2 : g.assoc / 2;
            if (ways == 0)
                return std::nullopt;
            const auto np = lookupLive(
                n.tlbByKey, std::make_pair(g.entries, ways), n.t.mask);
            if (!np)
                return std::nullopt;
            c.tlb = *np;
        }
        return c;
    }
    case 4: { // step the write-buffer depth
        const auto np =
            stepLive(cur.wb, rng.below(2) == 1, n.w.mask);
        if (!np)
            return std::nullopt;
        c.wb = *np;
        return c;
    }
    case 5: { // toggle the victim-buffer axis
        if (cur.hier)
            return std::nullopt;
        const FetchShape f = fetchShape(s, cur.primary);
        if (f.isVictim) {
            const auto np = lookupLive(
                n.plainI, GeomKey{f.cap, f.line, 1}, n.i.mask);
            if (!np)
                return std::nullopt;
            c.primary = *np;
            return c;
        }
        if (f.assoc != 1)
            return std::nullopt; // victim relief is for direct-mapped
        const auto it = n.victimsByCap.find(f.cap);
        if (it == n.victimsByCap.end() || it->second.empty())
            return std::nullopt;
        c.primary = it->second[rng.below(it->second.size())];
        return c;
    }
    case 6: { // swap the organization kind
        if (cur.hier) {
            if (n.i.list.empty() || n.d.list.empty())
                return std::nullopt;
            c.hier = false;
            c.primary = n.i.list[rng.below(n.i.list.size())];
            c.dcache = n.d.list[rng.below(n.d.list.size())];
            return c;
        }
        if (n.h.list.empty())
            return std::nullopt;
        c.hier = true;
        c.primary = n.h.list[rng.below(n.h.list.size())];
        c.dcache = 0;
        return c;
    }
    default: { // jump: re-sample one axis uniformly
        switch (rng.below(4)) {
        case 0:
            if (n.t.list.empty())
                return std::nullopt;
            c.tlb = n.t.list[rng.below(n.t.list.size())];
            return c;
        case 1:
            if (cur.hier) {
                if (n.h.list.empty())
                    return std::nullopt;
                c.primary = n.h.list[rng.below(n.h.list.size())];
            } else {
                if (n.i.list.empty())
                    return std::nullopt;
                c.primary = n.i.list[rng.below(n.i.list.size())];
            }
            return c;
        case 2:
            if (cur.hier || n.d.list.empty())
                return std::nullopt;
            c.dcache = n.d.list[rng.below(n.d.list.size())];
            return c;
        default:
            if (n.w.list.empty())
                return std::nullopt;
            c.wb = n.w.list[rng.below(n.w.list.size())];
            return c;
        }
    }
    }
}

struct ChainOutcome
{
    bool found = false;
    SearchCandidate best{};
    double bestCpi = 0.0;
    std::uint64_t evals = 0;
};

/** Smallest-area element of a live list under @p proj. */
template <typename Proj>
std::optional<std::size_t>
argminLive(const std::vector<std::size_t> &live, Proj proj)
{
    std::optional<std::size_t> best;
    double best_area = kInf;
    for (std::size_t pos : live) {
        const double a = proj(pos);
        if (a < best_area) {
            best_area = a;
            best = pos;
        }
    }
    return best;
}

ChainOutcome
runChain(const SearchSpace &s, const NeighborIndex &n,
         const AnnealingConfig &cfg, std::uint64_t seed)
{
    ChainOutcome out;
    MtRng rng(seed);
    const double budget = s.budget();
    const bool can_split = !n.i.list.empty() && !n.d.list.empty();
    const bool can_hier = !n.h.list.empty();
    if (n.t.list.empty() || n.w.list.empty() ||
        (!can_split && !can_hier)) {
        return out;
    }

    // Start from a random feasible candidate; fall back to the
    // cheapest-area candidate (which the liveness analysis proved
    // feasible) if random sampling keeps landing over budget.
    SearchCandidate cur;
    bool have = false;
    for (int attempt = 0; attempt < 64 && !have; ++attempt) {
        SearchCandidate c;
        c.tlb = n.t.list[rng.below(n.t.list.size())];
        c.wb = n.w.list[rng.below(n.w.list.size())];
        std::size_t k = 0;
        if (can_split && can_hier)
            k = rng.below(n.i.list.size() + n.h.list.size());
        else if (can_hier)
            k = n.i.list.size();
        if (k < n.i.list.size()) {
            c.hier = false;
            c.primary = n.i.list[k];
            c.dcache = n.d.list[rng.below(n.d.list.size())];
        } else {
            c.hier = true;
            c.primary = n.h.list[k - n.i.list.size()];
        }
        ++out.evals;
        if (s.area(c) <= budget) {
            cur = c;
            have = true;
        }
    }
    if (!have) {
        SearchCandidate c;
        const auto t = argminLive(n.t.list, [&](std::size_t p) {
            return s.tlbAreas()[p];
        });
        const auto w = argminLive(n.w.list, [&](std::size_t p) {
            return s.wbOptions()[p].area;
        });
        c.tlb = *t;
        c.wb = *w;
        const auto i = argminLive(n.i.list, [&](std::size_t p) {
            return s.iOptions()[p].area;
        });
        const auto d = argminLive(n.d.list, [&](std::size_t p) {
            return s.dOptions()[p].area;
        });
        const auto h = argminLive(n.h.list, [&](std::size_t p) {
            return s.hierOptions()[p].area;
        });
        for (int org = 0; org < 2 && !have; ++org) {
            if (org == 0 && can_split) {
                c.hier = false;
                c.primary = *i;
                c.dcache = *d;
            } else if (org == 1 && can_hier) {
                c.hier = true;
                c.primary = *h;
                c.dcache = 0;
            } else {
                continue;
            }
            ++out.evals;
            if (s.area(c) <= budget) {
                cur = c;
                have = true;
            }
        }
        if (!have)
            return out;
    }

    double cur_cpi = s.cpi(cur);
    out.found = true;
    out.best = cur;
    out.bestCpi = cur_cpi;

    const double t0 = cfg.initialTemp;
    const double t1 = cfg.finalTemp;
    for (std::uint64_t it = 0; it < cfg.iterations; ++it) {
        const double frac = cfg.iterations <= 1
            ? 1.0
            : double(it) / double(cfg.iterations - 1);
        const double temp = t0 * std::pow(t1 / t0, frac);
        const auto prop = propose(cur, s, n, rng);
        if (!prop)
            continue;
        ++out.evals;
        if (s.area(*prop) > budget)
            continue;
        const double cpi = s.cpi(*prop);
        const double delta = cpi - cur_cpi;
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
            cur = *prop;
            cur_cpi = cpi;
            if (cur_cpi < out.bestCpi) {
                out.best = cur;
                out.bestCpi = cur_cpi;
            }
        }
    }
    return out;
}

/**
 * Deterministic coordinate-descent polish: sweep whole axes from the
 * merged best candidate, keeping any strict improvement, until a
 * full round changes nothing. No randomness — the polished result
 * is a pure function of its starting point.
 */
void
polish(const SearchSpace &s, const NeighborIndex &n,
       SearchCandidate &best, double &best_cpi, std::uint64_t &evals)
{
    const double budget = s.budget();
    bool improved = true;
    const auto consider = [&](const SearchCandidate &c) {
        ++evals;
        if (s.area(c) > budget)
            return;
        const double cpi = s.cpi(c);
        if (cpi < best_cpi) {
            best = c;
            best_cpi = cpi;
            improved = true;
        }
    };
    while (improved) {
        improved = false;
        for (std::size_t t : n.t.list) {
            SearchCandidate c = best;
            c.tlb = t;
            consider(c);
        }
        for (std::size_t w : n.w.list) {
            SearchCandidate c = best;
            c.wb = w;
            consider(c);
        }
        for (std::size_t h : n.h.list) {
            SearchCandidate c = best;
            c.hier = true;
            c.primary = h;
            c.dcache = 0;
            consider(c);
        }
        if (!best.hier) {
            for (std::size_t i : n.i.list) {
                SearchCandidate c = best;
                c.primary = i;
                consider(c);
            }
            for (std::size_t d : n.d.list) {
                SearchCandidate c = best;
                c.dcache = d;
                consider(c);
            }
        }
    }
}

} // namespace

SearchResult
AnnealingStrategy::search(const SearchSpace &space, unsigned threads,
                          obs::Observation *observation) const
{
    std::unique_ptr<obs::Span> span;
    if (observation != nullptr)
        span = std::make_unique<obs::Span>(observation->metrics,
                                           "search/annealing");

    SearchResult result;
    result.candidates = space.candidateCount();
    const NeighborIndex index = buildIndex(space);
    result.prunedSubspaces = index.pruned;

    if (index.feasible) {
        // Independent restart chains with mix64-derived seeds, run
        // in parallel and merged in chain order: the winner is a
        // pure function of the root seed, not of the thread count.
        const unsigned chains = std::max(1u, _config.chains);
        std::vector<ChainOutcome> outcomes(chains);
        parallelFor(threads, 0, chains, [&](std::size_t c) {
            const std::uint64_t chain_seed =
                mix64(_config.seed ^ mix64(c + 1));
            outcomes[c] = runChain(space, index, _config, chain_seed);
            if (observation != nullptr &&
                observation->progress != nullptr)
                observation->progress->tick();
        });

        bool found = false;
        SearchCandidate best{};
        double best_cpi = 0.0;
        for (const ChainOutcome &o : outcomes) {
            result.evaluations += o.evals;
            if (o.found && (!found || o.bestCpi < best_cpi)) {
                found = true;
                best = o.best;
                best_cpi = o.bestCpi;
            }
        }
        if (found) {
            polish(space, index, best, best_cpi, result.evaluations);
            Allocation a = space.materialize(best);
            a.rank = 1;
            result.allocations.push_back(a);
        }
    }

    if (observation != nullptr) {
        obs::MetricRegistry &m = observation->metrics;
        m.add("search/candidates", result.candidates);
        m.add("search/evaluations", result.evaluations);
        m.add("search/pruned_subspaces", result.prunedSubspaces);
        obs::exportRanking(m, result.allocations);
    }
    return result;
}

} // namespace oma
