/**
 * @file
 * Content-addressed on-disk artifact store.
 *
 * Re-recording the same workload/OS reference stream on every run is
 * the dominant cost of a cold sweep, and a killed long sweep used to
 * lose every completed replay shard. The store removes both costs:
 * any artifact whose complete provenance fits in a Fingerprint (a
 * recorded trace, one replay shard's counters) can be saved under
 * that fingerprint and transparently reloaded by a later run with the
 * identical configuration.
 *
 * Design rules, in order of importance:
 *
 * * *Correctness over reuse.* Every entry carries its full canonical
 *   key text and a payload checksum. A load whose stored key text
 *   does not byte-match the requested key (hash collision), whose
 *   checksum fails, or whose framing is truncated is quarantined
 *   (renamed to `<entry>.corrupt`) and reported as a miss, so the
 *   caller falls back to live simulation — never to wrong data.
 *
 * * *Atomic publication.* Writers stream into a private temp file in
 *   the store directory and rename() it over the final path, so a
 *   reader (or a concurrent writer racing on the same key) only ever
 *   observes complete entries. Both sides of a same-key race write
 *   the same bytes, so last-rename-wins is harmless.
 *
 * * *Off by default.* A store only exists when RunConfig::storeDir or
 *   the OMA_STORE_DIR environment variable names a directory; open()
 *   returns nullptr otherwise and every engine falls back to the
 *   live path.
 *
 * Entries are per-machine caches, not an interchange format: payload
 * integers are stored in host byte order. The trace-format version
 * and a store schema version are part of every fingerprint, so
 * format changes age old entries into misses instead of misreads.
 */

#ifndef OMA_STORE_STORE_HH
#define OMA_STORE_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "support/deprecated.hh"
#include "support/fingerprint.hh"
#include "support/sync.hh"

namespace oma
{

/** Running event counters of one ArtifactStore instance. */
struct StoreStatsSnapshot
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    std::uint64_t quarantined = 0;
};

/** One in-flight computation's shared state (InflightTable detail;
 * every field is guarded by the owning table's mutex). */
struct InflightEntry
{
    bool done = false;
    bool abandoned = false;
    std::string payload;
};

/**
 * In-process coalescing of concurrent identical computations.
 *
 * The on-disk store deduplicates *completed* work across processes;
 * this table deduplicates *in-flight* work across threads: the first
 * thread to join() a key becomes the leader and computes, every
 * concurrent joiner blocks until the leader publishes and then
 * carries the identical payload away — so N simultaneous identical
 * queries cost one simulation (`serve/dedup_hits` counts the
 * followers). Keys are the same canonical Fingerprints the store
 * uses; both sides compare full key text, never just the hash.
 *
 * Concurrency contract (docs/STATIC_ANALYSIS.md): the single mutex
 * (rank lockrank::storeInflight) guards the key map and is held only
 * for map bookkeeping and the publication wait — never while the
 * leader computes or touches the store, so leaders of distinct keys
 * proceed in parallel. A leader that unwinds without publishing
 * abandons the entry and one waiting follower retakes leadership,
 * so an error path never strands waiters.
 */
class InflightTable
{
  public:
    /**
     * RAII claim on one key's computation. Exactly one live lease
     * per key is the leader; it must publish() its payload (followers
     * then observe it) or let the lease unwind, which wakes the
     * followers to retake leadership.
     */
    class Lease
    {
      public:
        Lease(Lease &&other) noexcept { *this = std::move(other); }
        Lease &
        operator=(Lease &&other) noexcept
        {
            _table = other._table;
            _key = std::move(other._key);
            _entry = std::move(other._entry);
            _leader = other._leader;
            _published = other._published;
            other._table = nullptr;
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease();

        /** True when this caller must compute (and then publish). */
        [[nodiscard]] bool leader() const { return _leader; }

        /** The leader's published payload; followers only. */
        [[nodiscard]] const std::string &payload() const;

        /** Leader only: hand @p payload to every waiting follower
         * and retire the key (later joiners start fresh — with a
         * store in front they hit warm instead). */
        void publish(std::string payload);

      private:
        friend class InflightTable;
        Lease() = default;

        InflightTable *_table = nullptr;
        std::string _key;
        std::shared_ptr<InflightEntry> _entry;
        bool _leader = false;
        bool _published = false;
    };

    /**
     * Join the computation keyed by @p key: returns a leader lease
     * immediately when no identical computation is running, else
     * blocks until the running one publishes (or abandons) and
     * returns a follower lease carrying the published payload.
     */
    [[nodiscard]] Lease join(const Fingerprint &key);

  private:
    friend class Lease;

    /** Guards the in-flight key map; held for bookkeeping and the
     * publication wait only, never across compute or store I/O. */
    mutable Mutex _mutex{OMA_LOCK_RANK(lockrank::storeInflight)};
    CondVar _published;
    std::map<std::string, std::shared_ptr<InflightEntry>>
        _inflight OMA_GUARDED_BY(_mutex);
};

/** A content-addressed artifact cache rooted at one directory. */
class ArtifactStore
{
  public:
    /** Version of the on-disk entry framing; fingerprinted into every
     * key, so bumping it invalidates all old entries at once. */
    static constexpr std::uint32_t formatVersion = 1;

    /** Open the store rooted at @p root, creating directories as
     * needed (fatal when the root cannot be created). */
    explicit ArtifactStore(std::string root);

    /**
     * Store-or-nothing policy knob: open the store at
     * @p configured_dir when non-empty, else at $OMA_STORE_DIR when
     * set and non-empty, else return nullptr (store disabled).
     */
    [[nodiscard]] static std::unique_ptr<ArtifactStore>
    open(const std::string &configured_dir);

    /**
     * Fetch the payload stored under @p key into @p payload.
     *
     * @retval true on a verified hit (key text matched byte-for-byte
     *         and the payload checksum held).
     * @retval false on a miss — including a corrupt or mismatched
     *         entry, which is quarantined first.
     */
    [[nodiscard]] bool get(const Fingerprint &key,
                           std::string &payload) const;

    /** Publish @p payload under @p key (atomic temp-file+rename). */
    void put(const Fingerprint &key, std::string_view payload) const;

    /**
     * This store's in-process duplicate-computation coalescer. The
     * table is in-memory per store instance (the cross-process
     * analogue is the warm get() path), exposed here so engines need
     * no side channel: the narrow get/put/inflight triple is the
     * whole public surface of the store.
     */
    [[nodiscard]] InflightTable &
    inflight() const
    {
        return _inflightTable;
    }

    /** @deprecated Legacy spelling of get(). */
    OMA_DEPRECATED("use ArtifactStore::get()")
    [[nodiscard]] bool
    load(const Fingerprint &key, std::string &payload) const
    {
        return get(key, payload);
    }

    /** @deprecated Legacy spelling of put(). */
    OMA_DEPRECATED("use ArtifactStore::put()")
    void
    save(const Fingerprint &key, std::string_view payload) const
    {
        put(key, payload);
    }

    /** Absolute path an entry for @p key lives at. */
    [[nodiscard]] std::string entryPath(const Fingerprint &key) const;

    [[nodiscard]] const std::string &root() const { return _root; }

    /** Consistent snapshot of the hit/miss/write/quarantine
     * counters: all four are read under one lock, so concurrent
     * readers never observe a torn cross-counter state. */
    [[nodiscard]] StoreStatsSnapshot
    stats() const
    {
        LockGuard lock(_statsMutex);
        return _stats;
    }

    /**
     * Write one complete entry file (header + key text + payload) to
     * @p path, fatal on any I/O failure — the building block save()
     * aims at a temp file, exposed so the disk-full path is directly
     * death-testable (tests/store/test_store.cc, /dev/full).
     */
    static void writeEntryFile(const std::string &path,
                               std::string_view key_text,
                               std::string_view payload);

  private:
    /** Move a bad entry aside so it cannot be re-read, then count it. */
    void quarantine(const std::string &path) const;

    /** Add @p delta to counter member @p counter (e.g.
     * `&StoreStatsSnapshot::hits`) under the stats lock. */
    void bump(std::uint64_t StoreStatsSnapshot::*counter,
              std::uint64_t delta = 1) const;

    const std::string _root; //!< Immutable after construction.

    /** Protects the event counters; never held across I/O or any
     * call out of the store (rank table in sync.hh). */
    mutable Mutex _statsMutex{OMA_LOCK_RANK(lockrank::storeStats)};
    mutable StoreStatsSnapshot _stats OMA_GUARDED_BY(_statsMutex);

    /** Owns its own locking (see InflightTable). */
    mutable InflightTable _inflightTable;
};

} // namespace oma

#endif // OMA_STORE_STORE_HH
