/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates:
 * cache access, TLB/MMU translation, Cheetah stack simulation, the
 * synthetic trace generator, and a full machine step. The paper's
 * methodology contrast — kernel-based simulation at millions of
 * references per second vs trace-driven at tens of thousands — is
 * mirrored by the Tapeworm-vs-bank comparison here.
 */

#include <benchmark/benchmark.h>

#include "cache/bank.hh"
#include "cache/cheetah.hh"
#include "core/search.hh"
#include "machine/machine.hh"
#include "tlb/tapeworm.hh"
#include "workload/system.hh"

using namespace oma;

namespace
{

std::vector<MemRef>
sampleTrace(std::uint64_t n)
{
    static std::vector<MemRef> trace;
    if (trace.size() < n) {
        System system(benchmarkParams(BenchmarkId::Mpeg),
                      OsKind::Mach, 42);
        trace.resize(n);
        for (auto &ref : trace)
            system.next(ref);
    }
    return {trace.begin(), trace.begin() + n};
}

void
BM_CacheAccess(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 18);
    CacheParams p;
    p.geom = CacheGeometry::fromWords(std::uint64_t(state.range(0)),
                                      4, std::uint64_t(state.range(1)));
    Cache cache(p);
    std::size_t i = 0;
    for (auto _ : state) {
        const MemRef &ref = trace[i++ & (trace.size() - 1)];
        benchmark::DoNotOptimize(cache.access(ref.paddr, ref.kind));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)
    ->Args({8 * 1024, 1})
    ->Args({8 * 1024, 8})
    ->Args({32 * 1024, 2});

void
BM_CacheBank120Configs(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 16);
    ConfigSpace space;
    CacheBank bank;
    for (const auto &geom : space.cacheGeometries()) {
        CacheParams p;
        p.geom = geom;
        bank.add(p);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const MemRef &ref = trace[i++ & (trace.size() - 1)];
        bank.access(ref.paddr, ref.kind);
    }
    state.SetItemsProcessed(state.iterations() * bank.size());
}
BENCHMARK(BM_CacheBank120Configs);

void
BM_MmuTranslate(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 18);
    TlbParams p;
    p.geom = TlbGeometry::fullyAssoc(64);
    Mmu mmu(p, TlbPenalties());
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mmu.translate(trace[i++ & (trace.size() - 1)]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MmuTranslate);

void
BM_FaTlbSweepAllSizes(benchmark::State &state)
{
    // One pass, every FA TLB size up to 512 — the Tapeworm trick.
    const auto trace = sampleTrace(1 << 18);
    FaTlbSweep sweep(512);
    std::size_t i = 0;
    for (auto _ : state)
        sweep.observe(trace[i++ & (trace.size() - 1)]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaTlbSweepAllSizes);

void
BM_CheetahAllAssoc(benchmark::State &state)
{
    const auto trace = sampleTrace(1 << 18);
    Cheetah cheetah(128, 16, 8);
    std::size_t i = 0;
    for (auto _ : state)
        cheetah.access(trace[i++ & (trace.size() - 1)].paddr);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheetahAllAssoc);

void
BM_TraceGeneration(benchmark::State &state)
{
    System system(benchmarkParams(BenchmarkId::Mpeg),
                  state.range(0) ? OsKind::Mach : OsKind::Ultrix, 42);
    MemRef ref;
    for (auto _ : state) {
        system.next(ref);
        benchmark::DoNotOptimize(ref);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration)->Arg(0)->Arg(1);

void
BM_FullMachineStep(benchmark::State &state)
{
    System system(benchmarkParams(BenchmarkId::Mpeg), OsKind::Mach,
                  42);
    Machine machine(MachineParams::decstation3100());
    MemRef ref;
    for (auto _ : state) {
        system.next(ref);
        machine.observe(ref);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullMachineStep);

} // namespace

BENCHMARK_MAIN();
