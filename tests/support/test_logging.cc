/**
 * @file
 * Tests for the error-reporting helpers (fatal/panic semantics).
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace oma
{
namespace
{

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("user mistake"), testing::ExitedWithCode(1),
                "user mistake");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("library bug"), "library bug");
}

TEST(LoggingDeath, FatalIfTriggersOnlyWhenTrue)
{
    fatalIf(false, "must not fire");
    EXPECT_EXIT(fatalIf(true, "condition met"),
                testing::ExitedWithCode(1), "condition met");
}

TEST(LoggingDeath, PanicIfTriggersOnlyWhenTrue)
{
    panicIf(false, "must not fire");
    EXPECT_DEATH(panicIf(true, "invariant broken"),
                 "invariant broken");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning");
    inform("just a note");
    SUCCEED();
}

} // namespace
} // namespace oma
