/**
 * @file
 * Scanner, suppression parsing and driver for oma_lint.
 */

#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace fs = std::filesystem;

namespace oma::lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::string>
splitLines(std::string_view content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= content.size()) {
        const std::size_t nl = content.find('\n', start);
        if (nl == std::string_view::npos) {
            lines.emplace_back(content.substr(start));
            break;
        }
        lines.emplace_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/**
 * Blank comments and string/char literals (preserving column
 * positions) so token scans never fire on prose or literal text.
 * Handles // and block comments, escaped quotes, and multi-line raw
 * strings R"delim(...)delim".
 */
std::vector<std::string>
stripCommentsAndLiterals(const std::vector<std::string> &raw)
{
    enum class State
    {
        Code,
        BlockComment,
        RawString,
    };
    std::vector<std::string> out;
    out.reserve(raw.size());
    State state = State::Code;
    std::string rawTerm; //!< ")delim\"" ending the active raw string.

    for (const std::string &line : raw) {
        std::string code(line.size(), ' ');
        std::size_t i = 0;
        while (i < line.size()) {
            if (state == State::BlockComment) {
                const std::size_t close = line.find("*/", i);
                if (close == std::string::npos) {
                    i = line.size();
                } else {
                    i = close + 2;
                    state = State::Code;
                }
                continue;
            }
            if (state == State::RawString) {
                const std::size_t close = line.find(rawTerm, i);
                if (close == std::string::npos) {
                    i = line.size();
                } else {
                    i = close + rawTerm.size();
                    state = State::Code;
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
                break; // Rest of the line is a comment.
            }
            if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
                state = State::BlockComment;
                i += 2;
                continue;
            }
            if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
                (i == 0 || !identChar(line[i - 1]))) {
                const std::size_t open = line.find('(', i + 2);
                if (open != std::string::npos) {
                    rawTerm = ")" + line.substr(i + 2, open - i - 2) + "\"";
                    state = State::RawString;
                    i = open + 1;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        i += 2;
                    } else if (line[i] == quote) {
                        ++i;
                        break;
                    } else {
                        ++i;
                    }
                }
                continue;
            }
            code[i] = c;
            ++i;
        }
        out.push_back(std::move(code));
    }
    return out;
}

std::string
trim(std::string s)
{
    const auto notSpace = [](unsigned char c) { return !std::isspace(c); };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
    s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
    return s;
}

/**
 * Parse every `oma-lint: allow(...)` / `allow-file(...)` directive on
 * @p line. The text after the closing paren (minus a leading ':' or
 * '-') is the stated reason.
 */
void
parseDirectives(const std::string &line,
                std::vector<Allowance> &line_allows,
                std::vector<Allowance> &file_allows)
{
    static const std::string marker = "oma-lint:";
    std::size_t pos = 0;
    while ((pos = line.find(marker, pos)) != std::string::npos) {
        std::size_t p = pos + marker.size();
        while (p < line.size() &&
               std::isspace(static_cast<unsigned char>(line[p])))
            ++p;
        bool file_scope = false;
        if (line.compare(p, 11, "allow-file(") == 0) {
            file_scope = true;
            p += 11;
        } else if (line.compare(p, 6, "allow(") == 0) {
            p += 6;
        } else {
            pos += marker.size();
            continue;
        }
        const std::size_t close = line.find(')', p);
        if (close == std::string::npos)
            break;
        Allowance allow;
        std::stringstream rules(line.substr(p, close - p));
        std::string rule;
        while (std::getline(rules, rule, ','))
            allow.rules.insert(trim(rule));
        std::string reason = trim(line.substr(close + 1));
        if (!reason.empty() && (reason[0] == ':' || reason[0] == '-'))
            reason = trim(reason.substr(1));
        allow.reason = reason;
        (file_scope ? file_allows : line_allows).push_back(allow);
        pos = close + 1;
    }
}

bool
covers(const Allowance &allow, const std::string &rule, bool need_reason)
{
    return allow.rules.count(rule) != 0 &&
        (!need_reason || !allow.reason.empty());
}

/**
 * Extract names declared with std::unordered_map/set in @p code
 * (comment/literal-stripped lines): after the container token, skip
 * the template argument list (bracket matching, across lines), then
 * take the next identifier as the declared name.
 */
void
collectUnorderedNames(const std::vector<std::string> &code,
                      std::vector<std::string> &names)
{
    // Flatten so template argument lists can span lines.
    std::string flat;
    for (const std::string &line : code) {
        flat += line;
        flat += ' ';
    }
    std::size_t pos = 0;
    while (pos < flat.size()) {
        std::size_t hit = flat.find("unordered_", pos);
        if (hit == std::string::npos)
            break;
        if (hit > 0 && identChar(flat[hit - 1])) {
            pos = hit + 10;
            continue;
        }
        std::size_t p = hit + 10;
        if (flat.compare(p, 3, "map") == 0)
            p += 3;
        else if (flat.compare(p, 3, "set") == 0)
            p += 3;
        else {
            pos = hit + 10;
            continue;
        }
        pos = p;
        while (p < flat.size() &&
               std::isspace(static_cast<unsigned char>(flat[p])))
            ++p;
        if (p >= flat.size() || flat[p] != '<')
            continue;
        int depth = 0;
        while (p < flat.size()) {
            if (flat[p] == '<')
                ++depth;
            else if (flat[p] == '>' && --depth == 0) {
                ++p;
                break;
            }
            ++p;
        }
        // Skip references, pointers and whitespace before the name.
        while (p < flat.size() &&
               (std::isspace(static_cast<unsigned char>(flat[p])) ||
                flat[p] == '&' || flat[p] == '*'))
            ++p;
        std::size_t nameEnd = p;
        while (nameEnd < flat.size() && identChar(flat[nameEnd]))
            ++nameEnd;
        if (nameEnd > p)
            names.emplace_back(flat.substr(p, nameEnd - p));
        pos = nameEnd;
    }
}

/** First-level project includes (`#include "x/y.hh"`) of @p code. */
std::vector<std::string>
projectIncludes(const std::vector<std::string> &raw)
{
    std::vector<std::string> includes;
    for (const std::string &line : raw) {
        std::size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '#')
            continue;
        p = line.find("include", p);
        if (p == std::string::npos)
            continue;
        const std::size_t open = line.find('"', p);
        if (open == std::string::npos)
            continue;
        const std::size_t close = line.find('"', open + 1);
        if (close == std::string::npos)
            continue;
        includes.push_back(line.substr(open + 1, close - open - 1));
    }
    return includes;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
        ext == ".cpp" || ext == ".cxx";
}

bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == ".git" || name.rfind("build", 0) == 0 ||
        name == "header_tus";
}

void
collectFiles(const fs::path &p, std::vector<std::string> &files)
{
    if (fs::is_directory(p)) {
        if (isSkippedDir(p))
            return;
        std::vector<fs::path> entries;
        for (const auto &entry : fs::directory_iterator(p))
            entries.push_back(entry.path());
        std::sort(entries.begin(), entries.end());
        for (const fs::path &entry : entries)
            collectFiles(entry, files);
    } else if (fs::is_regular_file(p) && isSourceFile(p)) {
        files.push_back(p.string());
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
lintOne(const SourceFile &file,
        const std::vector<std::unique_ptr<Rule>> &rules,
        LintReport &report)
{
    ++report.filesScanned;
    std::vector<Finding> found;
    for (const auto &rule : rules)
        rule->check(file, found);
    for (Finding &f : found) {
        if (!file.allowed(f.rule, f.line, f.requiresReason))
            report.findings.push_back(std::move(f));
    }
}

} // namespace

SourceFile::SourceFile(std::string path, std::string_view content,
                       std::string include_root)
    : _path(std::move(path)), _includeRoot(std::move(include_root)),
      _raw(splitLines(content)), _code(stripCommentsAndLiterals(_raw))
{
    for (std::size_t i = 0; i < _raw.size(); ++i) {
        std::vector<Allowance> line_allows;
        parseDirectives(_raw[i], line_allows, _fileAllows);
        if (!line_allows.empty())
            _lineAllows.emplace(i + 1, std::move(line_allows));
    }
}

bool
SourceFile::isHeader() const
{
    return fs::path(_path).extension() == ".hh" ||
        fs::path(_path).extension() == ".hpp";
}

const std::string &
SourceFile::rawLine(std::size_t line) const
{
    return _raw.at(line - 1);
}

const std::string &
SourceFile::codeLine(std::size_t line) const
{
    return _code.at(line - 1);
}

bool
SourceFile::allowed(const std::string &rule, std::size_t line,
                    bool need_reason) const
{
    for (const Allowance &allow : _fileAllows) {
        if (covers(allow, rule, need_reason))
            return true;
    }
    const auto checkLine = [&](std::size_t l) {
        const auto it = _lineAllows.find(l);
        if (it == _lineAllows.end())
            return false;
        for (const Allowance &allow : it->second) {
            if (covers(allow, rule, need_reason))
                return true;
        }
        return false;
    };
    if (checkLine(line))
        return true;
    // Walk the contiguous //-comment block above the flagged line, so
    // a directive whose justification wraps still covers it.
    for (std::size_t l = line; l > 1; --l) {
        const std::string &above = _raw[l - 2];
        const std::size_t text = above.find_first_not_of(" \t");
        if (text == std::string::npos ||
            above.compare(text, 2, "//") != 0)
            break;
        if (checkLine(l - 1))
            return true;
    }
    return false;
}

std::vector<std::string>
SourceFile::unorderedNames() const
{
    std::vector<std::string> names;
    collectUnorderedNames(_code, names);
    if (!_includeRoot.empty()) {
        for (const std::string &inc : projectIncludes(_raw)) {
            const fs::path header = fs::path(_includeRoot) / inc;
            std::error_code ec;
            if (!fs::is_regular_file(header, ec))
                continue;
            const auto lines = splitLines(readFile(header.string()));
            collectUnorderedNames(stripCommentsAndLiterals(lines),
                                  names);
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

LintReport
lintBuffer(const std::string &path, std::string_view content,
           const std::string &include_root)
{
    const auto rules = makeDefaultRules();
    LintReport report;
    lintOne(SourceFile(path, content, include_root), rules, report);
    return report;
}

LintReport
lintPaths(const std::vector<std::string> &paths,
          const std::string &include_root)
{
    std::vector<std::string> files;
    for (const std::string &p : paths)
        collectFiles(fs::path(p), files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const auto rules = makeDefaultRules();
    LintReport report;
    for (const std::string &path : files)
        lintOne(SourceFile(path, readFile(path), include_root), rules,
                report);
    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return report;
}

void
printReport(const LintReport &report, bool fixits, std::ostream &os)
{
    for (const Finding &f : report.findings) {
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
        if (fixits && !f.fixit.empty())
            os << "    fixit: " << f.fixit << "\n";
    }
    os << (report.clean() ? "oma_lint: clean, "
                          : "oma_lint: FAILED, ")
       << report.findings.size() << " finding(s) in "
       << report.filesScanned << " file(s)\n";
}

namespace
{

/** @p text as a JSON string literal, quotes included. */
std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

void
printSarif(const LintReport &report, std::ostream &os)
{
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"oma_lint\",\n"
       << "          \"informationUri\": "
          "\"docs/STATIC_ANALYSIS.md\",\n"
       << "          \"rules\": [\n";
    const auto rules = makeDefaultRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << "            {\n"
           << "              \"id\": "
           << jsonQuote(std::string(rules[i]->name())) << ",\n"
           << "              \"shortDescription\": {\"text\": "
           << jsonQuote(std::string(rules[i]->rationale())) << "}\n"
           << "            }" << (i + 1 < rules.size() ? "," : "")
           << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    const auto &findings = report.findings;
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        std::string text = f.message;
        if (!f.fixit.empty())
            text += "; fix: " + f.fixit;
        os << "        {\n"
           << "          \"ruleId\": " << jsonQuote(f.rule) << ",\n"
           << "          \"level\": \"error\",\n"
           << "          \"message\": {\"text\": " << jsonQuote(text)
           << "},\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": {\"uri\": "
           << jsonQuote(f.file) << "},\n"
           << "                \"region\": {\"startLine\": "
           << (f.line == 0 ? 1 : f.line) << "}\n"
           << "              }\n"
           << "            }\n"
           << "          ]\n"
           << "        }" << (i + 1 < findings.size() ? "," : "")
           << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
}

std::vector<std::string>
emitHeaderTus(const std::string &src_root, const std::string &out_dir)
{
    std::vector<std::string> headers;
    for (const auto &entry : fs::recursive_directory_iterator(src_root)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".hh") {
            headers.push_back(
                fs::relative(entry.path(), src_root).generic_string());
        }
    }
    std::sort(headers.begin(), headers.end());

    fs::create_directories(out_dir);
    std::vector<std::string> tus;
    std::ofstream manifest(fs::path(out_dir) / "manifest.txt",
                           std::ios::trunc);
    for (const std::string &header : headers) {
        std::string stem = header;
        std::replace(stem.begin(), stem.end(), '/', '_');
        stem.replace(stem.size() - 3, 3, ".tu.cc");
        const fs::path tu = fs::path(out_dir) / stem;
        std::ofstream out(tu, std::ios::trunc);
        out << "// Generated by oma_lint --emit-header-tus; do not"
               " edit.\n"
            << "// Compiles standalone iff \"" << header
            << "\" is self-contained.\n"
            << "#include \"" << header << "\"\n";
        manifest << tu.generic_string() << "\n";
        tus.push_back(tu.string());
    }
    return tus;
}

} // namespace oma::lint
