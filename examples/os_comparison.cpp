/**
 * @file
 * Example: reproduce the paper's Table 3 methodology for any
 * benchmark — compare the CPI stall breakdown of the same workload
 * measured user-only (pixie-style), under Ultrix, and under Mach on
 * the modelled DECstation 3100.
 *
 * Usage: os_comparison [benchmark] [references]
 *   benchmark: mpeg_play (default), mab, jpeg_play, ousterhout,
 *              IOzone, video_play
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

BenchmarkId
parseBenchmark(const std::string &name)
{
    for (BenchmarkId id : allBenchmarks()) {
        if (name == benchmarkName(id))
            return id;
    }
    fatal("unknown benchmark: " + name +
          " (try mpeg_play, mab, jpeg_play, ousterhout, IOzone, "
          "video_play)");
}

std::string
cell(double value, double total)
{
    return fmtFixed(value, 2) + " (" +
        fmtPercent(total > 0 ? value / total : 0.0) + ")";
}

void
addRow(TextTable &table, const std::string &system,
       const std::string &method, const BaselineResult &r)
{
    const double stalls = r.cpi.stallTotal();
    table.addRow({system, method, fmtFixed(r.cpi.cpi, 2),
                  cell(r.cpi.tlb, stalls), cell(r.cpi.icache, stalls),
                  cell(r.cpi.dcache, stalls),
                  cell(r.cpi.writeBuffer, stalls),
                  cell(r.cpi.other, stalls)});
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchmarkId id =
        argc > 1 ? parseBenchmark(argv[1]) : BenchmarkId::Mpeg;
    RunConfig run;
    if (argc > 2)
        run.references = std::strtoull(argv[2], nullptr, 10);

    std::cout << "Workload: " << benchmarkName(id) << " ("
              << benchmarkParams(id).description << ")\n"
              << "Machine: DECstation 3100 (64-KB off-chip DM I/D "
                 "caches, 1-word lines, 64-entry FA TLB)\n\n";

    TextTable table({"OS", "Method", "CPI", "TLB", "I-cache", "D-cache",
                     "Write Buffer", "Other"});

    RunConfig user_run = run;
    user_run.userOnly = true;
    addRow(table, "None", "user-only sim",
           runBaseline(id, OsKind::Ultrix, user_run));
    addRow(table, "Ultrix", "monitor",
           runBaseline(id, OsKind::Ultrix, run));
    addRow(table, "Mach", "monitor", runBaseline(id, OsKind::Mach, run));

    table.print(std::cout);
    std::cout << "\n(Stall percentages are relative to total stall "
                 "cycles above the base CPI of 1.0.)\n";
    return 0;
}
