file(REMOVE_RECURSE
  "CMakeFiles/oma_support.dir/logging.cc.o"
  "CMakeFiles/oma_support.dir/logging.cc.o.d"
  "CMakeFiles/oma_support.dir/table.cc.o"
  "CMakeFiles/oma_support.dir/table.cc.o.d"
  "liboma_support.a"
  "liboma_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
