/**
 * @file
 * Byte codecs for the artifacts the store holds.
 *
 * Two artifact kinds exist today: a complete RecordedTrace (the
 * output of the serial record phase) and one replay shard's exact
 * counters (CacheStats / MmuStats / the reference machine's
 * MachineShard). Every codec stores raw integer counters — never
 * derived ratios — so a decoded shard reproduces the live result and
 * its exported metrics bit-for-bit; that is the store's whole
 * bitwise-identity guarantee (tests/core/test_store_sweep.cc).
 *
 * Encoding is little-endian-agnostic host byte order via memcpy
 * (entries are per-machine caches; the fingerprint scheme ages them
 * out on format changes). Trace payloads run each column chunk
 * through the delta/varint codec (trace/codec.hh) with per-chunk
 * checksums — the same byte layer as trace-file format v3 — so warm
 * replays re-read a fraction of the packed 10 B/ref footprint.
 * Decoders are bounds-checked and return false on any framing
 * mismatch, which callers treat as a store miss.
 */

#ifndef OMA_STORE_CODEC_HH
#define OMA_STORE_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/victim.hh"
#include "machine/writebuffer.hh"
#include "tlb/mmu.hh"
#include "trace/recorded.hh"

namespace oma::store
{

/**
 * The reference-machine replay shard: everything task 0 of a sweep
 * contributes to the SweepResult and the run report.
 */
struct MachineShard
{
    std::uint64_t instructions = 0;
    std::uint64_t icacheStall = 0;
    std::uint64_t dcacheStall = 0;
    std::uint64_t wbStall = 0;
    std::uint64_t tlbStall = 0;
    std::uint64_t wbStores = 0;
    std::uint64_t wbStallCycles = 0;
};

/** Serialize a recording (references, events, otherCpi) through the
 * v3 delta/varint chunk codec. */
[[nodiscard]] std::string encodeTrace(const RecordedTrace &trace);

/** @retval false on framing mismatch, a checksum mismatch or a chunk
 * that fails delta/varint decoding (treat any as a store miss). */
[[nodiscard]] bool decodeTrace(std::string_view payload,
                               RecordedTrace &trace);

[[nodiscard]] std::string encodeCacheStats(const CacheStats &s);
[[nodiscard]] bool decodeCacheStats(std::string_view payload,
                                    CacheStats &s);

[[nodiscard]] std::string encodeMmuStats(const MmuStats &s);
[[nodiscard]] bool decodeMmuStats(std::string_view payload,
                                  MmuStats &s);

[[nodiscard]] std::string encodeMachineShard(const MachineShard &s);
[[nodiscard]] bool decodeMachineShard(std::string_view payload,
                                      MachineShard &s);

// Counter shards of the extension components (victim caches, write
// buffers, hierarchies) swept as replayable components
// (core/component.hh). Raw counters only, like every shard codec, so
// warm reruns and killed-sweep resume reproduce live runs
// bit-for-bit.

[[nodiscard]] std::string encodeVictimStats(const VictimStats &s);
[[nodiscard]] bool decodeVictimStats(std::string_view payload,
                                     VictimStats &s);

[[nodiscard]] std::string
encodeWriteBufferStats(const WriteBufferStats &s);
[[nodiscard]] bool decodeWriteBufferStats(std::string_view payload,
                                          WriteBufferStats &s);

[[nodiscard]] std::string
encodeHierarchyStats(const HierarchyStats &s);
[[nodiscard]] bool decodeHierarchyStats(std::string_view payload,
                                        HierarchyStats &s);

} // namespace oma::store

#endif // OMA_STORE_CODEC_HH
