/**
 * @file
 * Lightweight statistics accumulators.
 *
 * Used by the trace-sampling machinery to report means and confidence
 * measures over per-sample miss-ratio estimators, mirroring the
 * Laha/Martonosi sampling methodology the paper relies on.
 */

#ifndef OMA_SUPPORT_STATS_HH
#define OMA_SUPPORT_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace oma
{

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++_n;
        const double delta = x - _mean;
        _mean += delta / static_cast<double>(_n);
        _m2 += delta * (x - _mean);
        if (x < _min)
            _min = x;
        if (x > _max)
            _max = x;
    }

    /** Number of observations. */
    std::uint64_t count() const { return _n; }

    /** Sample mean (0 when empty). */
    double mean() const { return _mean; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double
    variance() const
    {
        return _n < 2 ? 0.0 : _m2 / static_cast<double>(_n - 1);
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Standard error of the mean. */
    double
    stderrOfMean() const
    {
        return _n == 0 ? 0.0 : stddev() / std::sqrt(double(_n));
    }

    /** Smallest observation (+inf when empty). */
    double min() const { return _min; }

    /** Largest observation (-inf when empty). */
    double max() const { return _max; }

  private:
    std::uint64_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A ratio counter: events over opportunities (misses over accesses).
 */
struct Ratio
{
    std::uint64_t events = 0;
    std::uint64_t total = 0;

    void
    record(bool event)
    {
        ++total;
        if (event)
            ++events;
    }

    double
    value() const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(events) /
                              static_cast<double>(total);
    }
};

} // namespace oma

#endif // OMA_SUPPORT_STATS_HH
