/**
 * @file
 * Hardware TLB model (R2000-style).
 *
 * Entries are tagged with a virtual page number and a 6-bit ASID and
 * may be marked global (kernel mappings match regardless of ASID, as
 * with the R2000 G bit). Organizations range from direct-mapped
 * through set-associative to fully associative. The TLB itself is a
 * dumb lookup structure; miss classification and the software
 * miss-handler cost model live in Mmu.
 */

#ifndef OMA_TLB_TLB_HH
#define OMA_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "area/geometry.hh"
#include "cache/cache.hh" // ReplacementPolicy
#include "support/fingerprint.hh"
#include "support/rng.hh"

namespace oma
{

/** Configuration of a TLB instance. */
struct TlbParams
{
    TlbGeometry geom;
    ReplacementPolicy repl = ReplacementPolicy::Lru;
    std::uint64_t seed = 1;
    /**
     * Model a TLB without address-space identifiers (i486-style,
     * Table 1): the whole TLB is flushed on every address-space
     * switch. Particularly painful under a multiple-API OS, whose
     * services hop between address spaces constantly.
     */
    bool flushOnAsidSwitch = false;

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        geom.fingerprint(fp);
        fp.u64("tlb.repl", std::uint64_t(repl));
        fp.u64("tlb.seed", seed);
        fp.flag("tlb.flush_on_asid_switch", flushOnAsidSwitch);
    }
};

/** Raw TLB hit/miss counters (classification happens in Mmu). */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    [[nodiscard]] double
    missRatio() const
    {
        return accesses == 0 ? 0.0 : double(misses) / double(accesses);
    }
};

/** The TLB lookup structure. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    [[nodiscard]] const TlbParams &params() const { return _params; }

    /**
     * Look up a translation, updating replacement state and counters.
     *
     * @param vpn Virtual page number.
     * @param asid Current address-space identifier.
     * @retval true on hit.
     */
    bool lookup(std::uint64_t vpn, std::uint32_t asid);

    /** Hit test with no side effects. */
    [[nodiscard]] bool probe(std::uint64_t vpn, std::uint32_t asid) const;

    /**
     * Install a translation (the tail of a software miss handler).
     *
     * @param global Kernel mapping that matches any ASID.
     * @param dirty Page already writable without a modify trap.
     */
    void insert(std::uint64_t vpn, std::uint32_t asid, bool global,
                bool dirty);

    /**
     * Mark an entry dirty (modify-trap handler tail).
     * @retval false when the entry is not resident.
     */
    bool setDirty(std::uint64_t vpn, std::uint32_t asid);

    /** True when the entry is resident and marked dirty. */
    [[nodiscard]] bool isDirty(std::uint64_t vpn, std::uint32_t asid) const;

    /** Drop one translation if present (OS unmap / invalidation). */
    void invalidate(std::uint64_t vpn, std::uint32_t asid);

    /** Drop everything (e.g. an ASID rollover flush). */
    void invalidateAll();

    [[nodiscard]] const TlbStats &stats() const { return _stats; }
    void resetStats() { _stats = TlbStats(); }

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        std::uint64_t stamp = 0;
        std::uint32_t asid = 0;
        bool global = false;
        bool dirty = false;
        bool valid = false;
    };

    bool matches(const Entry &e, std::uint64_t vpn,
                 std::uint32_t asid) const;
    Entry *find(std::uint64_t vpn, std::uint32_t asid);
    const Entry *find(std::uint64_t vpn, std::uint32_t asid) const;
    std::size_t setIndex(std::uint64_t vpn) const;
    std::size_t victimWay(std::size_t set_base);

    TlbParams _params;
    std::size_t _sets;
    std::size_t _ways;
    std::vector<Entry> _entries;
    std::uint64_t _tick = 0;
    Rng _rng;
    TlbStats _stats;
};

} // namespace oma

#endif // OMA_TLB_TLB_HH
