/**
 * @file
 * The complete simulated system: one application process, the OS
 * structure model, the X server and (under Mach) the user-level
 * servers, multiplexed into a single reference stream.
 *
 * System is the TraceSource equivalent of what the paper's Monster
 * logic analyzer saw at the R2000 pins: user and kernel references of
 * every participating process, interleaved, with idle time removed.
 */

#ifndef OMA_WORKLOAD_SYSTEM_HH
#define OMA_WORKLOAD_SYSTEM_HH

#include <memory>

#include "trace/recorded.hh"
#include "workload/workload.hh"

namespace oma
{

/** A runnable workload + OS pair. */
class System : public TraceSource
{
  public:
    System(const WorkloadParams &workload, OsKind os_kind,
           std::uint64_t seed);

    bool next(MemRef &ref) override;

    /**
     * Capture up to @p max_refs references into a RecordedTrace,
     * with OS page invalidations recorded inline at their trace
     * position and the stream's non-memory stall rate attached.
     * This is the one recording every replay consumer (sweeps,
     * trace files, tools) shares; it replaces the ad-hoc
     * setInvalidateHook + capture-vector pattern. Any previously
     * installed invalidate hook is displaced for the duration of
     * the recording and cleared afterwards.
     */
    RecordedTrace record(std::uint64_t max_refs);

    /** Forwarded to the OS model (MMU page invalidations). */
    void
    setInvalidateHook(OsModel::InvalidateHook hook)
    {
        _os->setInvalidateHook(std::move(hook));
    }

    OsModel &os() { return *_os; }
    Component &app() { return _app; }
    const WorkloadParams &workload() const { return _workload; }
    std::uint32_t appAsid() const { return layout::appAsid; }

    /**
     * Expected non-memory ("Other") stall cycles per instruction for
     * the instruction mix generated so far: the user-app rate applies
     * to application instructions, the kernel rate to everything else.
     */
    double otherCpiSoFar() const;

    /** Fraction of instructions so far executed by the application. */
    double userInstructionFraction() const;

  private:
    void step();
    ServiceRequest drawRequest();

    static CodeRegion appCode(const WorkloadParams &wl);
    static DataBehavior appData(const WorkloadParams &wl);

    WorkloadParams _workload;
    std::unique_ptr<OsModel> _os;
    AddressSpace _appSpace;
    Component _app;
    Rng _rng;

    VectorTraceSink _buffer;
    std::size_t _pos = 0;

    // Event countdowns, in application instructions.
    std::uint64_t _toSyscall;
    std::uint64_t _syscallBurstLeft = 0;
    std::uint64_t _toFrame;
    std::uint64_t _toTimer;
    std::uint64_t _toVm;
    std::uint64_t _bufCursor = 0;
    std::uint64_t _totalInstr = 0;
    std::uint64_t _appInstr = 0;
};

} // namespace oma

#endif // OMA_WORKLOAD_SYSTEM_HH
