/**
 * @file
 * Implementation of the content-addressed artifact store.
 */

#include "store/store.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

#include "support/logging.hh"

namespace oma
{

namespace
{

constexpr std::uint64_t entryMagic = 0x45524f5453414d4fULL; // "OMASTORE"

/** FNV-1a over the payload; cheap, and mismatches on any bit flip. */
std::uint64_t
payloadChecksum(std::string_view payload)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : payload) {
        h ^= std::uint64_t(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
appendU32(std::string &out, std::uint32_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

bool
readU32(std::string_view in, std::size_t &pos, std::uint32_t &v)
{
    if (in.size() - pos < sizeof v)
        return false;
    std::memcpy(&v, in.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
}

bool
readU64(std::string_view in, std::size_t &pos, std::uint64_t &v)
{
    if (in.size() - pos < sizeof v)
        return false;
    std::memcpy(&v, in.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
}

/** Fixed-size header preceding key text and payload in every entry. */
std::string
entryHeader(std::string_view key_text, std::string_view payload)
{
    std::string out;
    appendU64(out, entryMagic);
    appendU32(out, ArtifactStore::formatVersion);
    appendU32(out, 0); // reserved
    appendU64(out, key_text.size());
    appendU64(out, payload.size());
    appendU64(out, payloadChecksum(payload));
    return out;
}

} // namespace

InflightTable::Lease
InflightTable::join(const Fingerprint &key)
{
    LockGuard lock(_mutex);
    for (;;) {
        const auto it = _inflight.find(key.text());
        if (it == _inflight.end()) {
            auto entry = std::make_shared<InflightEntry>();
            _inflight.emplace(key.text(), entry);
            Lease lease;
            lease._table = this;
            lease._key = key.text();
            lease._entry = std::move(entry);
            lease._leader = true;
            return lease;
        }
        // An identical computation is running: wait for its outcome
        // on a snapshot of the entry (the map slot may be retired or
        // replaced while we sleep).
        const std::shared_ptr<InflightEntry> entry = it->second;
        while (!entry->done && !entry->abandoned)
            _published.wait(lock);
        if (entry->done) {
            Lease lease;
            lease._table = this;
            lease._key = key.text();
            lease._entry = entry;
            return lease;
        }
        // The leader unwound without publishing; its destructor
        // retired the map slot, so loop and take leadership.
    }
}

InflightTable::Lease::~Lease()
{
    if (_table == nullptr || !_leader || _published)
        return;
    // Leader unwinding without a result: mark the entry abandoned and
    // wake the followers so one of them retakes leadership.
    LockGuard lock(_table->_mutex);
    _entry->abandoned = true;
    const auto it = _table->_inflight.find(_key);
    if (it != _table->_inflight.end() && it->second == _entry)
        _table->_inflight.erase(it);
    _table->_published.notifyAll();
}

const std::string &
InflightTable::Lease::payload() const
{
    fatalIf(_leader && !_published,
            "inflight lease: leader read its own unpublished payload");
    return _entry->payload;
}

void
InflightTable::Lease::publish(std::string payload)
{
    fatalIf(!_leader, "inflight lease: only the leader publishes");
    fatalIf(_published, "inflight lease: double publish");
    LockGuard lock(_table->_mutex);
    _entry->payload = std::move(payload);
    _entry->done = true;
    _published = true;
    // Retire the key: later joiners start fresh (with a store in
    // front they hit the warm path instead of recomputing).
    const auto it = _table->_inflight.find(_key);
    if (it != _table->_inflight.end() && it->second == _entry)
        _table->_inflight.erase(it);
    _table->_published.notifyAll();
}

ArtifactStore::ArtifactStore(std::string root) : _root(std::move(root))
{
    std::error_code ec;
    std::filesystem::create_directories(_root + "/objects", ec);
    fatalIf(bool(ec), "artifact store: cannot create '" + _root +
                          "/objects': " + ec.message());
}

std::unique_ptr<ArtifactStore>
ArtifactStore::open(const std::string &configured_dir)
{
    std::string root = configured_dir;
    if (root.empty()) {
        const char *env = std::getenv("OMA_STORE_DIR");
        if (env != nullptr)
            root = env;
    }
    if (root.empty())
        return nullptr;
    return std::make_unique<ArtifactStore>(root);
}

std::string
ArtifactStore::entryPath(const Fingerprint &key) const
{
    // Two-level fan-out (git-object style) keeps directory sizes
    // sane for large stores.
    const std::string hex = key.hex();
    return _root + "/objects/" + hex.substr(0, 2) + "/" + hex + ".bin";
}

bool
ArtifactStore::get(const Fingerprint &key, std::string &payload) const
{
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        bump(&StoreStatsSnapshot::misses);
        return false;
    }
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();

    const auto corrupt = [&]() {
        quarantine(path);
        bump(&StoreStatsSnapshot::misses);
        return false;
    };

    std::size_t pos = 0;
    std::uint64_t magic = 0, key_size = 0, payload_size = 0,
                  checksum = 0;
    std::uint32_t version = 0, reserved = 0;
    if (!readU64(raw, pos, magic) || magic != entryMagic ||
        !readU32(raw, pos, version) || version != formatVersion ||
        !readU32(raw, pos, reserved) || !readU64(raw, pos, key_size) ||
        !readU64(raw, pos, payload_size) ||
        !readU64(raw, pos, checksum)) {
        return corrupt();
    }
    if (raw.size() - pos != key_size + payload_size)
        return corrupt();
    const std::string_view stored_key(raw.data() + pos, key_size);
    const std::string_view stored_payload(raw.data() + pos + key_size,
                                          payload_size);
    // Byte-compare the full canonical key text: even a fingerprint
    // hash collision degrades to a detected miss here.
    if (stored_key != key.text())
        return corrupt();
    if (payloadChecksum(stored_payload) != checksum)
        return corrupt();

    payload.assign(stored_payload);
    bump(&StoreStatsSnapshot::hits);
    return true;
}

void
ArtifactStore::put(const Fingerprint &key,
                   std::string_view payload) const
{
    const std::string path = entryPath(key);
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    fatalIf(bool(ec), "artifact store: cannot create directory for '" +
                          path + "': " + ec.message());

    // Unique temp name per writer (pid + process-wide counter), so
    // concurrent writers racing on one key never share a temp file;
    // rename() publishes atomically and last-rename-wins is harmless
    // because both race sides produce identical bytes.
    // oma-lint: allow(shared-state): atomic nonce that only
    // uniquifies temp-file names; it never reaches any result.
    static std::atomic<std::uint64_t> tmpCounter{0};
    const std::string tmp = path + ".tmp." +
        std::to_string(::getpid()) + "." +
        std::to_string(tmpCounter.fetch_add(1));

    writeEntryFile(tmp, key.text(), payload);

    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        fatal("artifact store: cannot publish '" + path +
              "': " + ec.message());
    }
    bump(&StoreStatsSnapshot::writes);
}

void
ArtifactStore::writeEntryFile(const std::string &path,
                              std::string_view key_text,
                              std::string_view payload)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatalIf(!out.is_open(),
            "artifact store: cannot open '" + path + "' for writing");
    const std::string header = entryHeader(key_text, payload);
    out.write(header.data(), std::streamsize(header.size()));
    out.write(key_text.data(), std::streamsize(key_text.size()));
    out.write(payload.data(), std::streamsize(payload.size()));
    out.flush();
    fatalIf(!out.good(), "artifact store: short write to '" + path +
                             "' (disk full?)");
    out.close();
    fatalIf(!out.good(), "artifact store: cannot close '" + path +
                             "' (disk full?)");
}

void
ArtifactStore::bump(std::uint64_t StoreStatsSnapshot::*counter,
                    std::uint64_t delta) const
{
    LockGuard lock(_statsMutex);
    _stats.*counter += delta;
}

void
ArtifactStore::quarantine(const std::string &path) const
{
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec) {
        // Cannot move it aside (e.g. read-only medium): drop it so a
        // bad entry is never served twice.
        std::filesystem::remove(path, ec);
    }
    bump(&StoreStatsSnapshot::quarantined);
    warn("artifact store: quarantined corrupt entry '" + path + "'");
}

} // namespace oma
