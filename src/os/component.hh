/**
 * @file
 * A software component: code + data behaviour inside an address space.
 *
 * Applications, API servers, the X server, the emulation library and
 * kernel subsystems are all Components. A component can run
 * steady-state instructions (working-set code walk plus data mix),
 * execute a fixed invocation path, or perform a copy loop between two
 * address spaces — the three activities from which every OS service
 * invocation in the paper's Figure 2 is composed.
 */

#ifndef OMA_OS_COMPONENT_HH
#define OMA_OS_COMPONENT_HH

#include <string>

#include "os/addrspace.hh"
#include "os/codewalk.hh"
#include "os/datagen.hh"
#include "trace/source.hh"

namespace oma
{

/** Code + data behaviour bound to an address space and mode. */
class Component
{
  public:
    Component(std::string name, AddressSpace &space, Mode mode,
              const CodeRegion &code, const DataBehavior &data,
              std::uint64_t seed);

    const std::string &name() const { return _name; }
    AddressSpace &space() { return _space; }
    Mode mode() const { return _mode; }

    /** Run @p instrs steady-state instructions, emitting references. */
    void run(std::uint64_t instrs, TraceSink &sink);

    /**
     * Execute a fixed sequential code path (service-invocation
     * plumbing) with @p data_per_instr data references per
     * instruction drawn from this component's data mix.
     */
    void runPath(const CodePath &path, TraceSink &sink,
                 double data_per_instr = 0.15);

    /**
     * Tight copy loop: 2 instructions, 1 load and 1 store per word.
     * The loop code is 8 instructions of this component's text; data
     * addresses live in the given spaces (which is how kernel
     * copyin/copyout touches the caller's user pages).
     */
    void copyLoop(AddressSpace &src_space, std::uint64_t src_base,
                  AddressSpace &dst_space, std::uint64_t dst_base,
                  std::uint64_t bytes, TraceSink &sink);

    /** Instructions this component has executed. */
    std::uint64_t instructionsRun() const { return _instrs; }

    /** The data behaviour this component was configured with. */
    const DataBehavior &dataBehavior() const { return _data.behavior(); }

    /** Build an instruction-fetch reference at @p pc. */
    MemRef fetchRef(std::uint64_t pc);

    /** Build a data reference at @p vaddr within @p space. */
    MemRef dataRef(AddressSpace &space, std::uint64_t vaddr,
                   bool is_store) const;

  private:
    std::string _name;
    AddressSpace &_space;
    Mode _mode;
    CodeWalker _code;
    DataGen _data;
    std::uint64_t _instrs = 0;
};

} // namespace oma

#endif // OMA_OS_COMPONENT_HH
