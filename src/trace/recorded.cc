/**
 * @file
 * Out-of-line pieces of RecordedTrace.
 */

#include "trace/recorded.hh"

#include "support/logging.hh"

namespace oma
{

void
RecordedTrace::checkEncodable(const MemRef &ref)
{
    fatalIf(ref.vaddr > 0xffffffffULL || ref.paddr > 0xffffffffULL,
            "reference does not fit the packed 32-bit trace encoding");
    fatalIf(ref.asid > 0xff,
            "ASID does not fit the packed trace encoding");
}

MemRef
RecordedTrace::at(std::uint64_t i) const
{
    fatalIf(i >= _size, "trace reference index out of range");
    const Chunk &c = _chunks[i / chunkRefs];
    return decode(c, std::size_t(i % chunkRefs));
}

TraceChunkView
RecordedTrace::chunkView(std::size_t c) const
{
    fatalIf(c >= _chunks.size(), "trace chunk index out of range");
    const Chunk &chunk = _chunks[c];
    return {chunk.vaddr.data(), chunk.paddr.data(),
            chunk.asid.data(),  chunk.flags.data(),
            chunk.size(),       std::uint64_t(c) * chunkRefs};
}

void
RecordedTrace::newChunk()
{
    Chunk c;
    c.vaddr.reserve(chunkRefs);
    c.paddr.reserve(chunkRefs);
    c.asid.reserve(chunkRefs);
    c.flags.reserve(chunkRefs);
    _chunks.push_back(std::move(c));
}

} // namespace oma
