# Empty dependencies file for oma_area.
# This may be replaced when dependencies are built.
