/**
 * @file
 * Seeded Mersenne-twister shim for the stochastic search strategies.
 *
 * The determinism contract bans the std random engines everywhere
 * else (oma_lint's no-wallclock rule): a default-constructed engine
 * hides its seed, `std::random_device` is OS entropy, and the std
 * distribution adaptors are implementation-defined, so the same seed
 * can produce different draws on different standard libraries. This
 * header is the one sanctioned wrapper: an explicitly seeded
 * `std::mt19937_64` (the engine itself is fully specified by the
 * standard, so its raw output is portable) combined with the same
 * bias-free value mappings support/rng.hh uses. Everything drawn
 * through MtRng is a pure function of the 64-bit seed.
 *
 * Why a second generator next to oma::Rng (xoshiro256**)? The
 * annealing search (core/search_strategy) is specified against
 * mt19937 draws so its trajectories can be cross-checked against
 * reference simulated-annealing implementations; workload synthesis
 * keeps its own stream so search experiments never perturb traces.
 */

#ifndef OMA_SUPPORT_MT_RNG_HH
#define OMA_SUPPORT_MT_RNG_HH

#include <cstdint>
#include <random>

namespace oma
{

/**
 * Explicitly seeded std::mt19937_64 with portable value mappings.
 * Deterministic given the seed on every conforming implementation:
 * only the engine's raw 64-bit output is consumed, never a std
 * distribution.
 */
class MtRng
{
  public:
    /** Construct from a 64-bit seed; there is no default seed on
     * purpose — every stream must be traceable to an experiment
     * parameter. */
    explicit MtRng(std::uint64_t seed) : _engine(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        return _engine();
    }

    /** Uniform integer in [0, bound); bound must be non-zero.
     * Lemire multiply-shift mapping, same as oma::Rng::below —
     * bias is negligible for our bounds (<< 2^32). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1) with 53 significant bits. */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::mt19937_64 _engine;
};

} // namespace oma

#endif // OMA_SUPPORT_MT_RNG_HH
