file(REMOVE_RECURSE
  "CMakeFiles/oma_trace.dir/stats.cc.o"
  "CMakeFiles/oma_trace.dir/stats.cc.o.d"
  "CMakeFiles/oma_trace.dir/trace.cc.o"
  "CMakeFiles/oma_trace.dir/trace.cc.o.d"
  "CMakeFiles/oma_trace.dir/tracefile.cc.o"
  "CMakeFiles/oma_trace.dir/tracefile.cc.o.d"
  "liboma_trace.a"
  "liboma_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oma_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
