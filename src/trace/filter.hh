/**
 * @file
 * Stream filters over trace sources.
 *
 * The user-only filter reproduces the paper's `pixie + cache2000`
 * methodology (Table 3, row 1): operating-system references and other
 * address spaces are dropped, so the simulator sees only the
 * application's own activity.
 */

#ifndef OMA_TRACE_FILTER_HH
#define OMA_TRACE_FILTER_HH

#include <functional>

#include "trace/source.hh"

namespace oma
{

/**
 * Pass through only references for which a predicate holds.
 */
class FilteredTraceSource : public TraceSource
{
  public:
    using Predicate = std::function<bool(const MemRef &)>;

    FilteredTraceSource(TraceSource &inner, Predicate keep)
        : _inner(inner), _keep(std::move(keep))
    {}

    bool
    next(MemRef &ref) override
    {
        while (_inner.next(ref)) {
            if (_keep(ref))
                return true;
        }
        return false;
    }

  private:
    TraceSource &_inner;
    Predicate _keep;
};

/**
 * Keep only user-mode references belonging to address space @p asid.
 * This is the pixie-style user-only view of a workload.
 */
inline FilteredTraceSource
userOnly(TraceSource &inner, std::uint32_t asid)
{
    return FilteredTraceSource(inner, [asid](const MemRef &r) {
        return r.mode == Mode::User && r.asid == asid;
    });
}

} // namespace oma

#endif // OMA_TRACE_FILTER_HH
