/**
 * @file
 * Figure 9: instruction-cache performance — suite-average miss
 * ratios and I-cache CPI contribution for direct-mapped I-caches
 * across sizes and line sizes, under Ultrix and Mach.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/sweep.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

const std::vector<std::uint64_t> kSizes = {2, 4, 8, 16, 32};
const std::vector<std::uint64_t> kLines = {1, 2, 4, 8, 16, 32};

std::vector<CacheGeometry>
grid()
{
    std::vector<CacheGeometry> geoms;
    for (std::uint64_t kb : kSizes)
        for (std::uint64_t words : kLines)
            geoms.push_back(
                CacheGeometry::fromWords(kb * 1024, words, 1));
    return geoms;
}

void
printGrid(const std::string &title,
          const std::vector<CacheGeometry> &geoms,
          const std::vector<double> &values, int digits)
{
    std::cout << title << "\n";
    TextTable table({"Size \\ Line", "1w", "2w", "4w", "8w", "16w",
                     "32w"});
    std::size_t i = 0;
    for (std::uint64_t kb : kSizes) {
        std::vector<std::string> row = {fmtKBytes(kb * 1024)};
        for (std::size_t l = 0; l < kLines.size(); ++l, ++i) {
            (void)geoms;
            row.push_back(fmtFixed(values[i], digits));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    omabench::banner("Instruction-cache performance: direct-mapped "
                     "miss ratios and CPI contribution vs size and "
                     "line size (suite average)",
                     "Figure 9");

    omabench::BenchReport report("fig9");
    const auto geoms = grid();
    const MachineParams mp = MachineParams::decstation3100();

    omabench::SweepSuiteSpec spec;
    spec.icacheGeoms = geoms;
    spec.dcacheGeoms = {CacheGeometry::fromWords(8 * 1024, 4, 1)};
    spec.tlbGeoms = {TlbGeometry::fullyAssoc(64)};
    spec.progressLabel = "I-cache grid sweep";
    for (const auto &[os, results] :
         omabench::runSweepSuite(spec, &report)) {
        const auto miss = omabench::suiteAverage(
            results, geoms.size(),
            [](const SweepResult &r, std::size_t i) {
                return r.icache(i).missRatio();
            });
        const auto cpi = omabench::suiteAverage(
            results, geoms.size(),
            [&mp](const SweepResult &r, std::size_t i) {
                return r.icache(i).cpi(mp);
            });

        printGrid(std::string(osKindName(os)) +
                      ": average I-cache miss ratio",
                  geoms, miss, 4);
        printGrid(std::string(osKindName(os)) +
                      ": I-cache contribution to CPI "
                      "(penalty 6 + 1/word)",
                  geoms, cpi, 3);
    }

    std::cout
        << "Paper anchor points: Ultrix 8-KB/4-word miss ratio "
           "0.028, 32-KB/4-word 0.013; Mach 8-KB/4-word 0.065 (more "
           "than double Ultrix).\n"
           "Shape criteria: under Mach, doubling the line size beats "
           "doubling the cache size and no pollution appears even at "
           "32-word lines, while Ultrix shows pollution for large "
           "lines on small caches; in CPI terms, 16-word lines mark "
           "the upturn.\n";
    return 0;
}
