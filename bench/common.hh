/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Trace volume per workload/OS pair is controlled by the
 * OMA_BENCH_REFS environment variable (default 1,500,000 references),
 * so quick smoke runs and long accurate runs use the same binaries.
 */

#ifndef OMA_BENCH_COMMON_HH
#define OMA_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/query_engine.hh"
#include "api/request.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "support/clock.hh"

namespace omabench
{

/** References simulated per workload/OS pair. */
inline std::uint64_t
benchReferences(std::uint64_t fallback = 1500000)
{
    if (const char *env = std::getenv("OMA_BENCH_REFS")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

/** Standard run configuration for benches. */
inline oma::RunConfig
benchRun(std::uint64_t fallback = 1500000)
{
    oma::RunConfig rc;
    rc.references = benchReferences(fallback);
    rc.seed = 42;
    return rc;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "==================================================="
                 "=========\n"
              << what << "\n"
              << "(reproduces " << paper_ref << " of Nagle et al., "
              << "ISCA 1994)\n"
              << "==================================================="
                 "=========\n\n";
}

/**
 * One bench run's observability: a RunReport plus the Observation
 * the engines fill, finished and saved on destruction.
 *
 * Every bench binary constructs one of these after its banner and
 * lets it go out of scope at the end of main(); the destructor stamps
 * `time_ms/total`, derives `rate/refs_per_sec` from the references
 * recorded via addReferences(), merges the engine observation and
 * writes `BENCH_<name>.json` (see docs/OBSERVABILITY.md; disable with
 * OMA_RUN_REPORT=0). Progress callbacks are off by default; setting
 * OMA_BENCH_PROGRESS=1 routes throttled progress lines through
 * inform() for benches that arm them.
 */
class BenchReport
{
  public:
    explicit BenchReport(const std::string &name)
        : _report(name), _startNs(oma::Clock::nowNs())
    {
        _report.meta["bench"] = name;
        _report.meta["refs_per_pair"] =
            std::to_string(benchReferences());
    }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    ~BenchReport() { finish(); }

    /** The sink to pass into ComponentSweep::run / rank(). */
    [[nodiscard]] oma::obs::Observation *
    observation()
    {
        return &_obs;
    }

    [[nodiscard]] oma::obs::MetricRegistry &
    metrics()
    {
        return _report.metrics;
    }

    void
    setMeta(const std::string &key, std::string value)
    {
        _report.meta[key] = std::move(value);
    }

    /** Record @p refs simulated references toward the run's rate. */
    void
    addReferences(std::uint64_t refs)
    {
        _refs += refs;
    }

    /**
     * Attach a progress sink expecting @p total ticks, labelled
     * @p what, when OMA_BENCH_PROGRESS=1; otherwise a no-op. Safe to
     * call once per phase — ticks keep accumulating into one sink
     * only if armed once, so prefer one arm per run.
     */
    void
    armProgress(std::uint64_t total, const std::string &what)
    {
        const char *env = std::getenv("OMA_BENCH_PROGRESS");
        if (env == nullptr || std::string(env) != "1")
            return;
        _progress = std::make_unique<oma::obs::Progress>(
            total, oma::obs::Progress::informSink(what));
        _obs.progress = _progress.get();
    }

    /** Stamp totals, save the report, print its path; idempotent. */
    void
    finish()
    {
        if (_finished)
            return;
        _finished = true;
        _report.metrics.merge(_obs.metrics);
        const double elapsed_ms =
            oma::Clock::toMs(oma::Clock::nowNs() - _startNs);
        _report.metrics.set("time_ms/total", elapsed_ms);
        if (_refs > 0) {
            _report.metrics.add("bench/references", _refs);
            if (elapsed_ms > 0.0)
                _report.metrics.set("rate/refs_per_sec",
                                    double(_refs) /
                                        (elapsed_ms / 1000.0));
        }
        const std::string path = _report.save();
        if (!path.empty())
            std::cout << "[run report: " << path << "]\n";
    }

  private:
    oma::obs::RunReport _report;
    oma::obs::Observation _obs;
    std::unique_ptr<oma::obs::Progress> _progress;
    std::int64_t _startNs;
    std::uint64_t _refs = 0;
    bool _finished = false;
};

/**
 * Declarative sweep-suite specification: the figure/table benches
 * share one pipeline (build a ComponentSweep over a grid, run the
 * whole benchmark suite under each OS personality, feed the bench
 * report) and differ only in the grid, the OS list and the workload
 * list declared here.
 */
struct SweepSuiteSpec
{
    std::vector<oma::CacheGeometry> icacheGeoms;
    std::vector<oma::CacheGeometry> dcacheGeoms;
    std::vector<oma::TlbGeometry> tlbGeoms;
    /** Extension components (victim caches, write buffers,
     * hierarchies) appended after the classic grid. */
    std::vector<oma::ComponentSlot> components;
    std::vector<oma::OsKind> oses = {oma::OsKind::Ultrix,
                                     oma::OsKind::Mach};
    std::vector<oma::BenchmarkId> workloads = oma::allBenchmarks();
    std::string progressLabel = "grid sweep";
    /** Print one "[sweeping ...]" line per workload (Table 6/7). */
    bool announce = false;
};

/** Per-OS slice of a suite run, in workload order. */
struct SweepSuiteRun
{
    oma::OsKind os;
    std::vector<oma::SweepResult> results;
};

/**
 * Run @p spec: one store-aware sweep per (OS, workload) pair, wired
 * into @p report (progress armed for the full task count, references
 * credited, engine counters collected) when non-null. Results come
 * back grouped by OS, in the order the spec lists them.
 *
 * The spec is presentation only: each pair is phrased as a
 * single-workload api::AllocationRequest and measured by
 * api::QueryEngine over the spec's explicit grid, so the suite
 * benches answer through the same engine as the daemon and the CLI
 * (the sweep store keys depend only on workload/OS/run provenance,
 * so both spellings share trace artifacts).
 */
inline std::vector<SweepSuiteRun>
runSweepSuite(const SweepSuiteSpec &spec, BenchReport *report)
{
    using namespace oma;
    api::QueryEngine engine; // store root from OMA_STORE_DIR
    api::SweepGrid grid;
    grid.icacheGeoms = spec.icacheGeoms;
    grid.dcacheGeoms = spec.dcacheGeoms;
    grid.tlbGeoms = spec.tlbGeoms;
    grid.components = spec.components;
    const std::uint64_t tasks = 1 + spec.icacheGeoms.size() +
        spec.dcacheGeoms.size() + spec.tlbGeoms.size() +
        spec.components.size();
    if (report != nullptr)
        report->armProgress(std::uint64_t(spec.oses.size()) *
                                spec.workloads.size() * tasks,
                            spec.progressLabel);
    std::vector<SweepSuiteRun> runs;
    for (OsKind os : spec.oses) {
        SweepSuiteRun run;
        run.os = os;
        for (BenchmarkId id : spec.workloads) {
            if (spec.announce)
                std::cout << "  [sweeping " << benchmarkName(id)
                          << " under " << osKindName(os) << ": "
                          << spec.icacheGeoms.size() << " I-cache, "
                          << spec.dcacheGeoms.size() << " D-cache, "
                          << spec.tlbGeoms.size()
                          << " TLB configurations]\n";
            api::AllocationRequest request;
            request.workloads = {id};
            request.os = os;
            request.references = benchReferences();
            request.seed = 42;
            auto results = engine.sweep(
                request, report ? report->observation() : nullptr,
                &grid);
            run.results.push_back(std::move(results.front()));
            if (report != nullptr)
                report->addReferences(run.results.back().references);
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

/**
 * Suite-average of a per-configuration quantity: sums
 * @p perConfig(result, i) over every result and divides by the suite
 * size. The view callback names the component and metric, e.g.
 * `[&](const SweepResult &r, std::size_t i) {
 *      return r.icache(i).missRatio(); }`.
 */
template <typename PerConfig>
std::vector<double>
suiteAverage(const std::vector<oma::SweepResult> &results,
             std::size_t configs, PerConfig perConfig)
{
    std::vector<double> avg(configs, 0.0);
    for (const oma::SweepResult &r : results)
        for (std::size_t i = 0; i < configs; ++i)
            avg[i] += perConfig(r, i);
    for (double &v : avg)
        v /= double(results.size());
    return avg;
}

} // namespace omabench

#endif // OMA_BENCH_COMMON_HH
