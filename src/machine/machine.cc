/**
 * @file
 * Implementation of the simulated machine.
 */

#include "machine/machine.hh"

#include "tlb/mips_va.hh"

namespace oma
{

MachineParams
MachineParams::decstation3100()
{
    MachineParams p;
    p.icache.geom = CacheGeometry::fromWords(64 * 1024, 1, 1);
    p.icache.write = WritePolicy::WriteThrough;
    p.dcache.geom = CacheGeometry::fromWords(64 * 1024, 1, 1);
    p.dcache.write = WritePolicy::WriteThrough;
    p.tlb.geom = TlbGeometry::fullyAssoc(64);
    return p;
}

Machine::Machine(const MachineParams &params)
    : _params(params),
      _icache(params.icache),
      _dcache(params.dcache),
      _mmu(params.tlb, params.tlbPenalties),
      _wb(params.wbEntries, params.wbDrainCycles),
      _iPenalty(params.missPenalty(params.icache.geom)),
      _dPenalty(params.missPenalty(params.dcache.geom))
{
}

void
Machine::observe(const MemRef &ref)
{
    // Address translation precedes the cache access; handler cycles
    // are pure stall time.
    const std::uint64_t tlb_cycles = _mmu.translate(ref);
    _stalls.tlbStall += tlb_cycles;
    _cycles += tlb_cycles;

    if (ref.isFetch()) {
        ++_stalls.instructions;
        ++_cycles;
        if (!_icache.access(ref.paddr, ref.kind)) {
            const std::uint64_t wait = _wb.syncWait(_cycles);
            _stalls.wbStall += wait;
            _cycles += wait;
            _stalls.icacheStall += _iPenalty;
            _cycles += _iPenalty;
            if (_params.iPrefetchNextLine) {
                // Bring in the sequentially next line alongside the
                // demand fill (free of stall, not of pollution).
                _icache.prefetch(ref.paddr +
                                 _params.icache.geom.lineBytes);
            }
        }
        return;
    }

    // Data reference. kseg1 accesses bypass the caches entirely.
    if (isUncached(ref.vaddr)) {
        if (ref.isStore()) {
            const std::uint64_t stall = _wb.store(_cycles);
            _stalls.wbStall += stall;
            _cycles += stall;
        } else {
            _stalls.dcacheStall += _params.uncachedLoad;
            _cycles += _params.uncachedLoad;
        }
        return;
    }

    const bool hit = _dcache.access(ref.paddr, ref.kind);
    if (!hit) {
        // Stores miss for free when a one-word line needs no fetch
        // (write-through write-allocate fills the line by writing
        // it); wider lines pay the fetch-on-write.
        const bool charge = !ref.isStore() ||
            _params.dcache.geom.lineWords() > 1;
        if (charge) {
            // The miss fetch waits for the write buffer to drain.
            const std::uint64_t wait = _wb.syncWait(_cycles);
            _stalls.wbStall += wait;
            _cycles += wait;
            _stalls.dcacheStall += _dPenalty;
            _cycles += _dPenalty;
        }
    }
    if (ref.isStore() &&
        _params.dcache.write == WritePolicy::WriteThrough) {
        const std::uint64_t stall = _wb.store(_cycles);
        _stalls.wbStall += stall;
        _cycles += stall;
    }
}

std::uint64_t
Machine::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t n = 0;
    while ((max_refs == 0 || n < max_refs) && source.next(ref)) {
        observe(ref);
        ++n;
    }
    return n;
}

CpiBreakdown
Machine::breakdown(double other_cpi) const
{
    CpiBreakdown b;
    const double instr =
        static_cast<double>(std::max<std::uint64_t>(1,
            _stalls.instructions));
    b.tlb = double(_stalls.tlbStall) / instr;
    b.icache = double(_stalls.icacheStall) / instr;
    b.dcache = double(_stalls.dcacheStall) / instr;
    b.writeBuffer = double(_stalls.wbStall) / instr;
    b.other = other_cpi;
    b.cpi = 1.0 + b.stallTotal();
    return b;
}

} // namespace oma
