/**
 * @file
 * Implementation of the trace-stream summarizer.
 */

#include "trace/stats.hh"

#include "support/table.hh"
#include "tlb/mips_va.hh"

namespace oma
{

void
TraceStatistics::put(const MemRef &ref)
{
    ++_total;
    ++_byKind[unsigned(ref.kind)];
    _kernel += ref.isKernel();
    _mapped += ref.mapped;
    ++_byAsid[ref.asid];

    const char *segment = "kuseg";
    if (inKseg0(ref.vaddr))
        segment = "kseg0";
    else if (inKseg1(ref.vaddr))
        segment = "kseg1";
    else if (inKseg2(ref.vaddr))
        segment = "kseg2";
    ++_bySegment[segment];

    _pages.insert((std::uint64_t(ref.asid) << 40) | vpnOf(ref.vaddr));
    _lines.insert(ref.paddr >> 6);
}

void
TraceStatistics::print(std::ostream &os) const
{
    os << "references:        " << _total << "\n"
       << "instructions:      " << instructions() << "\n"
       << "loads / stores:    " << countOf(RefKind::Load) << " / "
       << countOf(RefKind::Store) << "\n"
       << "data per instr:    " << fmtFixed(dataPerInstruction(), 3)
       << "\n"
       << "kernel share:      " << fmtPercent(kernelShare(), 1) << "\n"
       << "TLB-mapped share:  " << fmtPercent(mappedShare(), 1) << "\n"
       << "page footprint:    " << pageFootprint() << " pages ("
       << fmtKBytes(pageFootprint() * 4096) << ")\n"
       << "line footprint:    " << lineFootprint() << " 64-B lines ("
       << fmtKBytes(lineFootprint() * 64) << ")\n"
       << "segments:\n";
    for (const auto &[name, count] : _bySegment) {
        os << "  " << name << ": " << count << " ("
           << fmtPercent(double(count) / double(_total), 1) << ")\n";
    }
    os << "address spaces:\n";
    for (const auto &[asid, count] : _byAsid) {
        os << "  asid " << asid << ": " << count << " ("
           << fmtPercent(double(count) / double(_total), 1) << ")\n";
    }
}

} // namespace oma
