/**
 * @file
 * Address spaces and the pseudo-physical memory map.
 *
 * Each simulated process owns an AddressSpace identified by a 6-bit
 * ASID. Virtual pages are mapped to pseudo-physical frames by a
 * deterministic hash, which scatters frames the way a real VM system
 * does so that physically-indexed caches see realistic conflict
 * behaviour without maintaining a frame allocator. Segments may carry
 * a share key so that pages shared between address spaces (shared
 * libraries, Mach VM sharing) map to the same frames.
 */

#ifndef OMA_OS_ADDRSPACE_HH
#define OMA_OS_ADDRSPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hh"
#include "tlb/mips_va.hh"

namespace oma
{

/** A contiguous virtual region with optional physical sharing. */
struct Segment
{
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    /** Non-zero: pages map to frames keyed by this value, not the ASID. */
    std::uint64_t shareKey = 0;
    /**
     * Linear segments get physically contiguous frames starting at a
     * hashed base — the way an OS lays out program text at exec time.
     * Non-linear (default) segments hash each page independently,
     * like demand-allocated data pages.
     */
    bool linear = false;

    bool
    contains(std::uint64_t vaddr) const
    {
        return vaddr >= base && vaddr < base + size;
    }
};

/**
 * One virtual address space. Cheap value-ish object; the OS models
 * construct a handful of them (application, servers, X).
 */
class AddressSpace
{
  public:
    /**
     * @param asid R2000 ASID (1..63; 0 is reserved for the kernel).
     * @param seed Per-system seed mixed into the frame hash.
     */
    AddressSpace(std::uint32_t asid, std::uint64_t seed);

    std::uint32_t asid() const { return _asid; }

    /** Register a shared segment (private pages need no segment). */
    void addSharedSegment(const Segment &seg);

    /**
     * Register a private segment with physically contiguous frames
     * (program text, kernel stacks).
     */
    void addLinearSegment(std::uint64_t base, std::uint64_t size);

    /**
     * Pseudo-physical address of @p vaddr in this space. kseg0 is
     * direct-mapped (like the R2000); kseg2 frames are global; kuseg
     * frames hash on the ASID unless a shared segment covers them.
     */
    std::uint64_t paddrFor(std::uint64_t vaddr) const;

  private:
    std::uint32_t _asid;
    std::uint64_t _seed;
    std::vector<Segment> _shared;
};

} // namespace oma

#endif // OMA_OS_ADDRSPACE_HH
