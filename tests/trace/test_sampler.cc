/**
 * @file
 * Unit tests for Laha-style trace sampling.
 */

#include <gtest/gtest.h>

#include "trace/sampler.hh"

namespace oma
{
namespace
{

/** Endless counter source: vaddr encodes the stream position. */
class CountingSource : public TraceSource
{
  public:
    bool
    next(MemRef &ref) override
    {
        ref = MemRef();
        ref.vaddr = _n++;
        return true;
    }

    std::uint64_t produced() const { return _n; }

  private:
    std::uint64_t _n = 0;
};

TEST(Sampler, ProducesExactSampleVolume)
{
    CountingSource source;
    SamplerParams params;
    params.sampleCount = 10;
    params.sampleLength = 1000;
    params.meanGap = 5000;
    TraceSampler sampler(source, params);

    MemRef r;
    std::uint64_t n = 0;
    std::uint64_t window_starts = 0;
    while (sampler.next(r)) {
        ++n;
        if (sampler.atWindowStart())
            ++window_starts;
    }
    EXPECT_EQ(n, params.sampleCount * params.sampleLength);
    EXPECT_EQ(window_starts, params.sampleCount);
}

TEST(Sampler, WindowsAreContiguousInsideAndGappedBetween)
{
    CountingSource source;
    SamplerParams params;
    params.sampleCount = 5;
    params.sampleLength = 100;
    params.meanGap = 1000;
    TraceSampler sampler(source, params);

    MemRef r;
    std::uint64_t prev = 0;
    bool first = true;
    while (sampler.next(r)) {
        if (!first && !sampler.atWindowStart()) {
            // Consecutive refs inside a window are adjacent.
            EXPECT_EQ(r.vaddr, prev + 1);
        }
        if (!first && sampler.atWindowStart()) {
            // Between windows there is a gap.
            EXPECT_GT(r.vaddr, prev + 1);
        }
        prev = r.vaddr;
        first = false;
    }
}

TEST(Sampler, MeanGapRoughlyHonoured)
{
    CountingSource source;
    SamplerParams params;
    params.sampleCount = 200;
    params.sampleLength = 10;
    params.meanGap = 500;
    params.seed = 5;
    TraceSampler sampler(source, params);
    MemRef r;
    while (sampler.next(r)) {
    }
    // Total stream consumed = samples + gaps; gaps average ~meanGap.
    const double consumed = double(source.produced());
    const double expected = 200.0 * 10 + 201.0 * 500;
    EXPECT_NEAR(consumed, expected, 0.25 * expected);
}

TEST(Sampler, ExhaustedUnderlyingSourceStops)
{
    VectorTraceSource source(std::vector<MemRef>(100));
    SamplerParams params;
    params.sampleCount = 10;
    params.sampleLength = 50;
    params.meanGap = 50;
    TraceSampler sampler(source, params);
    MemRef r;
    std::uint64_t n = 0;
    while (sampler.next(r))
        ++n;
    EXPECT_LE(n, 100u);
}

TEST(Sampler, DeterministicForSeed)
{
    auto run = [](std::uint64_t seed) {
        CountingSource source;
        SamplerParams params;
        params.sampleCount = 5;
        params.sampleLength = 20;
        params.meanGap = 300;
        params.seed = seed;
        TraceSampler sampler(source, params);
        std::vector<std::uint64_t> order;
        MemRef r;
        while (sampler.next(r))
            order.push_back(r.vaddr);
        return order;
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10));
}

} // namespace
} // namespace oma
