# Empty compiler generated dependencies file for oma_tests.
# This may be replaced when dependencies are built.
