file(REMOVE_RECURSE
  "liboma_workload.a"
)
