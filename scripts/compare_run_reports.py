#!/usr/bin/env python3
"""Compare two oma-run-report-v1 files for result identity.

Usage: compare_run_reports.py BASE.json OTHER.json [options]

The comparison covers counters and histograms -- the deterministic,
work-derived half of a report (docs/OBSERVABILITY.md). Wall-clock
gauges, phase call counts, throughput rates, store traffic and pool
shape legitimately differ between a cold and a warm run of the same
experiment, so they are excluded by default:

  prefixes: time_ms/ calls/ rate/ bench/ store/ store_warm/
            threadpool/ speed/
  names:    sweep/records sweep/record_skips

Everything else must match exactly: the artifact store's contract is
that a warm run reproduces the cold run's results bit for bit.

Options:
  --require-zero NAME      fail unless counter NAME is absent or 0 in
                           OTHER (e.g. sweep/records on a warm run)
  --require-positive NAME  fail unless counter NAME is > 0 in OTHER
                           (e.g. store/trace_hits on a warm run)

Exits non-zero listing every difference and failed requirement.
"""

import json
import sys

EXCLUDED_PREFIXES = (
    "time_ms/",
    "calls/",
    "rate/",
    "bench/",
    "store/",
    "store_warm/",
    "threadpool/",
    "speed/",
)
EXCLUDED_NAMES = {"sweep/records", "sweep/record_skips"}


def excluded(name):
    return name in EXCLUDED_NAMES or name.startswith(EXCLUDED_PREFIXES)


def comparable(section):
    return {k: v for k, v in section.items() if not excluded(k)}


def diff_section(what, base, other, errors):
    for key in sorted(set(base) | set(other)):
        if key not in base:
            errors.append(f"{what} {key}: only in OTHER ({other[key]!r})")
        elif key not in other:
            errors.append(f"{what} {key}: only in BASE ({base[key]!r})")
        elif base[key] != other[key]:
            errors.append(
                f"{what} {key}: BASE {base[key]!r} != OTHER {other[key]!r}")


def main(argv):
    args = argv[1:]
    require_zero, require_positive = [], []
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--require-zero" and i + 1 < len(args):
            require_zero.append(args[i + 1])
            i += 2
        elif args[i] == "--require-positive" and i + 1 < len(args):
            require_positive.append(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    docs = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, ValueError) as e:
            print(f"{path}: unreadable or invalid JSON: {e}",
                  file=sys.stderr)
            return 2
    base, other = docs

    errors = []
    diff_section("counter", comparable(base["counters"]),
                 comparable(other["counters"]), errors)
    diff_section("histogram", comparable(base["histograms"]),
                 comparable(other["histograms"]), errors)

    other_counters = other["counters"]
    for name in require_zero:
        if other_counters.get(name, 0) != 0:
            errors.append(
                f"required zero: counter {name} is "
                f"{other_counters.get(name)!r} in {paths[1]}")
    for name in require_positive:
        if not other_counters.get(name, 0) > 0:
            errors.append(
                f"required positive: counter {name} is "
                f"{other_counters.get(name, 0)!r} in {paths[1]}")

    if errors:
        for e in errors:
            print(f"MISMATCH: {e}", file=sys.stderr)
        return 1
    compared = len(comparable(base["counters"])) + len(
        comparable(base["histograms"]))
    print(f"OK: {paths[0]} and {paths[1]} agree on {compared} "
          "counters/histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
