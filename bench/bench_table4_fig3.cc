/**
 * @file
 * Table 4 / Figure 3: CPI stall components for every workload under
 * both operating systems (the components of CPI above 1.0).
 */

#include <iostream>
#include <string>

#include "bench/common.hh"
#include "obs/export.hh"
#include "support/table.hh"

using namespace oma;

namespace
{

/** Paper's Table 4 values, for side-by-side comparison. */
struct PaperRow
{
    double cpi, tlb, icache, dcache, wb, other;
};

PaperRow
paperRow(BenchmarkId id, OsKind os)
{
    const bool mach = os == OsKind::Mach;
    switch (id) {
      case BenchmarkId::Mpeg:
        return mach ? PaperRow{2.06, 0.15, 0.32, 0.30, 0.21, 0.08}
                    : PaperRow{1.66, 0.01, 0.10, 0.26, 0.14, 0.15};
      case BenchmarkId::Mab:
        return mach ? PaperRow{2.13, 0.12, 0.48, 0.28, 0.21, 0.04}
                    : PaperRow{1.88, 0.02, 0.18, 0.38, 0.26, 0.04};
      case BenchmarkId::Jpeg:
        return mach ? PaperRow{1.51, 0.05, 0.08, 0.17, 0.10, 0.11}
                    : PaperRow{1.31, 0.00, 0.02, 0.13, 0.06, 0.10};
      case BenchmarkId::Ousterhout:
        return mach ? PaperRow{2.26, 0.21, 0.44, 0.27, 0.31, 0.03}
                    : PaperRow{2.19, 0.00, 0.11, 0.80, 0.24, 0.04};
      case BenchmarkId::IOzone:
        return mach ? PaperRow{2.25, 0.17, 0.34, 0.39, 0.31, 0.04}
                    : PaperRow{2.09, 0.01, 0.10, 0.71, 0.18, 0.09};
      case BenchmarkId::VideoPlay:
        return mach ? PaperRow{2.51, 0.28, 0.49, 0.43, 0.27, 0.04}
                    : PaperRow{2.48, 0.05, 0.35, 0.82, 0.23, 0.03};
    }
    return {};
}

} // namespace

int
main()
{
    omabench::banner("CPI stall components for all workloads "
                     "(measured vs paper)",
                     "Table 4 and Figure 3");

    omabench::BenchReport report("table4_fig3");
    const RunConfig rc = omabench::benchRun();

    TextTable table({"Workload", "OS", "", "CPI", "TLB", "I-cache",
                     "D-cache", "Write Buffer", "Other"});
    CpiBreakdown sum[2];
    PaperRow paper_sum[2] = {};

    for (BenchmarkId id : allBenchmarks()) {
        table.addRule();
        for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
            const unsigned oi = os == OsKind::Mach;
            const BaselineResult r = runBaseline(id, os, rc);
            obs::exportBaseline(report.metrics(),
                                std::string(benchmarkName(id)) + "/" +
                                    osKindName(os),
                                r);
            report.addReferences(r.references);
            const PaperRow p = paperRow(id, os);
            table.addRow({benchmarkName(id), osKindName(os),
                          "measured", fmtFixed(r.cpi.cpi, 2),
                          fmtFixed(r.cpi.tlb, 2),
                          fmtFixed(r.cpi.icache, 2),
                          fmtFixed(r.cpi.dcache, 2),
                          fmtFixed(r.cpi.writeBuffer, 2),
                          fmtFixed(r.cpi.other, 2)});
            table.addRow({"", "", "paper", fmtFixed(p.cpi, 2),
                          fmtFixed(p.tlb, 2), fmtFixed(p.icache, 2),
                          fmtFixed(p.dcache, 2), fmtFixed(p.wb, 2),
                          fmtFixed(p.other, 2)});
            sum[oi].cpi += r.cpi.cpi;
            sum[oi].tlb += r.cpi.tlb;
            sum[oi].icache += r.cpi.icache;
            sum[oi].dcache += r.cpi.dcache;
            sum[oi].writeBuffer += r.cpi.writeBuffer;
            sum[oi].other += r.cpi.other;
            paper_sum[oi].cpi += p.cpi;
            paper_sum[oi].tlb += p.tlb;
            paper_sum[oi].icache += p.icache;
            paper_sum[oi].dcache += p.dcache;
            paper_sum[oi].wb += p.wb;
            paper_sum[oi].other += p.other;
        }
    }

    const double n = double(numBenchmarks);
    table.addRule();
    for (OsKind os : {OsKind::Ultrix, OsKind::Mach}) {
        const unsigned oi = os == OsKind::Mach;
        table.addRow({"Average", osKindName(os), "measured",
                      fmtFixed(sum[oi].cpi / n, 2),
                      fmtFixed(sum[oi].tlb / n, 2),
                      fmtFixed(sum[oi].icache / n, 2),
                      fmtFixed(sum[oi].dcache / n, 2),
                      fmtFixed(sum[oi].writeBuffer / n, 2),
                      fmtFixed(sum[oi].other / n, 2)});
        table.addRow({"", "", "paper",
                      fmtFixed(paper_sum[oi].cpi / n, 2),
                      fmtFixed(paper_sum[oi].tlb / n, 2),
                      fmtFixed(paper_sum[oi].icache / n, 2),
                      fmtFixed(paper_sum[oi].dcache / n, 2),
                      fmtFixed(paper_sum[oi].wb / n, 2),
                      fmtFixed(paper_sum[oi].other / n, 2)});
    }
    table.print(std::cout);

    std::cout << "\nShape criteria (Figure 3): for every workload, "
                 "Mach raises total CPI and the TLB and I-cache "
                 "components, while the D-cache component's share "
                 "falls.\n";
    return 0;
}
