/**
 * @file
 * Out-of-line pieces of the trace module.
 */

#include "trace/memref.hh"
#include "trace/source.hh"

namespace oma
{

const char *
refKindName(RefKind kind)
{
    switch (kind) {
      case RefKind::IFetch:
        return "ifetch";
      case RefKind::Load:
        return "load";
      case RefKind::Store:
        return "store";
    }
    return "?";
}

const char *
modeName(Mode mode)
{
    return mode == Mode::User ? "user" : "kernel";
}

std::uint64_t
drain(TraceSource &source, const std::function<void(const MemRef &)> &fn,
      std::uint64_t limit)
{
    MemRef ref;
    std::uint64_t n = 0;
    while ((limit == 0 || n < limit) && source.next(ref)) {
        fn(ref);
        ++n;
    }
    return n;
}

} // namespace oma
