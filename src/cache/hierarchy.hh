/**
 * @file
 * Cache-hierarchy models: unified L1 organizations and two-level
 * hierarchies.
 *
 * Table 1 shows that several contemporary processors (i486, Cyrix
 * 486, PowerPC 601) used *unified* on-chip caches, and the paper
 * notes that high-end parts would spend additional on-chip memory on
 * a *second-level* cache rather than larger primaries. These models
 * extend the cost/benefit vocabulary to both choices:
 *
 *  - UnifiedCache: one array serving instruction and data references
 *    (with the structural port conflict a unified L1 suffers when a
 *    fetch and a data access arrive in the same cycle);
 *  - TwoLevelCache: split L1s backed by a shared L2; L1 misses that
 *    hit in the L2 pay a short penalty, L2 misses pay the full
 *    memory penalty.
 */

#ifndef OMA_CACHE_HIERARCHY_HH
#define OMA_CACHE_HIERARCHY_HH

#include <string>

#include "cache/cache.hh"

namespace oma
{

/** Stall accounting of a hierarchy simulation. */
struct HierarchyStats
{
    std::uint64_t instructions = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t l1Misses = 0;   //!< Combined I+D L1 misses.
    std::uint64_t l2Hits = 0;     //!< L1 misses served by the L2.
    std::uint64_t l2Misses = 0;   //!< Went to memory.
    std::uint64_t portConflicts = 0; //!< Unified-L1 structural hazards.
    std::uint64_t stallCycles = 0;

    double
    cpiContribution() const
    {
        return instructions == 0
            ? 0.0
            : double(stallCycles) / double(instructions);
    }
};

/** Penalties of a hierarchy. */
struct HierarchyPenalties
{
    /** L1 miss served by the L2: first word + per extra word. */
    std::uint64_t l2FirstWord = 2;
    std::uint64_t l2PerWord = 0;
    /** L1/L2 miss served by memory (the paper's off-chip penalty). */
    std::uint64_t memFirstWord = 6;
    std::uint64_t memPerWord = 1;
    /** Extra cycle when a unified L1 serves fetch+data in one cycle. */
    std::uint64_t portConflict = 1;

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.u64("hier.l2_first_word", l2FirstWord);
        fp.u64("hier.l2_per_word", l2PerWord);
        fp.u64("hier.mem_first_word", memFirstWord);
        fp.u64("hier.mem_per_word", memPerWord);
        fp.u64("hier.port_conflict", portConflict);
    }
};

/**
 * Full configuration of one hierarchy organization: either split L1
 * I/D caches backed by an optional unified L2 (TwoLevelCache), or one
 * unified L1 array serving both reference kinds (UnifiedCache, in
 * which case @c l1i names the unified array and @c l1d is ignored).
 *
 * A unified organization cannot also declare an L2: UnifiedCache
 * simulates a single array, so a `unified && hasL2` combination
 * would be simulated without the L2 yet its describe()/fingerprint
 * (and, before the search grew validate(), its area accounting)
 * would disagree about whether one exists. validate() rejects the
 * combination fatally; every consumer that admits externally built
 * params (makeComponent, the allocation search) calls it.
 */
struct HierarchyParams
{
    CacheParams l1i; //!< Also the unified array when @c unified.
    CacheParams l1d;
    CacheParams l2;
    bool hasL2 = false;
    bool unified = false;
    HierarchyPenalties penalties;

    /** Abort via fatal() on a contradictory organization
     * (`unified && hasL2`: a unified L1 has no split pair for an L2
     * to back; spend the area on the unified array instead). */
    void validate() const;

    /** Append every behaviour-determining field to a fingerprint. */
    void
    fingerprint(Fingerprint &fp) const
    {
        fp.str("hier.l1i", "");
        l1i.fingerprint(fp);
        fp.str("hier.l1d", "");
        l1d.fingerprint(fp);
        fp.str("hier.l2", "");
        l2.fingerprint(fp);
        fp.flag("hier.has_l2", hasL2);
        fp.flag("hier.unified", unified);
        penalties.fingerprint(fp);
    }

    /** "8-KB I + 4-KB D + 32-KB L2" style description. */
    std::string describe() const;
};

/**
 * A unified L1 cache serving both reference kinds, modelling the
 * structural port conflict: every data reference contends with the
 * same-cycle instruction fetch.
 */
class UnifiedCache
{
  public:
    UnifiedCache(const CacheParams &params,
                 const HierarchyPenalties &penalties);

    /** Observe one reference (pass every fetch, load and store). */
    void access(std::uint64_t paddr, RefKind kind);

    const HierarchyStats &stats() const { return _stats; }
    const Cache &cache() const { return _cache; }

  private:
    Cache _cache;
    HierarchyPenalties _penalties;
    HierarchyStats _stats;
    std::uint64_t _penalty;
};

/**
 * Split L1 I/D caches backed by a unified L2 (optional: L2 capacity
 * of zero disables it, leaving a plain split-L1 system for
 * apples-to-apples comparisons).
 */
class TwoLevelCache
{
  public:
    TwoLevelCache(const CacheParams &l1i, const CacheParams &l1d,
                  const CacheParams &l2, bool has_l2,
                  const HierarchyPenalties &penalties);

    /** Split-hierarchy form of @p params (params.unified must be
     * false; a unified organization needs a UnifiedCache). */
    explicit TwoLevelCache(const HierarchyParams &params);

    void access(std::uint64_t paddr, RefKind kind);

    const HierarchyStats &stats() const { return _stats; }
    const Cache &l1i() const { return _l1i; }
    const Cache &l1d() const { return _l1d; }
    const Cache &l2() const { return _l2; }
    bool hasL2() const { return _hasL2; }

  private:
    Cache _l1i;
    Cache _l1d;
    Cache _l2;
    bool _hasL2;
    HierarchyPenalties _penalties;
    HierarchyStats _stats;
    std::uint64_t _l1iPenaltyL2;
    std::uint64_t _l1dPenaltyL2;
    std::uint64_t _l1iPenaltyMem;
    std::uint64_t _l1dPenaltyMem;
    std::uint64_t _l2PenaltyMem;
};

} // namespace oma

#endif // OMA_CACHE_HIERARCHY_HH
