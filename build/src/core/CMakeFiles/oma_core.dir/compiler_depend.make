# Empty compiler generated dependencies file for oma_core.
# This may be replaced when dependencies are built.
