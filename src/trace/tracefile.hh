/**
 * @file
 * Binary trace-file format (reader and writer).
 *
 * Version 3 (current) stores each column chunk through the
 * delta/varint codec (trace/codec.hh): per-kind address deltas,
 * nibble-packed flags and run-length ASIDs, framed by a per-chunk
 * header carrying the payload size and an FNV-1a checksum over the
 * payload and the chunk's packed events. Page-invalidation events
 * stay pinned to their trace position, so a file can drive
 * everything the live generator can — including the sweep engines,
 * whose TLB replays need the events. The file header carries a
 * magic, a format version, the record and event counts and the
 * stream's non-memory stall rate; counts are patched on close(), so
 * a writer must be close()d (or destroyed) for the file to be valid.
 *
 * Version 2 (chunked raw little-endian columns: 32-bit
 * virtual/physical address, 8-bit ASID, 8-bit flags) and version 1
 * (fixed-size 24-byte MemRef records, no events) are still readable;
 * TraceFileReader handles all three transparently.
 */

#ifndef OMA_TRACE_TRACEFILE_HH
#define OMA_TRACE_TRACEFILE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "trace/recorded.hh"
#include "trace/source.hh"

namespace oma
{

/** On-disk header of a trace file (both versions). */
struct TraceFileHeader
{
    static constexpr std::uint64_t magicValue = 0x454341525441
        /* "ATRACE" */;
    static constexpr std::uint32_t currentVersion = 3;

    std::uint64_t magic = magicValue;
    std::uint32_t version = currentVersion;
    std::uint32_t reserved = 0;
    std::uint64_t recordCount = 0;
    // Version >= 2 extends the v1 header with:
    std::uint64_t eventCount = 0;
    double otherCpi = 0.0;

    /** Bytes of the on-disk header for @p version. */
    static std::size_t sizeForVersion(std::uint32_t version);
};

/**
 * Streams references (and inline invalidation events) to a v3 trace
 * file. References are buffered into one column chunk at a time and
 * delta/varint-encoded when the chunk fills; every write is checked,
 * so a full disk or I/O error fails fatally instead of silently
 * truncating the trace behind a valid header.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; truncates any existing file. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void put(const MemRef &ref) override;

    /** Record a page invalidation at the current position (it will
     * replay immediately before the next put() reference). */
    void putInvalidation(std::uint64_t vpn, std::uint32_t asid,
                         bool global);

    /** Attach the stream's non-memory stall rate to the header. */
    void setOtherCpi(double cpi) { _otherCpi = cpi; }

    /** Flush, patch the header and close the file. */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return _count; }

    /** Events written so far. */
    std::uint64_t eventCount() const { return _eventCount; }

  private:
    void flushChunk();
    /** Fatal if the underlying stream has failed. */
    void checkStream(const char *what);

    std::ofstream _out;
    std::string _path;
    std::uint64_t _count = 0;
    std::uint64_t _eventCount = 0;
    double _otherCpi = 0.0;
    bool _open = false;

    // Current column chunk (absolute event indices).
    std::vector<std::uint32_t> _vaddr;
    std::vector<std::uint32_t> _paddr;
    std::vector<std::uint8_t> _asid;
    std::vector<std::uint8_t> _flags;
    std::vector<TraceEvent> _chunkEvents;
};

/** Replays a trace file (v1, v2 or v3) as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    using InvalidateHook = std::function<void(
        std::uint64_t vpn, std::uint32_t asid, bool global)>;

    /** Open @p path; calls fatal() on malformed files. */
    explicit TraceFileReader(const std::string &path);

    /**
     * Produce the next reference. For v2+ files, any invalidation
     * events pinned to it fire through the hook (if set) first —
     * the same contract System's live hook provides.
     */
    bool next(MemRef &ref) override;

    /** Register a page-invalidation callback (v2+ events). */
    void setInvalidateHook(InvalidateHook hook)
    {
        _hook = std::move(hook);
    }

    /** Total records according to the header. */
    std::uint64_t count() const { return _header.recordCount; }

    /** Total events according to the header (0 for v1 files). */
    std::uint64_t eventCount() const { return _header.eventCount; }

    /** Non-memory stall rate recorded with the stream (v2+). */
    double otherCpi() const { return _header.otherCpi; }

    /** On-disk format version (1, 2 or 3). */
    std::uint32_t version() const { return _header.version; }

  private:
    bool nextV1(MemRef &ref);
    /** Chunked-column replay shared by v2 and v3. */
    bool nextChunked(MemRef &ref);
    /** Load the next chunk (v2 raw or v3 encoded); false at end. */
    bool loadChunk();

    std::ifstream _in;
    std::string _path;
    TraceFileHeader _header;
    std::uint64_t _read = 0;
    InvalidateHook _hook;

    // Decoded current chunk (v2/v3).
    std::vector<std::uint32_t> _vaddr;
    std::vector<std::uint32_t> _paddr;
    std::vector<std::uint8_t> _asid;
    std::vector<std::uint8_t> _flags;
    std::vector<TraceEvent> _chunkEvents;
    std::size_t _chunkPos = 0;
    std::size_t _chunkEventPos = 0;
};

/** Write @p trace (references, events, otherCpi) to a v3 file. */
void writeTrace(const std::string &path, const RecordedTrace &trace);

/**
 * Load an entire trace file (v1, v2 or v3) into a RecordedTrace,
 * ready to feed a ComponentSweep or any other replay consumer.
 */
RecordedTrace readTrace(const std::string &path);

} // namespace oma

#endif // OMA_TRACE_TRACEFILE_HH
