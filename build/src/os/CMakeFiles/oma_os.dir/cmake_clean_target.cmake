file(REMOVE_RECURSE
  "liboma_os.a"
)
