/**
 * @file
 * Implementation of component sweeps.
 */

#include "core/sweep.hh"

#include <memory>

#include "cache/replay.hh"
#include "obs/export.hh"
#include "store/codec.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "tlb/replay.hh"
#include "trace/tracefile.hh"

namespace oma
{

namespace
{

/**
 * Cache parameters for sweep slot @p index of bank @p bank_salt.
 * Every geometry owns a private Rng stream derived from its index, so
 * replacement tie-breaking (Random policy) is a function of the
 * configuration alone, never of which thread replays it or of which
 * other configurations share the run.
 */
CacheParams
sweepCacheParams(const CacheGeometry &geom, std::uint64_t bank_salt,
                 std::size_t index)
{
    CacheParams p;
    p.geom = geom;
    p.seed = mix64((bank_salt << 32) | std::uint64_t(index));
    return p;
}

constexpr std::uint64_t icacheBankSalt = 1;
constexpr std::uint64_t dcacheBankSalt = 2;

/**
 * Fingerprint of everything upstream of the record phase: formats,
 * OS personality, seed, trace length and the complete workload
 * description. Every store key (the recording and each replay shard)
 * extends this base, so any change in provenance keys a fresh entry.
 * RunConfig::userOnly is deliberately absent — the sweep path never
 * consults it.
 */
Fingerprint
sweepBaseKey(const WorkloadParams &workload, OsKind os,
             const RunConfig &run)
{
    Fingerprint fp;
    fp.u64("store.format_version", ArtifactStore::formatVersion);
    fp.u64("trace.format_version", TraceFileHeader::currentVersion);
    fp.str("run.os", osKindName(os));
    fp.u64("run.seed", run.seed);
    fp.u64("run.references", run.references);
    workload.fingerprint(fp);
    return fp;
}

Fingerprint
traceKey(const Fingerprint &base)
{
    Fingerprint key = base;
    key.str("artifact", "trace");
    return key;
}

} // namespace

ComponentSweep::ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                               std::vector<CacheGeometry> dcache_geoms,
                               std::vector<TlbGeometry> tlb_geoms,
                               const MachineParams &reference_machine)
    : _icacheGeoms(std::move(icache_geoms)),
      _dcacheGeoms(std::move(dcache_geoms)),
      _tlbGeoms(std::move(tlb_geoms)),
      _refMachine(reference_machine)
{
}

SweepResult
ComponentSweep::run(const WorkloadParams &workload, OsKind os,
                    const RunConfig &run,
                    obs::Observation *observation) const
{
    const std::unique_ptr<ArtifactStore> store =
        ArtifactStore::open(run.storeDir);
    const Fingerprint base = sweepBaseKey(workload, os, run);

    // Phase 1 (serial): capture the stream once. The workload RNG
    // and the OS model advance exactly as in a legacy single-pass
    // run; page-invalidation events land inline in the recording at
    // the index of the reference the OS fired them while producing,
    // which is where every replay applies them. A warm store skips
    // this phase entirely: the decoded recording is byte-identical
    // to what a live record would produce.
    RecordedTrace trace;
    bool have_trace = false;
    if (store != nullptr) {
        std::string payload;
        if (store->load(traceKey(base), payload) &&
            store::decodeTrace(payload, trace)) {
            have_trace = true;
            if (observation != nullptr) {
                observation->metrics.add("store/trace_hits");
                observation->metrics.add("sweep/record_skips");
            }
        }
    }
    if (!have_trace) {
        System system(workload, os, run.seed);
        if (observation != nullptr) {
            obs::Span span(observation->metrics, "sweep/record");
            trace = system.record(run.references);
            observation->metrics.add("sweep/records");
        } else {
            trace = system.record(run.references);
        }
        if (store != nullptr) {
            const std::string payload = store::encodeTrace(trace);
            store->save(traceKey(base), payload);
            if (observation != nullptr)
                obs::exportEncodedTrace(observation->metrics, "trace",
                                        payload.size(), trace.size());
        }
    }

    SweepResult result =
        replayTrace(trace, ThreadPool::resolveThreads(run.threads),
                    observation, store.get(), base);
    if (store != nullptr && observation != nullptr)
        obs::exportArtifactStore(observation->metrics, "store",
                                 *store);
    return result;
}

SweepResult
ComponentSweep::run(const RecordedTrace &trace, unsigned threads,
                    obs::Observation *observation) const
{
    return replayTrace(trace, ThreadPool::resolveThreads(threads),
                       observation, nullptr, Fingerprint());
}

SweepResult
ComponentSweep::replayTrace(const RecordedTrace &trace,
                            unsigned threads,
                            obs::Observation *observation,
                            const ArtifactStore *store,
                            const Fingerprint &base_key) const
{
    // Phase 2 (parallel): replay per consumer. One flat index space
    // across the reference machine and all three component kinds
    // keeps every lane busy; each index owns its private simulator
    // and writes only its own result slot, so the reduction order is
    // fixed by construction and the results are bitwise identical
    // for any thread count. Cache and TLB tasks stream the packed
    // trace columns through the batched replay kernels
    // (cache/replay.hh, tlb/replay.hh) — the same access bodies as
    // the scalar path, so batching cannot change any counter. With
    // the store enabled, each task first tries to load its shard
    // (exact integer counters, so a hit reproduces the live slot
    // bit-for-bit) and persists it right after simulating — which is
    // what makes a killed sweep resume at its last completed shard.
    const std::size_t n_i = _icacheGeoms.size();
    const std::size_t n_d = _dcacheGeoms.size();
    const std::size_t n_t = _tlbGeoms.size();

    SweepResult result;
    result.references = trace.size();
    result._icacheGeoms = _icacheGeoms;
    result._dcacheGeoms = _dcacheGeoms;
    result._tlbGeoms = _tlbGeoms;
    result._icacheStats.resize(n_i);
    result._dcacheStats.resize(n_d);
    result._tlbStats.resize(n_t);
    result.otherCpi = trace.otherCpi();

    // Per-task metric shards: each task writes only its own slot, so
    // the post-loop merge (in task order) is a pure function of the
    // work — never of the schedule or lane count.
    std::vector<obs::MetricRegistry> shards(
        observation != nullptr ? 1 + n_i + n_d + n_t : 0);

    const auto loadShard = [&](const Fingerprint &key,
                               auto decode) -> bool {
        if (store == nullptr)
            return false;
        std::string payload;
        return store->load(key, payload) && decode(payload);
    };
    const auto saveShard = [&](const Fingerprint &key,
                               const std::string &payload) {
        if (store != nullptr)
            store->save(key, payload);
    };

    std::uint64_t wb_stall = 0;
    const auto body = [&](std::size_t task) {
        if (task == 0) {
            // Reference machine replay: stall attribution for the
            // configuration-independent CPI components.
            Fingerprint key = base_key;
            key.str("artifact", "shard");
            key.str("component", "machine");
            _refMachine.fingerprint(key);

            store::MachineShard shard;
            if (!loadShard(key, [&](const std::string &p) {
                    return store::decodeMachineShard(p, shard);
                })) {
                Machine machine(_refMachine);
                trace.replay(
                    [&](const MemRef &ref) { machine.observe(ref); },
                    [&](const TraceEvent &e) {
                        machine.mmu().invalidatePage(e.vpn, e.asid,
                                                     e.global);
                    });
                shard.instructions = machine.stalls().instructions;
                shard.icacheStall = machine.stalls().icacheStall;
                shard.dcacheStall = machine.stalls().dcacheStall;
                shard.wbStall = machine.stalls().wbStall;
                shard.tlbStall = machine.stalls().tlbStall;
                shard.wbStores = machine.writeBuffer().stores();
                shard.wbStallCycles =
                    machine.writeBuffer().stallCycles();
                saveShard(key, store::encodeMachineShard(shard));
            }
            result.instructions = shard.instructions;
            wb_stall = shard.wbStall;
            if (observation != nullptr) {
                const StallCounters stalls{
                    shard.instructions, shard.icacheStall,
                    shard.dcacheStall, shard.wbStall, shard.tlbStall};
                obs::exportStallCounters(shards[task], "machine",
                                         stalls);
                obs::exportWriteBufferCounters(shards[task], "wb",
                                               shard.wbStores,
                                               shard.wbStallCycles);
            }
        } else if (task <= n_i) {
            const std::size_t i = task - 1;
            const CacheParams params =
                sweepCacheParams(_icacheGeoms[i], icacheBankSalt, i);
            Fingerprint key = base_key;
            key.str("artifact", "shard");
            key.str("component", "icache");
            key.u64("index", i);
            params.fingerprint(key);

            CacheStats stats;
            if (!loadShard(key, [&](const std::string &p) {
                    return store::decodeCacheStats(p, stats);
                })) {
                Cache cache(params);
                const std::uint64_t refs =
                    replayFetchBatched(trace, cache);
                stats = cache.stats();
                saveShard(key, store::encodeCacheStats(stats));
                if (observation != nullptr)
                    shards[task].add("replay/batched_refs", refs);
            }
            result._icacheStats[i] = stats;
            if (observation != nullptr)
                obs::exportCacheStats(shards[task], "icache", stats);
        } else if (task <= n_i + n_d) {
            const std::size_t d = task - 1 - n_i;
            const CacheParams params =
                sweepCacheParams(_dcacheGeoms[d], dcacheBankSalt, d);
            Fingerprint key = base_key;
            key.str("artifact", "shard");
            key.str("component", "dcache");
            key.u64("index", d);
            params.fingerprint(key);

            CacheStats stats;
            if (!loadShard(key, [&](const std::string &p) {
                    return store::decodeCacheStats(p, stats);
                })) {
                Cache cache(params);
                const std::uint64_t refs =
                    replayCachedDataBatched(trace, cache);
                stats = cache.stats();
                saveShard(key, store::encodeCacheStats(stats));
                if (observation != nullptr)
                    shards[task].add("replay/batched_refs", refs);
            }
            result._dcacheStats[d] = stats;
            if (observation != nullptr)
                obs::exportCacheStats(shards[task], "dcache", stats);
        } else {
            const std::size_t t = task - 1 - n_i - n_d;
            TlbParams p;
            p.geom = _tlbGeoms[t];
            Fingerprint key = base_key;
            key.str("artifact", "shard");
            key.str("component", "tlb");
            key.u64("index", t);
            p.fingerprint(key);
            _refMachine.tlbPenalties.fingerprint(key);

            MmuStats stats;
            if (!loadShard(key, [&](const std::string &pay) {
                    return store::decodeMmuStats(pay, stats);
                })) {
                Mmu mmu(p, _refMachine.tlbPenalties);
                const std::uint64_t refs =
                    replayTranslateBatched(trace, mmu);
                stats = mmu.stats();
                saveShard(key, store::encodeMmuStats(stats));
                if (observation != nullptr)
                    shards[task].add("replay/batched_refs", refs);
            }
            result._tlbStats[t] = stats;
            if (observation != nullptr)
                obs::exportMmuStats(shards[task], "tlb", stats);
        }
        if (observation != nullptr && observation->progress != nullptr)
            observation->progress->tick();
    };

    const std::size_t n_tasks = 1 + n_i + n_d + n_t;
    if (observation != nullptr) {
        // Run on an explicit pool so its work counters can be
        // exported alongside the component metrics.
        obs::MetricRegistry &m = observation->metrics;
        {
            obs::Span span(m, "sweep/replay");
            ThreadPool pool(threads);
            pool.parallelFor(0, n_tasks, body);
            obs::exportThreadPool(m, "threadpool", pool);
        }
        for (const obs::MetricRegistry &shard : shards)
            m.merge(shard);
        obs::exportRecordedTrace(m, "trace", trace);
        m.add("sweep/replays");
    } else {
        parallelFor(threads, 0, n_tasks, body);
    }

    const double instr =
        double(std::max<std::uint64_t>(1, result.instructions));
    result.wbCpi = double(wb_stall) / instr;
    return result;
}

ComponentCpiTables
ComponentCpiTables::average(const std::vector<SweepResult> &results,
                            const MachineParams &mp)
{
    panicIf(results.empty(), "cannot average zero sweep results");
    ComponentCpiTables tables;
    const SweepResult &first = results.front();
    tables.icacheGeoms = first.icacheGeometries();
    tables.dcacheGeoms = first.dcacheGeometries();
    tables.tlbGeoms = first.tlbGeometries();
    tables.icacheCpi.assign(tables.icacheGeoms.size(), 0.0);
    tables.dcacheCpi.assign(tables.dcacheGeoms.size(), 0.0);
    tables.tlbCpi.assign(tables.tlbGeoms.size(), 0.0);

    double wb = 0.0, other = 0.0;
    for (const auto &r : results) {
        panicIf(r.icacheCount() != tables.icacheGeoms.size() ||
                    r.dcacheCount() != tables.dcacheGeoms.size() ||
                    r.tlbCount() != tables.tlbGeoms.size(),
                "sweep results built from different geometry lists");
        for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
            tables.icacheCpi[i] += r.icache(i).cpi(mp);
        for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
            tables.dcacheCpi[i] += r.dcache(i).cpi(mp);
        for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
            tables.tlbCpi[i] += r.tlb(i).cpi();
        wb += r.wbCpi;
        other += r.otherCpi;
    }
    const double n = double(results.size());
    for (auto &v : tables.icacheCpi)
        v /= n;
    for (auto &v : tables.dcacheCpi)
        v /= n;
    for (auto &v : tables.tlbCpi)
        v /= n;
    // Like the paper's Tables 6/7, the total CPI of an allocation is
    // 1 + TLB + I-cache + D-cache; write-buffer and non-memory
    // stalls are configuration-independent and kept separately.
    tables.baseCpi = 1.0;
    tables.wbCpi = wb / n;
    tables.otherCpi = other / n;
    return tables;
}

} // namespace oma
