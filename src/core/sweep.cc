/**
 * @file
 * Implementation of component sweeps.
 */

#include "core/sweep.hh"

#include "support/logging.hh"
#include "support/threadpool.hh"
#include "tlb/mips_va.hh"

namespace oma
{

namespace
{

/**
 * Cache parameters for sweep slot @p index of bank @p bank_salt.
 * Every geometry owns a private Rng stream derived from its index, so
 * replacement tie-breaking (Random policy) is a function of the
 * configuration alone, never of which thread replays it or of which
 * other configurations share the run.
 */
CacheParams
sweepCacheParams(const CacheGeometry &geom, std::uint64_t bank_salt,
                 std::size_t index)
{
    CacheParams p;
    p.geom = geom;
    p.seed = mix64((bank_salt << 32) | std::uint64_t(index));
    return p;
}

constexpr std::uint64_t icacheBankSalt = 1;
constexpr std::uint64_t dcacheBankSalt = 2;

/** A page invalidation pinned to its position in the trace: it takes
 * effect before reference number @c index is observed. */
struct InvalEvent
{
    std::uint64_t index;
    std::uint64_t vpn;
    std::uint32_t asid;
    bool global;
};

/** A D-cache access surviving the kseg1 (uncached) filter. */
struct DataAccess
{
    std::uint64_t paddr;
    RefKind kind;
};

} // namespace

double
SweepResult::icacheCpi(std::size_t i, const MachineParams &mp) const
{
    const CacheStats &s = icacheStats[i];
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(s.totalMisses()) *
        double(mp.missPenalty(icacheGeoms[i])) / instr;
}

double
SweepResult::dcacheCpi(std::size_t i, const MachineParams &mp) const
{
    // The paper's cost/benefit step estimates the D-cache CPI
    // contribution as miss ratio x penalty uniformly (Section 5.4);
    // the cycle-level nuances of the reference machine (free store
    // allocation on one-word lines) belong to the Monster-style
    // baseline, not to the design-space scoring.
    const CacheStats &s = dcacheStats[i];
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(s.totalMisses()) *
        double(mp.missPenalty(dcacheGeoms[i])) / instr;
}

double
SweepResult::tlbCpi(std::size_t i) const
{
    // Pure refill service only (user + kernel misses): the modify,
    // invalid and page-fault classes are configuration-independent
    // constants (and over-weighted by finite trace length), so like
    // the paper's scoring they do not enter the per-configuration
    // contribution.
    const double instr = double(std::max<std::uint64_t>(1, instructions));
    return double(tlbStats[i].refillCycles()) / instr;
}

ComponentSweep::ComponentSweep(std::vector<CacheGeometry> icache_geoms,
                               std::vector<CacheGeometry> dcache_geoms,
                               std::vector<TlbGeometry> tlb_geoms,
                               const MachineParams &reference_machine)
    : _icacheGeoms(std::move(icache_geoms)),
      _dcacheGeoms(std::move(dcache_geoms)),
      _tlbGeoms(std::move(tlb_geoms)),
      _refMachine(reference_machine)
{
}

SweepResult
ComponentSweep::run(const WorkloadParams &workload, OsKind os,
                    const RunConfig &run) const
{
    const unsigned threads = ThreadPool::resolveThreads(run.threads);
    if (threads <= 1)
        return runSerial(workload, os, run);
    return runParallel(workload, os, run, threads);
}

SweepResult
ComponentSweep::runSerial(const WorkloadParams &workload, OsKind os,
                          const RunConfig &run) const
{
    System system(workload, os, run.seed);
    Machine machine(_refMachine);

    CacheBank ibank;
    for (std::size_t i = 0; i < _icacheGeoms.size(); ++i)
        ibank.add(sweepCacheParams(_icacheGeoms[i], icacheBankSalt, i));
    CacheBank dbank;
    for (std::size_t i = 0; i < _dcacheGeoms.size(); ++i)
        dbank.add(sweepCacheParams(_dcacheGeoms[i], dcacheBankSalt, i));

    std::vector<TlbParams> tlb_params;
    tlb_params.reserve(_tlbGeoms.size());
    for (const auto &geom : _tlbGeoms) {
        TlbParams p;
        p.geom = geom;
        tlb_params.push_back(p);
    }
    Tapeworm tapeworm(tlb_params, _refMachine.tlbPenalties);

    system.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            machine.mmu().invalidatePage(vpn, asid, global);
            tapeworm.invalidatePage(vpn, asid, global);
        });

    MemRef ref;
    std::uint64_t consumed = 0;
    while (consumed < run.references && system.next(ref)) {
        machine.observe(ref);
        tapeworm.observe(ref);
        if (ref.isFetch()) {
            ibank.access(ref.paddr, ref.kind);
        } else if (!(ref.vaddr >= kseg1Base && ref.vaddr < kseg2Base)) {
            dbank.access(ref.paddr, ref.kind);
        }
        ++consumed;
    }

    SweepResult result;
    result.instructions = machine.stalls().instructions;
    result.references = consumed;
    result.icacheGeoms = _icacheGeoms;
    result.dcacheGeoms = _dcacheGeoms;
    result.tlbGeoms = _tlbGeoms;
    for (std::size_t i = 0; i < ibank.size(); ++i)
        result.icacheStats.push_back(ibank.at(i).stats());
    for (std::size_t i = 0; i < dbank.size(); ++i)
        result.dcacheStats.push_back(dbank.at(i).stats());
    for (std::size_t i = 0; i < tapeworm.size(); ++i)
        result.tlbStats.push_back(tapeworm.at(i).stats());

    const double instr =
        double(std::max<std::uint64_t>(1, result.instructions));
    result.wbCpi = double(machine.stalls().wbStall) / instr;
    result.otherCpi = system.otherCpiSoFar();
    return result;
}

SweepResult
ComponentSweep::runParallel(const WorkloadParams &workload, OsKind os,
                            const RunConfig &run,
                            unsigned threads) const
{
    // Phase 1 (serial): generate the trace once. The workload RNG,
    // the OS model and the reference machine all advance exactly as
    // on the serial path; the stream and the page-invalidation events
    // are recorded for replay. Events are stamped with the index of
    // the reference about to be emitted, because the OS fires them
    // while producing that reference — the serial path applies them
    // to the simulators before observing it.
    System system(workload, os, run.seed);
    Machine machine(_refMachine);

    std::vector<MemRef> refs;
    refs.reserve(run.references);
    std::vector<InvalEvent> events;
    system.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t asid, bool global) {
            machine.mmu().invalidatePage(vpn, asid, global);
            events.push_back({refs.size(), vpn, asid, global});
        });

    std::vector<std::uint64_t> fetches;
    std::vector<DataAccess> data;
    MemRef ref;
    std::uint64_t consumed = 0;
    while (consumed < run.references && system.next(ref)) {
        machine.observe(ref);
        if (ref.isFetch()) {
            fetches.push_back(ref.paddr);
        } else if (!(ref.vaddr >= kseg1Base && ref.vaddr < kseg2Base)) {
            data.push_back({ref.paddr, ref.kind});
        }
        refs.push_back(ref);
        ++consumed;
    }

    // Phase 2 (parallel): replay per configuration. One flat index
    // space across all three component kinds keeps every lane busy;
    // each index owns its private simulator and writes only its own
    // result slot, so the reduction order is fixed by construction.
    const std::size_t n_i = _icacheGeoms.size();
    const std::size_t n_d = _dcacheGeoms.size();
    const std::size_t n_t = _tlbGeoms.size();

    SweepResult result;
    result.instructions = machine.stalls().instructions;
    result.references = consumed;
    result.icacheGeoms = _icacheGeoms;
    result.dcacheGeoms = _dcacheGeoms;
    result.tlbGeoms = _tlbGeoms;
    result.icacheStats.resize(n_i);
    result.dcacheStats.resize(n_d);
    result.tlbStats.resize(n_t);

    ThreadPool pool(threads);
    pool.parallelFor(0, n_i + n_d + n_t, [&](std::size_t task) {
        if (task < n_i) {
            Cache cache(sweepCacheParams(_icacheGeoms[task],
                                         icacheBankSalt, task));
            for (std::uint64_t paddr : fetches)
                cache.access(paddr, RefKind::IFetch);
            result.icacheStats[task] = cache.stats();
        } else if (task < n_i + n_d) {
            const std::size_t d = task - n_i;
            Cache cache(sweepCacheParams(_dcacheGeoms[d],
                                         dcacheBankSalt, d));
            for (const DataAccess &a : data)
                cache.access(a.paddr, a.kind);
            result.dcacheStats[d] = cache.stats();
        } else {
            const std::size_t t = task - n_i - n_d;
            TlbParams p;
            p.geom = _tlbGeoms[t];
            Mmu mmu(p, _refMachine.tlbPenalties);
            std::size_t e = 0;
            for (std::size_t k = 0; k < refs.size(); ++k) {
                while (e < events.size() && events[e].index == k) {
                    mmu.invalidatePage(events[e].vpn, events[e].asid,
                                       events[e].global);
                    ++e;
                }
                mmu.translate(refs[k]);
            }
            result.tlbStats[t] = mmu.stats();
        }
    });

    const double instr =
        double(std::max<std::uint64_t>(1, result.instructions));
    result.wbCpi = double(machine.stalls().wbStall) / instr;
    result.otherCpi = system.otherCpiSoFar();
    return result;
}

ComponentCpiTables
ComponentCpiTables::average(const std::vector<SweepResult> &results,
                            const MachineParams &mp)
{
    panicIf(results.empty(), "cannot average zero sweep results");
    ComponentCpiTables tables;
    const SweepResult &first = results.front();
    tables.icacheGeoms = first.icacheGeoms;
    tables.dcacheGeoms = first.dcacheGeoms;
    tables.tlbGeoms = first.tlbGeoms;
    tables.icacheCpi.assign(tables.icacheGeoms.size(), 0.0);
    tables.dcacheCpi.assign(tables.dcacheGeoms.size(), 0.0);
    tables.tlbCpi.assign(tables.tlbGeoms.size(), 0.0);

    double wb = 0.0, other = 0.0;
    for (const auto &r : results) {
        panicIf(r.icacheGeoms.size() != tables.icacheGeoms.size() ||
                    r.dcacheGeoms.size() != tables.dcacheGeoms.size() ||
                    r.tlbGeoms.size() != tables.tlbGeoms.size(),
                "sweep results built from different geometry lists");
        for (std::size_t i = 0; i < tables.icacheCpi.size(); ++i)
            tables.icacheCpi[i] += r.icacheCpi(i, mp);
        for (std::size_t i = 0; i < tables.dcacheCpi.size(); ++i)
            tables.dcacheCpi[i] += r.dcacheCpi(i, mp);
        for (std::size_t i = 0; i < tables.tlbCpi.size(); ++i)
            tables.tlbCpi[i] += r.tlbCpi(i);
        wb += r.wbCpi;
        other += r.otherCpi;
    }
    const double n = double(results.size());
    for (auto &v : tables.icacheCpi)
        v /= n;
    for (auto &v : tables.dcacheCpi)
        v /= n;
    for (auto &v : tables.tlbCpi)
        v /= n;
    // Like the paper's Tables 6/7, the total CPI of an allocation is
    // 1 + TLB + I-cache + D-cache; write-buffer and non-memory
    // stalls are configuration-independent and kept separately.
    tables.baseCpi = 1.0;
    tables.wbCpi = wb / n;
    tables.otherCpi = other / n;
    return tables;
}

} // namespace oma
