/**
 * @file
 * Implementation of the Ultrix structure model.
 */

#include "os/ultrix.hh"

namespace oma
{

namespace
{

CodeRegion
kernelSvcCode(const UltrixParams &p)
{
    CodeRegion code;
    code.base = layout::kSvcTextBase;
    code.footprint = p.svcCodeFootprint;
    code.skew = 1.25;
    code.meanRun = 16.0;
    code.meanIterations = 4.0;
    return code;
}

DataBehavior
kernelSvcData(const UltrixParams &p)
{
    DataBehavior d;
    d.loadPerInstr = p.svcLoadPerInstr;
    d.storePerInstr = p.svcStorePerInstr;
    d.stackBase = layout::kStackBase;
    d.stackBytes = 8 * 1024;
    d.stackFrac = 0.30;
    d.wsBase = layout::kDataBase;
    d.wsBytes = p.kDataWsBytes;
    d.wsSkew = 1.4;
    d.ws2Frac = p.kseg2Frac;
    d.ws2Base = layout::kseg2DynBase;
    d.ws2Bytes = p.kseg2WsBytes;
    d.ws2Skew = 1.2;
    return d;
}

CodeRegion
trapCode()
{
    CodeRegion code;
    code.base = layout::kTrapTextBase;
    code.footprint = 8 * 1024;
    code.meanRun = 20.0;
    code.meanIterations = 1.5;
    return code;
}

DataBehavior
trapData()
{
    DataBehavior d;
    d.loadPerInstr = 0.15;
    d.storePerInstr = 0.10;
    d.stackBase = layout::kStackBase;
    d.stackBytes = 4 * 1024;
    d.stackFrac = 0.6;
    d.wsBase = layout::kDataBase;
    d.wsBytes = 32 * 1024;
    d.wsSkew = 1.35;
    return d;
}

CodeRegion
xCode(const UltrixParams &p)
{
    CodeRegion code;
    code.base = layout::userTextBase;
    code.footprint = p.xCodeFootprint;
    code.skew = 1.3;
    code.meanRun = 14.0;
    code.meanIterations = 4.0;
    return code;
}

DataBehavior
xData(const UltrixParams &p)
{
    DataBehavior d;
    d.loadPerInstr = 0.22;
    d.storePerInstr = 0.12;
    d.stackBase = layout::userStackBase;
    d.wsBase = layout::userWsBase;
    d.wsBytes = p.xWsBytes;
    d.wsSkew = 1.4;
    return d;
}

} // namespace

UltrixModel::UltrixModel(std::uint64_t seed, const UltrixParams &params)
    : OsModel(seed), _p(params), _rng(mix64(seed ^ 0x0517)),
      _trap("ultrix.trap", _kernelSpace, Mode::Kernel, trapCode(),
            trapData(), seed ^ 1),
      _svc("ultrix.svc", _kernelSpace, Mode::Kernel, kernelSvcCode(_p),
           kernelSvcData(_p), seed ^ 2),
      _x("xserver", _xSpace, Mode::User, xCode(_p), xData(_p), seed ^ 3)
{
    _trapPath = {layout::kTrapTextBase, _p.trapInstr};
    _returnPath = {layout::kTrapTextBase + 0x400, _p.returnInstr};
    _timerPath = {layout::kTimerTextBase, _p.timerInstr};
    _cswitchPath = {layout::kTrapTextBase + 0x1000, _p.cswitchInstr};
    _pageoutPath = {layout::kTimerTextBase + 0x800, _p.pageoutInstr};
}

std::uint64_t
UltrixModel::svcBodyInstr(ServiceKind kind)
{
    std::uint64_t mean = 0;
    switch (kind) {
      case ServiceKind::FileRead:
      case ServiceKind::FileWrite:
        mean = _p.svcFileInstr;
        break;
      case ServiceKind::Stat:
        mean = _p.svcStatInstr;
        break;
      case ServiceKind::Ipc:
        mean = _p.svcIpcInstr;
        break;
    }
    // +/- 25% jitter around the mean.
    return mean - mean / 4 + _rng.below(mean / 2 + 1);
}

std::uint64_t
UltrixModel::bufAddr(std::uint64_t file_offset) const
{
    return layout::kBufferCacheBase + file_offset % _p.bufferCacheBytes;
}

void
UltrixModel::invokeService(Component &caller, const ServiceRequest &req,
                           TraceSink &sink)
{
    _trap.runPath(_trapPath, sink);
    _svc.run(svcBodyInstr(req.kind), sink);

    switch (req.kind) {
      case ServiceKind::FileRead:
        // copyout: buffer cache (kseg0) -> caller's user buffer.
        _svc.copyLoop(_kernelSpace, bufAddr(_fileOffset), caller.space(),
                      req.userBufferVa, req.bytes, sink);
        _fileOffset += req.bytes;
        break;
      case ServiceKind::FileWrite:
        // copyin: caller's user buffer -> buffer cache.
        _svc.copyLoop(caller.space(), req.userBufferVa, _kernelSpace,
                      bufAddr(_fileOffset), req.bytes, sink);
        _fileOffset += req.bytes;
        break;
      case ServiceKind::Ipc:
        _svc.copyLoop(caller.space(), req.userBufferVa, _kernelSpace,
                      layout::kDataBase + 0x8000, req.bytes, sink);
        break;
      case ServiceKind::Stat:
        break;
    }

    _trap.runPath(_returnPath, sink);
}

void
UltrixModel::displayFrame(Component &caller, std::uint64_t bytes,
                          TraceSink &sink)
{
    const std::uint64_t frame_va = caller.dataBehavior().streamBase +
        _frameCursor % caller.dataBehavior().streamBytes;
    const std::uint64_t mbuf = layout::kBufferCacheBase +
        _p.bufferCacheBytes + 0x9000; // mbuf pool above the buffer cache

    // App writes the frame down the X socket (kernel copies it).
    _trap.runPath(_trapPath, sink);
    _svc.run(svcBodyInstr(ServiceKind::Ipc), sink);
    _svc.copyLoop(caller.space(), frame_va, _kernelSpace, mbuf, bytes,
                  sink);
    _trap.runPath(_returnPath, sink);

    // Scheduler switches to the X server.
    _trap.runPath(_cswitchPath, sink);

    // X reads the socket (kernel copies the mbuf out to X)...
    _trap.runPath(_trapPath, sink);
    _svc.copyLoop(_kernelSpace, mbuf, _xSpace, layout::xShareBase,
                  bytes, sink);
    _trap.runPath(_returnPath, sink);

    // ...processes it and paints the (uncached kseg1) frame buffer.
    _x.run(_p.xInstrPerKByte * (bytes / 1024 + 1), sink);
    _x.copyLoop(_xSpace, layout::xShareBase, _xSpace,
                layout::frameBufferBase + _fbCursor, bytes, sink);

    _trap.runPath(_cswitchPath, sink);

    _frameCursor += bytes;
    _fbCursor = (_fbCursor + bytes) % _p.frameBufferBytes;
}

void
UltrixModel::timerTick(TraceSink &sink)
{
    _trap.runPath(_timerPath, sink);
}

void
UltrixModel::vmActivity(Component &caller, TraceSink &sink)
{
    _trap.runPath(_pageoutPath, sink);
    const DataBehavior &d = caller.dataBehavior();
    for (unsigned i = 0; i < _p.pageoutInvalidations; ++i) {
        invalidateRandomPage(_rng, d.streamBase, d.streamBytes,
                             caller.space().asid());
    }
}

} // namespace oma
