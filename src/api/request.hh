/**
 * @file
 * Canonical query API value types and their strict JSON codecs.
 *
 * An AllocationRequest is the one client-facing description of an
 * allocation query — the question of the paper ("given this workload
 * mix, OS personality and rbe budget, which {TLB, I-cache, D-cache,
 * …} split minimizes CPI?") plus the search knobs PR 9 added
 * (strategy, annealing seed) and the five-component extension axes.
 * It subsumes the three config surfaces that grew independently
 * (core RunConfig, bench SweepSuiteSpec, per-tool flag soup): those
 * remain as internal/presentation shims, but every query — bench,
 * CLI, daemon — is phrased as one of these and answered by
 * QueryEngine (api/query_engine.hh).
 *
 * Wire format (docs/MODEL.md §14): one JSON object per request, all
 * fields required, unknown fields rejected — a request either parses
 * into exactly this struct or is refused with a positioned error,
 * never half-applied. The content fields feed the Fingerprint that
 * keys responses in the artifact store; the execution field
 * (`threads`) is excluded, so the same question always maps to the
 * same key no matter how it is scheduled. Strategy and its seed ARE
 * content: an annealing answer must never be served for an
 * exhaustive query (tests/support/test_fingerprint.cc pins the
 * canonical text).
 */

#ifndef OMA_API_REQUEST_HH
#define OMA_API_REQUEST_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hh"
#include "core/search.hh"
#include "core/search_strategy.hh"
#include "support/fingerprint.hh"

namespace oma::api
{

/** Version of the request/response schema pair; fingerprinted into
 * every response key so codec changes age stored answers into
 * misses. */
inline constexpr std::uint32_t apiFormatVersion = 1;

inline constexpr std::string_view requestSchema =
    "oma-allocation-request-v1";
inline constexpr std::string_view responseSchema =
    "oma-allocation-response-v1";
inline constexpr std::string_view errorSchema = "oma-error-v1";

/** Search strategy selector (PR 9 strategies). */
enum class Strategy
{
    Exhaustive,
    Annealing
};

/** Stable wire name of @p strategy. */
[[nodiscard]] const char *strategyName(Strategy strategy);

/** Inverse of strategyName(); false on an unknown name. */
[[nodiscard]] bool strategyFromName(std::string_view name,
                                    Strategy &out);

/**
 * One allocation query: the complete question, nothing else.
 * Defaults reproduce the paper's Table 6 configuration (full suite
 * under Mach, Table 5 grid, 250k rbe budget, exhaustive search).
 */
struct AllocationRequest
{
    // ----- content fields (fingerprinted) -----

    /** Workload mix; component CPI tables are suite-averaged over
     * these, as in the paper. */
    std::vector<BenchmarkId> workloads = allBenchmarks();
    OsKind os = OsKind::Mach;
    /** References simulated per workload. */
    std::uint64_t references = 3'000'000;
    /** Workload/OS model seed. */
    std::uint64_t seed = 42;
    /** Component grid (Table 5 plus optional extension axes). */
    ConfigSpace space;
    /** Associativity restriction for ranking (8 = Table 6, 2 =
     * Table 7); the sweep always measures the full grid. */
    std::uint64_t maxCacheWays = 8;
    /** On-chip area budget in rbe. */
    double budgetRbe = 250000.0;
    Strategy strategy = Strategy::Exhaustive;
    /** Annealing knobs; fingerprinted only when strategy is
     * Annealing (they do not affect an exhaustive answer). */
    AnnealingConfig annealing;
    /** Allocations returned, best first (0 = all in budget). */
    std::uint64_t topK = 10;

    // ----- execution fields (never fingerprinted) -----

    /** Lanes for the sweep/search engines; 0 = hardware threads.
     * Any value yields a bitwise-identical answer. */
    unsigned threads = 0;

    /** The engine-internal knob struct for this request's sweeps;
     * @p store_dir names the artifact store root ("" = consult
     * OMA_STORE_DIR). */
    [[nodiscard]] RunConfig
    runConfig(const std::string &store_dir) const
    {
        RunConfig rc;
        rc.references = references;
        rc.seed = seed;
        rc.threads = threads;
        rc.storeDir = store_dir;
        return rc;
    }

    /** Append every content field (formats, workloads, space,
     * budget, strategy + its seed) to @p fp; execution fields are
     * deliberately absent. */
    void fingerprint(Fingerprint &fp) const;

    /** The artifact-store key of this request's response. */
    [[nodiscard]] Fingerprint responseKey() const;
};

/** The canonical answer to one AllocationRequest. */
struct AllocationResponse
{
    Strategy strategy = Strategy::Exhaustive;
    /** In-budget candidates before top-K truncation. */
    std::uint64_t inBudget = 0;
    std::uint64_t candidates = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t prunedSubspaces = 0;
    /** Config-independent CPI terms of the measured tables. */
    double baseCpi = 1.0;
    double wbCpi = 0.0;
    double otherCpi = 0.0;
    /** Ranked allocations, best first (top-K of the full order). */
    std::vector<Allocation> allocations;
};

/** Encode @p request as one strict-schema JSON object (one line, no
 * embedded newlines — NDJSON-safe). */
[[nodiscard]] std::string
encodeRequest(const AllocationRequest &request);

/** Decode a request; on failure @p error names the offending field
 * or grammar violation and @p out is unspecified. */
[[nodiscard]] bool decodeRequest(std::string_view json,
                                 AllocationRequest &out,
                                 std::string &error);

/** Encode @p response (NDJSON-safe; byte-stable: the same response
 * always encodes to the same bytes). */
[[nodiscard]] std::string
encodeResponse(const AllocationResponse &response);

/** Decode a response (strict, mirror of encodeResponse). */
[[nodiscard]] bool decodeResponse(std::string_view json,
                                  AllocationResponse &out,
                                  std::string &error);

/** Encode a refusal (`oma-error-v1`) carrying @p message. */
[[nodiscard]] std::string encodeError(std::string_view message);

/** Benchmark id by wire name (benchmarkName()); false when
 * unknown. */
[[nodiscard]] bool benchmarkFromName(std::string_view name,
                                     BenchmarkId &out);

/** OS personality by wire name (osKindName()); false when
 * unknown. */
[[nodiscard]] bool osKindFromName(std::string_view name, OsKind &out);

} // namespace oma::api

#endif // OMA_API_REQUEST_HH
