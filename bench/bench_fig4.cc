/**
 * @file
 * Figure 4: area cost (rbe) for TLBs of different sizes and
 * associativities, 16-512 entries, 1/2/4/8-way and fully associative.
 */

#include <iostream>

#include "area/mqf.hh"
#include "bench/common.hh"
#include "support/table.hh"

using namespace oma;

int
main()
{
    omabench::banner("Area cost for TLBs of different sizes and "
                     "associativities",
                     "Figure 4");

    omabench::BenchReport report("fig4");
    AreaModel model;
    TextTable table({"Entries", "1-way", "2-way", "4-way", "8-way",
                     "full"});
    for (std::uint64_t entries : {16, 32, 64, 128, 256, 512}) {
        std::vector<std::string> row = {std::to_string(entries)};
        for (std::uint64_t ways : {1, 2, 4, 8}) {
            const double rbe =
                model.tlbArea(TlbGeometry(entries, ways));
            report.metrics().add("area/tlb_configs");
            report.metrics().observe("area/tlb_rbe",
                                     std::uint64_t(rbe));
            row.push_back(fmtGrouped(std::uint64_t(rbe)));
        }
        const double fa_rbe =
            model.tlbArea(TlbGeometry::fullyAssoc(entries));
        report.metrics().add("area/tlb_configs");
        report.metrics().observe("area/tlb_rbe",
                                 std::uint64_t(fa_rbe));
        row.push_back(fmtGrouped(std::uint64_t(fa_rbe)));
        table.addRow(row);
    }
    table.print(std::cout);

    const double dm16 = model.tlbArea(TlbGeometry(16, 1));
    const double w8_16 = model.tlbArea(TlbGeometry(16, 8));
    report.metrics().set("area/ratio_16e_8way_over_dm", w8_16 / dm16);
    std::cout << "\nShape checks (paper's reading of the figure):\n"
              << "  16-entry 8-way / 16-entry direct-mapped = "
              << fmtFixed(w8_16 / dm16, 2)
              << "  (paper: ~3x; associativity is costly for small "
                 "TLBs)\n"
              << "  512-entry 8-way / 512-entry direct-mapped = "
              << fmtFixed(model.tlbArea(TlbGeometry(512, 8)) /
                              model.tlbArea(TlbGeometry(512, 1)),
                          2)
              << "  (paper: ~1; associativity is nearly free for "
                 "large TLBs)\n";
    return 0;
}
