/**
 * @file
 * Unit tests for binary trace-file round trips.
 */

// oma-lint: allow-file(cast-audit): the v1-compatibility test
// hand-writes legacy records by streaming the object representations
// of local trivially-copyable integers; every cast is a char view of
// a live fixed-width scalar.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/rng.hh"
#include "trace/tracefile.hh"

namespace oma
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

MemRef
randomRef(Rng &rng)
{
    MemRef r;
    r.vaddr = rng.next() & 0xffffffff;
    r.paddr = rng.next() & 0x3fffffff;
    r.asid = std::uint32_t(rng.below(64));
    r.kind = static_cast<RefKind>(rng.below(3));
    r.mode = static_cast<Mode>(rng.below(2));
    r.mapped = rng.chance(0.8);
    return r;
}

TEST(TraceFile, RoundTripPreservesEverything)
{
    const std::string path = tempPath("roundtrip.trace");
    Rng rng(99);
    std::vector<MemRef> original;
    {
        TraceFileWriter writer(path);
        for (int i = 0; i < 5000; ++i) {
            const MemRef r = randomRef(rng);
            original.push_back(r);
            writer.put(r);
        }
        EXPECT_EQ(writer.count(), 5000u);
        writer.close();
    }

    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 5000u);
    MemRef r;
    for (const MemRef &want : original) {
        ASSERT_TRUE(reader.next(r));
        EXPECT_EQ(r.vaddr, want.vaddr);
        EXPECT_EQ(r.paddr, want.paddr);
        EXPECT_EQ(r.asid, want.asid);
        EXPECT_EQ(r.kind, want.kind);
        EXPECT_EQ(r.mode, want.mode);
        EXPECT_EQ(r.mapped, want.mapped);
    }
    EXPECT_FALSE(reader.next(r));
    std::remove(path.c_str());
}

TEST(TraceFile, DestructorCloses)
{
    const std::string path = tempPath("dtor.trace");
    {
        TraceFileWriter writer(path);
        MemRef r;
        writer.put(r);
        // No explicit close: the destructor must patch the header.
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTrace)
{
    const std::string path = tempPath("empty.trace");
    {
        TraceFileWriter writer(path);
        writer.close();
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 0u);
    MemRef r;
    EXPECT_FALSE(reader.next(r));
    std::remove(path.c_str());
}

TEST(TraceFile, V2RoundTripPreservesEventsAndMetadata)
{
    // Build a recording larger than one chunk with invalidation
    // events scattered through it (including at the chunk seam and
    // before the first reference), dump it to a v2 file, load it
    // back and require an exact match.
    const std::string path = tempPath("v2events.trace");
    Rng rng(123);
    RecordedTrace original;
    original.recordInvalidation(7, 1, true); // before any ref
    const std::uint64_t n = RecordedTrace::chunkRefs + 4321;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (rng.chance(0.001) || i == RecordedTrace::chunkRefs)
            original.recordInvalidation(rng.below(1 << 19),
                                        std::uint32_t(rng.below(64)),
                                        rng.chance(0.3));
        original.append(randomRef(rng));
    }
    original.setOtherCpi(0.625);
    writeTrace(path, original);

    const RecordedTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    ASSERT_EQ(loaded.events().size(), original.events().size());
    for (std::size_t i = 0; i < original.events().size(); ++i) {
        const TraceEvent &a = original.events()[i];
        const TraceEvent &b = loaded.events()[i];
        ASSERT_EQ(a.index, b.index) << "event " << i;
        ASSERT_EQ(a.vpn, b.vpn) << "event " << i;
        ASSERT_EQ(a.asid, b.asid) << "event " << i;
        ASSERT_EQ(a.global, b.global) << "event " << i;
    }
    EXPECT_EQ(loaded.otherCpi(), 0.625);
    for (std::uint64_t i : {std::uint64_t(0),
                            std::uint64_t(RecordedTrace::chunkRefs - 1),
                            std::uint64_t(RecordedTrace::chunkRefs),
                            n - 1}) {
        const MemRef a = original.at(i), b = loaded.at(i);
        ASSERT_EQ(a.vaddr, b.vaddr) << "ref " << i;
        ASSERT_EQ(a.paddr, b.paddr) << "ref " << i;
        ASSERT_EQ(a.asid, b.asid) << "ref " << i;
        ASSERT_EQ(a.kind, b.kind) << "ref " << i;
        ASSERT_EQ(a.mode, b.mode) << "ref " << i;
        ASSERT_EQ(a.mapped, b.mapped) << "ref " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReaderFiresInvalidateHookAtPinnedPositions)
{
    const std::string path = tempPath("v2hook.trace");
    {
        TraceFileWriter writer(path);
        MemRef r;
        writer.putInvalidation(10, 1, false); // before ref 0
        writer.put(r);
        writer.put(r);
        writer.putInvalidation(20, 2, true); // before ref 2
        writer.put(r);
        writer.close();
    }
    TraceFileReader reader(path);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> fired;
    reader.setInvalidateHook(
        [&](std::uint64_t vpn, std::uint32_t, bool) {
            fired.emplace_back(vpn, 0);
        });
    MemRef ref;
    std::uint64_t pos = 0;
    while (reader.next(ref)) {
        for (auto &f : fired)
            if (f.second == 0)
                f.second = pos + 1; // fired before ref at index pos
        ++pos;
    }
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], std::make_pair(std::uint64_t(10),
                                       std::uint64_t(1)));
    EXPECT_EQ(fired[1], std::make_pair(std::uint64_t(20),
                                       std::uint64_t(3)));
    std::remove(path.c_str());
}

TEST(TraceFile, ReadsVersion1Files)
{
    // Hand-write a v1 file (24-byte header, 24-byte fixed records,
    // no events) and check the reader still understands it.
    const std::string path = tempPath("legacy_v1.trace");
    Rng rng(321);
    std::vector<MemRef> original;
    {
        std::ofstream out(path, std::ios::binary);
        const std::uint64_t magic = TraceFileHeader::magicValue;
        const std::uint32_t version = 1, reserved = 0;
        const std::uint64_t count = 400;
        out.write(reinterpret_cast<const char *>(&magic), 8);
        out.write(reinterpret_cast<const char *>(&version), 4);
        out.write(reinterpret_cast<const char *>(&reserved), 4);
        out.write(reinterpret_cast<const char *>(&count), 8);
        for (std::uint64_t i = 0; i < count; ++i) {
            const MemRef r = randomRef(rng);
            original.push_back(r);
            const std::uint64_t vaddr = r.vaddr, paddr = r.paddr;
            const std::uint32_t asid = r.asid;
            const std::uint8_t kind = std::uint8_t(r.kind);
            const std::uint8_t mode = std::uint8_t(r.mode);
            const std::uint8_t mapped = r.mapped ? 1 : 0, pad = 0;
            out.write(reinterpret_cast<const char *>(&vaddr), 8);
            out.write(reinterpret_cast<const char *>(&paddr), 8);
            out.write(reinterpret_cast<const char *>(&asid), 4);
            out.write(reinterpret_cast<const char *>(&kind), 1);
            out.write(reinterpret_cast<const char *>(&mode), 1);
            out.write(reinterpret_cast<const char *>(&mapped), 1);
            out.write(reinterpret_cast<const char *>(&pad), 1);
        }
    }

    TraceFileReader reader(path);
    EXPECT_EQ(reader.version(), 1u);
    EXPECT_EQ(reader.count(), 400u);
    EXPECT_EQ(reader.eventCount(), 0u);
    EXPECT_EQ(reader.otherCpi(), 0.0);
    MemRef r;
    for (const MemRef &want : original) {
        ASSERT_TRUE(reader.next(r));
        ASSERT_EQ(r.vaddr, want.vaddr);
        ASSERT_EQ(r.paddr, want.paddr);
        ASSERT_EQ(r.asid, want.asid);
        ASSERT_EQ(r.kind, want.kind);
        ASSERT_EQ(r.mode, want.mode);
        ASSERT_EQ(r.mapped, want.mapped);
    }
    EXPECT_FALSE(reader.next(r));

    // And the whole-file loader handles v1 too.
    const RecordedTrace loaded = readTrace(path);
    EXPECT_EQ(loaded.size(), 400u);
    EXPECT_TRUE(loaded.events().empty());
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceFileReader("/nonexistent/zzz.trace"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, BadMagicIsFatal)
{
    const std::string path = tempPath("garbage.trace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close....";
    }
    EXPECT_EXIT(TraceFileReader reader(path),
                testing::ExitedWithCode(1), "not a trace file");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, FullDiskIsFatalNotSilent)
{
    // /dev/full accepts the open but fails every flush with ENOSPC —
    // the exact failure mode that used to truncate traces silently.
    if (!std::ofstream("/dev/full", std::ios::binary).is_open())
        GTEST_SKIP() << "/dev/full not available";
    EXPECT_EXIT(
        {
            TraceFileWriter writer("/dev/full");
            MemRef r;
            for (std::uint64_t i = 0; i <= RecordedTrace::chunkRefs;
                 ++i)
                writer.put(r);
            writer.close();
        },
        testing::ExitedWithCode(1), "disk full");
}

} // namespace
} // namespace oma
