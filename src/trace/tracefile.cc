/**
 * @file
 * Implementation of binary trace file I/O.
 */

#include "trace/tracefile.hh"

#include <cstring>

#include "support/logging.hh"

namespace oma
{

namespace
{

/** Packed on-disk record layout (24 bytes). */
struct PackedRef
{
    std::uint64_t vaddr;
    std::uint64_t paddr;
    std::uint32_t asid;
    std::uint8_t kind;
    std::uint8_t mode;
    std::uint8_t mapped;
    std::uint8_t pad;
};

static_assert(sizeof(PackedRef) == 24, "unexpected record padding");

PackedRef
pack(const MemRef &ref)
{
    PackedRef p;
    p.vaddr = ref.vaddr;
    p.paddr = ref.paddr;
    p.asid = ref.asid;
    p.kind = static_cast<std::uint8_t>(ref.kind);
    p.mode = static_cast<std::uint8_t>(ref.mode);
    p.mapped = ref.mapped ? 1 : 0;
    p.pad = 0;
    return p;
}

MemRef
unpack(const PackedRef &p)
{
    MemRef ref;
    ref.vaddr = p.vaddr;
    ref.paddr = p.paddr;
    ref.asid = p.asid;
    ref.kind = static_cast<RefKind>(p.kind);
    ref.mode = static_cast<Mode>(p.mode);
    ref.mapped = p.mapped != 0;
    return ref;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : _out(path, std::ios::binary | std::ios::trunc)
{
    fatalIf(!_out, "cannot open trace file for writing: " + path);
    TraceFileHeader header;
    _out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    _open = true;
}

TraceFileWriter::~TraceFileWriter()
{
    if (_open)
        close();
}

void
TraceFileWriter::put(const MemRef &ref)
{
    panicIf(!_open, "write to closed TraceFileWriter");
    const PackedRef p = pack(ref);
    _out.write(reinterpret_cast<const char *>(&p), sizeof(p));
    ++_count;
}

void
TraceFileWriter::close()
{
    if (!_open)
        return;
    TraceFileHeader header;
    header.recordCount = _count;
    _out.seekp(0);
    _out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    _out.close();
    _open = false;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : _in(path, std::ios::binary)
{
    fatalIf(!_in, "cannot open trace file for reading: " + path);
    _in.read(reinterpret_cast<char *>(&_header), sizeof(_header));
    fatalIf(!_in || _header.magic != TraceFileHeader::magicValue,
            "not a trace file: " + path);
    fatalIf(_header.version != TraceFileHeader::currentVersion,
            "unsupported trace file version in " + path);
}

bool
TraceFileReader::next(MemRef &ref)
{
    if (_read >= _header.recordCount)
        return false;
    PackedRef p;
    _in.read(reinterpret_cast<char *>(&p), sizeof(p));
    if (!_in)
        return false;
    ref = unpack(p);
    ++_read;
    return true;
}

} // namespace oma
