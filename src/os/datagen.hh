/**
 * @file
 * Data-reference behaviour generator.
 *
 * Data accesses are a mixture of three streams that capture the
 * behaviours the paper's workloads exhibit: a small hot stack, a
 * Zipf-skewed working set (heap/static data), and a sequential stream
 * (file buffers, video frames) that defeats caching by construction.
 */

#ifndef OMA_OS_DATAGEN_HH
#define OMA_OS_DATAGEN_HH

#include <cstdint>

#include "support/rng.hh"

namespace oma
{

/** Static description of a component's data behaviour. */
struct DataBehavior
{
    /** Loads per instruction executed. */
    double loadPerInstr = 0.20;
    /** Stores per instruction executed. */
    double storePerInstr = 0.10;

    std::uint64_t stackBase = 0x7fff0000;
    std::uint64_t stackBytes = 8 * 1024;
    double stackFrac = 0.35; //!< Fraction of data refs to the stack.

    std::uint64_t wsBase = 0x10000000;
    std::uint64_t wsBytes = 256 * 1024;
    double wsSkew = 1.05;

    /** Fraction of loads that stream sequentially (fresh data). */
    double streamFracLoad = 0.0;
    /** Fraction of stores that stream sequentially (output data). */
    double streamFracStore = 0.0;
    /**
     * Mean length of store bursts (tight store loops: register saves,
     * memset/output loops). Burst stores are consecutive words; the
     * start probability is normalized so the average store rate stays
     * storePerInstr.
     */
    double storeBurstMean = 1.0;
    std::uint64_t streamBase = 0x20000000;
    std::uint64_t streamBytes = 4 * 1024 * 1024;
    std::uint64_t streamStride = 4;

    /**
     * Optional second working set (e.g. a kernel's mapped kseg2
     * structures alongside its unmapped kseg0 tables). Disabled when
     * ws2Frac is zero.
     */
    double ws2Frac = 0.0;
    std::uint64_t ws2Base = 0;
    std::uint64_t ws2Bytes = 0;
    double ws2Skew = 0.9;
};

/** Stateful generator over a DataBehavior. */
class DataGen
{
  public:
    DataGen(const DataBehavior &behavior, std::uint64_t seed);

    /**
     * Number of data references the current instruction performs
     * (0, 1 load, or 1 store; single-issue R2000 semantics).
     * Call before nextAddr().
     *
     * @param[out] is_store Set when the reference is a store.
     * @retval true when the instruction references data.
     */
    bool refForInstr(bool &is_store);

    /** Virtual address of the next data reference. */
    std::uint64_t nextAddr(bool is_store);

    const DataBehavior &behavior() const { return _behavior; }

  private:
    DataBehavior _behavior;
    Rng _rng;
    std::uint64_t _streamPos = 0;
    std::uint64_t _burstLeft = 0;
    std::uint64_t _burstAddr = 0;
};

} // namespace oma

#endif // OMA_OS_DATAGEN_HH
